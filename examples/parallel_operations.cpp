// Scenario §3.1.3 — multiple parallel operations, one failure.
//
// A production cloud runs many similar operations at once.  A client
// launches dozens of VM creates; exactly one fails.  Parallel operations
// are HANSEL's worst case (it stitches every message and buffers 30 s);
// GRETEL invokes operation detection only on the fault and pinpoints the
// offending operation among the parallel identical ones.
#include "examples/scenario_common.h"
#include "hansel/hansel.h"
#include "net/capture.h"
#include "stack/faults.h"

int main() {
  using namespace gretel;
  auto scenario = examples::Scenario::prepare();

  const auto& vm_create =
      scenario.catalog.operation(scenario.catalog.canonical().vm_create);

  std::vector<stack::Launch> launches;
  for (int i = 0; i < 80; ++i) {
    launches.push_back({&vm_create,
                        util::SimTime::epoch() +
                            util::SimDuration::millis(600 * i),
                        std::nullopt});
  }
  const std::size_t faulty_index = 40;
  launches[faulty_index].fault = stack::no_valid_host_fault(
      scenario.step_of(vm_create,
                       scenario.catalog.well_known().neutron_post_ports));
  std::printf("[inject] 80 parallel VM creates; #%zu fails at "
              "POST ports.json\n",
              faulty_index);

  const auto analyzer = scenario.run(launches);
  scenario.print_diagnoses(*analyzer);
  std::printf("\noperation detection ran %llu time(s) — unaffected by the "
              "%d successful parallel operations\n",
              static_cast<unsigned long long>(
                  analyzer->detector_stats().operational_reports),
              79);

  // Contrast with the HANSEL baseline on the same traffic.
  stack::WorkflowExecutor executor(&scenario.deployment,
                                   &scenario.catalog.apis(),
                                   &scenario.catalog.infra(), 99);
  const auto records = executor.execute(launches);
  net::CaptureTap tap(&scenario.catalog.apis(),
                      scenario.deployment.service_by_port());
  hansel::Hansel baseline;
  for (const auto& r : records) {
    if (auto ev = tap.decode(r)) baseline.on_message(*ev, r.bytes);
  }
  baseline.flush();

  std::printf("\nHANSEL on the same capture: %zu chain(s)\n",
              baseline.chains().size());
  for (const auto& chain : baseline.chains()) {
    std::printf("  chain of %zu messages touching %zu distinct operations, "
                "reported %.0f s after the error (bucket close)\n",
                chain.events.size(), chain.distinct_instances(),
                (chain.reported_at - chain.events.front().ts).to_seconds());
  }
  std::printf("\nGRETEL names the failed high-level operation; HANSEL "
              "reports a low-level message chain entangled with the "
              "successful operations.\n");
  return 0;
}
