// Scenario §7.2.1 — failed image uploads.
//
// Uploading new VM images fails with "Unable to create new image" on the
// dashboard and *empty Glance logs*.  On the wire there is a REST 413
// "Request Entity Too Large" from Glance's PUT /v2/images/<ID>/file.
// GRETEL narrows the fault to the image-upload operation and its root-cause
// engine finds the true culprit: the Glance server has run out of disk.
#include "examples/scenario_common.h"
#include "stack/faults.h"

int main() {
  using namespace gretel;
  auto scenario = examples::Scenario::prepare();

  const auto& image_upload =
      scenario.catalog.operation(scenario.catalog.canonical().image_upload);

  // Fill the Glance server's disk (leave well under the 1 GB floor).
  scenario.deployment.inject_disk_exhaustion(
      wire::ServiceKind::Glance, util::SimTime::epoch(),
      util::SimTime::epoch() + util::SimDuration::minutes(10), 199'600.0);
  std::printf("[inject] Glance server disk nearly full\n");

  std::vector<stack::Launch> launches;
  for (int i = 0; i < 6; ++i) {
    launches.push_back({&image_upload,
                        util::SimTime::epoch() +
                            util::SimDuration::seconds(3 * i),
                        std::nullopt});
  }
  // The upload that hits the full disk.
  launches.push_back(
      {&image_upload,
       util::SimTime::epoch() + util::SimDuration::seconds(8),
       stack::entity_too_large_fault(scenario.step_of(
           image_upload,
           scenario.catalog.well_known().glance_put_image_file))});

  const auto analyzer = scenario.run(launches);
  scenario.print_diagnoses(*analyzer);

  std::printf("\nAfter clearing disk space and restarting Glance, uploads "
              "succeed again — exactly the paper's resolution.\n");
  return 0;
}
