// Shared plumbing for the example scenarios: build the catalog and
// deployment, learn fingerprints, run launches through the analyzer, and
// pretty-print GRETEL's diagnosis the way an operator would read it.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "monitor/metrics.h"
#include "stack/workflow.h"
#include "tempest/catalog.h"

namespace gretel::examples {

struct Scenario {
  tempest::TempestCatalog catalog;
  stack::Deployment deployment;
  core::TrainingReport training;

  // `fraction` of the full Tempest suite keeps examples snappy while still
  // matching against hundreds of fingerprints.
  static Scenario prepare(double fraction = 0.25, std::uint64_t seed = 7) {
    std::printf("[setup] building catalog and learning fingerprints...\n");
    Scenario s{tempest::TempestCatalog::build(seed, fraction),
               stack::Deployment::standard(3), {}};
    s.training = core::learn_fingerprints(s.catalog, s.deployment);
    std::printf("[setup] %zu operations fingerprinted (FPmax = %zu)\n\n",
                s.training.db.size(), s.training.fp_max);
    return s;
  }

  // Executes the launches, feeds the analyzer (with collectd-style metrics
  // for root-cause analysis) and returns it.
  std::unique_ptr<core::Analyzer> run(
      const std::vector<stack::Launch>& launches, std::uint64_t seed = 99) {
    core::Analyzer::Options options;
    options.config.fp_max = training.fp_max;
    options.config.p_rate = 150.0;
    auto analyzer = std::make_unique<core::Analyzer>(
        &training.db, &catalog.apis(), &deployment, options);

    stack::WorkflowExecutor executor(&deployment, &catalog.apis(),
                                     &catalog.infra(), seed);
    const auto records = executor.execute(launches);
    std::printf("[run] %zu launches -> %zu wire records\n", launches.size(),
                records.size());

    monitor::ResourceMonitor mon(&deployment, util::SimDuration::seconds(1),
                                 seed);
    mon.sample_range(util::SimTime::epoch(),
                     records.back().ts + util::SimDuration::seconds(3),
                     analyzer->metrics());

    for (const auto& r : records) analyzer->on_wire(r);
    analyzer->finish();
    return analyzer;
  }

  // Index of a template step using the given API (first occurrence).
  std::size_t step_of(const stack::OperationTemplate& op,
                      wire::ApiId api) const {
    for (std::size_t i = 0; i < op.steps.size(); ++i) {
      if (op.steps[i].api == api) return i;
    }
    return 0;
  }

  void print_diagnoses(const core::Analyzer& analyzer) const {
    if (analyzer.diagnoses().empty()) {
      std::printf("\nGRETEL raised no fault reports.\n");
      return;
    }
    for (const auto& d : analyzer.diagnoses()) {
      std::printf("\n--- GRETEL fault report ---------------------------\n");
      std::printf("kind:        %s\n",
                  d.fault.kind == core::FaultKind::Operational
                      ? "operational"
                      : "performance");
      std::printf("offending:   %s\n",
                  catalog.apis().get(d.fault.offending_api)
                      .display_name().c_str());
      if (d.fault.latency) {
        std::printf("latency:     level %.1f ms -> %.1f ms\n",
                    d.fault.latency->alarm.baseline,
                    d.fault.latency->alarm.baseline +
                        d.fault.latency->alarm.magnitude);
      }
      std::printf("operations matched (theta = %.4f, beta = %zu, "
                  "%zu candidates on the API alone):\n",
                  d.fault.theta, d.fault.beta_final, d.fault.candidates);
      for (auto idx : d.fault.matched_fingerprints) {
        std::printf("  * %s\n", training.db.get(idx).name.c_str());
      }
      if (d.root_cause.causes.empty()) {
        std::printf("root cause:  no anomalous state found%s\n",
                    d.root_cause.expanded_search
                        ? " (searched all operation nodes)"
                        : "");
      } else {
        std::printf("root cause (%s):\n",
                    d.root_cause.expanded_search
                        ? "found upstream, beyond the error endpoints"
                        : "on the error-endpoint nodes");
        for (const auto& c : d.root_cause.causes) {
          std::printf("  * node %u (%s): %s %s\n", c.node.value(),
                      deployment.node(c.node).hostname().c_str(),
                      c.kind == core::CauseKind::SoftwareFailure
                          ? "software dependency down:"
                          : "resource anomaly:",
                      c.detail.c_str());
        }
      }
    }
    std::printf("---------------------------------------------------\n");
  }
};

}  // namespace gretel::examples
