// The two extensions beyond the paper's prototype, demonstrated together:
//
//  * correlation identifiers (§5.3.1: "when fully implemented, GRETEL can
//    exploit these correlation identifiers to increase its precision") —
//    the deployment stamps every message of an operation with its request
//    id, and operation detection reduces the snapshot to the faulty
//    operation's own packets;
//  * branched fingerprints (limitation 6: asynchronous calls lead to a
//    branched fingerprint that plain LCS intersects away) — training
//    clusters the repeat traces and keeps one fingerprint per branch.
#include <cstdio>

#include "examples/scenario_common.h"
#include "gretel/fingerprint.h"
#include "stack/faults.h"

int main() {
  using namespace gretel;
  auto scenario = examples::Scenario::prepare(0.15, /*seed=*/17);

  // A deep Compute operation failing mid-flight: plenty of history for the
  // correlation filter to sharpen.
  const auto& compute_ops =
      scenario.catalog.category_ops(stack::Category::Compute);
  const stack::OperationTemplate* deep = nullptr;
  for (auto idx : compute_ops) {
    const auto& op = scenario.catalog.operation(idx);
    if (op.steps.size() >= 80 && (!deep || op.steps.size() < deep->steps.size()))
      deep = &op;
  }
  std::size_t fail_step = deep->steps.size() * 3 / 5;
  while (!scenario.catalog.apis().get(deep->steps[fail_step].api)
              .state_change() ||
         deep->steps[fail_step].transient) {
    ++fail_step;
  }

  // --- correlation identifiers -------------------------------------------
  std::printf("== correlation identifiers ==\n");
  std::printf("faulty operation: %s (%zu steps, failing at step %zu)\n",
              deep->name.c_str(), deep->steps.size(), fail_step);
  std::vector<stack::Launch> launches;
  for (int i = 0; i < 60; ++i) {
    launches.push_back({deep,
                        util::SimTime::epoch() +
                            util::SimDuration::millis(700 * i),
                        std::nullopt});
  }
  stack::OperationalFault fault;
  fault.fail_step = fail_step;
  fault.status = 500;
  fault.error_text = "Simulated mid-operation failure";
  launches.push_back(
      {deep, util::SimTime::epoch() + util::SimDuration::seconds(20),
       fault});

  for (bool corr : {false, true}) {
    core::Analyzer::Options options;
    options.config.fp_max = scenario.training.fp_max;
    options.config.p_rate = 150.0;
    options.run_root_cause = false;
    core::Analyzer analyzer(&scenario.training.db, &scenario.catalog.apis(),
                            &scenario.deployment, options);

    stack::WorkflowExecutor::Options exec_options;
    exec_options.emit_correlation_ids = corr;
    stack::WorkflowExecutor executor(&scenario.deployment,
                                     &scenario.catalog.apis(),
                                     &scenario.catalog.infra(), 4242,
                                     exec_options);
    for (const auto& r : executor.execute(launches)) analyzer.on_wire(r);
    analyzer.finish();

    std::size_t matched = 0;
    double theta = 0;
    for (const auto& d : analyzer.diagnoses()) {
      matched += d.fault.matched_fingerprints.size();
      theta = d.fault.theta;
    }
    std::printf("  correlation ids %s: %zu operation(s) matched, "
                "theta %.4f\n",
                corr ? "ON " : "OFF", matched, theta);
  }

  // --- branched fingerprints ----------------------------------------------
  // An operation with an asynchronous sub-flow: half its executions include
  // a callback sequence (APIs X, Y), half don't.  Plain Algorithm-1 folding
  // intersects the callback away; branched learning keeps both shapes.
  std::printf("\n== branched fingerprints ==\n");
  const auto& apis = scenario.catalog.apis();
  core::NoiseFilter filter(&apis);
  core::FingerprintGenerator generator(&apis, &filter);

  const auto& wk = scenario.catalog.well_known();
  const std::vector<wire::ApiId> sync_shape{
      wk.nova_post_servers, wk.neutron_get_networks, wk.neutron_post_ports,
      wk.nova_get_server};
  std::vector<wire::ApiId> async_shape = sync_shape;
  async_shape.insert(async_shape.begin() + 3, wk.rpc_plug_vif);
  async_shape.insert(async_shape.begin() + 4, wk.rpc_get_device_details);

  const std::vector<std::vector<wire::ApiId>> traces{
      sync_shape, async_shape, sync_shape, async_shape, sync_shape};

  const auto plain = generator.from_traces(wire::OpTemplateId(9999),
                                           "attach-port", traces);
  std::printf("  plain fold:     1 fingerprint, %zu APIs "
              "(async callback lost: contains plug_interface = %s)\n",
              plain.size(), plain.contains(wk.rpc_plug_vif) ? "yes" : "no");

  const auto branches = generator.from_traces_branched(
      wire::OpTemplateId(9999), "attach-port", traces, 0.9);
  std::printf("  branched fold:  %zu fingerprints\n", branches.size());
  for (const auto& fp : branches) {
    std::printf("    %-14s %zu APIs, plug_interface: %s\n",
                fp.name.c_str(), fp.size(),
                fp.contains(wk.rpc_plug_vif) ? "yes" : "no");
  }
  return 0;
}
