// Quickstart: the GRETEL pipeline end to end in ~100 lines.
//
//  1. Build the Tempest-like catalog and the simulated deployment.
//  2. Learn operational fingerprints offline (Algorithm 1).
//  3. Run a concurrent workload with one injected operational fault.
//  4. Feed the captured wire traffic to the analyzer and print what GRETEL
//     detected: the faulty operation, precision θ, and the root cause.
#include <cstdio>

#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "monitor/metrics.h"
#include "stack/workflow.h"
#include "tempest/catalog.h"
#include "tempest/workload.h"

using namespace gretel;

int main() {
  // A reduced catalog (~5% of the 1200 Tempest tests) keeps the quickstart
  // fast; the bench harnesses run the full-scale version.
  const auto catalog = tempest::TempestCatalog::build(/*seed=*/42,
                                                      /*fraction=*/0.05);
  auto deployment = stack::Deployment::standard(/*compute_nodes=*/3);
  std::printf("catalog: %zu operations over %zu APIs\n",
              catalog.operations().size(), catalog.apis().size());

  // --- offline: learn fingerprints in a controlled setting ---------------
  auto training = core::learn_fingerprints(catalog, deployment);
  std::printf("trained %zu fingerprints, FPmax = %zu\n", training.db.size(),
              training.fp_max);

  // --- online: run a concurrent workload with one injected fault ---------
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 20;
  spec.faults = 1;
  spec.window = util::SimDuration::seconds(30);
  spec.seed = 7;
  const auto workload = tempest::make_parallel_workload(catalog, spec);

  stack::WorkflowExecutor executor(&deployment, &catalog.apis(),
                                   &catalog.infra(), /*seed=*/99);
  const auto records = executor.execute(workload.launches);
  std::printf("workload: %zu launches -> %zu wire records\n",
              workload.launches.size(), records.size());

  // --- analyzer: detect + localize ----------------------------------------
  core::Analyzer::Options options;
  options.config.fp_max = training.fp_max;
  options.config.p_rate = 150.0;
  core::Analyzer analyzer(&training.db, &catalog.apis(), &deployment,
                          options);

  // collectd-analog metrics for the run window feed root-cause analysis.
  monitor::ResourceMonitor monitor(&deployment, util::SimDuration::seconds(1),
                                   /*seed=*/5);
  monitor.sample_range(util::SimTime::epoch(),
                       records.back().ts + util::SimDuration::seconds(5),
                       analyzer.metrics());

  for (const auto& record : records) analyzer.on_wire(record);
  analyzer.finish();

  // --- report --------------------------------------------------------------
  const auto& faulty_launch =
      workload.launches[workload.faulty_launch_idx.front()];
  std::printf("\ninjected fault: operation \"%s\" fails at step %zu "
              "(HTTP %u)\n",
              faulty_launch.op->name.c_str(),
              faulty_launch.fault->fail_step, faulty_launch.fault->status);

  std::printf("analyzer: %llu events, %llu REST errors, %llu reports\n",
              static_cast<unsigned long long>(analyzer.detector_stats().events),
              static_cast<unsigned long long>(
                  analyzer.detector_stats().rest_errors),
              static_cast<unsigned long long>(
                  analyzer.detector_stats().operational_reports));

  for (const auto& d : analyzer.diagnoses()) {
    std::printf("\nfault on API: %s\n",
                catalog.apis().get(d.fault.offending_api)
                    .display_name().c_str());
    std::printf("  matched operations (theta = %.4f, beta = %zu):\n",
                d.fault.theta, d.fault.beta_final);
    for (auto idx : d.fault.matched_fingerprints) {
      std::printf("    - %s\n", training.db.get(idx).name.c_str());
    }
    for (const auto& cause : d.root_cause.causes) {
      std::printf("  root cause candidate @ node %u: %s\n",
                  cause.node.value(), cause.detail.c_str());
    }
  }
  return 0;
}
