// Scenario §7.2.4 — NTP failure behind a Keystone 401.
//
// `cinder list` fails with "Unable to establish connection to Keystone";
// Keystone logs show nothing and Cinder logs only a cryptic "Timeout is too
// large".  The real cause: the NTP agent on the Cinder host stopped, its
// clock drifted, and Keystone now rejects the tokens as expired (401
// Unauthorized).  GRETEL sees the 401, finds the error-endpoint nodes
// healthy resource-wise, and its dependency watchers surface the stopped
// ntpd.
#include "examples/scenario_common.h"
#include "stack/faults.h"

int main() {
  using namespace gretel;
  auto scenario = examples::Scenario::prepare();

  const auto& cinder_list =
      scenario.catalog.operation(scenario.catalog.canonical().cinder_list);
  const auto storage_node =
      scenario.deployment.primary_node_for(wire::ServiceKind::Cinder);

  scenario.deployment.node(storage_node)
      .inject_outage({"ntpd", util::SimTime::epoch(),
                      util::SimTime::epoch() +
                          util::SimDuration::minutes(10)});
  std::printf("[inject] ntpd stopped on the storage node (%s)\n",
              scenario.deployment.node(storage_node).hostname().c_str());

  std::vector<stack::Launch> launches;
  launches.push_back(
      {&cinder_list, util::SimTime::epoch() + util::SimDuration::seconds(5),
       stack::unauthorized_fault(scenario.step_of(
           cinder_list, scenario.catalog.well_known().cinder_get_volumes))});

  const auto analyzer = scenario.run(launches);
  scenario.print_diagnoses(*analyzer);

  std::printf("\nRestarting the NTP agent on the host brings the cinder "
              "client back — the paper's fix.\n");
  return 0;
}
