// Scenario §3.1.2 / §7.2.2 — API bottlenecks under parallel VM creation.
//
// Creating many VM instances in parallel gets slower and slower; every
// operation eventually *succeeds*, so there are no error logs at any level
// and HANSEL (error-triggered) is never invoked.  GRETEL's latency tracker
// raises level-shift alarms on the Neutron APIs, its fingerprints identify
// the operation as VM creation, and root-cause analysis confirms a CPU
// surge on the Neutron server.
#include "examples/scenario_common.h"

int main() {
  using namespace gretel;
  auto scenario = examples::Scenario::prepare();

  const auto& vm_create =
      scenario.catalog.operation(scenario.catalog.canonical().vm_create);

  // A steady stream of VM creates; the Neutron server's CPU surges halfway
  // through (e.g. a runaway agent or noisy neighbour).
  std::vector<stack::Launch> launches;
  for (int i = 0; i < 150; ++i) {
    launches.push_back({&vm_create,
                        util::SimTime::epoch() +
                            util::SimDuration::millis(400 * i),
                        std::nullopt});
  }
  scenario.deployment.inject_cpu_surge(
      wire::ServiceKind::Neutron,
      util::SimTime::epoch() + util::SimDuration::seconds(25),
      util::SimTime::epoch() + util::SimDuration::minutes(5), 85.0);
  std::printf("[inject] CPU surge on the Neutron server from t=25s\n");

  const auto analyzer = scenario.run(launches);

  // Show the latency series GRETEL tracked for the API the paper plots.
  const auto api = scenario.catalog.well_known().neutron_get_ports;
  if (const auto* series = analyzer->latency_series(api);
      series && !series->empty()) {
    std::printf("\nGET /v2.0/ports.json latency (5s buckets):\n");
    double bucket = 0;
    double sum = 0;
    int n = 0;
    for (const auto& p : series->points()) {
      if (p.t_seconds >= bucket + 5.0) {
        if (n) std::printf("  t=%3.0fs  %.1f ms\n", bucket, sum / n);
        bucket += 5.0 * static_cast<int>((p.t_seconds - bucket) / 5.0);
        sum = 0;
        n = 0;
      }
      sum += p.value;
      ++n;
    }
    if (n) std::printf("  t=%3.0fs  %.1f ms\n", bucket, sum / n);
  }

  scenario.print_diagnoses(*analyzer);

  std::printf("\nNote: every operation succeeded — log analysis at TRACE "
              "level and error-triggered tools see nothing here.\n");
  return 0;
}
