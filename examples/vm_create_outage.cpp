// Scenario §3.1.1 / §7.2.3 — "VM create" fails with "No valid host was
// found" while every Nova service looks up.
//
// The Neutron Linux bridge agent has crashed on the compute nodes, so VM
// creation cannot attach a network port.  Log analysis shows nothing at
// ERROR level and the dashboard error is misleading; GRETEL identifies the
// failed operation as a VM create and expands its root-cause search beyond
// the error endpoints to find the dead agent on the compute host.
#include "examples/scenario_common.h"
#include "stack/faults.h"

int main() {
  using namespace gretel;
  auto scenario = examples::Scenario::prepare();

  const auto& vm_create =
      scenario.catalog.operation(scenario.catalog.canonical().vm_create);

  // The agent crashes on every compute node before the launch.
  scenario.deployment.crash_software(
      wire::ServiceKind::NovaCompute, "neutron-plugin-linuxbridge-agent",
      util::SimTime::epoch(),
      util::SimTime::epoch() + util::SimDuration::minutes(10));
  std::printf("[inject] neutron-plugin-linuxbridge-agent crashed on all "
              "compute nodes\n");

  // Launch a VM from the dashboard.  Port attachment (POST ports.json)
  // fails; Horizon eventually shows "No valid host was found".
  std::vector<stack::Launch> launches;
  // Background operations keep the control plane busy.
  for (int i = 0; i < 12; ++i) {
    launches.push_back({&vm_create,
                        util::SimTime::epoch() +
                            util::SimDuration::seconds(2 * i),
                        std::nullopt});
  }
  launches.push_back(
      {&vm_create, util::SimTime::epoch() + util::SimDuration::seconds(9),
       stack::no_valid_host_fault(scenario.step_of(
           vm_create, scenario.catalog.well_known().neutron_post_ports))});

  const auto analyzer = scenario.run(launches);
  scenario.print_diagnoses(*analyzer);

  std::printf("\nWhat the paper's tools saw instead: Nova logs at ERROR "
              "level were empty, and HANSEL stopped at the failing GET "
              "without naming the operation or the dead agent.\n");
  return 0;
}
