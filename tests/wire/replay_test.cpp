// ReplayEngine timestamp-policy tests: Accept counts regressions without
// touching the stream, Drop feeds a monotone subsequence, Resort feeds a
// stable time-sorted stream — and all three account for what they did.
#include "net/replay.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gretel::net {
namespace {

WireRecord record_at(std::int64_t ms, int tag) {
  WireRecord r;
  r.ts = util::SimTime(ms * 1000000LL);
  r.src_node = wire::NodeId(1);
  r.dst_node = wire::NodeId(2);
  r.conn_id = static_cast<std::uint32_t>(tag);
  r.bytes = "r" + std::to_string(tag);
  return r;
}

// Timestamps (ms): 10, 30, 20, 40, 5, 50 — two regressions (20 and 5)
// against the running maximum.
std::vector<WireRecord> skewed_capture() {
  return {record_at(10, 0), record_at(30, 1), record_at(20, 2),
          record_at(40, 3), record_at(5, 4),  record_at(50, 5)};
}

std::vector<WireRecord> fed(const std::vector<WireRecord>& records,
                            const ReplayOptions& options,
                            ReplayReport* report = nullptr) {
  std::vector<WireRecord> out;
  auto r = ReplayEngine::replay(
      records, options, [&out](const WireRecord& rec) { out.push_back(rec); });
  if (report) *report = r;
  return out;
}

TEST(Replay, AcceptFeedsAsIsAndCountsRegressions) {
  const auto records = skewed_capture();
  ReplayReport report;
  const auto out = fed(records, ReplayOptions{}, &report);

  ASSERT_EQ(out.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(out[i].bytes, records[i].bytes);
  }
  EXPECT_EQ(report.records, records.size());
  EXPECT_EQ(report.non_monotonic, 2u);
  EXPECT_EQ(report.dropped, 0u);
}

TEST(Replay, DropFeedsMonotoneSubsequence) {
  const auto records = skewed_capture();
  ReplayOptions options;
  options.timestamp_policy = TimestampPolicy::Drop;
  ReplayReport report;
  const auto out = fed(records, options, &report);

  EXPECT_EQ(report.non_monotonic, 2u);
  EXPECT_EQ(report.dropped, 2u);
  EXPECT_EQ(report.records, records.size() - 2);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].ts, out[i - 1].ts);
  }
  EXPECT_EQ(out[0].bytes, "r0");
  EXPECT_EQ(out[1].bytes, "r1");
  EXPECT_EQ(out[2].bytes, "r3");
  EXPECT_EQ(out[3].bytes, "r5");
}

TEST(Replay, ResortFeedsSortedStreamButStillCounts) {
  const auto records = skewed_capture();
  ReplayOptions options;
  options.timestamp_policy = TimestampPolicy::Resort;
  ReplayReport report;
  const auto out = fed(records, options, &report);

  EXPECT_EQ(report.non_monotonic, 2u);
  EXPECT_EQ(report.dropped, 0u);
  ASSERT_EQ(out.size(), records.size());
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].ts, out[i - 1].ts);
  }
  // 5, 10, 20, 30, 40, 50.
  EXPECT_EQ(out[0].bytes, "r4");
  EXPECT_EQ(out[1].bytes, "r0");
  EXPECT_EQ(out[2].bytes, "r2");
  EXPECT_EQ(out[3].bytes, "r1");
  EXPECT_EQ(out[5].bytes, "r5");
}

TEST(Replay, ResortTiesKeepCaptureOrder) {
  std::vector<WireRecord> records = {record_at(10, 0), record_at(10, 1),
                                     record_at(5, 2), record_at(10, 3)};
  ReplayOptions options;
  options.timestamp_policy = TimestampPolicy::Resort;
  const auto out = fed(records, options);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].bytes, "r2");
  EXPECT_EQ(out[1].bytes, "r0");
  EXPECT_EQ(out[2].bytes, "r1");
  EXPECT_EQ(out[3].bytes, "r3");
}

TEST(Replay, LoopedPoliciesScaleCounts) {
  const auto records = skewed_capture();
  ReplayOptions options;
  options.timestamp_policy = TimestampPolicy::Drop;
  std::size_t sunk = 0;
  const auto report = ReplayEngine::replay_looped(
      records, 3, options, [&sunk](const WireRecord&) { ++sunk; });
  EXPECT_EQ(report.non_monotonic, 6u);
  EXPECT_EQ(report.dropped, 6u);
  EXPECT_EQ(report.records, 12u);
  EXPECT_EQ(sunk, 12u);
}

TEST(Replay, MonotoneCaptureIsUntouchedByEveryPolicy) {
  std::vector<WireRecord> records = {record_at(1, 0), record_at(2, 1),
                                     record_at(3, 2)};
  for (const auto policy : {TimestampPolicy::Accept, TimestampPolicy::Drop,
                            TimestampPolicy::Resort}) {
    ReplayOptions options;
    options.timestamp_policy = policy;
    ReplayReport report;
    const auto out = fed(records, options, &report);
    ASSERT_EQ(out.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(out[i].bytes, records[i].bytes);
    }
    EXPECT_EQ(report.non_monotonic, 0u);
    EXPECT_EQ(report.dropped, 0u);
  }
}

}  // namespace
}  // namespace gretel::net
