#include "wire/http_codec.h"

#include <gtest/gtest.h>

#include "wire/message.h"  // is_error_status

namespace gretel::wire {
namespace {

HttpRequest sample_request() {
  HttpRequest req;
  req.method = HttpMethod::Post;
  req.target = "/v2.0/ports.json";
  req.headers.set("Host", "neutron");
  req.headers.set("X-Service", "nova");
  req.body = R"({"port": {"network_id": "abc"}})";
  return req;
}

TEST(HttpCodec, RequestRoundTrip) {
  const auto bytes = serialize(sample_request());
  const auto parsed = parse_http_request(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, HttpMethod::Post);
  EXPECT_EQ(parsed->target, "/v2.0/ports.json");
  EXPECT_EQ(parsed->headers.get("Host"), "neutron");
  EXPECT_EQ(parsed->headers.get("X-Service"), "nova");
  EXPECT_EQ(parsed->body, R"({"port": {"network_id": "abc"}})");
}

TEST(HttpCodec, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 413;
  resp.body = R"({"error": "Request Entity Too Large"})";
  const auto bytes = serialize(resp);
  const auto parsed = parse_http_response(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 413);
  EXPECT_EQ(parsed->reason, "Request Entity Too Large");
  EXPECT_EQ(parsed->body, resp.body);
}

TEST(HttpCodec, SerializeAddsContentLength) {
  const auto bytes = serialize(sample_request());
  EXPECT_NE(bytes.find("Content-Length: 31\r\n"), std::string::npos);
}

TEST(HttpCodec, HeaderLookupCaseInsensitive) {
  const auto parsed = parse_http_request(serialize(sample_request()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->headers.get("host"), "neutron");
  EXPECT_EQ(parsed->headers.get("X-SERVICE"), "nova");
  EXPECT_FALSE(parsed->headers.get("X-Missing").has_value());
}

TEST(HttpCodec, EmptyBodyRoundTrip) {
  HttpRequest req;
  req.method = HttpMethod::Get;
  req.target = "/v2.1/servers";
  const auto parsed = parse_http_request(serialize(req));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->body.empty());
}

TEST(HttpCodec, RejectsTruncatedBody) {
  auto bytes = serialize(sample_request());
  bytes.resize(bytes.size() - 5);
  EXPECT_FALSE(parse_http_request(bytes).has_value());
}

TEST(HttpCodec, RejectsMissingHeaderTerminator) {
  EXPECT_FALSE(
      parse_http_request("GET /x HTTP/1.1\r\nHost: a\r\n").has_value());
}

TEST(HttpCodec, RejectsBadMethod) {
  EXPECT_FALSE(
      parse_http_request("FETCH /x HTTP/1.1\r\n\r\n").has_value());
}

TEST(HttpCodec, RejectsBadVersion) {
  EXPECT_FALSE(parse_http_request("GET /x HTTP/2\r\n\r\n").has_value());
}

TEST(HttpCodec, RejectsEmptyTarget) {
  EXPECT_FALSE(parse_http_request("GET  HTTP/1.1\r\n\r\n").has_value());
}

TEST(HttpCodec, RejectsMalformedHeaderLine) {
  EXPECT_FALSE(parse_http_request(
                   "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n")
                   .has_value());
}

TEST(HttpCodec, RejectsBadContentLength) {
  EXPECT_FALSE(parse_http_request(
                   "GET /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n")
                   .has_value());
}

TEST(HttpCodec, RejectsGarbage) {
  EXPECT_FALSE(parse_http_request("").has_value());
  EXPECT_FALSE(parse_http_request("\r\n").has_value());
  EXPECT_FALSE(parse_http_request("random bytes").has_value());
  EXPECT_FALSE(parse_http_response("random bytes").has_value());
}

TEST(HttpCodec, ResponseRejectsBadStatus) {
  EXPECT_FALSE(parse_http_response("HTTP/1.1 99 Tiny\r\n\r\n").has_value());
  EXPECT_FALSE(parse_http_response("HTTP/1.1 700 Big\r\n\r\n").has_value());
  EXPECT_FALSE(parse_http_response("HTTP/1.1 abc X\r\n\r\n").has_value());
}

TEST(HttpCodec, ResponseDefaultReasonFromStatus) {
  HttpResponse resp;
  resp.status = 404;
  const auto bytes = serialize(resp);
  EXPECT_NE(bytes.find("404 Not Found"), std::string::npos);
}

TEST(ReasonPhrase, KnownAndUnknown) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(401), "Unauthorized");
  EXPECT_EQ(reason_phrase(413), "Request Entity Too Large");
  EXPECT_EQ(reason_phrase(299), "Unknown");
}

// Property sweep: round-trip holds for every status the simulator emits.
class HttpStatusRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(HttpStatusRoundTrip, SurvivesSerialization) {
  HttpResponse resp;
  resp.status = static_cast<std::uint16_t>(GetParam());
  resp.body = "x";
  const auto parsed = parse_http_response(serialize(resp));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, GetParam());
  EXPECT_EQ(is_error_status(parsed->status), GetParam() >= 400);
}

INSTANTIATE_TEST_SUITE_P(Statuses, HttpStatusRoundTrip,
                         ::testing::Values(200, 201, 202, 204, 400, 401, 403,
                                           404, 409, 413, 500, 503, 504));

// --- Zero-copy view parsers ---

bool inside(std::string_view view, std::string_view buffer) {
  if (view.empty()) return true;
  return view.data() >= buffer.data() &&
         view.data() + view.size() <= buffer.data() + buffer.size();
}

TEST(HttpCodecView, RequestViewMatchesOwningParse) {
  const auto bytes = serialize(sample_request());
  util::Arena arena;
  const auto view = parse_http_request(bytes, arena);
  const auto owned = parse_http_request(bytes);
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(owned.has_value());
  EXPECT_EQ(view->method, owned->method);
  EXPECT_EQ(view->target, owned->target);
  EXPECT_EQ(view->body, owned->body);
  ASSERT_EQ(view->headers.fields.size(), owned->headers.fields.size());
  for (std::size_t i = 0; i < view->headers.fields.size(); ++i) {
    EXPECT_EQ(view->headers.fields[i].name, owned->headers.fields[i].first);
    EXPECT_EQ(view->headers.fields[i].value, owned->headers.fields[i].second);
  }
}

TEST(HttpCodecView, ViewsPointIntoInputBuffer) {
  const auto bytes = serialize(sample_request());
  util::Arena arena;
  const auto view = parse_http_request(bytes, arena);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(inside(view->target, bytes));
  EXPECT_TRUE(inside(view->body, bytes));
  for (const auto& h : view->headers.fields) {
    EXPECT_TRUE(inside(h.name, bytes));
    EXPECT_TRUE(inside(h.value, bytes));
  }
}

TEST(HttpCodecView, ResponseViewMatchesOwningParse) {
  HttpResponse resp;
  resp.status = 503;
  resp.body = R"({"error": "Service Unavailable"})";
  const auto bytes = serialize(resp);
  util::Arena arena;
  const auto view = parse_http_response(bytes, arena);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->status, 503);
  EXPECT_EQ(view->reason, "Service Unavailable");
  EXPECT_EQ(view->body, resp.body);
  EXPECT_EQ(view->headers.get("content-length"),
            std::to_string(resp.body.size()));
}

TEST(HttpCodecView, RejectsSameMalformedInputs) {
  util::Arena arena;
  EXPECT_FALSE(parse_http_request("", arena).has_value());
  EXPECT_FALSE(parse_http_request("BOGUS / HTTP/1.1\r\n\r\n", arena));
  EXPECT_FALSE(parse_http_request("GET /x HTTP/1.1\r\nNoColon\r\n\r\n", arena));
  EXPECT_FALSE(
      parse_http_request("GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",
                         arena));
  EXPECT_FALSE(parse_http_response("HTTP/1.1 99 Bad\r\n\r\n", arena));
}

TEST(HttpCodecView, ManyHeadersStayDistinctAcrossArenaGrowth) {
  HttpRequest req;
  req.method = HttpMethod::Get;
  req.target = "/v2.1/servers";
  const auto name_of = [](int i) {
    std::string name = "X-H";
    name += std::to_string(i);
    return name;
  };
  const auto value_of = [](int i) {
    std::string value = "v";
    value += std::to_string(i);
    return value;
  };
  for (int i = 0; i < 64; ++i) {
    req.headers.set(name_of(i), value_of(i));
  }
  const auto bytes = serialize(req);
  util::Arena arena(64);  // tiny slabs force mid-parse slab growth
  const auto view = parse_http_request(bytes, arena);
  ASSERT_TRUE(view.has_value());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(view->headers.get(name_of(i)), value_of(i));
  }
}

}  // namespace
}  // namespace gretel::wire
