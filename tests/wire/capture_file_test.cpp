#include "net/capture_file.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace gretel::net {
namespace {

std::vector<WireRecord> sample_records() {
  std::vector<WireRecord> out;
  for (int i = 0; i < 5; ++i) {
    WireRecord r;
    r.ts = util::SimTime(1000000LL * i);
    r.src_node = wire::NodeId(static_cast<std::uint8_t>(i));
    r.dst_node = wire::NodeId(static_cast<std::uint8_t>(i + 1));
    r.src = {wire::Ipv4(10, 0, 0, static_cast<std::uint8_t>(i)),
             static_cast<std::uint16_t>(30000 + i)};
    r.dst = {wire::Ipv4(10, 0, 0, 99), 9696};
    r.conn_id = static_cast<std::uint32_t>(100 + i);
    r.is_amqp = (i % 2) == 0;
    r.truth_noise = i == 3;
    if (i != 4) {
      r.truth_instance = wire::OpInstanceId(static_cast<std::uint32_t>(i));
      r.truth_template = wire::OpTemplateId(7);
    }
    r.identifiers = {static_cast<std::uint32_t>(1000 + i), 42};
    r.bytes = "payload-" + std::to_string(i) +
              std::string("\x00\xCE\r\n", 4);  // binary-safe
    out.push_back(std::move(r));
  }
  return out;
}

TEST(CaptureFile, RoundTripPreservesEverything) {
  const auto records = sample_records();
  const auto decoded = decode_capture(encode_capture(records));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& a = records[i];
    const auto& b = (*decoded)[i];
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.src_node, b.src_node);
    EXPECT_EQ(a.dst_node, b.dst_node);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.conn_id, b.conn_id);
    EXPECT_EQ(a.is_amqp, b.is_amqp);
    EXPECT_EQ(a.truth_noise, b.truth_noise);
    EXPECT_EQ(a.truth_instance, b.truth_instance);
    EXPECT_EQ(a.truth_template, b.truth_template);
    EXPECT_EQ(a.identifiers, b.identifiers);
    EXPECT_EQ(a.bytes, b.bytes);
  }
}

TEST(CaptureFile, EmptyCapture) {
  const auto decoded = decode_capture(encode_capture({}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(CaptureFile, RejectsBadMagic) {
  auto data = encode_capture(sample_records());
  data[0] = 'X';
  EXPECT_FALSE(decode_capture(data).has_value());
}

TEST(CaptureFile, RejectsEveryTruncation) {
  const auto data = encode_capture(sample_records());
  // Sampled prefixes (every byte would be slow for big captures).
  for (std::size_t len = 0; len < data.size(); len += 7) {
    EXPECT_FALSE(decode_capture(data.substr(0, len)).has_value())
        << "prefix " << len;
  }
}

TEST(CaptureFile, RejectsTrailingGarbage) {
  auto data = encode_capture(sample_records());
  data += "x";
  EXPECT_FALSE(decode_capture(data).has_value());
}

TEST(CaptureFile, RejectsGarbage) {
  EXPECT_FALSE(decode_capture("").has_value());
  EXPECT_FALSE(decode_capture("random").has_value());
}

TEST(CaptureFile, FileRoundTrip) {
  const std::string path = "/tmp/gretel_capture_file_test.cap";
  const auto records = sample_records();
  ASSERT_TRUE(write_capture_file(path, records));
  const auto loaded = read_capture_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), records.size());
  EXPECT_EQ((*loaded)[2].bytes, records[2].bytes);
  std::remove(path.c_str());
}

TEST(CaptureFile, MissingFileIsNullopt) {
  EXPECT_FALSE(read_capture_file("/tmp/does-not-exist-gretel.cap")
                   .has_value());
}

TEST(CaptureFile, LenientMatchesStrictOnCleanInput) {
  const auto records = sample_records();
  const auto lenient = decode_capture_lenient(encode_capture(records));
  EXPECT_EQ(lenient.error_count, 0u);
  EXPECT_EQ(lenient.bytes_discarded, 0u);
  EXPECT_FALSE(lenient.truncated);
  ASSERT_EQ(lenient.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(lenient.records[i].bytes, records[i].bytes);
    EXPECT_EQ(lenient.records[i].ts, records[i].ts);
  }
}

TEST(CaptureFile, LenientSalvagesTruncatedPrefix) {
  const auto records = sample_records();
  const auto data = encode_capture(records);
  // Every sampled truncation point: the salvaged records must be a clean
  // prefix, fully intact, and the accounting must cover what was lost.
  for (std::size_t len = 12; len < data.size(); len += 5) {
    SCOPED_TRACE("prefix " + std::to_string(len));
    const auto lenient = decode_capture_lenient(data.substr(0, len));
    EXPECT_TRUE(lenient.truncated);
    ASSERT_LE(lenient.records.size(), records.size());
    EXPECT_EQ(lenient.error_count,
              records.size() - lenient.records.size());
    for (std::size_t i = 0; i < lenient.records.size(); ++i) {
      EXPECT_EQ(lenient.records[i].bytes, records[i].bytes);
      EXPECT_EQ(lenient.records[i].identifiers, records[i].identifiers);
    }
  }
  // Cutting just the last byte loses exactly the last record.
  const auto lenient = decode_capture_lenient(data.substr(0, data.size() - 1));
  EXPECT_EQ(lenient.records.size(), records.size() - 1);
  EXPECT_EQ(lenient.error_count, 1u);
  EXPECT_GT(lenient.bytes_discarded, 0u);
}

TEST(CaptureFile, LenientCountsTrailingGarbage) {
  auto data = encode_capture(sample_records());
  data += "tail-noise";
  const auto lenient = decode_capture_lenient(data);
  EXPECT_EQ(lenient.records.size(), sample_records().size());
  EXPECT_EQ(lenient.error_count, 0u);
  EXPECT_EQ(lenient.bytes_discarded, 10u);
  EXPECT_FALSE(lenient.truncated);
}

TEST(CaptureFile, LenientBadMagicSalvagesNothing) {
  auto data = encode_capture(sample_records());
  data[0] = 'X';
  const auto lenient = decode_capture_lenient(data);
  EXPECT_TRUE(lenient.records.empty());
  EXPECT_EQ(lenient.error_count, 1u);
  EXPECT_EQ(lenient.bytes_discarded, data.size());
  EXPECT_TRUE(lenient.truncated);
}

TEST(CaptureFile, LenientFileRead) {
  const std::string path = "/tmp/gretel_capture_lenient_test.cap";
  const auto records = sample_records();
  const auto data = encode_capture(records);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    // Simulate a recorder killed mid-write: half the capture hits disk.
    std::fwrite(data.data(), 1, data.size() / 2, f);
    std::fclose(f);
  }
  const auto lenient = read_capture_file_lenient(path);
  ASSERT_TRUE(lenient.has_value());
  EXPECT_TRUE(lenient->truncated);
  EXPECT_LT(lenient->records.size(), records.size());
  EXPECT_EQ(lenient->error_count,
            records.size() - lenient->records.size());
  std::remove(path.c_str());

  EXPECT_FALSE(
      read_capture_file_lenient("/tmp/does-not-exist-gretel.cap").has_value());
}

}  // namespace
}  // namespace gretel::net
