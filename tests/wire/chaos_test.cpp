// ChaosTap unit tests: the determinism contract (strict pass-through at
// zero rates, seed reproducibility, monotone drop nesting) and the exact
// accounting every injection leaves behind in stats() and audit().
#include "net/chaos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gretel::net {
namespace {

std::vector<WireRecord> make_records(std::size_t n, std::uint8_t nodes = 3) {
  std::vector<WireRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    WireRecord r;
    r.ts = util::SimTime(static_cast<std::int64_t>(1000000ULL * (i + 1)));
    r.src_node = wire::NodeId(static_cast<std::uint8_t>(i % nodes));
    r.dst_node = wire::NodeId(static_cast<std::uint8_t>((i + 1) % nodes));
    r.src = {wire::Ipv4(10, 0, 0, static_cast<std::uint8_t>(i % nodes)),
             static_cast<std::uint16_t>(30000 + i % 997)};
    r.dst = {wire::Ipv4(10, 0, 0, 99), 9696};
    r.conn_id = static_cast<std::uint32_t>(i);
    r.is_amqp = (i % 3) == 0;
    r.identifiers = {static_cast<std::uint32_t>(5000 + i)};
    r.bytes = "frame-" + std::to_string(i) + std::string("\x00\x7F\r\n", 4);
    out.push_back(std::move(r));
  }
  return out;
}

void expect_same_record(const WireRecord& a, const WireRecord& b) {
  EXPECT_EQ(a.ts, b.ts);
  EXPECT_EQ(a.src_node, b.src_node);
  EXPECT_EQ(a.dst_node, b.dst_node);
  EXPECT_EQ(a.conn_id, b.conn_id);
  EXPECT_EQ(a.is_amqp, b.is_amqp);
  EXPECT_EQ(a.identifiers, b.identifiers);
  EXPECT_EQ(a.bytes, b.bytes);
}

std::map<ChaosAction, std::uint64_t> audit_histogram(
    const std::vector<ChaosInjection>& audit) {
  std::map<ChaosAction, std::uint64_t> h;
  for (const auto& inj : audit) ++h[inj.action];
  return h;
}

TEST(ChaosTap, DisabledIsByteIdenticalPassThrough) {
  const auto records = make_records(64);
  ChaosStats stats;
  std::vector<ChaosInjection> audit;
  const auto out = ChaosTap::apply(ChaosConfig{}, records, &stats, &audit);

  ASSERT_EQ(out.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    expect_same_record(out[i], records[i]);
  }
  EXPECT_EQ(stats.records_in, records.size());
  EXPECT_EQ(stats.records_out, records.size());
  EXPECT_EQ(stats.total_dropped(), 0u);
  EXPECT_EQ(stats.truncated, 0u);
  EXPECT_EQ(stats.corrupted, 0u);
  EXPECT_EQ(stats.duplicated, 0u);
  EXPECT_EQ(stats.reordered, 0u);
  EXPECT_EQ(stats.skewed, 0u);
  EXPECT_EQ(stats.stalls, 0u);
  EXPECT_TRUE(audit.empty());
}

TEST(ChaosTap, SameSeedSameFate) {
  ChaosConfig config;
  config.seed = 4242;
  config.drop_rate = 0.08;
  config.truncate_rate = 0.05;
  config.corrupt_rate = 0.05;
  config.duplicate_rate = 0.04;
  config.reorder_rate = 0.06;
  config.clock_skew_max_ms = 20.0;
  config.stall_rate = 0.01;
  const auto records = make_records(400);

  std::vector<ChaosInjection> audit_a, audit_b;
  const auto a = ChaosTap::apply(config, records, nullptr, &audit_a);
  const auto b = ChaosTap::apply(config, records, nullptr, &audit_b);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    expect_same_record(a[i], b[i]);
  }
  ASSERT_EQ(audit_a.size(), audit_b.size());
  for (std::size_t i = 0; i < audit_a.size(); ++i) {
    EXPECT_EQ(audit_a[i].input_index, audit_b[i].input_index);
    EXPECT_EQ(audit_a[i].action, audit_b[i].action);
    EXPECT_EQ(audit_a[i].detail, audit_b[i].detail);
  }
}

TEST(ChaosTap, UniformDropExactAccounting) {
  ChaosConfig config;
  config.seed = 7;
  config.drop_rate = 0.2;
  const auto records = make_records(500);

  ChaosStats stats;
  std::vector<ChaosInjection> audit;
  const auto out = ChaosTap::apply(config, records, &stats, &audit);

  EXPECT_GT(stats.dropped_uniform, 0u);
  EXPECT_EQ(stats.records_in, records.size());
  EXPECT_EQ(stats.records_out, records.size() - stats.dropped_uniform);
  EXPECT_EQ(out.size(), stats.records_out);
  EXPECT_EQ(stats.total_dropped(), stats.dropped_uniform);
  EXPECT_EQ(audit.size(), stats.dropped_uniform);

  // Survivors arrive in order and byte-identical: drop-only chaos yields a
  // strict subsequence of the input.
  std::set<std::uint64_t> dropped;
  for (const auto& inj : audit) {
    EXPECT_EQ(inj.action, ChaosAction::Drop);
    dropped.insert(inj.input_index);
  }
  std::size_t oi = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (dropped.count(i)) continue;
    SCOPED_TRACE("input " + std::to_string(i));
    ASSERT_LT(oi, out.size());
    expect_same_record(out[oi++], records[i]);
  }
  EXPECT_EQ(oi, out.size());
}

TEST(ChaosTap, DropSetsNestAcrossRates) {
  // Fixed seed, increasing rate: the affected set must grow monotonically
  // (each frame's fate is one uniform draw compared against the rate).
  const auto records = make_records(600);
  std::set<std::uint64_t> previous;
  for (const double rate : {0.02, 0.08, 0.25}) {
    ChaosConfig config;
    config.seed = 99;
    config.drop_rate = rate;
    std::vector<ChaosInjection> audit;
    ChaosTap::apply(config, records, nullptr, &audit);
    std::set<std::uint64_t> dropped;
    for (const auto& inj : audit) dropped.insert(inj.input_index);
    EXPECT_GT(dropped.size(), previous.size());
    for (const auto idx : previous) {
      EXPECT_TRUE(dropped.count(idx))
          << "frame " << idx << " dropped at lower rate but not at " << rate;
    }
    previous = std::move(dropped);
  }
}

TEST(ChaosTap, BurstDropsConsecutiveRuns) {
  ChaosConfig config;
  config.seed = 11;
  config.burst_rate = 0.01;
  config.burst_length = 5;
  const auto records = make_records(1000);

  ChaosStats stats;
  std::vector<ChaosInjection> audit;
  const auto out = ChaosTap::apply(config, records, &stats, &audit);

  ASSERT_GT(stats.dropped_burst, 0u);
  EXPECT_EQ(out.size(), records.size() - stats.dropped_burst);
  EXPECT_EQ(audit_histogram(audit)[ChaosAction::BurstDrop],
            stats.dropped_burst);
  // Every burst is a run of consecutive indices: an onset entry (detail =
  // burst_length) followed by continuation entries at index+1, index+2, ...
  for (std::size_t i = 0; i + 1 < audit.size(); ++i) {
    if (audit[i + 1].detail == 0) {
      EXPECT_EQ(audit[i + 1].input_index, audit[i].input_index + 1);
    }
  }
}

TEST(ChaosTap, TruncationKeepsProperPrefix) {
  ChaosConfig config;
  config.seed = 13;
  config.truncate_rate = 1.0;
  const auto records = make_records(50);

  ChaosStats stats;
  std::vector<ChaosInjection> audit;
  const auto out = ChaosTap::apply(config, records, &stats, &audit);

  ASSERT_EQ(out.size(), records.size());
  EXPECT_EQ(stats.truncated, records.size());
  ASSERT_EQ(audit.size(), records.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(audit[i].action, ChaosAction::Truncate);
    ASSERT_GE(out[i].bytes.size(), 1u);
    ASSERT_LT(out[i].bytes.size(), records[i].bytes.size());
    EXPECT_EQ(out[i].bytes,
              records[i].bytes.substr(0, out[i].bytes.size()));
    EXPECT_EQ(static_cast<std::size_t>(audit[i].detail),
              out[i].bytes.size());
  }
}

TEST(ChaosTap, CorruptionFlipsExactlyOneByte) {
  ChaosConfig config;
  config.seed = 17;
  config.corrupt_rate = 1.0;
  const auto records = make_records(50);

  ChaosStats stats;
  std::vector<ChaosInjection> audit;
  const auto out = ChaosTap::apply(config, records, &stats, &audit);

  ASSERT_EQ(out.size(), records.size());
  EXPECT_EQ(stats.corrupted, records.size());
  ASSERT_EQ(audit.size(), records.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    ASSERT_EQ(out[i].bytes.size(), records[i].bytes.size());
    std::size_t diffs = 0, diff_at = 0;
    for (std::size_t p = 0; p < out[i].bytes.size(); ++p) {
      if (out[i].bytes[p] != records[i].bytes[p]) {
        ++diffs;
        diff_at = p;
      }
    }
    EXPECT_EQ(diffs, 1u);
    EXPECT_EQ(static_cast<std::int64_t>(diff_at), audit[i].detail);
  }
}

TEST(ChaosTap, DuplicationDeliversBackToBack) {
  ChaosConfig config;
  config.seed = 19;
  config.duplicate_rate = 1.0;
  const auto records = make_records(40);

  ChaosStats stats;
  const auto out = ChaosTap::apply(config, records, &stats);

  EXPECT_EQ(stats.duplicated, records.size());
  ASSERT_EQ(out.size(), 2 * records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    expect_same_record(out[2 * i], records[i]);
    expect_same_record(out[2 * i + 1], records[i]);
  }
}

TEST(ChaosTap, ReorderIsLossFreePermutation) {
  ChaosConfig config;
  config.seed = 23;
  config.reorder_rate = 0.3;
  config.reorder_max_distance = 4;
  const auto records = make_records(300);

  ChaosStats stats;
  std::vector<ChaosInjection> audit;
  const auto out = ChaosTap::apply(config, records, &stats, &audit);

  EXPECT_GT(stats.reordered, 0u);
  EXPECT_EQ(stats.total_dropped(), 0u);
  ASSERT_EQ(out.size(), records.size());
  // Nothing lost, nothing damaged: the output is a permutation of the input.
  std::multiset<std::string> in_bytes, out_bytes;
  for (const auto& r : records) in_bytes.insert(r.bytes);
  for (const auto& r : out) out_bytes.insert(r.bytes);
  EXPECT_EQ(in_bytes, out_bytes);
  for (const auto& inj : audit) {
    EXPECT_EQ(inj.action, ChaosAction::Reorder);
    EXPECT_GE(inj.detail, 1);
    EXPECT_LE(inj.detail,
              static_cast<std::int64_t>(config.reorder_max_distance));
  }
}

TEST(ChaosTap, ClockSkewConstantPerNode) {
  ChaosConfig config;
  config.seed = 29;
  config.clock_skew_max_ms = 50.0;
  const std::uint8_t nodes = 3;
  const auto records = make_records(90, nodes);

  ChaosStats stats;
  std::vector<ChaosInjection> audit;
  const auto out = ChaosTap::apply(config, records, &stats, &audit);

  ASSERT_EQ(out.size(), records.size());
  // One audit entry per node, each within the configured bound.
  std::map<std::uint64_t, std::int64_t> audited_skew;
  for (const auto& inj : audit) {
    ASSERT_EQ(inj.action, ChaosAction::ClockSkew);
    audited_skew[inj.input_index] = inj.detail;
    EXPECT_LE(std::abs(inj.detail),
              static_cast<std::int64_t>(50.0 * 1e6));
  }
  EXPECT_EQ(audit.size(), nodes);
  // Every frame from one node shifts by the same offset.
  std::map<std::uint8_t, std::int64_t> node_delta;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto delta = out[i].ts.nanos() - records[i].ts.nanos();
    const auto node = records[i].src_node.value();
    const auto [it, fresh] = node_delta.emplace(node, delta);
    if (!fresh) {
      EXPECT_EQ(it->second, delta) << "node " << int(node)
                                   << " frame " << i;
    }
  }
  EXPECT_EQ(node_delta.size(), nodes);
}

TEST(ChaosTap, ClockSkewIndependentOfNodeArrivalOrder) {
  ChaosConfig config;
  config.seed = 31;
  config.clock_skew_max_ms = 40.0;
  auto records = make_records(60, 3);

  const auto forward = ChaosTap::apply(config, records);
  std::map<std::uint8_t, std::int64_t> skew_fwd;
  for (std::size_t i = 0; i < records.size(); ++i) {
    skew_fwd[records[i].src_node.value()] =
        forward[i].ts.nanos() - records[i].ts.nanos();
  }

  std::reverse(records.begin(), records.end());
  const auto reversed = ChaosTap::apply(config, records);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reversed[i].ts.nanos() - records[i].ts.nanos(),
              skew_fwd[records[i].src_node.value()]);
  }
}

TEST(ChaosTap, StallHoldsAndFlushesInOrder) {
  ChaosConfig config;
  config.seed = 37;
  config.stall_rate = 1.0;  // stall begins on the very first frame
  config.stall_length = 10;
  config.stall_buffer = 64;  // roomy: nothing spills
  const auto records = make_records(30);

  ChaosStats stats;
  const auto out = ChaosTap::apply(config, records, &stats);

  EXPECT_GE(stats.stalls, 1u);
  EXPECT_EQ(stats.dropped_stall, 0u);
  ASSERT_EQ(out.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    expect_same_record(out[i], records[i]);
  }
}

TEST(ChaosTap, StallBoundedBufferShedsOldest) {
  ChaosConfig config;
  config.seed = 41;
  config.stall_rate = 1.0;
  config.stall_length = 100;  // longer than the stream: never resumes
  config.stall_buffer = 4;
  const auto records = make_records(20);

  ChaosStats stats;
  std::vector<ChaosInjection> audit;
  const auto out = ChaosTap::apply(config, records, &stats, &audit);

  // All 20 frames entered the stalled buffer; only the newest 4 survive to
  // the finish() flush, and the 16 spills are audited oldest-first.
  EXPECT_EQ(stats.stalls, 1u);
  EXPECT_EQ(stats.dropped_stall, records.size() - 4);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    expect_same_record(out[i], records[records.size() - 4 + i]);
  }
  std::uint64_t expect_idx = 0;
  for (const auto& inj : audit) {
    if (inj.action != ChaosAction::StallDrop) continue;
    EXPECT_EQ(inj.input_index, expect_idx++);
  }
  EXPECT_EQ(expect_idx, stats.dropped_stall);
}

TEST(ChaosTap, AuditHistogramMatchesStats) {
  ChaosConfig config;
  config.seed = 43;
  config.drop_rate = 0.05;
  config.burst_rate = 0.005;
  config.burst_length = 4;
  config.truncate_rate = 0.05;
  config.corrupt_rate = 0.05;
  config.duplicate_rate = 0.05;
  config.reorder_rate = 0.05;
  config.clock_skew_max_ms = 10.0;
  config.stall_rate = 0.005;
  config.stall_length = 8;
  config.stall_buffer = 4;
  const auto records = make_records(2000);

  ChaosStats stats;
  std::vector<ChaosInjection> audit;
  const auto out = ChaosTap::apply(config, records, &stats, &audit);

  auto h = audit_histogram(audit);
  EXPECT_EQ(h[ChaosAction::Drop], stats.dropped_uniform);
  EXPECT_EQ(h[ChaosAction::BurstDrop], stats.dropped_burst);
  EXPECT_EQ(h[ChaosAction::StallDrop], stats.dropped_stall);
  EXPECT_EQ(h[ChaosAction::Truncate], stats.truncated);
  EXPECT_EQ(h[ChaosAction::Corrupt], stats.corrupted);
  EXPECT_EQ(h[ChaosAction::Duplicate], stats.duplicated);
  EXPECT_EQ(h[ChaosAction::Reorder], stats.reordered);
  EXPECT_EQ(h[ChaosAction::Stall], stats.stalls);

  // Conservation: every input frame is either delivered once, dropped, or
  // delivered twice (duplicated).  finish() flushed everything held.
  EXPECT_EQ(stats.records_in, records.size());
  EXPECT_EQ(stats.records_out,
            stats.records_in - stats.total_dropped() + stats.duplicated);
  EXPECT_EQ(out.size(), stats.records_out);
}

TEST(ChaosTap, ToStringCoversEveryAction) {
  for (const auto action :
       {ChaosAction::Drop, ChaosAction::BurstDrop, ChaosAction::Truncate,
        ChaosAction::Corrupt, ChaosAction::Duplicate, ChaosAction::Reorder,
        ChaosAction::ClockSkew, ChaosAction::Stall, ChaosAction::StallDrop}) {
    EXPECT_STRNE(to_string(action), "unknown");
  }
}

}  // namespace
}  // namespace gretel::net
