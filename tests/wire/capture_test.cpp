#include "net/capture.h"

#include <gtest/gtest.h>

#include "wire/amqp_codec.h"
#include "wire/http_codec.h"

namespace gretel::net {
namespace {

using wire::ApiCatalog;
using wire::ApiKind;
using wire::HttpMethod;
using wire::ServiceKind;

TEST(NormalizeUri, ReplacesUuidSegments) {
  EXPECT_EQ(normalize_uri(
                "/v2/images/0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9/file"),
            "/v2/images/<ID>/file");
}

TEST(NormalizeUri, ReplacesNumericSegments) {
  EXPECT_EQ(normalize_uri("/v2.1/servers/12345"), "/v2.1/servers/<ID>");
}

TEST(NormalizeUri, PreservesJsonExtension) {
  EXPECT_EQ(normalize_uri("/v2.0/ports/0a1b2c3d-4e5f-6071-8293-a4b5.json"),
            "/v2.0/ports/<ID>.json");
}

TEST(NormalizeUri, DropsQueryString) {
  EXPECT_EQ(normalize_uri("/v2.0/ports.json?tenant_id=77"),
            "/v2.0/ports.json");
}

TEST(NormalizeUri, KeepsResourceNames) {
  EXPECT_EQ(normalize_uri("/v2.0/security-groups.json"),
            "/v2.0/security-groups.json");
  EXPECT_EQ(normalize_uri("/v2.1/os-hypervisors"), "/v2.1/os-hypervisors");
}

TEST(NormalizeUri, VersionSegmentsNotIds) {
  // "v2.1" has a dot-extension-looking tail but "v2" is not id-like enough
  // to rewrite... verify version prefixes survive.
  EXPECT_EQ(normalize_uri("/v2.1/flavors"), "/v2.1/flavors");
  EXPECT_EQ(normalize_uri("/v3/auth/tokens"), "/v3/auth/tokens");
}

TEST(NormalizeUri, EmptySegmentsPreserved) {
  EXPECT_EQ(normalize_uri("//v2.0/ports"), "//v2.0/ports");
  EXPECT_EQ(normalize_uri("/v2.0//ports"), "/v2.0//ports");
}

TEST(NormalizeUri, TrailingSlashPreserved) {
  EXPECT_EQ(normalize_uri("/v2.1/servers/"), "/v2.1/servers/");
  EXPECT_EQ(normalize_uri("/v2.1/servers/12345/"), "/v2.1/servers/<ID>/");
}

TEST(NormalizeUri, QueryOnlyTarget) {
  EXPECT_EQ(normalize_uri("?tenant_id=77"), "");
  EXPECT_EQ(normalize_uri("/?tenant_id=77"), "/");
}

TEST(NormalizeUri, XmlExtensionOnUuidSegment) {
  EXPECT_EQ(normalize_uri("/v2.0/ports/0a1b2c3d-4e5f-6071-8293-a4b5.xml"),
            "/v2.0/ports/<ID>.xml");
}

TEST(NormalizeUri, PureNumericShortSegmentsAreIds) {
  EXPECT_EQ(normalize_uri("/v2/servers/7"), "/v2/servers/<ID>");
  EXPECT_EQ(normalize_uri("/v2/servers/7/action"), "/v2/servers/<ID>/action");
}

TEST(NormalizeUri, LeadingDotSegmentKept) {
  // ".json" alone has no stem to rewrite (dot at position 0 is no
  // extension split).
  EXPECT_EQ(normalize_uri("/v2.0/.json"), "/v2.0/.json");
}

TEST(NormalizeUri, ArenaVariantMatchesAllocatingVariant) {
  util::Arena arena;
  for (const auto* target :
       {"/v2/images/0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9/file",
        "/v2.0/ports.json?tenant_id=77", "//v2.0//", "?q=1", "",
        "/v2.1/servers/12345/", "/v2.0/ports/0a1b-2c3d4e5f.json"}) {
    EXPECT_EQ(normalize_uri(target, arena), normalize_uri(target))
        << "target: " << target;
  }
}

TEST(ParseCorrelationId, AcceptsPlainReqIds) {
  EXPECT_EQ(parse_correlation_id(std::string_view("req-1")), 1u);
  EXPECT_EQ(parse_correlation_id(std::string_view("req-4294967295")),
            4294967295u);
}

TEST(ParseCorrelationId, RejectsOverflowInsteadOfWrapping) {
  // 2^32 would wrap to 0..., 2^32+6 to 6 — either silently aliases another
  // operation during snapshot reduction.
  EXPECT_EQ(parse_correlation_id(std::string_view("req-4294967296")), 0u);
  EXPECT_EQ(parse_correlation_id(std::string_view("req-4294967302")), 0u);
  EXPECT_EQ(parse_correlation_id(
                std::string_view("req-99999999999999999999999999")),
            0u);
}

TEST(ParseCorrelationId, RejectsMalformedValues) {
  EXPECT_EQ(parse_correlation_id(std::nullopt), 0u);
  EXPECT_EQ(parse_correlation_id(std::string_view("")), 0u);
  EXPECT_EQ(parse_correlation_id(std::string_view("req-")), 0u);
  EXPECT_EQ(parse_correlation_id(std::string_view("req-12x")), 0u);
  EXPECT_EQ(parse_correlation_id(std::string_view("REQ-12")), 0u);
  EXPECT_EQ(parse_correlation_id(std::string_view("12")), 0u);
}

class CaptureTapTest : public ::testing::Test {
 protected:
  CaptureTapTest()
      : rest_api_(catalog_.add_rest(ServiceKind::Neutron, HttpMethod::Post,
                                    "/v2.0/ports.json")),
        rest_id_api_(catalog_.add_rest(ServiceKind::Glance, HttpMethod::Get,
                                       "/v2/images/<ID>")),
        rpc_api_(catalog_.add_rpc(ServiceKind::NovaCompute, "nova-compute",
                                  "build_and_run_instance")),
        tap_(&catalog_, {{9696, ServiceKind::Neutron},
                         {9292, ServiceKind::Glance}}) {}

  WireRecord make_rest_record(std::string bytes, std::uint16_t dst_port,
                              std::uint32_t conn) {
    WireRecord r;
    r.ts = util::SimTime(1000);
    r.src_node = wire::NodeId(0);
    r.dst_node = wire::NodeId(1);
    r.dst.port = dst_port;
    r.conn_id = conn;
    r.bytes = std::move(bytes);
    return r;
  }

  ApiCatalog catalog_;
  wire::ApiId rest_api_;
  wire::ApiId rest_id_api_;
  wire::ApiId rpc_api_;
  CaptureTap tap_;
};

TEST_F(CaptureTapTest, DecodesRestRequest) {
  wire::HttpRequest req;
  req.method = HttpMethod::Post;
  req.target = "/v2.0/ports.json";
  const auto ev =
      tap_.decode(make_rest_record(wire::serialize(req), 9696, 7));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->api, rest_api_);
  EXPECT_EQ(ev->kind, ApiKind::Rest);
  EXPECT_TRUE(ev->is_request());
  EXPECT_EQ(ev->conn_id, 7u);
  EXPECT_GT(ev->wire_bytes, 0u);
}

TEST_F(CaptureTapTest, DecodesConcreteUriViaNormalization) {
  wire::HttpRequest req;
  req.method = HttpMethod::Get;
  req.target = "/v2/images/0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9";
  const auto ev =
      tap_.decode(make_rest_record(wire::serialize(req), 9292, 8));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->api, rest_id_api_);
}

TEST_F(CaptureTapTest, ResponseAttributedViaConnection) {
  wire::HttpRequest req;
  req.method = HttpMethod::Post;
  req.target = "/v2.0/ports.json";
  ASSERT_TRUE(
      tap_.decode(make_rest_record(wire::serialize(req), 9696, 42)));

  wire::HttpResponse resp;
  resp.status = 409;
  const auto ev =
      tap_.decode(make_rest_record(wire::serialize(resp), 33000, 42));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->api, rest_api_);
  EXPECT_TRUE(ev->is_response());
  EXPECT_TRUE(ev->is_error());
  EXPECT_EQ(ev->status, 409);
}

TEST_F(CaptureTapTest, ResponseWithoutRequestDropped) {
  wire::HttpResponse resp;
  resp.status = 200;
  const auto ev =
      tap_.decode(make_rest_record(wire::serialize(resp), 33000, 999));
  EXPECT_FALSE(ev.has_value());
  EXPECT_EQ(tap_.stats().unknown_api, 1u);
}

TEST_F(CaptureTapTest, UnknownPortDropped) {
  wire::HttpRequest req;
  req.method = HttpMethod::Post;
  req.target = "/v2.0/ports.json";
  EXPECT_FALSE(
      tap_.decode(make_rest_record(wire::serialize(req), 1234, 1)));
  EXPECT_EQ(tap_.stats().unknown_api, 1u);
}

TEST_F(CaptureTapTest, UnknownApiDropped) {
  wire::HttpRequest req;
  req.method = HttpMethod::Delete;
  req.target = "/v2.0/ports.json";  // DELETE not registered
  EXPECT_FALSE(
      tap_.decode(make_rest_record(wire::serialize(req), 9696, 1)));
}

TEST_F(CaptureTapTest, GarbageCountsDecodeFailure) {
  EXPECT_FALSE(tap_.decode(make_rest_record("not http", 9696, 1)));
  EXPECT_EQ(tap_.stats().decode_failures, 1u);
}

TEST_F(CaptureTapTest, DecodesAmqpPublishAndDeliver) {
  wire::AmqpFrame frame;
  frame.type = wire::AmqpFrameType::Publish;
  frame.routing_key = "nova-compute.compute-2";
  frame.method_name = "build_and_run_instance";
  frame.msg_id = 77;

  auto rec = make_rest_record(wire::serialize(frame), 5672, 0);
  rec.is_amqp = true;
  const auto req_ev = tap_.decode(rec);
  ASSERT_TRUE(req_ev.has_value());
  EXPECT_EQ(req_ev->api, rpc_api_);
  EXPECT_EQ(req_ev->kind, ApiKind::Rpc);
  EXPECT_TRUE(req_ev->is_request());
  EXPECT_EQ(req_ev->msg_id, 77u);

  frame.type = wire::AmqpFrameType::Deliver;
  frame.payload = R"({"result": "ok"})";
  rec.bytes = wire::serialize(frame);
  const auto resp_ev = tap_.decode(rec);
  ASSERT_TRUE(resp_ev.has_value());
  EXPECT_TRUE(resp_ev->is_response());
  EXPECT_EQ(resp_ev->status, wire::kStatusOk);
  EXPECT_FALSE(resp_ev->is_error());
}

TEST_F(CaptureTapTest, AmqpErrorPayloadFlagged) {
  wire::AmqpFrame frame;
  frame.type = wire::AmqpFrameType::Deliver;
  frame.routing_key = "nova-compute.compute-2";
  frame.method_name = "build_and_run_instance";
  frame.msg_id = 78;
  frame.payload = wire::make_rpc_error_payload("RemoteError", "boom");

  auto rec = make_rest_record(wire::serialize(frame), 5672, 0);
  rec.is_amqp = true;
  const auto ev = tap_.decode(rec);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->is_error());
  EXPECT_NE(ev->error_text.find("boom"), std::string::npos);
}

TEST_F(CaptureTapTest, GroundTruthLabelsCopied) {
  wire::HttpRequest req;
  req.method = HttpMethod::Post;
  req.target = "/v2.0/ports.json";
  auto rec = make_rest_record(wire::serialize(req), 9696, 5);
  rec.truth_instance = wire::OpInstanceId(12);
  rec.truth_template = wire::OpTemplateId(3);
  rec.truth_noise = true;
  rec.identifiers = {101, 202};
  const auto ev = tap_.decode(rec);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->truth_instance, wire::OpInstanceId(12));
  EXPECT_EQ(ev->truth_template, wire::OpTemplateId(3));
  EXPECT_TRUE(ev->truth_noise);
  EXPECT_EQ(ev->identifiers, (std::vector<std::uint32_t>{101, 202}));
}

}  // namespace
}  // namespace gretel::net
