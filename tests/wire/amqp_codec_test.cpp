#include "wire/amqp_codec.h"

#include <gtest/gtest.h>

namespace gretel::wire {
namespace {

AmqpFrame sample_frame() {
  AmqpFrame f;
  f.type = AmqpFrameType::Publish;
  f.channel = 3;
  f.routing_key = "nova-compute.compute-1";
  f.method_name = "build_and_run_instance";
  f.msg_id = 0xDEADBEEFCAFEBABEull;
  f.payload = R"({"args": {"instance": "i-1"}})";
  return f;
}

TEST(AmqpCodec, RoundTrip) {
  const auto bytes = serialize(sample_frame());
  const auto parsed = parse_amqp_frame(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, AmqpFrameType::Publish);
  EXPECT_EQ(parsed->channel, 3);
  EXPECT_EQ(parsed->routing_key, "nova-compute.compute-1");
  EXPECT_EQ(parsed->method_name, "build_and_run_instance");
  EXPECT_EQ(parsed->msg_id, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(parsed->payload, sample_frame().payload);
}

TEST(AmqpCodec, DeliverRoundTrip) {
  auto f = sample_frame();
  f.type = AmqpFrameType::Deliver;
  const auto parsed = parse_amqp_frame(serialize(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, AmqpFrameType::Deliver);
}

TEST(AmqpCodec, EmptyPayload) {
  auto f = sample_frame();
  f.payload.clear();
  const auto parsed = parse_amqp_frame(serialize(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(AmqpCodec, BinaryPayloadSurvives) {
  auto f = sample_frame();
  f.payload = std::string("\x00\x01\xFF\xCE\r\n", 6);
  const auto parsed = parse_amqp_frame(serialize(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, f.payload);
}

TEST(AmqpCodec, RejectsBadMagic) {
  auto bytes = serialize(sample_frame());
  bytes[0] = 'X';
  EXPECT_FALSE(parse_amqp_frame(bytes).has_value());
}

TEST(AmqpCodec, RejectsBadFrameType) {
  auto bytes = serialize(sample_frame());
  bytes[1] = 9;
  EXPECT_FALSE(parse_amqp_frame(bytes).has_value());
}

TEST(AmqpCodec, RejectsTruncation) {
  const auto bytes = serialize(sample_frame());
  // Every strict prefix must fail to parse.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(parse_amqp_frame(bytes.substr(0, len)).has_value())
        << "prefix of length " << len << " unexpectedly parsed";
  }
}

TEST(AmqpCodec, RejectsTrailingGarbage) {
  auto bytes = serialize(sample_frame());
  bytes += "extra";
  EXPECT_FALSE(parse_amqp_frame(bytes).has_value());
}

TEST(AmqpCodec, RejectsMissingFrameEnd) {
  auto bytes = serialize(sample_frame());
  bytes.back() = 0x00;
  EXPECT_FALSE(parse_amqp_frame(bytes).has_value());
}

TEST(RpcErrorPayload, RoundTripDetection) {
  const auto payload =
      make_rpc_error_payload("RemoteError", "No valid host was found");
  EXPECT_TRUE(rpc_payload_has_error(payload));
  EXPECT_NE(payload.find("RemoteError"), std::string::npos);
  EXPECT_NE(payload.find("No valid host was found"), std::string::npos);
}

TEST(RpcErrorPayload, CleanPayloadNotFlagged) {
  EXPECT_FALSE(rpc_payload_has_error(R"({"result": "ok"})"));
  EXPECT_FALSE(rpc_payload_has_error(""));
  // The marker must be the quoted oslo key, not a substring in user data.
  EXPECT_FALSE(rpc_payload_has_error(R"({"note": "no error here"})"));
}

TEST(RpcErrorPayload, FailureKeyAloneDetected) {
  EXPECT_TRUE(rpc_payload_has_error(R"({"failure": "timeout"})"));
}

// --- Zero-copy view parser ---

TEST(AmqpCodecView, ViewMatchesOwningParse) {
  const auto bytes = serialize(sample_frame());
  const auto view = parse_amqp_frame_view(bytes);
  const auto owned = parse_amqp_frame(bytes);
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(owned.has_value());
  EXPECT_EQ(view->type, owned->type);
  EXPECT_EQ(view->channel, owned->channel);
  EXPECT_EQ(view->routing_key, owned->routing_key);
  EXPECT_EQ(view->method_name, owned->method_name);
  EXPECT_EQ(view->msg_id, owned->msg_id);
  EXPECT_EQ(view->correlation_id, owned->correlation_id);
  EXPECT_EQ(view->payload, owned->payload);
}

TEST(AmqpCodecView, ViewsPointIntoInputBuffer) {
  const auto bytes = serialize(sample_frame());
  const auto view = parse_amqp_frame_view(bytes);
  ASSERT_TRUE(view.has_value());
  const auto inside = [&](std::string_view v) {
    return v.data() >= bytes.data() &&
           v.data() + v.size() <= bytes.data() + bytes.size();
  };
  EXPECT_TRUE(inside(view->routing_key));
  EXPECT_TRUE(inside(view->method_name));
  EXPECT_TRUE(inside(view->payload));
}

TEST(AmqpCodecView, RejectsSameMalformedInputs) {
  EXPECT_FALSE(parse_amqp_frame_view("").has_value());
  auto bytes = serialize(sample_frame());
  bytes[0] = 0x00;  // bad magic
  EXPECT_FALSE(parse_amqp_frame_view(bytes).has_value());
  bytes = serialize(sample_frame());
  bytes.back() = 0x00;  // missing frame-end octet
  EXPECT_FALSE(parse_amqp_frame_view(bytes).has_value());
  bytes = serialize(sample_frame());
  EXPECT_FALSE(
      parse_amqp_frame_view(std::string_view(bytes).substr(0, 10)));
}

TEST(AmqpCodecView, HugeDeclaredPayloadLengthRejectedWithoutWrap) {
  // A frame whose u32 payload-length field claims UINT32_MAX must be
  // rejected cleanly: the bounds check `size < payload_len + 1` wrapped to
  // zero before the 64-bit fix and walked off the buffer.
  auto bytes = serialize(sample_frame());
  const auto end = bytes.size() - 2;  // last payload byte | frame-end
  const auto len_at = end - sample_frame().payload.size() - 3;
  for (int i = 0; i < 4; ++i) bytes[len_at + i] = '\xFF';
  EXPECT_FALSE(parse_amqp_frame_view(bytes).has_value());
  EXPECT_FALSE(parse_amqp_frame(bytes).has_value());
}

}  // namespace
}  // namespace gretel::wire
