#include "wire/amqp_codec.h"

#include <gtest/gtest.h>

namespace gretel::wire {
namespace {

AmqpFrame sample_frame() {
  AmqpFrame f;
  f.type = AmqpFrameType::Publish;
  f.channel = 3;
  f.routing_key = "nova-compute.compute-1";
  f.method_name = "build_and_run_instance";
  f.msg_id = 0xDEADBEEFCAFEBABEull;
  f.payload = R"({"args": {"instance": "i-1"}})";
  return f;
}

TEST(AmqpCodec, RoundTrip) {
  const auto bytes = serialize(sample_frame());
  const auto parsed = parse_amqp_frame(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, AmqpFrameType::Publish);
  EXPECT_EQ(parsed->channel, 3);
  EXPECT_EQ(parsed->routing_key, "nova-compute.compute-1");
  EXPECT_EQ(parsed->method_name, "build_and_run_instance");
  EXPECT_EQ(parsed->msg_id, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(parsed->payload, sample_frame().payload);
}

TEST(AmqpCodec, DeliverRoundTrip) {
  auto f = sample_frame();
  f.type = AmqpFrameType::Deliver;
  const auto parsed = parse_amqp_frame(serialize(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, AmqpFrameType::Deliver);
}

TEST(AmqpCodec, EmptyPayload) {
  auto f = sample_frame();
  f.payload.clear();
  const auto parsed = parse_amqp_frame(serialize(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(AmqpCodec, BinaryPayloadSurvives) {
  auto f = sample_frame();
  f.payload = std::string("\x00\x01\xFF\xCE\r\n", 6);
  const auto parsed = parse_amqp_frame(serialize(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, f.payload);
}

TEST(AmqpCodec, RejectsBadMagic) {
  auto bytes = serialize(sample_frame());
  bytes[0] = 'X';
  EXPECT_FALSE(parse_amqp_frame(bytes).has_value());
}

TEST(AmqpCodec, RejectsBadFrameType) {
  auto bytes = serialize(sample_frame());
  bytes[1] = 9;
  EXPECT_FALSE(parse_amqp_frame(bytes).has_value());
}

TEST(AmqpCodec, RejectsTruncation) {
  const auto bytes = serialize(sample_frame());
  // Every strict prefix must fail to parse.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(parse_amqp_frame(bytes.substr(0, len)).has_value())
        << "prefix of length " << len << " unexpectedly parsed";
  }
}

TEST(AmqpCodec, RejectsTrailingGarbage) {
  auto bytes = serialize(sample_frame());
  bytes += "extra";
  EXPECT_FALSE(parse_amqp_frame(bytes).has_value());
}

TEST(AmqpCodec, RejectsMissingFrameEnd) {
  auto bytes = serialize(sample_frame());
  bytes.back() = 0x00;
  EXPECT_FALSE(parse_amqp_frame(bytes).has_value());
}

TEST(RpcErrorPayload, RoundTripDetection) {
  const auto payload =
      make_rpc_error_payload("RemoteError", "No valid host was found");
  EXPECT_TRUE(rpc_payload_has_error(payload));
  EXPECT_NE(payload.find("RemoteError"), std::string::npos);
  EXPECT_NE(payload.find("No valid host was found"), std::string::npos);
}

TEST(RpcErrorPayload, CleanPayloadNotFlagged) {
  EXPECT_FALSE(rpc_payload_has_error(R"({"result": "ok"})"));
  EXPECT_FALSE(rpc_payload_has_error(""));
  // The marker must be the quoted oslo key, not a substring in user data.
  EXPECT_FALSE(rpc_payload_has_error(R"({"note": "no error here"})"));
}

TEST(RpcErrorPayload, FailureKeyAloneDetected) {
  EXPECT_TRUE(rpc_payload_has_error(R"({"failure": "timeout"})"));
}

}  // namespace
}  // namespace gretel::wire
