#include "wire/api.h"

#include <gtest/gtest.h>

namespace gretel::wire {
namespace {

TEST(ApiCatalog, AddRestAssignsDenseIds) {
  ApiCatalog cat;
  const auto a = cat.add_rest(ServiceKind::Nova, HttpMethod::Post,
                              "/v2.1/servers");
  const auto b = cat.add_rest(ServiceKind::Nova, HttpMethod::Get,
                              "/v2.1/servers/<ID>");
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(cat.size(), 2u);
}

TEST(ApiCatalog, AddRestDeduplicates) {
  ApiCatalog cat;
  const auto a = cat.add_rest(ServiceKind::Nova, HttpMethod::Post, "/x");
  const auto b = cat.add_rest(ServiceKind::Nova, HttpMethod::Post, "/x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(cat.size(), 1u);
}

TEST(ApiCatalog, SamePathDifferentMethodOrService) {
  ApiCatalog cat;
  const auto a = cat.add_rest(ServiceKind::Nova, HttpMethod::Get, "/x");
  const auto b = cat.add_rest(ServiceKind::Nova, HttpMethod::Post, "/x");
  const auto c = cat.add_rest(ServiceKind::Glance, HttpMethod::Get, "/x");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(cat.size(), 3u);
}

TEST(ApiCatalog, FindRest) {
  ApiCatalog cat;
  const auto id = cat.add_rest(ServiceKind::Neutron, HttpMethod::Get,
                               "/v2.0/ports.json");
  EXPECT_EQ(cat.find_rest(ServiceKind::Neutron, HttpMethod::Get,
                          "/v2.0/ports.json"),
            id);
  EXPECT_FALSE(cat.find_rest(ServiceKind::Neutron, HttpMethod::Post,
                             "/v2.0/ports.json")
                   .has_value());
  EXPECT_FALSE(
      cat.find_rest(ServiceKind::Nova, HttpMethod::Get, "/v2.0/ports.json")
          .has_value());
}

TEST(ApiCatalog, AddAndFindRpc) {
  ApiCatalog cat;
  const auto id = cat.add_rpc(ServiceKind::NovaCompute, "nova-compute",
                              "build_and_run_instance");
  EXPECT_EQ(cat.find_rpc(ServiceKind::NovaCompute, "build_and_run_instance"),
            id);
  EXPECT_FALSE(
      cat.find_rpc(ServiceKind::Nova, "build_and_run_instance").has_value());
  EXPECT_EQ(cat.get(id).kind, ApiKind::Rpc);
  EXPECT_EQ(cat.get(id).rpc_method, "build_and_run_instance");
}

TEST(ApiCatalog, CountByKindAndService) {
  ApiCatalog cat;
  cat.add_rest(ServiceKind::Nova, HttpMethod::Get, "/a");
  cat.add_rest(ServiceKind::Nova, HttpMethod::Get, "/b");
  cat.add_rest(ServiceKind::Glance, HttpMethod::Get, "/c");
  cat.add_rpc(ServiceKind::Neutron, "neutron", "m");
  EXPECT_EQ(cat.count(ApiKind::Rest), 3u);
  EXPECT_EQ(cat.count(ApiKind::Rpc), 1u);
  EXPECT_EQ(cat.count(ApiKind::Rest, ServiceKind::Nova), 2u);
  EXPECT_EQ(cat.count(ApiKind::Rpc, ServiceKind::Neutron), 1u);
}

TEST(ApiDescriptor, StateChangeClassification) {
  ApiCatalog cat;
  const auto get = cat.add_rest(ServiceKind::Nova, HttpMethod::Get, "/g");
  const auto post = cat.add_rest(ServiceKind::Nova, HttpMethod::Post, "/p");
  const auto put = cat.add_rest(ServiceKind::Nova, HttpMethod::Put, "/u");
  const auto del = cat.add_rest(ServiceKind::Nova, HttpMethod::Delete, "/d");
  const auto head = cat.add_rest(ServiceKind::Nova, HttpMethod::Head, "/h");
  const auto rpc = cat.add_rpc(ServiceKind::Nova, "nova", "noop");

  EXPECT_FALSE(cat.get(get).state_change());
  EXPECT_FALSE(cat.get(head).state_change());
  EXPECT_TRUE(cat.get(post).state_change());
  EXPECT_TRUE(cat.get(put).state_change());
  EXPECT_TRUE(cat.get(del).state_change());
  // §5.3.1: RPCs count as state-change operations for matching.
  EXPECT_TRUE(cat.get(rpc).state_change());
}

TEST(ApiDescriptor, DisplayName) {
  ApiCatalog cat;
  const auto rest = cat.add_rest(ServiceKind::Neutron, HttpMethod::Post,
                                 "/v2.0/ports.json");
  const auto rpc = cat.add_rpc(ServiceKind::Neutron, "neutron",
                               "get_devices_details_list");
  EXPECT_EQ(cat.get(rest).display_name(), "POST neutron /v2.0/ports.json");
  EXPECT_EQ(cat.get(rpc).display_name(),
            "RPC neutron get_devices_details_list");
}

TEST(HttpMethodParse, RoundTrip) {
  for (auto m : {HttpMethod::Get, HttpMethod::Post, HttpMethod::Put,
                 HttpMethod::Delete, HttpMethod::Head, HttpMethod::Patch}) {
    EXPECT_EQ(parse_http_method(to_string(m)), m);
  }
  EXPECT_FALSE(parse_http_method("FETCH").has_value());
  EXPECT_FALSE(parse_http_method("get").has_value());
}

}  // namespace
}  // namespace gretel::wire
