// CRC-32 (IEEE, reflected): known-answer vectors, incremental equivalence,
// and sensitivity — the checksum every persist-layer section rides on.
#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace gretel::util {
namespace {

TEST(Crc32, KnownAnswerVectors) {
  // The canonical check value of the CRC-32/ISO-HDLC family.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = crc32_update(0, std::string_view(data).substr(0, split));
    crc = crc32_update(crc, std::string_view(data).substr(split));
    EXPECT_EQ(crc, crc32(data)) << "split at " << split;
  }
}

TEST(Crc32, EveryBitFlipChangesTheSum) {
  const std::string data = "GRTCKP01 section body";
  const auto base = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = data;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      EXPECT_NE(crc32(mutated), base) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32, ZeroBytesAreNotTransparent) {
  // Appending zeros must change the sum (a naive additive checksum fails
  // this; truncation detection depends on it).
  EXPECT_NE(crc32(std::string("abc")), crc32(std::string("abc\0", 4)));
}

}  // namespace
}  // namespace gretel::util
