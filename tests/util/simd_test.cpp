// Property tests pinning every util/simd.h kernel byte-identical to its
// scalar reference twin — the contract the detector's determinism guarantee
// (SIMD build output == scalar build output) rests on.
//
// Widths sweep 0..130 so every code path is exercised: empty input, the
// scalar tail alone, exactly one vector block, block boundaries ±1 for both
// the 8/16-lane u16 kernels and the 16/32-lane u8 kernels, and multi-block
// inputs with leftovers.  Needles are planted at the first, last and
// interior positions, duplicated, and omitted entirely; scans also run from
// odd offsets so unaligned loads are covered.
#include "util/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace gretel::simd {
namespace {

constexpr std::size_t kMaxWidth = 130;

std::vector<std::uint16_t> random_u16(util::Rng& rng, std::size_t n,
                                      std::uint16_t alphabet) {
  std::vector<std::uint16_t> out(n);
  for (auto& v : out) v = static_cast<std::uint16_t>(rng.next_below(alphabet));
  return out;
}

TEST(SimdKernels, ReportsAKnownKernelFamily) {
  const std::string k = compiled_kernel();
  EXPECT_TRUE(k == "avx2" || k == "sse2" || k == "neon" || k == "scalar");
  EXPECT_STREQ(active_kernel(), compiled_kernel());
}

TEST(SimdKernels, ForceScalarReroutesDispatch) {
  set_force_scalar(true);
  EXPECT_STREQ(active_kernel(), "scalar");
  set_force_scalar(false);
}

TEST(SimdKernels, FindEqU16MatchesScalarAcrossWidths) {
  util::Rng rng(0x51D1);
  for (std::size_t n = 0; n <= kMaxWidth; ++n) {
    // Small alphabet: plenty of hits and duplicates at every width.
    auto data = random_u16(rng, n, 7);
    for (std::uint16_t v = 0; v < 8; ++v) {
      EXPECT_EQ(find_first_eq_u16(data.data(), n, v),
                scalar::find_first_eq_u16(data.data(), n, v))
          << "n=" << n << " v=" << v;
      EXPECT_EQ(find_last_eq_u16(data.data(), n, v),
                scalar::find_last_eq_u16(data.data(), n, v))
          << "n=" << n << " v=" << v;
    }
  }
}

TEST(SimdKernels, FindEqU16EdgePositions) {
  for (std::size_t n = 1; n <= kMaxWidth; ++n) {
    std::vector<std::uint16_t> data(n, 0xAAAA);
    for (std::size_t pos : {std::size_t{0}, n / 2, n - 1}) {
      data.assign(n, 0xAAAA);
      data[pos] = 0x1234;
      EXPECT_EQ(find_first_eq_u16(data.data(), n, 0x1234), pos);
      EXPECT_EQ(find_last_eq_u16(data.data(), n, 0x1234), pos);
    }
    // Absent needle.
    data.assign(n, 0xAAAA);
    EXPECT_EQ(find_first_eq_u16(data.data(), n, 0x1234), npos);
    EXPECT_EQ(find_last_eq_u16(data.data(), n, 0x1234), npos);
  }
}

TEST(SimdKernels, FindEqU16DuplicatesPickCorrectEnd) {
  for (std::size_t n = 2; n <= kMaxWidth; ++n) {
    std::vector<std::uint16_t> data(n, 9);
    EXPECT_EQ(find_first_eq_u16(data.data(), n, 9), 0u);
    EXPECT_EQ(find_last_eq_u16(data.data(), n, 9), n - 1);
  }
}

TEST(SimdKernels, FindEqU16MisalignedBase) {
  // Start the scan at every offset into a buffer so vector loads hit
  // unaligned addresses.
  util::Rng rng(0xA11C);
  auto data = random_u16(rng, kMaxWidth, 5);
  for (std::size_t off = 0; off < 33 && off < data.size(); ++off) {
    const auto n = data.size() - off;
    for (std::uint16_t v = 0; v < 6; ++v) {
      EXPECT_EQ(find_first_eq_u16(data.data() + off, n, v),
                scalar::find_first_eq_u16(data.data() + off, n, v))
          << "off=" << off << " v=" << v;
      EXPECT_EQ(find_last_eq_u16(data.data() + off, n, v),
                scalar::find_last_eq_u16(data.data() + off, n, v))
          << "off=" << off << " v=" << v;
    }
  }
}

TEST(SimdKernels, FlagScansMatchScalarAcrossWidthsAndDensities) {
  util::Rng rng(0xF1A6);
  // Densities from all-clear through sparse to all-set.
  for (const int permille : {0, 8, 125, 500, 1000}) {
    for (std::size_t n = 0; n <= kMaxWidth; ++n) {
      std::vector<std::uint8_t> flags(n);
      for (auto& f : flags) {
        f = rng.next_below(1000) < static_cast<std::uint64_t>(permille)
                ? static_cast<std::uint8_t>(1 + rng.next_below(255))
                : 0;
      }
      EXPECT_EQ(find_first_set_u8(flags.data(), n),
                scalar::find_first_set_u8(flags.data(), n))
          << "n=" << n << " p=" << permille;
      EXPECT_EQ(find_last_set_u8(flags.data(), n),
                scalar::find_last_set_u8(flags.data(), n))
          << "n=" << n << " p=" << permille;
      EXPECT_EQ(count_set_u8(flags.data(), n),
                scalar::count_set_u8(flags.data(), n))
          << "n=" << n << " p=" << permille;
    }
  }
}

TEST(SimdKernels, FlagScanEdgePositions) {
  for (std::size_t n = 1; n <= kMaxWidth; ++n) {
    std::vector<std::uint8_t> flags(n, 0);
    for (std::size_t pos : {std::size_t{0}, n / 2, n - 1}) {
      flags.assign(n, 0);
      flags[pos] = 0xFF;  // any nonzero value counts as set
      EXPECT_EQ(find_first_set_u8(flags.data(), n), pos);
      EXPECT_EQ(find_last_set_u8(flags.data(), n), pos);
      EXPECT_EQ(count_set_u8(flags.data(), n), 1u);
    }
  }
}

TEST(SimdKernels, ForceScalarAgreesWithVectorDispatch) {
  util::Rng rng(0xD15B);
  auto data = random_u16(rng, kMaxWidth, 9);
  std::vector<std::uint8_t> flags(kMaxWidth);
  for (auto& f : flags) f = rng.next_below(4) == 0 ? 1 : 0;
  for (std::size_t n = 0; n <= kMaxWidth; ++n) {
    for (std::uint16_t v = 0; v < 10; ++v) {
      const auto ff = find_first_eq_u16(data.data(), n, v);
      const auto fl = find_last_eq_u16(data.data(), n, v);
      set_force_scalar(true);
      EXPECT_EQ(find_first_eq_u16(data.data(), n, v), ff);
      EXPECT_EQ(find_last_eq_u16(data.data(), n, v), fl);
      set_force_scalar(false);
    }
    const auto fs = find_first_set_u8(flags.data(), n);
    const auto ls = find_last_set_u8(flags.data(), n);
    const auto cnt = count_set_u8(flags.data(), n);
    set_force_scalar(true);
    EXPECT_EQ(find_first_set_u8(flags.data(), n), fs);
    EXPECT_EQ(find_last_set_u8(flags.data(), n), ls);
    EXPECT_EQ(count_set_u8(flags.data(), n), cnt);
    set_force_scalar(false);
  }
}

TEST(SimdKernels, PresenceMaskIsOrOfBits) {
  util::Rng rng(0xB100);
  for (std::size_t n = 0; n <= kMaxWidth; ++n) {
    auto data = random_u16(rng, n, 1200);
    std::uint64_t expect = 0;
    for (auto v : data) expect |= presence_bit_u16(v);
    EXPECT_EQ(presence_mask_u16(data.data(), n), expect);
  }
}

TEST(SimdKernels, PresenceMaskSupersetAndDisjointnessAreConservative) {
  // The two gating directions used by the detector:
  //  * subset of symbols  -> subset of bits (never a spurious reject of a
  //    real subsequence match),
  //  * shared symbol      -> shared bit (zero AND truly means no overlap).
  util::Rng rng(0xC0DE);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_u16(rng, 1 + rng.next_below(40), 1200);
    // b = a plus extra symbols: a's mask must be a subset of b's.
    auto b = a;
    const auto extra = rng.next_below(20);
    for (std::size_t i = 0; i < extra; ++i)
      b.push_back(static_cast<std::uint16_t>(rng.next_below(1200)));
    const auto ma = presence_mask_u16(a.data(), a.size());
    const auto mb = presence_mask_u16(b.data(), b.size());
    EXPECT_EQ(ma & ~mb, 0u) << "subset symbols must give subset bits";
    EXPECT_NE(ma & mb, 0u) << "shared symbols must share a bit";
  }
}

TEST(SimdKernels, PresenceMaskEmptySequence) {
  EXPECT_EQ(presence_mask_u16(nullptr, 0), 0u);
}

}  // namespace
}  // namespace gretel::simd
