#include "util/ids.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace gretel::util {
namespace {

struct TagA {};
struct TagB {};
using IdA = StrongId<TagA>;
using IdB = StrongId<TagB, std::uint16_t>;

TEST(StrongId, DefaultIsInvalid) {
  IdA id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, IdA::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  IdA id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(IdA(1), IdA(2));
  EXPECT_EQ(IdA(3), IdA(3));
  EXPECT_NE(IdA(3), IdA(4));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<IdA, IdB>);
  static_assert(!std::is_convertible_v<IdA, IdB>);
  SUCCEED();
}

TEST(StrongId, Hashable) {
  std::unordered_set<IdA> set;
  set.insert(IdA(1));
  set.insert(IdA(2));
  set.insert(IdA(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(IdA(2)));
}

TEST(StrongId, NarrowRepInvalid) {
  EXPECT_FALSE(IdB::invalid().valid());
  EXPECT_EQ(IdB::invalid().value(), 0xFFFF);
}

}  // namespace
}  // namespace gretel::util
