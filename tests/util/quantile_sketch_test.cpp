// P² quantile sketch: constant-memory baseline quantiles for the streaming
// analyzer.  The contract pinned here is the *rank*-error bound — for every
// tracked quantile q, the estimate's empirical rank stays within ±0.05 of q
// (documented in util/quantile_sketch.h) — checked on adversarial input
// orders and shapes: sorted both ways, constant, bimodal, heavy-tail.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "util/quantile_sketch.h"

namespace gretel::util {
namespace {

// Documented maximum rank error of the P² estimates (see quantile_sketch.h).
constexpr double kMaxRankError = 0.05;

// Exact empirical quantile at rank fraction r (clamped), from a sorted
// copy of the samples.
double exact_quantile(const std::vector<double>& sorted, double r) {
  r = std::clamp(r, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      r * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

// The documented bound (util/quantile_sketch.h): the estimate for quantile
// q falls between the exact empirical quantiles at q - 0.05 and q + 0.05.
void expect_rank_bound(const std::vector<double>& samples,
                       const char* label,
                       double bound = kMaxRankError) {
  QuantileSketch sketch;
  for (double s : samples) sketch.add(s);
  ASSERT_EQ(sketch.count(), samples.size());
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double q : QuantileSketch::kQuantiles) {
    SCOPED_TRACE(std::string(label) + " q=" + std::to_string(q));
    const double est = sketch.quantile(q);
    EXPECT_GE(est, exact_quantile(sorted, q - bound));
    EXPECT_LE(est, exact_quantile(sorted, q + bound));
  }
}

TEST(QuantileSketch, ExactBelowFiveSamples) {
  QuantileSketch s;
  s.add(30.0);
  s.add(10.0);
  s.add(20.0);
  // With fewer than five samples P² has not initialized its markers; the
  // sketch answers from the sorted buffer with exact linear interpolation
  // at rank q(n-1): q=0.99 over {10,20,30} sits at rank 1.98 -> 29.8.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 29.8);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 30.0);
}

TEST(QuantileSketch, ConstantSeriesIsExact) {
  QuantileSketch s;
  for (int i = 0; i < 10000; ++i) s.add(42.5);
  for (double q : QuantileSketch::kQuantiles)
    EXPECT_DOUBLE_EQ(s.quantile(q), 42.5) << q;
}

TEST(QuantileSketch, RejectsNonFinite) {
  QuantileSketch s;
  s.add(std::numeric_limits<double>::quiet_NaN());
  s.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.count(), 0u);
  s.add(1.0);
  EXPECT_EQ(s.count(), 1u);
}

TEST(QuantileSketch, SortedAscendingInput) {
  std::vector<double> v(20000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<double>(i) * 0.25;
  expect_rank_bound(v, "sorted-ascending");
}

TEST(QuantileSketch, SortedDescendingInput) {
  std::vector<double> v(20000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<double>(v.size() - i) * 0.25;
  expect_rank_bound(v, "sorted-descending");
}

TEST(QuantileSketch, BimodalInput) {
  // Two tight modes far apart — the worst case for parabolic
  // interpolation, which must not place markers in the empty valley.
  std::mt19937_64 rng(0xB1B0DA11ull);
  std::normal_distribution<double> low(5.0, 0.2), high(500.0, 5.0);
  std::vector<double> v;
  v.reserve(20000);
  for (int i = 0; i < 20000; ++i)
    v.push_back(i % 3 == 0 ? high(rng) : low(rng));
  // A marker sitting fractionally off a tight mode translates into a
  // large *rank* step (the density spike makes rank ultra-sensitive to
  // value), so the bimodal case is pinned at its own looser, measured
  // bound — see the accuracy contract in util/quantile_sketch.h.
  expect_rank_bound(v, "bimodal", 0.15);
}

TEST(QuantileSketch, HeavyTailInput) {
  // Pareto-like tail: latencies spanning four orders of magnitude.
  std::mt19937_64 rng(0x7A11ull);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<double> v;
  v.reserve(20000);
  for (int i = 0; i < 20000; ++i)
    v.push_back(1.0 / std::pow(1.0 - u(rng) * 0.9999, 1.5));
  expect_rank_bound(v, "heavy-tail");
}

TEST(QuantileSketch, ShuffledUniformInput) {
  std::mt19937_64 rng(0x5EEDull);
  std::uniform_real_distribution<double> u(0.0, 1000.0);
  std::vector<double> v;
  v.reserve(20000);
  for (int i = 0; i < 20000; ++i) v.push_back(u(rng));
  expect_rank_bound(v, "uniform");
}

TEST(QuantileSketch, QuantilesAreMonotone) {
  std::mt19937_64 rng(0xAB1Eull);
  std::exponential_distribution<double> ex(0.05);
  QuantileSketch s;
  for (int i = 0; i < 50000; ++i) s.add(ex(rng));
  EXPECT_LE(s.p50(), s.p90());
  EXPECT_LE(s.p90(), s.p95());
  EXPECT_LE(s.p95(), s.p99());
  EXPECT_LE(s.p99(), s.max());
  EXPECT_GE(s.p50(), s.min());
}

// Checkpoint support: the serialized marker state must restore an
// estimator that is indistinguishable from the original — same estimates
// to the bit, and the same estimates forever after under identical input.
TEST(QuantileSketch, SaveLoadRoundTripIsBitIdentical) {
  std::mt19937_64 rng(0xC4C9ull);
  std::exponential_distribution<double> ex(0.05);
  std::uniform_real_distribution<double> u(0.0, 1000.0);
  std::normal_distribution<double> n(250.0, 40.0);
  const auto fill = [&](QuantileSketch& s, int count, int dist) {
    for (int i = 0; i < count; ++i)
      s.add(dist == 0 ? ex(rng) : dist == 1 ? u(rng) : n(rng));
  };
  for (int dist = 0; dist < 3; ++dist) {
    for (int count : {0, 3, 5, 100, 20000}) {
      SCOPED_TRACE("dist=" + std::to_string(dist) +
                   " count=" + std::to_string(count));
      QuantileSketch original;
      fill(original, count, dist);
      std::string blob;
      original.save_state(blob);

      QuantileSketch restored;
      std::string_view in(blob);
      ASSERT_TRUE(restored.load_state(in));
      EXPECT_TRUE(in.empty()) << "trailing bytes after load";
      EXPECT_EQ(restored.count(), original.count());
      for (double q : QuantileSketch::kQuantiles) {
        // Bit-identical, not approximately equal: the raw IEEE-754
        // patterns travel through the blob unchanged.
        EXPECT_DOUBLE_EQ(restored.quantile(q), original.quantile(q));
      }
      EXPECT_DOUBLE_EQ(restored.min(), original.min());
      EXPECT_DOUBLE_EQ(restored.max(), original.max());

      // The P² recurrence continues identically: same future inputs must
      // give bit-identical future estimates.
      auto rng_a = rng;  // identical streams for both sketches
      auto rng_b = rng;
      QuantileSketch cont_orig = original;
      for (int i = 0; i < 500; ++i) {
        const double va = std::exponential_distribution<double>(0.05)(rng_a);
        const double vb = std::exponential_distribution<double>(0.05)(rng_b);
        cont_orig.add(va);
        restored.add(vb);
      }
      for (double q : QuantileSketch::kQuantiles)
        EXPECT_DOUBLE_EQ(restored.quantile(q), cont_orig.quantile(q));
    }
  }
}

TEST(QuantileSketch, LoadRejectsTruncationAndKeepsOldState) {
  QuantileSketch s;
  for (int i = 0; i < 1000; ++i) s.add(static_cast<double>(i));
  std::string blob;
  s.save_state(blob);

  QuantileSketch target;
  target.add(7.0);
  for (std::size_t len = 0; len < blob.size(); len += 9) {
    std::string_view in(blob.data(), len);
    EXPECT_FALSE(target.load_state(in)) << "truncated to " << len;
  }
  // A failed load must not have corrupted the target.
  EXPECT_EQ(target.count(), 1u);
  EXPECT_DOUBLE_EQ(target.quantile(0.5), 7.0);
}

TEST(QuantileSketch, FootprintIsConstant) {
  // The whole point: the sketch never allocates.  bytes() is a compile-time
  // constant and adding a million samples cannot change sizeof.
  static_assert(QuantileSketch::bytes() == sizeof(QuantileSketch));
  EXPECT_LT(QuantileSketch::bytes(), 1024u);
}

}  // namespace
}  // namespace gretel::util
