#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gretel::util {
namespace {

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> hits(10, 0);
  pool.parallel_for(10, [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DisjointWritesAreDeterministic) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<std::uint64_t> serial(kN), parallel(kN);
  const auto f = [](std::size_t i) {
    std::uint64_t v = i + 1;
    for (int k = 0; k < 100; ++k) v = v * 6364136223846793005ull + 1;
    return v;
  };
  for (std::size_t i = 0; i < kN; ++i) serial[i] = f(i);
  pool.parallel_for(kN, [&](std::size_t i) { parallel[i] = f(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(2);
  std::uint64_t total = 0;
  for (int job = 0; job < 200; ++job) {
    std::vector<std::uint64_t> out(16, 0);
    pool.parallel_for(out.size(),
                      [&](std::size_t i) { out[i] = i + job; });
    total += std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  }
  // Σ_job Σ_i (i + job) = 200·120 + 16·Σ job
  EXPECT_EQ(total, 200u * 120u + 16u * (199u * 200u / 2));
}

TEST(ThreadPool, EmptyAndSingleJobs) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gretel::util
