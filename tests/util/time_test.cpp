#include "util/time.h"

#include <gtest/gtest.h>

namespace gretel::util {
namespace {

TEST(SimDuration, ConstructionUnits) {
  EXPECT_EQ(SimDuration::nanos(5).count(), 5);
  EXPECT_EQ(SimDuration::micros(3).count(), 3'000);
  EXPECT_EQ(SimDuration::millis(2).count(), 2'000'000);
  EXPECT_EQ(SimDuration::seconds(1).count(), 1'000'000'000);
  EXPECT_EQ(SimDuration::minutes(2).count(), 120'000'000'000LL);
}

TEST(SimDuration, Arithmetic) {
  const auto a = SimDuration::millis(10);
  const auto b = SimDuration::millis(4);
  EXPECT_EQ((a + b).count(), SimDuration::millis(14).count());
  EXPECT_EQ((a - b).count(), SimDuration::millis(6).count());
  EXPECT_EQ((a * 3).count(), SimDuration::millis(30).count());
  EXPECT_EQ((a / 2).count(), SimDuration::millis(5).count());
  EXPECT_EQ((-a).count(), -10'000'000);
}

TEST(SimDuration, Conversions) {
  EXPECT_DOUBLE_EQ(SimDuration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimDuration::micros(2500).to_millis(), 2.5);
}

TEST(SimDuration, Comparisons) {
  EXPECT_LT(SimDuration::millis(1), SimDuration::millis(2));
  EXPECT_EQ(SimDuration::seconds(1), SimDuration::millis(1000));
}

TEST(SimTime, EpochAndOffsets) {
  const auto t = SimTime::epoch() + SimDuration::seconds(5);
  EXPECT_EQ(t.nanos(), 5'000'000'000);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 5.0);
  EXPECT_EQ((t - SimTime::epoch()).count(),
            SimDuration::seconds(5).count());
  EXPECT_EQ((t - SimDuration::seconds(2)).nanos(),
            SimDuration::seconds(3).count());
}

TEST(SimTime, PlusEqualsAccumulates) {
  SimTime t;
  t += SimDuration::millis(250);
  t += SimDuration::millis(750);
  EXPECT_EQ(t, SimTime::epoch() + SimDuration::seconds(1));
}

TEST(SimClock, AdvanceMonotonic) {
  SimClock clock;
  EXPECT_EQ(clock.now(), SimTime::epoch());
  clock.advance(SimDuration::seconds(2));
  EXPECT_EQ(clock.now().to_seconds(), 2.0);
  clock.advance_to(SimTime::epoch() + SimDuration::seconds(1));
  EXPECT_EQ(clock.now().to_seconds(), 2.0) << "must never move backwards";
  clock.advance_to(SimTime::epoch() + SimDuration::seconds(3));
  EXPECT_EQ(clock.now().to_seconds(), 3.0);
  clock.reset();
  EXPECT_EQ(clock.now(), SimTime::epoch());
}

}  // namespace
}  // namespace gretel::util
