#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace gretel::util {
namespace {

TEST(Arena, CopyReturnsIdenticalBytesInArenaStorage) {
  Arena arena(256);
  const std::string src = "GET /v2.1/servers/detail HTTP/1.1";
  const auto view = arena.copy(src);
  EXPECT_EQ(view, src);
  EXPECT_NE(view.data(), src.data());  // really copied
  EXPECT_EQ(arena.bytes_used(), src.size());
}

TEST(Arena, CopyEmptyAllocatesNothing) {
  Arena arena(256);
  const auto view = arena.copy("");
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.slab_count(), 0u);
}

TEST(Arena, AllocationsDoNotOverlap) {
  Arena arena(64);
  std::vector<std::string_view> views;
  for (int i = 0; i < 100; ++i) {
    views.push_back(arena.copy(std::string(7, static_cast<char>('a' + i % 26))));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(views[i], std::string(7, static_cast<char>('a' + i % 26)));
  }
}

TEST(Arena, AllocateArrayIsAligned) {
  Arena arena(128);
  arena.copy("x");  // misalign the cursor
  auto* p = arena.allocate_array<std::uint64_t>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t), 0u);
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint64_t>(i);
  EXPECT_EQ(p[3], 3u);
}

TEST(Arena, OversizedAllocationGetsDedicatedSlab) {
  Arena arena(64);
  const std::string big(1000, 'B');
  const auto view = arena.copy(big);
  EXPECT_EQ(view, big);
  EXPECT_GE(arena.slab_count(), 1u);
}

TEST(Arena, ResetRetainsSlabsAndReusesThem) {
  Arena arena(128);
  for (int i = 0; i < 50; ++i) arena.copy("some header value to store");
  const auto warm_slabs = arena.slab_count();
  EXPECT_GT(warm_slabs, 1u);

  // A same-shaped batch after reset must not grow the slab list.
  for (int round = 0; round < 10; ++round) {
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    for (int i = 0; i < 50; ++i) arena.copy("some header value to store");
    EXPECT_EQ(arena.slab_count(), warm_slabs);
  }
  EXPECT_EQ(arena.resets(), 10u);
}

TEST(Arena, ReleaseDropsAllStorage) {
  Arena arena(128);
  arena.copy("payload");
  arena.release();
  EXPECT_EQ(arena.slab_count(), 0u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Still usable afterwards.
  EXPECT_EQ(arena.copy("again"), "again");
}

TEST(Arena, ZeroSlabBytesFallsBackToDefault) {
  Arena arena(0);
  const std::string s(Arena::kDefaultSlabBytes / 2, 'z');
  EXPECT_EQ(arena.copy(s), s);
  EXPECT_EQ(arena.slab_count(), 1u);
}

}  // namespace
}  // namespace gretel::util
