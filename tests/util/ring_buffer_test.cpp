#include "util/ring_buffer.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace gretel::util {
namespace {

TEST(RingBuffer, PushReturnsSequence) {
  RingBuffer<int> rb(4);
  EXPECT_EQ(rb.push(10), 0u);
  EXPECT_EQ(rb.push(11), 1u);
  EXPECT_EQ(rb.size(), 2u);
}

TEST(RingBuffer, AtBySequence) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 4; ++i) rb.push(100 + i);
  for (std::uint64_t s = 0; s < 4; ++s) {
    EXPECT_EQ(rb.at(s), 100 + static_cast<int>(s));
  }
}

TEST(RingBuffer, OverwritesOldest) {
  RingBuffer<int> rb(3);
  for (int i = 0; i < 5; ++i) rb.push(i);
  EXPECT_EQ(rb.first_seq(), 2u);
  EXPECT_EQ(rb.end_seq(), 5u);
  EXPECT_FALSE(rb.contains(1));
  EXPECT_TRUE(rb.contains(2));
  EXPECT_EQ(rb.at(4), 4);
  EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBuffer, SnapshotExactRange) {
  RingBuffer<int> rb(8);
  for (int i = 0; i < 8; ++i) rb.push(i * i);
  const auto snap = rb.snapshot(2, 5);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], 4);
  EXPECT_EQ(snap[2], 16);
}

TEST(RingBuffer, SnapshotClampsToResidents) {
  RingBuffer<int> rb(3);
  for (int i = 0; i < 6; ++i) rb.push(i);  // residents: 3,4,5
  const auto snap = rb.snapshot(0, 100);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.front(), 3);
  EXPECT_EQ(snap.back(), 5);
}

TEST(RingBuffer, SnapshotEmptyWhenRangeInverted) {
  RingBuffer<int> rb(3);
  rb.push(1);
  EXPECT_TRUE(rb.snapshot(1, 1).empty());
  EXPECT_TRUE(rb.snapshot(5, 2).empty());
}

TEST(RingBuffer, EmptyProperties) {
  RingBuffer<int> rb(2);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.first_seq(), 0u);
  EXPECT_EQ(rb.end_seq(), 0u);
  EXPECT_FALSE(rb.contains(0));
}

// Property sweep: for any capacity and push count, the resident window is
// exactly the last min(capacity, pushes) elements.
class RingBufferProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RingBufferProperty, ResidentWindowInvariant) {
  const auto [capacity, pushes] = GetParam();
  RingBuffer<int> rb(static_cast<std::size_t>(capacity));
  for (int i = 0; i < pushes; ++i) rb.push(i);
  const auto expected =
      std::min<std::uint64_t>(capacity, static_cast<std::uint64_t>(pushes));
  EXPECT_EQ(rb.size(), expected);
  EXPECT_EQ(rb.end_seq(), static_cast<std::uint64_t>(pushes));
  EXPECT_EQ(rb.first_seq(), static_cast<std::uint64_t>(pushes) - expected);
  for (auto s = rb.first_seq(); s < rb.end_seq(); ++s) {
    EXPECT_EQ(rb.at(s), static_cast<int>(s));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingBufferProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 16, 64),
                       ::testing::Values(0, 1, 5, 16, 100)));

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapsAcrossManyCycles) {
  SpscRing<int> ring(4);
  int out = -1;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

// One producer, one consumer, every element transferred exactly once and in
// order despite a ring far smaller than the stream.
TEST(SpscRing, ConcurrentProducerConsumerPreservesStream) {
  constexpr int kCount = 200000;
  SpscRing<int> ring(64);
  std::vector<int> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    int out = -1;
    while (received.size() < static_cast<std::size_t>(kCount)) {
      if (ring.try_pop(out)) {
        received.push_back(out);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

// Move-only payloads survive the hand-off (the pipeline moves events out).
TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

}  // namespace
}  // namespace gretel::util
