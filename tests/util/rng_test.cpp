#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gretel::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialMean) {
  Rng rng(15);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_exponential(3.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng(17);
  const std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.pick_weighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(Rng, PickWeightedAllZeroPicksFirst) {
  Rng rng(19);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.pick_weighted(weights), 0u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinctSortedInRange) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = rng.sample_indices(100, 10);
    ASSERT_EQ(s.size(), 10u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (auto i : s) EXPECT_LT(i, 100u);
  }
}

TEST(Rng, SampleIndicesAllWhenKExceedsN) {
  Rng rng(25);
  const auto s = rng.sample_indices(5, 9);
  EXPECT_EQ(s.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

}  // namespace
}  // namespace gretel::util
