#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace gretel::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Quantile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantile, MedianOddEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 2.0);
}

TEST(MadSigma, ConsistentWithNormalScale) {
  // For {1..7}, median = 4, |dev| = {3,2,1,0,1,2,3}, MAD = 2.
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7};
  EXPECT_NEAR(mad_sigma(v), 1.4826 * 2.0, 1e-12);
}

TEST(MadSigma, RobustToOutlier) {
  std::vector<double> v{10, 10, 10, 10, 10, 10, 10, 1000};
  EXPECT_DOUBLE_EQ(mad_sigma(v), 0.0);  // majority identical
}

// The in-place (nth_element) estimators must be *bit-identical* to the
// sort-based ones — the level-shift detector switched to them, and its
// alarm stream may not move by even one ULP.
TEST(InplaceEstimators, BitIdenticalToSortedAcrossSizes) {
  Rng rng(0x57A7);
  for (std::size_t n = 0; n <= 130; ++n) {
    std::vector<double> xs(n);
    for (auto& x : xs) x = rng.next_double() * 100.0 - 50.0;
    std::vector<double> scratch = xs;
    const double med = median(xs);
    const double med_ip = median_inplace(scratch);
    EXPECT_EQ(med, med_ip) << "n=" << n;  // EQ, not NEAR: bit identity
    scratch = xs;
    EXPECT_EQ(mad_sigma(xs), mad_sigma_inplace(scratch)) << "n=" << n;
  }
}

TEST(InplaceEstimators, DuplicatesAndConstants) {
  for (std::size_t n = 1; n <= 40; ++n) {
    std::vector<double> xs(n, 7.25);
    std::vector<double> scratch = xs;
    EXPECT_EQ(median(xs), median_inplace(scratch));
    scratch = xs;
    EXPECT_EQ(mad_sigma(xs), mad_sigma_inplace(scratch));
  }
}

TEST(InplaceEstimators, SignedZeroInterpolation) {
  // Even-size interpolation touches both middle order statistics; the
  // in-place variant must reproduce the same signed zero.
  std::vector<double> xs{-0.0, 0.0};
  std::vector<double> scratch = xs;
  const double a = median(xs);
  const double b = median_inplace(scratch);
  EXPECT_EQ(std::signbit(a), std::signbit(b));
  EXPECT_EQ(a, b);
}

TEST(InplaceEstimators, EmptyInput) {
  std::vector<double> empty;
  EXPECT_EQ(median_inplace(empty), 0.0);
  EXPECT_EQ(mad_sigma_inplace(empty), 0.0);
}

TEST(EmpiricalCdf, Evaluate) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.evaluate(10.0), 1.0);
}

TEST(EmpiricalCdf, PointsMonotone) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0});
  const auto pts = cdf.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].first, 1.0);
  EXPECT_DOUBLE_EQ(pts[2].second, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LT(pts[i - 1].second, pts[i].second);
  }
}

TEST(TimeSeries, AddAndValues) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.add(1.0, 10.0);
  ts.add(2.0, 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.values(), (std::vector<double>{10.0, 20.0}));
  ts.clear();
  EXPECT_TRUE(ts.empty());
}

}  // namespace
}  // namespace gretel::util
