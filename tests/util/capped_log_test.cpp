// CappedLog (util/capped_log.h): under the cap it is exactly a vector;
// over the cap it keeps the newest entries and counts what it sheds.
#include <gtest/gtest.h>

#include "util/capped_log.h"

namespace gretel::util {
namespace {

TEST(CappedLog, UncappedBehavesLikeVector) {
  CappedLog<int> log;  // cap 0 = unbounded
  for (int i = 0; i < 1000; ++i) log.push_back(i);
  EXPECT_EQ(log.size(), 1000u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.total_appended(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(log[i], i);
}

TEST(CappedLog, UnderCapNothingDrops) {
  CappedLog<int> log(16);
  for (int i = 0; i < 16; ++i) log.push_back(i);
  EXPECT_EQ(log.size(), 16u);
  EXPECT_EQ(log.dropped(), 0u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(log[i], i);
}

TEST(CappedLog, OverCapKeepsNewestInArrivalOrder) {
  CappedLog<int> log(4);
  for (int i = 0; i < 11; ++i) log.push_back(i);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 7u);
  EXPECT_EQ(log.total_appended(), 11u);
  // Newest 4, oldest retained first.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(log[i], 7 + i);

  // Iteration and snapshot agree with operator[].
  int expect = 7;
  for (int v : log) EXPECT_EQ(v, expect++);
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(snap[i], 7 + i);
}

TEST(CappedLog, ClearResetsEverything) {
  CappedLog<int> log(2);
  for (int i = 0; i < 5; ++i) log.push_back(i);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.dropped(), 0u);
  log.push_back(42);
  EXPECT_EQ(log[0], 42);
}

}  // namespace
}  // namespace gretel::util
