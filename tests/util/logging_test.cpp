#include "util/logging.h"

#include <gtest/gtest.h>

namespace gretel::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : saved_(log_level()) {}
  ~LoggingTest() override { set_log_level(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrip) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::Trace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::Debug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::Info), "INFO");
  EXPECT_STREQ(to_string(LogLevel::Warn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::Error), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::Off), "OFF");
}

TEST_F(LoggingTest, OrderingSupportsThresholds) {
  EXPECT_LT(LogLevel::Trace, LogLevel::Debug);
  EXPECT_LT(LogLevel::Debug, LogLevel::Info);
  EXPECT_LT(LogLevel::Info, LogLevel::Warn);
  EXPECT_LT(LogLevel::Warn, LogLevel::Error);
  EXPECT_LT(LogLevel::Error, LogLevel::Off);
}

TEST_F(LoggingTest, StreamBelowThresholdIsCheapNoop) {
  set_log_level(LogLevel::Off);
  // Must not crash or emit; the << operands still evaluate.
  GRETEL_LOG(Info, "test") << "invisible " << 42;
  SUCCEED();
}

TEST_F(LoggingTest, StreamAtThresholdWrites) {
  set_log_level(LogLevel::Error);
  GRETEL_LOG(Error, "test") << "visible error line (expected in output)";
  SUCCEED();
}

}  // namespace
}  // namespace gretel::util
