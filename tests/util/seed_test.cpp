// Per-scenario seed derivation (util/seed.h): stream independence is what
// keeps a campaign's thousands of RNG consumers uncorrelated.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"
#include "util/seed.h"

namespace gretel::util {
namespace {

TEST(SeedDerivation, SplitmixIsConstexprAndMatchesReference) {
  // Reference orbit of the standard splitmix64 constants from seed 0.
  static_assert(splitmix64(0) == 0xE220A8397B1DCDAFull);
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFull);
  // Bijective: nearby inputs never collide.
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(SeedDerivation, NoCollisionsAcrossStreamsAndIndices) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {0ull, 1ull, 0xCA59A16Eull}) {
    for (std::uint64_t stream = 0; stream < 8; ++stream) {
      for (std::uint64_t index = 0; index < 512; ++index) {
        EXPECT_TRUE(seen.insert(derive_seed(root, stream, index)).second)
            << "collision at root=" << root << " stream=" << stream
            << " index=" << index;
      }
    }
  }
}

TEST(SeedDerivation, StreamAndIndexAreNotInterchangeable) {
  // Additive schemes collapse (stream=0, index=1) and (stream=1, index=0);
  // per-argument mixing must not.
  const std::uint64_t root = 42;
  EXPECT_NE(derive_seed(root, 0, 1), derive_seed(root, 1, 0));
  EXPECT_NE(derive_seed(root, 2, 3), derive_seed(root, 3, 2));
}

// The property the campaign engine actually relies on: RNG streams seeded
// from adjacent derivations behave as independent generators.  Adjacent
// *raw* seeds fail this badly for stateless hash draws; derived seeds must
// show no pairwise bit correlation.
TEST(SeedDerivation, DerivedStreamsAreBitwiseUncorrelated) {
  const std::uint64_t root = 0xC0DE2016ull;
  for (std::uint64_t stream = 0; stream < 4; ++stream) {
    Rng a(derive_seed(root, stream, 0));
    Rng b(derive_seed(root, stream, 1));
    int agree = 0;
    const int kBits = 64 * 64;
    for (int i = 0; i < 64; ++i) {
      const auto diff = a.next_u64() ^ b.next_u64();
      for (int bit = 0; bit < 64; ++bit)
        agree += ((diff >> bit) & 1) == 0;
    }
    // Independent streams agree on ~50% of bits; allow a wide band.
    EXPECT_GT(agree, kBits * 45 / 100) << "stream " << stream;
    EXPECT_LT(agree, kBits * 55 / 100) << "stream " << stream;
  }
}

TEST(SeedDerivation, StreamEnumOverloadMatchesRawTags) {
  EXPECT_EQ(derive_seed(7, SeedStream::WireChaos, 3),
            derive_seed(7, static_cast<std::uint64_t>(SeedStream::WireChaos),
                        3));
}

}  // namespace
}  // namespace gretel::util
