// StreamAnalyzer contract tests: batch output stays byte-identical across
// shard counts (the caps never engage outside streaming mode), an
// unstressed stream reproduces the batch diagnosis set exactly, tick
// cadence cannot change reports, the shed policies account every loss, the
// credit gate has hysteresis, overdue reports are deadline-forced, idle
// streams still reap orphans, and the steady-state stall watchdog flags a
// wedged shard without an ingest-path trigger.  (Suite names Stream* are in
// the TSan/ASan CI filters.)
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gretel/json_export.h"
#include "gretel/shard_pipeline.h"
#include "gretel/training.h"
#include "net/chaos.h"
#include "stream/stream_analyzer.h"
#include "tempest/workload.h"

namespace gretel::stream {
namespace {

using util::SimDuration;
using util::SimTime;

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(21, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  core::TrainingReport training = core::learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

std::vector<net::WireRecord> record_workload(int tests, int faults,
                                             std::uint64_t seed) {
  auto& e = env();
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = tests;
  spec.faults = faults;
  spec.window = SimDuration::seconds(30);
  spec.seed = seed;
  const auto w = make_parallel_workload(e.catalog, spec);
  stack::WorkflowExecutor executor(&e.deployment, &e.catalog.apis(),
                                   &e.catalog.infra(), seed ^ 0xE8ec);
  return executor.execute(w.launches);
}

core::Analyzer::Options base_options(std::size_t num_shards = 1) {
  auto& e = env();
  core::Analyzer::Options opt;
  opt.config.fp_max = e.training.fp_max;
  opt.config.p_rate = 150.0;
  opt.config.num_shards = num_shards;
  opt.run_root_cause = false;
  return opt;
}

std::string batch_json(const std::vector<net::WireRecord>& recs,
                       std::size_t num_shards) {
  auto& e = env();
  core::Analyzer analyzer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          base_options(num_shards));
  for (const auto& r : recs) analyzer.on_wire(r);
  analyzer.finish();
  return core::to_json(analyzer.diagnoses(), e.catalog.apis(),
                       e.training.db);
}

// Streams the capture in arrival order and returns the emitted diagnoses
// serialized exactly like the batch path.
std::string stream_json(const std::vector<net::WireRecord>& recs,
                        core::Analyzer::Options opt) {
  auto& e = env();
  std::vector<core::Diagnosis> emitted;
  StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          std::move(opt),
                          [&](const StreamReport& r) {
                            emitted.push_back(r.diagnosis);
                          });
  for (const auto& r : recs) {
    streamer.advance_to(r.ts);
    streamer.offer(r);
  }
  streamer.finish();
  return core::to_json(emitted, e.catalog.apis(), e.training.db);
}

// The PR-level regression gate: with streaming off, reports must stay
// byte-identical across shard counts — none of the bounded-state plumbing
// may leak into batch mode.
TEST(StreamAnalyzer, BatchOutputByteIdenticalAcrossShardCounts) {
  const auto recs = record_workload(10, 3, 0x5EED01);
  const auto reference = batch_json(recs, 1);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(reference, batch_json(recs, 2)) << "2 shards diverged";
  EXPECT_EQ(reference, batch_json(recs, 4)) << "4 shards diverged";
}

// An unstressed stream (no shedding, deadline forcing off) must reproduce
// the batch diagnosis set byte-for-byte: ticks only change *when* work
// runs, never what it concludes.
TEST(StreamAnalyzer, UnstressedStreamMatchesBatchExactly) {
  const auto recs = record_workload(10, 3, 0x5EED01);
  auto opt = base_options(1);
  opt.config.stream_max_report_delay_s = 0.0;  // no deadline forcing
  EXPECT_EQ(batch_json(recs, 1), stream_json(recs, opt));
}

TEST(StreamAnalyzer, UnstressedShardedStreamMatchesBatch) {
  const auto recs = record_workload(10, 3, 0x5EED01);
  auto opt = base_options(2);
  opt.config.stream_max_report_delay_s = 0.0;
  EXPECT_EQ(batch_json(recs, 1), stream_json(recs, opt));
}

TEST(StreamAnalyzer, TickCadenceDoesNotChangeReports) {
  const auto recs = record_workload(8, 2, 0x5EED02);
  auto fast = base_options(1);
  fast.config.stream_max_report_delay_s = 0.0;
  fast.config.stream_tick_ms = 100.0;
  auto slow = fast;
  slow.config.stream_tick_ms = 997.0;
  EXPECT_EQ(stream_json(recs, fast), stream_json(recs, slow));
}

TEST(StreamAnalyzer, DropOldestShedsWithExactAccounting) {
  auto& e = env();
  const auto recs = record_workload(8, 2, 0x5EED03);
  ASSERT_GT(recs.size(), 64u);
  auto opt = base_options(1);
  opt.config.stream_source_ring = 8;
  StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          opt);
  // Offer everything without ever advancing the watermark: nothing drains,
  // so all but the newest 8 records must be shed — each loss accounted.
  for (const auto& r : recs) streamer.offer(r);
  EXPECT_TRUE(streamer.gate_closed());
  EXPECT_EQ(streamer.credits(), 0u);
  EXPECT_EQ(streamer.queued(), 8u);
  const auto& c = streamer.counters();
  EXPECT_EQ(c.offered, recs.size());
  EXPECT_EQ(c.shed, recs.size() - 8);
  EXPECT_GE(c.shed_episodes, 1u);
  streamer.finish();
  EXPECT_EQ(c.offered, c.ingested + c.shed);
  EXPECT_EQ(streamer.queued(), 0u);
  // Every shed record reappears as a window-loss annotation.
  EXPECT_EQ(streamer.health().losses_recorded, c.shed);
}

TEST(StreamAnalyzer, DropNewestRefusesTheFreshRecord) {
  auto& e = env();
  const auto recs = record_workload(8, 2, 0x5EED03);
  ASSERT_GT(recs.size(), 16u);
  auto opt = base_options(1);
  opt.config.stream_source_ring = 4;
  opt.config.stream_shed_policy = core::StreamShedPolicy::DropNewest;
  StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          opt);
  std::size_t accepted = 0;
  for (const auto& r : recs) accepted += streamer.offer(r) ? 1 : 0;
  EXPECT_EQ(accepted, 4u);  // the first four; everything after is refused
  EXPECT_EQ(streamer.queued(), 4u);
  EXPECT_EQ(streamer.counters().shed, recs.size() - 4);
  streamer.finish();
  EXPECT_EQ(streamer.counters().offered,
            streamer.counters().ingested + streamer.counters().shed);
  EXPECT_EQ(streamer.health().losses_recorded, streamer.counters().shed);
}

TEST(StreamAnalyzer, CreditGateReopensAfterDrain) {
  auto& e = env();
  const auto recs = record_workload(8, 2, 0x5EED03);
  auto opt = base_options(1);
  opt.config.stream_source_ring = 8;
  StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          opt);
  for (std::size_t i = 0; i < 9 && i < recs.size(); ++i)
    streamer.offer(recs[i]);
  ASSERT_TRUE(streamer.gate_closed());
  EXPECT_EQ(streamer.credits(), 0u);
  // One tick drains the ring past half occupancy: the gate reopens and
  // full credit comes back.
  streamer.advance_to(recs[8].ts + SimDuration::seconds(1));
  EXPECT_FALSE(streamer.gate_closed());
  EXPECT_EQ(streamer.credits(), 8u);
}

TEST(StreamAnalyzer, DeadlineForcesReportsWhenStreamGoesQuiet) {
  auto& e = env();
  // A lone faulty operation with almost no background: the trigger's
  // future half-window never fills after the capture ends, so only the
  // deadline can emit it before finish().
  const auto recs = record_workload(1, 1, 0x5EED04);
  ASSERT_FALSE(recs.empty());
  auto opt = base_options(1);
  opt.config.stream_max_report_delay_s = 1.0;
  StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          opt);
  for (const auto& r : recs) {
    streamer.advance_to(r.ts);
    streamer.offer(r);
  }
  // Advance well past the deadline with zero traffic.
  streamer.advance_to(recs.back().ts + SimDuration::seconds(10));
  EXPECT_GE(streamer.analyzer().detector_stats().forced_reports, 1u);
  EXPECT_GE(streamer.counters().reports, 1u);
  for (const auto& r : streamer.recent_reports())
    EXPECT_GT(r.tick, 0u) << "report waited for finish()";
}

TEST(StreamAnalyzer, IdleStreamStillReapsOrphans) {
  auto& e = env();
  auto recs = record_workload(8, 2, 0x5EED05);
  // Drop a slice of frames so some responses never arrive and their
  // requests linger in the pending tables.
  net::ChaosConfig chaos;
  chaos.seed = 0xD20;
  chaos.drop_rate = 0.2;
  std::vector<net::WireRecord> degraded;
  net::ChaosTap tap(chaos,
                    [&](const net::WireRecord& r) { degraded.push_back(r); });
  for (const auto& r : recs) tap.on_record(r);
  tap.finish();

  auto opt = base_options(1);
  opt.config.orphan_timeout_seconds = 5.0;
  StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          opt);
  for (const auto& r : degraded) {
    streamer.advance_to(r.ts);
    streamer.offer(r);
  }
  // Traffic stops.  Requests from the last 5 s whose responses were
  // dropped are still pending — the observe-cadence sweep cannot run with
  // no events flowing, so only the tick-driven sweep can reclaim them.
  const auto pending_before = streamer.footprint().pending_requests;
  ASSERT_GT(pending_before, 0u);
  const auto reaped_before = streamer.health().orphans_reaped;
  streamer.advance_to(degraded.back().ts + SimDuration::seconds(30));
  EXPECT_EQ(streamer.footprint().pending_requests, 0u);
  EXPECT_GT(streamer.health().orphans_reaped, reaped_before);
}

// Steady-state watchdog (ShardPipeline level): a wedged worker holding
// backlog is flagged by check_stalls() during quiet streaming — no blocked
// submit or drain required — and shard_health() surfaces its progress age.
TEST(StreamWatchdog, SteadyStateCheckFlagsWedgedShard) {
  detect::LatencyShardSet latency(2);
  core::ResilienceOptions resilience;
  resilience.watchdog_ms = 50.0;
  core::ShardPipeline pipeline(&latency, 64, resilience);

  // An API owned by shard 0.
  wire::ApiId target(1);
  for (std::uint16_t v = 1; v < 1000; ++v) {
    if (detect::LatencyShardSet::shard_of(wire::ApiId(v), 2) == 0) {
      target = wire::ApiId(v);
      break;
    }
  }
  pipeline.debug_pause_shard(0, true);
  wire::Event e;
  e.api = target;
  e.kind = wire::ApiKind::Rest;
  e.dir = wire::Direction::Request;
  for (std::uint64_t i = 0; i < 4; ++i) {
    e.seq = i;
    e.ts = SimTime(static_cast<std::int64_t>(i) * 1000000);
    e.conn_id = static_cast<std::uint32_t>(i + 1);
    pipeline.submit(e);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_GE(pipeline.check_stalls(), 1u);
  EXPECT_GE(pipeline.watchdog_trips(), 1u);
  bool found_stalled = false;
  for (const auto& h : pipeline.shard_health()) {
    if (!h.stalled) continue;
    found_stalled = true;
    EXPECT_GT(h.backlog, 0u);
    EXPECT_GE(h.progress_age_ms, 50.0);
  }
  EXPECT_TRUE(found_stalled);
  // A stall is flagged once per episode, not once per check.
  const auto trips = pipeline.watchdog_trips();
  EXPECT_EQ(pipeline.check_stalls(), 1u);
  EXPECT_EQ(pipeline.watchdog_trips(), trips);

  // Worker resumes: the flag clears as soon as progress is observed.
  pipeline.debug_pause_shard(0, false);
  std::vector<core::ShardTrigger> triggers;
  pipeline.drain(&triggers);
  EXPECT_EQ(pipeline.check_stalls(), 0u);
  for (const auto& h : pipeline.shard_health()) {
    EXPECT_FALSE(h.stalled);
    EXPECT_EQ(h.backlog, 0u);
  }
}

// An idle (fully drained) shard is not a stall, no matter how long it
// sits: the watchdog keys on backlog age, not on inactivity.
TEST(StreamWatchdog, IdleShardIsNotAStall) {
  detect::LatencyShardSet latency(2);
  core::ResilienceOptions resilience;
  resilience.watchdog_ms = 10.0;
  core::ShardPipeline pipeline(&latency, 64, resilience);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(pipeline.check_stalls(), 0u);
  EXPECT_EQ(pipeline.watchdog_trips(), 0u);
}

// The health snapshot carries per-shard progress ages through the whole
// facade stack while streaming.
TEST(StreamWatchdog, HealthSurfacesPerShardProgress) {
  auto& e = env();
  const auto recs = record_workload(6, 1, 0x5EED06);
  auto opt = base_options(2);
  StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          opt);
  for (const auto& r : recs) {
    streamer.advance_to(r.ts);
    streamer.offer(r);
  }
  streamer.finish();
  const auto health = streamer.health();
  EXPECT_EQ(health.shard_progress_age_ms.size(), 2u);
  EXPECT_EQ(health.stalled_shards, 0u);
  for (double age : health.shard_progress_age_ms) EXPECT_GE(age, 0.0);
}

}  // namespace
}  // namespace gretel::stream
