// Durability contract tests for the streaming analyzer (suite names
// Checkpoint/Journal/Recovery are in the TSan/ASan CI filters):
//   - a crash-free run with checkpointing enabled emits byte-identical
//     reports to one with it disabled (the PR-level acceptance gate);
//   - every emitted report is journaled before the sink sees it;
//   - restore() resumes counters, watermark, and report numbering from a
//     clean shutdown;
//   - the journal tail is replayed when the crash landed after the last
//     checkpoint (including with no checkpoint at all);
//   - corrupt checkpoints fall back to the next-newest valid one;
//   - a fingerprint-DB identity mismatch cold-starts the learned state
//     instead of grafting baselines onto the wrong APIs;
//   - the flow ledger reconciles after a restore-and-resume run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "gretel/json_export.h"
#include "gretel/training.h"
#include "persist/checkpoint.h"
#include "persist/journal.h"
#include "stream/stream_analyzer.h"
#include "tempest/workload.h"

namespace gretel::stream {
namespace {

namespace fs = std::filesystem;
using util::SimDuration;

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(21, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  core::TrainingReport training = core::learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

struct TempDir {
  std::string path;
  TempDir() {
    path = (fs::temp_directory_path() /
            ("grt-recovery-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter()++)))
               .string();
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::vector<net::WireRecord> record_workload(int tests, int faults,
                                             std::uint64_t seed) {
  auto& e = env();
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = tests;
  spec.faults = faults;
  spec.window = SimDuration::seconds(30);
  spec.seed = seed;
  const auto w = make_parallel_workload(e.catalog, spec);
  stack::WorkflowExecutor executor(&e.deployment, &e.catalog.apis(),
                                   &e.catalog.infra(), seed ^ 0xE8ec);
  return executor.execute(w.launches);
}

core::Analyzer::Options base_options() {
  auto& e = env();
  core::Analyzer::Options opt;
  opt.config.fp_max = e.training.fp_max;
  opt.config.p_rate = 150.0;
  opt.config.stream_tick_ms = 200.0;
  opt.config.checkpoint_interval_s = 2.0;
  opt.config.journal_segment_records = 8;
  opt.run_root_cause = false;
  return opt;
}

std::string report_json(const core::Diagnosis& d) {
  auto& e = env();
  return core::to_json(d, e.catalog.apis(), e.training.db);
}

// Feeds every record through a fresh analyzer; durability armed iff `dir`
// is non-empty.  Returns the emitted reports' JSON payloads in order.
std::vector<std::string> run_stream(const std::vector<net::WireRecord>& recs,
                                    const std::string& dir,
                                    bool call_finish = true) {
  auto& e = env();
  std::vector<std::string> emitted;
  StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          base_options(), [&](const StreamReport& r) {
                            emitted.push_back(report_json(r.diagnosis));
                          });
  if (!dir.empty()) {
    EXPECT_TRUE(streamer.enable_durability(dir));
  }
  for (const auto& r : recs) {
    streamer.advance_to(r.ts);
    streamer.offer(r);
  }
  if (call_finish) streamer.finish();
  return emitted;
}

// The acceptance gate: durability adds only I/O, never changes reports.
TEST(Recovery, CheckpointingDoesNotChangeEmittedReports) {
  const auto recs = record_workload(10, 3, 0x5EED41);
  TempDir dir;
  const auto plain = run_stream(recs, "");
  const auto durable = run_stream(recs, dir.path);
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(plain, durable);
}

TEST(Journal, EveryEmittedReportIsOnDiskBeforeTheSinkSeesIt) {
  auto& e = env();
  const auto recs = record_workload(10, 3, 0x5EED41);
  TempDir dir;
  std::vector<std::string> emitted;
  std::unique_ptr<StreamAnalyzer> sa;
  sa = std::make_unique<StreamAnalyzer>(
      &e.training.db, &e.catalog.apis(), &e.deployment, base_options(),
      [&](const StreamReport& r) {
        // Fsync-before-acknowledge: at the instant the sink runs, the
        // journal already holds this report's record.
        EXPECT_EQ(sa->journal_next_seq(), emitted.size() + 1);
        emitted.push_back(report_json(r.diagnosis));
      });
  ASSERT_TRUE(sa->enable_durability(dir.path));
  for (const auto& r : recs) {
    sa->advance_to(r.ts);
    sa->offer(r);
  }
  sa->finish();
  ASSERT_FALSE(emitted.empty());

  // And the durable payloads are byte-identical to what the sink saw.
  const auto recs_on_disk = persist::ReportJournal::read_from(dir.path, 0);
  // purge_below at checkpoints may have dropped covered segments; what
  // remains must still be a suffix that matches, and next_seq must equal
  // the emitted count.
  EXPECT_EQ(sa->journal_next_seq(), emitted.size());
  for (const auto& rec : recs_on_disk) {
    ASSERT_LT(rec.seq, emitted.size());
    EXPECT_EQ(rec.payload, emitted[rec.seq]) << "seq " << rec.seq;
  }
}

TEST(Recovery, CleanShutdownRestoreResumesExactState) {
  auto& e = env();
  const auto recs = record_workload(10, 3, 0x5EED41);
  TempDir dir;
  StreamCounters before;
  util::SimTime watermark;
  {
    StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                            base_options());
    ASSERT_TRUE(streamer.enable_durability(dir.path));
    for (const auto& r : recs) {
      streamer.advance_to(r.ts);
      streamer.offer(r);
    }
    streamer.finish();  // writes the final checkpoint
    before = streamer.counters();
    watermark = streamer.watermark();
  }
  RecoveryInfo ri;
  auto restored = StreamAnalyzer::restore(&e.training.db, &e.catalog.apis(),
                                          &e.deployment, base_options(),
                                          dir.path, {}, &ri);
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(ri.recovered);
  EXPECT_FALSE(ri.db_mismatch);
  EXPECT_EQ(ri.corrupt_checkpoints_skipped, 0u);
  EXPECT_EQ(ri.journal_records_truncated, 0u);
  // The final checkpoint covers the whole journal: nothing to replay.
  EXPECT_TRUE(ri.replayed.empty());
  const auto& after = restored->counters();
  EXPECT_EQ(after.offered, before.offered);
  EXPECT_EQ(after.ingested, before.ingested);
  EXPECT_EQ(after.shed, before.shed);
  EXPECT_EQ(after.ticks, before.ticks);
  EXPECT_EQ(after.reports, before.reports);
  EXPECT_EQ(restored->watermark().nanos(), watermark.nanos());
  EXPECT_EQ(restored->journal_next_seq(), before.reports);
  // Ledger reconciles inside the restored snapshot.
  EXPECT_EQ(after.offered, after.ingested + after.shed);
  EXPECT_EQ(restored->queued(), 0u);
}

TEST(Recovery, JournalTailReplaysAfterUncleanStop) {
  auto& e = env();
  const auto recs = record_workload(10, 3, 0x5EED41);
  TempDir dir;
  // No finish(): the analyzer dies with reports journaled since the last
  // cadence checkpoint (interval 2s << 30s window guarantees several
  // checkpoints and a non-covered tail is likely; zero-tail is also legal).
  const auto emitted = run_stream(recs, dir.path, /*call_finish=*/false);
  ASSERT_FALSE(emitted.empty());

  RecoveryInfo ri;
  auto restored = StreamAnalyzer::restore(&e.training.db, &e.catalog.apis(),
                                          &e.deployment, base_options(),
                                          dir.path, {}, &ri);
  ASSERT_NE(restored, nullptr);
  // Leg 1 of the invariant: zero journaled reports lost.  Sequence
  // numbering resumes exactly after every report the sink acknowledged.
  EXPECT_EQ(restored->journal_next_seq(), emitted.size());
  EXPECT_EQ(restored->counters().reports, emitted.size());
  // Replayed records are the exact byte payloads delivered pre-crash.
  for (const auto& rec : ri.replayed) {
    ASSERT_LT(rec.seq, emitted.size());
    EXPECT_EQ(rec.payload, emitted[rec.seq]) << "seq " << rec.seq;
  }
}

TEST(Recovery, NoCheckpointMeansColdStartButJournalStillCounts) {
  auto& e = env();
  const auto recs = record_workload(10, 3, 0x5EED41);
  TempDir dir;
  auto opt = base_options();
  opt.config.checkpoint_interval_s = 1e9;  // cadence never fires
  std::vector<std::string> emitted;
  {
    StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                            opt, [&](const StreamReport& r) {
                              emitted.push_back(report_json(r.diagnosis));
                            });
    ASSERT_TRUE(streamer.enable_durability(dir.path));
    for (const auto& r : recs) {
      streamer.advance_to(r.ts);
      streamer.offer(r);
    }
    // killed here: no finish, no checkpoint ever written
  }
  ASSERT_FALSE(emitted.empty());
  RecoveryInfo ri;
  auto restored = StreamAnalyzer::restore(&e.training.db, &e.catalog.apis(),
                                          &e.deployment, base_options(),
                                          dir.path, {}, &ri);
  ASSERT_NE(restored, nullptr);
  EXPECT_FALSE(ri.recovered);
  ASSERT_EQ(ri.replayed.size(), emitted.size());
  for (std::size_t i = 0; i < emitted.size(); ++i)
    EXPECT_EQ(ri.replayed[i].payload, emitted[i]);
  // Report numbering continues from the journal even without a checkpoint.
  EXPECT_EQ(restored->counters().reports, emitted.size());
}

TEST(Checkpoint, RestoreFallsBackAcrossACorruptNewestFile) {
  auto& e = env();
  const auto recs = record_workload(10, 3, 0x5EED41);
  TempDir dir;
  run_stream(recs, dir.path);  // finish() leaves a valid final checkpoint
  const auto seqs = persist::list_checkpoints(dir.path);
  ASSERT_FALSE(seqs.empty());
  // Torn write artifact: newest checkpoint truncated to garbage.
  {
    std::FILE* f =
        std::fopen(persist::checkpoint_path(dir.path, seqs[0]).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("GRTCKP01 torn mid-write", f);
    std::fclose(f);
  }
  RecoveryInfo ri;
  auto restored = StreamAnalyzer::restore(&e.training.db, &e.catalog.apis(),
                                          &e.deployment, base_options(),
                                          dir.path, {}, &ri);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(ri.corrupt_checkpoints_skipped, 1u);
  if (seqs.size() > 1) {
    EXPECT_TRUE(ri.recovered);
    EXPECT_EQ(ri.checkpoint_seq, seqs[1]);
  }
}

TEST(Recovery, DbIdentityMismatchColdStartsLearnedState) {
  auto& e = env();
  const auto recs = record_workload(10, 3, 0x5EED41);
  TempDir dir;
  const auto emitted = run_stream(recs, dir.path);
  // Simulate a DB hot swap between checkpoint and crash: rewrite the
  // newest checkpoint with a different db identity (valid CRCs, wrong DB).
  auto ckp = persist::load_newest_checkpoint(dir.path, nullptr);
  ASSERT_TRUE(ckp.has_value());
  ckp->meta.db_catalog_hash ^= 0xBADBADBADull;
  ckp->meta.checkpoint_seq += 1;
  ASSERT_TRUE(persist::write_checkpoint(dir.path, *ckp, 10));

  RecoveryInfo ri;
  auto restored = StreamAnalyzer::restore(&e.training.db, &e.catalog.apis(),
                                          &e.deployment, base_options(),
                                          dir.path, {}, &ri);
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(ri.db_mismatch);
  EXPECT_FALSE(ri.recovered);
  // The journal does not depend on the DB identity: report numbering is
  // still exact.
  EXPECT_EQ(restored->journal_next_seq(), emitted.size());
}

TEST(Recovery, ResumedStreamLedgerReconcilesThroughFinish) {
  auto& e = env();
  const auto recs = record_workload(10, 3, 0x5EED41);
  ASSERT_GT(recs.size(), 100u);
  TempDir dir;
  // First life: feed the first 60%, checkpoint, die without finish().
  {
    StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                            base_options());
    ASSERT_TRUE(streamer.enable_durability(dir.path));
    const std::size_t cut = recs.size() * 6 / 10;
    for (std::size_t i = 0; i < cut; ++i) {
      streamer.advance_to(recs[i].ts);
      streamer.offer(recs[i]);
    }
    ASSERT_TRUE(streamer.checkpoint_now());
  }
  // Second life: restore and feed everything past the watermark.
  RecoveryInfo ri;
  auto restored = StreamAnalyzer::restore(&e.training.db, &e.catalog.apis(),
                                          &e.deployment, base_options(),
                                          dir.path, {}, &ri);
  ASSERT_NE(restored, nullptr);
  ASSERT_TRUE(ri.recovered);
  const auto resumed_from = restored->watermark();
  for (const auto& r : recs) {
    if (r.ts.nanos() <= resumed_from.nanos()) continue;
    restored->advance_to(r.ts);
    restored->offer(r);
  }
  restored->finish();
  const auto& c = restored->counters();
  // Leg 3 of the invariant: the ledger re-reconciles across the restart.
  EXPECT_EQ(c.offered, c.ingested + c.shed);
  EXPECT_EQ(restored->queued(), 0u);
  // And the stream made progress in its second life.
  EXPECT_GT(restored->watermark().nanos(), resumed_from.nanos());
}

}  // namespace
}  // namespace gretel::stream
