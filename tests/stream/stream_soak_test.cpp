// Streaming soak: sustained overload with wire chaos and monitoring-plane
// chaos riding on top.  The same capture is replayed for many rounds on a
// shifted clock so the stream runs far longer than any single batch, while
// the source ring is held far below the offered backlog.  The assertions
// are the streaming mode's robustness contract:
//
//   * bounded memory — the itemized state footprint goes flat after
//     warmup instead of growing with stream length, and every component
//     respects its cap;
//   * exact shed/loss reconciliation — offered == ingested + shed +
//     queued at every round boundary, and every shed or quarantined
//     record reappears in the detector's loss ledger;
//   * monotone degraded accounting — the degraded-telemetry counters
//     never decrease, and reports spanning loss carry the degraded mark.
//
// (Suite name StreamSoak is in the TSan/ASan CI filters.)
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gretel/training.h"
#include "net/chaos.h"
#include "stream/stream_analyzer.h"
#include "tempest/workload.h"

namespace gretel::stream {
namespace {

using util::SimDuration;
using util::SimTime;

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(21, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  core::TrainingReport training = core::learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

TEST(StreamSoak, BoundedStateUnderSustainedOverloadAndChaos) {
  auto& e = env();

  tempest::WorkloadSpec wspec;
  wspec.concurrent_tests = 24;
  wspec.faults = 2;
  wspec.window = SimDuration::seconds(25);
  wspec.seed = 0x50AC;
  const auto workload = make_parallel_workload(e.catalog, wspec);
  stack::WorkflowExecutor executor(&e.deployment, &e.catalog.apis(),
                                   &e.catalog.infra(), 0x50ACE8ec);
  const auto base = executor.execute(workload.launches);
  ASSERT_GT(base.size(), 500u);
  const auto span =
      (base.back().ts - base.front().ts) + SimDuration::seconds(5);

  core::Analyzer::Options opt;
  opt.config.fp_max = e.training.fp_max;
  opt.config.p_rate = 150.0;
  opt.run_root_cause = true;
  opt.probed_monitoring = true;
  opt.monitor_chaos.seed = 0x50AC2;
  opt.monitor_chaos.probe_drop_rate = 0.05;
  opt.monitor_chaos.probe_timeout_rate = 0.05;
  // Every bounded-state knob squeezed so the caps genuinely engage.
  opt.config.orphan_timeout_seconds = 2.0;
  opt.config.stream_source_ring = 96;
  opt.config.stream_inflight_cap = 256;
  opt.config.stream_series_cap = 512;
  opt.config.stream_metrics_retention_s = 30.0;
  opt.config.stream_report_cap = 32;
  // Slow ticks relative to the offered rate: per-tick arrivals exceed the
  // ring, so the stream sheds continuously — sustained overload, not a
  // transient burst.
  opt.config.stream_tick_ms = 2000.0;

  StreamAnalyzer streamer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          opt);

  constexpr int kRounds = 8;
  std::vector<std::size_t> bytes_after_round;
  std::uint64_t prev_losses = 0, prev_orphans = 0, prev_evicted = 0,
                prev_trimmed = 0, prev_degraded = 0;
  for (int round = 0; round < kRounds; ++round) {
    // Shift the capture onto this round's clock; remap connections so
    // rounds do not pair each other's requests.  Per-round wire chaos
    // quarantines and drops on top of the admission shedding.
    const auto offset = span * round;
    net::ChaosConfig chaos;
    chaos.seed = 0xC4A05 + static_cast<std::uint64_t>(round);
    chaos.drop_rate = 0.10;
    chaos.truncate_rate = 0.02;
    chaos.corrupt_rate = 0.02;
    std::vector<net::WireRecord> degraded;
    net::ChaosTap tap(chaos, [&](const net::WireRecord& r) {
      degraded.push_back(r);
    });
    for (auto rec : base) {
      rec.ts = rec.ts + offset;
      rec.conn_id += static_cast<std::uint32_t>(round) * 1000000u;
      tap.on_record(rec);
    }
    tap.finish();

    double metric_t = (SimTime::epoch() + offset).to_seconds();
    for (const auto& r : degraded) {
      streamer.advance_to(r.ts);
      // A metric sample per simulated second keeps the retention window
      // exercised for the whole soak.
      if (r.ts.to_seconds() >= metric_t + 1.0) {
        metric_t = r.ts.to_seconds();
        streamer.on_metric(wire::NodeId(1), net::ResourceKind::CpuPct,
                           metric_t, 10.0 + (round % 3));
      }
      streamer.offer(r);
    }
    // Round boundary: let the stream idle one tick so sweeps run, then
    // audit the ledgers at a quiescent point.
    streamer.advance_to(streamer.watermark() + SimDuration::seconds(3));

    const auto& c = streamer.counters();
    ASSERT_EQ(c.offered, c.ingested + c.shed + streamer.queued())
        << "flow ledger broke in round " << round;

    const auto health = streamer.health();
    // Loss ledger: every admission shed and every quarantined frame is in
    // the detector's loss count — nothing else is (1 shard, no overflow).
    EXPECT_EQ(health.losses_recorded, c.shed + health.frames_quarantined)
        << "round " << round;
    // Degraded accounting only ever grows.
    EXPECT_GE(health.losses_recorded, prev_losses);
    EXPECT_GE(health.orphans_reaped, prev_orphans);
    EXPECT_GE(health.inflight_evicted, prev_evicted);
    EXPECT_GE(health.series_trimmed, prev_trimmed);
    const auto degraded_reports =
        streamer.analyzer().detector_stats().degraded_reports;
    EXPECT_GE(degraded_reports, prev_degraded);
    prev_losses = health.losses_recorded;
    prev_orphans = health.orphans_reaped;
    prev_evicted = health.inflight_evicted;
    prev_trimmed = health.series_trimmed;
    prev_degraded = degraded_reports;

    // Per-component caps hold.
    auto fp = streamer.footprint();
    EXPECT_LE(fp.source_ring_records, 96u);
    EXPECT_LE(fp.pending_requests,
              opt.config.stream_inflight_cap + 64)  // cap + floor slack
        << "round " << round;
    EXPECT_LE(fp.series_points,
              opt.config.stream_series_cap * e.catalog.apis().size());
    EXPECT_LE(fp.reports_retained, 32u);
    bytes_after_round.push_back(fp.approx_bytes());
  }
  streamer.finish();
  const auto& c = streamer.counters();
  EXPECT_EQ(c.offered, c.ingested + c.shed);
  EXPECT_GT(c.shed, 0u) << "overload never engaged — soak is vacuous";
  EXPECT_GE(c.shed_episodes, 1u);

  // The whole point: state is flat in stream length.  Every post-warmup
  // round (and the tick-sampled peak) stays within a small factor of the
  // footprint after round 2, instead of scaling with rounds replayed.
  const auto warmup = bytes_after_round[1];
  ASSERT_GT(warmup, 0u);
  for (std::size_t i = 2; i < bytes_after_round.size(); ++i) {
    EXPECT_LE(bytes_after_round[i], 2 * warmup)
        << "state grew with stream length (round " << i << ")";
  }
  EXPECT_LE(streamer.peak_state_bytes(), 4 * warmup);
  // Absolute sanity ceiling, far below anything an unbounded run reaches.
  EXPECT_LE(streamer.peak_state_bytes(), 32u * 1024 * 1024);

  // Chaos plus shedding must have produced degraded-confidence reports,
  // and the monitoring plane must have seen its own chaos.
  EXPECT_GT(streamer.analyzer().detector_stats().degraded_reports, 0u);
  EXPECT_GT(streamer.analyzer().watcher().probe_stats().drops +
                streamer.analyzer().watcher().probe_stats().timeouts,
            0u);
}

}  // namespace
}  // namespace gretel::stream
