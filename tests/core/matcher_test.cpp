#include "gretel/matcher.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gretel::core {
namespace {

using wire::ApiCatalog;
using wire::ApiId;
using wire::HttpMethod;
using wire::ServiceKind;

std::vector<ApiId> ids(std::initializer_list<int> xs) {
  std::vector<ApiId> out;
  for (int x : xs) out.emplace_back(static_cast<std::uint16_t>(x));
  return out;
}

// truncate_at_* returns a view into its input; materialize for EXPECT_EQ.
std::vector<ApiId> to_vec(std::span<const ApiId> s) {
  return {s.begin(), s.end()};
}

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() {
    // Ids 0..3: GETs; 4..7: POSTs; 8..9: RPCs.
    for (int i = 0; i < 4; ++i) {
      catalog_.add_rest(ServiceKind::Nova, HttpMethod::Get,
                        "/g" + std::to_string(i));
    }
    for (int i = 0; i < 4; ++i) {
      catalog_.add_rest(ServiceKind::Nova, HttpMethod::Post,
                        "/p" + std::to_string(i));
    }
    catalog_.add_rpc(ServiceKind::NovaCompute, "nova-compute", "r0");
    catalog_.add_rpc(ServiceKind::NovaCompute, "nova-compute", "r1");
  }

  ApiCatalog catalog_;
};

TEST_F(MatcherTest, TruncateAtLastOccurrence) {
  const auto seq = ids({4, 0, 5, 0, 6});
  EXPECT_EQ(to_vec(Matcher::truncate_at_last(seq, ApiId(0))),
            ids({4, 0, 5, 0}));
  EXPECT_EQ(to_vec(Matcher::truncate_at_last(seq, ApiId(4))), ids({4}));
  EXPECT_EQ(to_vec(Matcher::truncate_at_last(seq, ApiId(6))), seq);
}

TEST_F(MatcherTest, TruncateAbsentApiKeepsAll) {
  const auto seq = ids({4, 5});
  EXPECT_EQ(to_vec(Matcher::truncate_at_last(seq, ApiId(3))), seq);
  EXPECT_EQ(to_vec(Matcher::truncate_at_first(seq, ApiId(3))), seq);
}

TEST_F(MatcherTest, TruncationsAreViewsIntoTheInput) {
  // The no-allocation contract: the returned span aliases the input array.
  const auto seq = ids({4, 0, 5, 0, 6});
  const auto view = Matcher::truncate_at_last(seq, ApiId(0));
  EXPECT_EQ(view.data(), seq.data());
  EXPECT_EQ(Matcher::truncate_at_first(seq, ApiId(6)).data(), seq.data());
}

TEST_F(MatcherTest, TruncateAtFirstOccurrence) {
  const auto seq = ids({4, 0, 5, 0, 6});
  EXPECT_EQ(to_vec(Matcher::truncate_at_first(seq, ApiId(0))), ids({4, 0}));
  EXPECT_EQ(to_vec(Matcher::truncate_at_first(seq, ApiId(4))), ids({4}));
  EXPECT_EQ(to_vec(Matcher::truncate_at_first(seq, ApiId(6))), seq);
}

TEST_F(MatcherTest, FirstTruncationLiteralsPrefixLastTruncationLiterals) {
  // The property the detector relies on: matching the first-occurrence
  // prefix is implied by matching any later occurrence's prefix.
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  const auto seq = ids({4, 8, 5, 8, 6});
  const auto first = m.required_literals(
      Matcher::truncate_at_first(seq, ApiId(8)));
  const auto last = m.required_literals(
      Matcher::truncate_at_last(seq, ApiId(8)));
  ASSERT_LE(first.size(), last.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], last[i]);
  }
}

TEST_F(MatcherTest, RequiredLiteralsStateChangeOnly) {
  const Matcher m(&catalog_, {/*include_rpc=*/true,
                              MatchBackend::SymbolSubsequence});
  // GET(0) POST(4) RPC(8) GET(1) POST(5) -> POST RPC POST.
  EXPECT_EQ(m.required_literals(ids({0, 4, 8, 1, 5})), ids({4, 8, 5}));
}

TEST_F(MatcherTest, RequiredLiteralsRpcPruned) {
  const Matcher m(&catalog_, {/*include_rpc=*/false,
                              MatchBackend::SymbolSubsequence});
  EXPECT_EQ(m.required_literals(ids({0, 4, 8, 1, 5})), ids({4, 5}));
}

TEST_F(MatcherTest, MatchesInOrderWithInterleaving) {
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  // Fig. 4's property: foreign symbols interleave but order is preserved.
  EXPECT_TRUE(m.matches(ids({4, 5}), ids({0, 4, 1, 2, 5, 3})));
  EXPECT_FALSE(m.matches(ids({5, 4}), ids({0, 4, 1, 2, 5, 3})));
}

TEST_F(MatcherTest, MissingLiteralFailsMatch) {
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  EXPECT_FALSE(m.matches(ids({4, 6}), ids({4, 5})));
}

TEST_F(MatcherTest, EmptyLiteralsNeverMatch) {
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  EXPECT_FALSE(m.matches({}, ids({4, 5})));
}

TEST_F(MatcherTest, EmptySnapshotNeverMatches) {
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  EXPECT_FALSE(m.matches(ids({4}), {}));
}

TEST_F(MatcherTest, RepeatedLiteralsNeedRepeatedOccurrences) {
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  EXPECT_FALSE(m.matches(ids({4, 4}), ids({0, 4, 1})));
  EXPECT_TRUE(m.matches(ids({4, 4}), ids({4, 0, 4})));
}

TEST_F(MatcherTest, RegexBackendAgreesOnExamples) {
  const Matcher sub(&catalog_, {true, MatchBackend::SymbolSubsequence});
  const Matcher re(&catalog_, {true, MatchBackend::StdRegex});
  const auto snapshot = ids({0, 4, 1, 8, 2, 5, 9, 3});
  for (const auto& lits :
       {ids({4, 5}), ids({4, 8, 5}), ids({8, 9}), ids({5, 4}),
        ids({4, 4}), ids({9, 8})}) {
    EXPECT_EQ(sub.matches(lits, snapshot), re.matches(lits, snapshot));
  }
}

TEST_F(MatcherTest, RegexBackendCachesCompiledPatterns) {
  const Matcher re(&catalog_, {true, MatchBackend::StdRegex});
  const auto lits = ids({4, 5});
  EXPECT_TRUE(re.matches(lits, ids({0, 4, 1, 5})));
  EXPECT_EQ(re.regex_cache_misses(), 1u);
  EXPECT_EQ(re.regex_cache_hits(), 0u);
  // Same literal sequence, different snapshot: compiled pattern is reused.
  EXPECT_TRUE(re.matches(lits, ids({4, 2, 2, 5})));
  EXPECT_EQ(re.regex_cache_misses(), 1u);
  EXPECT_EQ(re.regex_cache_hits(), 1u);
  // New literal sequence compiles once more.
  EXPECT_FALSE(re.matches(ids({5, 4}), ids({0, 4, 1, 5})));
  EXPECT_EQ(re.regex_cache_misses(), 2u);
  EXPECT_EQ(re.regex_cache_hits(), 1u);
}

TEST_F(MatcherTest, NearFaultStrongOnFullEvidence) {
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  const auto lits = ids({4, 5, 6});
  const auto snap = ids({0, 4, 1, 5, 2, 6, 3});
  EXPECT_EQ(m.match_tier(lits, snap, /*fault=*/6, /*min_suffix=*/2),
            Matcher::Tier::Strong);
  EXPECT_TRUE(m.matches_near_fault(lits, snap, 6, 2));
}

TEST_F(MatcherTest, NearFaultWeakWhenHeadOutsideWindow) {
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  // Window shows only the tail {5, 6}; literal 4 lies before the horizon.
  const auto lits = ids({4, 5, 6});
  const auto snap = ids({0, 5, 1, 6});
  EXPECT_EQ(m.match_tier(lits, snap, 3, /*min_suffix=*/2),
            Matcher::Tier::Weak);
}

TEST_F(MatcherTest, NearFaultNoneWhenSuffixTooShallow) {
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  const auto lits = ids({4, 5, 6, 7});
  const auto snap = ids({0, 7, 1});  // only one trailing literal present
  EXPECT_EQ(m.match_tier(lits, snap, 1, /*min_suffix=*/2),
            Matcher::Tier::None);
}

TEST_F(MatcherTest, NearFaultIgnoresEvidenceAfterFaultInBackwardScan) {
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  const auto lits = ids({4, 5});
  // Literals appear only *after* the fault position 0: the backward scan
  // finds nothing, but the forward (strong) check still sees them.
  const auto snap = ids({0, 4, 5});
  EXPECT_EQ(m.match_tier(lits, snap, 0, 2), Matcher::Tier::Strong);
}

TEST_F(MatcherTest, NearFaultEmptyInputs) {
  const Matcher m(&catalog_, {true, MatchBackend::SymbolSubsequence});
  EXPECT_EQ(m.match_tier({}, ids({4}), 0, 2), Matcher::Tier::None);
  EXPECT_EQ(m.match_tier(ids({4}), {}, 0, 2), Matcher::Tier::None);
}

// Property sweep: the two backends implement identical semantics on random
// inputs (the §6 "offload matching to Perl" ablation hinges on this).
class BackendEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalence, SubsequenceEqualsRegex) {
  ApiCatalog catalog;
  for (int i = 0; i < 12; ++i) {
    catalog.add_rest(ServiceKind::Nova, HttpMethod::Post,
                     "/p" + std::to_string(i));
  }
  const Matcher sub(&catalog, {true, MatchBackend::SymbolSubsequence});
  const Matcher re(&catalog, {true, MatchBackend::StdRegex});

  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<ApiId> literals;
    std::vector<ApiId> snapshot;
    const auto nl = 1 + rng.next_below(5);
    const auto ns = rng.next_below(60);
    for (std::size_t i = 0; i < nl; ++i)
      literals.emplace_back(static_cast<std::uint16_t>(rng.next_below(12)));
    for (std::size_t i = 0; i < ns; ++i)
      snapshot.emplace_back(static_cast<std::uint16_t>(rng.next_below(12)));
    EXPECT_EQ(sub.matches(literals, snapshot), re.matches(literals, snapshot))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalence, ::testing::Range(1, 11));

}  // namespace
}  // namespace gretel::core
