#include "gretel/fingerprint.h"

#include <gtest/gtest.h>

#include "gretel/fingerprint_db.h"

namespace gretel::core {
namespace {

using wire::ApiCatalog;
using wire::ApiId;
using wire::HttpMethod;
using wire::ServiceKind;

class FingerprintTest : public ::testing::Test {
 protected:
  FingerprintTest() : filter_(&catalog_), generator_(&catalog_, &filter_) {
    post_a_ = catalog_.add_rest(ServiceKind::Nova, HttpMethod::Post, "/a");
    get_b_ = catalog_.add_rest(ServiceKind::Nova, HttpMethod::Get, "/b");
    rpc_c_ = catalog_.add_rpc(ServiceKind::NovaCompute, "nova-compute", "c");
    get_d_ = catalog_.add_rest(ServiceKind::Glance, HttpMethod::Get, "/d");
    put_e_ = catalog_.add_rest(ServiceKind::Glance, HttpMethod::Put, "/e");
    keystone_ = catalog_.add_rest(ServiceKind::Keystone, HttpMethod::Post,
                                  "/v3/auth/tokens");
  }

  ApiCatalog catalog_;
  NoiseFilter filter_;
  FingerprintGenerator generator_;
  ApiId post_a_, get_b_, rpc_c_, get_d_, put_e_, keystone_;
};

TEST_F(FingerprintTest, SingleTraceIsFilteredTrace) {
  const auto fp = generator_.from_traces(
      wire::OpTemplateId(1), "op",
      {{keystone_, post_a_, get_b_, get_b_, rpc_c_}});
  EXPECT_EQ(fp.sequence, (std::vector<ApiId>{post_a_, get_b_, rpc_c_}));
  EXPECT_EQ(fp.op, wire::OpTemplateId(1));
  EXPECT_EQ(fp.name, "op");
}

TEST_F(FingerprintTest, TransientApisRemovedByLcs) {
  // get_d_ appears only in one of three runs: pruned (§5 re-execution).
  const auto fp = generator_.from_traces(
      wire::OpTemplateId(2), "op",
      {{post_a_, get_b_, rpc_c_},
       {post_a_, get_d_, get_b_, rpc_c_},
       {post_a_, get_b_, rpc_c_}});
  EXPECT_EQ(fp.sequence, (std::vector<ApiId>{post_a_, get_b_, rpc_c_}));
}

TEST_F(FingerprintTest, StateSequenceExtracted) {
  const auto fp = generator_.from_traces(
      wire::OpTemplateId(3), "op",
      {{post_a_, get_b_, rpc_c_, get_d_, put_e_}});
  EXPECT_EQ(fp.state_sequence,
            (std::vector<ApiId>{post_a_, rpc_c_, put_e_}));
}

TEST_F(FingerprintTest, SizeWithoutRpc) {
  const auto fp = generator_.from_traces(
      wire::OpTemplateId(4), "op", {{post_a_, rpc_c_, get_b_, rpc_c_}});
  EXPECT_EQ(fp.size(), 4u);
  EXPECT_EQ(fp.size_without_rpc(catalog_), 2u);
}

TEST_F(FingerprintTest, Contains) {
  const auto fp = generator_.from_traces(wire::OpTemplateId(5), "op",
                                         {{post_a_, get_b_}});
  EXPECT_TRUE(fp.contains(post_a_));
  EXPECT_FALSE(fp.contains(put_e_));
}

TEST_F(FingerprintTest, RegexStringAlgorithm1Form) {
  const SymbolTable symbols(catalog_);
  const auto fp = generator_.from_traces(
      wire::OpTemplateId(6), "op", {{post_a_, get_b_, rpc_c_, get_d_}});
  // POST literal, GET starred, RPC literal (state change), GET starred.
  std::u32string expected;
  expected += symbols.symbol(post_a_);
  expected += symbols.symbol(get_b_);
  expected += U'*';
  expected += symbols.symbol(rpc_c_);
  expected += symbols.symbol(get_d_);
  expected += U'*';
  EXPECT_EQ(fp.regex_string(symbols, catalog_, /*include_rpc=*/true),
            expected);
}

TEST_F(FingerprintTest, RegexStringWithoutRpc) {
  const SymbolTable symbols(catalog_);
  const auto fp = generator_.from_traces(wire::OpTemplateId(7), "op",
                                         {{post_a_, rpc_c_, put_e_}});
  std::u32string expected;
  expected += symbols.symbol(post_a_);
  expected += symbols.symbol(put_e_);
  EXPECT_EQ(fp.regex_string(symbols, catalog_, /*include_rpc=*/false),
            expected);
}

TEST_F(FingerprintTest, EmptyTraceListYieldsEmptyFingerprint) {
  const auto fp = generator_.from_traces(wire::OpTemplateId(8), "op", {});
  EXPECT_TRUE(fp.sequence.empty());
  EXPECT_TRUE(fp.state_sequence.empty());
}

TEST_F(FingerprintTest, FromEventTracesUsesRequests) {
  wire::Event req;
  req.api = post_a_;
  req.dir = wire::Direction::Request;
  wire::Event resp = req;
  resp.dir = wire::Direction::Response;
  const auto fp = generator_.from_event_traces(wire::OpTemplateId(9), "op",
                                               {{req, resp}});
  EXPECT_EQ(fp.sequence, (std::vector<ApiId>{post_a_}));
}

TEST_F(FingerprintTest, DbInvertedIndex) {
  FingerprintDb db;
  const auto fp1 = generator_.from_traces(wire::OpTemplateId(0), "one",
                                          {{post_a_, get_b_}});
  const auto fp2 = generator_.from_traces(wire::OpTemplateId(1), "two",
                                          {{post_a_, rpc_c_}});
  const auto i1 = db.add(fp1);
  const auto i2 = db.add(fp2);

  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.containing(post_a_),
            (std::vector<FingerprintDb::Index>{i1, i2}));
  EXPECT_EQ(db.containing(rpc_c_), (std::vector<FingerprintDb::Index>{i2}));
  EXPECT_TRUE(db.containing(put_e_).empty());
}

TEST_F(FingerprintTest, DbMaxSizeTracksLargest) {
  FingerprintDb db;
  db.add(generator_.from_traces(wire::OpTemplateId(0), "small",
                                {{post_a_}}));
  db.add(generator_.from_traces(wire::OpTemplateId(1), "large",
                                {{post_a_, get_b_, rpc_c_, get_d_, put_e_}}));
  EXPECT_EQ(db.max_fingerprint_size(), 5u);
}

TEST_F(FingerprintTest, DbIndexDeduplicatesRepeatedApis) {
  FingerprintDb db;
  const auto idx = db.add(generator_.from_traces(
      wire::OpTemplateId(0), "rep", {{post_a_, get_b_, post_a_}}));
  EXPECT_EQ(db.containing(post_a_).size(), 1u);
  EXPECT_EQ(db.containing(post_a_)[0], idx);
}

}  // namespace
}  // namespace gretel::core
