// The branched-fingerprint extension (paper limitation 6).
#include <gtest/gtest.h>

#include "gretel/fingerprint.h"
#include "gretel/training.h"

namespace gretel::core {
namespace {

using wire::ApiCatalog;
using wire::ApiId;
using wire::HttpMethod;
using wire::ServiceKind;

class BranchedFingerprintTest : public ::testing::Test {
 protected:
  BranchedFingerprintTest()
      : filter_(&catalog_), generator_(&catalog_, &filter_) {
    for (int i = 0; i < 8; ++i) {
      api_.push_back(catalog_.add_rest(ServiceKind::Nova, HttpMethod::Post,
                                       "/p" + std::to_string(i)));
    }
  }

  std::vector<ApiId> seq(std::initializer_list<int> xs) {
    std::vector<ApiId> out;
    for (int x : xs) out.push_back(api_[static_cast<std::size_t>(x)]);
    return out;
  }

  ApiCatalog catalog_;
  NoiseFilter filter_;
  FingerprintGenerator generator_;
  std::vector<ApiId> api_;
};

TEST_F(BranchedFingerprintTest, SingleShapeYieldsOneFingerprint) {
  const auto fps = generator_.from_traces_branched(
      wire::OpTemplateId(1), "op",
      {seq({0, 1, 2}), seq({0, 1, 2}), seq({0, 1, 2})});
  ASSERT_EQ(fps.size(), 1u);
  EXPECT_EQ(fps[0].name, "op");  // no #k suffix for a single branch
  EXPECT_EQ(fps[0].sequence, seq({0, 1, 2}));
}

TEST_F(BranchedFingerprintTest, AsyncBranchPreserved) {
  // Two trace families: with and without the async insert (API 5).  The
  // plain fold loses API 5; branched learning keeps both shapes.
  const std::vector<std::vector<ApiId>> traces{
      seq({0, 1, 2, 3}), seq({0, 5, 1, 2, 3}), seq({0, 1, 2, 3}),
      seq({0, 5, 1, 2, 3})};

  const auto plain = generator_.from_traces(wire::OpTemplateId(1), "op",
                                            traces);
  EXPECT_FALSE(plain.contains(api_[5]));

  const auto fps = generator_.from_traces_branched(
      wire::OpTemplateId(1), "op", traces, /*similarity_threshold=*/0.9);
  ASSERT_EQ(fps.size(), 2u);
  const bool branch0_has5 = fps[0].contains(api_[5]);
  const bool branch1_has5 = fps[1].contains(api_[5]);
  EXPECT_NE(branch0_has5, branch1_has5) << "exactly one branch has API 5";
  EXPECT_EQ(fps[0].op, fps[1].op) << "branches share the operation id";
  EXPECT_NE(fps[0].name, fps[1].name);
}

TEST_F(BranchedFingerprintTest, LowThresholdMergesEverything) {
  const auto fps = generator_.from_traces_branched(
      wire::OpTemplateId(1), "op",
      {seq({0, 1, 2, 3}), seq({0, 5, 1, 2, 3})},
      /*similarity_threshold=*/0.1);
  EXPECT_EQ(fps.size(), 1u);
}

TEST_F(BranchedFingerprintTest, BranchesShareOpIdInDatabase) {
  FingerprintDb db;
  for (auto& fp : generator_.from_traces_branched(
           wire::OpTemplateId(7), "op",
           {seq({0, 1, 2}), seq({0, 4, 1, 2})}, 0.95)) {
    db.add(std::move(fp));
  }
  ASSERT_EQ(db.size(), 2u);
  // Both branches are candidates for their shared APIs...
  EXPECT_EQ(db.containing(api_[0]).size(), 2u);
  // ...and only the async branch for the branch-specific one.
  EXPECT_EQ(db.containing(api_[4]).size(), 1u);
}

TEST(BranchedTraining, ProducesAtLeastOneFingerprintPerOperation) {
  const auto catalog = tempest::TempestCatalog::build(61, 0.03);
  auto deployment = stack::Deployment::standard(3);
  TrainingOptions options;
  options.branch_similarity = 0.9;
  options.repeats = 4;
  const auto report = learn_fingerprints(catalog, deployment, options);
  EXPECT_GE(report.db.size(), catalog.operations().size());

  // Every operation id appears in the database.
  std::vector<bool> seen(catalog.operations().size(), false);
  for (const auto& fp : report.db.all()) seen[fp.op.value()] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace gretel::core
