// Direct unit tests for the root-cause engine (Algorithm 3), built on a
// hand-assembled fingerprint DB and metrics so each rule is isolated.
#include "gretel/root_cause.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>

namespace gretel::core {
namespace {

using util::SimDuration;
using util::SimTime;
using wire::NodeId;
using wire::ServiceKind;

class RootCauseTest : public ::testing::Test {
 protected:
  RootCauseTest() : deployment_(stack::Deployment::standard(2)) {
    nova_api_ = catalog_.add_rest(ServiceKind::Nova, wire::HttpMethod::Post,
                                  "/v2.1/servers");
    neutron_api_ = catalog_.add_rest(ServiceKind::Neutron,
                                     wire::HttpMethod::Post,
                                     "/v2.0/ports.json");
    rpc_compute_ = catalog_.add_rpc(ServiceKind::NovaCompute, "nova-compute",
                                    "build");

    Fingerprint fp;
    fp.op = wire::OpTemplateId(0);
    fp.name = "vm-create";
    fp.sequence = {nova_api_, rpc_compute_, neutron_api_};
    fp.state_sequence = fp.sequence;
    db_.add(fp);

    watcher_ = std::make_unique<monitor::DependencyWatcher>(&deployment_);
    engine_ = std::make_unique<RootCauseEngine>(&db_, &catalog_, &deployment_,
                                                &metrics_, watcher_.get());
  }

  // Seeds a flat resource series for every node, 0..60 s.  One (node,
  // kind, window) triple can be overridden with a surge level — mirroring
  // what the 1 Hz monitor would actually record during a perturbation.
  void seed_flat_metrics(std::optional<wire::NodeId> surge_node = {},
                         net::ResourceKind surge_kind =
                             net::ResourceKind::CpuPct,
                         int surge_from = 0, int surge_to = 0,
                         double surge_level = 0.0) {
    for (auto node : deployment_.node_ids()) {
      for (std::size_t k = 0; k < net::kResourceKinds; ++k) {
        const auto kind = static_cast<net::ResourceKind>(k);
        const double level =
            kind == net::ResourceKind::DiskFreeMb ? 100000.0 : 20.0;
        for (int t = 0; t < 60; ++t) {
          const bool surged = surge_node && node == *surge_node &&
                              kind == surge_kind && t >= surge_from &&
                              t < surge_to;
          metrics_.record(node, kind, t,
                          surged ? surge_level : level + 0.1 * (t % 3));
        }
      }
    }
  }

  FaultReport fault_with_error_nodes(NodeId a, NodeId b) {
    FaultReport fault;
    fault.offending_api = neutron_api_;
    fault.matched_fingerprints = {0};
    fault.window_start = SimTime::epoch() + SimDuration::seconds(20);
    fault.window_end = SimTime::epoch() + SimDuration::seconds(30);
    wire::Event err;
    err.dir = wire::Direction::Response;
    err.status = 500;
    err.src_node = a;
    err.dst_node = b;
    fault.error_events.push_back(err);
    return fault;
  }

  stack::Deployment deployment_;
  wire::ApiCatalog catalog_;
  FingerprintDb db_;
  monitor::MetricsStore metrics_;
  std::unique_ptr<monitor::DependencyWatcher> watcher_;
  std::unique_ptr<RootCauseEngine> engine_;
  wire::ApiId nova_api_, neutron_api_, rpc_compute_;
};

TEST_F(RootCauseTest, NodesForOperationsFollowServices) {
  const auto nodes = engine_->nodes_for_operations({0});
  // vm-create touches Nova, Neutron and the computes (NovaCompute).
  EXPECT_NE(std::find(nodes.begin(), nodes.end(),
                      deployment_.primary_node_for(ServiceKind::Nova)),
            nodes.end());
  EXPECT_NE(std::find(nodes.begin(), nodes.end(),
                      deployment_.primary_node_for(ServiceKind::Neutron)),
            nodes.end());
  for (auto compute : deployment_.nodes_for(ServiceKind::NovaCompute)) {
    EXPECT_NE(std::find(nodes.begin(), nodes.end(), compute), nodes.end());
  }
}

TEST_F(RootCauseTest, CleanStateYieldsNoCauses) {
  seed_flat_metrics();
  const auto nova = deployment_.primary_node_for(ServiceKind::Nova);
  const auto neutron = deployment_.primary_node_for(ServiceKind::Neutron);
  const auto report = engine_->analyze(fault_with_error_nodes(nova, neutron));
  EXPECT_TRUE(report.causes.empty());
  EXPECT_TRUE(report.expanded_search) << "clean endpoints -> expanded";
}

TEST_F(RootCauseTest, ResourceAnomalyOnErrorNode) {
  const auto neutron = deployment_.primary_node_for(ServiceKind::Neutron);
  // CPU surge inside the fault window only.
  seed_flat_metrics(neutron, net::ResourceKind::CpuPct, 20, 30, 95.0);
  const auto nova = deployment_.primary_node_for(ServiceKind::Nova);
  const auto report = engine_->analyze(fault_with_error_nodes(nova, neutron));
  ASSERT_FALSE(report.causes.empty());
  EXPECT_FALSE(report.expanded_search);
  EXPECT_EQ(report.causes.front().node, neutron);
  EXPECT_EQ(report.causes.front().kind, CauseKind::ResourceAnomaly);
  EXPECT_NE(report.causes.front().detail.find("cpu"), std::string::npos);
}

TEST_F(RootCauseTest, SoftwareFailureOutranksResourceAnomaly) {
  const auto neutron = deployment_.primary_node_for(ServiceKind::Neutron);
  seed_flat_metrics(neutron, net::ResourceKind::CpuPct, 20, 30, 95.0);
  deployment_.node(neutron).inject_outage(
      {"neutron-server", SimTime::epoch(),
       SimTime::epoch() + SimDuration::minutes(5)});
  const auto nova = deployment_.primary_node_for(ServiceKind::Nova);
  const auto report = engine_->analyze(fault_with_error_nodes(nova, neutron));
  ASSERT_GE(report.causes.size(), 2u);
  EXPECT_EQ(report.causes.front().kind, CauseKind::SoftwareFailure);
  EXPECT_EQ(report.causes.front().detail, "neutron-server");
}

TEST_F(RootCauseTest, ExpandsUpstreamWhenEndpointsClean) {
  seed_flat_metrics();
  // Crash on a compute node, which is NOT among the error endpoints.
  const auto computes = deployment_.nodes_for(ServiceKind::NovaCompute);
  deployment_.node(computes.front())
      .inject_outage({"neutron-plugin-linuxbridge-agent", SimTime::epoch(),
                      SimTime::epoch() + SimDuration::minutes(5)});

  const auto nova = deployment_.primary_node_for(ServiceKind::Nova);
  const auto neutron = deployment_.primary_node_for(ServiceKind::Neutron);
  const auto report = engine_->analyze(fault_with_error_nodes(nova, neutron));
  ASSERT_FALSE(report.causes.empty());
  EXPECT_TRUE(report.expanded_search);
  EXPECT_EQ(report.causes.front().node, computes.front());
  EXPECT_EQ(report.causes.front().detail,
            "neutron-plugin-linuxbridge-agent");
}

TEST_F(RootCauseTest, AnomalyOutsideWindowIgnored) {
  const auto neutron = deployment_.primary_node_for(ServiceKind::Neutron);
  // Surge well before the fault window (and its 3 s pad).
  seed_flat_metrics(neutron, net::ResourceKind::CpuPct, 5, 10, 95.0);
  const auto nova = deployment_.primary_node_for(ServiceKind::Nova);
  const auto report = engine_->analyze(fault_with_error_nodes(nova, neutron));
  EXPECT_TRUE(report.causes.empty());
}

TEST_F(RootCauseTest, DiskFloorViaAbsoluteRule) {
  // Disk has been nearly full the whole time: no *relative* anomaly, but
  // the absolute floor rule fires inside the window.  (Seed manually: the
  // flat helper would give the node a healthy disk series.)
  const auto neutron = deployment_.primary_node_for(ServiceKind::Neutron);
  for (int t = 0; t < 60; ++t) {
    metrics_.record(neutron, net::ResourceKind::CpuPct, t, 20.0);
    metrics_.record(neutron, net::ResourceKind::DiskFreeMb, t, 300.0);
  }
  const auto nova = deployment_.primary_node_for(ServiceKind::Nova);
  const auto report = engine_->analyze(fault_with_error_nodes(nova, neutron));
  ASSERT_FALSE(report.causes.empty());
  bool disk = false;
  for (const auto& c : report.causes) {
    disk = disk || c.detail.find("disk") != std::string::npos;
  }
  EXPECT_TRUE(disk);
}

TEST_F(RootCauseTest, StaleMetricsAreUnknownNotClean) {
  // Every series froze at t = 10 s, well before the 20–30 s fault window.
  // With staleness checking on, that is *not* "no anomaly": the engine
  // must flag the series stale, keep searching, and mark the report.
  for (auto node : deployment_.node_ids()) {
    for (std::size_t k = 0; k < net::kResourceKinds; ++k) {
      const auto kind = static_cast<net::ResourceKind>(k);
      for (int t = 0; t < 10; ++t) metrics_.record(node, kind, t, 20.0);
    }
  }
  RootCauseEngine::Options options;
  options.metric_staleness_s = 5.0;
  RootCauseEngine engine(&db_, &catalog_, &deployment_, &metrics_,
                         watcher_.get(), options);

  const auto nova = deployment_.primary_node_for(ServiceKind::Nova);
  const auto neutron = deployment_.primary_node_for(ServiceKind::Neutron);
  const auto report = engine.analyze(fault_with_error_nodes(nova, neutron));

  EXPECT_TRUE(report.causes.empty());
  EXPECT_TRUE(report.expanded_search) << "stale evidence -> keep looking";
  EXPECT_TRUE(report.monitoring_degraded);
  EXPECT_GT(report.stale_series, 0u);
  bool metric_gap = false;
  for (const auto& g : report.evidence_gaps) {
    metric_gap = metric_gap ||
                 (g.dependency.rfind("metric:", 0) == 0 &&
                  g.status == monitor::EvidenceStatus::Stale);
  }
  EXPECT_TRUE(metric_gap);
}

TEST_F(RootCauseTest, FreshMetricsPassStalenessGate) {
  // Same staleness knob, but the series cover the window: the gate must
  // not fire and legacy behavior is preserved.
  seed_flat_metrics();
  RootCauseEngine::Options options;
  options.metric_staleness_s = 5.0;
  RootCauseEngine engine(&db_, &catalog_, &deployment_, &metrics_,
                         watcher_.get(), options);
  const auto nova = deployment_.primary_node_for(ServiceKind::Nova);
  const auto neutron = deployment_.primary_node_for(ServiceKind::Neutron);
  const auto report = engine.analyze(fault_with_error_nodes(nova, neutron));
  EXPECT_FALSE(report.monitoring_degraded);
  EXPECT_EQ(report.stale_series, 0u);
}

TEST_F(RootCauseTest, ProbedWatcherZeroChaosMatchesOracle) {
  seed_flat_metrics();
  const auto neutron = deployment_.primary_node_for(ServiceKind::Neutron);
  deployment_.node(neutron).inject_outage(
      {"neutron-server", SimTime::epoch(),
       SimTime::epoch() + SimDuration::minutes(5)});

  monitor::DependencyWatcher probed(&deployment_, monitor::ProbeConfig{},
                                    monitor::MonitorChaosConfig{});
  ASSERT_TRUE(probed.probed());
  RootCauseEngine engine(&db_, &catalog_, &deployment_, &metrics_, &probed);

  const auto nova = deployment_.primary_node_for(ServiceKind::Nova);
  const auto fault = fault_with_error_nodes(nova, neutron);
  const auto oracle_report = engine_->analyze(fault);
  const auto probed_report = engine.analyze(fault);

  ASSERT_EQ(probed_report.causes.size(), oracle_report.causes.size());
  for (std::size_t i = 0; i < probed_report.causes.size(); ++i) {
    EXPECT_EQ(probed_report.causes[i].node, oracle_report.causes[i].node);
    EXPECT_EQ(probed_report.causes[i].detail, oracle_report.causes[i].detail);
    EXPECT_EQ(probed_report.causes[i].evidence,
              monitor::EvidenceStatus::Confirmed);
    EXPECT_DOUBLE_EQ(probed_report.causes[i].confidence, 1.0);
  }
  EXPECT_FALSE(probed_report.monitoring_degraded);
  EXPECT_DOUBLE_EQ(probed_report.probe_time_ms, 0.0);
}

TEST_F(RootCauseTest, WedgedMonitoringAgentYieldsGapsNotInnocence) {
  seed_flat_metrics();
  const auto neutron = deployment_.primary_node_for(ServiceKind::Neutron);
  // The daemon is down AND the node's monitoring agent is wedged: the
  // engine cannot confirm the failure, but it must say "could not
  // observe", not "clean".
  deployment_.node(neutron).inject_outage(
      {"neutron-server", SimTime::epoch(),
       SimTime::epoch() + SimDuration::minutes(5)});
  monitor::MonitorChaosConfig chaos;
  chaos.agent_outages.push_back({neutron, SimTime::epoch(),
                                 SimTime::epoch() + SimDuration::minutes(5),
                                 /*wedged=*/true});
  monitor::DependencyWatcher probed(&deployment_, monitor::ProbeConfig{},
                                    chaos);
  RootCauseEngine engine(&db_, &catalog_, &deployment_, &metrics_, &probed);

  const auto nova = deployment_.primary_node_for(ServiceKind::Nova);
  const auto report = engine.analyze(fault_with_error_nodes(nova, neutron));

  for (const auto& c : report.causes) {
    EXPECT_NE(c.detail, "neutron-server") << "unobservable, not confirmable";
  }
  EXPECT_TRUE(report.expanded_search);
  EXPECT_TRUE(report.monitoring_degraded);
  EXPECT_GT(report.probe_time_ms, 0.0);
  bool gap_on_neutron = false;
  for (const auto& g : report.evidence_gaps) {
    gap_on_neutron = gap_on_neutron ||
                     (g.node == neutron && g.dependency == "neutron-server" &&
                      g.status == monitor::EvidenceStatus::Unknown);
  }
  EXPECT_TRUE(gap_on_neutron);
}

}  // namespace
}  // namespace gretel::core
