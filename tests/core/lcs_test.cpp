#include "gretel/lcs.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gretel::core {
namespace {

using wire::ApiId;

std::vector<ApiId> ids(std::initializer_list<int> xs) {
  std::vector<ApiId> out;
  for (int x : xs) out.emplace_back(static_cast<std::uint16_t>(x));
  return out;
}

// True when `sub` is a subsequence of `seq`.
bool is_subsequence(const std::vector<ApiId>& sub,
                    const std::vector<ApiId>& seq) {
  std::size_t need = 0;
  for (auto x : seq) {
    if (need < sub.size() && x == sub[need]) ++need;
  }
  return need == sub.size();
}

TEST(Lcs, EmptyInputs) {
  EXPECT_TRUE(longest_common_subsequence({}, {}).empty());
  EXPECT_TRUE(longest_common_subsequence(ids({1, 2}), {}).empty());
  EXPECT_TRUE(longest_common_subsequence({}, ids({1, 2})).empty());
}

TEST(Lcs, IdenticalSequences) {
  const auto a = ids({1, 2, 3, 4});
  EXPECT_EQ(longest_common_subsequence(a, a), a);
}

TEST(Lcs, ClassicExample) {
  // LCS of ABCBDAB / BDCABA has length 4 (e.g. BCAB or BDAB).
  const auto a = ids({1, 2, 3, 2, 4, 1, 2});
  const auto b = ids({2, 4, 3, 1, 2, 1});
  const auto lcs = longest_common_subsequence(a, b);
  EXPECT_EQ(lcs.size(), 4u);
  EXPECT_TRUE(is_subsequence(lcs, a));
  EXPECT_TRUE(is_subsequence(lcs, b));
}

TEST(Lcs, DisjointAlphabets) {
  EXPECT_TRUE(
      longest_common_subsequence(ids({1, 2, 3}), ids({4, 5, 6})).empty());
}

TEST(Lcs, OneIsSubsequenceOfOther) {
  const auto small = ids({2, 5, 7});
  const auto big = ids({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(longest_common_subsequence(small, big), small);
  EXPECT_EQ(longest_common_subsequence(big, small), small);
}

TEST(Lcs, RemovesTransientInsertions) {
  // The Algorithm-1 use case: run 2 has a transient API (9) injected; the
  // LCS recovers the stable skeleton.
  const auto run1 = ids({1, 2, 3, 4, 5});
  const auto run2 = ids({1, 2, 9, 3, 4, 5});
  EXPECT_EQ(longest_common_subsequence(run1, run2), run1);
}

// Property sweep over random traces: the result is a common subsequence,
// and never shorter than what greedy intersection proves possible.
class LcsProperty : public ::testing::TestWithParam<int> {};

TEST_P(LcsProperty, IsCommonSubsequenceAndSymmetricLength) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ApiId> a;
    std::vector<ApiId> b;
    const auto na = 1 + rng.next_below(40);
    const auto nb = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < na; ++i)
      a.emplace_back(static_cast<std::uint16_t>(rng.next_below(8)));
    for (std::size_t i = 0; i < nb; ++i)
      b.emplace_back(static_cast<std::uint16_t>(rng.next_below(8)));

    const auto ab = longest_common_subsequence(a, b);
    const auto ba = longest_common_subsequence(b, a);
    EXPECT_TRUE(is_subsequence(ab, a));
    EXPECT_TRUE(is_subsequence(ab, b));
    EXPECT_EQ(ab.size(), ba.size());  // length is symmetric
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcsProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace gretel::core
