#include "gretel/db_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/binio.h"
#include "util/rng.h"

namespace gretel::core {
namespace {

using wire::ApiCatalog;
using wire::HttpMethod;
using wire::ServiceKind;

ApiCatalog small_catalog() {
  ApiCatalog cat;
  cat.add_rest(ServiceKind::Nova, HttpMethod::Post, "/v2.1/servers");
  cat.add_rest(ServiceKind::Nova, HttpMethod::Get, "/v2.1/servers/<ID>");
  cat.add_rpc(ServiceKind::NovaCompute, "nova-compute",
              "build_and_run_instance");
  cat.add_rest(ServiceKind::Glance, HttpMethod::Put, "/v2/images/<ID>/file");
  return cat;
}

FingerprintDb sample_db() {
  FingerprintDb db;
  Fingerprint a;
  a.op = wire::OpTemplateId(0);
  a.name = "vm-create";
  a.sequence = {wire::ApiId(0), wire::ApiId(2), wire::ApiId(1)};
  a.state_sequence = {wire::ApiId(0), wire::ApiId(2)};
  db.add(a);

  Fingerprint b;
  b.op = wire::OpTemplateId(1);
  b.name = "image-upload";
  b.sequence = {wire::ApiId(3), wire::ApiId(1)};
  b.state_sequence = {wire::ApiId(3)};
  db.add(b);
  return db;
}

TEST(DbIo, RoundTrip) {
  const auto catalog = small_catalog();
  const auto db = sample_db();
  const auto decoded =
      decode_fingerprint_db(encode_fingerprint_db(db, catalog), catalog);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ(decoded->get(0).name, "vm-create");
  EXPECT_EQ(decoded->get(0).sequence, db.get(0).sequence);
  EXPECT_EQ(decoded->get(1).op, wire::OpTemplateId(1));
}

TEST(DbIo, StateSequenceRecomputed) {
  const auto catalog = small_catalog();
  const auto decoded = decode_fingerprint_db(
      encode_fingerprint_db(sample_db(), catalog), catalog);
  ASSERT_TRUE(decoded.has_value());
  // POST(0), RPC(2) are state changes; GET(1) is not.
  EXPECT_EQ(decoded->get(0).state_sequence,
            (std::vector<wire::ApiId>{wire::ApiId(0), wire::ApiId(2)}));
}

TEST(DbIo, InvertedIndexRebuilt) {
  const auto catalog = small_catalog();
  const auto decoded = decode_fingerprint_db(
      encode_fingerprint_db(sample_db(), catalog), catalog);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->containing(wire::ApiId(1)).size(), 2u);
  EXPECT_EQ(decoded->containing(wire::ApiId(3)).size(), 1u);
  EXPECT_EQ(decoded->max_fingerprint_size(), 3u);
}

TEST(DbIo, RejectsCatalogMismatch) {
  const auto catalog = small_catalog();
  const auto data = encode_fingerprint_db(sample_db(), catalog);

  ApiCatalog other = small_catalog();
  other.add_rest(ServiceKind::Cinder, HttpMethod::Get, "/v2/<ID>/volumes");
  EXPECT_FALSE(decode_fingerprint_db(data, other).has_value());
}

TEST(DbIo, CatalogHashStable) {
  EXPECT_EQ(catalog_hash(small_catalog()), catalog_hash(small_catalog()));
}

TEST(DbIo, RejectsBadMagicAndTruncation) {
  const auto catalog = small_catalog();
  auto data = encode_fingerprint_db(sample_db(), catalog);
  for (std::size_t len = 0; len < data.size(); len += 3) {
    EXPECT_FALSE(
        decode_fingerprint_db(data.substr(0, len), catalog).has_value());
  }
  auto bad = data;
  bad[0] = 'x';
  EXPECT_FALSE(decode_fingerprint_db(bad, catalog).has_value());
  data += "y";
  EXPECT_FALSE(decode_fingerprint_db(data, catalog).has_value());
}

TEST(DbIo, RejectsOutOfRangeApiIds) {
  const auto catalog = small_catalog();
  FingerprintDb db;
  Fingerprint fp;
  fp.op = wire::OpTemplateId(0);
  fp.name = "bad";
  fp.sequence = {wire::ApiId(99)};  // not in catalog
  db.add(fp);
  EXPECT_FALSE(
      decode_fingerprint_db(encode_fingerprint_db(db, catalog), catalog)
          .has_value());
}

TEST(DbIo, CurrentFormatIsV2Sectioned) {
  const auto data = encode_fingerprint_db(sample_db(), small_catalog());
  EXPECT_EQ(data.substr(0, 8), "GRTFDB02");
}

TEST(DbIo, ReadsLegacyV1Format) {
  // GRTFDB01 files written before the sectioned format must keep loading:
  // magic, u64 catalog hash, u32 count, then the flat record stream.
  const auto catalog = small_catalog();
  const auto db = sample_db();
  std::string v1 = "GRTFDB01";
  util::put_u64(v1, catalog_hash(catalog));
  util::put_u32(v1, static_cast<std::uint32_t>(db.size()));
  for (const auto& fp : db.all()) {
    util::put_u32(v1, fp.op.value());
    util::put_u16(v1, static_cast<std::uint16_t>(fp.name.size()));
    v1 += fp.name;
    util::put_u32(v1, static_cast<std::uint32_t>(fp.sequence.size()));
    for (auto api : fp.sequence) util::put_u16(v1, api.value());
  }
  const auto decoded = decode_fingerprint_db(v1, catalog);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), db.size());
  EXPECT_EQ(decoded->get(0).name, "vm-create");
  EXPECT_EQ(decoded->get(0).sequence, db.get(0).sequence);
  EXPECT_EQ(decoded->get(1).sequence, db.get(1).sequence);
}

// Corruption fuzz: decode must never crash and never return a DB that
// differs from the original — every truncation and every seeded bit flip
// either fails the section CRC (nullopt) or, if it misses all checked
// bytes, leaves the payload untouched.
TEST(DbIo, TruncationFuzzEveryLength) {
  const auto catalog = small_catalog();
  const auto data = encode_fingerprint_db(sample_db(), catalog);
  for (std::size_t len = 0; len < data.size(); ++len) {
    EXPECT_FALSE(decode_fingerprint_db(data.substr(0, len), catalog))
        << "truncated to " << len << " of " << data.size();
  }
}

TEST(DbIo, BitFlipFuzzNeverYieldsADifferentDb) {
  const auto catalog = small_catalog();
  const auto db = sample_db();
  const auto data = encode_fingerprint_db(db, catalog);
  util::Rng rng(0xF1155EEDull);
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = data;
    const auto byte = rng.next_below(mutated.size());
    mutated[byte] = static_cast<char>(
        mutated[byte] ^ (1u << rng.next_below(8)));
    const auto decoded = decode_fingerprint_db(mutated, catalog);
    if (!decoded.has_value()) continue;  // rejected: the common case
    // Accepted: the flip must have been byte-for-byte inconsequential.
    ASSERT_EQ(decoded->size(), db.size()) << "byte " << byte;
    for (std::size_t i = 0; i < db.size(); ++i) {
      EXPECT_EQ(decoded->get(i).name, db.get(i).name) << "byte " << byte;
      EXPECT_EQ(decoded->get(i).sequence, db.get(i).sequence)
          << "byte " << byte;
    }
  }
}

TEST(DbIo, GarbageTailFuzz) {
  // Random garbage appended past a valid image must be rejected (the
  // section lengths pin the exact payload size).
  const auto catalog = small_catalog();
  const auto data = encode_fingerprint_db(sample_db(), catalog);
  util::Rng rng(0x7A11F00Dull);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = data;
    const auto extra = 1 + rng.next_below(17);
    for (std::size_t i = 0; i < extra; ++i)
      mutated.push_back(static_cast<char>(rng.next_below(256)));
    EXPECT_FALSE(decode_fingerprint_db(mutated, catalog));
  }
}

TEST(DbIo, FileRoundTrip) {
  const std::string path = "/tmp/gretel_db_io_test.db";
  const auto catalog = small_catalog();
  ASSERT_TRUE(save_fingerprint_db(path, sample_db(), catalog));
  const auto loaded = load_fingerprint_db(path, catalog);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
  EXPECT_FALSE(load_fingerprint_db(path, catalog).has_value());
}

TEST(DbIo, SaveIsAtomicOverExistingFile) {
  // The save must replace a pre-existing (here: corrupt) database in one
  // atomic step and leave no temp-file residue behind.
  const std::string path = "/tmp/gretel_db_io_atomic_test.db";
  const auto catalog = small_catalog();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage, not a fingerprint db", f);
    std::fclose(f);
  }
  ASSERT_FALSE(load_fingerprint_db(path, catalog).has_value());

  ASSERT_TRUE(save_fingerprint_db(path, sample_db(), catalog));
  const auto loaded = load_fingerprint_db(path, catalog);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);

  // No .tmp sibling survives a successful save.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(DbIo, SaveFailureLeavesExistingFileIntact) {
  // An unwritable temp location (the parent directory does not exist)
  // fails the save up front — and cannot have clobbered anything.
  const auto catalog = small_catalog();
  EXPECT_FALSE(save_fingerprint_db("/tmp/gretel_no_such_dir/db.bin",
                                   sample_db(), catalog));
}

}  // namespace
}  // namespace gretel::core
