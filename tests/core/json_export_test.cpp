#include "gretel/json_export.h"

#include <gtest/gtest.h>

namespace gretel::core {
namespace {

using wire::ApiCatalog;
using wire::HttpMethod;
using wire::ServiceKind;

struct Fixture {
  ApiCatalog catalog;
  FingerprintDb db;
  Diagnosis diagnosis;

  Fixture() {
    const auto post =
        catalog.add_rest(ServiceKind::Neutron, HttpMethod::Post,
                         "/v2.0/ports.json");
    Fingerprint fp;
    fp.op = wire::OpTemplateId(0);
    fp.name = "vm-create";
    fp.sequence = {post};
    fp.state_sequence = {post};
    db.add(fp);

    diagnosis.fault.kind = FaultKind::Operational;
    diagnosis.fault.offending_api = post;
    diagnosis.fault.detected_at = util::SimTime(1'500'000'000);
    diagnosis.fault.theta = 1.0;
    diagnosis.fault.beta_final = 80;
    diagnosis.fault.candidates = 17;
    diagnosis.fault.matched_fingerprints = {0};
    diagnosis.fault.error_events.resize(2);

    Cause cause;
    cause.kind = CauseKind::SoftwareFailure;
    cause.node = wire::NodeId(4);
    cause.detail = "neutron-plugin-linuxbridge-agent";
    diagnosis.root_cause.causes.push_back(cause);
    diagnosis.root_cause.expanded_search = true;
  }
};

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonExport, ContainsExpectedFields) {
  const Fixture f;
  const auto json = to_json(f.diagnosis, f.catalog, f.db);
  EXPECT_NE(json.find("\"kind\": \"operational\""), std::string::npos);
  EXPECT_NE(json.find("POST neutron /v2.0/ports.json"), std::string::npos);
  EXPECT_NE(json.find("\"theta\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"beta_final\": 80"), std::string::npos);
  EXPECT_NE(json.find("\"candidates\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"vm-create\""), std::string::npos);
  EXPECT_NE(json.find("\"expanded_search\": true"), std::string::npos);
  EXPECT_NE(json.find("neutron-plugin-linuxbridge-agent"),
            std::string::npos);
  EXPECT_NE(json.find("\"error_events\": 2"), std::string::npos);
  EXPECT_EQ(json.find("\"latency\""), std::string::npos)
      << "no latency block for operational faults";
}

TEST(JsonExport, PerformanceFaultIncludesLatency) {
  Fixture f;
  f.diagnosis.fault.kind = FaultKind::Performance;
  detect::LatencyAlarm alarm;
  alarm.api = f.diagnosis.fault.offending_api;
  alarm.alarm.baseline = 5.0;
  alarm.alarm.magnitude = 50.0;
  alarm.alarm.direction = detect::ShiftDirection::Up;
  f.diagnosis.fault.latency = alarm;

  const auto json = to_json(f.diagnosis, f.catalog, f.db);
  EXPECT_NE(json.find("\"kind\": \"performance\""), std::string::npos);
  EXPECT_NE(json.find("\"baseline_ms\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"magnitude_ms\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"direction\": \"up\""), std::string::npos);
}

TEST(JsonExport, HealthyMonitoringOmitsDegradationFields) {
  // The monitoring-evidence vocabulary is emitted only when degraded, so
  // documents from a healthy plane stay byte-identical to the legacy
  // format.
  const Fixture f;
  const auto json = to_json(f.diagnosis, f.catalog, f.db);
  EXPECT_EQ(json.find("monitoring_degraded"), std::string::npos);
  EXPECT_EQ(json.find("evidence_gaps"), std::string::npos);
  EXPECT_EQ(json.find("stale_series"), std::string::npos);
  EXPECT_EQ(json.find("probe_time_ms"), std::string::npos);
  EXPECT_EQ(json.find("\"evidence\""), std::string::npos);
  EXPECT_EQ(json.find("\"confidence\""), std::string::npos);
}

TEST(JsonExport, GoldenDegradedDocument) {
  Fixture f;
  auto& rc = f.diagnosis.root_cause;
  rc.causes[0].evidence = monitor::EvidenceStatus::Suspected;
  rc.causes[0].confidence = 0.5;
  rc.monitoring_degraded = true;
  rc.stale_series = 3;
  rc.probe_time_ms = 421.5;
  rc.evidence_gaps.push_back(
      {wire::NodeId(2), "mysqld", monitor::EvidenceStatus::Unknown});
  rc.evidence_gaps.push_back(
      {wire::NodeId(5), "metric:cpu", monitor::EvidenceStatus::Stale});

  const auto json = to_json(f.diagnosis, f.catalog, f.db);
  const std::string expected =
      "{\"kind\": \"operational\", "
      "\"offending_api\": \"POST neutron /v2.0/ports.json\", "
      "\"detected_at_s\": 1.5, \"theta\": 1, \"beta_final\": 80, "
      "\"candidates\": 17, \"matched_operations\": [\"vm-create\"], "
      "\"error_events\": 2, \"window_losses\": 0, "
      "\"degraded_confidence\": false, "
      "\"root_cause\": {\"expanded_search\": true, \"degraded\": false, "
      "\"monitoring_degraded\": true, \"stale_series\": 3, "
      "\"probe_time_ms\": 421.5, \"evidence_gaps\": ["
      "{\"node\": 2, \"dependency\": \"mysqld\", \"status\": \"unknown\"}, "
      "{\"node\": 5, \"dependency\": \"metric:cpu\", \"status\": \"stale\"}"
      "], \"causes\": [{\"node\": 4, \"kind\": \"software\", "
      "\"detail\": \"neutron-plugin-linuxbridge-agent\", "
      "\"evidence\": \"suspected\", \"confidence\": 0.5}]}}";
  EXPECT_EQ(json, expected);
}

TEST(JsonExport, ArrayForm) {
  const Fixture f;
  const std::vector<Diagnosis> diagnoses{f.diagnosis, f.diagnosis};
  const auto json = to_json(diagnoses, f.catalog, f.db);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Two top-level objects (each starts with the fault-kind field; nested
  // cause objects start with "node").
  std::size_t count = 0;
  for (std::size_t pos = json.find("{\"kind\""); pos != std::string::npos;
       pos = json.find("{\"kind\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(JsonExport, EmptyArray) {
  const Fixture f;
  EXPECT_EQ(to_json(std::span<const Diagnosis>{}, f.catalog, f.db), "[]");
}

}  // namespace
}  // namespace gretel::core
