#include "gretel/window.h"

#include <gtest/gtest.h>

#include "gretel/config.h"

namespace gretel::core {
namespace {

wire::Event event_with(std::uint16_t api) {
  wire::Event ev;
  ev.api = wire::ApiId(api);
  return ev;
}

TEST(GretelConfig, AlphaFormulaPaperValues) {
  // §7: FPmax = 384, Prate = 150 pps, t = 1 s -> α = 2*max(384,150) = 768.
  GretelConfig config;
  config.fp_max = 384;
  config.p_rate = 150.0;
  config.t_seconds = 1.0;
  EXPECT_EQ(config.alpha(), 768u);
  // β0 = c1·α ≈ 76 (the paper rounds to 80), δ = c2·α ≈ 30.
  EXPECT_EQ(config.beta0(), 76u);
  EXPECT_EQ(config.delta(), 30u);
}

TEST(GretelConfig, HighRateDominatesAlpha) {
  GretelConfig config;
  config.fp_max = 384;
  config.p_rate = 50000.0;
  config.t_seconds = 1.0;
  EXPECT_EQ(config.alpha(), 100000u);
}

TEST(GretelConfig, BetaDeltaNeverZero) {
  GretelConfig config;
  config.fp_max = 2;
  config.p_rate = 1.0;
  EXPECT_GE(config.beta0(), 1u);
  EXPECT_GE(config.delta(), 1u);
}

TEST(DualBuffer, FutureReadySemantics) {
  DualBuffer buf(8);  // α = 8
  for (int i = 0; i < 5; ++i) buf.push(event_with(0));
  // Center 2: future ready once end_seq > 2 + 4.
  EXPECT_FALSE(buf.future_ready(2));
  buf.push(event_with(0));
  buf.push(event_with(0));
  EXPECT_TRUE(buf.future_ready(2));
}

TEST(DualBuffer, FreezeCentersWindow) {
  DualBuffer buf(8);
  for (std::uint16_t i = 0; i < 20; ++i) buf.push(event_with(i));
  std::size_t center_index = 0;
  const auto snap = buf.freeze(12, &center_index);
  // [12-4, 12+4) = events 8..15.
  ASSERT_EQ(snap.size(), 8u);
  EXPECT_EQ(snap.front().api, wire::ApiId(8));
  EXPECT_EQ(snap.back().api, wire::ApiId(15));
  EXPECT_EQ(center_index, 4u);
  EXPECT_EQ(snap[center_index].api, wire::ApiId(12));
}

TEST(DualBuffer, FreezeClampsAtStreamStart) {
  DualBuffer buf(8);
  for (std::uint16_t i = 0; i < 6; ++i) buf.push(event_with(i));
  std::size_t center_index = 0;
  const auto snap = buf.freeze(1, &center_index);
  ASSERT_EQ(snap.size(), 5u);  // [0, 5)
  EXPECT_EQ(snap.front().api, wire::ApiId(0));
  EXPECT_EQ(center_index, 1u);
  EXPECT_EQ(snap[center_index].api, wire::ApiId(1));
}

TEST(DualBuffer, PastAvailableWithin2Alpha) {
  DualBuffer buf(8);  // ring capacity 16
  for (int i = 0; i < 30; ++i) buf.push(event_with(0));
  // first resident seq = 14; center 18 needs past from 14.
  EXPECT_TRUE(buf.past_available(18));
  EXPECT_FALSE(buf.past_available(10));
}

TEST(DualBuffer, FreezeTruncatedWhenPastEvicted) {
  DualBuffer buf(4);  // ring capacity 8
  for (std::uint16_t i = 0; i < 40; ++i) buf.push(event_with(i));
  // Residents: 32..39; center 33 wants [31, 35) but 31 is gone.
  std::size_t center_index = 0;
  const auto snap = buf.freeze(33, &center_index);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.front().api, wire::ApiId(32));
  EXPECT_EQ(center_index, 1u);
}

TEST(DualBuffer, NullCenterIndexAccepted) {
  DualBuffer buf(4);
  for (int i = 0; i < 8; ++i) buf.push(event_with(0));
  EXPECT_EQ(buf.freeze(4, nullptr).size(), 4u);
}

TEST(DualBuffer, StaleFreezeReturnsEmptyInsteadOfWrapping) {
  DualBuffer buf(4);  // ring capacity 8
  for (std::uint16_t i = 0; i < 100; ++i) buf.push(event_with(i));
  // Residents: 92..99.  Center 10 was evicted long ago; `center - first`
  // would wrap to a huge index without the clamp.
  std::size_t center_index = 123;
  const auto snap = buf.freeze(10, &center_index);
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(center_index, 0u);
  EXPECT_EQ(buf.stale_freezes(), 1u);

  // A resident center still freezes normally and is not counted.
  EXPECT_FALSE(buf.freeze(95, &center_index).empty());
  EXPECT_EQ(buf.stale_freezes(), 1u);

  buf.freeze(0, nullptr);
  EXPECT_EQ(buf.stale_freezes(), 2u);
}

// Property: for any α and stream length, the frozen window contains at most
// α events and always includes the center (when resident).
class DualBufferProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DualBufferProperty, WindowBoundsInvariant) {
  const auto [alpha, n] = GetParam();
  DualBuffer buf(static_cast<std::size_t>(alpha));
  for (std::uint16_t i = 0; i < n; ++i) buf.push(event_with(i));
  for (std::uint64_t center = 0; center < static_cast<std::uint64_t>(n);
       ++center) {
    std::size_t ci = 0;
    const auto snap = buf.freeze(center, &ci);
    EXPECT_LE(snap.size(), static_cast<std::size_t>(alpha));
    if (!snap.empty() && ci < snap.size()) {
      EXPECT_EQ(snap[ci].api, wire::ApiId(static_cast<std::uint16_t>(center)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DualBufferProperty,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(1, 7, 16, 64)));

}  // namespace
}  // namespace gretel::core
