#include "gretel/op_detector.h"

#include <gtest/gtest.h>

namespace gretel::core {
namespace {

using wire::ApiCatalog;
using wire::ApiId;
using wire::Direction;
using wire::Event;
using wire::HttpMethod;
using wire::ServiceKind;

// Catalog with GETs 0..5, POSTs 6..11, RPCs 12..13.
class OpDetectorTest : public ::testing::Test {
 protected:
  OpDetectorTest() {
    for (int i = 0; i < 6; ++i) {
      catalog_.add_rest(ServiceKind::Nova, HttpMethod::Get,
                        "/g" + std::to_string(i));
    }
    for (int i = 0; i < 6; ++i) {
      catalog_.add_rest(ServiceKind::Nova, HttpMethod::Post,
                        "/p" + std::to_string(i));
    }
    catalog_.add_rpc(ServiceKind::NovaCompute, "nova-compute", "r0");
    catalog_.add_rpc(ServiceKind::NovaCompute, "nova-compute", "r1");
  }

  Fingerprint make_fp(std::uint32_t op, std::initializer_list<int> seq) {
    Fingerprint fp;
    fp.op = wire::OpTemplateId(op);
    fp.name = "op-" + std::to_string(op);
    for (int x : seq) {
      fp.sequence.emplace_back(static_cast<std::uint16_t>(x));
      if (catalog_.get(fp.sequence.back()).state_change())
        fp.state_sequence.push_back(fp.sequence.back());
    }
    return fp;
  }

  // Builds a window of request events from api ids; every event a request.
  static std::vector<Event> window_of(std::initializer_list<int> apis) {
    std::vector<Event> out;
    std::uint64_t seq = 0;
    for (int a : apis) {
      Event ev;
      ev.seq = seq++;
      ev.api = ApiId(static_cast<std::uint16_t>(a));
      ev.dir = Direction::Request;
      out.push_back(ev);
    }
    return out;
  }

  GretelConfig tiny_config() {
    GretelConfig config;
    config.fp_max = 8;  // α = 16
    config.p_rate = 1.0;
    config.match_rpc = true;
    return config;
  }

  ApiCatalog catalog_;
};

TEST_F(OpDetectorTest, ThetaFormula) {
  FingerprintDb db;
  for (std::uint32_t i = 0; i < 11; ++i) db.add(make_fp(i, {6}));
  const OperationDetector det(&db, &catalog_, tiny_config());
  EXPECT_DOUBLE_EQ(det.theta(1), 1.0);   // single match: perfect
  EXPECT_DOUBLE_EQ(det.theta(11), 0.0);  // everything matched: useless
  EXPECT_DOUBLE_EQ(det.theta(6), 0.5);
  EXPECT_DOUBLE_EQ(det.theta(0), 0.0);   // no match: no information
}

TEST_F(OpDetectorTest, SingleCandidateExactMatch) {
  FingerprintDb db;
  const auto idx = db.add(make_fp(0, {6, 0, 7, 1}));  // P G P G
  const OperationDetector det(&db, &catalog_, tiny_config());

  const auto window = window_of({6, 0, 7, 1});
  const auto result = det.detect(window, 2, ApiId(7), /*truncate=*/true);
  ASSERT_EQ(result.matched.size(), 1u);
  EXPECT_EQ(result.matched[0], idx);
  EXPECT_DOUBLE_EQ(result.theta, 1.0);
  EXPECT_EQ(result.candidates, 1u);
}

TEST_F(OpDetectorTest, NoCandidatesForUnknownApi) {
  FingerprintDb db;
  db.add(make_fp(0, {6, 7}));
  const OperationDetector det(&db, &catalog_, tiny_config());
  const auto window = window_of({6, 7});
  const auto result = det.detect(window, 1, ApiId(9), true);
  EXPECT_TRUE(result.matched.empty());
  EXPECT_EQ(result.candidates, 0u);
  EXPECT_DOUBLE_EQ(result.theta, 0.0);
}

TEST_F(OpDetectorTest, TruncationIgnoresStepsAfterFault) {
  // Fingerprint P6 P7 P8: the operation aborted at P7, so P8 never shows.
  FingerprintDb db;
  const auto idx = db.add(make_fp(0, {6, 7, 8}));
  const OperationDetector det(&db, &catalog_, tiny_config());
  const auto window = window_of({6, 7});
  const auto result = det.detect(window, 1, ApiId(7), /*truncate=*/true);
  ASSERT_EQ(result.matched.size(), 1u);
  EXPECT_EQ(result.matched[0], idx);
}

TEST_F(OpDetectorTest, WithoutTruncationAbortedOpDoesNotMatch) {
  FingerprintDb db;
  db.add(make_fp(0, {6, 7, 8}));
  const OperationDetector det(&db, &catalog_, tiny_config());
  const auto window = window_of({6, 7});
  const auto result = det.detect(window, 1, ApiId(7), /*truncate=*/false);
  EXPECT_TRUE(result.matched.empty());
}

TEST_F(OpDetectorTest, InterleavedForeignSymbolsTolerated) {
  // Fig. 4: E..F preserved despite interleavings and a missing optional A.
  FingerprintDb db;
  const auto idx = db.add(make_fp(0, {0, 6, 1, 7, 2}));  // G P G P G
  db.add(make_fp(1, {8, 9}));
  const OperationDetector det(&db, &catalog_, tiny_config());

  const auto window = window_of({6, 3, 8, 1, 9, 7, 4});
  const auto result = det.detect(window, 5, ApiId(7), true);
  ASSERT_EQ(result.matched.size(), 1u);
  EXPECT_EQ(result.matched[0], idx);
}

TEST_F(OpDetectorTest, RpcPruningStillMatches) {
  auto config = tiny_config();
  config.match_rpc = false;
  FingerprintDb db;
  const auto idx = db.add(make_fp(0, {6, 12, 7}));  // P RPC P
  const OperationDetector det(&db, &catalog_, config);
  // Snapshot misses the RPC entirely (e.g. it rode a different tap).
  const auto window = window_of({6, 7});
  const auto result = det.detect(window, 1, ApiId(7), true);
  ASSERT_EQ(result.matched.size(), 1u);
  EXPECT_EQ(result.matched[0], idx);
}

TEST_F(OpDetectorTest, WithRpcMatchingRequiresRpcInSnapshot) {
  FingerprintDb db;
  db.add(make_fp(0, {6, 12, 7}));
  const OperationDetector det(&db, &catalog_, tiny_config());  // match_rpc
  const auto window = window_of({6, 7});
  const auto result = det.detect(window, 1, ApiId(7), true);
  EXPECT_TRUE(result.matched.empty());
}

TEST_F(OpDetectorTest, StopsWhenPrecisionWouldDrop) {
  // Two candidates contain P7.  Near the fault only op0 matches; the decoy's
  // literal P8 appears far away in the window.  Growth must stop before
  // admitting the decoy.
  FingerprintDb db;
  const auto good = db.add(make_fp(0, {6, 7}));
  db.add(make_fp(1, {8, 7}));

  GretelConfig config = tiny_config();
  config.fp_max = 16;  // α = 32, β0 = 3, δ = 1
  config.c1 = 0.1;
  config.c2 = 0.04;
  const OperationDetector det(&db, &catalog_, config);

  // Window: P8 far left ... P6 P7(fault) ... padding right.
  std::vector<int> apis{8, 0, 1, 2, 3, 4, 5, 0, 1, 2, 6, 7,
                        0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5};
  std::vector<Event> window;
  std::uint64_t seq = 0;
  for (int a : apis) {
    Event ev;
    ev.seq = seq++;
    ev.api = ApiId(static_cast<std::uint16_t>(a));
    ev.dir = Direction::Request;
    window.push_back(ev);
  }
  const auto result = det.detect(window, 11, ApiId(7), true);
  ASSERT_EQ(result.matched.size(), 1u);
  EXPECT_EQ(result.matched[0], good);
  EXPECT_DOUBLE_EQ(result.theta, 1.0);
  EXPECT_LT(result.beta_final, 11u);  // stopped before reaching the decoy
}

TEST_F(OpDetectorTest, GrowsUntilMatchFound) {
  // The only literal pair spans more than β0 messages: the detector must
  // keep growing past empty iterations instead of stopping at n=0.
  FingerprintDb db;
  const auto idx = db.add(make_fp(0, {6, 7}));
  GretelConfig config = tiny_config();
  config.fp_max = 16;  // β0 = 3, δ = 1
  const OperationDetector det(&db, &catalog_, config);

  std::vector<int> apis;
  apis.push_back(6);
  for (int i = 0; i < 8; ++i) apis.push_back(i % 6);  // GET padding
  apis.push_back(7);
  const auto window = window_of({6, 0, 1, 2, 3, 4, 5, 0, 1, 7});
  (void)apis;
  const auto result = det.detect(window, 9, ApiId(7), true);
  ASSERT_EQ(result.matched.size(), 1u);
  EXPECT_EQ(result.matched[0], idx);
  EXPECT_GT(result.beta_final, 3u);
}

TEST_F(OpDetectorTest, ResponsesIgnoredInPattern) {
  FingerprintDb db;
  const auto idx = db.add(make_fp(0, {6, 7}));
  const OperationDetector det(&db, &catalog_, tiny_config());

  std::vector<Event> window = window_of({6, 7});
  Event resp;
  resp.api = ApiId(8);  // a response for another op's POST
  resp.dir = Direction::Response;
  resp.status = 200;
  window.insert(window.begin() + 1, resp);
  const auto result = det.detect(window, 2, ApiId(7), true);
  ASSERT_EQ(result.matched.size(), 1u);
  EXPECT_EQ(result.matched[0], idx);
}

TEST_F(OpDetectorTest, DegenerateTruncationAnchorsOnOffendingApi) {
  // Offending API is the leading GET: the truncated prefix has no state
  // change, so the detector anchors on the offending API itself.
  FingerprintDb db;
  const auto idx = db.add(make_fp(0, {0, 6, 7}));
  const OperationDetector det(&db, &catalog_, tiny_config());
  const auto window = window_of({0, 1, 2});
  const auto result = det.detect(window, 0, ApiId(0), true);
  ASSERT_EQ(result.matched.size(), 1u);
  EXPECT_EQ(result.matched[0], idx);
}

}  // namespace
}  // namespace gretel::core
