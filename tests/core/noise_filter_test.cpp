#include "gretel/noise_filter.h"

#include <gtest/gtest.h>

namespace gretel::core {
namespace {

using wire::ApiCatalog;
using wire::ApiId;
using wire::HttpMethod;
using wire::ServiceKind;

class NoiseFilterTest : public ::testing::Test {
 protected:
  NoiseFilterTest() {
    keystone_auth_ = catalog_.add_rest(ServiceKind::Keystone,
                                       HttpMethod::Post, "/v3/auth/tokens");
    nova_get_ = catalog_.add_rest(ServiceKind::Nova, HttpMethod::Get,
                                  "/v2.1/servers/<ID>");
    nova_post_ = catalog_.add_rest(ServiceKind::Nova, HttpMethod::Post,
                                   "/v2.1/servers");
    heartbeat_ = catalog_.add_rpc(ServiceKind::Nova, "nova", "report_state");
    rpc_build_ = catalog_.add_rpc(ServiceKind::NovaCompute, "nova-compute",
                                  "build_and_run_instance");
  }

  ApiCatalog catalog_;
  ApiId keystone_auth_, nova_get_, nova_post_, heartbeat_, rpc_build_;
};

TEST_F(NoiseFilterTest, KeystoneApisAreNoise) {
  NoiseFilter filter(&catalog_);
  EXPECT_TRUE(filter.is_noise_api(keystone_auth_));
  EXPECT_FALSE(filter.is_noise_api(nova_get_));
  EXPECT_FALSE(filter.is_noise_api(nova_post_));
}

TEST_F(NoiseFilterTest, HeartbeatRpcsAreNoise) {
  NoiseFilter filter(&catalog_);
  EXPECT_TRUE(filter.is_noise_api(heartbeat_));
  EXPECT_FALSE(filter.is_noise_api(rpc_build_));
}

TEST_F(NoiseFilterTest, CustomHeartbeatName) {
  NoiseFilter filter(&catalog_);
  const auto custom =
      catalog_.add_rpc(ServiceKind::Cinder, "cinder", "publish_capacity");
  EXPECT_FALSE(filter.is_noise_api(custom));
  filter.add_heartbeat_rpc("publish_capacity");
  EXPECT_TRUE(filter.is_noise_api(custom));
}

TEST_F(NoiseFilterTest, FilterDropsNoiseApis) {
  NoiseFilter filter(&catalog_);
  const auto out = filter.filter(
      {keystone_auth_, nova_post_, heartbeat_, nova_get_, keystone_auth_});
  EXPECT_EQ(out, (std::vector<ApiId>{nova_post_, nova_get_}));
}

TEST_F(NoiseFilterTest, CollapsesConsecutiveIdempotentRepeats) {
  NoiseFilter filter(&catalog_);
  const auto out =
      filter.filter({nova_get_, nova_get_, nova_get_, nova_post_, nova_get_});
  EXPECT_EQ(out, (std::vector<ApiId>{nova_get_, nova_post_, nova_get_}));
}

TEST_F(NoiseFilterTest, StateChangeRepeatsKept) {
  // Two consecutive POSTs are two state changes, not idempotent chatter.
  NoiseFilter filter(&catalog_);
  const auto out = filter.filter({nova_post_, nova_post_});
  EXPECT_EQ(out, (std::vector<ApiId>{nova_post_, nova_post_}));
}

TEST_F(NoiseFilterTest, RpcRepeatsKept) {
  NoiseFilter filter(&catalog_);
  const auto out = filter.filter({rpc_build_, rpc_build_});
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(NoiseFilterTest, NoiseRemovalCanCreateAdjacency) {
  // GET, keystone, GET -> the keystone drop makes the GETs adjacent, and
  // the repeat-collapse then merges them (matches the paper's intent:
  // repeats of an idempotent action on one URI don't segregate operations).
  NoiseFilter filter(&catalog_);
  const auto out = filter.filter({nova_get_, keystone_auth_, nova_get_});
  EXPECT_EQ(out, (std::vector<ApiId>{nova_get_}));
}

TEST_F(NoiseFilterTest, FilterIdempotent) {
  NoiseFilter filter(&catalog_);
  const std::vector<ApiId> trace{keystone_auth_, nova_get_,  nova_get_,
                                 nova_post_,     heartbeat_, nova_get_};
  const auto once = filter.filter(trace);
  EXPECT_EQ(filter.filter(once), once);
}

TEST_F(NoiseFilterTest, EmptyTrace) {
  NoiseFilter filter(&catalog_);
  EXPECT_TRUE(filter.filter({}).empty());
}

TEST_F(NoiseFilterTest, FilterEventsUsesRequestsOnly) {
  NoiseFilter filter(&catalog_);
  wire::Event req;
  req.api = nova_post_;
  req.dir = wire::Direction::Request;
  wire::Event resp = req;
  resp.dir = wire::Direction::Response;
  const auto out = filter.filter_events({req, resp, req, resp});
  EXPECT_EQ(out, (std::vector<ApiId>{nova_post_, nova_post_}));
}

}  // namespace
}  // namespace gretel::core
