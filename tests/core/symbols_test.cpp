#include "gretel/symbols.h"

#include <gtest/gtest.h>

namespace gretel::core {
namespace {

wire::ApiCatalog three_api_catalog() {
  wire::ApiCatalog cat;
  cat.add_rest(wire::ServiceKind::Nova, wire::HttpMethod::Get, "/a");
  cat.add_rest(wire::ServiceKind::Nova, wire::HttpMethod::Post, "/b");
  cat.add_rpc(wire::ServiceKind::Neutron, "neutron", "m");
  return cat;
}

TEST(SymbolTable, DenseAssignmentFromCjkBlock) {
  const auto cat = three_api_catalog();
  const SymbolTable symbols(cat);
  EXPECT_EQ(symbols.size(), 3u);
  EXPECT_EQ(symbols.symbol(wire::ApiId(0)), SymbolTable::kFirstSymbol);
  EXPECT_EQ(symbols.symbol(wire::ApiId(2)), SymbolTable::kFirstSymbol + 2);
}

TEST(SymbolTable, InverseMapping) {
  const auto cat = three_api_catalog();
  const SymbolTable symbols(cat);
  for (std::uint16_t i = 0; i < 3; ++i) {
    EXPECT_EQ(symbols.api(symbols.symbol(wire::ApiId(i))), wire::ApiId(i));
  }
}

TEST(SymbolTable, OutOfRangeSymbolInvalid) {
  const auto cat = three_api_catalog();
  const SymbolTable symbols(cat);
  EXPECT_FALSE(symbols.api(SymbolTable::kFirstSymbol - 1).valid());
  EXPECT_FALSE(symbols.api(SymbolTable::kFirstSymbol + 3).valid());
  EXPECT_FALSE(symbols.api(U'x').valid());
}

TEST(SymbolTable, EncodeSequence) {
  const auto cat = three_api_catalog();
  const SymbolTable symbols(cat);
  const auto encoded =
      symbols.encode({wire::ApiId(2), wire::ApiId(0), wire::ApiId(2)});
  ASSERT_EQ(encoded.size(), 3u);
  EXPECT_EQ(encoded[0], SymbolTable::kFirstSymbol + 2);
  EXPECT_EQ(encoded[1], SymbolTable::kFirstSymbol);
  EXPECT_EQ(encoded[2], SymbolTable::kFirstSymbol + 2);
}

TEST(SymbolTable, SupportsFullOpenStackApiSurface) {
  // 643 public APIs must all get distinct printable symbols.
  wire::ApiCatalog cat;
  for (int i = 0; i < 643; ++i) {
    cat.add_rest(wire::ServiceKind::Nova, wire::HttpMethod::Get,
                 "/api/" + std::to_string(i));
  }
  const SymbolTable symbols(cat);
  EXPECT_EQ(symbols.size(), 643u);
  EXPECT_EQ(symbols.api(symbols.symbol(wire::ApiId(642))), wire::ApiId(642));
}

}  // namespace
}  // namespace gretel::core
