// GretelConfig::validate(): the defaults pass, each nonsensical knob
// produces its own itemized error (the tool CLIs print these and refuse
// to start), and errors accumulate rather than short-circuit.
#include "gretel/config.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace gretel::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// True if some error message contains `needle`.
bool has_error(const GretelConfig& cfg, std::string_view needle) {
  for (const auto& e : cfg.validate())
    if (e.find(needle) != std::string::npos) return true;
  return false;
}

TEST(ConfigValidate, DefaultsAreValid) {
  GretelConfig cfg;
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(ConfigValidate, EachBadKnobIsItemized) {
  {
    GretelConfig c;
    c.fp_max = 0;
    EXPECT_TRUE(has_error(c, "fp_max"));
  }
  {
    GretelConfig c;
    c.p_rate = 0.0;
    EXPECT_TRUE(has_error(c, "p_rate"));
    c.p_rate = kNaN;
    EXPECT_TRUE(has_error(c, "p_rate"));
  }
  {
    GretelConfig c;
    c.t_seconds = -1.0;
    EXPECT_TRUE(has_error(c, "t_seconds"));
  }
  {
    GretelConfig c;
    c.evidence_ratio = 1.5;
    EXPECT_TRUE(has_error(c, "evidence_ratio"));
  }
  {
    GretelConfig c;
    c.num_shards = 0;
    EXPECT_TRUE(has_error(c, "num_shards"));
  }
  {
    GretelConfig c;
    c.stream_tick_ms = 0.0;
    EXPECT_TRUE(has_error(c, "stream_tick_ms"));
    c.stream_tick_ms = kInf;
    EXPECT_TRUE(has_error(c, "stream_tick_ms"));
  }
  {
    GretelConfig c;
    c.stream_source_ring = 0;
    EXPECT_TRUE(has_error(c, "stream_source_ring"));
  }
  {
    GretelConfig c;
    c.stream_max_report_delay_s = -0.5;
    EXPECT_TRUE(has_error(c, "stream_max_report_delay_s"));
  }
  {
    GretelConfig c;
    c.checkpoint_interval_s = 0.0;
    EXPECT_TRUE(has_error(c, "checkpoint_interval_s"));
    c.checkpoint_interval_s = kNaN;
    EXPECT_TRUE(has_error(c, "checkpoint_interval_s"));
  }
  {
    GretelConfig c;
    c.checkpoint_keep = 0;
    EXPECT_TRUE(has_error(c, "checkpoint_keep"));
  }
  {
    GretelConfig c;
    c.journal_segment_records = 0;
    EXPECT_TRUE(has_error(c, "journal_segment_records"));
  }
}

TEST(ConfigValidate, SubTickCheckpointCadenceIsRejected) {
  // A cadence shorter than one tick can never fire: the checkpoint clock
  // only advances at tick boundaries.
  GretelConfig c;
  c.stream_tick_ms = 500.0;
  c.checkpoint_interval_s = 0.1;  // 100ms < one 500ms tick
  EXPECT_TRUE(has_error(c, "at least one stream tick"));
  c.checkpoint_interval_s = 0.5;  // exactly one tick: allowed
  EXPECT_TRUE(c.validate().empty());
}

TEST(ConfigValidate, ErrorsAccumulateAcrossKnobs) {
  GretelConfig c;
  c.fp_max = 0;
  c.stream_tick_ms = -1.0;
  c.checkpoint_keep = 0;
  c.journal_segment_records = 0;
  EXPECT_GE(c.validate().size(), 4u);
}

}  // namespace
}  // namespace gretel::core
