#include "detect/zscore.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gretel::detect {
namespace {

ZScoreParams fast_params() {
  ZScoreParams p;
  p.window = 32;
  p.min_samples = 8;
  p.k_sigma = 5.0;
  p.sigma_floor = 0.01;
  return p;
}

TEST(ZScore, QuietOnStationary) {
  ZScoreDetector d(fast_params());
  util::Rng rng(1);
  int alarms = 0;
  for (int i = 0; i < 500; ++i) {
    alarms += d.observe(i, rng.next_gaussian(10.0, 0.5)).has_value();
  }
  EXPECT_EQ(alarms, 0);
}

TEST(ZScore, AlarmsOnSpike) {
  ZScoreDetector d(fast_params());
  for (int i = 0; i < 20; ++i) d.observe(i, 10.0);
  const auto alarm = d.observe(20, 30.0);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->direction, ShiftDirection::Up);
  EXPECT_NEAR(alarm->baseline, 10.0, 0.1);
}

TEST(ZScore, AlarmsOnNegativeSpike) {
  ZScoreDetector d(fast_params());
  for (int i = 0; i < 20; ++i) d.observe(i, 10.0 + (i % 2) * 0.1);
  const auto alarm = d.observe(20, 1.0);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->direction, ShiftDirection::Down);
}

TEST(ZScore, KeepsAlarmingThroughSustainedShift) {
  // The contrast to LS: z-score does not adapt quickly, so a sustained
  // shift keeps alarming until the window fills with the new level — this
  // is exactly why the paper prefers the level-shift detector.
  ZScoreDetector d(fast_params());
  for (int i = 0; i < 32; ++i) d.observe(i, 10.0 + (i % 2) * 0.1);
  int alarms = 0;
  for (int i = 0; i < 8; ++i) {
    alarms += d.observe(32 + i, 30.0).has_value();
  }
  EXPECT_GE(alarms, 2);
}

TEST(ZScore, SilentBeforeMinSamples) {
  ZScoreDetector d(fast_params());
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(d.observe(i, i * 100.0).has_value());
  }
}

TEST(ZScore, ResetClearsWindow) {
  ZScoreDetector d(fast_params());
  for (int i = 0; i < 20; ++i) d.observe(i, 10.0);
  d.reset();
  EXPECT_FALSE(d.observe(21, 500.0).has_value());  // not armed anymore
}

TEST(ZScore, FactoryName) {
  EXPECT_EQ(make_zscore()->name(), "z-score");
}

}  // namespace
}  // namespace gretel::detect
