#include "detect/ewma.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gretel::detect {
namespace {

EwmaParams fast_params() {
  EwmaParams p;
  p.alpha = 0.1;
  p.warmup = 10;
  p.k_sigma = 5.0;
  p.sigma_floor = 0.05;
  p.confirm = 3;
  return p;
}

int feed_noise(OutlierDetector& d, double level, double sigma, int n,
               std::uint64_t seed, double t0 = 0.0) {
  util::Rng rng(seed);
  int alarms = 0;
  for (int i = 0; i < n; ++i) {
    alarms += d.observe(t0 + i, rng.next_gaussian(level, sigma)).has_value();
  }
  return alarms;
}

TEST(Ewma, QuietOnStationary) {
  EwmaDetector d(fast_params());
  EXPECT_EQ(feed_noise(d, 10.0, 0.4, 600, 1), 0);
}

TEST(Ewma, SilentDuringWarmup) {
  EwmaDetector d(fast_params());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(d.observe(i, i % 2 ? 100.0 : 0.0).has_value());
  }
}

TEST(Ewma, AlarmsOnSustainedShiftAfterConfirm) {
  EwmaDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 100, 2);
  EXPECT_FALSE(d.observe(100, 30.0).has_value());
  EXPECT_FALSE(d.observe(101, 30.0).has_value());
  const auto alarm = d.observe(102, 30.0);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->direction, ShiftDirection::Up);
  EXPECT_GT(alarm->magnitude, 10.0);
}

TEST(Ewma, SingleSpikeRejected) {
  EwmaDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 100, 3);
  EXPECT_FALSE(d.observe(100, 60.0).has_value());
  EXPECT_EQ(feed_noise(d, 10.0, 0.3, 100, 4, 101.0), 0);
}

TEST(Ewma, AdaptsToNewLevelEventually) {
  EwmaDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 100, 5);
  // Sustained shift: first confirmation alarms, then the EWMA re-centers
  // and the new level becomes quiet.
  int alarms = 0;
  for (int i = 0; i < 200; ++i) {
    alarms += d.observe(100 + i, 30.0).has_value();
  }
  EXPECT_GE(alarms, 1);
  EXPECT_NEAR(d.mean(), 30.0, 1.0);
  EXPECT_EQ(feed_noise(d, 30.0, 0.3, 100, 6, 300.0), 0);
}

TEST(Ewma, DownShiftDetected) {
  EwmaDetector d(fast_params());
  feed_noise(d, 50.0, 0.5, 100, 7);
  d.observe(100, 10.0);
  d.observe(101, 10.0);
  const auto alarm = d.observe(102, 10.0);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->direction, ShiftDirection::Down);
}

TEST(Ewma, ResetClears) {
  EwmaDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 50, 8);
  d.reset();
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_FALSE(d.observe(0, 100.0).has_value());  // warming up again
}

TEST(Ewma, FactoryName) { EXPECT_EQ(make_ewma()->name(), "ewma"); }

}  // namespace
}  // namespace gretel::detect
