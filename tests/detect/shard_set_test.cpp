#include "detect/shard_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "detect/level_shift.h"

namespace gretel::detect {
namespace {

using util::SimDuration;
using util::SimTime;
using wire::ApiId;
using wire::ApiKind;
using wire::Direction;
using wire::Event;

Event rest_event(ApiId api, Direction dir, std::uint32_t conn, SimTime ts) {
  Event ev;
  ev.api = api;
  ev.kind = ApiKind::Rest;
  ev.dir = dir;
  ev.conn_id = conn;
  ev.ts = ts;
  ev.status = dir == Direction::Response ? 200 : 0;
  return ev;
}

LatencyTracker::Factory fast_factory() {
  return [] {
    LevelShiftParams p;
    p.min_baseline = 8;
    p.confirm = 3;
    p.sigma_floor = 0.1;
    p.cooldown_seconds = 0.0;
    return std::make_unique<LevelShiftDetector>(p);
  };
}

// A multi-API stream of request/response exchanges: `spike_api` shifts from
// 10 ms to 60 ms halfway through, the others stay flat.
std::vector<Event> make_stream(const std::vector<ApiId>& apis,
                               ApiId spike_api) {
  std::vector<Event> stream;
  std::uint32_t conn = 1;
  for (int i = 0; i < 80; ++i) {
    for (const auto api : apis) {
      const double latency_ms =
          (api == spike_api && i >= 40) ? 60.0 : 10.0 + (i % 3) * 0.3;
      const auto t0 = SimTime::epoch() + SimDuration::seconds(i);
      stream.push_back(rest_event(api, Direction::Request, conn, t0));
      stream.push_back(rest_event(
          api, Direction::Response, conn,
          t0 + SimDuration::nanos(
                   static_cast<std::int64_t>(latency_ms * 1e6))));
      ++conn;
    }
  }
  return stream;
}

TEST(LatencyShardSet, ShardOfIsStableAndInRange) {
  for (std::size_t shards : {1u, 2u, 4u, 7u}) {
    for (std::uint32_t v = 0; v < 100; ++v) {
      const auto s = LatencyShardSet::shard_of(ApiId(v), shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, LatencyShardSet::shard_of(ApiId(v), shards));
    }
  }
}

TEST(LatencyShardSet, ZeroShardsClampedToOne) {
  LatencyShardSet set(0);
  EXPECT_EQ(set.num_shards(), 1u);
}

TEST(LatencyShardSet, OneShardBehavesLikePlainTracker) {
  const std::vector<ApiId> apis = {ApiId(1), ApiId(2), ApiId(3)};
  const auto stream = make_stream(apis, ApiId(2));

  LatencyTracker plain(fast_factory());
  LatencyShardSet set(1, fast_factory());
  std::vector<LatencyAlarm> plain_alarms, set_alarms;
  for (const auto& ev : stream) {
    if (auto a = plain.observe(ev)) plain_alarms.push_back(*a);
    if (auto a = set.observe(ev)) set_alarms.push_back(*a);
  }
  ASSERT_EQ(plain_alarms.size(), set_alarms.size());
  for (std::size_t i = 0; i < plain_alarms.size(); ++i) {
    EXPECT_EQ(plain_alarms[i].api, set_alarms[i].api);
    EXPECT_EQ(plain_alarms[i].when, set_alarms[i].when);
  }
  EXPECT_EQ(plain.samples(), set.samples());
}

// The determinism cornerstone: per-API series, sample counts, and the alarm
// stream are identical for any shard count.
TEST(LatencyShardSet, AlarmsInvariantUnderShardCount) {
  const std::vector<ApiId> apis = {ApiId(1), ApiId(2),  ApiId(3),
                                   ApiId(5), ApiId(8),  ApiId(13),
                                   ApiId(21), ApiId(34)};
  const ApiId spike(8);
  const auto stream = make_stream(apis, spike);

  std::vector<std::vector<LatencyAlarm>> alarms_by_config;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    LatencyShardSet set(shards, fast_factory());
    auto& alarms = alarms_by_config.emplace_back();
    for (const auto& ev : stream) {
      if (auto a = set.observe(ev)) alarms.push_back(*a);
    }
    // Per-API series identical regardless of partitioning.
    for (const auto api : apis) {
      const auto* series = set.series(api);
      ASSERT_NE(series, nullptr);
      EXPECT_EQ(series->size(), 80u);
    }
    EXPECT_EQ(set.samples(), stream.size() / 2);
    EXPECT_EQ(set.pending(), 0u);
  }

  const auto& reference = alarms_by_config.front();
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference.front().api, spike);
  for (std::size_t c = 1; c < alarms_by_config.size(); ++c) {
    ASSERT_EQ(alarms_by_config[c].size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(alarms_by_config[c][i].api, reference[i].api);
      EXPECT_EQ(alarms_by_config[c][i].when, reference[i].when);
      EXPECT_EQ(alarms_by_config[c][i].alarm.t_seconds,
                reference[i].alarm.t_seconds);
      EXPECT_EQ(alarms_by_config[c][i].alarm.magnitude,
                reference[i].alarm.magnitude);
    }
  }
}

}  // namespace
}  // namespace gretel::detect
