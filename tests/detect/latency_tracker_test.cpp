#include "detect/latency_tracker.h"

#include <gtest/gtest.h>

#include "detect/level_shift.h"

namespace gretel::detect {
namespace {

using util::SimDuration;
using util::SimTime;
using wire::ApiId;
using wire::ApiKind;
using wire::Direction;
using wire::Event;

Event rest_event(ApiId api, Direction dir, std::uint32_t conn,
                 SimTime ts) {
  Event ev;
  ev.api = api;
  ev.kind = ApiKind::Rest;
  ev.dir = dir;
  ev.conn_id = conn;
  ev.ts = ts;
  ev.status = dir == Direction::Response ? 200 : 0;
  return ev;
}

Event rpc_event(ApiId api, Direction dir, std::uint64_t msg,
                SimTime ts) {
  Event ev;
  ev.api = api;
  ev.kind = ApiKind::Rpc;
  ev.dir = dir;
  ev.msg_id = msg;
  ev.ts = ts;
  ev.status = dir == Direction::Response ? 200 : 0;
  return ev;
}

LatencyTracker fast_tracker() {
  return LatencyTracker([] {
    LevelShiftParams p;
    p.min_baseline = 8;
    p.confirm = 3;
    p.sigma_floor = 0.1;
    p.cooldown_seconds = 0.0;
    return std::make_unique<LevelShiftDetector>(p);
  });
}

TEST(LatencyTracker, PairsRestByConnection) {
  auto tracker = fast_tracker();
  const ApiId api(1);
  tracker.observe(rest_event(api, Direction::Request, 7, SimTime(0)));
  tracker.observe(rest_event(api, Direction::Response, 7,
                             SimTime::epoch() + SimDuration::millis(12)));
  const auto* series = tracker.series(api);
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 1u);
  EXPECT_NEAR(series->points()[0].value, 12.0, 1e-9);
  EXPECT_EQ(tracker.pending(), 0u);
  EXPECT_EQ(tracker.samples(), 1u);
}

TEST(LatencyTracker, PairsRpcByMessageId) {
  auto tracker = fast_tracker();
  const ApiId api(2);
  tracker.observe(rpc_event(api, Direction::Request, 99, SimTime(0)));
  tracker.observe(rpc_event(api, Direction::Response, 99,
                            SimTime::epoch() + SimDuration::millis(30)));
  const auto* series = tracker.series(api);
  ASSERT_NE(series, nullptr);
  EXPECT_NEAR(series->points()[0].value, 30.0, 1e-9);
}

TEST(LatencyTracker, InterleavedConnectionsPairCorrectly) {
  auto tracker = fast_tracker();
  const ApiId api(3);
  tracker.observe(rest_event(api, Direction::Request, 1, SimTime(0)));
  tracker.observe(rest_event(
      api, Direction::Request, 2,
      SimTime::epoch() + SimDuration::millis(1)));
  tracker.observe(rest_event(
      api, Direction::Response, 2,
      SimTime::epoch() + SimDuration::millis(5)));
  tracker.observe(rest_event(
      api, Direction::Response, 1,
      SimTime::epoch() + SimDuration::millis(20)));
  const auto* series = tracker.series(api);
  ASSERT_EQ(series->size(), 2u);
  EXPECT_NEAR(series->points()[0].value, 4.0, 1e-9);   // conn 2
  EXPECT_NEAR(series->points()[1].value, 20.0, 1e-9);  // conn 1
}

TEST(LatencyTracker, OrphanResponseIgnored) {
  auto tracker = fast_tracker();
  EXPECT_FALSE(tracker
                   .observe(rest_event(ApiId(4), Direction::Response, 5,
                                       SimTime(0)))
                   .has_value());
  EXPECT_EQ(tracker.samples(), 0u);
}

TEST(LatencyTracker, UnansweredRequestStaysPending) {
  auto tracker = fast_tracker();
  tracker.observe(rest_event(ApiId(5), Direction::Request, 6, SimTime(0)));
  EXPECT_EQ(tracker.pending(), 1u);
}

TEST(LatencyTracker, SeriesSeparatedPerApi) {
  auto tracker = fast_tracker();
  tracker.observe(rest_event(ApiId(1), Direction::Request, 1, SimTime(0)));
  tracker.observe(rest_event(ApiId(1), Direction::Response, 1,
                             SimTime::epoch() + SimDuration::millis(5)));
  tracker.observe(rpc_event(ApiId(2), Direction::Request, 1, SimTime(0)));
  tracker.observe(rpc_event(ApiId(2), Direction::Response, 1,
                            SimTime::epoch() + SimDuration::millis(9)));
  EXPECT_EQ(tracker.series(ApiId(1))->size(), 1u);
  EXPECT_EQ(tracker.series(ApiId(2))->size(), 1u);
  EXPECT_EQ(tracker.series(ApiId(3)), nullptr);
}

TEST(LatencyTracker, AlarmOnSustainedLatencyShift) {
  auto tracker = fast_tracker();
  const ApiId api(6);
  std::uint32_t conn = 1;
  auto exchange = [&](double t_s, double latency_ms) {
    const auto t0 = SimTime::epoch() +
                    SimDuration::nanos(static_cast<std::int64_t>(t_s * 1e9));
    tracker.observe(rest_event(api, Direction::Request, conn, t0));
    return tracker.observe(rest_event(
        api, Direction::Response, conn++,
        t0 + SimDuration::nanos(
                 static_cast<std::int64_t>(latency_ms * 1e6))));
  };

  for (int i = 0; i < 40; ++i) {
    ASSERT_FALSE(exchange(i, 10.0 + (i % 3) * 0.3).has_value());
  }
  // 50 ms injected latency (the paper's tc experiment).
  std::optional<LatencyAlarm> alarm;
  for (int i = 0; i < 10 && !alarm; ++i) alarm = exchange(100 + i, 60.0);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->api, api);
  EXPECT_GT(alarm->alarm.magnitude, 30.0);
  EXPECT_EQ(alarm->alarm.direction, ShiftDirection::Up);
}

TEST(LatencyTracker, NegativeGapClampedNotPoisoned) {
  auto tracker = fast_tracker();
  const ApiId api(7);
  // Capture clock skew: the response's tap timestamp regressed behind the
  // request's.  The exchange is real — keep the sample, clamp the gap.
  tracker.observe(rest_event(api, Direction::Request, 1,
                             SimTime::epoch() + SimDuration::millis(10)));
  tracker.observe(rest_event(api, Direction::Response, 1,
                             SimTime::epoch() + SimDuration::millis(2)));
  const auto* series = tracker.series(api);
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 1u);
  EXPECT_NEAR(series->points()[0].value, 0.0, 1e-9);
  EXPECT_EQ(tracker.guard_stats().clamped_negative, 1u);
  EXPECT_EQ(tracker.samples(), 1u);
}

TEST(LatencyTracker, LateResponseRejectedAtPairingTime) {
  auto tracker = fast_tracker();
  tracker.set_orphan_timeout_seconds(1.0);
  const ApiId api(8);
  tracker.observe(rest_event(api, Direction::Request, 1, SimTime(0)));
  // The response limps in two seconds later: past the orphan deadline, so
  // the latency reflects the degraded tap, not the service.
  const auto alarm = tracker.observe(rest_event(
      api, Direction::Response, 1,
      SimTime::epoch() + SimDuration::seconds(2)));
  EXPECT_FALSE(alarm.has_value());
  EXPECT_EQ(tracker.samples(), 0u);
  EXPECT_EQ(tracker.series(api), nullptr);
  EXPECT_EQ(tracker.guard_stats().orphans_reaped, 1u);
  EXPECT_EQ(tracker.pending(), 0u);  // the pending slot is reclaimed either way
}

TEST(LatencyTracker, OnTimeResponseAdmittedUnderTimeout) {
  auto tracker = fast_tracker();
  tracker.set_orphan_timeout_seconds(1.0);
  const ApiId api(9);
  tracker.observe(rest_event(api, Direction::Request, 1, SimTime(0)));
  tracker.observe(rest_event(api, Direction::Response, 1,
                             SimTime::epoch() + SimDuration::millis(500)));
  EXPECT_EQ(tracker.samples(), 1u);
  EXPECT_EQ(tracker.guard_stats().orphans_reaped, 0u);
}

TEST(LatencyTracker, SweepReclaimsStalePendingRequests) {
  auto tracker = fast_tracker();
  tracker.set_orphan_timeout_seconds(0.5);
  const ApiId api(10);
  // One request whose response was lost by the tap...
  tracker.observe(rest_event(api, Direction::Request, 1, SimTime(0)));
  // ...followed by enough traffic (one sweep stride) much later.  The sweep
  // reclaims the stale slot; the recent requests stay pending.
  for (std::uint32_t i = 0; i < 63; ++i) {
    tracker.observe(rest_event(
        api, Direction::Request, 100 + i,
        SimTime::epoch() + SimDuration::seconds(10) +
            SimDuration::millis(i)));
  }
  EXPECT_EQ(tracker.guard_stats().orphans_reaped, 1u);
  EXPECT_EQ(tracker.pending(), 63u);
}

TEST(LatencyTracker, TimeoutZeroKeepsLegacyBehavior) {
  auto tracker = fast_tracker();  // timeout never armed
  const ApiId api(11);
  tracker.observe(rest_event(api, Direction::Request, 1, SimTime(0)));
  // Arbitrarily late responses still pair when the reaper is off.
  tracker.observe(rest_event(api, Direction::Response, 1,
                             SimTime::epoch() + SimDuration::seconds(600)));
  EXPECT_EQ(tracker.samples(), 1u);
  EXPECT_EQ(tracker.guard_stats().orphans_reaped, 0u);
}

}  // namespace
}  // namespace gretel::detect
