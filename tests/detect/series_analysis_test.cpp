#include "detect/series_analysis.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gretel::detect {
namespace {

util::TimeSeries flat_series(double level, double sigma, int n,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  util::TimeSeries ts;
  for (int i = 0; i < n; ++i) ts.add(i, rng.next_gaussian(level, sigma));
  return ts;
}

TEST(AnalyzeWindow, QuietSeriesNotAnomalous) {
  const auto ts = flat_series(10.0, 0.5, 100, 1);
  const auto v = analyze_window(ts, 40.0, 60.0);
  EXPECT_FALSE(v.anomalous);
  EXPECT_NEAR(v.window_level, 10.0, 0.5);
  EXPECT_NEAR(v.baseline_level, 10.0, 0.5);
}

TEST(AnalyzeWindow, DetectsSurgeInWindow) {
  auto ts = flat_series(10.0, 0.3, 40, 2);
  for (int i = 40; i < 60; ++i) ts.add(i, 80.0);
  for (int i = 60; i < 100; ++i) ts.add(i, 10.0);
  const auto v = analyze_window(ts, 40.0, 60.0);
  EXPECT_TRUE(v.anomalous);
  EXPECT_NEAR(v.window_level, 80.0, 1.0);
  EXPECT_NEAR(v.baseline_level, 10.0, 1.0);
}

TEST(AnalyzeWindow, SurgeOutsideWindowNotFlagged) {
  auto ts = flat_series(10.0, 0.3, 40, 3);
  for (int i = 40; i < 60; ++i) ts.add(i, 80.0);
  for (int i = 60; i < 100; ++i) ts.add(i, 10.0);
  // Analysis window over the *quiet* region: the surge elsewhere raises the
  // baseline MAD but the window median is unchanged.
  const auto v = analyze_window(ts, 70.0, 90.0);
  EXPECT_FALSE(v.anomalous);
}

TEST(AnalyzeWindow, EmptyWindowNotAnomalous) {
  const auto ts = flat_series(10.0, 0.3, 50, 4);
  EXPECT_FALSE(analyze_window(ts, 200.0, 300.0).anomalous);
}

TEST(AnalyzeWindow, TooFewBaselinePointsNotAnomalous) {
  util::TimeSeries ts;
  ts.add(0.0, 10.0);
  ts.add(1.0, 10.0);
  ts.add(5.0, 99.0);
  EXPECT_FALSE(analyze_window(ts, 4.0, 6.0).anomalous);
}

TEST(AnalyzeWindow, FlatSeriesWithTinyDriftNotFlagged) {
  // min_abs guard: a perfectly flat baseline has sigma ~ 0; a microscopic
  // offset must not alarm.
  util::TimeSeries ts;
  for (int i = 0; i < 50; ++i) ts.add(i, 5.0);
  for (int i = 50; i < 60; ++i) ts.add(i, 5.0 + 1e-12);
  for (int i = 60; i < 100; ++i) ts.add(i, 5.0);
  EXPECT_FALSE(analyze_window(ts, 50.0, 60.0, 5.0, 0.5).anomalous);
}

TEST(AnalyzeWindow, DropDetectedAsAnomalous) {
  auto ts = flat_series(1000.0, 5.0, 40, 5);
  for (int i = 40; i < 60; ++i) ts.add(i, 100.0);  // disk free collapsed
  for (int i = 60; i < 100; ++i) ts.add(i, 1000.0);
  const auto v = analyze_window(ts, 40.0, 60.0);
  EXPECT_TRUE(v.anomalous);
  EXPECT_LT(v.window_level, v.baseline_level);
}

TEST(AbsoluteRules, CpuPegged) {
  EXPECT_TRUE(
      absolute_rule_violation(net::ResourceKind::CpuPct, 95.0).has_value());
  EXPECT_FALSE(
      absolute_rule_violation(net::ResourceKind::CpuPct, 85.0).has_value());
}

TEST(AbsoluteRules, DiskFloor) {
  EXPECT_TRUE(absolute_rule_violation(net::ResourceKind::DiskFreeMb, 512.0)
                  .has_value());
  EXPECT_FALSE(absolute_rule_violation(net::ResourceKind::DiskFreeMb, 5000.0)
                   .has_value());
}

TEST(AbsoluteRules, NetAndDiskIoUnbounded) {
  EXPECT_FALSE(absolute_rule_violation(net::ResourceKind::NetMbps, 1e9)
                   .has_value());
  EXPECT_FALSE(absolute_rule_violation(net::ResourceKind::DiskIoOps, 1e9)
                   .has_value());
}

}  // namespace
}  // namespace gretel::detect
