#include "detect/level_shift.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.h"

namespace gretel::detect {
namespace {

LevelShiftParams fast_params() {
  LevelShiftParams p;
  p.baseline_window = 32;
  p.min_baseline = 8;
  p.k_sigma = 5.0;
  p.confirm = 3;
  p.sigma_floor = 0.01;
  p.cooldown_seconds = 0.0;
  return p;
}

// Feeds a flat series with gaussian noise; returns alarms raised.
int feed_noise(OutlierDetector& d, double level, double sigma, int n,
               std::uint64_t seed, double t0 = 0.0) {
  util::Rng rng(seed);
  int alarms = 0;
  for (int i = 0; i < n; ++i) {
    alarms += d.observe(t0 + i, rng.next_gaussian(level, sigma)).has_value();
  }
  return alarms;
}

TEST(LevelShift, NoAlarmOnStationarySeries) {
  LevelShiftDetector d(fast_params());
  EXPECT_EQ(feed_noise(d, 10.0, 0.5, 500, 1), 0);
}

TEST(LevelShift, NotArmedBeforeMinBaseline) {
  LevelShiftDetector d(fast_params());
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(d.observe(i, 10.0).has_value());
    EXPECT_FALSE(d.armed());
  }
  d.observe(8, 10.0);
  EXPECT_TRUE(d.armed());
}

TEST(LevelShift, DetectsUpwardShift) {
  LevelShiftDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 100, 2);
  // Sustained jump to 20: confirmed on the 3rd deviating sample.
  EXPECT_FALSE(d.observe(100, 20.0).has_value());
  EXPECT_FALSE(d.observe(101, 20.2).has_value());
  const auto alarm = d.observe(102, 19.8);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->direction, ShiftDirection::Up);
  EXPECT_NEAR(alarm->baseline, 10.0, 0.5);
  EXPECT_NEAR(alarm->magnitude, 10.0, 1.0);
}

TEST(LevelShift, DetectsDownwardShift) {
  LevelShiftDetector d(fast_params());
  feed_noise(d, 50.0, 0.5, 100, 3);
  d.observe(100, 20.0);
  d.observe(101, 20.0);
  const auto alarm = d.observe(102, 20.0);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->direction, ShiftDirection::Down);
}

TEST(LevelShift, SingleSpikeDoesNotAlarm) {
  LevelShiftDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 100, 4);
  EXPECT_FALSE(d.observe(100, 50.0).has_value());  // isolated outlier
  EXPECT_EQ(feed_noise(d, 10.0, 0.3, 100, 5, 101.0), 0);
}

TEST(LevelShift, AdaptsAfterShift) {
  // The paper's key LS property (§7.3): after a confirmed shift the detector
  // re-baselines; continued samples at the new level stay quiet.
  LevelShiftDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 100, 6);
  d.observe(100, 25.0);
  d.observe(101, 25.1);
  ASSERT_TRUE(d.observe(102, 24.9).has_value());
  EXPECT_EQ(feed_noise(d, 25.0, 0.3, 300, 7, 103.0), 0);
  EXPECT_NEAR(d.level(), 25.0, 0.5);
}

TEST(LevelShift, ShiftBackAlarmsAgain) {
  LevelShiftDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 100, 8);
  d.observe(100, 25.0);
  d.observe(101, 25.0);
  ASSERT_TRUE(d.observe(102, 25.0).has_value());
  feed_noise(d, 25.0, 0.3, 50, 9, 103.0);
  d.observe(200, 10.0);
  d.observe(201, 10.0);
  const auto alarm = d.observe(202, 10.0);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->direction, ShiftDirection::Down);
}

TEST(LevelShift, CooldownSuppressesRapidReAlarms) {
  auto params = fast_params();
  params.cooldown_seconds = 100.0;
  LevelShiftDetector d(params);
  feed_noise(d, 10.0, 0.3, 100, 10);
  d.observe(100, 25.0);
  d.observe(101, 25.0);
  ASSERT_TRUE(d.observe(102, 25.0).has_value());
  // Another shift within the cooldown: confirmed but not reported.
  d.observe(110, 60.0);
  d.observe(111, 60.0);
  EXPECT_FALSE(d.observe(112, 60.0).has_value());
}

TEST(LevelShift, DirectionFlipsRestartConfirmation) {
  LevelShiftDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 100, 11);
  // Alternating up/down excursions never accumulate `confirm` same-signed
  // deviations.
  EXPECT_FALSE(d.observe(100, 20.0).has_value());
  EXPECT_FALSE(d.observe(101, 0.0).has_value());
  EXPECT_FALSE(d.observe(102, 20.0).has_value());
  EXPECT_FALSE(d.observe(103, 0.0).has_value());
}

TEST(LevelShift, ResetForgetsState) {
  LevelShiftDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 100, 12);
  d.reset();
  EXPECT_FALSE(d.armed());
  EXPECT_DOUBLE_EQ(d.level(), 0.0);
}

TEST(LevelShift, FactoryReturnsWorkingDetector) {
  const auto d = make_level_shift();
  EXPECT_EQ(d->name(), "level-shift");
}

TEST(LevelShift, RejectsNonFiniteSamples) {
  LevelShiftDetector d(fast_params());
  feed_noise(d, 10.0, 0.3, 100, 14);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(d.observe(100, nan).has_value());
  EXPECT_FALSE(d.observe(101, inf).has_value());
  EXPECT_FALSE(d.observe(102, -inf).has_value());
  EXPECT_EQ(d.rejected_nonfinite(), 3u);
  // The baseline is untouched: the detector stays armed at the old level
  // and still confirms a genuine shift afterwards.
  EXPECT_TRUE(d.armed());
  EXPECT_NEAR(d.level(), 10.0, 0.5);
  d.observe(103, 25.0);
  d.observe(104, 25.0);
  EXPECT_TRUE(d.observe(105, 25.0).has_value());
}

TEST(LevelShift, NonFiniteBeforeBaselineDoesNotArm) {
  LevelShiftDetector d(fast_params());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(d.observe(i, nan).has_value());
  }
  EXPECT_FALSE(d.armed());  // garbage never counts toward min_baseline
  EXPECT_EQ(d.rejected_nonfinite(), 20u);
  // Real samples still arm it normally.
  EXPECT_EQ(feed_noise(d, 10.0, 0.3, 50, 15, 100.0), 0);
  EXPECT_TRUE(d.armed());
}

// Parameterized sweep: sustained shifts well past k·sigma are caught across
// baseline levels and shift magnitudes.
class LevelShiftSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LevelShiftSweep, CatchesLargeShifts) {
  const auto [level, shift] = GetParam();
  LevelShiftDetector d(fast_params());
  feed_noise(d, level, 0.02 * level, 100, 13);
  bool alarmed = false;
  for (int i = 0; i < 10 && !alarmed; ++i) {
    alarmed = d.observe(100 + i, level + shift * level).has_value();
  }
  EXPECT_TRUE(alarmed) << "level=" << level << " shift=" << shift;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LevelShiftSweep,
    ::testing::Combine(::testing::Values(1.0, 10.0, 100.0, 1000.0),
                       ::testing::Values(0.5, 2.0, 10.0)));

}  // namespace
}  // namespace gretel::detect
