// Kill-point recovery campaign: one full cycle through every kill point
// must crash where it claims to, restore from the surviving files, and
// hold the durability invariant each round.  (Suite name Recovery* is in
// the TSan/ASan CI filters.)
#include "campaign/recovery_campaign.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>

#include "gretel/training.h"
#include "tempest/catalog.h"

namespace gretel::campaign {
namespace {

namespace fs = std::filesystem;

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(21, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  core::TrainingReport training = core::learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

TEST(RecoveryCampaign, EveryKillPointHoldsTheInvariant) {
  auto& e = env();
  RecoveryCampaignConfig cfg;
  cfg.seed = 0x5EED7777;
  cfg.rounds = kKillPoints;  // one round per kill point
  cfg.concurrent_tests = 6;
  cfg.window_s = 30.0;
  cfg.dir = (fs::temp_directory_path() /
             ("grt-recovery-campaign-" + std::to_string(::getpid())))
                .string();

  RecoveryCampaign rc(&e.catalog, &e.training, cfg);
  const auto report = rc.run();
  std::error_code ec;
  fs::remove_all(cfg.dir, ec);

  ASSERT_EQ(report.rounds.size(), kKillPoints);
  std::set<int> points;
  for (const auto& r : report.rounds) {
    points.insert(static_cast<int>(r.kill_point));
    EXPECT_TRUE(r.invariant_ok)
        << "round " << r.round << " (" << to_string(r.kill_point)
        << "): " << r.note;
    EXPECT_TRUE(r.reports_durable) << to_string(r.kill_point);
    EXPECT_TRUE(r.baseline_bounded) << to_string(r.kill_point);
    EXPECT_TRUE(r.ledger_ok) << to_string(r.kill_point);
  }
  // The cycle visited every kill point exactly once.
  EXPECT_EQ(points.size(), kKillPoints);
  EXPECT_EQ(report.invariant_failures, 0u);
  EXPECT_TRUE(report.all_ok());
  // BetweenTicks rounds always "crash" (manual stop); named fail points
  // may or may not fire depending on how many reports the round produced,
  // so only the aggregate is asserted.
  EXPECT_GE(report.crashes, 1u);
}

TEST(RecoveryCampaign, RoundsAreDeterministicForAFixedSeed) {
  auto& e = env();
  RecoveryCampaignConfig cfg;
  cfg.seed = 0x0DD5EED;
  cfg.rounds = 2;
  cfg.concurrent_tests = 6;
  cfg.window_s = 30.0;

  auto run_once = [&](const std::string& dir) {
    auto c = cfg;
    c.dir = dir;
    RecoveryCampaign rc(&e.catalog, &e.training, c);
    const auto report = rc.run();
    std::error_code ec;
    fs::remove_all(dir, ec);
    return report;
  };
  const auto base = (fs::temp_directory_path() /
                     ("grt-recovery-det-" + std::to_string(::getpid())))
                        .string();
  const auto a = run_once(base + "-a");
  const auto b = run_once(base + "-b");
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].crashed, b.rounds[i].crashed) << i;
    EXPECT_EQ(a.rounds[i].recovered, b.rounds[i].recovered) << i;
    EXPECT_EQ(a.rounds[i].reports_pre_crash, b.rounds[i].reports_pre_crash)
        << i;
    EXPECT_EQ(a.rounds[i].reports_journaled, b.rounds[i].reports_journaled)
        << i;
    EXPECT_EQ(a.rounds[i].reports_replayed, b.rounds[i].reports_replayed)
        << i;
  }
}

}  // namespace
}  // namespace gretel::campaign
