// Bounded audit logs on the chaos injectors: the retained entry list is
// capped (campaigns inject millions of faults), while the aggregate
// counters stay exact and the overflow accounting reconciles.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "monitor/probe.h"
#include "net/chaos.h"

namespace gretel {
namespace {

std::vector<net::WireRecord> make_records(std::size_t n) {
  std::vector<net::WireRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::WireRecord r;
    r.ts = util::SimTime(static_cast<std::int64_t>(1000000ULL * (i + 1)));
    r.src_node = wire::NodeId(static_cast<std::uint8_t>(i % 3));
    r.dst_node = wire::NodeId(static_cast<std::uint8_t>((i + 1) % 3));
    r.conn_id = static_cast<std::uint32_t>(i);
    r.bytes = "frame-" + std::to_string(i);
    out.push_back(std::move(r));
  }
  return out;
}

TEST(ChaosTapAuditCap, StatsStayExactWhenEntriesShed) {
  net::ChaosConfig config;
  config.seed = 99;
  config.drop_rate = 0.3;
  config.corrupt_rate = 0.2;
  config.audit_limit = 0;  // reference: unbounded
  const auto records = make_records(2000);

  net::ChaosStats ref_stats;
  std::vector<net::ChaosInjection> ref_audit;
  net::ChaosTap::apply(config, records, &ref_stats, &ref_audit);
  ASSERT_GT(ref_audit.size(), 64u) << "rates too low to exercise the cap";

  config.audit_limit = 64;
  std::vector<net::WireRecord> sink;
  net::ChaosTap tap(config, [&](const net::WireRecord& r) {
    sink.push_back(r);
  });
  for (const auto& r : records) tap.on_record(r);
  tap.finish();

  // Same seed, same fate: aggregate stats are unchanged by the cap.
  const auto& stats = tap.stats();
  EXPECT_EQ(stats.records_in, ref_stats.records_in);
  EXPECT_EQ(stats.records_out, ref_stats.records_out);
  EXPECT_EQ(stats.dropped_uniform, ref_stats.dropped_uniform);
  EXPECT_EQ(stats.corrupted, ref_stats.corrupted);

  // Overflow accounting: retained + shed == everything ever appended, and
  // the retained window is exactly the newest entries of the reference.
  const auto& audit = tap.audit();
  EXPECT_EQ(audit.size(), 64u);
  EXPECT_EQ(audit.total_appended(), ref_audit.size());
  EXPECT_EQ(audit.dropped(), ref_audit.size() - 64u);
  for (std::size_t i = 0; i < audit.size(); ++i) {
    const auto& want = ref_audit[ref_audit.size() - 64 + i];
    EXPECT_EQ(audit[i].input_index, want.input_index) << i;
    EXPECT_EQ(audit[i].action, want.action) << i;
  }
}

TEST(ChaosTapAuditCap, UnderCapIsIdenticalToUnbounded) {
  net::ChaosConfig config;
  config.seed = 7;
  config.drop_rate = 0.05;
  config.audit_limit = 0;
  const auto records = make_records(200);

  std::vector<net::ChaosInjection> ref_audit;
  net::ChaosTap::apply(config, records, nullptr, &ref_audit);
  ASSERT_LT(ref_audit.size(), 65536u);

  config.audit_limit = 65536;  // the default cap, never reached here
  net::ChaosStats stats;
  std::vector<net::ChaosInjection> capped_audit;
  net::ChaosTap::apply(config, records, &stats, &capped_audit);
  ASSERT_EQ(capped_audit.size(), ref_audit.size());
  for (std::size_t i = 0; i < ref_audit.size(); ++i) {
    EXPECT_EQ(capped_audit[i].input_index, ref_audit[i].input_index);
    EXPECT_EQ(capped_audit[i].action, ref_audit[i].action);
    EXPECT_EQ(capped_audit[i].detail, ref_audit[i].detail);
  }
}

TEST(MonitorChaosAuditCap, CountsStayExactWhenEntriesShed) {
  monitor::MonitorChaosConfig config;
  config.seed = 31;
  config.probe_drop_rate = 0.4;
  config.probe_timeout_rate = 0.2;
  config.audit_limit = 32;
  monitor::MonitorChaos chaos(config);

  std::uint64_t fired = 0;
  for (int tick = 0; tick < 4000; ++tick) {
    const auto fate = chaos.probe_fate(wire::NodeId(1), "nova-conductor",
                                       tick * 1000000LL, 0, true);
    fired += fate.dropped + fate.timed_out + fate.delayed + fate.flipped;
  }
  ASSERT_GT(fired, 32u) << "rates too low to exercise the cap";

  using MA = monitor::MonitorChaosAction;
  std::uint64_t total_counts = 0;
  for (auto a : {MA::ProbeDrop, MA::ProbeDelay, MA::ProbeTimeout,
                 MA::FalsePositive, MA::FalseNegative, MA::AgentCrash,
                 MA::MetricFreeze})
    total_counts += chaos.count(a);

  // count() totals are exact (they live outside the log) and reconcile
  // with the capped log's overflow accounting.
  EXPECT_EQ(total_counts, fired);
  const auto& audit = chaos.audit();
  EXPECT_EQ(audit.size(), 32u);
  EXPECT_EQ(audit.total_appended(), fired);
  EXPECT_EQ(audit.dropped(), fired - 32u);
}

TEST(MonitorChaosAuditCap, SameSeedSameInjectionsUnderAnyCap) {
  monitor::MonitorChaosConfig config;
  config.seed = 17;
  config.probe_drop_rate = 0.3;
  config.audit_limit = 0;
  monitor::MonitorChaos unbounded(config);
  config.audit_limit = 16;
  monitor::MonitorChaos capped(config);

  for (int tick = 0; tick < 500; ++tick) {
    unbounded.probe_fate(wire::NodeId(2), "ntpd", tick * 1000000LL, 0, true);
    capped.probe_fate(wire::NodeId(2), "ntpd", tick * 1000000LL, 0, true);
  }
  using MA = monitor::MonitorChaosAction;
  EXPECT_EQ(capped.count(MA::ProbeDrop), unbounded.count(MA::ProbeDrop));
  // Retained tail matches the unbounded log's newest entries.
  const auto ref = unbounded.audit().snapshot();
  const auto& audit = capped.audit();
  ASSERT_GE(ref.size(), audit.size());
  for (std::size_t i = 0; i < audit.size(); ++i) {
    const auto& want = ref[ref.size() - audit.size() + i];
    EXPECT_EQ(audit[i].tick, want.tick) << i;
    EXPECT_EQ(audit[i].action, want.action) << i;
  }
}

}  // namespace
}  // namespace gretel
