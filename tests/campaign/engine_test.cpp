// Campaign engine: generator determinism and coverage, orchestrator
// outcomes, event-budget enforcement, and per-scenario reconciliation.
#include <gtest/gtest.h>

#include <set>

#include "campaign/cluster.h"
#include "campaign/orchestrator.h"
#include "gretel/training.h"
#include "util/seed.h"

namespace gretel::campaign {
namespace {

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(77, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  core::TrainingReport training =
      core::learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

CampaignPlan small_plan(std::size_t scenarios = 18) {
  CampaignPlan plan;
  plan.seed = 0xCA59A16Eull;
  plan.scenarios = scenarios;
  plan.concurrent_tests = 8;
  plan.window_s = 30.0;
  return plan;
}

TEST(CampaignGenerator, DeterministicFromTheCampaignSeed) {
  auto& e = env();
  ScenarioGenerator gen(&e.catalog, small_plan());
  const auto a = gen.generate();
  const auto b = gen.generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].fault_class, b[i].fault_class);
    ASSERT_EQ(a[i].faults.size(), b[i].faults.size());
    for (std::size_t f = 0; f < a[i].faults.size(); ++f) {
      EXPECT_EQ(a[i].faults[f].op_index, b[i].faults[f].op_index);
      EXPECT_EQ(a[i].faults[f].fail_step, b[i].faults[f].fail_step);
      EXPECT_EQ(a[i].faults[f].status, b[i].faults[f].status);
      EXPECT_DOUBLE_EQ(a[i].faults[f].start_offset_s,
                       b[i].faults[f].start_offset_s);
    }
    EXPECT_EQ(a[i].env.kind, b[i].env.kind);
    EXPECT_EQ(a[i].env.service, b[i].env.service);
    EXPECT_EQ(a[i].env.daemon, b[i].env.daemon);
    // generate_one(i) is the same derivation as generate()[i].
    EXPECT_EQ(gen.generate_one(i).seed, a[i].seed);
  }
}

TEST(CampaignGenerator, RoundRobinCoversEveryFaultClass) {
  auto& e = env();
  ScenarioGenerator gen(&e.catalog, small_plan(2 * kFaultClasses));
  const auto specs = gen.generate();
  std::set<FaultClass> seen;
  for (const auto& s : specs) seen.insert(s.fault_class);
  EXPECT_EQ(seen.size(), kFaultClasses);
}

TEST(CampaignGenerator, ClassShapesMatchTheirContracts) {
  auto& e = env();
  ScenarioGenerator gen(&e.catalog, small_plan(3 * kFaultClasses));
  for (const auto& spec : gen.generate()) {
    switch (spec.fault_class) {
      case FaultClass::OpError:
        EXPECT_EQ(spec.faults.size(), 1u);
        EXPECT_FALSE(spec.has_env());
        EXPECT_FALSE(spec.wire.enabled());
        EXPECT_FALSE(spec.monitor.enabled());
        break;
      case FaultClass::EnvCpuSurge:
      case FaultClass::EnvDiskExhaustion:
      case FaultClass::EnvDaemonCrash:
      case FaultClass::EnvLinkLatency:
        EXPECT_TRUE(spec.has_env());
        EXPECT_EQ(spec.faults.size(), 1u);
        break;
      case FaultClass::WireChaos:
        EXPECT_TRUE(spec.wire.enabled());
        break;
      case FaultClass::MonitorChaos:
        EXPECT_TRUE(spec.monitor.enabled());
        EXPECT_TRUE(spec.has_env());
        break;
      case FaultClass::MultiIndependent:
        EXPECT_TRUE(spec.multi_fault());
        break;
      case FaultClass::Cascade:
        EXPECT_TRUE(spec.has_env());
        EXPECT_FALSE(spec.faults.empty());
        break;
    }
    // Run-time consumers never share the scenario seed directly.
    EXPECT_NE(spec.wire.seed, spec.seed);
    EXPECT_NE(spec.monitor.seed, spec.seed);
    EXPECT_NE(spec.wire.seed, spec.monitor.seed);
    // All faults land inside the workload window.
    for (const auto& f : spec.faults) {
      EXPECT_GE(f.start_offset_s, 0.0);
      EXPECT_LT(f.start_offset_s, spec.window_s);
    }
  }
}

TEST(CampaignEngine, SweepIsDeterministicAndReconciles) {
  auto& e = env();
  const auto plan = small_plan(kFaultClasses);
  ScenarioGenerator gen(&e.catalog, plan);
  CampaignOrchestrator orch(&e.catalog, &e.training, plan);
  const auto specs = gen.generate();
  const auto first = orch.run_all(specs);
  const auto second = orch.run_all(specs);
  ASSERT_EQ(first.size(), specs.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    // No scenario may crash: a crash here is an exception or a failed
    // audit/counter reconciliation (the note says which).
    EXPECT_NE(first[i].outcome, Outcome::Crashed)
        << "scenario " << i << ": " << first[i].note;
    EXPECT_EQ(first[i].fingerprint, second[i].fingerprint) << i;
    EXPECT_EQ(first[i].outcome, second[i].outcome) << i;
    EXPECT_EQ(first[i].events, second[i].events) << i;
  }

  const auto summary = summarize(first);
  EXPECT_EQ(summary.scenarios, specs.size());
  // One full round covers each class exactly once.
  for (std::size_t c = 0; c < kFaultClasses; ++c)
    EXPECT_EQ(summary.per_class[c].scenarios, 1u);
  // The engine localizes at least some of the single-round sweep.
  EXPECT_GT(summary.outcomes[static_cast<std::size_t>(Outcome::Localized)],
            0u);
  EXPECT_GT(summary.distinct_fingerprints, 1u);
}

TEST(CampaignEngine, StreamingSweepReconcilesAndStampsReportLatency) {
  auto& e = env();
  auto plan = small_plan(kFaultClasses);
  plan.streaming = true;
  plan.stream_tick_ms = 250.0;
  ScenarioGenerator gen(&e.catalog, plan);
  CampaignOrchestrator orch(&e.catalog, &e.training, plan);
  const auto specs = gen.generate();
  const auto results = orch.run_all(specs);
  ASSERT_EQ(results.size(), specs.size());
  std::size_t localized = 0, stamped = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    // A streaming crash includes flow-ledger mismatches (offered !=
    // ingested + shed after finish) — the note says which.
    EXPECT_NE(results[i].outcome, Outcome::Crashed)
        << "scenario " << i << ": " << results[i].note;
    EXPECT_GT(results[i].stream_ticks, 0u) << i;
    if (results[i].outcome == Outcome::Localized) ++localized;
    if (results[i].first_report_latency_ms >= 0.0) ++stamped;
  }
  EXPECT_GT(localized, 0u);
  // Every scenario that emitted a report got a fault-to-report latency.
  EXPECT_GT(stamped, 0u);

  // Streaming runs the same detection math on a tick cadence: the
  // localization verdict matches the batch sweep scenario-for-scenario.
  // (Failure-mode fingerprints may differ — a deadline-forced streaming
  // report matches on less future context than batch; that quantization
  // caveat is documented in docs/ARCHITECTURE.md, "Streaming mode".)
  auto batch_plan = plan;
  batch_plan.streaming = false;
  CampaignOrchestrator batch(&e.catalog, &e.training, batch_plan);
  const auto batch_results = batch.run_all(specs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].outcome, batch_results[i].outcome) << i;
    EXPECT_EQ(results[i].stream_ticks > 0, batch_results[i].stream_ticks == 0)
        << i;  // only the streaming run ticks
  }
}

TEST(CampaignEngine, EventBudgetTruncatesDeterministically) {
  auto& e = env();
  auto plan = small_plan(1);
  plan.budget_events = 64;
  ScenarioGenerator gen(&e.catalog, plan);
  CampaignOrchestrator orch(&e.catalog, &e.training, plan);
  const auto result = orch.run(gen.generate_one(0));
  EXPECT_NE(result.outcome, Outcome::Crashed) << result.note;
  EXPECT_TRUE(result.budget_truncated);
  EXPECT_EQ(result.events, 64u);
}

TEST(CampaignEngine, PlanReadsThePromotedConfigKnobs) {
  core::GretelConfig config;
  config.campaign_seed = 99;
  config.campaign_budget_events = 1234;
  config.campaign_max_concurrent_faults = 5;
  const auto plan = CampaignPlan::from(config);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_EQ(plan.budget_events, 1234u);
  EXPECT_EQ(plan.max_concurrent_faults, 5u);
}

TEST(CampaignCluster, GroupsByFingerprintAndCountsNovelty) {
  std::vector<ScenarioResult> results(5);
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].id = i;
    results[i].fault_class = static_cast<FaultClass>(i % kFaultClasses);
    results[i].outcome = Outcome::Localized;
  }
  results[0].fingerprint = 0xAA;
  results[1].fingerprint = 0xAA;
  results[2].fingerprint = 0xBB;
  results[3].fingerprint = 0xAA;
  results[4].fingerprint = 0xCC;
  results[4].outcome = Outcome::Missed;

  const auto s = summarize(results);
  EXPECT_EQ(s.distinct_fingerprints, 3u);
  EXPECT_EQ(s.singleton_fingerprints, 2u);
  ASSERT_EQ(s.clusters.size(), 3u);
  // Largest first; ties by fingerprint.
  EXPECT_EQ(s.clusters[0].fingerprint, 0xAAu);
  EXPECT_EQ(s.clusters[0].size, 3u);
  EXPECT_EQ(s.clusters[0].example_id, 0u);
  EXPECT_EQ(s.outcomes[static_cast<std::size_t>(Outcome::Localized)], 4u);
  EXPECT_EQ(s.outcomes[static_cast<std::size_t>(Outcome::Missed)], 1u);
  EXPECT_NEAR(s.localized_fraction(), 0.8, 1e-9);

  // JSON body is well-formed enough to contain the headline fields.
  std::string json;
  append_summary_json(json, s);
  EXPECT_NE(json.find("\"scenarios\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"distinct_fingerprints\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"clusters\""), std::string::npos);
}

}  // namespace
}  // namespace gretel::campaign
