// Fingerprint stability: the campaign's failure-mode signature must be
// byte-identical across shard counts and kernel families (the determinism
// contract), and invariant under cosmetic report differences — cause
// ordering within a score tie, probe timing jitter, float scores.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "campaign/fingerprint.h"
#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "monitor/metrics.h"
#include "tempest/workload.h"
#include "util/simd.h"

namespace gretel::campaign {
namespace {

using util::SimDuration;
using util::SimTime;

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(77, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  core::TrainingReport training =
      core::learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

// One faulty workload recorded once; every replay sees identical bytes.
std::vector<net::WireRecord> record_faulty_workload() {
  auto& e = env();
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 20;
  spec.faults = 2;
  spec.window = SimDuration::seconds(30);
  spec.seed = 505;
  const auto w = make_parallel_workload(e.catalog, spec);
  stack::WorkflowExecutor executor(&e.deployment, &e.catalog.apis(),
                                   &e.catalog.infra(), 606);
  return executor.execute(w.launches);
}

std::uint64_t fingerprint_with_shards(
    const std::vector<net::WireRecord>& records, std::size_t num_shards) {
  auto& e = env();
  core::Analyzer::Options opt;
  opt.config.fp_max = e.training.fp_max;
  opt.config.p_rate = 150.0;
  opt.config.num_shards = num_shards;
  core::Analyzer analyzer(&e.training.db, &e.catalog.apis(), &e.deployment,
                          opt);
  monitor::ResourceMonitor mon(&e.deployment, SimDuration::seconds(1), 7);
  mon.sample_range(SimTime::epoch(),
                   records.back().ts + SimDuration::seconds(3),
                   analyzer.metrics());
  for (const auto& r : records) analyzer.on_wire(r);
  analyzer.finish();
  EXPECT_FALSE(analyzer.diagnoses().empty());
  return report_fingerprint(analyzer.diagnoses(), e.catalog.apis(),
                            e.training.db);
}

TEST(CampaignFingerprint, StableAcrossShardCounts) {
  const auto records = record_faulty_workload();
  const auto golden = fingerprint_with_shards(records, 1);
  EXPECT_EQ(fingerprint_with_shards(records, 2), golden);
  EXPECT_EQ(fingerprint_with_shards(records, 4), golden);
}

TEST(CampaignFingerprint, StableAcrossKernelFamilies) {
  const auto records = record_faulty_workload();
  const auto simd_fp = fingerprint_with_shards(records, 2);
  simd::set_force_scalar(true);
  const auto scalar_fp = fingerprint_with_shards(records, 2);
  simd::set_force_scalar(false);
  EXPECT_EQ(scalar_fp, simd_fp);
}

TEST(CampaignFingerprint, Fnv1a64GoldenVectors) {
  // Offset basis and standard test vectors pin the hash contract.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fingerprint_hex(0xCBF29CE484222325ull), "cbf29ce484222325");
}

TEST(CampaignFingerprint, EmptyDiagnosisSetHasWellKnownSignature) {
  auto& e = env();
  EXPECT_EQ(report_fingerprint({}, e.catalog.apis(), e.training.db),
            fnv1a64("[]"));
}

core::Diagnosis make_diagnosis() {
  auto& e = env();
  core::Diagnosis d;
  d.fault.kind = core::FaultKind::Operational;
  d.fault.offending_api = e.catalog.well_known().neutron_post_ports;
  d.fault.matched_fingerprints = {0, 1};
  d.fault.theta = 0.991;
  d.fault.beta_final = 12;
  d.fault.candidates = 3;
  d.fault.detected_at = SimTime::epoch() + SimDuration::seconds(11);

  core::Cause cpu;
  cpu.kind = core::CauseKind::ResourceAnomaly;
  cpu.node = wire::NodeId(1);
  cpu.detail = "cpu level 93.1 vs baseline 8.2";
  cpu.score = 4.2;
  core::Cause daemon;
  daemon.kind = core::CauseKind::SoftwareFailure;
  daemon.node = wire::NodeId(2);
  daemon.detail = "ntpd";
  daemon.score = 4.2;  // tied with the cpu cause
  d.root_cause.causes = {cpu, daemon};
  d.root_cause.probe_time_ms = 17.5;
  return d;
}

TEST(CampaignFingerprint, CosmeticDifferencesDoNotChangeSignature) {
  auto& e = env();
  const auto base = make_diagnosis();
  std::vector<core::Diagnosis> a{base};
  const auto golden =
      report_fingerprint(a, e.catalog.apis(), e.training.db);

  // Cause order within the score tie is presentation, not conclusion.
  auto reordered = base;
  std::swap(reordered.root_cause.causes[0], reordered.root_cause.causes[1]);
  // Probe timing jitter, detection internals, and float scores likewise.
  reordered.root_cause.probe_time_ms = 99.25;
  reordered.fault.theta = 0.984;
  reordered.fault.beta_final = 64;
  reordered.fault.candidates = 9;
  reordered.fault.detected_at = SimTime::epoch() + SimDuration::seconds(44);
  reordered.root_cause.causes[0].score = 0.5;
  reordered.root_cause.causes[1].score = 9.5;
  // Matched set order is storage order, not meaning.
  reordered.fault.matched_fingerprints = {1, 0};
  std::vector<core::Diagnosis> b{reordered};
  EXPECT_EQ(report_fingerprint(b, e.catalog.apis(), e.training.db), golden);
}

TEST(CampaignFingerprint, StructuralDifferencesChangeSignature) {
  auto& e = env();
  const auto base = make_diagnosis();
  std::vector<core::Diagnosis> a{base};
  const auto golden =
      report_fingerprint(a, e.catalog.apis(), e.training.db);

  // Weaker evidence is a different failure mode.
  auto weaker = base;
  weaker.root_cause.causes[1].evidence = monitor::EvidenceStatus::Suspected;
  std::vector<core::Diagnosis> b{weaker};
  EXPECT_NE(report_fingerprint(b, e.catalog.apis(), e.training.db), golden);

  // So is an extra cause, a degraded flag, or a different match set.
  auto extra = base;
  extra.root_cause.causes.push_back(base.root_cause.causes[0]);
  extra.root_cause.causes.back().node = wire::NodeId(0);
  std::vector<core::Diagnosis> c{extra};
  EXPECT_NE(report_fingerprint(c, e.catalog.apis(), e.training.db), golden);

  auto degraded = base;
  degraded.root_cause.degraded = true;
  std::vector<core::Diagnosis> dd{degraded};
  EXPECT_NE(report_fingerprint(dd, e.catalog.apis(), e.training.db), golden);

  auto fewer = base;
  fewer.fault.matched_fingerprints = {0};
  std::vector<core::Diagnosis> ee{fewer};
  EXPECT_NE(report_fingerprint(ee, e.catalog.apis(), e.training.db), golden);
}

TEST(CampaignFingerprint, ReportOrderWithinSetIsIrrelevant) {
  auto& e = env();
  auto d1 = make_diagnosis();
  auto d2 = make_diagnosis();
  d2.fault.matched_fingerprints = {0};
  std::vector<core::Diagnosis> ab{d1, d2};
  std::vector<core::Diagnosis> ba{d2, d1};
  EXPECT_EQ(report_fingerprint(ab, e.catalog.apis(), e.training.db),
            report_fingerprint(ba, e.catalog.apis(), e.training.db));
}

}  // namespace
}  // namespace gretel::campaign
