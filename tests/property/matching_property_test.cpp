// Algebraic properties of the matching machinery, swept over random inputs:
// subsequence monotonicity, truncation ordering, θ bounds, and the
// LCS/fingerprint relationships Algorithm 1 relies on.
#include <gtest/gtest.h>

#include "gretel/fingerprint_db.h"
#include "gretel/lcs.h"
#include "gretel/matcher.h"
#include "gretel/op_detector.h"
#include "util/rng.h"

namespace gretel::core {
namespace {

using wire::ApiCatalog;
using wire::ApiId;

ApiCatalog mixed_catalog() {
  ApiCatalog cat;
  for (int i = 0; i < 10; ++i) {
    cat.add_rest(wire::ServiceKind::Nova,
                 i % 2 ? wire::HttpMethod::Post : wire::HttpMethod::Get,
                 "/api" + std::to_string(i));
  }
  for (int i = 0; i < 4; ++i) {
    cat.add_rpc(wire::ServiceKind::NovaCompute, "nova-compute",
                "m" + std::to_string(i));
  }
  return cat;
}

std::vector<ApiId> random_seq(util::Rng& rng, std::size_t max_len,
                              std::uint16_t alphabet) {
  std::vector<ApiId> out;
  const auto len = rng.next_below(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    out.emplace_back(static_cast<std::uint16_t>(rng.next_below(alphabet)));
  }
  return out;
}

class MatchingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingProperty, MatchSurvivesInsertions) {
  // If literals match a snapshot, they match any supersequence of it —
  // the paper's claim that interleaved foreign messages don't break
  // matching.
  const auto catalog = mixed_catalog();
  const Matcher m(&catalog, {true, MatchBackend::SymbolSubsequence});
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    auto snapshot = random_seq(rng, 60, 14);
    auto literals = random_seq(rng, 6, 14);
    if (literals.empty()) continue;
    if (!m.matches(literals, snapshot)) continue;

    // Insert random foreign symbols.
    auto inflated = snapshot;
    for (int k = 0; k < 10; ++k) {
      const auto pos = rng.next_below(inflated.size() + 1);
      inflated.insert(
          inflated.begin() + static_cast<std::ptrdiff_t>(pos),
          ApiId(static_cast<std::uint16_t>(rng.next_below(14))));
    }
    EXPECT_TRUE(m.matches(literals, inflated));
  }
}

TEST_P(MatchingProperty, TruncationsAreNestedPrefixes) {
  util::Rng rng(GetParam() * 3);
  for (int trial = 0; trial < 60; ++trial) {
    const auto seq = random_seq(rng, 40, 6);
    if (seq.empty()) continue;
    const auto target = seq[rng.next_below(seq.size())];
    const auto first = Matcher::truncate_at_first(seq, target);
    const auto last = Matcher::truncate_at_last(seq, target);
    ASSERT_LE(first.size(), last.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i], seq[i]);
      EXPECT_EQ(last[i], seq[i]);
    }
    EXPECT_EQ(first.back(), target);
    EXPECT_EQ(last.back(), target);
  }
}

TEST_P(MatchingProperty, LcsLengthBoundedByInputs) {
  util::Rng rng(GetParam() * 7);
  for (int trial = 0; trial < 40; ++trial) {
    const auto a = random_seq(rng, 50, 5);
    const auto b = random_seq(rng, 50, 5);
    const auto lcs = longest_common_subsequence(a, b);
    EXPECT_LE(lcs.size(), std::min(a.size(), b.size()));
    // Folding with itself is identity.
    EXPECT_EQ(longest_common_subsequence(a, a), a);
  }
}

TEST_P(MatchingProperty, ThetaWithinUnitInterval) {
  const auto catalog = mixed_catalog();
  FingerprintDb db;
  util::Rng rng(GetParam() * 11);
  const auto n_fps = 2 + rng.next_below(30);
  for (std::size_t i = 0; i < n_fps; ++i) {
    Fingerprint fp;
    fp.op = wire::OpTemplateId(static_cast<std::uint32_t>(i));
    fp.name = "op";
    fp.sequence = random_seq(rng, 10, 14);
    if (fp.sequence.empty()) fp.sequence.push_back(ApiId(0));
    for (auto api : fp.sequence) {
      if (catalog.get(api).state_change()) fp.state_sequence.push_back(api);
    }
    db.add(fp);
  }
  const OperationDetector det(&db, &catalog, GretelConfig{});
  for (std::size_t n = 0; n <= db.size(); ++n) {
    const double theta = det.theta(n);
    EXPECT_GE(theta, 0.0);
    EXPECT_LE(theta, 1.0);
  }
  EXPECT_DOUBLE_EQ(det.theta(1), 1.0);
}

TEST_P(MatchingProperty, RequiredLiteralsAreStateChangeSubsequence) {
  const auto catalog = mixed_catalog();
  const Matcher with_rpc(&catalog, {true, MatchBackend::SymbolSubsequence});
  const Matcher no_rpc(&catalog, {false, MatchBackend::SymbolSubsequence});
  util::Rng rng(GetParam() * 13);
  for (int trial = 0; trial < 60; ++trial) {
    const auto seq = random_seq(rng, 40, 14);
    const auto all = with_rpc.required_literals(seq);
    const auto rest_only = no_rpc.required_literals(seq);
    // Every literal is a state change; RPC pruning removes a subset.
    for (auto api : all) EXPECT_TRUE(catalog.get(api).state_change());
    EXPECT_LE(rest_only.size(), all.size());
    // rest_only is a subsequence of all.
    std::size_t need = 0;
    for (auto api : all) {
      if (need < rest_only.size() && api == rest_only[need]) ++need;
    }
    EXPECT_EQ(need, rest_only.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MatchingProperty,
    ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace gretel::core
