// Pipeline-level properties swept across seeds: detection soundness
// (no reports without faults), completeness (every injected fault
// reported), determinism, and tolerance to mild cross-stream reordering.
#include <gtest/gtest.h>

#include <set>

#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "tempest/workload.h"
#include "util/rng.h"

namespace gretel::core {
namespace {

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(71, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  TrainingReport training = learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

std::unique_ptr<Analyzer> fresh_analyzer() {
  Analyzer::Options options;
  options.config.fp_max = env().training.fp_max;
  options.config.p_rate = 150.0;
  options.run_root_cause = false;
  return std::make_unique<Analyzer>(&env().training.db,
                                    &env().catalog.apis(),
                                    &env().deployment, options);
}

std::vector<net::WireRecord> capture(int tests, int faults,
                                     std::uint64_t seed,
                                     tempest::GeneratedWorkload* out_w =
                                         nullptr) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = tests;
  spec.faults = faults;
  spec.window = util::SimDuration::seconds(45);
  spec.seed = seed;
  auto w = make_parallel_workload(env().catalog, spec);
  stack::WorkflowExecutor executor(&env().deployment, &env().catalog.apis(),
                                   &env().catalog.infra(), seed ^ 0xFEEDull);
  auto records = executor.execute(w.launches);
  if (out_w) *out_w = std::move(w);
  return records;
}

class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, NoFaultsNoReports) {
  const auto records = capture(12, 0, GetParam());
  auto analyzer = fresh_analyzer();
  for (const auto& r : records) analyzer->on_wire(r);
  analyzer->finish();
  EXPECT_EQ(analyzer->detector_stats().operational_reports, 0u);
  EXPECT_EQ(analyzer->detector_stats().rest_errors, 0u);
  EXPECT_EQ(analyzer->tap_stats().decode_failures, 0u);
  EXPECT_EQ(analyzer->tap_stats().unknown_api, 0u);
}

TEST_P(PipelineSeedSweep, EveryFaultReported) {
  tempest::GeneratedWorkload w;
  const auto records = capture(15, 2, GetParam() * 131, &w);
  auto analyzer = fresh_analyzer();
  for (const auto& r : records) analyzer->on_wire(r);
  analyzer->finish();

  std::set<std::uint32_t> reported;
  for (const auto& d : analyzer->diagnoses()) {
    for (const auto& ev : d.fault.error_events) {
      if (ev.truth_instance.valid())
        reported.insert(ev.truth_instance.value());
    }
  }
  for (auto idx : w.faulty_launch_idx) {
    EXPECT_TRUE(reported.contains(static_cast<std::uint32_t>(idx + 1)))
        << "seed " << GetParam() << " launch " << idx;
  }
}

TEST_P(PipelineSeedSweep, DetectionDeterministic) {
  const auto records = capture(10, 1, GetParam() * 733);
  std::vector<std::vector<std::uint32_t>> matched_sets;
  for (int run = 0; run < 2; ++run) {
    auto analyzer = fresh_analyzer();
    for (const auto& r : records) analyzer->on_wire(r);
    analyzer->finish();
    std::vector<std::uint32_t> matched;
    for (const auto& d : analyzer->diagnoses()) {
      matched.insert(matched.end(), d.fault.matched_fingerprints.begin(),
                     d.fault.matched_fingerprints.end());
    }
    matched_sets.push_back(std::move(matched));
  }
  EXPECT_EQ(matched_sets[0], matched_sets[1]);
}

TEST_P(PipelineSeedSweep, ToleratesCrossStreamReordering) {
  // §5.2: order is only guaranteed per TCP stream.  Swapping adjacent
  // records of *different* connections models cross-stream arrival skew;
  // detection must survive it.
  tempest::GeneratedWorkload w;
  auto records = capture(10, 1, GetParam() * 997, &w);
  util::Rng rng(GetParam());
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (!rng.chance(0.3)) continue;
    auto& a = records[i - 1];
    auto& b = records[i];
    const bool same_stream =
        (!a.is_amqp && !b.is_amqp && a.conn_id == b.conn_id) ||
        (a.is_amqp && b.is_amqp);
    if (!same_stream) std::swap(a, b);
  }
  auto analyzer = fresh_analyzer();
  for (const auto& r : records) analyzer->on_wire(r);
  analyzer->finish();
  EXPECT_GE(analyzer->detector_stats().operational_reports, 1u)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace gretel::core
