// Chaos-injection properties swept across seeds:
//  * all-zero rates are a byte-identical pass-through (the strict no-op
//    contract the zero-chaos baseline in the sweep tests builds on), and
//  * duplicate injection never double-counts an operation match — the
//    trigger-suppression and subsequence-matching layers absorb re-delivered
//    frames, so the set of reported faults is invariant under duplication.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "net/chaos.h"
#include "tempest/workload.h"
#include "util/rng.h"

namespace gretel::core {
namespace {

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(71, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  TrainingReport training = learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

std::unique_ptr<Analyzer> fresh_analyzer() {
  Analyzer::Options options;
  options.config.fp_max = env().training.fp_max;
  options.config.p_rate = 150.0;
  options.run_root_cause = false;
  return std::make_unique<Analyzer>(&env().training.db,
                                    &env().catalog.apis(),
                                    &env().deployment, options);
}

std::vector<net::WireRecord> capture(int tests, int faults,
                                     std::uint64_t seed) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = tests;
  spec.faults = faults;
  spec.window = util::SimDuration::seconds(45);
  spec.seed = seed;
  const auto w = make_parallel_workload(env().catalog, spec);
  stack::WorkflowExecutor executor(&env().deployment, &env().catalog.apis(),
                                   &env().catalog.infra(), seed ^ 0xFEEDull);
  return executor.execute(w.launches);
}

// Random wire records with no relation to any catalog: the pass-through
// property is purely structural and must hold for arbitrary bytes.
std::vector<net::WireRecord> random_records(std::uint64_t seed,
                                            std::size_t n) {
  util::Rng rng(seed);
  std::vector<net::WireRecord> out;
  out.reserve(n);
  std::int64_t ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    net::WireRecord r;
    // Occasionally regress the clock: pass-through must not resequence.
    ts += rng.next_in(-1000, 100000);
    r.ts = util::SimTime(ts);
    r.src_node = wire::NodeId(static_cast<std::uint8_t>(rng.next_in(0, 7)));
    r.dst_node = wire::NodeId(static_cast<std::uint8_t>(rng.next_in(0, 7)));
    r.conn_id = static_cast<std::uint32_t>(rng.next_u64());
    r.is_amqp = rng.next_double() < 0.4;
    const auto len = static_cast<std::size_t>(rng.next_in(0, 256));
    r.bytes.reserve(len);
    for (std::size_t b = 0; b < len; ++b) {
      r.bytes.push_back(static_cast<char>(rng.next_u64() & 0xFF));
    }
    out.push_back(std::move(r));
  }
  return out;
}

class ChaosSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeedSweep, ZeroRatesAreByteIdenticalPassThrough) {
  const auto records = random_records(GetParam() * 977, 300);
  net::ChaosConfig config;  // every rate zero; seed irrelevant by contract
  config.seed = GetParam();
  ASSERT_FALSE(config.enabled());

  net::ChaosStats stats;
  std::vector<net::ChaosInjection> audit;
  const auto out = net::ChaosTap::apply(config, records, &stats, &audit);

  ASSERT_EQ(out.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(out[i].ts, records[i].ts);
    EXPECT_EQ(out[i].src_node, records[i].src_node);
    EXPECT_EQ(out[i].dst_node, records[i].dst_node);
    EXPECT_EQ(out[i].conn_id, records[i].conn_id);
    EXPECT_EQ(out[i].is_amqp, records[i].is_amqp);
    EXPECT_EQ(out[i].bytes, records[i].bytes);
  }
  EXPECT_EQ(stats.records_in, stats.records_out);
  EXPECT_EQ(stats.total_dropped(), 0u);
  EXPECT_TRUE(audit.empty());
}

std::set<std::uint32_t> reported_instances(const Analyzer& analyzer) {
  std::set<std::uint32_t> reported;
  for (const auto& d : analyzer.diagnoses()) {
    for (const auto& ev : d.fault.error_events) {
      if (ev.truth_instance.valid()) reported.insert(ev.truth_instance.value());
    }
  }
  return reported;
}

TEST_P(ChaosSeedSweep, DuplicationNeverDoubleCountsAnOperation) {
  const auto records = capture(15, 2, GetParam() * 131);

  auto clean = fresh_analyzer();
  for (const auto& r : records) clean->on_wire(r);
  clean->finish();

  // Re-deliver *every* frame: requests, error responses, RPC casts.  The
  // duplicate-relay suppression in the detector must keep each fault a
  // single report, and no operation may be matched twice.
  net::ChaosConfig config;
  config.seed = GetParam();
  config.duplicate_rate = 1.0;
  net::ChaosStats stats;
  const auto degraded_records = net::ChaosTap::apply(config, records, &stats);
  ASSERT_EQ(degraded_records.size(), 2 * records.size());

  auto degraded = fresh_analyzer();
  for (const auto& r : degraded_records) degraded->on_wire(r);
  degraded->finish();

  // No telemetry was lost, so nothing is degraded-confidence either.
  EXPECT_EQ(degraded->detector_stats().operational_reports,
            clean->detector_stats().operational_reports);
  EXPECT_EQ(degraded->diagnoses().size(), clean->diagnoses().size());
  EXPECT_EQ(reported_instances(*degraded), reported_instances(*clean));
  for (const auto& d : degraded->diagnoses()) {
    EXPECT_FALSE(d.fault.degraded_confidence);
    EXPECT_EQ(d.fault.window_losses, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace gretel::core
