// Robustness properties of every parser in the wire path: random bytes must
// never crash or be misinterpreted, and round-trips must be lossless for
// arbitrary payload contents.
#include <gtest/gtest.h>

#include "gretel/db_io.h"
#include "net/capture.h"
#include "net/capture_file.h"
#include "util/rng.h"
#include "wire/amqp_codec.h"
#include "wire/http_codec.h"

namespace gretel {
namespace {

std::string random_bytes(util::Rng& rng, std::size_t max_len) {
  std::string out;
  const auto len = rng.next_below(max_len);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out += static_cast<char>(rng.next_below(256));
  }
  return out;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, ParsersNeverCrashOnGarbage) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const auto bytes = random_bytes(rng, 512);
    // Any result is acceptable; the property is "no crash, no UB".
    (void)wire::parse_http_request(bytes);
    (void)wire::parse_http_response(bytes);
    (void)wire::parse_amqp_frame(bytes);
    (void)net::decode_capture(bytes);
  }
  SUCCEED();
}

TEST_P(CodecFuzz, MutatedValidFramesNeverCrash) {
  util::Rng rng(GetParam() * 31);
  wire::AmqpFrame frame;
  frame.routing_key = "nova-compute.compute-1";
  frame.method_name = "build_and_run_instance";
  frame.msg_id = 7;
  frame.payload = R"({"x": 1})";
  const auto valid = wire::serialize(frame);
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = valid;
    const auto pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(rng.next_below(256));
    (void)wire::parse_amqp_frame(mutated);
  }
  SUCCEED();
}

TEST_P(CodecFuzz, AmqpRoundTripArbitraryPayload) {
  util::Rng rng(GetParam() * 97);
  for (int trial = 0; trial < 50; ++trial) {
    wire::AmqpFrame frame;
    frame.type = rng.chance(0.5) ? wire::AmqpFrameType::Publish
                                 : wire::AmqpFrameType::Deliver;
    frame.channel = static_cast<std::uint16_t>(rng.next_u64());
    frame.msg_id = rng.next_u64();
    frame.correlation_id = static_cast<std::uint32_t>(rng.next_u64());
    frame.routing_key = random_bytes(rng, 40);
    frame.method_name = random_bytes(rng, 40);
    frame.payload = random_bytes(rng, 300);
    const auto parsed = wire::parse_amqp_frame(wire::serialize(frame));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, frame.type);
    EXPECT_EQ(parsed->channel, frame.channel);
    EXPECT_EQ(parsed->msg_id, frame.msg_id);
    EXPECT_EQ(parsed->correlation_id, frame.correlation_id);
    EXPECT_EQ(parsed->routing_key, frame.routing_key);
    EXPECT_EQ(parsed->method_name, frame.method_name);
    EXPECT_EQ(parsed->payload, frame.payload);
  }
}

TEST_P(CodecFuzz, CaptureRoundTripArbitraryBytes) {
  util::Rng rng(GetParam() * 193);
  std::vector<net::WireRecord> records;
  for (int i = 0; i < 10; ++i) {
    net::WireRecord r;
    r.ts = util::SimTime(static_cast<std::int64_t>(rng.next_u64() >> 2));
    r.conn_id = static_cast<std::uint32_t>(rng.next_u64());
    r.is_amqp = rng.chance(0.5);
    r.bytes = random_bytes(rng, 400);
    for (std::size_t k = 0; k < rng.next_below(5); ++k) {
      r.identifiers.push_back(static_cast<std::uint32_t>(rng.next_u64()));
    }
    records.push_back(std::move(r));
  }
  const auto decoded = net::decode_capture(net::encode_capture(records));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*decoded)[i].bytes, records[i].bytes);
    EXPECT_EQ((*decoded)[i].identifiers, records[i].identifiers);
  }
}

TEST_P(CodecFuzz, NormalizeUriIdempotent) {
  util::Rng rng(GetParam() * 389);
  static constexpr char kChars[] =
      "abcdef0123456789-./<>?=_";
  for (int trial = 0; trial < 200; ++trial) {
    std::string path = "/";
    const auto len = rng.next_below(60);
    for (std::size_t i = 0; i < len; ++i) {
      path += kChars[rng.next_below(sizeof kChars - 1)];
    }
    const auto once = net::normalize_uri(path);
    EXPECT_EQ(net::normalize_uri(once), once) << path;
  }
}

TEST_P(CodecFuzz, DbDecodeGarbageNeverCrashes) {
  wire::ApiCatalog catalog;
  catalog.add_rest(wire::ServiceKind::Nova, wire::HttpMethod::Get, "/a");
  util::Rng rng(GetParam() * 577);
  for (int trial = 0; trial < 200; ++trial) {
    (void)core::decode_fingerprint_db(random_bytes(rng, 256), catalog);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CodecFuzz,
    ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace gretel
