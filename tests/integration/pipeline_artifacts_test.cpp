// The persisted-artifact pipeline the CLI tools drive: train -> save DB ->
// write capture -> (fresh process boundary) -> load DB -> read capture ->
// analyze -> export JSON.  Everything in-memory/file, no subprocesses.
#include <gtest/gtest.h>

#include <cstdio>

#include "gretel/analyzer.h"
#include "gretel/db_io.h"
#include "gretel/json_export.h"
#include "gretel/training.h"
#include "net/capture_file.h"
#include "tempest/workload.h"

namespace gretel::core {
namespace {

TEST(PipelineArtifacts, TrainSaveCaptureLoadAnalyze) {
  const std::string db_path = "/tmp/gretel_pipeline_test.db";
  const std::string cap_path = "/tmp/gretel_pipeline_test.cap";

  const auto catalog = tempest::TempestCatalog::build(91, 0.04);

  // --- "training process": learn and persist -----------------------------
  {
    auto deployment = stack::Deployment::standard(3);
    const auto training = learn_fingerprints(catalog, deployment);
    ASSERT_TRUE(
        save_fingerprint_db(db_path, training.db, catalog.apis()));
  }

  // --- "capture process": record a faulty workload ------------------------
  std::uint32_t faulty_instance = 0;
  wire::OpTemplateId faulty_template;
  {
    auto deployment = stack::Deployment::standard(3);
    tempest::WorkloadSpec spec;
    spec.concurrent_tests = 12;
    spec.faults = 1;
    spec.seed = 5;
    const auto w = make_parallel_workload(catalog, spec);
    faulty_instance =
        static_cast<std::uint32_t>(w.faulty_launch_idx.front() + 1);
    faulty_template = w.launches[w.faulty_launch_idx.front()].op->id;

    stack::WorkflowExecutor executor(&deployment, &catalog.apis(),
                                     &catalog.infra(), 50);
    ASSERT_TRUE(write_capture_file(cap_path, executor.execute(w.launches)));
  }

  // --- "analysis process": everything reloaded from disk ------------------
  auto deployment = stack::Deployment::standard(3);
  const auto db = load_fingerprint_db(db_path, catalog.apis());
  ASSERT_TRUE(db.has_value());
  const auto records = net::read_capture_file(cap_path);
  ASSERT_TRUE(records.has_value());
  ASSERT_FALSE(records->empty());

  Analyzer::Options options;
  options.config.fp_max = db->max_fingerprint_size();
  options.config.p_rate = 150.0;
  options.run_root_cause = false;
  Analyzer analyzer(&*db, &catalog.apis(), &deployment, options);
  for (const auto& r : *records) analyzer.on_wire(r);
  analyzer.finish();

  ASSERT_GE(analyzer.detector_stats().operational_reports, 1u);
  bool identified = false;
  bool covers_instance = false;
  for (const auto& d : analyzer.diagnoses()) {
    for (auto idx : d.fault.matched_fingerprints) {
      identified = identified || db->get(idx).op == faulty_template;
    }
    for (const auto& ev : d.fault.error_events) {
      covers_instance = covers_instance ||
                        (ev.truth_instance.valid() &&
                         ev.truth_instance.value() == faulty_instance);
    }
  }
  EXPECT_TRUE(identified);
  EXPECT_TRUE(covers_instance);

  // --- JSON export is well-formed enough for downstream tooling -----------
  const auto json = to_json(analyzer.diagnoses(), catalog.apis(), *db);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"matched_operations\""), std::string::npos);

  std::remove(db_path.c_str());
  std::remove(cap_path.c_str());
}

}  // namespace
}  // namespace gretel::core
