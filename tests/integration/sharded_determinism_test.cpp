// Determinism contract of the sharded pipeline (see docs/ARCHITECTURE.md):
// for a fixed capture, the set *and order* of diagnoses, every report field,
// and the detector stats are identical for any `num_shards` and any
// `num_match_workers`.  num_shards == 1 bypasses the pipeline entirely, so
// the serial run doubles as the reference.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "tempest/workload.h"
#include "util/simd.h"

namespace gretel::core {
namespace {

using util::SimDuration;
using util::SimTime;

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(21, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  TrainingReport training = learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

// Records one workload once; every analyzer configuration replays the same
// capture so differences can only come from the pipeline itself.
std::vector<net::WireRecord> record_workload(
    const tempest::WorkloadSpec& spec, std::uint64_t exec_seed) {
  auto& e = env();
  const auto w = make_parallel_workload(e.catalog, spec);
  stack::WorkflowExecutor executor(&e.deployment, &e.catalog.apis(),
                                   &e.catalog.infra(), exec_seed);
  return executor.execute(w.launches);
}

std::unique_ptr<Analyzer> replay(const std::vector<net::WireRecord>& recs,
                                 std::size_t num_shards,
                                 std::size_t num_match_workers,
                                 std::size_t ingest_batch = 0) {
  auto& e = env();
  Analyzer::Options opt;
  opt.config.fp_max = e.training.fp_max;
  opt.config.p_rate = 150.0;
  opt.config.num_shards = num_shards;
  opt.config.num_match_workers = num_match_workers;
  if (ingest_batch != 0) opt.config.ingest_batch = ingest_batch;
  auto analyzer = std::make_unique<Analyzer>(
      &e.training.db, &e.catalog.apis(), &e.deployment, opt);
  if (ingest_batch == 0) {
    for (const auto& r : recs) analyzer->on_wire(r);
  } else {
    analyzer->on_wire_batch(recs);
  }
  analyzer->finish();
  return analyzer;
}

void expect_identical(const Analyzer& reference, const Analyzer& other,
                      const std::string& label) {
  SCOPED_TRACE(label);
  const auto& a = reference.diagnoses();
  const auto& b = other.diagnoses();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("diagnosis " + std::to_string(i));
    const auto& fa = a[i].fault;
    const auto& fb = b[i].fault;
    EXPECT_EQ(fa.kind, fb.kind);
    EXPECT_EQ(fa.offending_api, fb.offending_api);
    EXPECT_EQ(fa.detected_at, fb.detected_at);
    EXPECT_EQ(fa.matched_fingerprints, fb.matched_fingerprints);
    EXPECT_EQ(fa.theta, fb.theta);
    EXPECT_EQ(fa.beta_final, fb.beta_final);
    EXPECT_EQ(fa.candidates, fb.candidates);
    EXPECT_EQ(fa.window_start, fb.window_start);
    EXPECT_EQ(fa.window_end, fb.window_end);
    EXPECT_EQ(fa.window_losses, fb.window_losses);
    EXPECT_EQ(fa.degraded_confidence, fb.degraded_confidence);
    ASSERT_EQ(fa.error_events.size(), fb.error_events.size());
    for (std::size_t j = 0; j < fa.error_events.size(); ++j) {
      EXPECT_EQ(fa.error_events[j].api, fb.error_events[j].api);
      EXPECT_EQ(fa.error_events[j].ts, fb.error_events[j].ts);
      EXPECT_EQ(fa.error_events[j].status, fb.error_events[j].status);
      EXPECT_EQ(fa.error_events[j].conn_id, fb.error_events[j].conn_id);
    }
    ASSERT_EQ(fa.latency.has_value(), fb.latency.has_value());
    if (fa.latency) {
      EXPECT_EQ(fa.latency->api, fb.latency->api);
      EXPECT_EQ(fa.latency->when, fb.latency->when);
      EXPECT_EQ(fa.latency->alarm.t_seconds, fb.latency->alarm.t_seconds);
      EXPECT_EQ(fa.latency->alarm.magnitude, fb.latency->alarm.magnitude);
    }
    const auto& ra = a[i].root_cause;
    const auto& rb = b[i].root_cause;
    EXPECT_EQ(ra.expanded_search, rb.expanded_search);
    EXPECT_EQ(ra.degraded, rb.degraded);
    ASSERT_EQ(ra.causes.size(), rb.causes.size());
    for (std::size_t j = 0; j < ra.causes.size(); ++j) {
      EXPECT_EQ(ra.causes[j].kind, rb.causes[j].kind);
      EXPECT_EQ(ra.causes[j].node, rb.causes[j].node);
      EXPECT_EQ(ra.causes[j].detail, rb.causes[j].detail);
      EXPECT_EQ(ra.causes[j].score, rb.causes[j].score);
    }
  }
  const auto& sa = reference.detector_stats();
  const auto& sb = other.detector_stats();
  EXPECT_EQ(sa.events, sb.events);
  EXPECT_EQ(sa.rest_errors, sb.rest_errors);
  EXPECT_EQ(sa.rpc_errors, sb.rpc_errors);
  EXPECT_EQ(sa.operational_reports, sb.operational_reports);
  EXPECT_EQ(sa.performance_reports, sb.performance_reports);
  EXPECT_EQ(sa.suppressed_triggers, sb.suppressed_triggers);
}

TEST(ShardedDeterminism, DiagnosesInvariantAcrossShardCounts) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 20;
  spec.faults = 3;
  spec.seed = 31;
  spec.window = SimDuration::seconds(120);
  const auto records = record_workload(spec, 310);

  const auto reference = replay(records, 1, 0);
  ASSERT_GE(reference->detector_stats().operational_reports, 1u);
  ASSERT_FALSE(reference->diagnoses().empty());

  for (std::size_t shards : {2u, 4u, 8u}) {
    const auto run = replay(records, shards, 0);
    expect_identical(*reference, *run,
                     "num_shards=" + std::to_string(shards));
  }
}

TEST(ShardedDeterminism, MatchWorkersDontChangeScores) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 25;
  spec.faults = 2;
  spec.seed = 32;
  const auto records = record_workload(spec, 320);

  const auto reference = replay(records, 1, 0);
  ASSERT_FALSE(reference->diagnoses().empty());
  for (std::size_t workers : {1u, 3u}) {
    const auto run = replay(records, 1, workers);
    expect_identical(*reference, *run,
                     "num_match_workers=" + std::to_string(workers));
  }
}

TEST(ShardedDeterminism, CombinedShardingAndMatchFanOut) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 20;
  spec.faults = 3;
  spec.seed = 33;
  spec.window = SimDuration::seconds(120);
  const auto records = record_workload(spec, 330);

  const auto reference = replay(records, 1, 0);
  const auto run = replay(records, 4, 2);
  expect_identical(*reference, *run, "num_shards=4 num_match_workers=2");
}

TEST(ShardedDeterminism, BatchedIngestIdenticalToPerEvent) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 20;
  spec.faults = 3;
  spec.seed = 35;
  spec.window = SimDuration::seconds(120);
  const auto records = record_workload(spec, 350);

  // Per-event serial run is the reference for everything.
  const auto reference = replay(records, 1, 0);
  ASSERT_FALSE(reference->diagnoses().empty());

  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    // Batched ingest must be byte-identical to per-event ingest at the same
    // shard count — whatever the batch size, including batches that are
    // prime-sized (never aligned with drain boundaries) and a single batch
    // holding the whole capture.
    for (const std::size_t batch :
         {std::size_t{7}, std::size_t{128}, records.size()}) {
      const auto run = replay(records, shards, 0, batch);
      expect_identical(*reference, *run,
                       "batched num_shards=" + std::to_string(shards) +
                           " ingest_batch=" + std::to_string(batch));
    }
    // And per-event at this shard count agrees too (sanity anchor).
    const auto per_event = replay(records, shards, 0);
    expect_identical(*reference, *per_event,
                     "per-event num_shards=" + std::to_string(shards));
  }
}

TEST(ShardedDeterminism, ScalarKernelsIdenticalToSimd) {
  // The SIMD determinism contract end-to-end: forcing every util/simd.h
  // kernel onto its scalar reference must leave the full diagnosis stream
  // byte-identical, at every shard count.  (CI additionally builds a whole
  // leg with -DGRETEL_FORCE_SCALAR=ON; this test covers the in-process
  // runtime switch so one binary proves both families agree.)
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 20;
  spec.faults = 3;
  spec.seed = 36;
  spec.window = SimDuration::seconds(120);
  const auto records = record_workload(spec, 360);

  const auto reference = replay(records, 1, 0);  // compiled kernel family
  ASSERT_FALSE(reference->diagnoses().empty());

  simd::set_force_scalar(true);
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const auto run = replay(records, shards, 0);
    expect_identical(*reference, *run,
                     std::string("scalar kernels, num_shards=") +
                         std::to_string(shards));
  }
  simd::set_force_scalar(false);
}

TEST(ShardedDeterminism, CleanWorkloadStaysClean) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 15;
  spec.faults = 0;
  spec.seed = 34;
  const auto records = record_workload(spec, 340);

  const auto reference = replay(records, 1, 0);
  EXPECT_TRUE(reference->diagnoses().empty());
  const auto run = replay(records, 4, 2);
  expect_identical(*reference, *run, "clean capture, num_shards=4");
  EXPECT_TRUE(run->diagnoses().empty());
  EXPECT_EQ(run->detector_stats().events, run->tap_stats().decoded);
}

}  // namespace
}  // namespace gretel::core
