// Stress the concurrent pipeline with the hardest mix: operational faults
// (REST errors anchoring Algorithm 2) interleaved with an injected latency
// fault (level-shift alarms) inside one heavily concurrent capture.  The
// sharded run must surface both fault kinds and agree with the serial path
// report-for-report.  This file owns its environment because it mutates the
// deployment with a latency injection.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "tempest/workload.h"

namespace gretel::core {
namespace {

using util::SimDuration;
using util::SimTime;

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(33, 0.05);
  stack::Deployment deployment = stack::Deployment::standard(3);
  TrainingReport training = learn_fingerprints(catalog, deployment);

  // One capture shared by every configuration: ~60 concurrent Tempest
  // operations over four minutes, three injected operational faults, and
  // 60 ms of extra link latency on the Glance server for the second half.
  std::vector<net::WireRecord> records = [this] {
    tempest::WorkloadSpec spec;
    spec.concurrent_tests = 60;
    spec.faults = 3;
    spec.seed = 41;
    spec.window = SimDuration::seconds(240);
    const auto w = make_parallel_workload(catalog, spec);
    deployment.inject_link_latency(
        wire::ServiceKind::Glance,
        SimTime::epoch() + SimDuration::seconds(120),
        SimTime::epoch() + SimDuration::seconds(260),
        SimDuration::millis(60));
    stack::WorkflowExecutor executor(&deployment, &catalog.apis(),
                                     &catalog.infra(), 410);
    return executor.execute(w.launches);
  }();
};

Env& env() {
  static Env e;
  return e;
}

std::unique_ptr<Analyzer> replay(std::size_t num_shards,
                                 std::size_t num_match_workers) {
  auto& e = env();
  Analyzer::Options opt;
  opt.config.fp_max = e.training.fp_max;
  opt.config.p_rate = 150.0;
  opt.config.num_shards = num_shards;
  opt.config.num_match_workers = num_match_workers;
  auto analyzer = std::make_unique<Analyzer>(
      &e.training.db, &e.catalog.apis(), &e.deployment, opt);
  for (const auto& r : e.records) analyzer->on_wire(r);
  analyzer->finish();
  return analyzer;
}

TEST(ConcurrentStress, SerialReferenceSeesBothFaultKinds) {
  const auto analyzer = replay(1, 0);
  const auto& stats = analyzer->detector_stats();
  EXPECT_GE(stats.operational_reports, 1u);
  EXPECT_GE(stats.performance_reports, 1u);
  bool operational = false;
  bool performance = false;
  for (const auto& d : analyzer->diagnoses()) {
    operational = operational || d.fault.kind == FaultKind::Operational;
    performance = performance || d.fault.kind == FaultKind::Performance;
  }
  EXPECT_TRUE(operational);
  EXPECT_TRUE(performance);
}

TEST(ConcurrentStress, ShardedRunMatchesSerialReportForReport) {
  const auto reference = replay(1, 0);
  ASSERT_FALSE(reference->diagnoses().empty());

  for (std::size_t shards : {2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    const auto run = replay(shards, 2);
    const auto& a = reference->diagnoses();
    const auto& b = run->diagnoses();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      SCOPED_TRACE("diagnosis " + std::to_string(i));
      EXPECT_EQ(a[i].fault.kind, b[i].fault.kind);
      EXPECT_EQ(a[i].fault.offending_api, b[i].fault.offending_api);
      EXPECT_EQ(a[i].fault.detected_at, b[i].fault.detected_at);
      EXPECT_EQ(a[i].fault.matched_fingerprints,
                b[i].fault.matched_fingerprints);
      EXPECT_EQ(a[i].fault.theta, b[i].fault.theta);
      EXPECT_EQ(a[i].fault.error_events.size(),
                b[i].fault.error_events.size());
      ASSERT_EQ(a[i].fault.latency.has_value(),
                b[i].fault.latency.has_value());
      if (a[i].fault.latency) {
        EXPECT_EQ(a[i].fault.latency->api, b[i].fault.latency->api);
        EXPECT_EQ(a[i].fault.latency->when, b[i].fault.latency->when);
      }
    }
    const auto& sa = reference->detector_stats();
    const auto& sb = run->detector_stats();
    EXPECT_EQ(sa.events, sb.events);
    EXPECT_EQ(sa.rest_errors, sb.rest_errors);
    EXPECT_EQ(sa.rpc_errors, sb.rpc_errors);
    EXPECT_EQ(sa.operational_reports, sb.operational_reports);
    EXPECT_EQ(sa.performance_reports, sb.performance_reports);
    EXPECT_EQ(sa.suppressed_triggers, sb.suppressed_triggers);
  }
}

TEST(ConcurrentStress, PerformanceAlarmsConfinedToInjectionWindow) {
  // §7.3 item 4: level shifts alarm when the injected latency starts, not
  // on clean traffic.  Under sharding, every performance diagnosis must
  // still fall after the injection point (t = 120 s).
  const auto analyzer = replay(4, 2);
  std::size_t performance = 0;
  for (const auto& d : analyzer->diagnoses()) {
    if (d.fault.kind != FaultKind::Performance) continue;
    ++performance;
    ASSERT_TRUE(d.fault.latency.has_value());
    EXPECT_GE(d.fault.latency->alarm.t_seconds, 120.0);
  }
  EXPECT_GE(performance, 1u);
}

TEST(ConcurrentStress, RepeatedShardedRunsAreStable) {
  // Thread scheduling must not leak into results: two identical sharded
  // runs of the same capture produce identical report streams.
  const auto first = replay(4, 2);
  const auto second = replay(4, 2);
  const auto& a = first->diagnoses();
  const auto& b = second->diagnoses();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fault.kind, b[i].fault.kind);
    EXPECT_EQ(a[i].fault.offending_api, b[i].fault.offending_api);
    EXPECT_EQ(a[i].fault.detected_at, b[i].fault.detected_at);
    EXPECT_EQ(a[i].fault.theta, b[i].fault.theta);
  }
}

}  // namespace
}  // namespace gretel::core
