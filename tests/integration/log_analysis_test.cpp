#include "logs/log_analysis.h"

#include <gtest/gtest.h>

namespace gretel::logs {
namespace {

using stack::LogLevel;
using stack::LogLine;
using util::SimDuration;
using util::SimTime;

LogLine line(double t_s, LogLevel level, std::string message) {
  LogLine out;
  out.ts = SimTime::epoch() +
           SimDuration::nanos(static_cast<std::int64_t>(t_s * 1e9));
  out.level = level;
  out.message = std::move(message);
  return out;
}

TEST(LogAnalyzer, GrepFiltersByLevel) {
  LogAnalyzer a;
  a.ingest(line(1.0, LogLevel::Trace, "handling GET"));
  a.ingest(line(2.0, LogLevel::Warning, "No valid host was found"));
  a.ingest(line(3.0, LogLevel::Error, "exploded"));

  EXPECT_EQ(a.grep(LogLevel::Trace).size(), 3u);
  EXPECT_EQ(a.grep(LogLevel::Warning).size(), 2u);
  EXPECT_EQ(a.grep(LogLevel::Error).size(), 1u);
}

TEST(LogAnalyzer, GrepFiltersByPattern) {
  LogAnalyzer a;
  a.ingest(line(1.0, LogLevel::Warning, "No valid host was found"));
  a.ingest(line(2.0, LogLevel::Warning, "Timeout is too large"));
  EXPECT_EQ(a.grep(LogLevel::Warning, "valid host").size(), 1u);
  EXPECT_EQ(a.grep(LogLevel::Warning, "nothing").size(), 0u);
}

TEST(LogAnalyzer, FindingsSortedByTime) {
  LogAnalyzer a;
  a.ingest(line(5.0, LogLevel::Warning, "b"));
  a.ingest(line(1.0, LogLevel::Warning, "a"));
  const auto f = a.grep(LogLevel::Warning);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].line.message, "a");
  EXPECT_EQ(f[1].line.message, "b");
}

TEST(LogAnalyzer, CollationDelaysAvailability) {
  LogAnalyzer::Options options;
  options.collation_period = SimDuration::seconds(60);
  LogAnalyzer a(options);
  a.ingest(line(10.0, LogLevel::Warning, "w"));
  a.ingest(line(61.0, LogLevel::Warning, "w2"));
  const auto f = a.grep(LogLevel::Warning);
  ASSERT_EQ(f.size(), 2u);
  // Written at t=10 -> shipped at the t=60 batch; t=61 -> t=120 batch.
  EXPECT_DOUBLE_EQ(f[0].available_at.to_seconds(), 60.0);
  EXPECT_DOUBLE_EQ(f[1].available_at.to_seconds(), 120.0);
}

TEST(LogAnalyzer, BulkIngest) {
  LogAnalyzer a;
  a.ingest(std::vector<LogLine>{line(1.0, LogLevel::Info, "x"),
                                line(2.0, LogLevel::Info, "y")});
  EXPECT_EQ(a.size(), 2u);
}

TEST(LogAnalyzer, EmptyAnalyzer) {
  LogAnalyzer a;
  EXPECT_TRUE(a.grep(LogLevel::Trace).empty());
  EXPECT_EQ(a.size(), 0u);
}

}  // namespace
}  // namespace gretel::logs
