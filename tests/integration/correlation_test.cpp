// The correlation-identifier enhancement (§5.3.1): end-to-end behaviour.
#include <gtest/gtest.h>

#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "net/capture.h"
#include "stack/workflow.h"
#include "tempest/workload.h"

namespace gretel::core {
namespace {

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(51, 0.05);
  stack::Deployment deployment = stack::Deployment::standard(3);
  TrainingReport training = learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

std::vector<net::WireRecord> capture(const tempest::GeneratedWorkload& w,
                                     bool correlation_ids,
                                     std::uint64_t seed) {
  stack::WorkflowExecutor::Options options;
  options.emit_correlation_ids = correlation_ids;
  stack::WorkflowExecutor executor(&env().deployment, &env().catalog.apis(),
                                   &env().catalog.infra(), seed, options);
  return executor.execute(w.launches);
}

TEST(CorrelationIds, CarriedThroughBothCodecs) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 3;
  spec.faults = 0;
  spec.seed = 1;
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto records = capture(w, /*correlation_ids=*/true, 11);

  net::CaptureTap tap(&env().catalog.apis(),
                      env().deployment.service_by_port());
  std::size_t rest_with_corr = 0;
  std::size_t rpc_with_corr = 0;
  std::size_t noise_with_corr = 0;
  for (const auto& r : records) {
    const auto ev = tap.decode(r);
    ASSERT_TRUE(ev.has_value());
    if (ev->truth_noise) {
      noise_with_corr += ev->correlation_id != 0;
      continue;
    }
    // The correlation id equals the instance id the executor stamped.
    EXPECT_EQ(ev->correlation_id, ev->truth_instance.value());
    (ev->kind == wire::ApiKind::Rest ? rest_with_corr : rpc_with_corr) +=
        ev->correlation_id != 0;
  }
  EXPECT_GT(rest_with_corr, 0u);
  EXPECT_GT(rpc_with_corr, 0u);
  EXPECT_EQ(noise_with_corr, 0u) << "infrastructure chatter is unstamped";
}

TEST(CorrelationIds, AbsentByDefault) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 2;
  spec.faults = 0;
  spec.seed = 2;
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto records = capture(w, /*correlation_ids=*/false, 12);
  net::CaptureTap tap(&env().catalog.apis(),
                      env().deployment.service_by_port());
  for (const auto& r : records) {
    const auto ev = tap.decode(r);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->correlation_id, 0u);
  }
}

// With correlation ids the snapshot reduces to the faulty operation's own
// packets: the injected operation must always be identified and matched
// sets shrink relative to the uncorrelated run.
TEST(CorrelationIds, ImprovePrecision) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 30;
  spec.faults = 3;
  spec.window = util::SimDuration::seconds(60);
  spec.seed = 3;
  const auto w = make_parallel_workload(env().catalog, spec);

  std::size_t matched[2] = {0, 0};
  for (int variant = 0; variant < 2; ++variant) {
    const bool corr = variant == 1;
    const auto records = capture(w, corr, 13);
    Analyzer::Options options;
    options.config.fp_max = env().training.fp_max;
    options.config.p_rate = 150.0;
    options.run_root_cause = false;
    Analyzer analyzer(&env().training.db, &env().catalog.apis(),
                      &env().deployment, options);
    for (const auto& r : records) analyzer.on_wire(r);
    analyzer.finish();

    ASSERT_FALSE(analyzer.diagnoses().empty());
    for (const auto& d : analyzer.diagnoses()) {
      matched[variant] += d.fault.matched_fingerprints.size();
      if (corr) {
        // The true operation is identified via its own packets.
        bool identified = false;
        for (const auto& ev : d.fault.error_events) {
          if (!ev.truth_template.valid()) continue;
          for (auto idx : d.fault.matched_fingerprints) {
            identified = identified ||
                         env().training.db.get(idx).op == ev.truth_template;
          }
        }
        EXPECT_TRUE(identified);
      }
    }
  }
  EXPECT_LE(matched[1], matched[0]);
}

TEST(CorrelationIds, DisabledInConfigIgnoresThem) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 10;
  spec.faults = 1;
  spec.seed = 4;
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto records = capture(w, /*correlation_ids=*/true, 14);

  Analyzer::Options options;
  options.config.fp_max = env().training.fp_max;
  options.config.p_rate = 150.0;
  options.config.use_correlation_ids = false;
  options.run_root_cause = false;
  Analyzer analyzer(&env().training.db, &env().catalog.apis(),
                    &env().deployment, options);
  for (const auto& r : records) analyzer.on_wire(r);
  analyzer.finish();
  // Still detects the fault (ids ignored, classic path).
  EXPECT_GE(analyzer.detector_stats().operational_reports, 1u);
}

}  // namespace
}  // namespace gretel::core
