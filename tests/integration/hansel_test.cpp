#include "hansel/hansel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stack/workflow.h"
#include "tempest/workload.h"

namespace gretel::hansel {
namespace {

using util::SimDuration;
using util::SimTime;
using wire::Event;

Event make_event(double t_s, std::vector<std::uint32_t> idents,
                 bool error = false, std::uint32_t instance = 0) {
  Event ev;
  ev.ts = SimTime::epoch() +
          SimDuration::nanos(static_cast<std::int64_t>(t_s * 1e9));
  ev.identifiers = std::move(idents);
  ev.dir = wire::Direction::Response;
  ev.status = error ? 500 : 200;
  if (instance) ev.truth_instance = wire::OpInstanceId(instance);
  return ev;
}

TEST(Hansel, NoErrorNoChain) {
  Hansel h;
  h.on_event(make_event(0.0, {1}));
  h.on_event(make_event(1.0, {1}));
  h.flush();
  EXPECT_TRUE(h.chains().empty());
  EXPECT_EQ(h.stats().events, 2u);
}

TEST(Hansel, ErrorChainLinksSharedIdentifiers) {
  Hansel h;
  h.on_event(make_event(0.0, {7, 100}));
  h.on_event(make_event(1.0, {7, 200}));
  h.on_event(make_event(2.0, {200}, /*error=*/true));
  h.on_event(make_event(3.0, {999}));  // unrelated
  h.flush();
  ASSERT_EQ(h.chains().size(), 1u);
  EXPECT_EQ(h.chains()[0].events.size(), 3u);
}

TEST(Hansel, ChainEventsTimeSorted) {
  Hansel h;
  h.on_event(make_event(2.0, {5}, true));
  h.on_event(make_event(0.5, {5}));
  h.on_event(make_event(1.5, {5}));
  h.flush();
  ASSERT_EQ(h.chains().size(), 1u);
  const auto& evs = h.chains()[0].events;
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_LE(evs[i - 1].ts, evs[i].ts);
  }
}

TEST(Hansel, ReportDelayedToBucketClose) {
  // The paper's §9.2 point: a 30 s buffer means ~30 s reporting latency.
  Hansel h;
  h.on_event(make_event(0.0, {3}, true));
  h.on_event(make_event(1.0, {3}));
  EXPECT_TRUE(h.chains().empty()) << "nothing reported inside the bucket";
  h.on_event(make_event(31.0, {4}));  // crosses the bucket boundary
  ASSERT_EQ(h.chains().size(), 1u);
  EXPECT_GE((h.chains()[0].reported_at - SimTime::epoch()).to_seconds(),
            30.0);
}

TEST(Hansel, BucketsSeparateUnrelatedErrors) {
  Hansel h;
  h.on_event(make_event(0.0, {1}, true));
  h.on_event(make_event(40.0, {1}, true));  // same tenant, next bucket
  h.flush();
  EXPECT_EQ(h.chains().size(), 2u);
}

TEST(Hansel, TransitiveLinking) {
  Hansel h;
  h.on_event(make_event(0.0, {1, 2}));
  h.on_event(make_event(1.0, {2, 3}));
  h.on_event(make_event(2.0, {3}, true));
  h.flush();
  ASSERT_EQ(h.chains().size(), 1u);
  EXPECT_EQ(h.chains()[0].events.size(), 3u);
}

TEST(Hansel, OverLinksOperationsSharingTenant) {
  // GRETEL-vs-HANSEL point (5) in §9.2: common identifiers (tenant id) link
  // the faulty operation with unrelated successful ones.
  Hansel h;
  h.on_event(make_event(0.0, {42, 100}, false, /*instance=*/1));
  h.on_event(make_event(1.0, {42, 200}, false, /*instance=*/2));
  h.on_event(make_event(2.0, {42, 300}, true, /*instance=*/3));
  h.flush();
  ASSERT_EQ(h.chains().size(), 1u);
  EXPECT_EQ(h.chains()[0].distinct_instances(), 3u);
}

TEST(Hansel, RealWorkloadChainsCoverInjectedFault) {
  auto catalog = tempest::TempestCatalog::build(41, 0.03);
  auto deployment = stack::Deployment::standard(3);
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 20;
  spec.faults = 1;
  spec.seed = 9;
  const auto w = make_parallel_workload(catalog, spec);

  stack::WorkflowExecutor executor(&deployment, &catalog.apis(),
                                   &catalog.infra(), 55);
  const auto records = executor.execute(w.launches);

  net::CaptureTap tap(&catalog.apis(), deployment.service_by_port());
  Hansel h;
  for (const auto& r : records) {
    if (auto ev = tap.decode(r)) h.on_event(*ev);
  }
  h.flush();

  ASSERT_FALSE(h.chains().empty());
  const auto faulty_instance =
      static_cast<std::uint32_t>(w.faulty_launch_idx.front() + 1);
  bool covered = false;
  std::size_t linked = 0;
  for (const auto& chain : h.chains()) {
    for (const auto& ev : chain.events) {
      if (ev.truth_instance.valid() &&
          ev.truth_instance.value() == faulty_instance) {
        covered = true;
        linked = chain.distinct_instances();
      }
    }
  }
  EXPECT_TRUE(covered);
  // The chain covers at least the faulty operation; over-linking through
  // shared tenant ids (§9.2 point 5) is asserted deterministically in
  // OverLinksOperationsSharingTenant above.
  EXPECT_GE(linked, 1u);
}

TEST(HanselExtract, NumericTokens) {
  const auto ids = Hansel::extract_identifiers(
      R"({"tenant_id": "1003", "size": 42, "port": 8080})");
  // 1003 and 8080 qualify (4-10 digits); 42 is too short.
  EXPECT_NE(std::find(ids.begin(), ids.end(), 1003u), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), 8080u), ids.end());
  EXPECT_EQ(std::find(ids.begin(), ids.end(), 42u), ids.end());
}

TEST(HanselExtract, UuidTokensHashedConsistently) {
  const auto a = Hansel::extract_identifiers(
      "id=0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9");
  const auto b = Hansel::extract_identifiers(
      "other prefix 0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9 suffix");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0], b[0]);
  const auto c = Hansel::extract_identifiers(
      "id=0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8fa");  // one char differs
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NE(a[0], c[0]);
}

TEST(HanselExtract, IgnoresShortProtocolNumbers) {
  // Status codes and version digits must not become identifiers.
  const auto ids =
      Hansel::extract_identifiers("HTTP/1.1 409 Conflict\r\n\r\n");
  EXPECT_TRUE(ids.empty());
}

TEST(HanselExtract, EmptyPayload) {
  EXPECT_TRUE(Hansel::extract_identifiers("").empty());
  EXPECT_TRUE(Hansel::extract_identifiers("no tokens here!").empty());
}

TEST(HanselExtract, OnMessageStitchesViaPayload) {
  Hansel h;
  // Two messages share no transport identifiers, but both carry the same
  // tenant id in their payloads.
  wire::Event a = make_event(0.0, {});
  wire::Event b = make_event(1.0, {}, /*error=*/true);
  h.on_message(a, R"({"tenant_id": "1007"})");
  h.on_message(b, R"({"tenant_id": "1007", "oops": true})");
  h.flush();
  ASSERT_EQ(h.chains().size(), 1u);
  EXPECT_EQ(h.chains()[0].events.size(), 2u);
}

TEST(Hansel, StatsCountUnions) {
  Hansel h;
  h.on_event(make_event(0.0, {1}));
  h.on_event(make_event(1.0, {1}));
  EXPECT_GE(h.stats().unions, 1u);
}

}  // namespace
}  // namespace gretel::hansel
