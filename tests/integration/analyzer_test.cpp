#include "gretel/analyzer.h"

#include <gtest/gtest.h>

#include <set>

#include "gretel/training.h"
#include "monitor/metrics.h"
#include "tempest/workload.h"

namespace gretel::core {
namespace {

using util::SimDuration;
using util::SimTime;

// Shared trained environment for the analyzer tests.
struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(21, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  TrainingReport training = learn_fingerprints(catalog, deployment);

  Analyzer::Options options() const {
    Analyzer::Options opt;
    opt.config.fp_max = training.fp_max;
    opt.config.p_rate = 150.0;
    return opt;
  }
};

Env& env() {
  static Env e;
  return e;
}

// Runs a workload through a fresh analyzer; returns it for inspection.
std::unique_ptr<Analyzer> run_workload(
    const tempest::GeneratedWorkload& workload, std::uint64_t exec_seed,
    bool with_metrics = true) {
  auto& e = env();
  auto analyzer = std::make_unique<Analyzer>(
      &e.training.db, &e.catalog.apis(), &e.deployment, e.options());

  stack::WorkflowExecutor executor(&e.deployment, &e.catalog.apis(),
                                   &e.catalog.infra(), exec_seed);
  const auto records = executor.execute(workload.launches);
  if (with_metrics && !records.empty()) {
    monitor::ResourceMonitor mon(&e.deployment, SimDuration::seconds(1), 3);
    mon.sample_range(SimTime::epoch(),
                     records.back().ts + SimDuration::seconds(3),
                     analyzer->metrics());
  }
  for (const auto& r : records) analyzer->on_wire(r);
  analyzer->finish();
  return analyzer;
}

TEST(Analyzer, CleanWorkloadProducesNoReports) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 15;
  spec.faults = 0;
  spec.seed = 1;
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto analyzer = run_workload(w, 100, /*with_metrics=*/false);
  EXPECT_EQ(analyzer->detector_stats().rest_errors, 0u);
  EXPECT_EQ(analyzer->detector_stats().operational_reports, 0u);
  EXPECT_TRUE(analyzer->diagnoses().empty());
  EXPECT_EQ(analyzer->tap_stats().decode_failures, 0u);
  EXPECT_EQ(analyzer->tap_stats().unknown_api, 0u);
}

TEST(Analyzer, SingleFaultDetectedAndIdentified) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 15;
  spec.faults = 1;
  spec.seed = 2;
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto analyzer = run_workload(w, 101);

  ASSERT_GE(analyzer->detector_stats().operational_reports, 1u);
  const auto& launch = w.launches[w.faulty_launch_idx.front()];

  // At least one diagnosis must name the injected operation.
  bool identified = false;
  for (const auto& d : analyzer->diagnoses()) {
    for (auto idx : d.fault.matched_fingerprints) {
      identified = identified ||
                   env().training.db.get(idx).op == launch.op->id;
    }
  }
  EXPECT_TRUE(identified);
}

TEST(Analyzer, ReportCarriesWindowAndErrors) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 10;
  spec.faults = 1;
  spec.seed = 3;
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto analyzer = run_workload(w, 102);
  ASSERT_FALSE(analyzer->diagnoses().empty());
  const auto& fault = analyzer->diagnoses().front().fault;
  EXPECT_LE(fault.window_start, fault.window_end);
  EXPECT_FALSE(fault.error_events.empty());
  EXPECT_GT(fault.candidates, 0u);
  EXPECT_GT(fault.beta_final, 0u);
  bool anchor_in_errors = false;
  for (const auto& ev : fault.error_events) {
    anchor_in_errors = anchor_in_errors || ev.api == fault.offending_api;
  }
  EXPECT_TRUE(anchor_in_errors);
}

TEST(Analyzer, DuplicateRelaySuppressed) {
  // One fault produces a step error + its dashboard relay; the analyzer
  // reports once per anchored fault, not once per REST error message.
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 0;
  spec.faults = 1;
  spec.seed = 4;
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto analyzer = run_workload(w, 103, false);
  EXPECT_EQ(analyzer->detector_stats().operational_reports, 1u);
}

TEST(Analyzer, MultipleFaultsEachIdentified) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 20;
  spec.faults = 4;
  spec.seed = 5;
  spec.window = SimDuration::seconds(120);
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto analyzer = run_workload(w, 104);

  // Group diagnoses by ground-truth faulty instance via their error events.
  std::set<std::uint32_t> diagnosed_instances;
  for (const auto& d : analyzer->diagnoses()) {
    for (const auto& ev : d.fault.error_events) {
      if (ev.truth_instance.valid())
        diagnosed_instances.insert(ev.truth_instance.value());
    }
  }
  for (auto idx : w.faulty_launch_idx) {
    const auto instance = static_cast<std::uint32_t>(idx + 1);
    EXPECT_TRUE(diagnosed_instances.contains(instance))
        << "fault in launch " << idx << " undiagnosed";
  }
}

TEST(Analyzer, ThetaHighUnderConcurrency) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 40;
  spec.faults = 2;
  spec.seed = 6;
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto analyzer = run_workload(w, 105);
  ASSERT_FALSE(analyzer->diagnoses().empty());
  for (const auto& d : analyzer->diagnoses()) {
    EXPECT_GE(d.fault.theta, 0.9) << "matched "
                                  << d.fault.matched_fingerprints.size();
  }
}

TEST(Analyzer, RpcErrorsCountedButDontTriggerAlone) {
  // RPC errors are relayed via REST; the detector counts them but the
  // snapshot count is driven by REST triggers (§5.3.1).
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 5;
  spec.faults = 2;
  spec.seed = 7;
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto analyzer = run_workload(w, 106, false);
  const auto& stats = analyzer->detector_stats();
  EXPECT_EQ(stats.operational_reports + stats.suppressed_triggers,
            stats.rest_errors);
}

TEST(Analyzer, FinishFlushesTrailingFault) {
  // A fault at the very end of the stream lacks its future α/2 context;
  // finish() must still produce the report.
  auto& e = env();
  const auto& ops = e.catalog.category_ops(stack::Category::Compute);
  const auto& op = e.catalog.operation(ops.back());
  stack::OperationalFault fault;
  fault.fail_step = op.steps.size() - 1;
  while (op.steps[fault.fail_step].transient) --fault.fail_step;
  fault.status = 500;

  tempest::GeneratedWorkload w;
  w.launches.push_back({&op, SimTime::epoch(), fault});
  w.faulty_launch_idx.push_back(0);
  const auto analyzer = run_workload(w, 107, false);
  EXPECT_GE(analyzer->detector_stats().operational_reports, 1u);
}

TEST(Analyzer, EventCountsMatchTap) {
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 10;
  spec.faults = 0;
  spec.seed = 8;
  const auto w = make_parallel_workload(env().catalog, spec);
  const auto analyzer = run_workload(w, 108, false);
  EXPECT_EQ(analyzer->detector_stats().events,
            analyzer->tap_stats().decoded);
  EXPECT_GT(analyzer->detector_stats().events, 0u);
}

}  // namespace
}  // namespace gretel::core
