// End-to-end replays of the paper's case studies (§3.1, §7.2).
#include <gtest/gtest.h>

#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "monitor/metrics.h"
#include "stack/faults.h"
#include "tempest/workload.h"

namespace gretel::core {
namespace {

using stack::Launch;
using util::SimDuration;
using util::SimTime;

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(31, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  TrainingReport training = learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

std::unique_ptr<Analyzer> analyze(stack::Deployment& deployment,
                                  const std::vector<Launch>& launches,
                                  std::uint64_t seed) {
  auto& e = env();
  Analyzer::Options opt;
  opt.config.fp_max = e.training.fp_max;
  opt.config.p_rate = 150.0;
  auto analyzer = std::make_unique<Analyzer>(&e.training.db,
                                             &e.catalog.apis(), &deployment,
                                             opt);
  stack::WorkflowExecutor executor(&deployment, &e.catalog.apis(),
                                   &e.catalog.infra(), seed);
  const auto records = executor.execute(launches);
  monitor::ResourceMonitor mon(&deployment, SimDuration::seconds(1), seed);
  mon.sample_range(SimTime::epoch(),
                   records.back().ts + SimDuration::seconds(3),
                   analyzer->metrics());
  for (const auto& r : records) analyzer->on_wire(r);
  analyzer->finish();
  return analyzer;
}

std::size_t step_of(const stack::OperationTemplate& op, wire::ApiId api) {
  for (std::size_t i = 0; i < op.steps.size(); ++i) {
    if (op.steps[i].api == api) return i;
  }
  ADD_FAILURE() << "api not in operation " << op.name;
  return 0;
}

// §7.2.1 — failed image uploads: a REST 413 from Glance's PUT
// v2/images/<ID>/file, root-caused to low free disk on the Glance server.
TEST(Scenario_7_2_1, ImageUploadDiskExhaustion) {
  auto& e = env();
  auto deployment = stack::Deployment::standard(3);
  const auto& op = e.catalog.operation(e.catalog.canonical().image_upload);
  const auto glance_node =
      deployment.primary_node_for(wire::ServiceKind::Glance);

  deployment.inject_disk_exhaustion(wire::ServiceKind::Glance,
                                    SimTime::epoch(),
                                    SimTime::epoch() + SimDuration::minutes(5),
                                    199'500.0);  // leaves < 1 GB free

  Launch launch{&op, SimTime::epoch() + SimDuration::seconds(20),
                stack::entity_too_large_fault(step_of(
                    op, e.catalog.well_known().glance_put_image_file))};
  const auto analyzer = analyze(deployment, {launch}, 1001);

  ASSERT_FALSE(analyzer->diagnoses().empty());
  const auto& d = analyzer->diagnoses().front();
  EXPECT_EQ(d.fault.offending_api,
            e.catalog.well_known().glance_put_image_file);

  // The image-upload operation is among the matches.
  bool matched = false;
  for (auto idx : d.fault.matched_fingerprints) {
    matched = matched || e.training.db.get(idx).op == op.id;
  }
  EXPECT_TRUE(matched);

  // Root cause: a disk-free anomaly on the Glance node.
  bool disk_cause = false;
  for (const auto& c : d.root_cause.causes) {
    disk_cause = disk_cause ||
                 (c.node == glance_node &&
                  c.kind == CauseKind::ResourceAnomaly &&
                  c.detail.find("disk-free") != std::string::npos);
  }
  EXPECT_TRUE(disk_cause);
}

// §7.2.3 — Linux bridge agent failure: a "No valid host" VM create failure
// whose root cause (the crashed neutron-plugin-linuxbridge-agent) lives on
// a compute node that never appears in the error messages -> the engine
// must expand its search upstream.
TEST(Scenario_7_2_3, LinuxBridgeAgentCrashFoundUpstream) {
  auto& e = env();
  auto deployment = stack::Deployment::standard(3);
  const auto& op = e.catalog.operation(e.catalog.canonical().vm_create);

  deployment.crash_software(wire::ServiceKind::NovaCompute,
                            "neutron-plugin-linuxbridge-agent",
                            SimTime::epoch(),
                            SimTime::epoch() + SimDuration::minutes(5));

  // The failure surfaces at Nova's POST ports.json call to Neutron —
  // Horizon reports "No valid host was found".
  Launch launch{&op, SimTime::epoch() + SimDuration::seconds(10),
                stack::no_valid_host_fault(step_of(
                    op, e.catalog.well_known().neutron_post_ports))};
  const auto analyzer = analyze(deployment, {launch}, 1002);

  ASSERT_FALSE(analyzer->diagnoses().empty());
  const auto& d = analyzer->diagnoses().front();

  bool matched_vm_create = false;
  for (auto idx : d.fault.matched_fingerprints) {
    matched_vm_create = matched_vm_create ||
                        e.training.db.get(idx).op == op.id;
  }
  EXPECT_TRUE(matched_vm_create);

  EXPECT_TRUE(d.root_cause.expanded_search)
      << "agent crash is upstream of the error endpoints";
  bool agent_cause = false;
  for (const auto& c : d.root_cause.causes) {
    agent_cause = agent_cause ||
                  (c.kind == CauseKind::SoftwareFailure &&
                   c.detail == "neutron-plugin-linuxbridge-agent");
  }
  EXPECT_TRUE(agent_cause);
}

// §7.2.4 — NTP failure: cinder list fails with 401 Unauthorized from
// Keystone; the stopped NTP agent on the Cinder host is the root cause.
TEST(Scenario_7_2_4, NtpFailureBehindUnauthorized) {
  auto& e = env();
  auto deployment = stack::Deployment::standard(3);
  const auto& op = e.catalog.operation(e.catalog.canonical().cinder_list);
  const auto storage_node =
      deployment.primary_node_for(wire::ServiceKind::Cinder);

  deployment.node(storage_node)
      .inject_outage({"ntpd", SimTime::epoch(),
                      SimTime::epoch() + SimDuration::minutes(5)});

  Launch launch{&op, SimTime::epoch() + SimDuration::seconds(10),
                stack::unauthorized_fault(step_of(
                    op, e.catalog.well_known().cinder_get_volumes))};
  const auto analyzer = analyze(deployment, {launch}, 1003);

  ASSERT_FALSE(analyzer->diagnoses().empty());
  const auto& d = analyzer->diagnoses().front();
  bool ntp_cause = false;
  for (const auto& c : d.root_cause.causes) {
    ntp_cause = ntp_cause || (c.kind == CauseKind::SoftwareFailure &&
                              c.detail == "ntpd" &&
                              c.node == storage_node);
  }
  EXPECT_TRUE(ntp_cause);
}

// §3.1.2 / §7.2.2 — API bottleneck: a CPU surge on the Neutron server slows
// Neutron APIs during concurrent VM creates; GRETEL raises performance
// faults and pins the CPU anomaly on the Neutron node.
TEST(Scenario_7_2_2, NeutronCpuSurgeCausesLatencyAnomalies) {
  auto& e = env();
  auto deployment = stack::Deployment::standard(3);
  const auto& op = e.catalog.operation(e.catalog.canonical().vm_create);
  const auto neutron_node =
      deployment.primary_node_for(wire::ServiceKind::Neutron);

  // Steady stream of VM creates; surge begins mid-run.
  std::vector<Launch> launches;
  for (int i = 0; i < 120; ++i) {
    launches.push_back(
        {&op, SimTime::epoch() + SimDuration::millis(500 * i),
         std::nullopt});
  }
  deployment.inject_cpu_surge(wire::ServiceKind::Neutron,
                              SimTime::epoch() + SimDuration::seconds(30),
                              SimTime::epoch() + SimDuration::minutes(5),
                              85.0);

  const auto analyzer = analyze(deployment, launches, 1004);

  ASSERT_GT(analyzer->detector_stats().performance_reports, 0u);
  bool neutron_api_flagged = false;
  bool cpu_cause_on_neutron = false;
  for (const auto& d : analyzer->diagnoses()) {
    if (d.fault.kind != FaultKind::Performance) continue;
    const auto& desc = e.catalog.apis().get(d.fault.offending_api);
    if (desc.service == wire::ServiceKind::Neutron ||
        desc.service == wire::ServiceKind::NeutronAgent) {
      neutron_api_flagged = true;
      for (const auto& c : d.root_cause.causes) {
        cpu_cause_on_neutron =
            cpu_cause_on_neutron ||
            (c.node == neutron_node &&
             c.kind == CauseKind::ResourceAnomaly &&
             c.detail.find("cpu") != std::string::npos);
      }
    }
    EXPECT_TRUE(d.fault.latency.has_value());
  }
  EXPECT_TRUE(neutron_api_flagged);
  EXPECT_TRUE(cpu_cause_on_neutron);
}

// §3.1.3 — multiple parallel operations: with many successful VM creates in
// flight, the single failed one is still pinpointed.
TEST(Scenario_3_1_3, ParallelOperationsSingleFailure) {
  auto& e = env();
  auto deployment = stack::Deployment::standard(3);
  const auto& op = e.catalog.operation(e.catalog.canonical().vm_create);

  std::vector<Launch> launches;
  for (int i = 0; i < 30; ++i) {
    launches.push_back(
        {&op, SimTime::epoch() + SimDuration::millis(300 * i),
         std::nullopt});
  }
  // One failing VM create in the middle.
  Launch faulty{&op, SimTime::epoch() + SimDuration::seconds(4),
                stack::no_valid_host_fault(step_of(
                    op, e.catalog.well_known().neutron_post_ports))};
  launches.insert(launches.begin() + 15, faulty);

  const auto analyzer = analyze(deployment, launches, 1005);

  ASSERT_GE(analyzer->detector_stats().operational_reports, 1u);
  const auto& d = analyzer->diagnoses().front();
  bool matched = false;
  for (auto idx : d.fault.matched_fingerprints) {
    matched = matched || e.training.db.get(idx).op == op.id;
  }
  EXPECT_TRUE(matched);
  // Unaffected by parallel successes: detection only ran on the fault.
  EXPECT_EQ(analyzer->detector_stats().operational_reports, 1u);
}

}  // namespace
}  // namespace gretel::core
