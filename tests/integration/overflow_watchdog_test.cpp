// ShardPipeline degraded-mode behavior: the DropOldestWithAccounting
// overflow policy and the stall watchdog.  debug_pause_shard() wedges a
// worker deterministically, so the overflow paths are exercised without
// relying on scheduler luck.  (Suite name is in the TSan CI job's filter.)
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "detect/shard_set.h"
#include "gretel/shard_pipeline.h"

namespace gretel::core {
namespace {

constexpr std::size_t kRing = 8;

wire::Event request(std::uint64_t seq, wire::ApiId api) {
  wire::Event e;
  e.seq = seq;
  e.ts = util::SimTime(static_cast<std::int64_t>(seq) * 1000000);
  e.api = api;
  e.kind = wire::ApiKind::Rest;
  e.dir = wire::Direction::Request;
  // Unique connection per request: each survivor stays pending in its
  // shard's tracker, making delivered counts observable after drain().
  e.conn_id = static_cast<std::uint32_t>(seq + 1);
  return e;
}

// An API owned by shard `target` under `num_shards`.
wire::ApiId api_on_shard(std::size_t target, std::size_t num_shards) {
  for (std::uint16_t v = 1; v < 1000; ++v) {
    if (detect::LatencyShardSet::shard_of(wire::ApiId(v), num_shards) ==
        target) {
      return wire::ApiId(v);
    }
  }
  ADD_FAILURE() << "no API hashes onto shard " << target;
  return wire::ApiId(1);
}

TEST(ShardOverflow, DefaultBlockPolicyIsLossless) {
  detect::LatencyShardSet latency(2);
  ShardPipeline pipeline(&latency, kRing);  // legacy defaults

  // Far more events than ring capacity: backpressure absorbs everything.
  const std::size_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) {
    pipeline.submit(request(i, wire::ApiId(
        static_cast<std::uint16_t>(1 + i % 50))));
  }
  std::vector<ShardTrigger> triggers;
  pipeline.drain(&triggers);

  EXPECT_EQ(pipeline.overflow_dropped(), 0u);
  EXPECT_EQ(pipeline.watchdog_trips(), 0u);
  EXPECT_EQ(latency.pending(), n);  // every request arrived at its tracker
}

TEST(ShardOverflow, DropOldestShedsWithExactAccounting) {
  detect::LatencyShardSet latency(2);
  ResilienceOptions resilience;
  resilience.overflow_policy = OverflowPolicy::DropOldestWithAccounting;
  resilience.spill_capacity = 4;
  ShardPipeline pipeline(&latency, kRing, resilience);

  const auto target = api_on_shard(0, 2);
  pipeline.debug_pause_shard(0, true);

  // The wedged shard's ring fills, then the spill fills, then events shed —
  // and submit() never blocks regardless.
  const std::size_t n = 200;
  for (std::uint64_t i = 0; i < n; ++i) {
    pipeline.submit(request(i, target));
  }
  EXPECT_GT(pipeline.overflow_dropped(), 0u);
  // At most ring + spill (+ a couple in flight at pause time) survive the
  // wedge; everything else must already be accounted as dropped.
  EXPECT_GE(pipeline.overflow_dropped(), n - (kRing + 4 + 2));

  pipeline.debug_pause_shard(0, false);
  std::vector<ShardTrigger> triggers;
  pipeline.drain(&triggers);

  // Conservation: every submitted event was either delivered to the shard's
  // tracker or counted dropped.  Nothing vanishes silently.
  EXPECT_EQ(latency.pending() + pipeline.overflow_dropped(), n);
  EXPECT_EQ(pipeline.watchdog_trips(), 0u);
}

TEST(ShardOverflow, WatchdogUnblocksWedgedSubmit) {
  detect::LatencyShardSet latency(2);
  ResilienceOptions resilience;
  resilience.watchdog_ms = 25.0;
  ShardPipeline pipeline(&latency, kRing, resilience);

  const auto target = api_on_shard(1, 2);
  pipeline.debug_pause_shard(1, true);

  // Fill the ring, then keep submitting: each extra submit blocks until the
  // watchdog declares the worker stalled and sheds the event.  The loop
  // finishing at all is the liveness assertion.
  const std::size_t n = kRing + 3;
  for (std::uint64_t i = 0; i < n; ++i) {
    pipeline.submit(request(i, target));
  }
  EXPECT_GE(pipeline.watchdog_trips(), 3u);
  EXPECT_GE(pipeline.overflow_dropped(), 3u);

  pipeline.debug_pause_shard(1, false);
  std::vector<ShardTrigger> triggers;
  pipeline.drain(&triggers);
  EXPECT_EQ(latency.pending() + pipeline.overflow_dropped(), n);
}

TEST(ShardOverflow, WatchdogUnblocksWedgedDrain) {
  detect::LatencyShardSet latency(2);
  ResilienceOptions resilience;
  resilience.watchdog_ms = 25.0;
  ShardPipeline pipeline(&latency, kRing, resilience);

  const auto target = api_on_shard(0, 2);
  pipeline.debug_pause_shard(0, true);
  for (std::uint64_t i = 0; i < 4; ++i) {  // below capacity: submits succeed
    pipeline.submit(request(i, target));
  }

  // The worker is wedged, so consumed can never reach submitted; the
  // watchdog must abandon the join instead of deadlocking the caller.
  std::vector<ShardTrigger> triggers;
  pipeline.drain(&triggers);
  EXPECT_GE(pipeline.watchdog_trips(), 1u);

  // Un-wedge so shutdown drains cleanly.
  pipeline.debug_pause_shard(0, false);
  std::vector<ShardTrigger> more;
  pipeline.drain(&more);
  EXPECT_EQ(latency.pending(), 4u);
}

TEST(ShardOverflow, PauseResumeDeliversEverythingUnderBlockPolicy) {
  detect::LatencyShardSet latency(2);
  ShardPipeline pipeline(&latency, kRing);

  const auto target = api_on_shard(1, 2);
  pipeline.debug_pause_shard(1, true);
  // Stay at ring capacity while wedged: Block policy admits without loss.
  for (std::uint64_t i = 0; i < kRing; ++i) {
    pipeline.submit(request(i, target));
  }
  pipeline.debug_pause_shard(1, false);
  for (std::uint64_t i = kRing; i < 64; ++i) {
    pipeline.submit(request(i, target));
  }
  std::vector<ShardTrigger> triggers;
  pipeline.drain(&triggers);
  EXPECT_EQ(pipeline.overflow_dropped(), 0u);
  EXPECT_EQ(pipeline.watchdog_trips(), 0u);
  EXPECT_EQ(latency.pending(), 64u);
}

// ---------------------------------------------------------------------------
// Wake-cadence liveness.  Deferred wakes trade per-event notifies for
// amortized ones; these tests pin the invariant that amortization must
// never cost delivery: whatever the wake counter says, drain() returns
// every submitted event.  (Suite name is in the TSan CI job's filter.)
// ---------------------------------------------------------------------------

TEST(ShardWakeLiveness, DrainCollectsFromWorkerThatNeverGotAWake) {
  detect::LatencyShardSet latency(2);
  ResilienceOptions resilience;
  // Threshold far above anything submitted: no submit ever publishes a
  // wake, so the worker may sit parked with a non-empty ring.  Drain must
  // still deliver everything (inline help or a drain-time wake) rather
  // than waiting for a notify that will never come.
  resilience.wake_events = 1 << 20;
  ShardPipeline pipeline(&latency, kRing, resilience);

  const auto target = api_on_shard(0, 2);
  for (std::uint64_t i = 0; i < 5; ++i) {  // below ring capacity
    pipeline.submit(request(i, target));
  }
  std::vector<ShardTrigger> triggers;
  pipeline.drain(&triggers);  // completing at all is the liveness assertion
  EXPECT_EQ(latency.pending(), 5u);
  EXPECT_EQ(pipeline.overflow_dropped(), 0u);
  EXPECT_EQ(pipeline.watchdog_trips(), 0u);
}

TEST(ShardWakeLiveness, BatchedSubmitBelowThresholdStillDrains) {
  detect::LatencyShardSet latency(4);
  ResilienceOptions resilience;
  resilience.wake_events = 1 << 20;
  ShardPipeline pipeline(&latency, 1024, resilience);

  // Many small batches spread across all four shards, every one below the
  // wake threshold, interleaved with drains: repeated park/collect cycles.
  std::vector<wire::EventHeader> batch;
  std::uint64_t seq = 0;
  std::size_t expected = 0;
  for (int round = 0; round < 8; ++round) {
    batch.clear();
    for (int k = 0; k < 37; ++k) {
      batch.push_back(wire::EventHeader(
          request(seq, wire::ApiId(static_cast<std::uint16_t>(1 + seq % 97))),
          seq));
      ++seq;
    }
    pipeline.submit_batch(batch);
    expected += batch.size();
    std::vector<ShardTrigger> triggers;
    pipeline.drain(&triggers);
    EXPECT_EQ(latency.pending(), expected);
  }
  EXPECT_EQ(pipeline.overflow_dropped(), 0u);
  EXPECT_EQ(pipeline.watchdog_trips(), 0u);
}

TEST(ShardWakeLiveness, PausedWorkerBelowThresholdDeliversAfterResume) {
  detect::LatencyShardSet latency(2);
  ResilienceOptions resilience;
  resilience.wake_events = 1 << 20;
  ShardPipeline pipeline(&latency, kRing, resilience);

  const auto target = api_on_shard(1, 2);
  pipeline.debug_pause_shard(1, true);
  for (std::uint64_t i = 0; i < 4; ++i) {  // below capacity, below threshold
    pipeline.submit(request(i, target));
  }
  // While paused, drain's inline help must NOT consume on the worker's
  // behalf (the pause contract) — so nothing is delivered yet.  After
  // resume, the same drain path must deliver all four events even though
  // no wake was ever published for them.
  pipeline.debug_pause_shard(1, false);
  std::vector<ShardTrigger> triggers;
  pipeline.drain(&triggers);
  EXPECT_EQ(latency.pending(), 4u);
  EXPECT_EQ(pipeline.overflow_dropped(), 0u);
}

TEST(ShardWakeLiveness, FullRingForcesWakeDespiteDeferredCadence) {
  detect::LatencyShardSet latency(2);
  ResilienceOptions resilience;
  resilience.wake_events = 1 << 20;
  ShardPipeline pipeline(&latency, kRing, resilience);

  // 10x ring capacity through a tiny ring with wakes deferred past any
  // reachable count: progress depends entirely on the full-ring force-wake
  // in the blocking path.  The loop finishing is the assertion.
  const auto target = api_on_shard(0, 2);
  const std::size_t n = kRing * 10;
  for (std::uint64_t i = 0; i < n; ++i) {
    pipeline.submit(request(i, target));
  }
  std::vector<ShardTrigger> triggers;
  pipeline.drain(&triggers);
  EXPECT_EQ(latency.pending(), n);
  EXPECT_EQ(pipeline.overflow_dropped(), 0u);
  EXPECT_EQ(pipeline.watchdog_trips(), 0u);
}

}  // namespace
}  // namespace gretel::core
