// End-to-end tests of the probed monitoring plane behind root-cause
// analysis (§5.4 under a fallible monitoring substrate):
//
//  * with all chaos rates zero and default knobs, the probed watcher path
//    produces byte-identical exported diagnoses to the oracle path, for
//    every shard count the determinism suite covers;
//  * a probe-loss sweep (drop + timeout at 1/5/10%) reconciles the chaos
//    audit exactly against the probe counters, never *adds* Confirmed
//    causes as the loss rate rises, never *loses* evidence gaps, and is
//    exactly reproducible for a fixed seed;
//  * a wedged monitoring agent cannot stall an analysis past the
//    configured probe deadline budget, and the report says so.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gretel/analyzer.h"
#include "gretel/json_export.h"
#include "gretel/training.h"
#include "monitor/metrics.h"
#include "stack/faults.h"
#include "tempest/workload.h"

namespace gretel::core {
namespace {

using stack::Launch;
using util::SimDuration;
using util::SimTime;

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(31, 0.04);
  TrainingReport training;
  Env() {
    auto deployment = stack::Deployment::standard(3);
    training = learn_fingerprints(catalog, deployment);
  }
};

Env& env() {
  static Env e;
  return e;
}

std::size_t step_of(const stack::OperationTemplate& op, wire::ApiId api) {
  for (std::size_t i = 0; i < op.steps.size(); ++i) {
    if (op.steps[i].api == api) return i;
  }
  ADD_FAILURE() << "api not in operation " << op.name;
  return 0;
}

// The analyzer keeps pointers into the deployment, so a finished run ships
// both together.
struct Run {
  std::unique_ptr<stack::Deployment> deployment;
  std::unique_ptr<Analyzer> analyzer;
  const Analyzer* operator->() const { return analyzer.get(); }
  const Analyzer& operator*() const { return *analyzer; }
  // health() refreshes the per-shard progress clocks, so it needs the
  // non-const analyzer.
  Analyzer* operator->() { return analyzer.get(); }
  Analyzer& operator*() { return *analyzer; }
};

// The §7.2.3 scenario — an upstream agent crash found by expanded search —
// exercised here because its root cause is pure watcher evidence: exactly
// the kind of finding a degraded monitoring plane can lose.
Run run_scenario(const Analyzer::Options& base, std::size_t num_shards = 1) {
  auto& e = env();
  Run run;
  run.deployment =
      std::make_unique<stack::Deployment>(stack::Deployment::standard(3));
  auto& deployment = *run.deployment;
  const auto& op = e.catalog.operation(e.catalog.canonical().vm_create);
  deployment.crash_software(wire::ServiceKind::NovaCompute,
                            "neutron-plugin-linuxbridge-agent",
                            SimTime::epoch(),
                            SimTime::epoch() + SimDuration::minutes(5));
  Launch launch{&op, SimTime::epoch() + SimDuration::seconds(10),
                stack::no_valid_host_fault(step_of(
                    op, e.catalog.well_known().neutron_post_ports))};

  Analyzer::Options opt = base;
  opt.config.fp_max = e.training.fp_max;
  opt.config.p_rate = 150.0;
  opt.config.num_shards = num_shards;
  run.analyzer = std::make_unique<Analyzer>(&e.training.db, &e.catalog.apis(),
                                            &deployment, opt);
  auto& analyzer = *run.analyzer;
  stack::WorkflowExecutor executor(&deployment, &e.catalog.apis(),
                                   &e.catalog.infra(), 1002);
  const std::vector<Launch> launches{launch};
  const auto records = executor.execute(launches);
  monitor::ResourceMonitor mon(&deployment, SimDuration::seconds(1), 1002);
  mon.sample_range(SimTime::epoch(),
                   records.back().ts + SimDuration::seconds(3),
                   analyzer.metrics());
  for (const auto& r : records) analyzer.on_wire(r);
  analyzer.finish();
  return run;
}

std::string exported(const Run& run) {
  auto& e = env();
  return to_json(run.analyzer->diagnoses(), e.catalog.apis(), e.training.db);
}

TEST(ProbedMonitoring, ZeroChaosIsByteIdenticalToOracleAcrossShards) {
  Analyzer::Options oracle;
  Analyzer::Options probed;
  probed.probed_monitoring = true;  // zero-rate chaos, default knobs

  const auto reference = run_scenario(oracle, 1);
  const auto reference_json = exported(reference);
  ASSERT_FALSE(reference->diagnoses().empty());

  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    const auto probed_run = run_scenario(probed, shards);
    EXPECT_EQ(exported(probed_run), reference_json);

    // A healthy probed plane emits none of the degradation vocabulary.
    EXPECT_EQ(reference_json.find("monitoring_degraded"), std::string::npos);
    EXPECT_EQ(reference_json.find("\"evidence\""), std::string::npos);
    for (const auto& d : probed_run->diagnoses()) {
      EXPECT_FALSE(d.root_cause.monitoring_degraded);
      EXPECT_TRUE(d.root_cause.evidence_gaps.empty());
      EXPECT_EQ(d.root_cause.stale_series, 0u);
    }
    // Probes ran (the plane was live) but never drew chaos or retried.
    const auto stats = probed_run->watcher().probe_stats();
    EXPECT_GT(stats.probes, 0u);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.probe_failures, 0u);
    EXPECT_TRUE(probed_run->watcher().chaos_audit().empty());
    const auto health = probed_run.analyzer->health();
    EXPECT_EQ(health.probe_attempts, stats.probes);
    EXPECT_EQ(health.probe_timeouts, 0u);
  }
}

TEST(ProbedMonitoring, LossSweepIsMonotoneAuditedAndReproducible) {
  Analyzer::Options clean;
  clean.probed_monitoring = true;
  const auto baseline = run_scenario(clean);
  ASSERT_FALSE(baseline->diagnoses().empty());

  using TargetSet = std::set<std::pair<int, std::string>>;
  const auto confirmed_causes = [](const Analyzer& a) {
    TargetSet out;
    for (const auto& d : a.diagnoses()) {
      for (const auto& c : d.root_cause.causes) {
        if (c.evidence == monitor::EvidenceStatus::Confirmed)
          out.emplace(c.node.value(), c.detail);
      }
    }
    return out;
  };
  const auto gap_targets = [](const Analyzer& a) {
    TargetSet out;
    for (const auto& d : a.diagnoses()) {
      for (const auto& g : d.root_cause.evidence_gaps)
        out.emplace(g.node.value(), g.dependency);
    }
    return out;
  };

  TargetSet previous_confirmed = confirmed_causes(*baseline);
  TargetSet previous_gaps = gap_targets(*baseline);
  ASSERT_FALSE(previous_confirmed.empty());
  ASSERT_TRUE(previous_gaps.empty());

  for (const double rate : {0.01, 0.05, 0.10}) {
    SCOPED_TRACE("loss rate " + std::to_string(rate));
    Analyzer::Options opt;
    opt.probed_monitoring = true;
    opt.monitor_chaos.seed = 2026;
    opt.monitor_chaos.probe_drop_rate = rate;
    opt.monitor_chaos.probe_timeout_rate = rate;

    const auto run = run_scenario(opt);

    // Exact audit ↔ counter reconciliation: every dropped or timed-out
    // attempt is one audited injection, and nothing else is.
    const auto stats = run->watcher().probe_stats();
    const auto audit = run->watcher().chaos_audit();
    std::uint64_t audited_drops = 0;
    std::uint64_t audited_timeouts = 0;
    for (const auto& inj : audit) {
      switch (inj.action) {
        case monitor::MonitorChaosAction::ProbeDrop: ++audited_drops; break;
        case monitor::MonitorChaosAction::ProbeTimeout:
        case monitor::MonitorChaosAction::ProbeDelay:
          ++audited_timeouts;
          break;
        default:
          ADD_FAILURE() << "unexpected injection "
                        << monitor::to_string(inj.action);
      }
    }
    EXPECT_EQ(stats.drops, audited_drops);
    EXPECT_EQ(stats.timeouts, audited_timeouts);
    EXPECT_EQ(audit.size(), audited_drops + audited_timeouts);
    EXPECT_GT(audit.size(), 0u);
    EXPECT_EQ(stats.retries + stats.probes, stats.attempts);

    // Monotone degradation across the sweep (fixed seed, nested fate
    // sets): a worse wire never *adds* Confirmed causes and never *loses*
    // evidence gaps.
    const auto confirmed = confirmed_causes(*run);
    for (const auto& cause : confirmed) {
      EXPECT_TRUE(previous_confirmed.count(cause))
          << "Confirmed cause appeared as loss rose: node "
          << cause.first << " " << cause.second;
    }
    const auto gaps = gap_targets(*run);
    for (const auto& gap : previous_gaps) {
      EXPECT_TRUE(gaps.count(gap))
          << "evidence gap vanished as loss rose: node " << gap.first << " "
          << gap.second;
    }
    previous_confirmed = confirmed;
    previous_gaps = gaps;

    // Gaps and degraded flags agree.
    for (const auto& d : run->diagnoses()) {
      EXPECT_EQ(d.root_cause.monitoring_degraded,
                !d.root_cause.evidence_gaps.empty() ||
                    d.root_cause.stale_series > 0);
    }

    // Fixed seed: the whole degraded run is exactly reproducible.
    const auto rerun = run_scenario(opt);
    EXPECT_EQ(exported(run), exported(rerun));
  }
  EXPECT_FALSE(previous_gaps.empty());
}

TEST(ProbedMonitoring, WedgedAgentCannotStallAnalysisPastBudget) {
  auto& e = env();
  const double budget_ms = 500.0;

  Analyzer::Options opt;
  opt.probed_monitoring = true;
  opt.config.probe_budget_ms = budget_ms;
  // Every monitoring agent in the deployment is wedged for the whole run:
  // each probe attempt hangs to its deadline.  Without the budget this
  // would cost (attempts × timeout) across every target and poll.
  for (std::uint8_t n = 0; n < 16; ++n) {
    opt.monitor_chaos.agent_outages.push_back(
        {wire::NodeId(n), SimTime::epoch(),
         SimTime::epoch() + SimDuration::minutes(10), /*wedged=*/true});
  }

  const auto run = run_scenario(opt);
  ASSERT_FALSE(run->diagnoses().empty());

  // One in-flight probe may straddle the boundary, so the spent budget is
  // capped at budget + the worst single-probe cost (3 deadlines + two
  // backoffs below 10 + 20 ms).
  const double worst_single_probe_ms = 3 * 100.0 + 10.0 + 20.0;
  for (const auto& d : run->diagnoses()) {
    EXPECT_LE(d.root_cause.probe_time_ms, budget_ms + worst_single_probe_ms);
    EXPECT_TRUE(d.root_cause.monitoring_degraded);
    EXPECT_FALSE(d.root_cause.evidence_gaps.empty());
    // Nothing the watchers "saw" through a wedged plane is Confirmed.
    for (const auto& c : d.root_cause.causes) {
      EXPECT_NE(c.kind, CauseKind::SoftwareFailure);
    }
  }
  const auto stats = run->watcher().probe_stats();
  EXPECT_GT(stats.budget_exhausted, 0u);
  EXPECT_GT(stats.timeouts, 0u);
  const auto health = run.analyzer->health();
  EXPECT_EQ(health.probe_budget_exhausted, stats.budget_exhausted);

  // The degradation is visible in the exported document.
  const auto json = exported(run);
  EXPECT_NE(json.find("\"monitoring_degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"evidence_gaps\""), std::string::npos);
}

}  // namespace
}  // namespace gretel::core
