#include "gretel/training.h"

#include <gtest/gtest.h>

#include "gretel/noise_filter.h"

namespace gretel::core {
namespace {

// Shared small-scale training run (the expensive fixture in this binary).
struct TrainingFixture {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(11, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  TrainingReport report = learn_fingerprints(catalog, deployment);
};

const TrainingFixture& fixture() {
  static const TrainingFixture f;
  return f;
}

TEST(Training, OneFingerprintPerOperation) {
  EXPECT_EQ(fixture().report.db.size(),
            fixture().catalog.operations().size());
}

TEST(Training, FingerprintsNonEmpty) {
  for (const auto& fp : fixture().report.db.all()) {
    EXPECT_FALSE(fp.sequence.empty()) << fp.name;
    // Read-only operations (e.g. cinder-list) legitimately have an empty
    // state sequence; everything else must anchor on state changes.
  }
}

TEST(Training, FingerprintCoversStableTemplateSkeleton) {
  // Algorithm 1 must recover at least the template's stable (non-transient)
  // skeleton; lucky transients surviving every re-execution may add a few
  // read-only extras, but never state changes.
  const auto& f = fixture();
  NoiseFilter filter(&f.catalog.apis());
  for (std::size_t i = 0; i < f.catalog.operations().size(); ++i) {
    const auto& op = f.catalog.operation(i);
    std::vector<wire::ApiId> stable;
    for (const auto& s : op.steps) {
      if (!s.transient) stable.push_back(s.api);
    }
    const auto expected = filter.filter(stable);
    const auto& fp = f.report.db.get(static_cast<std::uint32_t>(i));

    // The stable skeleton is a subsequence of the fingerprint.
    std::size_t need = 0;
    for (auto api : fp.sequence) {
      if (need < expected.size() && api == expected[need]) ++need;
    }
    EXPECT_EQ(need, expected.size()) << op.name;

    // State-change literals match the skeleton exactly (transients are
    // read-only chatter by construction).
    std::vector<wire::ApiId> expected_state;
    for (auto api : expected) {
      if (f.catalog.apis().get(api).state_change())
        expected_state.push_back(api);
    }
    EXPECT_EQ(fp.state_sequence, expected_state) << op.name;
  }
}

TEST(Training, NoNoiseApisInFingerprints) {
  const auto& f = fixture();
  NoiseFilter filter(&f.catalog.apis());
  for (const auto& fp : f.report.db.all()) {
    for (auto api : fp.sequence) {
      EXPECT_FALSE(filter.is_noise_api(api))
          << fp.name << " kept noise API "
          << f.catalog.apis().get(api).display_name();
    }
  }
}

TEST(Training, FpMaxConsistent) {
  const auto& f = fixture();
  EXPECT_EQ(f.report.fp_max, f.report.db.max_fingerprint_size());
  EXPECT_GT(f.report.fp_max, 0u);
  EXPECT_LE(f.report.fp_max, f.catalog.max_operation_steps());
}

TEST(Training, PerCategoryTestCounts) {
  const auto& f = fixture();
  for (std::size_t c = 0; c < stack::kCategories; ++c) {
    EXPECT_EQ(static_cast<std::size_t>(f.report.per_category[c].tests),
              f.catalog.category_ops(static_cast<stack::Category>(c)).size());
  }
}

TEST(Training, EventsCountedPerCategory) {
  for (const auto& stats : fixture().report.per_category) {
    EXPECT_GT(stats.rest_events, 0.0);
    // Average events per execution exceed fingerprint size (noise rides
    // along: auth, heartbeats, duplicate GETs, responses).
    EXPECT_GT(stats.rest_events + stats.rpc_events,
              stats.avg_fingerprint());
  }
}

TEST(Training, AvgFingerprintOrdering) {
  // Compute operations are the largest, Misc/Image/Storage the smallest
  // (Table 1's ordering).
  const auto& pc = fixture().report.per_category;
  const auto compute = static_cast<std::size_t>(stack::Category::Compute);
  const auto image = static_cast<std::size_t>(stack::Category::Image);
  const auto network = static_cast<std::size_t>(stack::Category::Network);
  EXPECT_GT(pc[compute].avg_fingerprint(), pc[network].avg_fingerprint());
  EXPECT_GT(pc[network].avg_fingerprint(), pc[image].avg_fingerprint());
  for (const auto& stats : pc) {
    EXPECT_LE(stats.avg_fingerprint_norpc(), stats.avg_fingerprint());
  }
}

TEST(Training, VmCreateFingerprintMatchesPaperExample) {
  // §5.3.1: "The operational fingerprint for the VM create operation
  // involves 7 REST and 3 RPC invocations."
  const auto& f = fixture();
  const auto& fp = f.report.db.get(
      static_cast<std::uint32_t>(f.catalog.canonical().vm_create));
  EXPECT_EQ(fp.name, "vm-create");
  EXPECT_EQ(fp.size_without_rpc(f.catalog.apis()), 7u);
  EXPECT_EQ(fp.size() - fp.size_without_rpc(f.catalog.apis()), 3u);
  // POST servers (E) precedes POST ports.json (F) among the literals.
  const auto& wk = f.catalog.well_known();
  std::ptrdiff_t e = -1;
  std::ptrdiff_t fpos = -1;
  for (std::size_t i = 0; i < fp.state_sequence.size(); ++i) {
    if (fp.state_sequence[i] == wk.nova_post_servers)
      e = static_cast<std::ptrdiff_t>(i);
    if (fp.state_sequence[i] == wk.neutron_post_ports)
      fpos = static_cast<std::ptrdiff_t>(i);
  }
  ASSERT_GE(e, 0);
  ASSERT_GE(fpos, 0);
  EXPECT_LT(e, fpos);
}

TEST(Training, DeterministicAcrossRuns) {
  const auto& f = fixture();
  auto deployment = stack::Deployment::standard(3);
  const auto again = learn_fingerprints(f.catalog, deployment);
  ASSERT_EQ(again.db.size(), f.report.db.size());
  for (std::size_t i = 0; i < again.db.size(); ++i) {
    EXPECT_EQ(again.db.get(static_cast<std::uint32_t>(i)).sequence,
              f.report.db.get(static_cast<std::uint32_t>(i)).sequence);
  }
}

TEST(Training, MoreRepeatsNeverGrowFingerprint) {
  const auto& f = fixture();
  auto deployment = stack::Deployment::standard(3);
  TrainingOptions options;
  options.repeats = 5;
  const auto more = learn_fingerprints(f.catalog, deployment, options);
  for (std::size_t i = 0; i < more.db.size(); ++i) {
    EXPECT_LE(more.db.get(static_cast<std::uint32_t>(i)).size(),
              f.report.db.get(static_cast<std::uint32_t>(i)).size() + 0u);
  }
}

}  // namespace
}  // namespace gretel::core
