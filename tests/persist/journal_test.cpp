// Report journal (GRTWAL01) contract: fsync-before-acknowledge sequencing,
// segment rotation and purge, torn-tail truncation on open, the
// mid-append crash artifact, and the recovery read path.
#include "persist/journal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "persist/crash_hook.h"
#include "util/atomic_file.h"
#include "util/time.h"

namespace gretel::persist {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  TempDir() {
    path = (fs::temp_directory_path() /
            ("grtwal-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter()++)))
               .string();
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

util::SimTime at(double s) {
  return util::SimTime(static_cast<std::int64_t>(s * 1e9));
}

TEST(Journal, AppendAssignsSequentialDurableSeqs) {
  TempDir dir;
  auto j = ReportJournal::open(dir.path, 4096, nullptr);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->append(1, at(1.0), 10.0, "r0"), 0u);
  EXPECT_EQ(j->append(1, at(1.0), 11.0, "r1"), 1u);
  EXPECT_EQ(j->append(2, at(2.0), 12.0, "r2"), 2u);
  EXPECT_EQ(j->next_seq(), 3u);

  const auto recs = ReportJournal::read_from(dir.path, 0);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].payload, "r0");
  EXPECT_EQ(recs[2].seq, 2u);
  EXPECT_EQ(recs[2].tick, 2u);
  EXPECT_DOUBLE_EQ(recs[2].report_delay_ms, 12.0);
}

TEST(Journal, ReopenContinuesSequenceNumbers) {
  TempDir dir;
  {
    auto j = ReportJournal::open(dir.path, 4096, nullptr);
    ASSERT_TRUE(j.has_value());
    j->append(1, at(1.0), 0.0, "a");
    j->append(1, at(1.0), 0.0, "b");
  }
  auto j = ReportJournal::open(dir.path, 4096, nullptr);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->next_seq(), 2u);
  EXPECT_EQ(j->append(2, at(2.0), 0.0, "c"), 2u);
  EXPECT_EQ(ReportJournal::read_from(dir.path, 0).size(), 3u);
}

TEST(Journal, RotatesSegmentsAndPurgesCoveredOnes) {
  TempDir dir;
  auto j = ReportJournal::open(dir.path, /*segment_records=*/2, nullptr);
  ASSERT_TRUE(j.has_value());
  for (int i = 0; i < 7; ++i)
    j->append(1, at(1.0), 0.0, "p" + std::to_string(i));
  // 7 records, 2 per segment -> segments at 0, 2, 4, 6.
  std::size_t segments = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    (void)e;
    ++segments;
  }
  EXPECT_EQ(segments, 4u);

  // A checkpoint at seq 5 covers segments [0,2) and [2,4); [4,6) holds 5.
  j->purge_below(5);
  const auto recs = ReportJournal::read_from(dir.path, 0);
  ASSERT_GE(recs.size(), 3u);
  EXPECT_EQ(recs.front().seq, 4u);
  EXPECT_EQ(recs.back().seq, 6u);
  // Appends continue unaffected.
  EXPECT_EQ(j->append(2, at(2.0), 0.0, "p7"), 7u);
}

TEST(Journal, TornTailIsTruncatedOnOpen) {
  TempDir dir;
  std::string seg_path;
  {
    auto j = ReportJournal::open(dir.path, 4096, nullptr);
    ASSERT_TRUE(j.has_value());
    j->append(1, at(1.0), 0.0, "intact-0");
    j->append(1, at(1.0), 0.0, "intact-1");
  }
  for (const auto& e : fs::directory_iterator(dir.path))
    seg_path = e.path().string();
  // A crash mid-append leaves a prefix of a record: garbage bytes that
  // parse as a length but fail the CRC.
  {
    std::FILE* f = std::fopen(seg_path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "\x00\x00\x00\x20garbage";
    std::fwrite(torn, 1, sizeof torn - 1, f);
    std::fclose(f);
  }
  std::size_t truncated = 0;
  auto j = ReportJournal::open(dir.path, 4096, &truncated);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(truncated, 1u);
  EXPECT_EQ(j->next_seq(), 2u);
  const auto recs = ReportJournal::read_from(dir.path, 0);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[1].payload, "intact-1");
  // And the journal keeps appending cleanly after the cut.
  EXPECT_EQ(j->append(2, at(2.0), 0.0, "after"), 2u);
  EXPECT_EQ(ReportJournal::read_from(dir.path, 0).size(), 3u);
}

TEST(Journal, MidAppendCrashLosesOnlyTheUnacknowledgedRecord) {
  TempDir dir;
  {
    auto j = ReportJournal::open(dir.path, 4096, nullptr);
    ASSERT_TRUE(j.has_value());
    j->append(1, at(1.0), 0.0, "acked");
    set_crash_hook([](std::string_view p) { return p == "journal.append"; });
    EXPECT_THROW(j->append(1, at(1.0), 0.0, "torn"), SimulatedCrash);
    clear_crash_hook();
  }
  std::size_t truncated = 0;
  auto j = ReportJournal::open(dir.path, 4096, &truncated);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(truncated, 1u);
  EXPECT_EQ(j->next_seq(), 1u);  // only the acknowledged record survives
  const auto recs = ReportJournal::read_from(dir.path, 0);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].payload, "acked");
}

TEST(Journal, HeaderlessNewestSegmentIsDropped) {
  TempDir dir;
  {
    auto j = ReportJournal::open(dir.path, /*segment_records=*/2, nullptr);
    ASSERT_TRUE(j.has_value());
    for (int i = 0; i < 4; ++i) j->append(1, at(1.0), 0.0, "x");
  }
  // Crash between rotation's file creation and header flush: an empty
  // segment file whose header never hit the disk.
  ASSERT_TRUE(util::write_file_atomic(
      dir.path + "/wal-00000000000000000004.grtwal", ""));
  auto j = ReportJournal::open(dir.path, 2, nullptr);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->next_seq(), 4u);
  EXPECT_EQ(j->append(2, at(2.0), 0.0, "resumed"), 4u);
}

TEST(Journal, ReadFromFiltersBySeq) {
  TempDir dir;
  auto j = ReportJournal::open(dir.path, 2, nullptr);
  ASSERT_TRUE(j.has_value());
  for (int i = 0; i < 5; ++i)
    j->append(1, at(1.0), 0.0, "p" + std::to_string(i));
  const auto tail = ReportJournal::read_from(dir.path, 3);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 3u);
  EXPECT_EQ(tail[1].payload, "p4");
}

}  // namespace
}  // namespace gretel::persist
