// GRTCKP01 contract: encode/decode round-trip, per-section CRC rejection,
// unknown-section forward compatibility, prune-to-keep-N, corrupt-file
// fallback in the loader, and the crash fail-point artifacts.
#include "persist/checkpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "persist/crash_hook.h"
#include "util/binio.h"
#include "util/crc32.h"

namespace gretel::persist {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  TempDir() {
    path = (fs::temp_directory_path() /
            ("grtckp-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter()++)))
               .string();
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

Checkpoint sample(std::uint64_t seq) {
  Checkpoint ckp;
  ckp.meta.checkpoint_seq = seq;
  ckp.meta.tick = 40 + seq;
  ckp.meta.watermark_ns = 12'345'678'900 + static_cast<std::int64_t>(seq);
  ckp.meta.journal_next_seq = 7 + seq;
  ckp.meta.offered = 1000;
  ckp.meta.ingested = 990;
  ckp.meta.shed = 10;
  ckp.meta.shed_episodes = 2;
  ckp.meta.ticks = 41 + seq;
  ckp.meta.reports = 7 + seq;
  ckp.meta.reports_evicted = 1;
  ckp.meta.metrics = 123;
  ckp.meta.db_catalog_hash = 0xDEADBEEFCAFEF00Dull;
  ckp.meta.db_content_crc = 0x1234ABCDu;
  const char raw[] = "opaque\x00\x01\x02 analyzer blob";  // embedded NULs
  ckp.analyzer_state.assign(raw, sizeof raw - 1);
  return ckp;
}

void expect_equal(const Checkpoint& a, const Checkpoint& b) {
  EXPECT_EQ(a.meta.checkpoint_seq, b.meta.checkpoint_seq);
  EXPECT_EQ(a.meta.tick, b.meta.tick);
  EXPECT_EQ(a.meta.watermark_ns, b.meta.watermark_ns);
  EXPECT_EQ(a.meta.journal_next_seq, b.meta.journal_next_seq);
  EXPECT_EQ(a.meta.offered, b.meta.offered);
  EXPECT_EQ(a.meta.ingested, b.meta.ingested);
  EXPECT_EQ(a.meta.shed, b.meta.shed);
  EXPECT_EQ(a.meta.shed_episodes, b.meta.shed_episodes);
  EXPECT_EQ(a.meta.ticks, b.meta.ticks);
  EXPECT_EQ(a.meta.reports, b.meta.reports);
  EXPECT_EQ(a.meta.reports_evicted, b.meta.reports_evicted);
  EXPECT_EQ(a.meta.metrics, b.meta.metrics);
  EXPECT_EQ(a.meta.db_catalog_hash, b.meta.db_catalog_hash);
  EXPECT_EQ(a.meta.db_content_crc, b.meta.db_content_crc);
  EXPECT_EQ(a.analyzer_state, b.analyzer_state);
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  const auto ckp = sample(3);
  const auto blob = encode_checkpoint(ckp);
  EXPECT_EQ(blob.substr(0, 8), "GRTCKP01");
  const auto back = decode_checkpoint(blob);
  ASSERT_TRUE(back.has_value());
  expect_equal(ckp, *back);
}

TEST(Checkpoint, EveryTruncationIsRejectedNotCrashing) {
  const auto blob = encode_checkpoint(sample(1));
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(decode_checkpoint(std::string_view(blob).substr(0, len)))
        << "truncated to " << len << " of " << blob.size();
  }
}

TEST(Checkpoint, BitFlipsFailTheSectionCrc) {
  const auto blob = encode_checkpoint(sample(1));
  // Flip one bit in every byte past the magic: either a length/name field
  // breaks parsing or a body byte breaks its section CRC.  Decode must
  // reject or — never — return silently different content.
  for (std::size_t i = 8; i < blob.size(); i += 7) {
    std::string mutated = blob;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x10);
    const auto back = decode_checkpoint(mutated);
    if (back.has_value()) {
      // Only acceptable if the flip landed somewhere truly ignored —
      // verify the payload still matches the original exactly.
      expect_equal(sample(1), *back);
    }
  }
}

TEST(Checkpoint, UnknownSectionsAreSkipped) {
  // The format grows by adding sections; an old reader must skip them.
  auto blob = encode_checkpoint(sample(2));
  // Patch the section count from 2 to 3 and append a valid extra section.
  ASSERT_EQ(blob[11], 2);  // u32 big-endian count at offset 8
  blob[11] = 3;
  std::string extra;
  util::put_u32(extra, 6);
  extra += "future";
  const std::string body = "anything";
  util::put_u32(extra, static_cast<std::uint32_t>(body.size()));
  util::put_u32(extra, util::crc32(body));
  extra += body;
  blob += extra;
  const auto back = decode_checkpoint(blob);
  ASSERT_TRUE(back.has_value());
  expect_equal(sample(2), *back);
}

TEST(Checkpoint, WriteLoadAndPruneKeepN) {
  TempDir dir;
  for (std::uint64_t seq = 0; seq < 5; ++seq)
    ASSERT_TRUE(write_checkpoint(dir.path, sample(seq), /*keep=*/3));
  const auto seqs = list_checkpoints(dir.path);
  ASSERT_EQ(seqs.size(), 3u);  // pruned to the newest 3
  EXPECT_EQ(seqs[0], 4u);
  EXPECT_EQ(seqs[2], 2u);
  std::size_t skipped = 99;
  const auto loaded = load_newest_checkpoint(dir.path, &skipped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(skipped, 0u);
  expect_equal(sample(4), *loaded);
}

TEST(Checkpoint, LoaderFallsBackAcrossCorruptFiles) {
  TempDir dir;
  for (std::uint64_t seq = 0; seq < 3; ++seq)
    ASSERT_TRUE(write_checkpoint(dir.path, sample(seq), /*keep=*/10));
  // Corrupt the newest (truncate) and the middle (bit flip in the body).
  {
    std::ofstream f(checkpoint_path(dir.path, 2),
                    std::ios::binary | std::ios::trunc);
    f << "GRTCKP01torn";
  }
  {
    std::ifstream in(checkpoint_path(dir.path, 1), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
    std::ofstream out(checkpoint_path(dir.path, 1),
                      std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  std::size_t skipped = 0;
  const auto loaded = load_newest_checkpoint(dir.path, &skipped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(skipped, 2u);
  expect_equal(sample(0), *loaded);
}

TEST(Checkpoint, EmptyDirLoadsNothing) {
  TempDir dir;
  std::size_t skipped = 7;
  EXPECT_FALSE(load_newest_checkpoint(dir.path, &skipped));
  EXPECT_EQ(skipped, 0u);
  EXPECT_FALSE(load_newest_checkpoint(dir.path + "/does-not-exist", nullptr));
}

TEST(Checkpoint, MidWriteCrashLeavesOnlyTheTmpArtifact) {
  TempDir dir;
  ASSERT_TRUE(write_checkpoint(dir.path, sample(0), 10));
  set_crash_hook(
      [](std::string_view p) { return p == "checkpoint.mid_write"; });
  EXPECT_THROW(write_checkpoint(dir.path, sample(1), 10), SimulatedCrash);
  clear_crash_hook();
  // The final file for seq 1 must not exist; seq 0 still loads.
  EXPECT_FALSE(fs::exists(checkpoint_path(dir.path, 1)));
  std::size_t skipped = 0;
  const auto loaded = load_newest_checkpoint(dir.path, &skipped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.checkpoint_seq, 0u);
}

TEST(Checkpoint, PreRenameCrashLeavesACompleteTmpButNoCheckpoint) {
  TempDir dir;
  set_crash_hook(
      [](std::string_view p) { return p == "checkpoint.pre_rename"; });
  EXPECT_THROW(write_checkpoint(dir.path, sample(0), 10), SimulatedCrash);
  clear_crash_hook();
  EXPECT_FALSE(fs::exists(checkpoint_path(dir.path, 0)));
  EXPECT_TRUE(list_checkpoints(dir.path).empty());
  // A retry after "reboot" succeeds over the leftover tmp file.
  ASSERT_TRUE(write_checkpoint(dir.path, sample(0), 10));
  EXPECT_TRUE(load_newest_checkpoint(dir.path, nullptr).has_value());
}

TEST(Checkpoint, PostRenameCrashLeavesAFullyValidCheckpoint) {
  TempDir dir;
  set_crash_hook(
      [](std::string_view p) { return p == "checkpoint.post_rename"; });
  EXPECT_THROW(write_checkpoint(dir.path, sample(5), 10), SimulatedCrash);
  clear_crash_hook();
  // The rename landed: recovery sees the checkpoint as if the write had
  // completed normally.
  std::size_t skipped = 0;
  const auto loaded = load_newest_checkpoint(dir.path, &skipped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(skipped, 0u);
  expect_equal(sample(5), *loaded);
}

}  // namespace
}  // namespace gretel::persist
