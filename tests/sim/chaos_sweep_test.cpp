// End-to-end chaos sweeps: a recorded workload is degraded by ChaosTap and
// replayed through the full capture→decode→detect→diagnose path.
//
//  * Zero chaos is a strict no-op: the analyzer's output is byte-identical
//    to a direct replay and nothing reports degraded confidence.
//  * Under loss (drop + truncate at 1/5/10%), the pipeline never crashes,
//    its quarantine counters agree exactly with the injector's audit, and
//    reports whose windows overlapped losses carry the degraded flag.
//  * The drop sets nest across rates (fixed seed), so detection volume
//    degrades monotonically as the wire gets worse.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "net/chaos.h"
#include "tempest/workload.h"

namespace gretel::core {
namespace {

struct Env {
  tempest::TempestCatalog catalog = tempest::TempestCatalog::build(21, 0.04);
  stack::Deployment deployment = stack::Deployment::standard(3);
  TrainingReport training = learn_fingerprints(catalog, deployment);
};

Env& env() {
  static Env e;
  return e;
}

std::vector<net::WireRecord> record_workload(std::uint64_t seed) {
  auto& e = env();
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 20;
  spec.faults = 3;
  spec.seed = seed;
  spec.window = util::SimDuration::seconds(120);
  const auto w = make_parallel_workload(e.catalog, spec);
  stack::WorkflowExecutor executor(&e.deployment, &e.catalog.apis(),
                                   &e.catalog.infra(), seed * 10);
  return executor.execute(w.launches);
}

std::unique_ptr<Analyzer> replay(const std::vector<net::WireRecord>& recs,
                                 std::size_t num_shards = 1) {
  auto& e = env();
  Analyzer::Options opt;
  opt.config.fp_max = e.training.fp_max;
  opt.config.p_rate = 150.0;
  opt.config.num_shards = num_shards;
  auto analyzer = std::make_unique<Analyzer>(
      &e.training.db, &e.catalog.apis(), &e.deployment, opt);
  for (const auto& r : recs) analyzer->on_wire(r);
  analyzer->finish();
  return analyzer;
}

void expect_identical_diagnoses(const Analyzer& a, const Analyzer& b,
                                const std::string& label) {
  SCOPED_TRACE(label);
  const auto& da = a.diagnoses();
  const auto& db = b.diagnoses();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    SCOPED_TRACE("diagnosis " + std::to_string(i));
    EXPECT_EQ(da[i].fault.kind, db[i].fault.kind);
    EXPECT_EQ(da[i].fault.offending_api, db[i].fault.offending_api);
    EXPECT_EQ(da[i].fault.detected_at, db[i].fault.detected_at);
    EXPECT_EQ(da[i].fault.matched_fingerprints,
              db[i].fault.matched_fingerprints);
    EXPECT_EQ(da[i].fault.theta, db[i].fault.theta);
    EXPECT_EQ(da[i].fault.window_losses, db[i].fault.window_losses);
    EXPECT_EQ(da[i].fault.degraded_confidence,
              db[i].fault.degraded_confidence);
    EXPECT_EQ(da[i].root_cause.degraded, db[i].root_cause.degraded);
  }
  EXPECT_EQ(a.detector_stats().operational_reports,
            b.detector_stats().operational_reports);
  EXPECT_EQ(a.detector_stats().events, b.detector_stats().events);
}

TEST(ChaosSweep, ZeroChaosIsByteIdenticalBaseline) {
  const auto records = record_workload(31);

  net::ChaosConfig config;  // all rates zero
  net::ChaosStats stats;
  const auto through_tap = net::ChaosTap::apply(config, records, &stats);
  ASSERT_EQ(through_tap.size(), records.size());
  EXPECT_EQ(stats.records_in, stats.records_out);

  const auto direct = replay(records);
  const auto tapped = replay(through_tap);
  ASSERT_FALSE(direct->diagnoses().empty());
  expect_identical_diagnoses(*direct, *tapped, "zero-chaos tap");

  // Clean telemetry never reports degraded confidence or losses.
  for (const auto& d : tapped->diagnoses()) {
    EXPECT_FALSE(d.fault.degraded_confidence);
    EXPECT_EQ(d.fault.window_losses, 0u);
    EXPECT_FALSE(d.root_cause.degraded);
  }
  const auto health = tapped->health();
  EXPECT_EQ(health.frames_quarantined, 0u);
  EXPECT_EQ(health.losses_recorded, 0u);
  EXPECT_EQ(health.overflow_drops, 0u);
  EXPECT_EQ(health.watchdog_trips, 0u);
  EXPECT_EQ(health.degraded_reports, 0u);
}

TEST(ChaosSweep, LossSweepExactAccountingAndDegradedFlags) {
  const auto records = record_workload(31);
  const auto clean = replay(records);
  const auto clean_reports = clean->detector_stats().operational_reports;
  ASSERT_GE(clean_reports, 1u);

  std::uint64_t previous_reports = clean_reports;
  bool saw_degraded_report = false;
  for (const double rate : {0.01, 0.05, 0.10}) {
    SCOPED_TRACE("loss rate " + std::to_string(rate));
    net::ChaosConfig config;
    config.seed = 2024;  // fixed seed: drop/truncate sets nest across rates
    config.drop_rate = rate;
    config.truncate_rate = rate;

    net::ChaosStats stats;
    std::vector<net::ChaosInjection> audit;
    const auto degraded_records =
        net::ChaosTap::apply(config, records, &stats, &audit);

    // Injector-side conservation.
    EXPECT_EQ(stats.records_in, records.size());
    EXPECT_EQ(stats.records_in - stats.records_out, stats.total_dropped());
    ASSERT_GT(stats.truncated, 0u);
    ASSERT_GT(stats.total_dropped(), 0u);

    const auto analyzer = replay(degraded_records);

    // Pipeline-side accounting must agree *exactly* with the injector's
    // audit: truncation is always fatal to the strict parsers, so every
    // truncated frame — and nothing else — lands in quarantine.
    const auto& tap = analyzer->tap_stats();
    EXPECT_EQ(tap.decode_failures, stats.truncated);
    const auto health = analyzer->health();
    EXPECT_EQ(health.frames_quarantined, stats.truncated);
    EXPECT_EQ(health.losses_recorded, stats.truncated);
    EXPECT_EQ(health.overflow_drops, 0u);

    // Detection volume is monotone non-increasing in the loss rate (the
    // affected sets nest for a fixed seed).
    const auto reports = analyzer->detector_stats().operational_reports;
    EXPECT_LE(reports, previous_reports);
    previous_reports = reports;

    // Degraded-confidence flags are exactly the lossy-window reports, and
    // they propagate into the root-cause layer.
    bool any_degraded = false;
    for (const auto& d : analyzer->diagnoses()) {
      EXPECT_EQ(d.fault.degraded_confidence, d.fault.window_losses > 0);
      EXPECT_EQ(d.root_cause.degraded, d.fault.degraded_confidence);
      any_degraded |= d.fault.degraded_confidence;
    }
    EXPECT_EQ(health.degraded_reports > 0, any_degraded);
    saw_degraded_report |= any_degraded;
  }
  // At these loss rates some surviving report's window overlapped a loss.
  EXPECT_TRUE(saw_degraded_report);
}

TEST(ChaosSweep, LossyCaptureIsShardCountInvariant) {
  const auto records = record_workload(33);
  net::ChaosConfig config;
  config.seed = 7;
  config.drop_rate = 0.05;
  config.truncate_rate = 0.05;
  const auto degraded_records = net::ChaosTap::apply(config, records);

  const auto reference = replay(degraded_records, 1);
  for (const std::size_t shards : {2u, 4u}) {
    const auto run = replay(degraded_records, shards);
    expect_identical_diagnoses(*reference, *run,
                               "num_shards=" + std::to_string(shards));
  }
}

TEST(ChaosSweep, HeavyMixedChaosNeverCrashes) {
  // Everything at once, well past the acceptance rates: the pipeline must
  // survive and its books must still balance.
  const auto records = record_workload(35);
  net::ChaosConfig config;
  config.seed = 99;
  config.drop_rate = 0.10;
  config.burst_rate = 0.01;
  config.truncate_rate = 0.10;
  config.corrupt_rate = 0.10;
  config.duplicate_rate = 0.05;
  config.reorder_rate = 0.05;
  config.clock_skew_max_ms = 25.0;
  config.stall_rate = 0.002;

  net::ChaosStats stats;
  const auto degraded_records = net::ChaosTap::apply(config, records, &stats);
  EXPECT_EQ(stats.records_in - stats.records_out + stats.duplicated,
            stats.total_dropped());

  const auto analyzer = replay(degraded_records, 2);
  const auto& tap = analyzer->tap_stats();
  // Corruption may or may not be fatal (a flipped body byte can still
  // parse), so quarantine is bracketed rather than exact here: at least
  // every truncated frame, at most truncated + corrupted.
  EXPECT_GE(tap.decode_failures, stats.truncated);
  EXPECT_LE(tap.decode_failures, stats.truncated + stats.corrupted);
  const auto health = analyzer->health();
  EXPECT_EQ(health.frames_quarantined, tap.decode_failures);
  EXPECT_EQ(health.losses_recorded, tap.decode_failures);
  // Clock skew produced regressions; the tap counted them.
  EXPECT_GT(tap.non_monotonic, 0u);
  for (const auto& d : analyzer->diagnoses()) {
    EXPECT_EQ(d.fault.degraded_confidence, d.fault.window_losses > 0);
  }
}

}  // namespace
}  // namespace gretel::core
