// Probe engine and monitoring-chaos unit tests: breaker lifecycle, flap
// hysteresis, deterministic backoff jitter, strict zero-rate no-op,
// monotone nesting of the affected sets across rates, and exact
// audit ↔ counter reconciliation.
#include "monitor/probe.h"

#include <gtest/gtest.h>

#include "monitor/metrics.h"
#include "stack/deployment.h"

namespace gretel::monitor {
namespace {

using util::SimDuration;
using util::SimTime;
using wire::NodeId;

SimTime at_s(int s) { return SimTime::epoch() + SimDuration::seconds(s); }

TEST(ProbeEngine, ZeroRatesAreStrictNoOp) {
  MonitorChaosConfig chaos;  // all rates zero
  ASSERT_FALSE(chaos.enabled());
  ProbeEngine engine(ProbeConfig{}, chaos);

  for (int s = 0; s < 20; ++s) {
    const bool truth = s % 3 != 0;
    const auto obs = engine.probe(NodeId(1), "nova-compute", truth, at_s(s));
    EXPECT_TRUE(obs.usable);
    EXPECT_EQ(obs.up, truth);
    EXPECT_EQ(obs.evidence, EvidenceStatus::Confirmed);
    EXPECT_FALSE(obs.flap_held);
    EXPECT_DOUBLE_EQ(obs.elapsed_ms, 0.0);
  }
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.probes, 20u);
  EXPECT_EQ(stats.attempts, 20u);  // never a retry
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.probe_failures, 0u);
  EXPECT_EQ(stats.breaker_trips, 0u);
  EXPECT_EQ(stats.flap_suppressed, 0u);
  // The injector never drew and never audited.
  EXPECT_TRUE(engine.chaos().audit().empty());
}

TEST(ProbeEngine, BreakerOpensShedsAndHalfOpens) {
  ProbeConfig config;
  config.retries = 0;
  config.breaker_open_after = 3;
  config.breaker_open_polls = 2;
  MonitorChaosConfig chaos;
  chaos.seed = 5;
  chaos.probe_drop_rate = 1.0;  // every attempt is lost
  ProbeEngine engine(config, chaos);

  // Three consecutive failed probes trip the breaker...
  for (int s = 0; s < 3; ++s) {
    const auto obs = engine.probe(NodeId(0), "mysqld", true, at_s(s));
    EXPECT_FALSE(obs.usable);
    EXPECT_EQ(obs.evidence, EvidenceStatus::Unknown);
    EXPECT_GT(obs.elapsed_ms, 0.0);  // the deadline was waited out
  }
  EXPECT_EQ(engine.stats().breaker_trips, 1u);
  EXPECT_EQ(engine.stats().probe_failures, 3u);

  // ...then two polls are shed at zero probe cost...
  for (int s = 3; s < 5; ++s) {
    const auto obs = engine.probe(NodeId(0), "mysqld", true, at_s(s));
    EXPECT_FALSE(obs.usable);
    EXPECT_DOUBLE_EQ(obs.elapsed_ms, 0.0);
  }
  EXPECT_EQ(engine.stats().breaker_skips, 2u);

  // ...and the half-open trial gets exactly one attempt, whose failure
  // re-opens the breaker immediately (a second trip).
  const auto attempts_before = engine.stats().attempts;
  engine.probe(NodeId(0), "mysqld", true, at_s(5));
  EXPECT_EQ(engine.stats().attempts, attempts_before + 1);
  EXPECT_EQ(engine.stats().breaker_trips, 2u);
}

TEST(ProbeEngine, BreakerRecoversThroughHalfOpenTrial) {
  ProbeConfig config;
  config.retries = 0;
  config.breaker_open_after = 1;
  config.breaker_open_polls = 2;
  MonitorChaosConfig chaos;
  // Declarative wedge: the node's agent hangs every probe until t=1s.
  chaos.agent_outages.push_back(
      {NodeId(2), SimTime::epoch(), at_s(1), /*wedged=*/true});
  ProbeEngine engine(config, chaos);

  engine.probe(NodeId(2), "ntpd", true, at_s(0));  // wedged → failure → open
  EXPECT_EQ(engine.stats().breaker_trips, 1u);
  engine.probe(NodeId(2), "ntpd", true, at_s(1));  // shed
  engine.probe(NodeId(2), "ntpd", true, at_s(2));  // shed
  EXPECT_EQ(engine.stats().breaker_skips, 2u);

  // Outage over: the half-open trial succeeds and the breaker closes.
  const auto trial = engine.probe(NodeId(2), "ntpd", true, at_s(3));
  EXPECT_TRUE(trial.usable);
  EXPECT_EQ(trial.evidence, EvidenceStatus::Confirmed);
  const auto next = engine.probe(NodeId(2), "ntpd", true, at_s(4));
  EXPECT_TRUE(next.usable);
  EXPECT_EQ(engine.stats().breaker_trips, 1u);  // no re-trip
}

TEST(ProbeEngine, FlapHysteresisHoldsUntilConsecutiveAgreement) {
  ProbeConfig config;
  config.flap_hysteresis = 3;
  ProbeEngine engine(config, MonitorChaosConfig{});

  // A one-poll blip: down once, then up again — never reported down.
  auto obs = engine.probe(NodeId(1), "glance-api", false, at_s(0));
  EXPECT_TRUE(obs.up);  // held at the old reported state
  EXPECT_TRUE(obs.flap_held);
  EXPECT_EQ(obs.evidence, EvidenceStatus::Suspected);
  obs = engine.probe(NodeId(1), "glance-api", true, at_s(1));
  EXPECT_TRUE(obs.up);
  EXPECT_FALSE(obs.flap_held);
  EXPECT_EQ(engine.stats().flap_suppressed, 1u);

  // A sustained outage: reported down exactly at the 3rd agreeing poll.
  obs = engine.probe(NodeId(1), "glance-api", false, at_s(2));
  EXPECT_TRUE(obs.up && obs.flap_held);
  obs = engine.probe(NodeId(1), "glance-api", false, at_s(3));
  EXPECT_TRUE(obs.up && obs.flap_held);
  obs = engine.probe(NodeId(1), "glance-api", false, at_s(4));
  EXPECT_FALSE(obs.up);
  EXPECT_FALSE(obs.flap_held);
  EXPECT_EQ(engine.stats().flap_suppressed, 3u);
}

TEST(ProbeEngine, BackoffIsBoundedAndSeedReproducible) {
  ProbeConfig config;
  config.timeout_ms = 50.0;
  config.retries = 2;
  config.backoff_base_ms = 10.0;
  config.backoff_cap_ms = 15.0;
  config.breaker_open_after = 100;  // keep the breaker out of this test
  MonitorChaosConfig chaos;
  chaos.seed = 42;
  chaos.probe_timeout_rate = 1.0;  // every attempt times out

  ProbeEngine a(config, chaos);
  ProbeEngine b(config, chaos);
  for (int s = 0; s < 8; ++s) {
    const auto oa = a.probe(NodeId(3), "rabbitmq-server", true, at_s(s));
    const auto ob = b.probe(NodeId(3), "rabbitmq-server", true, at_s(s));
    // Same seed, same target, same tick → the exact same retry timeline.
    EXPECT_DOUBLE_EQ(oa.elapsed_ms, ob.elapsed_ms);
    if (!oa.usable && oa.elapsed_ms > 0.0) {
      // 3 deadlines + backoff(0) ∈ [5, 10) + backoff(1) ∈ [7.5, 15).
      EXPECT_GE(oa.elapsed_ms, 3 * 50.0 + 0.5 * 10.0 + 0.5 * 15.0);
      EXPECT_LT(oa.elapsed_ms, 3 * 50.0 + 10.0 + 15.0);
    }
  }
}

TEST(MonitorChaos, AffectedSetsNestAcrossRates) {
  // A probe afflicted at a low rate is afflicted at every higher rate
  // (same seed): loss sweeps degrade monotonically, never erratically.
  MonitorChaosConfig lo;
  lo.seed = 7;
  lo.probe_drop_rate = 0.05;
  lo.probe_timeout_rate = 0.05;
  MonitorChaosConfig hi = lo;
  hi.probe_drop_rate = 0.25;
  hi.probe_timeout_rate = 0.25;

  MonitorChaos chaos_lo(lo);
  MonitorChaos chaos_hi(hi);
  int afflicted_lo = 0;
  int afflicted_hi = 0;
  for (int s = 0; s < 400; ++s) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const auto fate_lo = chaos_lo.probe_fate(NodeId(1), "nova-api",
                                               at_s(s).nanos(), attempt, true);
      const auto fate_hi = chaos_hi.probe_fate(NodeId(1), "nova-api",
                                               at_s(s).nanos(), attempt, true);
      const bool lo_hit = fate_lo.dropped || fate_lo.timed_out;
      const bool hi_hit = fate_hi.dropped || fate_hi.timed_out;
      if (lo_hit) EXPECT_TRUE(hi_hit) << "tick " << s << " attempt " << attempt;
      afflicted_lo += lo_hit;
      afflicted_hi += hi_hit;
    }
  }
  EXPECT_GT(afflicted_lo, 0);
  EXPECT_GT(afflicted_hi, afflicted_lo);
}

TEST(MonitorChaos, AuditReconcilesExactlyWithEngineCounters) {
  ProbeConfig config;
  config.retries = 1;
  MonitorChaosConfig chaos;
  chaos.seed = 11;
  chaos.probe_drop_rate = 0.10;
  chaos.probe_timeout_rate = 0.10;
  chaos.false_positive_rate = 0.05;
  ProbeEngine engine(config, chaos);

  for (int s = 0; s < 300; ++s) {
    engine.probe(NodeId(0), "mysqld", true, at_s(s));
    engine.probe(NodeId(1), "nova-compute", true, at_s(s));
  }

  const auto& c = engine.chaos();
  std::uint64_t by_action[7] = {};
  for (const auto& inj : c.audit())
    ++by_action[static_cast<std::size_t>(inj.action)];
  for (std::size_t a = 0; a < 7; ++a) {
    EXPECT_EQ(by_action[a], c.count(static_cast<MonitorChaosAction>(a)));
  }

  // Every dropped attempt and every timed-out attempt is one audited
  // injection — no silent losses, no phantom entries.
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.drops, c.count(MonitorChaosAction::ProbeDrop));
  EXPECT_EQ(stats.timeouts, c.count(MonitorChaosAction::ProbeTimeout) +
                                c.count(MonitorChaosAction::ProbeDelay));
  EXPECT_EQ(stats.false_results, c.count(MonitorChaosAction::FalsePositive) +
                                     c.count(MonitorChaosAction::FalseNegative));
  EXPECT_GT(stats.drops + stats.timeouts, 0u);
}

TEST(MonitorChaos, FrozenMetricStreamsReconcileWithAudit) {
  auto deployment = stack::Deployment::standard(1);
  MonitorChaosConfig chaos;
  chaos.seed = 3;
  chaos.metric_freeze_rate = 0.02;
  chaos.metric_freeze_seconds = 5;

  ResourceMonitor monitor(&deployment, SimDuration::seconds(1), 1, chaos);
  MetricsStore store;
  monitor.sample_range(SimTime::epoch(), at_s(60), store);

  const auto expected =
      60u * deployment.node_ids().size() * net::kResourceKinds;
  ASSERT_NE(monitor.chaos(), nullptr);
  const auto frozen = monitor.chaos()->count(MonitorChaosAction::MetricFreeze);
  EXPECT_GT(frozen, 0u);
  EXPECT_EQ(monitor.frozen_samples(), frozen);
  EXPECT_EQ(store.total_samples(), expected - frozen);
}

TEST(MonitorChaos, ZeroRateChaosMonitorMatchesPlainMonitor) {
  auto deployment = stack::Deployment::standard(1);
  ResourceMonitor plain(&deployment, SimDuration::seconds(1), 9);
  ResourceMonitor chaotic(&deployment, SimDuration::seconds(1), 9,
                          MonitorChaosConfig{});  // all rates zero
  MetricsStore a;
  MetricsStore b;
  plain.sample_range(SimTime::epoch(), at_s(20), a);
  chaotic.sample_range(SimTime::epoch(), at_s(20), b);

  ASSERT_EQ(a.total_samples(), b.total_samples());
  for (auto id : deployment.node_ids()) {
    for (std::size_t k = 0; k < net::kResourceKinds; ++k) {
      const auto kind = static_cast<net::ResourceKind>(k);
      const auto* sa = a.series(id, kind);
      const auto* sb = b.series(id, kind);
      ASSERT_NE(sa, nullptr);
      ASSERT_NE(sb, nullptr);
      ASSERT_EQ(sa->size(), sb->size());
      for (std::size_t i = 0; i < sa->size(); ++i) {
        EXPECT_EQ(sa->points()[i].t_seconds, sb->points()[i].t_seconds);
        EXPECT_EQ(sa->points()[i].value, sb->points()[i].value);
      }
    }
  }
  EXPECT_EQ(chaotic.frozen_samples(), 0u);
}

TEST(MonitorChaos, WatermarkTracksNewestSample) {
  MetricsStore store;
  EXPECT_FALSE(
      store.watermark_s(NodeId(1), net::ResourceKind::CpuPct).has_value());
  store.record(NodeId(1), net::ResourceKind::CpuPct, 3.0, 10.0);
  store.record(NodeId(1), net::ResourceKind::CpuPct, 7.0, 11.0);
  const auto mark = store.watermark_s(NodeId(1), net::ResourceKind::CpuPct);
  ASSERT_TRUE(mark.has_value());
  EXPECT_DOUBLE_EQ(*mark, 7.0);
}

}  // namespace
}  // namespace gretel::monitor
