// Service-log emission by the workflow executor (§3.1's observable).
#include <gtest/gtest.h>

#include "stack/faults.h"
#include "stack/workflow.h"

namespace gretel::stack {
namespace {

using util::SimDuration;
using util::SimTime;
using wire::ApiCatalog;
using wire::HttpMethod;
using wire::ServiceKind;

class WorkflowLoggingTest : public ::testing::Test {
 protected:
  WorkflowLoggingTest() : deployment_(Deployment::standard(1)) {
    infra_ = register_infra_apis(catalog_);
    post_ = catalog_.add_rest(ServiceKind::Glance, HttpMethod::Post,
                              "/v2/images");
    put_ = catalog_.add_rest(ServiceKind::Glance, HttpMethod::Put,
                             "/v2/images/<ID>/file");
    get_ = catalog_.add_rest(ServiceKind::Glance, HttpMethod::Get,
                             "/v2/images/<ID>");
    op_.id = wire::OpTemplateId(0);
    op_.name = "image-upload";
    op_.category = Category::Image;
    op_.poll_api = get_;
    op_.steps = {
        {post_, ServiceKind::Horizon, ServiceKind::Glance,
         SimDuration::millis(8), false, 1.0},
        {put_, ServiceKind::Horizon, ServiceKind::Glance,
         SimDuration::millis(20), false, 1.0},
        {get_, ServiceKind::Horizon, ServiceKind::Glance,
         SimDuration::millis(4), false, 1.0},
    };
  }

  WorkflowExecutor::Options quiet() {
    WorkflowExecutor::Options opt;
    opt.emit_heartbeats = false;
    opt.emit_keystone_auth = false;
    opt.duplicate_get_prob = 0.0;
    return opt;
  }

  Deployment deployment_;
  ApiCatalog catalog_;
  InfraApis infra_;
  OperationTemplate op_;
  wire::ApiId post_, put_, get_;
};

TEST_F(WorkflowLoggingTest, SuccessfulRunLogsTraceOnly) {
  WorkflowExecutor exec(&deployment_, &catalog_, &infra_, 1, quiet());
  exec.execute(std::vector<Launch>{{&op_, SimTime::epoch(), std::nullopt}});
  ASSERT_EQ(exec.logs().size(), op_.steps.size());
  for (const auto& line : exec.logs()) {
    EXPECT_EQ(line.level, LogLevel::Trace);
    EXPECT_EQ(line.service, ServiceKind::Glance);
    EXPECT_NE(line.message.find("handling"), std::string::npos);
  }
}

TEST_F(WorkflowLoggingTest, LogsTimeSorted) {
  WorkflowExecutor exec(&deployment_, &catalog_, &infra_, 1, quiet());
  std::vector<Launch> launches{
      {&op_, SimTime::epoch() + SimDuration::seconds(1), std::nullopt},
      {&op_, SimTime::epoch(), std::nullopt}};
  exec.execute(launches);
  const auto& logs = exec.logs();
  for (std::size_t i = 1; i < logs.size(); ++i) {
    EXPECT_LE(logs[i - 1].ts, logs[i].ts);
  }
}

TEST_F(WorkflowLoggingTest, FaultLogsAtConfiguredLevel) {
  OperationalFault fault = no_valid_host_fault(1);
  WorkflowExecutor exec(&deployment_, &catalog_, &infra_, 1, quiet());
  exec.execute(std::vector<Launch>{{&op_, SimTime::epoch(), fault}});

  std::size_t warnings = 0;
  for (const auto& line : exec.logs()) {
    if (line.level == LogLevel::Warning) {
      ++warnings;
      EXPECT_NE(line.message.find("No valid host"), std::string::npos);
    }
    EXPECT_NE(line.level, LogLevel::Error)
        << "the paper's faults never reach ERROR";
  }
  // The failing step and the dashboard relay both log.
  EXPECT_EQ(warnings, 2u);
}

TEST_F(WorkflowLoggingTest, SilentFaultWritesNothing) {
  // §7.2.1: Glance logs nothing for the 413.
  WorkflowExecutor exec(&deployment_, &catalog_, &infra_, 1, quiet());
  exec.execute(std::vector<Launch>{
      {&op_, SimTime::epoch(), entity_too_large_fault(1)}});
  for (const auto& line : exec.logs()) {
    EXPECT_EQ(line.level, LogLevel::Trace);
  }
}

TEST_F(WorkflowLoggingTest, EmitLogsOffDisables) {
  auto opt = quiet();
  opt.emit_logs = false;
  WorkflowExecutor exec(&deployment_, &catalog_, &infra_, 1, opt);
  exec.execute(std::vector<Launch>{{&op_, SimTime::epoch(), std::nullopt}});
  EXPECT_TRUE(exec.logs().empty());
}

TEST_F(WorkflowLoggingTest, LogsClearedBetweenExecutes) {
  WorkflowExecutor exec(&deployment_, &catalog_, &infra_, 1, quiet());
  exec.execute(std::vector<Launch>{{&op_, SimTime::epoch(), std::nullopt}});
  const auto first = exec.logs().size();
  exec.execute(std::vector<Launch>{{&op_, SimTime::epoch(), std::nullopt}});
  EXPECT_EQ(exec.logs().size(), first);
}

TEST(LogLevelNames, AllNamed) {
  EXPECT_EQ(to_string(LogLevel::Trace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::Warning), "WARNING");
  EXPECT_EQ(to_string(LogLevel::Error), "ERROR");
}

}  // namespace
}  // namespace gretel::stack
