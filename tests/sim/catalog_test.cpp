#include "tempest/catalog.h"

#include <gtest/gtest.h>

#include <set>

namespace gretel::tempest {
namespace {

using stack::Category;
using wire::ApiKind;
using wire::ServiceKind;

// One shared full-scale catalog for the whole suite (construction is cheap
// but not free).
const TempestCatalog& full_catalog() {
  static const TempestCatalog catalog = TempestCatalog::build();
  return catalog;
}

TEST(TempestCatalog, TotalPublicApisIs643) {
  EXPECT_EQ(full_catalog().apis().size(), 643u);
}

TEST(TempestCatalog, TestCountsMatchTable1) {
  const auto& c = full_catalog();
  EXPECT_EQ(c.category_ops(Category::Compute).size(), 517u);
  EXPECT_EQ(c.category_ops(Category::Image).size(), 55u);
  EXPECT_EQ(c.category_ops(Category::Network).size(), 251u);
  EXPECT_EQ(c.category_ops(Category::Storage).size(), 84u);
  EXPECT_EQ(c.category_ops(Category::Misc).size(), 293u);
  EXPECT_EQ(c.operations().size(), 1200u);
}

TEST(TempestCatalog, MaxOperationIs384Steps) {
  EXPECT_EQ(full_catalog().max_operation_steps(), 384u);
}

TEST(TempestCatalog, MeanStepsNearTable1) {
  const auto& c = full_catalog();
  const struct {
    Category cat;
    double mean;
  } expectations[] = {{Category::Compute, 100.0},
                      {Category::Image, 18.0},
                      {Category::Network, 31.0},
                      {Category::Storage, 17.0},
                      {Category::Misc, 16.0}};
  for (const auto& e : expectations) {
    double sum = 0;
    std::size_t stable = 0;
    const auto& ops = c.category_ops(e.cat);
    for (auto idx : ops) {
      for (const auto& s : c.operation(idx).steps) {
        if (!s.transient) ++stable;
      }
    }
    sum = static_cast<double>(stable) / static_cast<double>(ops.size());
    EXPECT_NEAR(sum, e.mean, e.mean * 0.25)
        << "category " << to_string(e.cat);
  }
}

TEST(TempestCatalog, OperationsNonEmptyAndNamed) {
  for (const auto& op : full_catalog().operations()) {
    EXPECT_FALSE(op.steps.empty());
    EXPECT_FALSE(op.name.empty());
    EXPECT_TRUE(op.poll_api.valid());
  }
}

TEST(TempestCatalog, OperationIdsMatchIndices) {
  const auto& ops = full_catalog().operations();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].id.value(), i);
  }
}

TEST(TempestCatalog, NoAdjacentDuplicateStableSteps) {
  for (const auto& op : full_catalog().operations()) {
    for (std::size_t i = 1; i < op.steps.size(); ++i) {
      if (op.steps[i].transient || op.steps[i - 1].transient) continue;
      EXPECT_NE(op.steps[i].api, op.steps[i - 1].api)
          << op.name << " step " << i;
    }
  }
}

TEST(TempestCatalog, DeterministicForSeed) {
  const auto a = TempestCatalog::build(1, 0.02);
  const auto b = TempestCatalog::build(1, 0.02);
  ASSERT_EQ(a.operations().size(), b.operations().size());
  for (std::size_t i = 0; i < a.operations().size(); ++i) {
    ASSERT_EQ(a.operation(i).steps.size(), b.operation(i).steps.size());
    for (std::size_t s = 0; s < a.operation(i).steps.size(); ++s) {
      EXPECT_EQ(a.operation(i).steps[s].api, b.operation(i).steps[s].api);
    }
  }
}

TEST(TempestCatalog, FractionScalesSuite) {
  const auto small = TempestCatalog::build(1, 0.05);
  EXPECT_LT(small.operations().size(), 100u);
  EXPECT_GT(small.operations().size(), 20u);
  EXPECT_EQ(small.apis().size(), 643u);  // API surface never shrinks
}

TEST(TempestCatalog, CanonicalVmCreateMatchesFig2) {
  const auto& c = full_catalog();
  const auto& vm = c.operation(c.canonical().vm_create);
  EXPECT_EQ(vm.name, "vm-create");
  EXPECT_EQ(vm.category, Category::Compute);
  // 7 REST + 3 RPC (§5.3.1 example).
  EXPECT_EQ(vm.count(ApiKind::Rest, c.apis()), 7u);
  EXPECT_EQ(vm.count(ApiKind::Rpc, c.apis()), 3u);
  // POST servers (E) precedes POST ports.json (F).
  std::ptrdiff_t post_servers = -1;
  std::ptrdiff_t post_ports = -1;
  for (std::size_t i = 0; i < vm.steps.size(); ++i) {
    if (vm.steps[i].api == c.well_known().nova_post_servers)
      post_servers = static_cast<std::ptrdiff_t>(i);
    if (vm.steps[i].api == c.well_known().neutron_post_ports)
      post_ports = static_cast<std::ptrdiff_t>(i);
  }
  ASSERT_GE(post_servers, 0);
  ASSERT_GE(post_ports, 0);
  EXPECT_LT(post_servers, post_ports);
}

TEST(TempestCatalog, SnapshotSubsumesVolumeCreate) {
  // §4: S1 (snapshot) subsumes S2 (volume create): S2's API sequence is a
  // contiguous subsequence of S1's.
  const auto& c = full_catalog();
  const auto& s1 = c.operation(c.canonical().vm_snapshot);
  const auto& s2 = c.operation(c.canonical().volume_create);
  ASSERT_LT(s2.steps.size(), s1.steps.size());

  bool found = false;
  for (std::size_t start = 0;
       start + s2.steps.size() <= s1.steps.size() && !found; ++start) {
    bool all = true;
    for (std::size_t i = 0; i < s2.steps.size(); ++i) {
      if (s1.steps[start + i].api != s2.steps[i].api) {
        all = false;
        break;
      }
    }
    found = all;
  }
  EXPECT_TRUE(found);
}

TEST(TempestCatalog, WellKnownApisResolvable) {
  const auto& c = full_catalog();
  const auto& wk = c.well_known();
  EXPECT_EQ(c.apis().get(wk.neutron_get_ports).path, "/v2.0/ports.json");
  EXPECT_EQ(c.apis().get(wk.glance_put_image_file).path,
            "/v2/images/<ID>/file");
  EXPECT_EQ(c.apis().get(wk.rpc_get_device_details).rpc_method,
            "get_devices_details_list");
  EXPECT_EQ(c.apis().get(wk.rpc_sec_group_info).rpc_method,
            "security_group_info_for_devices");
}

TEST(TempestCatalog, CategoryApiPoolsMostlyDisjoint) {
  // Fig. 5's premise: operations of different categories share few APIs.
  const auto& c = full_catalog();
  std::array<std::set<wire::ApiId>, stack::kCategories> used;
  for (const auto& op : c.operations()) {
    // Skip canonical cross-service ops; they are intentionally cross-cutting.
    for (const auto& s : op.steps)
      used[static_cast<std::size_t>(op.category)].insert(s.api);
  }
  // Compute vs Image overlap should be far below either pool's size.
  std::size_t overlap = 0;
  for (auto api : used[0]) overlap += used[1].count(api);
  EXPECT_LT(overlap, used[1].size() / 2);
}

TEST(TempestCatalog, UniqueApisPerCategoryNearTable1) {
  const auto& c = full_catalog();
  const struct {
    Category cat;
    std::size_t rest;
    std::size_t rpc;
  } expectations[] = {{Category::Compute, 195, 61},
                      {Category::Image, 38, 10},
                      {Category::Network, 70, 24},
                      {Category::Storage, 40, 11},
                      {Category::Misc, 20, 11}};
  for (const auto& e : expectations) {
    std::set<wire::ApiId> rest;
    std::set<wire::ApiId> rpc;
    for (auto idx : c.category_ops(e.cat)) {
      for (const auto& s : c.operation(idx).steps) {
        if (c.apis().get(s.api).kind == ApiKind::Rest) {
          rest.insert(s.api);
        } else {
          rpc.insert(s.api);
        }
      }
    }
    // Within 20% of the paper's Table 1 (canonical ops add a little).
    EXPECT_NEAR(static_cast<double>(rest.size()),
                static_cast<double>(e.rest), e.rest * 0.2)
        << to_string(e.cat);
    EXPECT_NEAR(static_cast<double>(rpc.size()), static_cast<double>(e.rpc),
                e.rpc * 0.3)
        << to_string(e.cat);
  }
}

}  // namespace
}  // namespace gretel::tempest
