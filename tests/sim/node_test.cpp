#include "net/node.h"

#include <gtest/gtest.h>

namespace gretel::net {
namespace {

using util::Rng;
using util::SimDuration;
using util::SimTime;
using wire::Ipv4;
using wire::NodeId;
using wire::ServiceKind;

NodeState make_node() {
  return NodeState(NodeId(1), "compute-1", Ipv4(10, 0, 0, 11));
}

TEST(NodeState, Identity) {
  const auto node = make_node();
  EXPECT_EQ(node.id(), NodeId(1));
  EXPECT_EQ(node.hostname(), "compute-1");
  EXPECT_EQ(node.ip().to_string(), "10.0.0.11");
}

TEST(NodeState, HostsServices) {
  auto node = make_node();
  EXPECT_FALSE(node.hosts(ServiceKind::NovaCompute));
  node.host_service(ServiceKind::NovaCompute);
  EXPECT_TRUE(node.hosts(ServiceKind::NovaCompute));
  EXPECT_FALSE(node.hosts(ServiceKind::Glance));
}

TEST(NodeState, SoftwareInstallDeduplicates) {
  auto node = make_node();
  node.install_software("ntpd");
  node.install_software("ntpd");
  EXPECT_EQ(node.software().size(), 1u);
}

TEST(NodeState, OutageWindowSemantics) {
  auto node = make_node();
  node.install_software("nova-compute");
  const auto t0 = SimTime::epoch();
  node.inject_outage({"nova-compute", t0 + SimDuration::seconds(10),
                      t0 + SimDuration::seconds(20)});

  EXPECT_TRUE(node.software_running("nova-compute", t0));
  EXPECT_FALSE(node.software_running(
      "nova-compute", t0 + SimDuration::seconds(10)));  // inclusive start
  EXPECT_FALSE(
      node.software_running("nova-compute", t0 + SimDuration::seconds(15)));
  EXPECT_TRUE(node.software_running(
      "nova-compute", t0 + SimDuration::seconds(20)));  // exclusive end
}

TEST(NodeState, FailedSoftwareListsOnlyInstalled) {
  auto node = make_node();
  node.install_software("ntpd");
  const auto t0 = SimTime::epoch();
  node.inject_outage({"ntpd", t0, t0 + SimDuration::seconds(5)});
  node.inject_outage({"ghost-daemon", t0, t0 + SimDuration::seconds(5)});

  const auto failed = node.failed_software(t0 + SimDuration::seconds(1));
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], "ntpd");
  EXPECT_TRUE(node.failed_software(t0 + SimDuration::seconds(6)).empty());
}

TEST(NodeState, NominalFollowsPerturbationWindows) {
  auto node = make_node();
  node.set_baseline(ResourceKind::CpuPct, 10.0, 0.0);
  const auto t0 = SimTime::epoch();
  node.inject_perturbation({ResourceKind::CpuPct,
                            t0 + SimDuration::seconds(5),
                            t0 + SimDuration::seconds(10), 60.0});

  EXPECT_DOUBLE_EQ(node.nominal(ResourceKind::CpuPct, t0), 10.0);
  EXPECT_DOUBLE_EQ(
      node.nominal(ResourceKind::CpuPct, t0 + SimDuration::seconds(7)), 70.0);
  EXPECT_DOUBLE_EQ(
      node.nominal(ResourceKind::CpuPct, t0 + SimDuration::seconds(10)),
      10.0);
}

TEST(NodeState, PerturbationsStack) {
  auto node = make_node();
  node.set_baseline(ResourceKind::CpuPct, 10.0, 0.0);
  const auto t0 = SimTime::epoch();
  node.inject_perturbation(
      {ResourceKind::CpuPct, t0, t0 + SimDuration::seconds(10), 20.0});
  node.inject_perturbation(
      {ResourceKind::CpuPct, t0, t0 + SimDuration::seconds(10), 30.0});
  EXPECT_DOUBLE_EQ(
      node.nominal(ResourceKind::CpuPct, t0 + SimDuration::seconds(1)), 60.0);
}

TEST(NodeState, CpuClampedTo100) {
  auto node = make_node();
  node.set_baseline(ResourceKind::CpuPct, 90.0, 0.0);
  node.inject_perturbation({ResourceKind::CpuPct, SimTime::epoch(),
                            SimTime::epoch() + SimDuration::seconds(1),
                            50.0});
  EXPECT_DOUBLE_EQ(node.nominal(ResourceKind::CpuPct, SimTime::epoch()),
                   100.0);
}

TEST(NodeState, DiskFreeNeverNegative) {
  auto node = make_node();
  node.set_baseline(ResourceKind::DiskFreeMb, 100.0, 0.0);
  node.inject_perturbation({ResourceKind::DiskFreeMb, SimTime::epoch(),
                            SimTime::epoch() + SimDuration::seconds(1),
                            -500.0});
  EXPECT_DOUBLE_EQ(node.nominal(ResourceKind::DiskFreeMb, SimTime::epoch()),
                   0.0);
}

TEST(NodeState, SampleJittersAroundNominal) {
  auto node = make_node();
  node.set_baseline(ResourceKind::MemUsedMb, 1000.0, 10.0);
  Rng rng(3);
  double sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i)
    sum += node.sample(ResourceKind::MemUsedMb, SimTime::epoch(), rng);
  EXPECT_NEAR(sum / n, 1000.0, 2.0);
}

TEST(DefaultSoftware, EveryServiceRunsNtp) {
  for (int s = 0; s <= static_cast<int>(ServiceKind::Unknown); ++s) {
    const auto deps = default_software_for(static_cast<ServiceKind>(s));
    EXPECT_FALSE(deps.empty());
    EXPECT_EQ(deps.front(), "ntpd");
  }
}

TEST(DefaultSoftware, ComputeRunsAgents) {
  const auto deps = default_software_for(ServiceKind::NovaCompute);
  EXPECT_NE(std::find(deps.begin(), deps.end(), "nova-compute"), deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(),
                      "neutron-plugin-linuxbridge-agent"),
            deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(), "libvirtd"), deps.end());
}

TEST(ResourceKindNames, AllNamed) {
  for (std::size_t k = 0; k < kResourceKinds; ++k) {
    EXPECT_STRNE(
        std::string(to_string(static_cast<ResourceKind>(k))).c_str(), "?");
  }
}

}  // namespace
}  // namespace gretel::net
