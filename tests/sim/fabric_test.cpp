#include "net/fabric.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace gretel::net {
namespace {

using util::Rng;
using util::SimDuration;
using util::SimTime;
using wire::NodeId;

TEST(LatencyInjector, NoRulesNoDelay) {
  LatencyInjector inj;
  EXPECT_EQ(inj.extra_delay(NodeId(0), NodeId(1), SimTime::epoch()).count(),
            0);
}

TEST(LatencyInjector, RuleAppliesToEitherEndpoint) {
  LatencyInjector inj;
  const auto t0 = SimTime::epoch();
  inj.add_rule({NodeId(3), t0, t0 + SimDuration::seconds(10),
                SimDuration::millis(50)});

  EXPECT_EQ(inj.extra_delay(NodeId(3), NodeId(1), t0),
            SimDuration::millis(50));
  EXPECT_EQ(inj.extra_delay(NodeId(1), NodeId(3), t0),
            SimDuration::millis(50));
  EXPECT_EQ(inj.extra_delay(NodeId(1), NodeId(2), t0).count(), 0);
}

TEST(LatencyInjector, RuleWindowBoundaries) {
  LatencyInjector inj;
  const auto t0 = SimTime::epoch() + SimDuration::seconds(5);
  const auto t1 = t0 + SimDuration::seconds(10);
  inj.add_rule({NodeId(0), t0, t1, SimDuration::millis(50)});

  EXPECT_EQ(inj.extra_delay(NodeId(0), NodeId(1),
                            t0 - SimDuration::nanos(1)).count(),
            0);
  EXPECT_EQ(inj.extra_delay(NodeId(0), NodeId(1), t0),
            SimDuration::millis(50));
  EXPECT_EQ(inj.extra_delay(NodeId(0), NodeId(1), t1).count(), 0);
}

TEST(LatencyInjector, RulesStack) {
  LatencyInjector inj;
  const auto t0 = SimTime::epoch();
  const auto t1 = t0 + SimDuration::seconds(1);
  inj.add_rule({NodeId(0), t0, t1, SimDuration::millis(10)});
  inj.add_rule({NodeId(1), t0, t1, SimDuration::millis(5)});
  EXPECT_EQ(inj.extra_delay(NodeId(0), NodeId(1), t0),
            SimDuration::millis(15));
}

TEST(LatencyInjector, ClearRemovesRules) {
  LatencyInjector inj;
  inj.add_rule({NodeId(0), SimTime::epoch(),
                SimTime::epoch() + SimDuration::seconds(1),
                SimDuration::millis(10)});
  inj.clear();
  EXPECT_EQ(
      inj.extra_delay(NodeId(0), NodeId(1), SimTime::epoch()).count(), 0);
}

TEST(Fabric, LoopbackIsFast) {
  Fabric fabric;
  Rng rng(1);
  EXPECT_LT(fabric.delivery_delay(NodeId(2), NodeId(2), SimTime::epoch(),
                                  rng),
            SimDuration::micros(100));
}

TEST(Fabric, CrossNodeNearBase) {
  Fabric fabric(SimDuration::micros(200), SimDuration::micros(20));
  Rng rng(2);
  util::RunningStats stats;
  for (int i = 0; i < 500; ++i) {
    stats.add(static_cast<double>(
        fabric.delivery_delay(NodeId(0), NodeId(1), SimTime::epoch(), rng)
            .count()));
  }
  EXPECT_GE(stats.min(), SimDuration::micros(200).count());
  EXPECT_NEAR(stats.mean(), 208'000.0, 15'000.0);  // base + E[max(N,0)]
}

TEST(Fabric, InjectedLatencyAdds) {
  Fabric fabric(SimDuration::micros(100), SimDuration::nanos(0));
  Rng rng(3);
  fabric.injector().add_rule({NodeId(1), SimTime::epoch(),
                              SimTime::epoch() + SimDuration::seconds(60),
                              SimDuration::millis(50)});
  const auto d =
      fabric.delivery_delay(NodeId(0), NodeId(1), SimTime::epoch(), rng);
  EXPECT_GE(d, SimDuration::millis(50));
  EXPECT_LT(d, SimDuration::millis(51));
}

}  // namespace
}  // namespace gretel::net
