#include "monitor/metrics.h"
#include "monitor/watcher.h"

#include <gtest/gtest.h>

namespace gretel::monitor {
namespace {

using util::SimDuration;
using util::SimTime;
using wire::NodeId;
using wire::ServiceKind;

TEST(MetricsStore, RecordAndLookup) {
  MetricsStore store;
  store.record(NodeId(1), net::ResourceKind::CpuPct, 1.0, 42.0);
  store.record(NodeId(1), net::ResourceKind::CpuPct, 2.0, 43.0);
  const auto* series = store.series(NodeId(1), net::ResourceKind::CpuPct);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 2u);
  EXPECT_EQ(store.total_samples(), 2u);
}

TEST(MetricsStore, MissingSeriesIsNull) {
  MetricsStore store;
  EXPECT_EQ(store.series(NodeId(1), net::ResourceKind::CpuPct), nullptr);
}

TEST(MetricsStore, KeysSeparateNodesAndKinds) {
  MetricsStore store;
  store.record(NodeId(1), net::ResourceKind::CpuPct, 1.0, 10.0);
  store.record(NodeId(2), net::ResourceKind::CpuPct, 1.0, 20.0);
  store.record(NodeId(1), net::ResourceKind::MemUsedMb, 1.0, 30.0);
  EXPECT_EQ(store.series(NodeId(1), net::ResourceKind::CpuPct)->size(), 1u);
  EXPECT_EQ(store.series(NodeId(2), net::ResourceKind::CpuPct)->size(), 1u);
  EXPECT_DOUBLE_EQ(store.series(NodeId(1), net::ResourceKind::MemUsedMb)
                       ->points()[0]
                       .value,
                   30.0);
}

TEST(ResourceMonitor, SamplesEveryNodeEveryPeriod) {
  auto deployment = stack::Deployment::standard(2);  // 6 nodes
  ResourceMonitor monitor(&deployment, SimDuration::seconds(1), 1);
  MetricsStore store;
  monitor.sample_range(SimTime::epoch(),
                       SimTime::epoch() + SimDuration::seconds(10), store);
  // 10 polls x 6 nodes x 5 resources.
  EXPECT_EQ(store.total_samples(), 10u * 6u * net::kResourceKinds);
  const auto* cpu = store.series(NodeId(0), net::ResourceKind::CpuPct);
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cpu->size(), 10u);
}

TEST(ResourceMonitor, CapturesPerturbation) {
  auto deployment = stack::Deployment::standard(1);
  const auto neutron =
      deployment.primary_node_for(ServiceKind::Neutron);
  deployment.inject_cpu_surge(ServiceKind::Neutron,
                              SimTime::epoch() + SimDuration::seconds(20),
                              SimTime::epoch() + SimDuration::seconds(40),
                              80.0);
  ResourceMonitor monitor(&deployment, SimDuration::seconds(1), 2);
  MetricsStore store;
  monitor.sample_range(SimTime::epoch(),
                       SimTime::epoch() + SimDuration::seconds(60), store);
  const auto* cpu = store.series(neutron, net::ResourceKind::CpuPct);
  ASSERT_NE(cpu, nullptr);
  double in_window = 0;
  double outside = 0;
  int n_in = 0;
  int n_out = 0;
  for (const auto& p : cpu->points()) {
    if (p.t_seconds >= 20 && p.t_seconds < 40) {
      in_window += p.value;
      ++n_in;
    } else {
      outside += p.value;
      ++n_out;
    }
  }
  EXPECT_GT(in_window / n_in, outside / n_out + 50.0);
}

TEST(DependencyWatcher, CleanDeploymentHasNoFailures) {
  auto deployment = stack::Deployment::standard(2);
  DependencyWatcher watcher(&deployment);
  EXPECT_TRUE(watcher.failures_at(SimTime::epoch()).empty());
}

TEST(DependencyWatcher, DetectsDaemonCrash) {
  auto deployment = stack::Deployment::standard(1);
  deployment.crash_software(ServiceKind::NovaCompute, "nova-compute",
                            SimTime::epoch() + SimDuration::seconds(5),
                            SimTime::epoch() + SimDuration::seconds(15));
  DependencyWatcher watcher(&deployment);
  EXPECT_TRUE(watcher.failures_at(SimTime::epoch()).empty());
  const auto failures =
      watcher.failures_at(SimTime::epoch() + SimDuration::seconds(10));
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].dependency, "nova-compute");
}

TEST(DependencyWatcher, FailuresInWindowDeduplicated) {
  auto deployment = stack::Deployment::standard(1);
  deployment.crash_software(ServiceKind::Glance, "glance-api",
                            SimTime::epoch(),
                            SimTime::epoch() + SimDuration::seconds(30));
  DependencyWatcher watcher(&deployment);
  const auto failures = watcher.failures_in(
      SimTime::epoch(), SimTime::epoch() + SimDuration::seconds(10));
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].dependency, "glance-api");
  EXPECT_EQ(failures[0].observed, SimTime::epoch());
}

TEST(DependencyWatcher, EmptyWindowObservesNothing) {
  // [from, from) contains no poll, even with an active failure under it.
  auto deployment = stack::Deployment::standard(1);
  deployment.crash_software(ServiceKind::Glance, "glance-api",
                            SimTime::epoch(),
                            SimTime::epoch() + SimDuration::seconds(30));
  DependencyWatcher watcher(&deployment);
  const auto t = SimTime::epoch() + SimDuration::seconds(5);
  EXPECT_TRUE(watcher.failures_in(t, t).empty());
}

TEST(DependencyWatcher, PeriodNotDividingRangePollsWithinExclusiveEnd) {
  // Period 3 s over [0, 10): polls land at 0, 3, 6, 9 — `to` is exclusive,
  // and the last poll is the largest from + k·period strictly below it.
  auto deployment = stack::Deployment::standard(1);
  deployment.crash_software(ServiceKind::Glance, "glance-api",
                            SimTime::epoch() + SimDuration::seconds(8),
                            SimTime::epoch() + SimDuration::seconds(30));
  DependencyWatcher watcher(&deployment);

  // Polls at 0/3/6 miss the failure; the 9 s poll observes it.
  const auto hit = watcher.failures_in(
      SimTime::epoch(), SimTime::epoch() + SimDuration::seconds(10),
      SimDuration::seconds(3));
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].dependency, "glance-api");
  EXPECT_EQ(hit[0].observed, SimTime::epoch() + SimDuration::seconds(9));

  // Shrinking the window to [0, 9) removes that poll entirely.
  EXPECT_TRUE(watcher
                  .failures_in(SimTime::epoch(),
                               SimTime::epoch() + SimDuration::seconds(9),
                               SimDuration::seconds(3))
                  .empty());
}

TEST(DependencyWatcher, FailRecoverFailKeepsFirstObservation) {
  // Two distinct outages of the same daemon inside one window deduplicate
  // to a single failure stamped with the *first* observation.
  auto deployment = stack::Deployment::standard(1);
  deployment.crash_software(ServiceKind::Glance, "glance-api",
                            SimTime::epoch() + SimDuration::seconds(2),
                            SimTime::epoch() + SimDuration::seconds(4));
  deployment.crash_software(ServiceKind::Glance, "glance-api",
                            SimTime::epoch() + SimDuration::seconds(6),
                            SimTime::epoch() + SimDuration::seconds(8));
  DependencyWatcher watcher(&deployment);

  // Sanity: the daemon really did recover between the outages.
  EXPECT_TRUE(watcher.failures_at(SimTime::epoch() + SimDuration::seconds(5))
                  .empty());

  const auto failures = watcher.failures_in(
      SimTime::epoch(), SimTime::epoch() + SimDuration::seconds(10));
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].dependency, "glance-api");
  EXPECT_EQ(failures[0].observed, SimTime::epoch() + SimDuration::seconds(2));
}

TEST(DependencyWatcher, InfraReachability) {
  auto deployment = stack::Deployment::standard(1);
  DependencyWatcher watcher(&deployment);
  const auto t = SimTime::epoch() + SimDuration::seconds(1);
  EXPECT_TRUE(watcher.infra_reachable(ServiceKind::MySql, t));

  deployment.crash_software(ServiceKind::MySql, "mysqld", SimTime::epoch(),
                            SimTime::epoch() + SimDuration::seconds(10));
  EXPECT_FALSE(watcher.infra_reachable(ServiceKind::MySql, t));

  // The unreachability also surfaces as a tcp: failure entry.
  bool saw_tcp = false;
  for (const auto& f : watcher.failures_at(t)) {
    saw_tcp = saw_tcp || f.dependency == "tcp:mysql";
  }
  EXPECT_TRUE(saw_tcp);
}

TEST(DependencyWatcher, NtpStopDetected) {
  // §7.2.4: a stopped NTP agent is the root cause behind a Keystone 401.
  auto deployment = stack::Deployment::standard(1);
  const auto controller =
      deployment.primary_node_for(ServiceKind::Horizon);
  deployment.node(controller).inject_outage(
      {"ntpd", SimTime::epoch(),
       SimTime::epoch() + SimDuration::seconds(60)});
  DependencyWatcher watcher(&deployment);
  const auto failures =
      watcher.failures_at(SimTime::epoch() + SimDuration::seconds(1));
  bool saw_ntp = false;
  for (const auto& f : failures) {
    saw_ntp = saw_ntp || (f.dependency == "ntpd" && f.node == controller);
  }
  EXPECT_TRUE(saw_ntp);
}

}  // namespace
}  // namespace gretel::monitor
