#include "monitor/resource_stream.h"

#include <gtest/gtest.h>

#include "detect/level_shift.h"
#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "monitor/metrics.h"
#include "util/rng.h"

namespace gretel::monitor {
namespace {

using net::ResourceKind;
using wire::NodeId;

ResourceAnomalyStream fast_stream() {
  return ResourceAnomalyStream([] {
    detect::LevelShiftParams p;
    p.min_baseline = 8;
    p.confirm = 3;
    p.sigma_floor = 0.1;
    p.cooldown_seconds = 0.0;
    return std::make_unique<detect::LevelShiftDetector>(p);
  });
}

TEST(ResourceAnomalyStream, QuietOnStationary) {
  auto stream = fast_stream();
  util::Rng rng(1);
  for (int t = 0; t < 300; ++t) {
    EXPECT_FALSE(stream.observe(NodeId(1), ResourceKind::CpuPct, t,
                                rng.next_gaussian(10.0, 0.5))
                     .has_value());
  }
  EXPECT_TRUE(stream.alarms().empty());
  EXPECT_EQ(stream.samples(), 300u);
}

TEST(ResourceAnomalyStream, DetectsCpuSurge) {
  auto stream = fast_stream();
  util::Rng rng(2);
  for (int t = 0; t < 100; ++t) {
    stream.observe(NodeId(2), ResourceKind::CpuPct, t,
                   rng.next_gaussian(12.0, 0.5));
  }
  std::optional<ResourceAlarm> alarm;
  for (int t = 100; t < 110 && !alarm; ++t) {
    alarm = stream.observe(NodeId(2), ResourceKind::CpuPct, t, 92.0);
  }
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->node, NodeId(2));
  EXPECT_EQ(alarm->kind, ResourceKind::CpuPct);
  EXPECT_EQ(alarm->alarm.direction, detect::ShiftDirection::Up);
}

TEST(ResourceAnomalyStream, SeriesIndependentPerNodeAndKind) {
  auto stream = fast_stream();
  // Flat CPU on node 1, flat memory on node 1, flat CPU on node 2 — a
  // surge on node 2 must not alarm node 1's detectors.
  for (int t = 0; t < 50; ++t) {
    stream.observe(NodeId(1), ResourceKind::CpuPct, t, 10.0);
    stream.observe(NodeId(1), ResourceKind::MemUsedMb, t, 4000.0);
    stream.observe(NodeId(2), ResourceKind::CpuPct, t, 10.0);
  }
  for (int t = 50; t < 60; ++t) {
    stream.observe(NodeId(2), ResourceKind::CpuPct, t, 95.0);
  }
  for (const auto& a : stream.alarms()) {
    EXPECT_EQ(a.node, NodeId(2));
    EXPECT_EQ(a.kind, ResourceKind::CpuPct);
  }
  EXPECT_FALSE(stream.alarms().empty());
}

TEST(ResourceAnomalyStream, AlarmsForFiltersWindowAndNode) {
  auto stream = fast_stream();
  for (int t = 0; t < 50; ++t) {
    stream.observe(NodeId(3), ResourceKind::DiskIoOps, t, 100.0);
  }
  for (int t = 50; t < 56; ++t) {
    stream.observe(NodeId(3), ResourceKind::DiskIoOps, t, 900.0);
  }
  EXPECT_FALSE(stream.alarms_for(NodeId(3), 45.0, 60.0).empty());
  EXPECT_TRUE(stream.alarms_for(NodeId(3), 0.0, 45.0).empty());
  EXPECT_TRUE(stream.alarms_for(NodeId(4), 0.0, 100.0).empty());
}

// The §7.2.2 loop through the analyzer facade: streaming metrics raise a
// CPU resource alarm on the Neutron node during the surge.
TEST(AnalyzerMetrics, OnMetricRunsOnlineDetection) {
  auto catalog = tempest::TempestCatalog::build(81, 0.02);
  auto deployment = stack::Deployment::standard(1);
  auto training = core::learn_fingerprints(catalog, deployment);

  const auto neutron =
      deployment.primary_node_for(wire::ServiceKind::Neutron);
  deployment.inject_cpu_surge(wire::ServiceKind::Neutron,
                              util::SimTime::epoch() +
                                  util::SimDuration::seconds(60),
                              util::SimTime::epoch() +
                                  util::SimDuration::seconds(120),
                              80.0);

  core::Analyzer::Options options;
  options.config.fp_max = training.fp_max;
  core::Analyzer analyzer(&training.db, &catalog.apis(), &deployment,
                          options);

  ResourceMonitor monitor(&deployment, util::SimDuration::seconds(1), 5);
  monitor.sample_range(
      util::SimTime::epoch(),
      util::SimTime::epoch() + util::SimDuration::seconds(120),
      [&analyzer](wire::NodeId node, ResourceKind kind, double t, double v) {
        analyzer.on_metric(node, kind, t, v);
      });

  // The samples landed in the metrics store...
  ASSERT_NE(analyzer.metrics().series(neutron, ResourceKind::CpuPct),
            nullptr);
  // ...and the online stream flagged the CPU shift on the Neutron node.
  bool cpu_alarm = false;
  for (const auto& a : analyzer.resource_alarms()) {
    cpu_alarm = cpu_alarm || (a.node == neutron &&
                              a.kind == ResourceKind::CpuPct &&
                              a.alarm.t_seconds >= 60.0);
  }
  EXPECT_TRUE(cpu_alarm);
}

}  // namespace
}  // namespace gretel::monitor
