#include "stack/workflow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/capture.h"
#include "stack/faults.h"

namespace gretel::stack {
namespace {

using util::SimDuration;
using util::SimTime;
using wire::ApiCatalog;
using wire::ApiKind;
using wire::HttpMethod;
using wire::ServiceKind;

// A small fixed operation: POST -> RPC -> GET with a status poll.
class WorkflowTest : public ::testing::Test {
 protected:
  WorkflowTest() : deployment_(Deployment::standard(2)) {
    infra_ = register_infra_apis(catalog_);
    post_ = catalog_.add_rest(ServiceKind::Nova, HttpMethod::Post,
                              "/v2.1/servers");
    rpc_ = catalog_.add_rpc(ServiceKind::NovaCompute, "nova-compute",
                            "build_and_run_instance");
    get_ = catalog_.add_rest(ServiceKind::Glance, HttpMethod::Get,
                             "/v2/images/<ID>");
    poll_ = catalog_.add_rest(ServiceKind::Nova, HttpMethod::Get,
                              "/v2.1/servers/<ID>");

    op_.id = wire::OpTemplateId(0);
    op_.name = "mini-vm-create";
    op_.category = Category::Compute;
    op_.poll_api = poll_;
    op_.steps = {
        {post_, ServiceKind::Horizon, ServiceKind::Nova,
         SimDuration::millis(10), false, 1.0},
        {rpc_, ServiceKind::Nova, ServiceKind::NovaCompute,
         SimDuration::millis(20), false, 1.0},
        {get_, ServiceKind::NovaCompute, ServiceKind::Glance,
         SimDuration::millis(5), false, 1.0},
        {poll_, ServiceKind::Horizon, ServiceKind::Nova,
         SimDuration::millis(4), false, 1.0},
    };
  }

  WorkflowExecutor::Options quiet_options() {
    WorkflowExecutor::Options opt;
    opt.emit_heartbeats = false;
    opt.emit_keystone_auth = false;
    opt.duplicate_get_prob = 0.0;
    return opt;
  }

  std::vector<net::WireRecord> run(std::vector<Launch> launches,
                                   WorkflowExecutor::Options opt) {
    WorkflowExecutor exec(&deployment_, &catalog_, &infra_, 42, opt);
    return exec.execute(launches);
  }

  Deployment deployment_;
  ApiCatalog catalog_;
  InfraApis infra_;
  wire::ApiId post_, rpc_, get_, poll_;
  OperationTemplate op_;
};

TEST_F(WorkflowTest, SuccessfulRunEmitsRequestResponsePairs) {
  const auto records = run({{&op_, SimTime::epoch(), std::nullopt}},
                           quiet_options());
  EXPECT_EQ(records.size(), op_.steps.size() * 2);
}

TEST_F(WorkflowTest, RecordsTimeSorted) {
  std::vector<Launch> launches{
      {&op_, SimTime::epoch(), std::nullopt},
      {&op_, SimTime::epoch() + SimDuration::millis(5), std::nullopt}};
  const auto records = run(launches, quiet_options());
  EXPECT_TRUE(std::is_sorted(
      records.begin(), records.end(),
      [](const auto& a, const auto& b) { return a.ts < b.ts; }));
}

TEST_F(WorkflowTest, DecodableEndToEnd) {
  const auto records = run({{&op_, SimTime::epoch(), std::nullopt}},
                           quiet_options());
  net::CaptureTap tap(&catalog_, deployment_.service_by_port());
  std::size_t decoded = 0;
  for (const auto& r : records) decoded += tap.decode(r).has_value();
  EXPECT_EQ(decoded, records.size());
  EXPECT_EQ(tap.stats().decode_failures, 0u);
  EXPECT_EQ(tap.stats().unknown_api, 0u);
}

TEST_F(WorkflowTest, DeterministicForSeed) {
  const auto a = run({{&op_, SimTime::epoch(), std::nullopt}},
                     quiet_options());
  const auto b = run({{&op_, SimTime::epoch(), std::nullopt}},
                     quiet_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].ts, b[i].ts);
  }
}

TEST_F(WorkflowTest, RestFaultEmitsErrorResponseAndAborts) {
  Launch launch{&op_, SimTime::epoch(), conflict_fault(0)};
  const auto records = run({launch}, quiet_options());
  // Step 0 request+response, then the poll relay request+response.
  ASSERT_EQ(records.size(), 4u);

  net::CaptureTap tap(&catalog_, deployment_.service_by_port());
  std::vector<wire::Event> events;
  for (const auto& r : records) {
    auto ev = tap.decode(r);
    ASSERT_TRUE(ev.has_value());
    events.push_back(*ev);
  }
  EXPECT_EQ(events[0].api, post_);
  EXPECT_TRUE(events[1].is_error());
  EXPECT_EQ(events[1].status, 409);
  EXPECT_EQ(events[2].api, poll_);
  EXPECT_TRUE(events[3].is_error());
}

TEST_F(WorkflowTest, RpcFaultRelaysViaRestPoll) {
  Launch launch{&op_, SimTime::epoch(),
                no_valid_host_fault(/*step=*/1)};
  const auto records = run({launch}, quiet_options());
  net::CaptureTap tap(&catalog_, deployment_.service_by_port());

  bool saw_rpc_error = false;
  bool saw_rest_error = false;
  for (const auto& r : records) {
    const auto ev = tap.decode(r);
    ASSERT_TRUE(ev.has_value());
    if (ev->is_error() && ev->kind == ApiKind::Rpc) saw_rpc_error = true;
    if (ev->is_error() && ev->kind == ApiKind::Rest) {
      saw_rest_error = true;
      EXPECT_EQ(ev->api, poll_);
      EXPECT_NE(ev->error_text.find("No valid host"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_rpc_error);
  EXPECT_TRUE(saw_rest_error);
}

TEST_F(WorkflowTest, NonAbortingFaultContinues) {
  OperationalFault fault;
  fault.fail_step = 0;
  fault.status = 409;
  fault.abort = false;
  const auto records =
      run({{&op_, SimTime::epoch(), fault}}, quiet_options());
  EXPECT_EQ(records.size(), op_.steps.size() * 2);
}

TEST_F(WorkflowTest, TransientStepsVaryAcrossRuns) {
  auto op = op_;
  ApiStep transient = op.steps[2];
  transient.transient = true;
  transient.transient_prob = 0.5;
  op.steps.insert(op.steps.begin() + 2, transient);

  std::vector<Launch> launches;
  for (int i = 0; i < 40; ++i) {
    launches.push_back(
        {&op, SimTime::epoch() + SimDuration::seconds(i), std::nullopt});
  }
  const auto records = run(launches, quiet_options());
  // Sizes between all-absent and all-present bounds.
  EXPECT_GT(records.size(), 40u * op_.steps.size() * 2);
  EXPECT_LT(records.size(), 40u * (op_.steps.size() + 1) * 2);
}

TEST_F(WorkflowTest, HeartbeatsEmittedAsNoise) {
  auto opt = quiet_options();
  opt.emit_heartbeats = true;
  opt.heartbeat_period = SimDuration::seconds(2);
  std::vector<Launch> launches{
      {&op_, SimTime::epoch(), std::nullopt},
      {&op_, SimTime::epoch() + SimDuration::seconds(20), std::nullopt}};
  const auto records = run(launches, opt);

  std::size_t noise = 0;
  for (const auto& r : records) noise += r.truth_noise ? 1 : 0;
  EXPECT_GT(noise, 10u);  // ~10s span, 2 computes, 2s period, pairs
}

TEST_F(WorkflowTest, KeystoneAuthPrecedesOperation) {
  auto opt = quiet_options();
  opt.emit_keystone_auth = true;
  const auto records = run({{&op_, SimTime::epoch(), std::nullopt}}, opt);
  ASSERT_GE(records.size(), 2u);
  net::CaptureTap tap(&catalog_, deployment_.service_by_port());
  const auto first = tap.decode(records.front());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->api, infra_.keystone_auth);
  EXPECT_TRUE(first->truth_noise);
}

TEST_F(WorkflowTest, LatencyInjectionRaisesObservedLatency) {
  // Baseline.
  auto records = run({{&op_, SimTime::epoch(), std::nullopt}},
                     quiet_options());
  const auto base_latency = records[5].ts - records[4].ts;  // GET exchange

  // With 50ms injected on the Glance node (tc analog).
  deployment_.inject_link_latency(ServiceKind::Glance, SimTime::epoch(),
                                  SimTime::epoch() + SimDuration::minutes(5),
                                  SimDuration::millis(50));
  records = run({{&op_, SimTime::epoch(), std::nullopt}}, quiet_options());
  const auto injected_latency = records[5].ts - records[4].ts;
  EXPECT_GT(injected_latency, base_latency + SimDuration::millis(90));
}

TEST_F(WorkflowTest, CpuLoadScalesServiceTime) {
  auto records = run({{&op_, SimTime::epoch(), std::nullopt}},
                     quiet_options());
  const auto base = records[1].ts - records[0].ts;  // POST to Nova

  deployment_.inject_cpu_surge(ServiceKind::Nova, SimTime::epoch(),
                               SimTime::epoch() + SimDuration::minutes(5),
                               90.0);
  records = run({{&op_, SimTime::epoch(), std::nullopt}}, quiet_options());
  const auto loaded = records[1].ts - records[0].ts;
  EXPECT_GT(loaded.count(), base.count() * 2);
}

TEST_F(WorkflowTest, InstanceIdsSequential) {
  WorkflowExecutor exec(&deployment_, &catalog_, &infra_, 1,
                        quiet_options());
  EXPECT_EQ(exec.peek_next_instance(), wire::OpInstanceId(1));
  std::vector<Launch> launches{{&op_, SimTime::epoch(), std::nullopt},
                               {&op_, SimTime::epoch(), std::nullopt}};
  const auto records = exec.execute(launches);
  EXPECT_EQ(exec.peek_next_instance(), wire::OpInstanceId(3));

  std::set<std::uint32_t> instances;
  for (const auto& r : records) {
    if (r.truth_instance.valid()) instances.insert(r.truth_instance.value());
  }
  EXPECT_EQ(instances, (std::set<std::uint32_t>{1, 2}));
}

TEST_F(WorkflowTest, IdentifiersShareTenantAcrossInstances) {
  WorkflowExecutor exec(&deployment_, &catalog_, &infra_, 1,
                        quiet_options());
  std::vector<Launch> launches{{&op_, SimTime::epoch(), std::nullopt}};
  const auto records = exec.execute(launches);
  ASSERT_FALSE(records.empty());
  ASSERT_GE(records[0].identifiers.size(), 2u);
  // Tenant id in the 1000..1039 range (40 shared tenants).
  EXPECT_GE(records[0].identifiers[0], 1000u);
  EXPECT_LT(records[0].identifiers[0], 1040u);
}

TEST(InfraApis, RegisteredOnce) {
  ApiCatalog catalog;
  const auto a = register_infra_apis(catalog);
  const auto b = register_infra_apis(catalog);
  EXPECT_EQ(a.keystone_auth, b.keystone_auth);
  EXPECT_EQ(a.heartbeat, b.heartbeat);
  EXPECT_EQ(catalog.size(), 4u);
}

}  // namespace
}  // namespace gretel::stack
