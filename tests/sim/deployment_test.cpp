#include "stack/deployment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gretel::stack {
namespace {

using util::SimDuration;
using util::SimTime;
using wire::NodeId;
using wire::ServiceKind;

TEST(Deployment, StandardTopologyMatchesPaper) {
  const auto d = Deployment::standard(3);
  // 7 servers including 3 computes (§7 experimental setup).
  EXPECT_EQ(d.node_count(), 7u);
  EXPECT_EQ(d.nodes_for(ServiceKind::NovaCompute).size(), 3u);
  EXPECT_EQ(d.nodes_for(ServiceKind::Nova).size(), 1u);
  EXPECT_EQ(d.nodes_for(ServiceKind::Neutron).size(), 1u);
  EXPECT_EQ(d.nodes_for(ServiceKind::Glance).size(), 1u);
  EXPECT_EQ(d.nodes_for(ServiceKind::Horizon).size(), 1u);
}

TEST(Deployment, DistinctIps) {
  const auto d = Deployment::standard(3);
  std::set<std::uint32_t> ips;
  for (auto id : d.node_ids()) ips.insert(d.node(id).ip().value());
  EXPECT_EQ(ips.size(), d.node_count());
}

TEST(Deployment, SoftwareInstalledPerService) {
  const auto d = Deployment::standard(1);
  const auto compute = d.primary_node_for(ServiceKind::NovaCompute);
  const auto& sw = d.node(compute).software();
  EXPECT_NE(std::find(sw.begin(), sw.end(), "nova-compute"), sw.end());
  EXPECT_NE(std::find(sw.begin(), sw.end(),
                      "neutron-plugin-linuxbridge-agent"),
            sw.end());
  EXPECT_NE(std::find(sw.begin(), sw.end(), "ntpd"), sw.end());
}

TEST(Deployment, EndpointForService) {
  const auto d = Deployment::standard(1);
  const auto ep = d.endpoint_for(ServiceKind::Neutron);
  EXPECT_EQ(ep.port, wire::ports::kNeutronApi);
  EXPECT_EQ(ep.ip.value(),
            d.node(d.primary_node_for(ServiceKind::Neutron)).ip().value());
}

TEST(Deployment, ServiceByPortSkipsAgents) {
  const auto d = Deployment::standard(2);
  const auto map = d.service_by_port();
  EXPECT_EQ(map.at(wire::ports::kNovaApi), ServiceKind::Nova);
  EXPECT_EQ(map.at(wire::ports::kNeutronApi), ServiceKind::Neutron);
  EXPECT_EQ(map.at(wire::ports::kGlanceApi), ServiceKind::Glance);
}

TEST(Deployment, InjectCpuSurgeHitsServiceNode) {
  auto d = Deployment::standard(1);
  const auto t0 = SimTime::epoch();
  d.inject_cpu_surge(ServiceKind::Neutron, t0, t0 + SimDuration::seconds(10),
                     70.0);
  const auto node = d.primary_node_for(ServiceKind::Neutron);
  EXPECT_GT(d.node(node).nominal(net::ResourceKind::CpuPct,
                                 t0 + SimDuration::seconds(5)),
            60.0);
  const auto other = d.primary_node_for(ServiceKind::Nova);
  EXPECT_LT(d.node(other).nominal(net::ResourceKind::CpuPct,
                                  t0 + SimDuration::seconds(5)),
            30.0);
}

TEST(Deployment, InjectDiskExhaustion) {
  auto d = Deployment::standard(1);
  const auto t0 = SimTime::epoch();
  const auto node = d.primary_node_for(ServiceKind::Glance);
  const double before =
      d.node(node).nominal(net::ResourceKind::DiskFreeMb, t0);
  d.inject_disk_exhaustion(ServiceKind::Glance,
                           t0 + SimDuration::seconds(1),
                           t0 + SimDuration::seconds(10), before - 100.0);
  EXPECT_NEAR(d.node(node).nominal(net::ResourceKind::DiskFreeMb,
                                   t0 + SimDuration::seconds(5)),
              100.0, 1e-6);
}

TEST(Deployment, CrashSoftwareOnAllServiceNodes) {
  auto d = Deployment::standard(3);
  const auto t0 = SimTime::epoch();
  d.crash_software(ServiceKind::NovaCompute,
                   "neutron-plugin-linuxbridge-agent", t0,
                   t0 + SimDuration::seconds(30));
  for (auto id : d.nodes_for(ServiceKind::NovaCompute)) {
    EXPECT_FALSE(d.node(id).software_running(
        "neutron-plugin-linuxbridge-agent", t0 + SimDuration::seconds(1)));
  }
}

TEST(Deployment, InjectLinkLatency) {
  auto d = Deployment::standard(1);
  const auto t0 = SimTime::epoch();
  d.inject_link_latency(ServiceKind::Glance, t0,
                        t0 + SimDuration::seconds(10),
                        SimDuration::millis(50));
  const auto glance = d.primary_node_for(ServiceKind::Glance);
  EXPECT_EQ(d.fabric().injector().extra_delay(NodeId(0), glance,
                                              t0 + SimDuration::seconds(1)),
            SimDuration::millis(50));
}

TEST(RestPortFor, WellKnownPorts) {
  EXPECT_EQ(rest_port_for(ServiceKind::Keystone), 5000);
  EXPECT_EQ(rest_port_for(ServiceKind::Nova), 8774);
  EXPECT_EQ(rest_port_for(ServiceKind::Neutron), 9696);
  EXPECT_EQ(rest_port_for(ServiceKind::Glance), 9292);
  EXPECT_EQ(rest_port_for(ServiceKind::Cinder), 8776);
}

}  // namespace
}  // namespace gretel::stack
