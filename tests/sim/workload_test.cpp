#include "tempest/workload.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace gretel::tempest {
namespace {

using stack::Category;

const TempestCatalog& small_catalog() {
  static const TempestCatalog catalog = TempestCatalog::build(5, 0.08);
  return catalog;
}

TEST(Workload, CountsMatchSpec) {
  WorkloadSpec spec;
  spec.concurrent_tests = 40;
  spec.faults = 4;
  const auto w = make_parallel_workload(small_catalog(), spec);
  EXPECT_EQ(w.launches.size(), 44u);
  EXPECT_EQ(w.faulty_launch_idx.size(), 4u);
}

TEST(Workload, FaultyLaunchesCarryFaults) {
  WorkloadSpec spec;
  spec.concurrent_tests = 10;
  spec.faults = 3;
  const auto w = make_parallel_workload(small_catalog(), spec);
  std::set<std::size_t> faulty(w.faulty_launch_idx.begin(),
                               w.faulty_launch_idx.end());
  for (std::size_t i = 0; i < w.launches.size(); ++i) {
    EXPECT_EQ(w.launches[i].fault.has_value(), faulty.contains(i));
  }
}

TEST(Workload, FaultsOnlyFromComputeAndNetwork) {
  WorkloadSpec spec;
  spec.concurrent_tests = 0;
  spec.faults = 30;
  spec.seed = 3;
  const auto w = make_parallel_workload(small_catalog(), spec);
  for (auto idx : w.faulty_launch_idx) {
    const auto cat = w.launches[idx].op->category;
    EXPECT_TRUE(cat == Category::Compute || cat == Category::Network);
  }
}

TEST(Workload, FaultStepIsStateChange) {
  WorkloadSpec spec;
  spec.concurrent_tests = 0;
  spec.faults = 20;
  const auto w = make_parallel_workload(small_catalog(), spec);
  for (auto idx : w.faulty_launch_idx) {
    const auto& launch = w.launches[idx];
    const auto& step = launch.op->steps[launch.fault->fail_step];
    EXPECT_TRUE(small_catalog().apis().get(step.api).state_change());
    EXPECT_FALSE(step.transient);
    EXPECT_GE(launch.fault->status, 400);
  }
}

TEST(Workload, StartsWithinWindow) {
  WorkloadSpec spec;
  spec.concurrent_tests = 50;
  spec.window = util::SimDuration::seconds(10);
  const auto w = make_parallel_workload(small_catalog(), spec);
  for (const auto& l : w.launches) {
    EXPECT_GE(l.start, util::SimTime::epoch());
    EXPECT_LT(l.start, util::SimTime::epoch() + spec.window);
  }
}

TEST(Workload, IdenticalFaultyOpRepeats) {
  WorkloadSpec spec;
  spec.concurrent_tests = 5;
  spec.faults = 6;
  spec.identical_faulty_op = small_catalog().canonical().vm_create;
  const auto w = make_parallel_workload(small_catalog(), spec);
  for (auto idx : w.faulty_launch_idx) {
    EXPECT_EQ(w.launches[idx].op->name, "vm-create");
  }
}

TEST(Workload, DeterministicForSeed) {
  WorkloadSpec spec;
  spec.concurrent_tests = 20;
  spec.faults = 2;
  spec.seed = 17;
  const auto a = make_parallel_workload(small_catalog(), spec);
  const auto b = make_parallel_workload(small_catalog(), spec);
  ASSERT_EQ(a.launches.size(), b.launches.size());
  for (std::size_t i = 0; i < a.launches.size(); ++i) {
    EXPECT_EQ(a.launches[i].op, b.launches[i].op);
    EXPECT_EQ(a.launches[i].start, b.launches[i].start);
  }
}

TEST(Workload, CategoryMixTracksDistribution) {
  WorkloadSpec spec;
  spec.concurrent_tests = 2000;
  spec.seed = 11;
  const auto w = make_parallel_workload(small_catalog(), spec);
  std::array<int, stack::kCategories> counts{};
  for (const auto& l : w.launches) {
    ++counts[static_cast<std::size_t>(l.op->category)];
  }
  // Compute (517/1200) should dominate Image (55/1200) by a wide margin.
  EXPECT_GT(counts[static_cast<std::size_t>(Category::Compute)],
            5 * counts[static_cast<std::size_t>(Category::Image)]);
}

TEST(IsolatedRuns, SpacedByGap) {
  const auto runs = make_isolated_runs(small_catalog(), 0, 4,
                                       util::SimDuration::seconds(30));
  ASSERT_EQ(runs.size(), 4u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].op, &small_catalog().operation(0));
    EXPECT_FALSE(runs[i].fault.has_value());
    EXPECT_EQ(runs[i].start,
              util::SimTime::epoch() +
                  util::SimDuration::seconds(30) * static_cast<int>(i));
  }
}

}  // namespace
}  // namespace gretel::tempest
