#include "wire/http_codec.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace gretel::wire {

namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kVersion = "HTTP/1.1";

// Header names are ASCII; a locale-aware tolower per character is measurable
// overhead on the capture hot path, so lower-case the ASCII range directly.
inline char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : c;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

// Consumes one CRLF-terminated line from `rest`; nullopt when no CRLF found.
std::optional<std::string_view> take_line(std::string_view& rest) {
  const auto pos = rest.find(kCrlf);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view line = rest.substr(0, pos);
  rest.remove_prefix(pos + kCrlf.size());
  return line;
}

// Splits one "Name: value" line; false on malformed input.
bool split_header_line(std::string_view line, HttpHeaderView& out) {
  const auto colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::string_view value = line.substr(colon + 1);
  while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
  out = HttpHeaderView{line.substr(0, colon), value};
  return true;
}

// Parses "Name: value" header lines until the blank line into an
// arena-backed view array; false on malformed input or missing terminator.
// Single pass through a stack buffer sized for real-world messages, then one
// exact-size arena copy; messages with more headers fall back to a counting
// pass so the array is still allocated exactly once.
bool parse_headers(std::string_view& rest, util::Arena& arena,
                   HttpHeadersView& out) {
  constexpr std::size_t kInline = 32;
  HttpHeaderView local[kInline];
  const std::string_view saved = rest;
  std::size_t count = 0;
  while (true) {
    auto line = take_line(rest);
    if (!line) return false;
    if (line->empty()) {
      HttpHeaderView* fields =
          count == 0 ? nullptr : arena.allocate_array<HttpHeaderView>(count);
      for (std::size_t i = 0; i < count; ++i) fields[i] = local[i];
      out.fields = std::span<const HttpHeaderView>(fields, count);
      return true;
    }
    if (count == kInline) break;  // rare: fall back to two passes
    if (!split_header_line(*line, local[count])) return false;
    ++count;
  }

  // Overflow path: count the remaining lines, then fill from the start.
  rest = saved;
  count = 0;
  {
    std::string_view scan = rest;
    while (true) {
      auto line = take_line(scan);
      if (!line) return false;
      if (line->empty()) break;
      const auto colon = line->find(':');
      if (colon == std::string_view::npos || colon == 0) return false;
      ++count;
    }
  }
  HttpHeaderView* fields = arena.allocate_array<HttpHeaderView>(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto line = take_line(rest);
    if (!split_header_line(*line, fields[i])) return false;
  }
  take_line(rest);  // the blank terminator, verified by the counting pass
  out.fields = std::span<const HttpHeaderView>(fields, count);
  return true;
}

// Reads the body per Content-Length; strict about truncation.
std::optional<std::string_view> read_body(std::string_view rest,
                                          const HttpHeadersView& headers) {
  std::size_t length = 0;
  if (auto cl = headers.get("Content-Length")) {
    const auto* begin = cl->data();
    const auto* end = begin + cl->size();
    auto [ptr, ec] = std::from_chars(begin, end, length);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
  }
  if (rest.size() < length) return std::nullopt;  // truncated capture
  return rest.substr(0, length);
}

void append_headers(std::string& out, const HttpHeaders& headers,
                    std::size_t body_size) {
  bool have_cl = false;
  for (const auto& [name, value] : headers.fields) {
    out += name;
    out += ": ";
    out += value;
    out += kCrlf;
    if (iequals(name, "Content-Length")) have_cl = true;
  }
  if (!have_cl) {
    out += "Content-Length: ";
    out += std::to_string(body_size);
    out += kCrlf;
  }
  out += kCrlf;
}

}  // namespace

std::optional<std::string_view> HttpHeaders::get(std::string_view name) const {
  for (const auto& [n, v] : fields) {
    if (iequals(n, name)) return std::string_view(v);
  }
  return std::nullopt;
}

std::optional<std::string_view> HttpHeadersView::get(
    std::string_view name) const {
  for (const auto& [n, v] : fields) {
    if (iequals(n, name)) return v;
  }
  return std::nullopt;
}

std::string_view reason_phrase(std::uint16_t status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 202:
      return "Accepted";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 409:
      return "Conflict";
    case 413:
      return "Request Entity Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

std::string serialize(const HttpRequest& req) {
  std::string out;
  out.reserve(128 + req.body.size());
  out += to_string(req.method);
  out += ' ';
  out += req.target;
  out += ' ';
  out += kVersion;
  out += kCrlf;
  append_headers(out, req.headers, req.body.size());
  out += req.body;
  return out;
}

std::string serialize(const HttpResponse& resp) {
  std::string out;
  out.reserve(128 + resp.body.size());
  out += kVersion;
  out += ' ';
  out += std::to_string(resp.status);
  out += ' ';
  out += resp.reason.empty() ? std::string(reason_phrase(resp.status))
                             : resp.reason;
  out += kCrlf;
  append_headers(out, resp.headers, resp.body.size());
  out += resp.body;
  return out;
}

std::optional<HttpRequestView> parse_http_request(std::string_view bytes,
                                                  util::Arena& arena) {
  std::string_view rest = bytes;
  auto line = take_line(rest);
  if (!line) return std::nullopt;

  // Request line: METHOD SP target SP HTTP/1.1
  const auto sp1 = line->find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const auto sp2 = line->find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;
  const auto method = parse_http_method(line->substr(0, sp1));
  if (!method) return std::nullopt;
  std::string_view target = line->substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || line->substr(sp2 + 1) != kVersion)
    return std::nullopt;

  HttpRequestView req;
  req.method = *method;
  req.target = target;
  if (!parse_headers(rest, arena, req.headers)) return std::nullopt;
  auto body = read_body(rest, req.headers);
  if (!body) return std::nullopt;
  req.body = *body;
  return req;
}

std::optional<HttpResponseView> parse_http_response(std::string_view bytes,
                                                    util::Arena& arena) {
  std::string_view rest = bytes;
  auto line = take_line(rest);
  if (!line) return std::nullopt;

  // Status line: HTTP/1.1 SP code SP reason
  const auto sp1 = line->find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  if (line->substr(0, sp1) != kVersion) return std::nullopt;
  const auto sp2 = line->find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;
  std::string_view code = line->substr(sp1 + 1, sp2 - sp1 - 1);
  std::uint16_t status = 0;
  {
    auto [ptr, ec] = std::from_chars(code.data(), code.data() + code.size(),
                                     status);
    if (ec != std::errc{} || ptr != code.data() + code.size())
      return std::nullopt;
  }
  if (status < 100 || status > 599) return std::nullopt;

  HttpResponseView resp;
  resp.status = status;
  resp.reason = line->substr(sp2 + 1);
  if (!parse_headers(rest, arena, resp.headers)) return std::nullopt;
  auto body = read_body(rest, resp.headers);
  if (!body) return std::nullopt;
  resp.body = *body;
  return resp;
}

std::optional<HttpRequest> parse_http_request(std::string_view bytes) {
  thread_local util::Arena arena(4096);
  arena.reset();
  const auto view = parse_http_request(bytes, arena);
  if (!view) return std::nullopt;
  HttpRequest req;
  req.method = view->method;
  req.target = std::string(view->target);
  for (const auto& [name, value] : view->headers.fields)
    req.headers.set(std::string(name), std::string(value));
  req.body = std::string(view->body);
  return req;
}

std::optional<HttpResponse> parse_http_response(std::string_view bytes) {
  thread_local util::Arena arena(4096);
  arena.reset();
  const auto view = parse_http_response(bytes, arena);
  if (!view) return std::nullopt;
  HttpResponse resp;
  resp.status = view->status;
  resp.reason = std::string(view->reason);
  for (const auto& [name, value] : view->headers.fields)
    resp.headers.set(std::string(name), std::string(value));
  resp.body = std::string(view->body);
  return resp;
}

}  // namespace gretel::wire
