#include "wire/amqp_codec.h"

namespace gretel::wire {

namespace {

constexpr char kMagic = static_cast<char>(0xA9);
constexpr char kFrameEnd = static_cast<char>(0xCE);

void put_u16(std::string& out, std::uint16_t v) {
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>(v & 0xFF);
}

void put_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>((v >> 24) & 0xFF);
  out += static_cast<char>((v >> 16) & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>(v & 0xFF);
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
}

bool get_u8(std::string_view& in, std::uint8_t& v) {
  if (in.empty()) return false;
  v = static_cast<std::uint8_t>(in.front());
  in.remove_prefix(1);
  return true;
}

bool get_u16(std::string_view& in, std::uint16_t& v) {
  if (in.size() < 2) return false;
  v = static_cast<std::uint16_t>(
      (static_cast<std::uint8_t>(in[0]) << 8) |
      static_cast<std::uint8_t>(in[1]));
  in.remove_prefix(2);
  return true;
}

bool get_u32(std::string_view& in, std::uint32_t& v) {
  if (in.size() < 4) return false;
  v = (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[0])) << 24) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[1])) << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[2])) << 8) |
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[3]));
  in.remove_prefix(4);
  return true;
}

bool get_u64(std::string_view& in, std::uint64_t& v) {
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
  if (!get_u32(in, hi) || !get_u32(in, lo)) return false;
  v = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return true;
}

bool get_short_string(std::string_view& in, std::string_view& out) {
  std::uint8_t len = 0;
  if (!get_u8(in, len)) return false;
  if (in.size() < len) return false;
  out = in.substr(0, len);
  in.remove_prefix(len);
  return true;
}

}  // namespace

std::string serialize(const AmqpFrame& frame) {
  std::string out;
  out.reserve(32 + frame.routing_key.size() + frame.method_name.size() +
              frame.payload.size());
  out += kMagic;
  out += static_cast<char>(frame.type);
  put_u16(out, frame.channel);
  put_u64(out, frame.msg_id);
  put_u32(out, frame.correlation_id);
  out += static_cast<char>(frame.routing_key.size() & 0xFF);
  out += frame.routing_key.substr(0, 255);
  out += static_cast<char>(frame.method_name.size() & 0xFF);
  out += frame.method_name.substr(0, 255);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  out += kFrameEnd;
  return out;
}

std::optional<AmqpFrameView> parse_amqp_frame_view(std::string_view bytes) {
  std::string_view in = bytes;
  std::uint8_t magic = 0;
  if (!get_u8(in, magic) || magic != static_cast<std::uint8_t>(kMagic))
    return std::nullopt;

  AmqpFrameView frame;
  std::uint8_t type = 0;
  if (!get_u8(in, type)) return std::nullopt;
  if (type != static_cast<std::uint8_t>(AmqpFrameType::Publish) &&
      type != static_cast<std::uint8_t>(AmqpFrameType::Deliver))
    return std::nullopt;
  frame.type = static_cast<AmqpFrameType>(type);

  if (!get_u16(in, frame.channel)) return std::nullopt;
  if (!get_u64(in, frame.msg_id)) return std::nullopt;
  if (!get_u32(in, frame.correlation_id)) return std::nullopt;
  if (!get_short_string(in, frame.routing_key)) return std::nullopt;
  if (!get_short_string(in, frame.method_name)) return std::nullopt;

  std::uint32_t payload_len = 0;
  if (!get_u32(in, payload_len)) return std::nullopt;
  // 64-bit compare: payload_len + 1 would wrap to 0 at UINT32_MAX.
  if (in.size() < static_cast<std::uint64_t>(payload_len) + 1)
    return std::nullopt;  // payload + end
  frame.payload = in.substr(0, payload_len);
  in.remove_prefix(payload_len);

  std::uint8_t end = 0;
  if (!get_u8(in, end) || end != static_cast<std::uint8_t>(kFrameEnd))
    return std::nullopt;
  if (!in.empty()) return std::nullopt;  // trailing garbage
  return frame;
}

std::optional<AmqpFrame> parse_amqp_frame(std::string_view bytes) {
  const auto view = parse_amqp_frame_view(bytes);
  if (!view) return std::nullopt;
  AmqpFrame frame;
  frame.type = view->type;
  frame.channel = view->channel;
  frame.routing_key = std::string(view->routing_key);
  frame.method_name = std::string(view->method_name);
  frame.msg_id = view->msg_id;
  frame.correlation_id = view->correlation_id;
  frame.payload = std::string(view->payload);
  return frame;
}

std::string make_rpc_error_payload(std::string_view exception_class,
                                   std::string_view message) {
  std::string out;
  out.reserve(64 + exception_class.size() + message.size());
  out += R"({"_error": {"kind": ")";
  out += exception_class;
  out += R"(", "failure": ")";
  out += message;
  out += R"("}})";
  return out;
}

bool rpc_payload_has_error(std::string_view payload) {
  return payload.find("\"_error\"") != std::string_view::npos ||
         payload.find("\"failure\"") != std::string_view::npos;
}

}  // namespace gretel::wire
