// The OpenStack API surface as GRETEL sees it on the wire.
//
// GRETEL's key observation (§5) is that OpenStack components interact through
// a *finite* set of REST and RPC interfaces.  ApiCatalog is the registry of
// those interfaces; every captured message resolves to one ApiId, and every
// ApiId maps to one fingerprint symbol (§6 "Unicode encoding").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/ids.h"

namespace gretel::wire {

// OpenStack component services plus the infrastructure dependencies that
// participate in control-plane traffic (Fig. 1 of the paper).
enum class ServiceKind : std::uint8_t {
  Horizon,
  Keystone,
  Nova,         // controller
  NovaCompute,  // nova-compute agents on compute nodes
  Neutron,
  NeutronAgent,  // e.g. neutron-plugin-linuxbridge-agent
  Glance,
  Cinder,
  Swift,
  RabbitMq,
  MySql,
  Ntp,
  Unknown,
};

std::string_view to_string(ServiceKind s);

enum class HttpMethod : std::uint8_t { Get, Post, Put, Delete, Head, Patch };

std::string_view to_string(HttpMethod m);
std::optional<HttpMethod> parse_http_method(std::string_view token);

enum class ApiKind : std::uint8_t { Rest, Rpc };

struct ApiIdTag {};
using ApiId = util::StrongId<ApiIdTag, std::uint16_t>;

// One REST endpoint (method + URI template) or one RPC method.
struct ApiDescriptor {
  ApiId id;
  ApiKind kind = ApiKind::Rest;
  ServiceKind service = ServiceKind::Unknown;  // service exposing the API
  HttpMethod method = HttpMethod::Get;         // REST only
  std::string path;                            // REST URI template / RPC topic
  std::string rpc_method;                      // RPC only (oslo method name)

  // State-change APIs anchor fingerprint matching (§5.3.1): POST/PUT/DELETE/
  // PATCH REST calls and all RPC invocations; GET/HEAD are optional symbols.
  bool state_change() const {
    if (kind == ApiKind::Rpc) return true;
    return method == HttpMethod::Post || method == HttpMethod::Put ||
           method == HttpMethod::Delete || method == HttpMethod::Patch;
  }

  // Human-readable name, e.g. "POST nova /servers" or "RPC nova build_and_run_instance".
  std::string display_name() const;
};

// Registry of every known API.  Append-only; ids are dense indices, which
// lets downstream tables (symbols, per-API latency series) be flat vectors.
//
// Resolution is on the per-message hot path, so the lookup tables use
// heterogeneous (transparent) hashing: find_rest/find_rpc probe with a
// string_view-keyed struct and never materialize a key string.  The owning
// map keys double as the interned copy of each resolved URI template / RPC
// method name.
class ApiCatalog {
 public:
  ApiId add_rest(ServiceKind service, HttpMethod method, std::string path);
  ApiId add_rpc(ServiceKind service, std::string topic,
                std::string rpc_method);

  const ApiDescriptor& get(ApiId id) const { return apis_[id.value()]; }
  std::size_t size() const { return apis_.size(); }
  const std::vector<ApiDescriptor>& all() const { return apis_; }

  // Wire-side resolution: maps a parsed message back to its ApiId.
  // Allocation-free — `path` / `rpc_method` may view into a capture buffer.
  std::optional<ApiId> find_rest(ServiceKind service, HttpMethod method,
                                 std::string_view path) const;
  std::optional<ApiId> find_rpc(ServiceKind service,
                                std::string_view rpc_method) const;

  // Counts split by kind, optionally restricted to one service.
  std::size_t count(ApiKind kind) const;
  std::size_t count(ApiKind kind, ServiceKind service) const;

 private:
  // Probe key: views the path/method, owning nothing.
  struct RestKeyView {
    ServiceKind service;
    HttpMethod method;
    std::string_view path;
  };
  struct RpcKeyView {
    ServiceKind service;
    std::string_view method;
  };
  // Owning keys (the interned template / method strings), implicitly
  // comparable with the views through the transparent hash/eq below.
  struct RestKey {
    ServiceKind service;
    HttpMethod method;
    std::string path;
    operator RestKeyView() const { return {service, method, path}; }
  };
  struct RpcKey {
    ServiceKind service;
    std::string method;
    operator RpcKeyView() const { return {service, method}; }
  };
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const RestKeyView& k) const;
    std::size_t operator()(const RpcKeyView& k) const;
    std::size_t operator()(const RestKey& k) const {
      return (*this)(RestKeyView(k));
    }
    std::size_t operator()(const RpcKey& k) const {
      return (*this)(RpcKeyView(k));
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const RestKeyView& a, const RestKeyView& b) const {
      return a.service == b.service && a.method == b.method &&
             a.path == b.path;
    }
    bool operator()(const RpcKeyView& a, const RpcKeyView& b) const {
      return a.service == b.service && a.method == b.method;
    }
  };

  std::vector<ApiDescriptor> apis_;
  std::unordered_map<RestKey, ApiId, KeyHash, KeyEq> by_rest_;
  std::unordered_map<RpcKey, ApiId, KeyHash, KeyEq> by_rpc_;
};

}  // namespace gretel::wire
