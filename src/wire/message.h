// The observable unit GRETEL works on: one REST or RPC message.
//
// GRETEL never parses JSON payloads (§5.3); everything the analyzer consumes
// is in this header-level view: the API identity, direction, status code,
// timestamps and transport correlation keys (TCP connection for REST, message
// id for RPC) used to pair requests with responses for latency computation.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "util/ids.h"
#include "util/time.h"
#include "wire/api.h"
#include "wire/endpoint.h"

namespace gretel::wire {

struct OpInstanceTag {};
// One *execution* of a high-level administrative operation.  Ground truth for
// the evaluation harness; the production analyzer never reads it.
using OpInstanceId = util::StrongId<OpInstanceTag, std::uint32_t>;

struct OpTemplateTag {};
// One high-level administrative operation *type* (e.g. "VM create").
using OpTemplateId = util::StrongId<OpTemplateTag, std::uint32_t>;

enum class Direction : std::uint8_t { Request, Response };

// HTTP-style status classes the anomaly detector cares about.
inline constexpr std::uint16_t kStatusOk = 200;
inline bool is_error_status(std::uint16_t status) { return status >= 400; }

struct Event {
  // Monotonic capture sequence number, assigned by the receiving tap.
  std::uint64_t seq = 0;
  util::SimTime ts;

  ApiId api;
  ApiKind kind = ApiKind::Rest;
  Direction dir = Direction::Request;

  NodeId src_node;
  NodeId dst_node;
  Endpoint src;
  Endpoint dst;

  // REST: the TCP connection carrying the exchange (request/response pairing
  // per §5.3 "IP and port").  RPC: 0.
  std::uint32_t conn_id = 0;
  // RPC: oslo.messaging msg_id unique per request/response pair.  REST: 0.
  std::uint64_t msg_id = 0;

  // Responses: HTTP status, or an RPC error indicator (0 = success,
  // 500 = remote error payload present).  Requests: 0.
  std::uint16_t status = 0;

  // Size of the message on the wire, for throughput accounting.
  std::uint32_t wire_bytes = 0;

  // Error text fragment for RPC responses; the detector runs its lightweight
  // regular-expression scan over this, never a JSON parse.
  std::string error_text;

  // Payload identifiers (tenant id, resource UUID hashes).  GRETEL ignores
  // these; the HANSEL baseline stitches on them.
  std::vector<std::uint32_t> identifiers;

  // OpenStack's per-operation correlation identifier (§5.3.1: "GRETEL can
  // exploit these correlation identifiers to increase its precision").
  // 0 = absent — deployments without the (still rolling out, per the
  // paper) correlation-id support.
  std::uint32_t correlation_id = 0;

  // --- Ground truth (evaluation only; hidden from the detectors) ---
  OpInstanceId truth_instance;
  OpTemplateId truth_template;
  bool truth_noise = false;  // heartbeat / periodic / auth chatter

  bool is_request() const { return dir == Direction::Request; }
  bool is_response() const { return dir == Direction::Response; }
  bool is_error() const {
    return is_response() && is_error_status(status);
  }
};

// The fixed-size slice of an Event that the detection front half reads:
// error-status scan, request/response pairing and the level-shift feed
// consume exactly these fields (LatencyTracker::observe touches nothing
// else).  The sharded pipeline's SPSC rings carry EventHeader instead of
// Event so the cross-thread hand-off is a flat 40-byte copy — no strings,
// no identifier vectors, no allocator traffic between producer and
// consumers.  Trivially copyable by construction; the static_assert keeps
// it that way.
struct EventHeader {
  std::uint64_t seq = 0;
  util::SimTime ts;
  std::uint64_t msg_id = 0;
  std::uint32_t conn_id = 0;
  ApiId api;
  ApiKind kind = ApiKind::Rest;
  Direction dir = Direction::Request;
  std::uint16_t status = 0;

  EventHeader() = default;
  explicit EventHeader(const Event& e) : EventHeader(e, e.seq) {}
  // Header with the sequence number assigned at ingestion time (the wire
  // Event's own seq field may still be the capture default).
  EventHeader(const Event& e, std::uint64_t assigned_seq)
      : seq(assigned_seq),
        ts(e.ts),
        msg_id(e.msg_id),
        conn_id(e.conn_id),
        api(e.api),
        kind(e.kind),
        dir(e.dir),
        status(e.status) {}

  bool is_request() const { return dir == Direction::Request; }
  bool is_response() const { return dir == Direction::Response; }
  bool is_error() const {
    return is_response() && is_error_status(status);
  }
};
static_assert(std::is_trivially_copyable_v<EventHeader>,
              "shard rings rely on EventHeader being a flat copy");

}  // namespace gretel::wire
