// HTTP/1.1 wire codec for OpenStack REST traffic.
//
// The real GRETEL deployment captured REST calls with Bro; here the capture
// tap decodes the byte stream produced by the simulated services.  The codec
// understands exactly the header-level subset GRETEL needs: request line /
// status line, Host, Content-Length, and the X-Service header the paper
// proposes so clients identify the originating component (§5.4).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "wire/api.h"

namespace gretel::wire {

struct HttpHeaders {
  std::vector<std::pair<std::string, std::string>> fields;

  void set(std::string name, std::string value) {
    fields.emplace_back(std::move(name), std::move(value));
  }
  // Case-insensitive lookup of the first matching header.
  std::optional<std::string_view> get(std::string_view name) const;
};

struct HttpRequest {
  HttpMethod method = HttpMethod::Get;
  std::string target;  // request URI
  HttpHeaders headers;
  std::string body;
};

struct HttpResponse {
  std::uint16_t status = 200;
  std::string reason;
  HttpHeaders headers;
  std::string body;
};

// Canonical reason phrase for the status codes the simulator emits.
std::string_view reason_phrase(std::uint16_t status);

std::string serialize(const HttpRequest& req);
std::string serialize(const HttpResponse& resp);

// Both parsers are strict about framing (CRLF line endings, Content-Length
// consistent with the body) and return nullopt on truncated or malformed
// input rather than guessing.
std::optional<HttpRequest> parse_http_request(std::string_view bytes);
std::optional<HttpResponse> parse_http_response(std::string_view bytes);

// --- Zero-copy view parsers (the capture hot path) ---
//
// The view variants parse into string_views over the caller's byte buffer:
// no header copies, no body copy, no per-field strings.  The only storage
// they need — the header field array — comes from the caller's arena, so a
// warmed-up decode loop performs zero heap allocations per message.
//
// Lifetime: every view is valid only while BOTH the input buffer and the
// arena generation (until its next reset()) are alive.  Anything that must
// outlive the capture batch has to be copied out (see docs/ARCHITECTURE.md,
// "Hot path & memory model").

struct HttpHeaderView {
  std::string_view name;
  std::string_view value;
};

struct HttpHeadersView {
  std::span<const HttpHeaderView> fields;

  // Case-insensitive lookup of the first matching header.
  std::optional<std::string_view> get(std::string_view name) const;
};

struct HttpRequestView {
  HttpMethod method = HttpMethod::Get;
  std::string_view target;
  HttpHeadersView headers;
  std::string_view body;
};

struct HttpResponseView {
  std::uint16_t status = 200;
  std::string_view reason;
  HttpHeadersView headers;
  std::string_view body;
};

// Accept the same inputs (and reject the same malformed ones) as the owning
// parsers above; the owning parsers are thin copies of these.
std::optional<HttpRequestView> parse_http_request(std::string_view bytes,
                                                  util::Arena& arena);
std::optional<HttpResponseView> parse_http_response(std::string_view bytes,
                                                    util::Arena& arena);

}  // namespace gretel::wire
