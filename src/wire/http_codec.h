// HTTP/1.1 wire codec for OpenStack REST traffic.
//
// The real GRETEL deployment captured REST calls with Bro; here the capture
// tap decodes the byte stream produced by the simulated services.  The codec
// understands exactly the header-level subset GRETEL needs: request line /
// status line, Host, Content-Length, and the X-Service header the paper
// proposes so clients identify the originating component (§5.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wire/api.h"

namespace gretel::wire {

struct HttpHeaders {
  std::vector<std::pair<std::string, std::string>> fields;

  void set(std::string name, std::string value) {
    fields.emplace_back(std::move(name), std::move(value));
  }
  // Case-insensitive lookup of the first matching header.
  std::optional<std::string_view> get(std::string_view name) const;
};

struct HttpRequest {
  HttpMethod method = HttpMethod::Get;
  std::string target;  // request URI
  HttpHeaders headers;
  std::string body;
};

struct HttpResponse {
  std::uint16_t status = 200;
  std::string reason;
  HttpHeaders headers;
  std::string body;
};

// Canonical reason phrase for the status codes the simulator emits.
std::string_view reason_phrase(std::uint16_t status);

std::string serialize(const HttpRequest& req);
std::string serialize(const HttpResponse& resp);

// Both parsers are strict about framing (CRLF line endings, Content-Length
// consistent with the body) and return nullopt on truncated or malformed
// input rather than guessing.
std::optional<HttpRequest> parse_http_request(std::string_view bytes);
std::optional<HttpResponse> parse_http_response(std::string_view bytes);

}  // namespace gretel::wire
