// AMQP-lite codec for RabbitMQ-brokered RPC traffic.
//
// All OpenStack intra-service communication is oslo.messaging RPC over
// RabbitMQ (§2 of the paper); the authors extended Bro with a custom
// RabbitMQ protocol parser to observe it.  This module is that parser's
// analog: a compact binary framing (deliberately shaped like AMQP 0-9-1
// frames) that carries the oslo envelope fields GRETEL needs — exchange /
// routing key (the RPC topic), the method name, the correlation msg_id, and
// whether the payload carries an error marker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gretel::wire {

enum class AmqpFrameType : std::uint8_t {
  Publish = 1,  // basic.publish — an RPC request (or cast)
  Deliver = 2,  // basic.deliver — an RPC reply
};

struct AmqpFrame {
  AmqpFrameType type = AmqpFrameType::Publish;
  std::uint16_t channel = 1;
  std::string routing_key;  // oslo topic, e.g. "compute.node-3"
  std::string method_name;  // oslo method, e.g. "build_and_run_instance"
  std::uint64_t msg_id = 0;
  // oslo request/correlation id tying the message to one high-level
  // operation; 0 when the deployment doesn't emit them.
  std::uint32_t correlation_id = 0;
  // Payload as carried on the wire.  For replies with errors the payload
  // contains an oslo error envelope; GRETEL's detector greps it, never
  // JSON-parses it.
  std::string payload;
};

// Frame layout:
//   magic   u8      0xA9
//   type    u8      AmqpFrameType
//   channel u16be
//   msg_id  u64be
//   corr    u32be   correlation id (0 = absent)
//   rkey    u8-prefixed short string
//   method  u8-prefixed short string
//   payload u32be-prefixed bytes
//   end     u8      0xCE (AMQP frame-end octet)
std::string serialize(const AmqpFrame& frame);

// Strict parser: nullopt on bad magic, truncated fields, missing frame-end
// or trailing garbage.
std::optional<AmqpFrame> parse_amqp_frame(std::string_view bytes);

// Zero-copy variant for the capture hot path: the string fields are views
// into `bytes`, valid only while the input buffer lives.  Accepts and
// rejects exactly the same inputs as parse_amqp_frame (which wraps it).
struct AmqpFrameView {
  AmqpFrameType type = AmqpFrameType::Publish;
  std::uint16_t channel = 1;
  std::string_view routing_key;
  std::string_view method_name;
  std::uint64_t msg_id = 0;
  std::uint32_t correlation_id = 0;
  std::string_view payload;
};

std::optional<AmqpFrameView> parse_amqp_frame_view(std::string_view bytes);

// Builds the oslo-style error payload for a failed RPC; the detector's regex
// looks for the "_error" / "failure" markers this emits.
std::string make_rpc_error_payload(std::string_view exception_class,
                                   std::string_view message);

// Lightweight check (no JSON parsing) for an error marker in an RPC payload;
// mirrors GRETEL's "regular expressions to identify error codes" (§5.3).
bool rpc_payload_has_error(std::string_view payload);

}  // namespace gretel::wire
