// Addressing for the simulated deployment: nodes, IPv4 addresses, ports.
//
// OpenStack deployments put each component service on its own node with a
// distinct IP (§5.4 "Improving precision"); GRETEL keys per-node metadata by
// these addresses.
#pragma once

#include <cstdint>
#include <string>

#include "util/ids.h"

namespace gretel::wire {

struct NodeIdTag {};
using NodeId = util::StrongId<NodeIdTag, std::uint8_t>;

// A dotted-quad IPv4 address stored as a host-order u32.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t addr) : addr_(addr) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : addr_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return addr_; }
  constexpr auto operator<=>(const Ipv4&) const = default;

  std::string to_string() const {
    return std::to_string((addr_ >> 24) & 0xFF) + '.' +
           std::to_string((addr_ >> 16) & 0xFF) + '.' +
           std::to_string((addr_ >> 8) & 0xFF) + '.' +
           std::to_string(addr_ & 0xFF);
  }

 private:
  std::uint32_t addr_ = 0;
};

struct Endpoint {
  Ipv4 ip;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  std::string to_string() const {
    return ip.to_string() + ':' + std::to_string(port);
  }
};

// Well-known control-plane ports in the simulated deployment (mirroring the
// defaults of the real services).
namespace ports {
inline constexpr std::uint16_t kHorizon = 80;
inline constexpr std::uint16_t kKeystone = 5000;
inline constexpr std::uint16_t kNovaApi = 8774;
inline constexpr std::uint16_t kNeutronApi = 9696;
inline constexpr std::uint16_t kGlanceApi = 9292;
inline constexpr std::uint16_t kCinderApi = 8776;
inline constexpr std::uint16_t kSwiftProxy = 8080;
inline constexpr std::uint16_t kRabbitMq = 5672;
inline constexpr std::uint16_t kMySql = 3306;
inline constexpr std::uint16_t kNtp = 123;
}  // namespace ports

}  // namespace gretel::wire
