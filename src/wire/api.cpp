#include "wire/api.h"

#include <cassert>

namespace gretel::wire {

std::string_view to_string(ServiceKind s) {
  switch (s) {
    case ServiceKind::Horizon:
      return "horizon";
    case ServiceKind::Keystone:
      return "keystone";
    case ServiceKind::Nova:
      return "nova";
    case ServiceKind::NovaCompute:
      return "nova-compute";
    case ServiceKind::Neutron:
      return "neutron";
    case ServiceKind::NeutronAgent:
      return "neutron-agent";
    case ServiceKind::Glance:
      return "glance";
    case ServiceKind::Cinder:
      return "cinder";
    case ServiceKind::Swift:
      return "swift";
    case ServiceKind::RabbitMq:
      return "rabbitmq";
    case ServiceKind::MySql:
      return "mysql";
    case ServiceKind::Ntp:
      return "ntp";
    case ServiceKind::Unknown:
      return "unknown";
  }
  return "?";
}

std::string_view to_string(HttpMethod m) {
  switch (m) {
    case HttpMethod::Get:
      return "GET";
    case HttpMethod::Post:
      return "POST";
    case HttpMethod::Put:
      return "PUT";
    case HttpMethod::Delete:
      return "DELETE";
    case HttpMethod::Head:
      return "HEAD";
    case HttpMethod::Patch:
      return "PATCH";
  }
  return "?";
}

std::optional<HttpMethod> parse_http_method(std::string_view token) {
  if (token == "GET") return HttpMethod::Get;
  if (token == "POST") return HttpMethod::Post;
  if (token == "PUT") return HttpMethod::Put;
  if (token == "DELETE") return HttpMethod::Delete;
  if (token == "HEAD") return HttpMethod::Head;
  if (token == "PATCH") return HttpMethod::Patch;
  return std::nullopt;
}

std::string ApiDescriptor::display_name() const {
  std::string out;
  if (kind == ApiKind::Rest) {
    out += to_string(method);
    out += ' ';
    out += to_string(service);
    out += ' ';
    out += path;
  } else {
    out += "RPC ";
    out += to_string(service);
    out += ' ';
    out += rpc_method;
  }
  return out;
}

ApiId ApiCatalog::add_rest(ServiceKind service, HttpMethod method,
                           std::string path) {
  const std::string key = rest_key(service, method, path);
  if (auto it = by_rest_.find(key); it != by_rest_.end()) return it->second;
  ApiId id(static_cast<std::uint16_t>(apis_.size()));
  ApiDescriptor d;
  d.id = id;
  d.kind = ApiKind::Rest;
  d.service = service;
  d.method = method;
  d.path = std::move(path);
  apis_.push_back(std::move(d));
  by_rest_.emplace(key, id);
  return id;
}

ApiId ApiCatalog::add_rpc(ServiceKind service, std::string topic,
                          std::string rpc_method) {
  const std::string key = rpc_key(service, rpc_method);
  if (auto it = by_rpc_.find(key); it != by_rpc_.end()) return it->second;
  ApiId id(static_cast<std::uint16_t>(apis_.size()));
  ApiDescriptor d;
  d.id = id;
  d.kind = ApiKind::Rpc;
  d.service = service;
  d.path = std::move(topic);
  d.rpc_method = std::move(rpc_method);
  apis_.push_back(std::move(d));
  by_rpc_.emplace(key, id);
  return id;
}

std::optional<ApiId> ApiCatalog::find_rest(ServiceKind service,
                                           HttpMethod method,
                                           std::string_view path) const {
  const auto it = by_rest_.find(rest_key(service, method, path));
  if (it == by_rest_.end()) return std::nullopt;
  return it->second;
}

std::optional<ApiId> ApiCatalog::find_rpc(ServiceKind service,
                                          std::string_view rpc_method) const {
  const auto it = by_rpc_.find(rpc_key(service, rpc_method));
  if (it == by_rpc_.end()) return std::nullopt;
  return it->second;
}

std::size_t ApiCatalog::count(ApiKind kind) const {
  std::size_t n = 0;
  for (const auto& a : apis_) n += (a.kind == kind) ? 1 : 0;
  return n;
}

std::size_t ApiCatalog::count(ApiKind kind, ServiceKind service) const {
  std::size_t n = 0;
  for (const auto& a : apis_) {
    n += (a.kind == kind && a.service == service) ? 1 : 0;
  }
  return n;
}

std::string ApiCatalog::rest_key(ServiceKind service, HttpMethod method,
                                 std::string_view path) const {
  std::string key;
  key += static_cast<char>('A' + static_cast<int>(service));
  key += static_cast<char>('0' + static_cast<int>(method));
  key += path;
  return key;
}

std::string ApiCatalog::rpc_key(ServiceKind service,
                                std::string_view method) const {
  std::string key;
  key += static_cast<char>('A' + static_cast<int>(service));
  key += method;
  return key;
}

}  // namespace gretel::wire
