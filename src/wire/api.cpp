#include "wire/api.h"

#include <cassert>

namespace gretel::wire {

std::string_view to_string(ServiceKind s) {
  switch (s) {
    case ServiceKind::Horizon:
      return "horizon";
    case ServiceKind::Keystone:
      return "keystone";
    case ServiceKind::Nova:
      return "nova";
    case ServiceKind::NovaCompute:
      return "nova-compute";
    case ServiceKind::Neutron:
      return "neutron";
    case ServiceKind::NeutronAgent:
      return "neutron-agent";
    case ServiceKind::Glance:
      return "glance";
    case ServiceKind::Cinder:
      return "cinder";
    case ServiceKind::Swift:
      return "swift";
    case ServiceKind::RabbitMq:
      return "rabbitmq";
    case ServiceKind::MySql:
      return "mysql";
    case ServiceKind::Ntp:
      return "ntp";
    case ServiceKind::Unknown:
      return "unknown";
  }
  return "?";
}

std::string_view to_string(HttpMethod m) {
  switch (m) {
    case HttpMethod::Get:
      return "GET";
    case HttpMethod::Post:
      return "POST";
    case HttpMethod::Put:
      return "PUT";
    case HttpMethod::Delete:
      return "DELETE";
    case HttpMethod::Head:
      return "HEAD";
    case HttpMethod::Patch:
      return "PATCH";
  }
  return "?";
}

std::optional<HttpMethod> parse_http_method(std::string_view token) {
  if (token == "GET") return HttpMethod::Get;
  if (token == "POST") return HttpMethod::Post;
  if (token == "PUT") return HttpMethod::Put;
  if (token == "DELETE") return HttpMethod::Delete;
  if (token == "HEAD") return HttpMethod::Head;
  if (token == "PATCH") return HttpMethod::Patch;
  return std::nullopt;
}

std::string ApiDescriptor::display_name() const {
  std::string out;
  if (kind == ApiKind::Rest) {
    out += to_string(method);
    out += ' ';
    out += to_string(service);
    out += ' ';
    out += path;
  } else {
    out += "RPC ";
    out += to_string(service);
    out += ' ';
    out += rpc_method;
  }
  return out;
}

namespace {

// FNV-1a over the discriminating bytes; string_view and string keys hash
// identically, which is what makes the transparent probe sound.
constexpr std::size_t kFnvOffset = 14695981039346656037ull;
constexpr std::size_t kFnvPrime = 1099511628211ull;

std::size_t fnv1a(std::size_t h, unsigned char byte) {
  return (h ^ byte) * kFnvPrime;
}

std::size_t fnv1a(std::size_t h, std::string_view bytes) {
  for (char c : bytes) h = fnv1a(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

std::size_t ApiCatalog::KeyHash::operator()(const RestKeyView& k) const {
  std::size_t h = kFnvOffset;
  h = fnv1a(h, static_cast<unsigned char>(k.service));
  h = fnv1a(h, static_cast<unsigned char>(k.method));
  return fnv1a(h, k.path);
}

std::size_t ApiCatalog::KeyHash::operator()(const RpcKeyView& k) const {
  std::size_t h = kFnvOffset;
  h = fnv1a(h, static_cast<unsigned char>(k.service));
  return fnv1a(h, k.method);
}

ApiId ApiCatalog::add_rest(ServiceKind service, HttpMethod method,
                           std::string path) {
  if (auto it = by_rest_.find(RestKeyView{service, method, path});
      it != by_rest_.end()) {
    return it->second;
  }
  ApiId id(static_cast<std::uint16_t>(apis_.size()));
  ApiDescriptor d;
  d.id = id;
  d.kind = ApiKind::Rest;
  d.service = service;
  d.method = method;
  d.path = path;
  apis_.push_back(std::move(d));
  by_rest_.emplace(RestKey{service, method, std::move(path)}, id);
  return id;
}

ApiId ApiCatalog::add_rpc(ServiceKind service, std::string topic,
                          std::string rpc_method) {
  if (auto it = by_rpc_.find(RpcKeyView{service, rpc_method});
      it != by_rpc_.end()) {
    return it->second;
  }
  ApiId id(static_cast<std::uint16_t>(apis_.size()));
  ApiDescriptor d;
  d.id = id;
  d.kind = ApiKind::Rpc;
  d.service = service;
  d.path = std::move(topic);
  d.rpc_method = rpc_method;
  apis_.push_back(std::move(d));
  by_rpc_.emplace(RpcKey{service, std::move(rpc_method)}, id);
  return id;
}

std::optional<ApiId> ApiCatalog::find_rest(ServiceKind service,
                                           HttpMethod method,
                                           std::string_view path) const {
  const auto it = by_rest_.find(RestKeyView{service, method, path});
  if (it == by_rest_.end()) return std::nullopt;
  return it->second;
}

std::optional<ApiId> ApiCatalog::find_rpc(ServiceKind service,
                                          std::string_view rpc_method) const {
  const auto it = by_rpc_.find(RpcKeyView{service, rpc_method});
  if (it == by_rpc_.end()) return std::nullopt;
  return it->second;
}

std::size_t ApiCatalog::count(ApiKind kind) const {
  std::size_t n = 0;
  for (const auto& a : apis_) n += (a.kind == kind) ? 1 : 0;
  return n;
}

std::size_t ApiCatalog::count(ApiKind kind, ServiceKind service) const {
  std::size_t n = 0;
  for (const auto& a : apis_) {
    n += (a.kind == kind && a.service == service) ? 1 : 0;
  }
  return n;
}

}  // namespace gretel::wire
