#include "stack/operation.h"

#include "stack/logging.h"

namespace gretel::stack {

std::string_view to_string(Category c) {
  switch (c) {
    case Category::Compute:
      return "Compute";
    case Category::Image:
      return "Image";
    case Category::Network:
      return "Network";
    case Category::Storage:
      return "Storage";
    case Category::Misc:
      return "Misc";
  }
  return "?";
}

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warning:
      return "WARNING";
    case LogLevel::Error:
      return "ERROR";
  }
  return "?";
}

}  // namespace gretel::stack
