// High-level administrative operations (§4 "composite operations").
//
// An OperationTemplate is the simulator-side ground truth for one OpenStack
// administrative task: the ordered REST/RPC steps it performs, who calls
// whom, and nominal service times.  GRETEL never sees these templates — it
// reconstructs fingerprints for them from observed traces (Algorithm 1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"
#include "wire/api.h"
#include "wire/message.h"

namespace gretel::stack {

// Tempest-style operation categories (Table 1).
enum class Category : std::uint8_t { Compute, Image, Network, Storage, Misc };
inline constexpr std::size_t kCategories = 5;

std::string_view to_string(Category c);

struct ApiStep {
  wire::ApiId api;
  wire::ServiceKind caller = wire::ServiceKind::Horizon;
  wire::ServiceKind callee = wire::ServiceKind::Nova;
  // Nominal service time at the callee (before load scaling and jitter).
  util::SimDuration base_latency = util::SimDuration::millis(8);
  // Transient steps occur only in some executions; Algorithm 1's
  // re-execution pruning must eliminate them from the fingerprint.
  bool transient = false;
  // Probability the step occurs when transient (ignored otherwise).
  double transient_prob = 0.5;
};

struct OperationTemplate {
  wire::OpTemplateId id;
  std::string name;
  Category category = Category::Compute;
  std::vector<ApiStep> steps;
  // REST GET API used by the dashboard/CLI to poll operation status; the
  // executor relays aborts through it so RPC failures surface as REST errors
  // (§5.3.1 "Improving precision").
  wire::ApiId poll_api;

  std::size_t count(wire::ApiKind kind, const wire::ApiCatalog& catalog) const {
    std::size_t n = 0;
    for (const auto& s : steps) n += catalog.get(s.api).kind == kind ? 1 : 0;
    return n;
  }
};

}  // namespace gretel::stack
