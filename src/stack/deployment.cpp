#include "stack/deployment.h"

#include <cassert>

namespace gretel::stack {

using wire::ServiceKind;

std::uint16_t rest_port_for(ServiceKind s) {
  switch (s) {
    case ServiceKind::Horizon:
      return wire::ports::kHorizon;
    case ServiceKind::Keystone:
      return wire::ports::kKeystone;
    case ServiceKind::Nova:
    case ServiceKind::NovaCompute:
      return wire::ports::kNovaApi;
    case ServiceKind::Neutron:
    case ServiceKind::NeutronAgent:
      return wire::ports::kNeutronApi;
    case ServiceKind::Glance:
      return wire::ports::kGlanceApi;
    case ServiceKind::Cinder:
      return wire::ports::kCinderApi;
    case ServiceKind::Swift:
      return wire::ports::kSwiftProxy;
    case ServiceKind::RabbitMq:
      return wire::ports::kRabbitMq;
    case ServiceKind::MySql:
      return wire::ports::kMySql;
    case ServiceKind::Ntp:
      return wire::ports::kNtp;
    case ServiceKind::Unknown:
      return 0;
  }
  return 0;
}

Deployment Deployment::standard(int compute_nodes) {
  Deployment d;
  d.add_node("controller", {ServiceKind::Horizon, ServiceKind::Keystone,
                            ServiceKind::RabbitMq, ServiceKind::MySql,
                            ServiceKind::Ntp});
  d.add_node("nova-ctl", {ServiceKind::Nova});
  d.add_node("neutron-ctl", {ServiceKind::Neutron});
  d.add_node("storage", {ServiceKind::Glance, ServiceKind::Cinder,
                         ServiceKind::Swift});
  for (int i = 0; i < compute_nodes; ++i) {
    d.add_node("compute-" + std::to_string(i + 1),
               {ServiceKind::NovaCompute, ServiceKind::NeutronAgent});
  }
  return d;
}

net::NodeState& Deployment::add_node(std::string hostname,
                                     std::vector<ServiceKind> services) {
  const auto idx = static_cast<std::uint8_t>(nodes_.size());
  const wire::Ipv4 ip(10, 0, 0, static_cast<std::uint8_t>(10 + idx));
  auto node = std::make_unique<net::NodeState>(wire::NodeId(idx),
                                               std::move(hostname), ip);
  for (ServiceKind s : services) {
    node->host_service(s);
    for (auto& dep : net::default_software_for(s))
      node->install_software(std::move(dep));
  }
  nodes_.push_back(std::move(node));
  return *nodes_.back();
}

std::vector<wire::NodeId> Deployment::node_ids() const {
  std::vector<wire::NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->id());
  return out;
}

std::vector<wire::NodeId> Deployment::nodes_for(ServiceKind s) const {
  std::vector<wire::NodeId> out;
  for (const auto& n : nodes_) {
    if (n->hosts(s)) out.push_back(n->id());
  }
  return out;
}

wire::NodeId Deployment::primary_node_for(ServiceKind s) const {
  const auto nodes = nodes_for(s);
  assert(!nodes.empty() && "service not deployed");
  return nodes.front();
}

wire::Endpoint Deployment::endpoint_for(ServiceKind s) const {
  const auto id = primary_node_for(s);
  return {node(id).ip(), rest_port_for(s)};
}

std::unordered_map<std::uint16_t, ServiceKind> Deployment::service_by_port()
    const {
  std::unordered_map<std::uint16_t, ServiceKind> out;
  for (int s = 0; s < static_cast<int>(ServiceKind::Unknown); ++s) {
    const auto kind = static_cast<ServiceKind>(s);
    // Agent services (nova-compute, linuxbridge agent) speak RPC only; the
    // REST ports they'd share belong to their controller services.
    if (kind == ServiceKind::NovaCompute || kind == ServiceKind::NeutronAgent)
      continue;
    if (!nodes_for(kind).empty()) out[rest_port_for(kind)] = kind;
  }
  return out;
}

void Deployment::inject_cpu_surge(ServiceKind s, util::SimTime start,
                                  util::SimTime end, double delta_pct) {
  for (auto id : nodes_for(s)) {
    node(id).inject_perturbation(
        {net::ResourceKind::CpuPct, start, end, delta_pct});
  }
}

void Deployment::inject_disk_exhaustion(ServiceKind s, util::SimTime start,
                                        util::SimTime end,
                                        double free_mb_drop) {
  for (auto id : nodes_for(s)) {
    node(id).inject_perturbation(
        {net::ResourceKind::DiskFreeMb, start, end, -free_mb_drop});
  }
}

void Deployment::crash_software(ServiceKind s, std::string_view daemon,
                                util::SimTime start, util::SimTime end) {
  for (auto id : nodes_for(s)) {
    node(id).inject_outage({std::string(daemon), start, end});
  }
}

void Deployment::inject_link_latency(ServiceKind s, util::SimTime start,
                                     util::SimTime end,
                                     util::SimDuration extra) {
  for (auto id : nodes_for(s)) {
    fabric_.injector().add_rule({id, start, end, extra});
  }
}

}  // namespace gretel::stack
