// Fault specifications for operation launches.
//
// Two families, mirroring §3 of the paper:
//  * operational faults — an API in the operation returns an error and the
//    operation aborts; the error is relayed to the dashboard via a REST poll
//    (RPC errors always surface in REST, §5.3.1).
//  * environmental faults — CPU surges, disk exhaustion, daemon crashes,
//    injected link latency.  These live on the Deployment (see
//    Deployment::inject_*) and manifest as performance faults or as the
//    root cause behind operational errors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "stack/logging.h"
#include "util/time.h"
#include "wire/endpoint.h"

namespace gretel::stack {

struct OperationalFault {
  // Index of the step whose response fails.
  std::size_t fail_step = 0;
  // HTTP status for REST steps; RPC steps carry an oslo error payload and
  // the relayed REST poll uses this status.
  std::uint16_t status = 500;
  std::string error_text = "Internal Server Error";
  // When false the operation continues after the error (e.g. a retried,
  // tolerated failure); fingerprint-relevant aborts keep the default.
  bool abort = true;
  // What (if anything) the failing service writes to its log — §3.1: most
  // failures surface at WARNING, not ERROR, and some not at all.
  bool logged = true;
  LogLevel log_level = LogLevel::Warning;
};

// Convenience constructors for the error shapes seen in the paper's cases.
inline OperationalFault no_valid_host_fault(std::size_t step) {
  return {step, 500, "No valid host was found. "
                     "There are not enough hosts available.", true};
}
inline OperationalFault entity_too_large_fault(std::size_t step) {
  // §7.2.1: "Analysis of Glance logs revealed no entries."
  return {step, 413, "Request Entity Too Large", true, /*logged=*/false,
          LogLevel::Warning};
}
inline OperationalFault unauthorized_fault(std::size_t step) {
  return {step, 401, "The request you have made requires authentication.",
          true};
}
inline OperationalFault conflict_fault(std::size_t step) {
  return {step, 409, "Conflict", true};
}
inline OperationalFault service_unavailable_fault(std::size_t step) {
  return {step, 503, "Service Unavailable", true};
}

// Canonical fault shape for an HTTP status — the error text a real
// OpenStack service would relay for that code.  Campaign generators draw
// statuses, not shapes, so they all funnel through here; unknown codes
// get the generic 500 text with the drawn status preserved.
inline OperationalFault fault_for_status(std::size_t step,
                                         std::uint16_t status) {
  switch (status) {
    case 401: return unauthorized_fault(step);
    case 409: return conflict_fault(step);
    case 413: return entity_too_large_fault(step);
    case 503: return service_unavailable_fault(step);
    default: {
      OperationalFault f;
      f.fail_step = step;
      f.status = status;
      return f;
    }
  }
}

// A fault of the *monitoring plane itself*: the agent on one node stops
// answering probes for a window.  A wedged agent accepts probes and hangs,
// so every attempt costs its full deadline; a crashed agent refuses
// connections and fails fast.  Consumed by monitor::MonitorChaos — the
// monitoring analog of the workload faults above.
struct MonitorAgentFault {
  wire::NodeId node;
  util::SimTime start;
  util::SimTime end;
  bool wedged = true;  // false: crashed (fast-fail) instead of hung
};

}  // namespace gretel::stack
