// Workflow executor: runs operations against the simulated deployment and
// produces the wire traffic GRETEL captures.
//
// This is the control-plane engine of the OpenStack simulator.  Each launch
// walks its template's steps, serializing real HTTP / AMQP bytes for every
// request and response, with service times scaled by the callee node's CPU
// load and delivery times taken from the fabric (including tc-injected
// latency).  Operational faults fail a chosen step and relay the error to
// the dashboard through the template's status-poll REST API.  Background
// noise — Keystone auth, heartbeat RPCs, repeated idempotent GETs — is woven
// in so that Algorithm 1's noise filtering has something real to remove.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/capture.h"
#include "stack/deployment.h"
#include "stack/logging.h"
#include "stack/faults.h"
#include "stack/operation.h"
#include "util/rng.h"

namespace gretel::stack {

// Infrastructure APIs every deployment exhibits regardless of operation:
// Keystone authentication round-trips and nova-compute heartbeats.  These
// are exactly the messages GRETEL's fingerprint generation filters out.
struct InfraApis {
  wire::ApiId keystone_auth;      // POST /v3/auth/tokens
  wire::ApiId keystone_validate;  // GET /v3/auth/tokens/<ID>
  wire::ApiId heartbeat;          // RPC report_state (compute -> nova)
  wire::ApiId service_update;     // RPC update_service_capabilities
};

InfraApis register_infra_apis(wire::ApiCatalog& catalog);

struct Launch {
  const OperationTemplate* op = nullptr;
  util::SimTime start;
  std::optional<OperationalFault> fault;
};

// What the failing service writes to its log for an error exchange
// (namespace scope: GCC rejects a brace default argument for a nested
// aggregate inside its own class).
struct ErrorLogPolicy {
  bool logged = true;
  LogLevel level = LogLevel::Warning;
};

class WorkflowExecutor {
 public:
  struct Options {
    bool emit_keystone_auth = true;
    bool emit_heartbeats = true;
    util::SimDuration heartbeat_period = util::SimDuration::seconds(10);
    // Mean think time between successive steps of one operation.
    util::SimDuration think_mean = util::SimDuration::millis(3);
    // Probability that an idempotent GET step is reissued immediately
    // (retry chatter pruned by the noise filter).
    double duplicate_get_prob = 0.06;
    // Emit OpenStack-style correlation (request) ids on every message of an
    // operation (§5.3.1: the enhancement GRETEL can exploit; off by default
    // to model the Liberty-era deployments the paper measured).
    bool emit_correlation_ids = false;
    // Approximate REST body payload size (bytes); AMQP payloads are ~75%.
    std::size_t body_bytes = 160;
    // Collect per-node service logs (read back via logs()) so log-analysis
    // baselines can be evaluated against the same run.
    bool emit_logs = true;
  };

  WorkflowExecutor(Deployment* deployment, const wire::ApiCatalog* catalog,
                   const InfraApis* infra, std::uint64_t seed,
                   Options options);
  // Convenience overload with default options (kept separate: GCC rejects a
  // brace default argument for a nested aggregate inside its own class).
  WorkflowExecutor(Deployment* deployment, const wire::ApiCatalog* catalog,
                   const InfraApis* infra, std::uint64_t seed);

  // Executes all launches; returns the merged, time-sorted wire traffic.
  std::vector<net::WireRecord> execute(std::span<const Launch> launches);

  // Next instance id that will be assigned (instance ids are sequential).
  wire::OpInstanceId peek_next_instance() const {
    return wire::OpInstanceId(next_instance_);
  }

  // Service logs written during the last execute() (time-sorted).
  const std::vector<LogLine>& logs() const { return logs_; }

 private:
  struct InstanceContext {
    wire::OpInstanceId instance;
    wire::OpTemplateId tmpl;
    wire::NodeId compute_node;  // sticky compute for this instance
    std::vector<std::uint32_t> identifiers;
    util::Rng rng;
  };

  void run_launch(const Launch& launch, std::vector<net::WireRecord>& out);
  void emit_noise(util::SimTime from, util::SimTime to,
                  std::vector<net::WireRecord>& out);

  // Emits request + response records for one API exchange; returns the
  // response timestamp.  `status` >= 400 marks an error response.
  util::SimTime emit_exchange(const InstanceContext& ctx, util::SimTime t,
                              const ApiStep& step, std::uint16_t status,
                              std::string_view error_text, bool noise,
                              std::vector<net::WireRecord>& out,
                              util::Rng& rng,
                              ErrorLogPolicy log_policy = {});

  wire::NodeId node_for(wire::ServiceKind s,
                        const InstanceContext& ctx) const;
  double load_factor(wire::NodeId node, util::SimTime t) const;
  std::string make_uuid(util::Rng& rng) const;

  Deployment* deployment_;
  const wire::ApiCatalog* catalog_;
  const InfraApis* infra_;
  Options options_;
  util::Rng rng_;
  std::uint32_t next_instance_ = 1;
  std::uint32_t next_conn_ = 1;
  std::uint64_t next_msg_ = 1;
  std::size_t compute_rr_ = 0;  // round-robin cursor over compute nodes
  std::vector<LogLine> logs_;
};

}  // namespace gretel::stack
