// Service logs emitted by the simulated OpenStack components.
//
// The paper's motivation (§3) hinges on what logs do and don't show: "No
// valid host" appears only at WARNING, Glance logs nothing for failed
// uploads, TRACE-level logging reveals nothing about performance faults.
// The workflow executor emits per-node service logs so the log-analysis
// baseline can be evaluated against GRETEL honestly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"
#include "wire/api.h"
#include "wire/endpoint.h"

namespace gretel::stack {

enum class LogLevel : std::uint8_t { Trace, Debug, Info, Warning, Error };

std::string_view to_string(LogLevel level);

struct LogLine {
  util::SimTime ts;
  wire::NodeId node;
  wire::ServiceKind service = wire::ServiceKind::Unknown;
  LogLevel level = LogLevel::Info;
  std::string message;
};

}  // namespace gretel::stack
