// The simulated physical deployment (§7 "Experimental setup").
//
// Mirrors the paper's testbed: 7 servers — a controller node (Horizon,
// Keystone, RabbitMQ, MySQL), dedicated Nova / Neutron / storage+image
// nodes, and 3 compute nodes — joined by a switched fabric.  The deployment
// owns the ground-truth node states that fault injection perturbs and the
// monitoring agents sample.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fabric.h"
#include "net/node.h"
#include "wire/api.h"
#include "wire/endpoint.h"

namespace gretel::stack {

class Deployment {
 public:
  // Builds the default 7-node topology with `compute_nodes` computes (3 in
  // the paper's testbed).
  static Deployment standard(int compute_nodes = 3);

  Deployment() = default;

  net::NodeState& add_node(std::string hostname,
                           std::vector<wire::ServiceKind> services);

  std::size_t node_count() const { return nodes_.size(); }
  net::NodeState& node(wire::NodeId id) { return *nodes_[id.value()]; }
  const net::NodeState& node(wire::NodeId id) const {
    return *nodes_[id.value()];
  }
  std::vector<wire::NodeId> node_ids() const;

  // Node hosting a service; for services on several nodes (nova-compute),
  // returns them all / picks round-robin.
  std::vector<wire::NodeId> nodes_for(wire::ServiceKind s) const;
  wire::NodeId primary_node_for(wire::ServiceKind s) const;

  // REST endpoint of a service (its node IP + well-known port).
  wire::Endpoint endpoint_for(wire::ServiceKind s) const;
  // Port → service map for the capture taps.
  std::unordered_map<std::uint16_t, wire::ServiceKind> service_by_port() const;

  net::Fabric& fabric() { return fabric_; }
  const net::Fabric& fabric() const { return fabric_; }

  // --- fault injection conveniences (used by scenarios and benches) ---
  void inject_cpu_surge(wire::ServiceKind s, util::SimTime start,
                        util::SimTime end, double delta_pct);
  void inject_disk_exhaustion(wire::ServiceKind s, util::SimTime start,
                              util::SimTime end, double free_mb_drop);
  void crash_software(wire::ServiceKind s, std::string_view daemon,
                      util::SimTime start, util::SimTime end);
  void inject_link_latency(wire::ServiceKind s, util::SimTime start,
                           util::SimTime end, util::SimDuration extra);

 private:
  std::vector<std::unique_ptr<net::NodeState>> nodes_;
  net::Fabric fabric_;
};

// Well-known REST port for a service kind.
std::uint16_t rest_port_for(wire::ServiceKind s);

}  // namespace gretel::stack
