#include "stack/workflow.h"

#include <algorithm>
#include <cassert>

#include "wire/amqp_codec.h"
#include "wire/http_codec.h"

namespace gretel::stack {

using util::SimDuration;
using util::SimTime;
using wire::ApiKind;
using wire::ServiceKind;

InfraApis register_infra_apis(wire::ApiCatalog& catalog) {
  InfraApis infra;
  infra.keystone_auth =
      catalog.add_rest(ServiceKind::Keystone, wire::HttpMethod::Post,
                       "/v3/auth/tokens");
  infra.keystone_validate =
      catalog.add_rest(ServiceKind::Keystone, wire::HttpMethod::Get,
                       "/v3/auth/tokens/<ID>");
  infra.heartbeat = catalog.add_rpc(ServiceKind::Nova, "nova", "report_state");
  infra.service_update =
      catalog.add_rpc(ServiceKind::Nova, "nova", "update_service_capabilities");
  return infra;
}

WorkflowExecutor::WorkflowExecutor(Deployment* deployment,
                                   const wire::ApiCatalog* catalog,
                                   const InfraApis* infra, std::uint64_t seed,
                                   Options options)
    : deployment_(deployment),
      catalog_(catalog),
      infra_(infra),
      options_(options),
      rng_(seed) {
  assert(deployment_ && catalog_ && infra_);
}

WorkflowExecutor::WorkflowExecutor(Deployment* deployment,
                                   const wire::ApiCatalog* catalog,
                                   const InfraApis* infra, std::uint64_t seed)
    : WorkflowExecutor(deployment, catalog, infra, seed, Options{}) {}

std::vector<net::WireRecord> WorkflowExecutor::execute(
    std::span<const Launch> launches) {
  logs_.clear();
  std::vector<net::WireRecord> out;
  // Rough reservation: two records per step plus noise.
  std::size_t steps = 0;
  for (const auto& l : launches) steps += l.op->steps.size();
  out.reserve(steps * 2 + launches.size() * 8);

  SimTime first = launches.empty() ? SimTime::epoch() : launches[0].start;
  for (const auto& l : launches) first = std::min(first, l.start);

  for (const auto& l : launches) run_launch(l, out);

  SimTime last = first;
  for (const auto& r : out) last = std::max(last, r.ts);
  if (options_.emit_heartbeats && !launches.empty())
    emit_noise(first, last, out);

  std::stable_sort(out.begin(), out.end(),
                   [](const net::WireRecord& a, const net::WireRecord& b) {
                     return a.ts < b.ts;
                   });
  std::stable_sort(logs_.begin(), logs_.end(),
                   [](const LogLine& a, const LogLine& b) {
                     return a.ts < b.ts;
                   });
  return out;
}

void WorkflowExecutor::run_launch(const Launch& launch,
                                  std::vector<net::WireRecord>& out) {
  const OperationTemplate& op = *launch.op;

  InstanceContext ctx;
  ctx.instance = wire::OpInstanceId(next_instance_++);
  ctx.tmpl = op.id;
  ctx.rng = rng_.fork();

  const auto computes = deployment_->nodes_for(ServiceKind::NovaCompute);
  ctx.compute_node = computes.empty()
                         ? deployment_->primary_node_for(ServiceKind::Nova)
                         : computes[compute_rr_++ % computes.size()];

  // Tenant ids are shared across concurrent operations (40 tenants), which
  // is precisely what makes identifier-based stitching (HANSEL) ambiguous.
  ctx.identifiers.push_back(1000u + ctx.instance.value() % 40u);
  for (int i = 0; i < 3; ++i) {
    ctx.identifiers.push_back(
        static_cast<std::uint32_t>(ctx.rng.next_u64() >> 32));
  }

  SimTime t = launch.start;

  if (options_.emit_keystone_auth) {
    ApiStep auth{infra_->keystone_auth, ServiceKind::Horizon,
                 ServiceKind::Keystone, SimDuration::millis(4), false, 1.0};
    t = emit_exchange(ctx, t, auth, wire::kStatusOk, {}, /*noise=*/true, out,
                      ctx.rng);
  }

  for (std::size_t i = 0; i < op.steps.size(); ++i) {
    const ApiStep& step = op.steps[i];
    if (step.transient && !ctx.rng.chance(step.transient_prob)) continue;

    const bool is_faulty_step =
        launch.fault && launch.fault->fail_step == i;
    const std::uint16_t status =
        is_faulty_step ? launch.fault->status : wire::kStatusOk;
    const std::string_view error_text =
        is_faulty_step ? std::string_view(launch.fault->error_text)
                       : std::string_view{};

    const ErrorLogPolicy policy =
        is_faulty_step
            ? ErrorLogPolicy{launch.fault->logged, launch.fault->log_level}
            : ErrorLogPolicy{};
    t = emit_exchange(ctx, t, step, status, error_text, /*noise=*/false, out,
                      ctx.rng, policy);

    if (is_faulty_step && launch.fault->abort) {
      // Relay the failure to the dashboard: Horizon polls the operation's
      // status API and receives the error (how RPC faults surface as REST
      // errors, §5.3.1).
      const auto& poll_desc = catalog_->get(op.poll_api);
      ApiStep poll{op.poll_api, ServiceKind::Horizon, poll_desc.service,
                   SimDuration::millis(5), false, 1.0};
      t = t + SimDuration::millis(
                  static_cast<std::int64_t>(1 + ctx.rng.next_below(5)));
      emit_exchange(ctx, t, poll, launch.fault->status,
                    launch.fault->error_text, /*noise=*/false, out, ctx.rng,
                    {launch.fault->logged, launch.fault->log_level});
      return;
    }

    // Occasionally reissue an idempotent GET (client retry chatter).
    const auto& desc = catalog_->get(step.api);
    if (desc.kind == ApiKind::Rest && !desc.state_change() &&
        ctx.rng.chance(options_.duplicate_get_prob)) {
      t = emit_exchange(ctx, t, step, wire::kStatusOk, {}, /*noise=*/true,
                        out, ctx.rng);
    }

    const double think_ms = ctx.rng.next_exponential(
        options_.think_mean.to_millis());
    t += SimDuration::nanos(static_cast<std::int64_t>(think_ms * 1e6));
  }
}

void WorkflowExecutor::emit_noise(SimTime from, SimTime to,
                                  std::vector<net::WireRecord>& out) {
  InstanceContext ctx;
  ctx.instance = wire::OpInstanceId::invalid();
  ctx.tmpl = wire::OpTemplateId::invalid();
  ctx.rng = rng_.fork();
  ctx.identifiers = {1u};  // infrastructure tenant

  const auto computes = deployment_->nodes_for(ServiceKind::NovaCompute);
  for (auto compute : computes) {
    ctx.compute_node = compute;
    // Jittered periodic heartbeats from each compute to the Nova controller.
    SimTime t = from + SimDuration::millis(static_cast<std::int64_t>(
                           ctx.rng.next_below(static_cast<std::uint64_t>(
                               options_.heartbeat_period.to_millis()))));
    while (t < to) {
      ApiStep hb{infra_->heartbeat, ServiceKind::NovaCompute,
                 ServiceKind::Nova, SimDuration::millis(2), false, 1.0};
      emit_exchange(ctx, t, hb, wire::kStatusOk, {}, /*noise=*/true, out,
                    ctx.rng);
      if (ctx.rng.chance(0.3)) {
        ApiStep up{infra_->service_update, ServiceKind::NovaCompute,
                   ServiceKind::Nova, SimDuration::millis(2), false, 1.0};
        emit_exchange(ctx, t + SimDuration::millis(15), up, wire::kStatusOk,
                      {}, /*noise=*/true, out, ctx.rng);
      }
      t += options_.heartbeat_period +
           SimDuration::millis(
               static_cast<std::int64_t>(ctx.rng.next_in(-500, 500)));
    }
  }
}

util::SimTime WorkflowExecutor::emit_exchange(
    const InstanceContext& ctx, SimTime t, const ApiStep& step,
    std::uint16_t status, std::string_view error_text, bool noise,
    std::vector<net::WireRecord>& out, util::Rng& rng,
    ErrorLogPolicy log_policy) {
  const auto& desc = catalog_->get(step.api);
  const wire::NodeId caller_node = node_for(step.caller, ctx);
  const wire::NodeId callee_node = node_for(step.callee, ctx);

  // Service time scaled by callee load (CPU surges lengthen latencies,
  // the causal link behind the paper's §7.2.2 case).
  const double jitter = 0.7 + 0.6 * rng.next_double();
  const double svc_ms = step.base_latency.to_millis() *
                        load_factor(callee_node, t) * jitter;
  const SimDuration svc(static_cast<std::int64_t>(svc_ms * 1e6));

  const SimDuration d1 =
      deployment_->fabric().delivery_delay(caller_node, callee_node, t, rng);
  const SimTime t_arrive = t + d1;
  const SimDuration d2 = deployment_->fabric().delivery_delay(
      callee_node, caller_node, t_arrive + svc, rng);
  const SimTime t_resp = t_arrive + svc + d2;

  const std::uint32_t corr =
      options_.emit_correlation_ids && !noise && ctx.instance.valid()
          ? ctx.instance.value()
          : 0;

  net::WireRecord req;
  req.ts = t;
  req.src_node = caller_node;
  req.dst_node = callee_node;
  req.truth_instance = ctx.instance;
  req.truth_template = ctx.tmpl;
  req.truth_noise = noise;
  req.identifiers = ctx.identifiers;

  net::WireRecord resp = req;
  resp.ts = t_resp;
  resp.src_node = callee_node;
  resp.dst_node = caller_node;

  // Bodies are representative JSON blobs padded to the configured size;
  // GRETEL never parses them, but they set realistic wire sizes.
  std::string body = "{\"tenant_id\": \"" +
                     std::to_string(ctx.identifiers.empty()
                                        ? 0
                                        : ctx.identifiers.front()) +
                     "\", \"request_id\": \"" + make_uuid(rng) + "\"";
  if (body.size() + 1 < options_.body_bytes)
    body += ", \"pad\": \"" +
            std::string(options_.body_bytes - body.size() - 1, 'x') + "\"";
  body += "}";

  if (desc.kind == ApiKind::Rest) {
    const std::uint32_t conn = next_conn_++;
    req.conn_id = resp.conn_id = conn;

    std::string target = desc.path;
    for (auto pos = target.find("<ID>"); pos != std::string::npos;
         pos = target.find("<ID>")) {
      target.replace(pos, 4, make_uuid(rng));
    }

    const wire::Endpoint service_ep{deployment_->node(callee_node).ip(),
                                    rest_port_for(desc.service)};
    const wire::Endpoint client_ep{
        deployment_->node(caller_node).ip(),
        static_cast<std::uint16_t>(30000 + conn % 20000)};
    req.src = client_ep;
    req.dst = service_ep;
    resp.src = service_ep;
    resp.dst = client_ep;

    wire::HttpRequest hreq;
    hreq.method = desc.method;
    hreq.target = target;
    hreq.headers.set("Host", std::string(to_string(desc.service)));
    hreq.headers.set("X-Service", std::string(to_string(step.caller)));
    hreq.headers.set("X-Auth-Token", make_uuid(rng));
    if (corr != 0)
      hreq.headers.set("X-Openstack-Request-Id",
                       "req-" + std::to_string(corr));
    hreq.body = body;
    req.bytes = wire::serialize(hreq);

    wire::HttpResponse hresp;
    hresp.status = status;
    if (corr != 0)
      hresp.headers.set("X-Openstack-Request-Id",
                        "req-" + std::to_string(corr));
    if (wire::is_error_status(status)) {
      hresp.reason = std::string(error_text.empty()
                                     ? wire::reason_phrase(status)
                                     : error_text);
      hresp.body = "{\"error\": \"" + hresp.reason + "\"}";
    } else {
      hresp.body = body;
    }
    resp.bytes = wire::serialize(hresp);
  } else {
    const std::uint64_t msg_id = next_msg_++;
    req.is_amqp = resp.is_amqp = true;

    const wire::Endpoint broker_ep{deployment_->node(callee_node).ip(),
                                   wire::ports::kRabbitMq};
    const wire::Endpoint client_ep{
        deployment_->node(caller_node).ip(),
        static_cast<std::uint16_t>(30000 + msg_id % 20000)};
    req.src = client_ep;
    req.dst = broker_ep;
    resp.src = broker_ep;
    resp.dst = client_ep;

    wire::AmqpFrame publish;
    publish.type = wire::AmqpFrameType::Publish;
    publish.msg_id = msg_id;
    publish.correlation_id = corr;
    publish.routing_key = std::string(to_string(desc.service)) + "." +
                          deployment_->node(callee_node).hostname();
    publish.method_name = desc.rpc_method;
    publish.payload = body.substr(0, body.size() * 3 / 4);
    req.bytes = wire::serialize(publish);

    wire::AmqpFrame deliver = publish;
    deliver.type = wire::AmqpFrameType::Deliver;
    deliver.payload =
        wire::is_error_status(status)
            ? wire::make_rpc_error_payload("RemoteError", error_text)
            : body.substr(0, body.size() * 3 / 4);
    resp.bytes = wire::serialize(deliver);
  }

  if (options_.emit_logs && !noise) {
    logs_.push_back({t_arrive, callee_node, desc.service, LogLevel::Trace,
                     "handling " + desc.display_name()});
    if (wire::is_error_status(status) && log_policy.logged) {
      logs_.push_back({t_resp, callee_node, desc.service, log_policy.level,
                       std::string(error_text.empty()
                                       ? std::string_view("request failed")
                                       : error_text)});
    }
  }

  out.push_back(std::move(req));
  out.push_back(std::move(resp));
  return t_resp;
}

wire::NodeId WorkflowExecutor::node_for(ServiceKind s,
                                        const InstanceContext& ctx) const {
  if (s == ServiceKind::NovaCompute || s == ServiceKind::NeutronAgent)
    return ctx.compute_node;
  return deployment_->primary_node_for(s);
}

double WorkflowExecutor::load_factor(wire::NodeId node, SimTime t) const {
  const double cpu =
      deployment_->node(node).nominal(net::ResourceKind::CpuPct, t);
  const double over = std::max(0.0, (cpu - 60.0) / 40.0);
  return 1.0 + over * over * 4.0;
}

std::string WorkflowExecutor::make_uuid(util::Rng& rng) const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(36);
  const int groups[] = {8, 4, 4, 4, 12};
  for (int g = 0; g < 5; ++g) {
    if (g) out += '-';
    for (int i = 0; i < groups[g]; ++i)
      out += kHex[rng.next_below(16)];
  }
  return out;
}

}  // namespace gretel::stack
