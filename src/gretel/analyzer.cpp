#include "gretel/analyzer.h"

#include <algorithm>

namespace gretel::core {

Analyzer::Analyzer(const FingerprintDb* db, const wire::ApiCatalog* catalog,
                   const stack::Deployment* deployment, Options options)
    : tap_(catalog, deployment->service_by_port(),
           std::max<std::size_t>(1, options.config.decode_arena_kb) * 1024),
      watcher_(deployment),
      rca_(db, catalog, deployment, &metrics_, &watcher_),
      detector_(db, catalog, options.config,
                [this](const FaultReport& fault) {
                  Diagnosis d;
                  d.fault = fault;
                  if (run_root_cause_) d.root_cause = rca_.analyze(fault);
                  diagnoses_.push_back(std::move(d));
                }),
      run_root_cause_(options.run_root_cause) {}

void Analyzer::on_wire(const net::WireRecord& record) {
  if (auto event = tap_.decode(record)) detector_.on_event(*event);
}

void Analyzer::on_event(const wire::Event& event) {
  detector_.on_event(event);
}

void Analyzer::on_wire_batch(std::span<const net::WireRecord> records) {
  const std::size_t chunk =
      std::max<std::size_t>(1, detector_.config().ingest_batch);
  std::size_t i = 0;
  while (i < records.size()) {
    const auto take = std::min(chunk, records.size() - i);
    event_scratch_.clear();
    for (std::size_t k = 0; k < take; ++k) {
      // decode() resets the tap arena per record, but the Event copies out
      // everything it keeps, so accumulating across resets is safe.
      if (auto event = tap_.decode(records[i + k])) {
        event_scratch_.push_back(std::move(*event));
      }
    }
    detector_.on_events(event_scratch_);
    i += take;
  }
}

void Analyzer::on_events(std::span<const wire::Event> events) {
  detector_.on_events(events);
}

void Analyzer::on_metric(wire::NodeId node, net::ResourceKind kind,
                         double t_seconds, double value) {
  metrics_.record(node, kind, t_seconds, value);
  resource_stream_.observe(node, kind, t_seconds, value);
}

void Analyzer::finish() { detector_.flush(); }

}  // namespace gretel::core
