#include "gretel/analyzer.h"

namespace gretel::core {

Analyzer::Analyzer(const FingerprintDb* db, const wire::ApiCatalog* catalog,
                   const stack::Deployment* deployment, Options options)
    : tap_(catalog, deployment->service_by_port()),
      watcher_(deployment),
      rca_(db, catalog, deployment, &metrics_, &watcher_),
      detector_(db, catalog, options.config,
                [this](const FaultReport& fault) {
                  Diagnosis d;
                  d.fault = fault;
                  if (run_root_cause_) d.root_cause = rca_.analyze(fault);
                  diagnoses_.push_back(std::move(d));
                }),
      run_root_cause_(options.run_root_cause) {}

void Analyzer::on_wire(const net::WireRecord& record) {
  if (auto event = tap_.decode(record)) detector_.on_event(*event);
}

void Analyzer::on_event(const wire::Event& event) {
  detector_.on_event(event);
}

void Analyzer::on_metric(wire::NodeId node, net::ResourceKind kind,
                         double t_seconds, double value) {
  metrics_.record(node, kind, t_seconds, value);
  resource_stream_.observe(node, kind, t_seconds, value);
}

void Analyzer::finish() { detector_.flush(); }

}  // namespace gretel::core
