#include "gretel/analyzer.h"

#include <algorithm>

#include "util/binio.h"

namespace gretel::core {

namespace {

monitor::ProbeConfig probe_config_from(const GretelConfig& config,
                                       std::uint64_t seed) {
  monitor::ProbeConfig p;
  p.timeout_ms = config.probe_timeout_ms;
  p.retries = config.probe_retries;
  p.backoff_base_ms = config.backoff_base_ms;
  p.backoff_cap_ms = config.backoff_cap_ms;
  p.breaker_open_after = config.breaker_open_after;
  p.flap_hysteresis = config.flap_hysteresis;
  p.seed = seed;
  return p;
}

monitor::DependencyWatcher make_watcher(const stack::Deployment* deployment,
                                        const Analyzer::Options& options) {
  if (!options.probed_monitoring)
    return monitor::DependencyWatcher(deployment);
  return monitor::DependencyWatcher(
      deployment,
      probe_config_from(options.config, options.monitor_chaos.seed),
      options.monitor_chaos);
}

}  // namespace

Analyzer::Analyzer(const FingerprintDb* db, const wire::ApiCatalog* catalog,
                   const stack::Deployment* deployment, Options options)
    : tap_(catalog, deployment->service_by_port(),
           std::max<std::size_t>(1, options.config.decode_arena_kb) * 1024),
      watcher_(make_watcher(deployment, options)),
      rca_(db, catalog, deployment, &metrics_, &watcher_,
           RootCauseEngine::Options::from(options.config)),
      detector_(db, catalog, options.config,
                [this](const FaultReport& fault) {
                  Diagnosis d;
                  d.fault = fault;
                  if (run_root_cause_) d.root_cause = rca_.analyze(fault);
                  if (diagnosis_sink_) {
                    sink_stale_series_ += d.root_cause.stale_series;
                    diagnosis_sink_(d);
                  } else {
                    diagnoses_.push_back(std::move(d));
                  }
                }),
      run_root_cause_(options.run_root_cause),
      diagnosis_sink_(std::move(options.diagnosis_sink)) {
  if (options.streaming) {
    // Arm every bounded-state knob.  Detection output is unaffected by the
    // series cap and sketches (the level-shift detector owns its own
    // bounded window); the in-flight cap only engages under sustained
    // response loss, and metric retention only trims history the RCA
    // window can no longer reach.
    auto& latency = detector_.latency_shards();
    const auto& cfg = detector_.config();
    latency.set_series_cap(cfg.stream_series_cap);
    if (cfg.stream_inflight_cap > 0) {
      latency.set_inflight_cap(std::max<std::size_t>(
          64, cfg.stream_inflight_cap / latency.num_shards()));
    }
    latency.set_sketch_enabled(true);
    metrics_.set_retention_seconds(cfg.stream_metrics_retention_s);
  }
}

void Analyzer::on_wire(const net::WireRecord& record) {
  const auto failures_before = tap_.stats().decode_failures;
  auto event = tap_.decode(record);
  // A quarantined frame is a hole in the stream the detector will window
  // over: annotate the loss so reports spanning it carry degraded
  // confidence.  (unknown_api records are deliberate filtering, not loss.)
  if (const auto delta = tap_.stats().decode_failures - failures_before)
    detector_.record_loss(delta);
  if (event) detector_.on_event(*event);
}

void Analyzer::on_event(const wire::Event& event) {
  detector_.on_event(event);
}

void Analyzer::on_wire_batch(std::span<const net::WireRecord> records) {
  const std::size_t chunk =
      std::max<std::size_t>(1, detector_.config().ingest_batch);
  std::size_t i = 0;
  while (i < records.size()) {
    const auto take = std::min(chunk, records.size() - i);
    event_scratch_.clear();
    for (std::size_t k = 0; k < take; ++k) {
      // decode() resets the tap arena per record, but the Event copies out
      // everything it keeps, so accumulating across resets is safe.
      const auto failures_before = tap_.stats().decode_failures;
      auto event = tap_.decode(records[i + k]);
      if (const auto delta =
              tap_.stats().decode_failures - failures_before) {
        // Keep loss attribution at the exact stream position: hand the
        // events decoded so far to the detector before recording the loss,
        // so the per-record and batched paths annotate windows identically.
        detector_.on_events(event_scratch_);
        event_scratch_.clear();
        detector_.record_loss(delta);
      }
      if (event) event_scratch_.push_back(std::move(*event));
    }
    detector_.on_events(event_scratch_);
    i += take;
  }
}

void Analyzer::on_events(std::span<const wire::Event> events) {
  detector_.on_events(events);
}

void Analyzer::on_metric(wire::NodeId node, net::ResourceKind kind,
                         double t_seconds, double value) {
  metrics_.record(node, kind, t_seconds, value);
  resource_stream_.observe(node, kind, t_seconds, value);
}

void Analyzer::finish() { detector_.flush(); }

monitor::PipelineHealthCounters Analyzer::health() {
  const auto& tap = tap_.stats();
  const auto& det = detector_.stats();
  monitor::PipelineHealthCounters h;
  h.frames_decoded = tap.decoded;
  h.frames_quarantined = tap.decode_failures;
  h.frames_unknown_api = tap.unknown_api;
  h.frames_non_monotonic = tap.non_monotonic;
  h.losses_recorded = det.losses_recorded;
  h.overflow_drops = det.overflow_drops;
  h.watchdog_trips = det.watchdog_trips;
  h.orphans_reaped = det.orphans_reaped;
  h.latency_clamped = det.latency_clamped;
  h.latency_rejected = det.latency_rejected;
  h.stale_freezes = det.stale_freezes;
  h.degraded_reports = det.degraded_reports;
  // Monitoring-plane health: the watcher's probe counters plus the
  // per-diagnosis staleness annotations the root-cause engine produced.
  const auto probe = watcher_.probe_stats();
  h.probe_attempts = probe.attempts;
  h.probe_retries = probe.retries;
  h.probe_timeouts = probe.timeouts;
  h.probe_drops = probe.drops;
  h.breaker_trips = probe.breaker_trips;
  h.breaker_skips = probe.breaker_skips;
  h.flap_suppressed = probe.flap_suppressed;
  h.probe_budget_exhausted = probe.budget_exhausted;
  h.stale_series = sink_stale_series_;
  for (const auto& d : diagnoses_) h.stale_series += d.root_cause.stale_series;
  // Streaming bounds + per-shard liveness.
  h.inflight_evicted = det.inflight_evicted;
  h.series_trimmed = det.series_trimmed;
  for (const auto& s : detector_.shard_health()) {
    h.shard_progress_age_ms.push_back(s.progress_age_ms);
    if (s.stalled) ++h.stalled_shards;
  }
  return h;
}

void Analyzer::save_state(std::string& out) const {
  detector_.save_state(out);
  resource_stream_.save_state(out);
  util::put_u64(out, sink_stale_series_);
}

bool Analyzer::load_state(std::string_view& in) {
  if (!detector_.load_state(in)) return false;
  if (!resource_stream_.load_state(in)) return false;
  std::uint64_t stale = 0;
  if (!util::get_u64(in, stale)) return false;
  sink_stale_series_ = stale;
  return true;
}

}  // namespace gretel::core
