#include "gretel/fingerprint.h"

#include <algorithm>
#include <cassert>

#include "gretel/lcs.h"

namespace gretel::core {

std::size_t Fingerprint::size_without_rpc(
    const wire::ApiCatalog& catalog) const {
  std::size_t n = 0;
  for (auto api : sequence)
    n += catalog.get(api).kind == wire::ApiKind::Rest ? 1 : 0;
  return n;
}

bool Fingerprint::contains(wire::ApiId api) const {
  return std::find(sequence.begin(), sequence.end(), api) != sequence.end();
}

std::u32string Fingerprint::regex_string(const SymbolTable& symbols,
                                         const wire::ApiCatalog& catalog,
                                         bool include_rpc) const {
  std::u32string out;
  out.reserve(sequence.size() * 2);
  for (auto api : sequence) {
    const auto& desc = catalog.get(api);
    if (!include_rpc && desc.kind == wire::ApiKind::Rpc) continue;
    out += symbols.symbol(api);
    if (!desc.state_change()) out += U'*';
  }
  return out;
}

FingerprintGenerator::FingerprintGenerator(const wire::ApiCatalog* catalog,
                                           const NoiseFilter* filter)
    : catalog_(catalog), filter_(filter) {
  assert(catalog_ && filter_);
}

Fingerprint FingerprintGenerator::from_traces(
    wire::OpTemplateId op, std::string name,
    std::vector<std::vector<wire::ApiId>> traces) const {
  Fingerprint fp;
  fp.op = op;
  fp.name = std::move(name);
  if (traces.empty()) return fp;

  // SORT_BY_TRACE_LENGTH: fold starting from the shortest trace so the
  // running intersection only shrinks.
  std::sort(traces.begin(), traces.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });

  std::vector<wire::ApiId> common = filter_->filter(traces.front());
  for (std::size_t i = 1; i < traces.size(); ++i) {
    const auto filtered = filter_->filter(traces[i]);
    common = longest_common_subsequence(common, filtered);
  }
  fp.sequence = std::move(common);

  for (auto api : fp.sequence) {
    if (catalog_->get(api).state_change()) fp.state_sequence.push_back(api);
  }
  return fp;
}

std::vector<Fingerprint> FingerprintGenerator::from_traces_branched(
    wire::OpTemplateId op, const std::string& name,
    std::vector<std::vector<wire::ApiId>> traces,
    double similarity_threshold) const {
  // Cluster the *filtered* traces greedily against each cluster's first
  // member (the representative).
  struct Cluster {
    std::vector<wire::ApiId> representative;
    std::vector<std::vector<wire::ApiId>> members;
  };
  std::vector<Cluster> clusters;
  for (auto& raw : traces) {
    auto filtered = filter_->filter(raw);
    bool placed = false;
    for (auto& cluster : clusters) {
      const auto common =
          longest_common_subsequence(cluster.representative, filtered);
      const auto longer =
          std::max(cluster.representative.size(), filtered.size());
      const double similarity =
          longer ? static_cast<double>(common.size()) /
                       static_cast<double>(longer)
                 : 1.0;
      if (similarity >= similarity_threshold) {
        cluster.members.push_back(std::move(filtered));
        placed = true;
        break;
      }
    }
    if (!placed) {
      clusters.push_back({filtered, {std::move(filtered)}});
    }
  }

  std::vector<Fingerprint> out;
  out.reserve(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    // Fold the cluster with the plain Algorithm-1 intersection.  The
    // members are already noise-filtered; filtering is idempotent.
    auto fp = from_traces(op,
                          clusters.size() > 1
                              ? name + "#" + std::to_string(c)
                              : name,
                          std::move(clusters[c].members));
    out.push_back(std::move(fp));
  }
  return out;
}

Fingerprint FingerprintGenerator::from_event_traces(
    wire::OpTemplateId op, std::string name,
    const std::vector<std::vector<wire::Event>>& traces) const {
  std::vector<std::vector<wire::ApiId>> api_traces;
  api_traces.reserve(traces.size());
  for (const auto& events : traces) {
    std::vector<wire::ApiId> trace;
    trace.reserve(events.size() / 2);
    for (const auto& ev : events) {
      if (ev.is_request()) trace.push_back(ev.api);
    }
    api_traces.push_back(std::move(trace));
  }
  return from_traces(op, std::move(name), std::move(api_traces));
}

}  // namespace gretel::core
