// Longest common subsequence over API traces (Algorithm 1's
// GET_LONGEST_COMMON_SUBSEQUENCE).  Re-executing an operation several times
// and intersecting the traces removes transient invocations; LCS is the
// order-preserving intersection.
#pragma once

#include <span>
#include <vector>

#include "wire/api.h"

namespace gretel::core {

// Classic O(n*m) dynamic program; traces are a few hundred APIs long, so
// this stays comfortably cheap — and it runs offline (§7.1: fingerprint
// generation is an offline process).
std::vector<wire::ApiId> longest_common_subsequence(
    std::span<const wire::ApiId> a, std::span<const wire::ApiId> b);

}  // namespace gretel::core
