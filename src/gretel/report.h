// Diagnosis artifacts the analyzer hands to operators: fault reports from
// the anomaly detector (§5.3) and root-cause findings (§5.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "detect/latency_tracker.h"
#include "util/time.h"
#include "wire/message.h"

namespace gretel::core {

enum class FaultKind : std::uint8_t { Operational, Performance };

struct FaultReport {
  FaultKind kind = FaultKind::Operational;
  wire::ApiId offending_api;
  util::SimTime detected_at;

  // Operation detection outcome (Algorithm 2).
  std::vector<std::uint32_t> matched_fingerprints;  // FingerprintDb indices
  double theta = 0.0;           // precision θ = (N - n) / (N - 1)
  std::size_t beta_final = 0;   // context buffer size at convergence
  std::size_t candidates = 0;   // fingerprints containing the offending API

  // Error messages found inside the snapshot (REST and RPC), with their
  // endpoint nodes — Algorithm 3 starts its search from these.
  std::vector<wire::Event> error_events;

  // Context-buffer time span, which bounds the root-cause analysis window.
  util::SimTime window_start;
  util::SimTime window_end;

  // Performance faults carry the triggering latency alarm.
  std::optional<detect::LatencyAlarm> latency;

  // Degraded-telemetry annotation: how many telemetry losses (quarantined
  // frames, overflow drops) fell inside the frozen window, and the derived
  // confidence flag.  A degraded report is still actionable — the matcher
  // ran on what survived — but its θ and match set may be understated.
  std::uint64_t window_losses = 0;
  bool degraded_confidence = false;
};

enum class CauseKind : std::uint8_t { ResourceAnomaly, SoftwareFailure };

struct Cause {
  CauseKind kind = CauseKind::ResourceAnomaly;
  wire::NodeId node;
  std::string detail;   // e.g. "cpu level 93.1 vs baseline 8.2" or daemon
  double score = 0.0;   // deviation in baseline sigmas (resources)
};

struct RootCauseReport {
  std::vector<Cause> causes;
  // True when the error-endpoint nodes were clean and the search expanded
  // to the remaining nodes of the operation (upstream root cause).
  bool expanded_search = false;
  // Propagated from FaultReport::degraded_confidence: the underlying
  // snapshot had telemetry gaps, so absence of a cause is weaker evidence
  // than usual.
  bool degraded = false;
};

struct Diagnosis {
  FaultReport fault;
  RootCauseReport root_cause;
};

}  // namespace gretel::core
