// Diagnosis artifacts the analyzer hands to operators: fault reports from
// the anomaly detector (§5.3) and root-cause findings (§5.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "detect/latency_tracker.h"
#include "monitor/watcher.h"
#include "util/time.h"
#include "wire/message.h"

namespace gretel::core {

enum class FaultKind : std::uint8_t { Operational, Performance };

struct FaultReport {
  FaultKind kind = FaultKind::Operational;
  wire::ApiId offending_api;
  util::SimTime detected_at;

  // Operation detection outcome (Algorithm 2).
  std::vector<std::uint32_t> matched_fingerprints;  // FingerprintDb indices
  double theta = 0.0;           // precision θ = (N - n) / (N - 1)
  std::size_t beta_final = 0;   // context buffer size at convergence
  std::size_t candidates = 0;   // fingerprints containing the offending API

  // Error messages found inside the snapshot (REST and RPC), with their
  // endpoint nodes — Algorithm 3 starts its search from these.
  std::vector<wire::Event> error_events;

  // Context-buffer time span, which bounds the root-cause analysis window.
  util::SimTime window_start;
  util::SimTime window_end;

  // Performance faults carry the triggering latency alarm.
  std::optional<detect::LatencyAlarm> latency;

  // Degraded-telemetry annotation: how many telemetry losses (quarantined
  // frames, overflow drops) fell inside the frozen window, and the derived
  // confidence flag.  A degraded report is still actionable — the matcher
  // ran on what survived — but its θ and match set may be understated.
  std::uint64_t window_losses = 0;
  bool degraded_confidence = false;
};

enum class CauseKind : std::uint8_t { ResourceAnomaly, SoftwareFailure };

struct Cause {
  CauseKind kind = CauseKind::ResourceAnomaly;
  wire::NodeId node;
  std::string detail;   // e.g. "cpu level 93.1 vs baseline 8.2" or daemon
  double score = 0.0;   // deviation in baseline sigmas (resources)
  // Quality of the monitoring evidence behind the finding: Confirmed for
  // oracle/first-attempt observations, Suspected when the probe machinery
  // was degraded (retried replies, flap-pending state changes).
  monitor::EvidenceStatus evidence = monitor::EvidenceStatus::Confirmed;
  double confidence = 1.0;  // 1.0 Confirmed, lower for weaker evidence
};

struct RootCauseReport {
  std::vector<Cause> causes;
  // True when the error-endpoint nodes were clean and the search expanded
  // to the remaining nodes of the operation (upstream root cause).
  bool expanded_search = false;
  // Propagated from FaultReport::degraded_confidence: the underlying
  // snapshot had telemetry gaps, so absence of a cause is weaker evidence
  // than usual.
  bool degraded = false;
  // Monitoring-plane degradation inside this analysis window: some
  // dependency or metric evidence was Suspected/Stale/Unknown, so "no
  // cause on a node" may mean "could not observe the node".  Independent
  // of `degraded`, which annotates the *wire* snapshot.
  bool monitoring_degraded = false;
  // Dependency targets whose state could not be confirmed (open breaker,
  // exhausted retries/budget, flap-pending changes), deduplicated.
  std::vector<monitor::EvidenceGap> evidence_gaps;
  // Metric series whose freshness watermark lagged the window (or were
  // never sampled) while staleness checking was enabled.
  std::uint64_t stale_series = 0;
  // Simulated probe time the analysis spent; bounded by the configured
  // probe budget when one is set.
  double probe_time_ms = 0.0;
};

struct Diagnosis {
  FaultReport fault;
  RootCauseReport root_cause;
};

// Canonical (presentation-independent) ordering of causes: by kind, node,
// detail, then evidence status — deliberately ignoring score and
// confidence, whose float values rank ties differently across backends.
// The campaign fingerprint sorts causes with this before hashing so that
// cosmetic ordering differences within a score tie cannot change a
// report's failure-mode signature.  Implemented in root_cause.cpp.
bool cause_canonical_less(const Cause& a, const Cause& b);

}  // namespace gretel::core
