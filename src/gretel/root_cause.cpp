#include "gretel/root_cause.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "detect/series_analysis.h"

namespace gretel::core {

RootCauseEngine::RootCauseEngine(const FingerprintDb* db,
                                 const wire::ApiCatalog* catalog,
                                 const stack::Deployment* deployment,
                                 const monitor::MetricsStore* metrics,
                                 const monitor::DependencyWatcher* watcher,
                                 Options options)
    : db_(db),
      catalog_(catalog),
      deployment_(deployment),
      metrics_(metrics),
      watcher_(watcher),
      options_(options) {
  assert(db_ && catalog_ && deployment_ && metrics_ && watcher_);
}

RootCauseEngine::RootCauseEngine(const FingerprintDb* db,
                                 const wire::ApiCatalog* catalog,
                                 const stack::Deployment* deployment,
                                 const monitor::MetricsStore* metrics,
                                 const monitor::DependencyWatcher* watcher)
    : RootCauseEngine(db, catalog, deployment, metrics, watcher, Options{}) {}

std::vector<wire::NodeId> RootCauseEngine::nodes_for_operations(
    const std::vector<FingerprintDb::Index>& fingerprints) const {
  std::vector<wire::NodeId> out;
  auto add = [&out](wire::NodeId id) {
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  };
  for (auto idx : fingerprints) {
    const auto& fp = db_->get(idx);
    for (auto api : fp.sequence) {
      for (auto node : deployment_->nodes_for(catalog_->get(api).service))
        add(node);
    }
  }
  return out;
}

std::vector<Cause> RootCauseEngine::find_causes(
    const std::vector<wire::NodeId>& nodes, util::SimTime from,
    util::SimTime to, const monitor::WindowEvidence& evidence,
    RootCauseReport& report) const {
  std::vector<Cause> causes;

  for (auto node : nodes) {
    // Resource anomalies: the fault window vs the node's own history.
    for (std::size_t k = 0; k < net::kResourceKinds; ++k) {
      const auto kind = static_cast<net::ResourceKind>(k);
      const auto* series = metrics_->series(node, kind);

      // Freshness gate (when enabled): a series whose newest sample lags
      // the window end is *stale*, not clean — a frozen collectd stream
      // would otherwise read as "no anomaly" forever.  Is_Anomalous is
      // skipped for the series and the gap is annotated instead.
      if (options_.metric_staleness_s > 0.0) {
        const auto watermark = metrics_->watermark_s(node, kind);
        const bool missing = !watermark.has_value();
        if (missing ||
            *watermark + options_.metric_staleness_s < to.to_seconds()) {
          ++report.stale_series;
          monitor::EvidenceGap gap;
          gap.node = node;
          gap.dependency = "metric:";
          gap.dependency += to_string(kind);
          gap.status = missing ? monitor::EvidenceStatus::Unknown
                               : monitor::EvidenceStatus::Stale;
          report.evidence_gaps.push_back(std::move(gap));
          continue;
        }
      }
      if (!series) continue;
      const auto verdict = detect::analyze_window(
          *series, from.to_seconds(), to.to_seconds(), options_.k_sigma);

      const char* absolute = nullptr;
      if (const auto rule =
              detect::absolute_rule_violation(kind, verdict.window_level);
          rule && verdict.window_level != 0.0) {
        absolute = *rule;
      }
      if (!verdict.anomalous && !absolute) continue;

      std::ostringstream detail;
      detail << to_string(kind) << " level " << verdict.window_level;
      if (verdict.anomalous) {
        detail << " vs baseline " << verdict.baseline_level;
      }
      if (absolute) detail << " (" << absolute << ")";
      Cause c;
      c.kind = CauseKind::ResourceAnomaly;
      c.node = node;
      c.detail = detail.str();
      c.score = verdict.sigma > 0
                    ? std::abs(verdict.window_level - verdict.baseline_level) /
                          verdict.sigma
                    : 0.0;
      causes.push_back(std::move(c));
    }
  }

  // Software dependency failures observed in the window, with the probe
  // layer's evidence quality attached.
  for (const auto& failure : evidence.failures) {
    if (std::find(nodes.begin(), nodes.end(), failure.node) == nodes.end())
      continue;
    Cause c;
    c.kind = CauseKind::SoftwareFailure;
    c.node = failure.node;
    c.detail = failure.dependency;
    c.score = 1e9;  // a dead dependency outranks any resource deviation
    c.evidence = failure.evidence;
    c.confidence =
        failure.evidence == monitor::EvidenceStatus::Confirmed ? 1.0 : 0.5;
    causes.push_back(std::move(c));
  }

  // Dependency targets on these nodes whose state could not be confirmed
  // (open breaker, exhausted retries/budget, flap-pending): annotate them
  // so "no cause here" reads as "could not look", not "clean".
  for (const auto& gap : evidence.gaps) {
    if (std::find(nodes.begin(), nodes.end(), gap.node) == nodes.end())
      continue;
    report.evidence_gaps.push_back(gap);
  }

  std::sort(causes.begin(), causes.end(),
            [](const Cause& a, const Cause& b) { return a.score > b.score; });
  return causes;
}

RootCauseReport RootCauseEngine::analyze(const FaultReport& fault) const {
  RootCauseReport report;
  // A lossy snapshot weakens negative evidence (a clean node may simply be
  // one whose telemetry was lost); carry the flag through to the diagnosis.
  report.degraded = fault.degraded_confidence;
  const auto from = fault.window_start - options_.window_pad;
  const auto to = fault.window_end + options_.window_pad;

  // Collect the window's dependency evidence ONCE: probing advances
  // breaker/flap state and spends the deadline budget, so both search
  // phases must share a single pass over the watchers.
  const auto evidence = watcher_->window_evidence(
      from, to, util::SimDuration::seconds(1), options_.probe_budget_ms);
  report.probe_time_ms = evidence.probe_time_ms;

  // Error-endpoint nodes first (GET_ERROR_NODES).
  std::vector<wire::NodeId> error_nodes;
  auto add = [&error_nodes](wire::NodeId id) {
    if (std::find(error_nodes.begin(), error_nodes.end(), id) ==
        error_nodes.end())
      error_nodes.push_back(id);
  };
  for (const auto& ev : fault.error_events) {
    add(ev.src_node);
    add(ev.dst_node);
  }

  report.causes = find_causes(error_nodes, from, to, evidence, report);
  // Clean endpoints — or endpoints we could not actually observe — expand
  // to the remaining nodes of the operation: the root cause may be
  // upstream (§5.4, demonstrated in §7.2.3/§7.2.4), and an open breaker
  // or stale series on an endpoint is "unknown", not "clean".
  if (report.causes.empty()) {
    auto all_nodes = nodes_for_operations(fault.matched_fingerprints);
    std::vector<wire::NodeId> remaining;
    for (auto node : all_nodes) {
      if (std::find(error_nodes.begin(), error_nodes.end(), node) ==
          error_nodes.end())
        remaining.push_back(node);
    }
    report.causes = find_causes(remaining, from, to, evidence, report);
    report.expanded_search = true;
  }

  report.monitoring_degraded = !report.evidence_gaps.empty() ||
                               report.stale_series > 0 ||
                               evidence.budget_exhausted;
  return report;
}

bool cause_canonical_less(const Cause& a, const Cause& b) {
  if (a.kind != b.kind) {
    return static_cast<std::uint8_t>(a.kind) <
           static_cast<std::uint8_t>(b.kind);
  }
  if (a.node.value() != b.node.value()) return a.node.value() < b.node.value();
  if (a.detail != b.detail) return a.detail < b.detail;
  return static_cast<std::uint8_t>(a.evidence) <
         static_cast<std::uint8_t>(b.evidence);
}

}  // namespace gretel::core
