#include "gretel/root_cause.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "detect/series_analysis.h"

namespace gretel::core {

RootCauseEngine::RootCauseEngine(const FingerprintDb* db,
                                 const wire::ApiCatalog* catalog,
                                 const stack::Deployment* deployment,
                                 const monitor::MetricsStore* metrics,
                                 const monitor::DependencyWatcher* watcher,
                                 Options options)
    : db_(db),
      catalog_(catalog),
      deployment_(deployment),
      metrics_(metrics),
      watcher_(watcher),
      options_(options) {
  assert(db_ && catalog_ && deployment_ && metrics_ && watcher_);
}

RootCauseEngine::RootCauseEngine(const FingerprintDb* db,
                                 const wire::ApiCatalog* catalog,
                                 const stack::Deployment* deployment,
                                 const monitor::MetricsStore* metrics,
                                 const monitor::DependencyWatcher* watcher)
    : RootCauseEngine(db, catalog, deployment, metrics, watcher, Options{}) {}

std::vector<wire::NodeId> RootCauseEngine::nodes_for_operations(
    const std::vector<FingerprintDb::Index>& fingerprints) const {
  std::vector<wire::NodeId> out;
  auto add = [&out](wire::NodeId id) {
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  };
  for (auto idx : fingerprints) {
    const auto& fp = db_->get(idx);
    for (auto api : fp.sequence) {
      for (auto node : deployment_->nodes_for(catalog_->get(api).service))
        add(node);
    }
  }
  return out;
}

std::vector<Cause> RootCauseEngine::find_causes(
    const std::vector<wire::NodeId>& nodes, util::SimTime from,
    util::SimTime to) const {
  std::vector<Cause> causes;

  for (auto node : nodes) {
    // Resource anomalies: the fault window vs the node's own history.
    for (std::size_t k = 0; k < net::kResourceKinds; ++k) {
      const auto kind = static_cast<net::ResourceKind>(k);
      const auto* series = metrics_->series(node, kind);
      if (!series) continue;
      const auto verdict = detect::analyze_window(
          *series, from.to_seconds(), to.to_seconds(), options_.k_sigma);

      const char* absolute = nullptr;
      if (const auto rule =
              detect::absolute_rule_violation(kind, verdict.window_level);
          rule && verdict.window_level != 0.0) {
        absolute = *rule;
      }
      if (!verdict.anomalous && !absolute) continue;

      std::ostringstream detail;
      detail << to_string(kind) << " level " << verdict.window_level;
      if (verdict.anomalous) {
        detail << " vs baseline " << verdict.baseline_level;
      }
      if (absolute) detail << " (" << absolute << ")";
      Cause c;
      c.kind = CauseKind::ResourceAnomaly;
      c.node = node;
      c.detail = detail.str();
      c.score = verdict.sigma > 0
                    ? std::abs(verdict.window_level - verdict.baseline_level) /
                          verdict.sigma
                    : 0.0;
      causes.push_back(std::move(c));
    }
  }

  // Software dependency failures observed in the window.
  for (const auto& failure : watcher_->failures_in(from, to)) {
    if (std::find(nodes.begin(), nodes.end(), failure.node) == nodes.end())
      continue;
    Cause c;
    c.kind = CauseKind::SoftwareFailure;
    c.node = failure.node;
    c.detail = failure.dependency;
    c.score = 1e9;  // a dead dependency outranks any resource deviation
    causes.push_back(std::move(c));
  }

  std::sort(causes.begin(), causes.end(),
            [](const Cause& a, const Cause& b) { return a.score > b.score; });
  return causes;
}

RootCauseReport RootCauseEngine::analyze(const FaultReport& fault) const {
  RootCauseReport report;
  // A lossy snapshot weakens negative evidence (a clean node may simply be
  // one whose telemetry was lost); carry the flag through to the diagnosis.
  report.degraded = fault.degraded_confidence;
  const auto from = fault.window_start - options_.window_pad;
  const auto to = fault.window_end + options_.window_pad;

  // Error-endpoint nodes first (GET_ERROR_NODES).
  std::vector<wire::NodeId> error_nodes;
  auto add = [&error_nodes](wire::NodeId id) {
    if (std::find(error_nodes.begin(), error_nodes.end(), id) ==
        error_nodes.end())
      error_nodes.push_back(id);
  };
  for (const auto& ev : fault.error_events) {
    add(ev.src_node);
    add(ev.dst_node);
  }

  report.causes = find_causes(error_nodes, from, to);
  if (!report.causes.empty()) return report;

  // Clean endpoints: expand to the remaining nodes of the operation — the
  // root cause may be upstream (§5.4, demonstrated in §7.2.3/§7.2.4).
  auto all_nodes = nodes_for_operations(fault.matched_fingerprints);
  std::vector<wire::NodeId> remaining;
  for (auto node : all_nodes) {
    if (std::find(error_nodes.begin(), error_nodes.end(), node) ==
        error_nodes.end())
      remaining.push_back(node);
  }
  report.causes = find_causes(remaining, from, to);
  report.expanded_search = true;
  return report;
}

}  // namespace gretel::core
