#include "gretel/json_export.h"

#include <cstdio>

namespace gretel::core {

namespace {

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const Diagnosis& d, const wire::ApiCatalog& catalog,
                    const FingerprintDb& db) {
  std::string out;
  out += "{\"kind\": \"";
  out += d.fault.kind == FaultKind::Operational ? "operational"
                                                : "performance";
  out += "\", \"offending_api\": \"";
  out += json_escape(catalog.get(d.fault.offending_api).display_name());
  out += "\", \"detected_at_s\": ";
  append_number(out, d.fault.detected_at.to_seconds());
  out += ", \"theta\": ";
  append_number(out, d.fault.theta);
  out += ", \"beta_final\": ";
  out += std::to_string(d.fault.beta_final);
  out += ", \"candidates\": ";
  out += std::to_string(d.fault.candidates);

  out += ", \"matched_operations\": [";
  for (std::size_t i = 0; i < d.fault.matched_fingerprints.size(); ++i) {
    if (i) out += ", ";
    out += '"';
    out += json_escape(db.get(d.fault.matched_fingerprints[i]).name);
    out += '"';
  }
  out += ']';

  if (d.fault.latency) {
    out += ", \"latency\": {\"baseline_ms\": ";
    append_number(out, d.fault.latency->alarm.baseline);
    out += ", \"magnitude_ms\": ";
    append_number(out, d.fault.latency->alarm.magnitude);
    out += ", \"direction\": \"";
    out += d.fault.latency->alarm.direction == detect::ShiftDirection::Up
               ? "up"
               : "down";
    out += "\"}";
  }

  out += ", \"error_events\": ";
  out += std::to_string(d.fault.error_events.size());

  out += ", \"window_losses\": ";
  out += std::to_string(d.fault.window_losses);
  out += ", \"degraded_confidence\": ";
  out += d.fault.degraded_confidence ? "true" : "false";

  out += ", \"root_cause\": {\"expanded_search\": ";
  out += d.root_cause.expanded_search ? "true" : "false";
  out += ", \"degraded\": ";
  out += d.root_cause.degraded ? "true" : "false";
  // Monitoring-degradation annotations are emitted only when present, so a
  // healthy monitoring plane produces the exact legacy document.
  if (d.root_cause.monitoring_degraded) {
    out += ", \"monitoring_degraded\": true, \"stale_series\": ";
    out += std::to_string(d.root_cause.stale_series);
    out += ", \"probe_time_ms\": ";
    append_number(out, d.root_cause.probe_time_ms);
    out += ", \"evidence_gaps\": [";
    for (std::size_t i = 0; i < d.root_cause.evidence_gaps.size(); ++i) {
      const auto& g = d.root_cause.evidence_gaps[i];
      if (i) out += ", ";
      out += "{\"node\": ";
      out += std::to_string(g.node.value());
      out += ", \"dependency\": \"";
      out += json_escape(g.dependency);
      out += "\", \"status\": \"";
      out += monitor::to_string(g.status);
      out += "\"}";
    }
    out += ']';
  }
  out += ", \"causes\": [";
  for (std::size_t i = 0; i < d.root_cause.causes.size(); ++i) {
    if (i) out += ", ";
    append_cause_json(out, d.root_cause.causes[i]);
  }
  out += "]}}";
  return out;
}

void append_cause_json(std::string& out, const Cause& c) {
  out += "{\"node\": ";
  out += std::to_string(c.node.value());
  out += ", \"kind\": \"";
  out += c.kind == CauseKind::SoftwareFailure ? "software" : "resource";
  out += "\", \"detail\": \"";
  out += json_escape(c.detail);
  if (c.evidence != monitor::EvidenceStatus::Confirmed) {
    out += "\", \"evidence\": \"";
    out += monitor::to_string(c.evidence);
    out += "\", \"confidence\": ";
    append_number(out, c.confidence);
    out += '}';
    return;
  }
  out += "\"}";
}

std::string to_json(std::span<const Diagnosis> diagnoses,
                    const wire::ApiCatalog& catalog,
                    const FingerprintDb& db) {
  std::string out = "[";
  for (std::size_t i = 0; i < diagnoses.size(); ++i) {
    if (i) out += ",\n ";
    out += to_json(diagnoses[i], catalog, db);
  }
  out += "]";
  return out;
}

}  // namespace gretel::core
