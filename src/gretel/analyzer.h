// The GRETEL analyzer service (Fig. 3): the public facade tying the whole
// pipeline together.
//
//   wire bytes ──CaptureTap──▶ events ──AnomalyDetector──▶ FaultReports
//                                             │
//   collectd metrics ─┐                       ▼
//   dependency watch ─┴─────────────▶ RootCauseEngine ──▶ Diagnoses
//
// The analyzer's external contract is single-threaded and deterministic:
// on_wire()/on_event() are called in capture order from one thread, faults
// are reported synchronously (on that thread) once their future context
// arrives, and finish() flushes triggers still waiting at end of stream.
// Internally, Options::config.num_shards > 1 runs anomaly detection on a
// sharded worker pipeline and num_match_workers > 0 fans fingerprint
// scoring out over a worker pool — with identical reports for any shard or
// worker count (docs/ARCHITECTURE.md, "Determinism").  Metrics must be
// populated (ResourceMonitor::sample_range) before diagnoses that depend
// on them are read.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "gretel/anomaly_detector.h"
#include "gretel/root_cause.h"
#include "monitor/resource_stream.h"
#include "net/capture.h"

namespace gretel::core {

class Analyzer {
 public:
  struct Options {
    GretelConfig config;
    bool run_root_cause = true;
    // Route dependency watching through the probed monitoring substrate
    // (deadlines, retries, breakers, flap suppression) instead of direct
    // oracle reads.  With `monitor_chaos` disabled and default knobs the
    // probed path is byte-identical to the oracle.
    bool probed_monitoring = false;
    // Fault injection for the monitoring plane itself (probe drops,
    // delays, timeouts, flipped results, agent crashes, frozen streams).
    // Only consulted when probed_monitoring is set.
    monitor::MonitorChaosConfig monitor_chaos;
    // Streaming mode: arms every bounded-state knob in config (series cap,
    // in-flight cap + P² sketches, metric retention) so per-API and
    // pending-request state stays O(1) in stream length.  Off (the
    // default) keeps batch behavior byte-identical to pre-streaming
    // builds — the caps never engage.
    bool streaming = false;
    // When set, each Diagnosis is delivered here instead of being
    // accumulated in diagnoses() — the streaming path's bounded
    // alternative to the (unbounded) retained vector.
    std::function<void(const Diagnosis&)> diagnosis_sink;
  };

  Analyzer(const FingerprintDb* db, const wire::ApiCatalog* catalog,
           const stack::Deployment* deployment, Options options);

  // Wire-level entry point: decodes the captured bytes (HTTP / AMQP) and
  // feeds the event pipeline.  Undecodable records are counted and dropped.
  void on_wire(const net::WireRecord& record);

  // Pre-decoded entry point (replay of event captures).
  void on_event(const wire::Event& event);

  // Batched wire-level entry point: decodes config.ingest_batch records at
  // a time into a reusable event buffer and feeds the detector's batched
  // path.  Byte-identical reports to calling on_wire() per record; the
  // batching only amortizes per-event synchronization on the sharded
  // pipeline.
  void on_wire_batch(std::span<const net::WireRecord> records);

  // Pre-decoded batched entry point.
  void on_events(std::span<const wire::Event> events);

  // Flushes pending snapshots at end of stream.
  void finish();

  // Incremental streaming tick (see AnomalyDetector::tick): emits ready
  // reports, force-emits overdue ones, sweeps orphans, runs the
  // steady-state stall watchdog.  `now` is the stream watermark.
  void tick(util::SimTime now) { detector_.tick(now); }

  // Telemetry-loss notification from a streaming admission layer (records
  // shed before decode): folded into the detector's window-loss
  // annotation exactly like a quarantined frame.
  void record_ingest_loss(std::uint64_t count) {
    detector_.record_loss(count);
  }

  const std::vector<Diagnosis>& diagnoses() const { return diagnoses_; }
  const AnomalyDetector::Stats& detector_stats() const {
    return detector_.stats();
  }
  const net::TapStats& tap_stats() const { return tap_.stats(); }

  // Flat degraded-telemetry counter snapshot for operator export (see
  // monitor::PipelineHealthCounters).  The detector-side totals are
  // aggregated at quiescent points, so call after finish() (or a tick())
  // for exact values.  Non-const: refreshing the per-shard last-progress
  // clocks is part of the snapshot.
  monitor::PipelineHealthCounters health();

  // Monitoring-side stores feeding the root-cause engine.
  monitor::MetricsStore& metrics() { return metrics_; }
  const monitor::MetricsStore& metrics() const { return metrics_; }

  // The dependency watcher (probe stats and the monitor-chaos audit log
  // live here when probed_monitoring is on).
  const monitor::DependencyWatcher& watcher() const { return watcher_; }

  // Streaming metric entry point (§6): records the sample for root-cause
  // window analysis *and* runs the online level-shift detector over the
  // resource stream; confirmed shifts accumulate in resource_alarms().
  void on_metric(wire::NodeId node, net::ResourceKind kind,
                 double t_seconds, double value);
  const std::vector<monitor::ResourceAlarm>& resource_alarms() const {
    return resource_stream_.alarms();
  }

  const GretelConfig& config() const { return detector_.config(); }

  // Latency series recorded for an API (sharded internally; safe to read
  // between on_wire/on_event calls or after finish()).
  const util::TimeSeries* latency_series(wire::ApiId api) const {
    return detector_.latency_series(api);
  }
  const detect::LatencyShardSet& latency_shards() const {
    return detector_.latency_shards();
  }

  // Checkpoint support (src/persist/): the learned analyzer state — the
  // anomaly detector's latency baselines/sketches/guards and the resource
  // stream's detectors and alarms.  The metrics store is deliberately not
  // snapshotted: it is repopulated by the monitor re-attach on restart
  // (ResourceMonitor::sample_range), the same way a fresh analyzer gets
  // its metrics.  Call only at quiescent points (after finish()/tick()).
  // load_state expects a freshly constructed analyzer with the same
  // options; returns false on torn input.
  void save_state(std::string& out) const;
  bool load_state(std::string_view& in);

 private:
  net::CaptureTap tap_;
  monitor::MetricsStore metrics_;
  monitor::ResourceAnomalyStream resource_stream_;
  monitor::DependencyWatcher watcher_;
  RootCauseEngine rca_;
  AnomalyDetector detector_;
  bool run_root_cause_;
  std::function<void(const Diagnosis&)> diagnosis_sink_;
  std::vector<Diagnosis> diagnoses_;
  // Stale-series total accumulated as diagnoses flow through the sink
  // (health() can no longer sum over a retained vector in sink mode).
  std::uint64_t sink_stale_series_ = 0;
  // Decoded-event buffer for on_wire_batch (capacity retained across
  // batches; bounded by config.ingest_batch).
  std::vector<wire::Event> event_scratch_;
};

}  // namespace gretel::core
