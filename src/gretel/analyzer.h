// The GRETEL analyzer service (Fig. 3): the public facade tying the whole
// pipeline together.
//
//   wire bytes ──CaptureTap──▶ events ──AnomalyDetector──▶ FaultReports
//                                             │
//   collectd metrics ─┐                       ▼
//   dependency watch ─┴─────────────▶ RootCauseEngine ──▶ Diagnoses
//
// The analyzer is single-threaded and deterministic: on_wire()/on_event()
// are called in capture order, faults are reported synchronously once their
// future context arrives, and finish() flushes triggers still waiting at
// end of stream.  Metrics must be populated (ResourceMonitor::sample_range)
// before diagnoses that depend on them are read.
#pragma once

#include <memory>
#include <vector>

#include "gretel/anomaly_detector.h"
#include "gretel/root_cause.h"
#include "monitor/resource_stream.h"
#include "net/capture.h"

namespace gretel::core {

class Analyzer {
 public:
  struct Options {
    GretelConfig config;
    bool run_root_cause = true;
  };

  Analyzer(const FingerprintDb* db, const wire::ApiCatalog* catalog,
           const stack::Deployment* deployment, Options options);

  // Wire-level entry point: decodes the captured bytes (HTTP / AMQP) and
  // feeds the event pipeline.  Undecodable records are counted and dropped.
  void on_wire(const net::WireRecord& record);

  // Pre-decoded entry point (replay of event captures).
  void on_event(const wire::Event& event);

  // Flushes pending snapshots at end of stream.
  void finish();

  const std::vector<Diagnosis>& diagnoses() const { return diagnoses_; }
  const AnomalyDetector::Stats& detector_stats() const {
    return detector_.stats();
  }
  const net::TapStats& tap_stats() const { return tap_.stats(); }

  // Monitoring-side stores feeding the root-cause engine.
  monitor::MetricsStore& metrics() { return metrics_; }
  const monitor::MetricsStore& metrics() const { return metrics_; }

  // Streaming metric entry point (§6): records the sample for root-cause
  // window analysis *and* runs the online level-shift detector over the
  // resource stream; confirmed shifts accumulate in resource_alarms().
  void on_metric(wire::NodeId node, net::ResourceKind kind,
                 double t_seconds, double value);
  const std::vector<monitor::ResourceAlarm>& resource_alarms() const {
    return resource_stream_.alarms();
  }

  const GretelConfig& config() const { return detector_.config(); }
  detect::LatencyTracker& latency_tracker() {
    return detector_.latency_tracker();
  }

 private:
  net::CaptureTap tap_;
  monitor::MetricsStore metrics_;
  monitor::ResourceAnomalyStream resource_stream_;
  monitor::DependencyWatcher watcher_;
  RootCauseEngine rca_;
  AnomalyDetector detector_;
  bool run_root_cause_;
  std::vector<Diagnosis> diagnoses_;
};

}  // namespace gretel::core
