// Operational fingerprints (§4, §5, Algorithm 1).
//
// A fingerprint is the most precise API sequence identifying one high-level
// administrative operation, derived from repeated isolated executions:
// noise-filter each trace, intersect them with LCS, and express the result
// as a regular expression over API symbols where state-change APIs
// (POST/PUT/DELETE REST and RPCs) are required literals and read-only APIs
// are optional ("X*").
#pragma once

#include <string>
#include <vector>

#include "gretel/noise_filter.h"
#include "gretel/symbols.h"
#include "wire/api.h"
#include "wire/message.h"

namespace gretel::core {

struct Fingerprint {
  wire::OpTemplateId op;
  std::string name;
  // The filtered, LCS-pruned API sequence.
  std::vector<wire::ApiId> sequence;
  // The state-change subsequence — the literals anchoring relaxed matching
  // (§5.3.1); read-only APIs are optional in the regex form.
  std::vector<wire::ApiId> state_sequence;

  std::size_t size() const { return sequence.size(); }
  std::size_t size_without_rpc(const wire::ApiCatalog& catalog) const;
  bool contains(wire::ApiId api) const;

  // The Algorithm-1 regular-expression form, e.g. "AB*CD*E" with one symbol
  // per API; when include_rpc is false, RPC symbols are pruned (§6's
  // optimization evaluated in Fig. 7c).
  std::u32string regex_string(const SymbolTable& symbols,
                              const wire::ApiCatalog& catalog,
                              bool include_rpc) const;
};

class FingerprintGenerator {
 public:
  FingerprintGenerator(const wire::ApiCatalog* catalog,
                       const NoiseFilter* filter);

  // Algorithm 1: traces are API invocation sequences of repeated isolated
  // executions of one operation.  The shortest trace seeds the LCS fold
  // (SORT_BY_TRACE_LENGTH).
  Fingerprint from_traces(wire::OpTemplateId op, std::string name,
                          std::vector<std::vector<wire::ApiId>> traces) const;

  // Convenience over captured event traces (requests extracted per trace).
  Fingerprint from_event_traces(
      wire::OpTemplateId op, std::string name,
      const std::vector<std::vector<wire::Event>>& traces) const;

  // Extension for the paper's limitation (6): operations with asynchronous
  // branches yield trace families whose plain LCS collapses to the common
  // core, losing the branch-specific APIs.  This variant greedily clusters
  // the filtered traces by LCS similarity (|LCS| / max(|a|, |b|) against
  // each cluster's representative) and emits one fingerprint per cluster —
  // all carrying the same operation id, so the database treats them as
  // alternatives.  A similarity threshold of 1.0 degenerates to one cluster
  // per distinct trace; 0.0 to plain from_traces.
  std::vector<Fingerprint> from_traces_branched(
      wire::OpTemplateId op, const std::string& name,
      std::vector<std::vector<wire::ApiId>> traces,
      double similarity_threshold = 0.85) const;

 private:
  const wire::ApiCatalog* catalog_;
  const NoiseFilter* filter_;
};

}  // namespace gretel::core
