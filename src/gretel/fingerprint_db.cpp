#include "gretel/fingerprint_db.h"

#include <algorithm>
#include <span>

namespace gretel::core {

FingerprintDb::Index FingerprintDb::add(Fingerprint fp) {
  const auto index = static_cast<Index>(fingerprints_.size());
  max_size_ = std::max(max_size_, fp.sequence.size());
  masks_.push_back(symbol_fingerprint(fp.sequence));

  // Deduplicated inverted index (a fingerprint may repeat an API).
  std::vector<wire::ApiId> seen;
  for (auto api : fp.sequence) {
    if (std::find(seen.begin(), seen.end(), api) != seen.end()) continue;
    seen.push_back(api);
    by_api_[api].push_back(index);
  }
  fingerprints_.push_back(std::move(fp));
  return index;
}

const std::vector<FingerprintDb::Index>& FingerprintDb::containing(
    wire::ApiId api) const {
  const auto it = by_api_.find(api);
  return it == by_api_.end() ? empty_ : it->second;
}

VariantCache::VariantCache(const FingerprintDb& db, const Matcher& matcher)
    : options_(matcher.options()) {
  per_fp_.resize(db.size());
  for (FingerprintDb::Index idx = 0; idx < db.size(); ++idx) {
    const auto& fp = db.get(idx);
    auto full_literals = matcher.required_literals(fp.sequence);

    std::vector<wire::ApiId> seen;
    for (auto api : fp.sequence) {
      if (std::find(seen.begin(), seen.end(), api) != seen.end()) continue;
      seen.push_back(api);

      Variants v;
      // Truncated prefixes at each occurrence of `api`, last occurrence
      // first; lengths are non-increasing, so dropping consecutive
      // duplicates keeps exactly the distinct lengths.
      std::size_t prev_len = static_cast<std::size_t>(-1);
      for (std::size_t pos = fp.sequence.size(); pos-- > 0;) {
        if (fp.sequence[pos] != api) continue;
        auto literals = matcher.required_literals(
            std::span<const wire::ApiId>(fp.sequence.data(), pos + 1));
        if (literals.size() != prev_len) {
          prev_len = literals.size();
          v.truncated.push_back(std::move(literals));
        }
      }
      std::erase_if(v.truncated, [](const std::vector<wire::ApiId>& lits) {
        return lits.empty();
      });
      // If nothing anchors (e.g. the offending API is the leading read-only
      // call), fall back to the offending API itself.
      if (v.truncated.empty()) v.truncated.push_back({api});

      if (full_literals.empty()) {
        v.full.push_back({api});
      } else {
        v.full.push_back(full_literals);
      }
      for (const auto& lits : v.truncated) {
        v.truncated_masks.push_back(symbol_fingerprint(lits));
      }
      for (const auto& lits : v.full) {
        v.full_masks.push_back(symbol_fingerprint(lits));
      }
      per_fp_[idx].emplace(api, std::move(v));
    }
  }
}

std::span<const std::vector<wire::ApiId>> VariantCache::truncated(
    FingerprintDb::Index idx, wire::ApiId api) const {
  return per_fp_[idx].at(api).truncated;
}

std::span<const std::vector<wire::ApiId>> VariantCache::full(
    FingerprintDb::Index idx, wire::ApiId api) const {
  return per_fp_[idx].at(api).full;
}

std::span<const std::uint64_t> VariantCache::truncated_masks(
    FingerprintDb::Index idx, wire::ApiId api) const {
  return per_fp_[idx].at(api).truncated_masks;
}

std::span<const std::uint64_t> VariantCache::full_masks(
    FingerprintDb::Index idx, wire::ApiId api) const {
  return per_fp_[idx].at(api).full_masks;
}

}  // namespace gretel::core
