#include "gretel/fingerprint_db.h"

#include <algorithm>

namespace gretel::core {

FingerprintDb::Index FingerprintDb::add(Fingerprint fp) {
  const auto index = static_cast<Index>(fingerprints_.size());
  max_size_ = std::max(max_size_, fp.sequence.size());

  // Deduplicated inverted index (a fingerprint may repeat an API).
  std::vector<wire::ApiId> seen;
  for (auto api : fp.sequence) {
    if (std::find(seen.begin(), seen.end(), api) != seen.end()) continue;
    seen.push_back(api);
    by_api_[api].push_back(index);
  }
  fingerprints_.push_back(std::move(fp));
  return index;
}

const std::vector<FingerprintDb::Index>& FingerprintDb::containing(
    wire::ApiId api) const {
  const auto it = by_api_.find(api);
  return it == by_api_.end() ? empty_ : it->second;
}

}  // namespace gretel::core
