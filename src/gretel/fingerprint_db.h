// The fingerprint database the analyzer matches against.
//
// Holds one fingerprint per characterized operation (1200 at full Tempest
// scale), with an inverted index from ApiId to the fingerprints containing
// it — GET_POSSIBLE_OFFENDING_OPERATIONS of Algorithm 2 is a single lookup.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "gretel/fingerprint.h"
#include "gretel/matcher.h"

namespace gretel::core {

class FingerprintDb {
 public:
  using Index = std::uint32_t;

  Index add(Fingerprint fp);

  std::size_t size() const { return fingerprints_.size(); }
  const Fingerprint& get(Index i) const { return fingerprints_[i]; }
  const std::vector<Fingerprint>& all() const { return fingerprints_; }

  // Fingerprints whose sequence contains `api`.
  const std::vector<Index>& containing(wire::ApiId api) const;

  // 64-bit symbol-presence fingerprint of sequence `i` (see
  // core::symbol_fingerprint): Alg. 2 rejects candidates that share no
  // symbol with the snapshot with one AND against this mask before any
  // O(n) scan.
  std::uint64_t sequence_mask(Index i) const { return masks_[i]; }

  // FPmax: the largest fingerprint size across all operations (the α input,
  // §5.3.1 / §7 "Empirical determination of thresholds").
  std::size_t max_fingerprint_size() const { return max_size_; }

 private:
  std::vector<Fingerprint> fingerprints_;
  std::vector<std::uint64_t> masks_;  // parallel to fingerprints_
  std::unordered_map<wire::ApiId, std::vector<Index>> by_api_;
  std::vector<Index> empty_;
  std::size_t max_size_ = 0;
};

// Precomputed candidate literal variants, built once from a loaded database.
//
// Algorithm 2 probes, for every candidate fingerprint, the required-literal
// lists of its prefixes truncated at each occurrence of the offending API.
// Those lists depend only on (fingerprint, offending api, matcher options) —
// never on the snapshot — yet the detector used to rebuild them on every
// snapshot.  VariantCache materializes them at load time; detect() then
// borrows spans and allocates nothing.
//
// Variant order and contents replicate the detector's original on-the-fly
// construction exactly (occurrences scanned last-to-first, consecutive
// duplicate lengths dropped, empty variants erased, `{api}` fallback when
// nothing anchors), so cached detection results are bit-identical.
class VariantCache {
 public:
  // Builds the full cache: one entry per (fingerprint, distinct api in its
  // sequence).  `matcher` supplies required_literals and pins the options
  // the cache is valid for.
  VariantCache(const FingerprintDb& db, const Matcher& matcher);

  // Truncated-prefix variants for operational faults, deepest first.
  // Never empty for an api contained in fingerprint `idx`.
  std::span<const std::vector<wire::ApiId>> truncated(
      FingerprintDb::Index idx, wire::ApiId api) const;

  // The single full-fingerprint variant for performance faults (the `{api}`
  // fallback applied when the fingerprint has no required literals at all).
  std::span<const std::vector<wire::ApiId>> full(FingerprintDb::Index idx,
                                                 wire::ApiId api) const;

  // Symbol-presence masks parallel to truncated()/full(): masks()[vi] is
  // the 64-bit presence fingerprint of variant vi's literal list, so the
  // detector can skip a variant whose literals cannot occur in the snapshot
  // with one AND.
  std::span<const std::uint64_t> truncated_masks(FingerprintDb::Index idx,
                                                 wire::ApiId api) const;
  std::span<const std::uint64_t> full_masks(FingerprintDb::Index idx,
                                            wire::ApiId api) const;

  const Matcher::Options& options() const { return options_; }

 private:
  struct Variants {
    std::vector<std::vector<wire::ApiId>> truncated;
    std::vector<std::vector<wire::ApiId>> full;  // exactly one entry
    std::vector<std::uint64_t> truncated_masks;  // parallel to truncated
    std::vector<std::uint64_t> full_masks;       // parallel to full
  };

  // per_fp_[idx][api] — flat vector outer layer keeps lookups cheap.
  std::vector<std::unordered_map<wire::ApiId, Variants>> per_fp_;
  Matcher::Options options_;
};

}  // namespace gretel::core
