// The fingerprint database the analyzer matches against.
//
// Holds one fingerprint per characterized operation (1200 at full Tempest
// scale), with an inverted index from ApiId to the fingerprints containing
// it — GET_POSSIBLE_OFFENDING_OPERATIONS of Algorithm 2 is a single lookup.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gretel/fingerprint.h"

namespace gretel::core {

class FingerprintDb {
 public:
  using Index = std::uint32_t;

  Index add(Fingerprint fp);

  std::size_t size() const { return fingerprints_.size(); }
  const Fingerprint& get(Index i) const { return fingerprints_[i]; }
  const std::vector<Fingerprint>& all() const { return fingerprints_; }

  // Fingerprints whose sequence contains `api`.
  const std::vector<Index>& containing(wire::ApiId api) const;

  // FPmax: the largest fingerprint size across all operations (the α input,
  // §5.3.1 / §7 "Empirical determination of thresholds").
  std::size_t max_fingerprint_size() const { return max_size_; }

 private:
  std::vector<Fingerprint> fingerprints_;
  std::unordered_map<wire::ApiId, std::vector<Index>> by_api_;
  std::vector<Index> empty_;
  std::size_t max_size_ = 0;
};

}  // namespace gretel::core
