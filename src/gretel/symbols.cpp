#include "gretel/symbols.h"

namespace gretel::core {

SymbolTable::SymbolTable(const wire::ApiCatalog& catalog)
    : size_(catalog.size()) {}

wire::ApiId SymbolTable::api(char32_t symbol) const {
  if (symbol < kFirstSymbol || symbol >= kFirstSymbol + size_)
    return wire::ApiId::invalid();
  return wire::ApiId(static_cast<std::uint16_t>(symbol - kFirstSymbol));
}

std::u32string SymbolTable::encode(
    const std::vector<wire::ApiId>& apis) const {
  std::u32string out;
  out.reserve(apis.size());
  for (auto id : apis) out += symbol(id);
  return out;
}

}  // namespace gretel::core
