// The dual-buffer event receiver (§5.2, §6 "Optimizations").
//
// "GRETEL leverages a dual buffer to receive and process the incoming REST
// and RPC messages.  It speeds up the snapshotting process using a
// combination of two pointers in the dual buffer separated by α messages ...
// Whenever an error is encountered in the message stream, GRETEL freezes
// the messages between these two pointers to create a snapshot."
//
// DualBuffer keeps the most recent 2α events so that, after sliding the
// window ahead by α/2 on a fault (§5.3.1), both the past α/2 and the future
// α/2 of the faulty message are available when the snapshot freezes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/ring_buffer.h"
#include "wire/message.h"

namespace gretel::core {

// Struct-of-arrays view of a frozen snapshot: the per-event fields the
// analysis loops actually scan, laid out as contiguous columns so the error
// scan, the request filter and the Alg. 2 symbol walks read dense uint16 /
// uint8 / double arrays instead of striding through fat wire::Event records
// (whose strings and identifier vectors the scans never touch).  The
// columns are the natural operands of the util/simd.h kernels.
//
// Built in one pass at freeze time; indices are shared with the event
// vector the freeze returned (columns[i] describes events[i]).
struct WindowColumns {
  std::vector<std::uint16_t> api;   // ApiId raw symbol values
  std::vector<std::uint8_t> err;    // 1 = error response
  std::vector<std::uint8_t> req;    // 1 = request
  std::vector<std::uint32_t> corr;  // correlation ids (0 = absent)
  std::vector<double> ts_s;         // timestamps in seconds

  void build(std::span<const wire::Event> events) {
    const auto n = events.size();
    api.resize(n);
    err.resize(n);
    req.resize(n);
    corr.resize(n);
    ts_s.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& e = events[i];
      api[i] = e.api.value();
      err[i] = e.is_error() ? 1 : 0;
      req[i] = e.is_request() ? 1 : 0;
      corr[i] = e.correlation_id;
      ts_s[i] = e.ts.to_seconds();
    }
  }

  std::size_t size() const { return api.size(); }
};

// What a freeze saw beyond the events themselves: where the center landed,
// and how degraded the telemetry under the window was.
struct FreezeInfo {
  std::size_t center_index = 0;
  // Telemetry losses (quarantined frames, overflow drops) that occurred
  // inside the snapshot's span.  Non-zero means the snapshot has gaps the
  // matcher cannot see, so downstream confidence should be degraded.
  std::uint64_t losses = 0;
  // True when ring eviction truncated the requested past half-window.
  bool clamped_front = false;
};

class DualBuffer {
 public:
  explicit DualBuffer(std::size_t alpha)
      : alpha_(alpha), ring_(2 * alpha), loss_ring_(2 * alpha) {}

  // Appends an event; returns its global sequence number.
  // `cumulative_loss` is the caller's running count of telemetry losses
  // (decode quarantines + overflow drops) observed *before* this event; it
  // rides in a parallel ring so a freeze can report how many losses fell
  // inside its window.  The overload without it reuses the last value.
  std::uint64_t push(const wire::Event& event) {
    return push(event, last_loss_);
  }
  std::uint64_t push(const wire::Event& event, std::uint64_t cumulative_loss) {
    last_loss_ = cumulative_loss;
    loss_ring_.push(cumulative_loss);
    return ring_.push(event);
  }
  // push() that also stamps the assigned sequence number onto the stored
  // copy — saving the ingestion hot path a full wire::Event copy whose only
  // purpose was to set `seq` before pushing.
  std::uint64_t push_stamped(const wire::Event& event,
                             std::uint64_t cumulative_loss) {
    const auto seq = push(event, cumulative_loss);
    ring_.back().seq = seq;
    return seq;
  }

  std::size_t alpha() const { return alpha_; }
  std::uint64_t end_seq() const { return ring_.end_seq(); }

  // True once the future half of the window around `center` has arrived.
  bool future_ready(std::uint64_t center) const {
    return ring_.end_seq() > center + alpha_ / 2;
  }
  // True while the past half of the window is still buffered.
  bool past_available(std::uint64_t center) const {
    const auto lo = center > alpha_ / 2 ? center - alpha_ / 2 : 0;
    return ring_.first_seq() <= lo;
  }

  // Freezes the α messages centred on `center`: [center-α/2, center+α/2).
  // Also reports where `center` landed inside the snapshot.
  //
  // If ingestion has run so far ahead that the ring already evicted
  // `center` itself, there is no meaningful window left: return an empty
  // snapshot (counted in stale_freezes()) instead of letting
  // `center - first` wrap to a huge index.
  std::vector<wire::Event> freeze(std::uint64_t center,
                                  std::size_t* center_index) const {
    FreezeInfo info;
    auto snap = freeze(center, &info);
    if (center_index) *center_index = info.center_index;
    return snap;
  }
  // Disambiguates freeze(center, nullptr) between the two pointer overloads.
  std::vector<wire::Event> freeze(std::uint64_t center, std::nullptr_t) const {
    return freeze(center, static_cast<FreezeInfo*>(nullptr));
  }

  // Same freeze, but also reports the window's telemetry-loss count and
  // whether eviction clamped the past half (see FreezeInfo).
  std::vector<wire::Event> freeze(std::uint64_t center,
                                  FreezeInfo* info) const {
    if (info) *info = FreezeInfo{};
    if (ring_.first_seq() > center) {
      ++stale_freezes_;
      return {};
    }
    const auto lo = center > alpha_ / 2 ? center - alpha_ / 2 : 0;
    const auto hi = center + alpha_ / 2;
    auto snap = ring_.snapshot(lo, hi);
    if (info) {
      // The snapshot may have been clamped at the front.
      const auto first = std::max(lo, ring_.first_seq());
      info->center_index = static_cast<std::size_t>(center - first);
      info->clamped_front = first > lo;
      if (!snap.empty()) {
        // The loss ring is pushed in lockstep with the event ring, so the
        // same sequence numbers are resident in both.  In-window losses are
        // the cumulative count at the last event minus at the first.
        const auto last = std::min(hi, ring_.end_seq()) - 1;
        info->losses = loss_ring_.at(last) - loss_ring_.at(first);
      }
    }
    return snap;
  }

  // Same freeze, additionally building the columnar (SoA) view of the
  // snapshot in `cols` (capacity retained across freezes by the caller's
  // scratch instance).
  std::vector<wire::Event> freeze(std::uint64_t center, FreezeInfo* info,
                                  WindowColumns* cols) const {
    auto snap = freeze(center, info);
    if (cols) cols->build(snap);
    return snap;
  }

  // Freezes requested after their center was evicted (each yielded an
  // empty snapshot and no report).
  std::uint64_t stale_freezes() const { return stale_freezes_; }

 private:
  std::size_t alpha_;
  util::RingBuffer<wire::Event> ring_;
  // Cumulative telemetry-loss count at each event, same capacity and seq
  // numbering as ring_.
  util::RingBuffer<std::uint64_t> loss_ring_;
  std::uint64_t last_loss_ = 0;
  mutable std::uint64_t stale_freezes_ = 0;
};

}  // namespace gretel::core
