// The dual-buffer event receiver (§5.2, §6 "Optimizations").
//
// "GRETEL leverages a dual buffer to receive and process the incoming REST
// and RPC messages.  It speeds up the snapshotting process using a
// combination of two pointers in the dual buffer separated by α messages ...
// Whenever an error is encountered in the message stream, GRETEL freezes
// the messages between these two pointers to create a snapshot."
//
// DualBuffer keeps the most recent 2α events so that, after sliding the
// window ahead by α/2 on a fault (§5.3.1), both the past α/2 and the future
// α/2 of the faulty message are available when the snapshot freezes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ring_buffer.h"
#include "wire/message.h"

namespace gretel::core {

class DualBuffer {
 public:
  explicit DualBuffer(std::size_t alpha)
      : alpha_(alpha), ring_(2 * alpha) {}

  // Appends an event; returns its global sequence number.
  std::uint64_t push(const wire::Event& event) { return ring_.push(event); }

  std::size_t alpha() const { return alpha_; }
  std::uint64_t end_seq() const { return ring_.end_seq(); }

  // True once the future half of the window around `center` has arrived.
  bool future_ready(std::uint64_t center) const {
    return ring_.end_seq() > center + alpha_ / 2;
  }
  // True while the past half of the window is still buffered.
  bool past_available(std::uint64_t center) const {
    const auto lo = center > alpha_ / 2 ? center - alpha_ / 2 : 0;
    return ring_.first_seq() <= lo;
  }

  // Freezes the α messages centred on `center`: [center-α/2, center+α/2).
  // Also reports where `center` landed inside the snapshot.
  //
  // If ingestion has run so far ahead that the ring already evicted
  // `center` itself, there is no meaningful window left: return an empty
  // snapshot (counted in stale_freezes()) instead of letting
  // `center - first` wrap to a huge index.
  std::vector<wire::Event> freeze(std::uint64_t center,
                                  std::size_t* center_index) const {
    if (center_index) *center_index = 0;
    if (ring_.first_seq() > center) {
      ++stale_freezes_;
      return {};
    }
    const auto lo = center > alpha_ / 2 ? center - alpha_ / 2 : 0;
    const auto hi = center + alpha_ / 2;
    auto snap = ring_.snapshot(lo, hi);
    if (center_index) {
      // The snapshot may have been clamped at the front.
      const auto first = std::max(lo, ring_.first_seq());
      *center_index = static_cast<std::size_t>(center - first);
    }
    return snap;
  }

  // Freezes requested after their center was evicted (each yielded an
  // empty snapshot and no report).
  std::uint64_t stale_freezes() const { return stale_freezes_; }

 private:
  std::size_t alpha_;
  util::RingBuffer<wire::Event> ring_;
  mutable std::uint64_t stale_freezes_ = 0;
};

}  // namespace gretel::core
