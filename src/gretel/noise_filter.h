// FILTER_NOISE of Algorithm 1.
//
// "Routine OpenStack operations typically involve several messages, both
// REST and RPC, that do not contribute in any meaningful way to segregate
// user-level operations at run time.  These messages include heartbeat and
// status update RPCs, common REST invocations involving Keystone, and
// repeat occurrences of idempotent REST actions for a specific URI."
//
// The filter works purely from the API catalog — Keystone-service REST
// endpoints, a configurable set of heartbeat RPC method names, and
// consecutive duplicates of non-state-change APIs — never from ground-truth
// labels.
#pragma once

#include <string>
#include <vector>

#include "wire/api.h"
#include "wire/message.h"

namespace gretel::core {

class NoiseFilter {
 public:
  explicit NoiseFilter(const wire::ApiCatalog* catalog);

  // Additional RPC method names treated as periodic chatter.  Defaults to
  // the oslo heartbeat family (report_state, update_service_capabilities).
  void add_heartbeat_rpc(std::string method_name);

  bool is_noise_api(wire::ApiId api) const;

  // Filters an API invocation trace: drops noise APIs and collapses
  // consecutive repeats of the same idempotent (non-state-change) API.
  std::vector<wire::ApiId> filter(const std::vector<wire::ApiId>& trace) const;

  // Convenience: extracts the request-side API trace from captured events
  // and filters it.
  std::vector<wire::ApiId> filter_events(
      const std::vector<wire::Event>& events) const;

 private:
  const wire::ApiCatalog* catalog_;
  std::vector<std::string> heartbeat_rpcs_;
};

}  // namespace gretel::core
