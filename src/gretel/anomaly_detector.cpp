#include "gretel/anomaly_detector.h"

#include <algorithm>

namespace gretel::core {

AnomalyDetector::AnomalyDetector(const FingerprintDb* db,
                                 const wire::ApiCatalog* catalog,
                                 GretelConfig config, FaultCallback callback)
    : catalog_(catalog),
      config_(config),
      callback_(std::move(callback)),
      detector_(db, catalog, config),
      buffer_(config.alpha()) {}

void AnomalyDetector::on_event(wire::Event event) {
  const auto seq = buffer_.end_seq();
  event.seq = seq;
  ++stats_.events;

  if (event.is_error()) {
    if (event.kind == wire::ApiKind::Rest) {
      ++stats_.rest_errors;
      maybe_trigger_operational(event);
    } else {
      ++stats_.rpc_errors;  // surfaces via the REST relay; no snapshot
    }
  }

  // Performance faults: per-API latency level shifts.
  if (const auto alarm = latency_.observe(event)) {
    PendingSnapshot p;
    p.center = seq;
    p.api = alarm->api;
    p.kind = FaultKind::Performance;
    p.triggered_at = event.ts;
    p.alarm = alarm;
    pending_.push_back(std::move(p));
  }

  buffer_.push(event);
  run_ready(/*force=*/false);
}

void AnomalyDetector::maybe_trigger_operational(const wire::Event& event) {
  const auto seq = event.seq;
  if (const auto it = last_trigger_.find(event.api);
      it != last_trigger_.end() &&
      seq - it->second < config_.suppress_events) {
    ++stats_.suppressed_triggers;
    return;
  }
  last_trigger_[event.api] = seq;

  PendingSnapshot p;
  p.center = seq;
  p.api = event.api;
  p.kind = FaultKind::Operational;
  p.triggered_at = event.ts;
  pending_.push_back(std::move(p));
}

void AnomalyDetector::run_ready(bool force) {
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (force || buffer_.future_ready(it->center)) {
      run_snapshot(*it);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void AnomalyDetector::run_snapshot(const PendingSnapshot& pending) {
  std::size_t center_index = 0;
  const auto window = buffer_.freeze(pending.center, &center_index);
  if (window.empty()) return;
  center_index = std::min(center_index, window.size() - 1);

  // Re-anchor operational faults on the true failing API: "all REST and RPC
  // errors present in the snapshot are together analyzed" (§5.3.1).  An RPC
  // failure is relayed to the dashboard by a generic status GET; the error
  // message immediately preceding the trigger is the real fault.
  wire::ApiId anchor = pending.api;
  std::size_t anchor_index = center_index;
  if (pending.kind == FaultKind::Operational) {
    for (std::size_t i = center_index; i-- > 0;) {
      if (center_index - i > config_.suppress_events) break;
      if (window[i].is_error()) {
        anchor = window[i].api;
        anchor_index = i;
        break;
      }
    }
    // The relay and the original error resolve to the same anchor; report
    // each fault once.
    if (const auto it = last_report_.find(anchor);
        it != last_report_.end() &&
        pending.center - it->second < config_.suppress_events) {
      ++stats_.suppressed_triggers;
      return;
    }
    last_report_[anchor] = pending.center;
  }

  const auto detection =
      detector_.detect(window, anchor_index, anchor,
                       pending.kind == FaultKind::Operational);

  FaultReport report;
  report.kind = pending.kind;
  report.offending_api = anchor;
  report.detected_at = window.back().ts;
  report.matched_fingerprints = detection.matched;
  report.theta = detection.theta;
  report.beta_final = detection.beta_final;
  report.candidates = detection.candidates;
  report.window_start = window.front().ts;
  report.window_end = window.back().ts;
  report.latency = pending.alarm;
  for (const auto& ev : window) {
    if (ev.is_error()) report.error_events.push_back(ev);
  }

  if (pending.kind == FaultKind::Operational) {
    ++stats_.operational_reports;
  } else {
    ++stats_.performance_reports;
  }
  if (callback_) callback_(report);
}

void AnomalyDetector::flush() { run_ready(/*force=*/true); }

}  // namespace gretel::core
