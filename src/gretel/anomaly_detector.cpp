#include "gretel/anomaly_detector.h"

#include <algorithm>

#include "util/binio.h"
#include "util/simd.h"

namespace gretel::core {

AnomalyDetector::AnomalyDetector(const FingerprintDb* db,
                                 const wire::ApiCatalog* catalog,
                                 GretelConfig config, FaultCallback callback)
    : catalog_(catalog),
      config_(config),
      callback_(std::move(callback)),
      detector_(db, catalog, config),
      buffer_(config.alpha()),
      latency_(config.num_shards),
      match_pool_(config.num_match_workers),
      drain_interval_(config.drain_interval()) {
  latency_.set_orphan_timeout_seconds(config_.orphan_timeout_seconds);
  if (config_.num_shards > 1) {
    // Ring sized so a whole drain interval fits even if every event hashes
    // to one shard; submit() backpressure covers pathological imbalance.
    ResilienceOptions resilience;
    resilience.overflow_policy = config_.overflow_policy;
    resilience.spill_capacity = config_.overflow_spill;
    resilience.watchdog_ms = config_.watchdog_ms;
    resilience.wake_events = config_.shard_wake_events;
    pipeline_ = std::make_unique<ShardPipeline>(
        &latency_, std::max<std::size_t>(64, 2 * drain_interval_),
        resilience);
  }
}

void AnomalyDetector::on_event(wire::Event event) {
  if (pipeline_) {
    // Concurrent path: append to the shared window, hand the event's header
    // to its shard, and periodically join to fold in discovered triggers.
    ++stats_.events;
    const auto seq = buffer_.push_stamped(event, loss_count_);
    pipeline_->submit(wire::EventHeader(event, seq));
    fold_overflow_losses();
    if (++since_drain_ >= drain_interval_) sync_shards(/*force=*/false);
    return;
  }

  ingest_serial(event);
}

void AnomalyDetector::on_events(std::span<const wire::Event> events) {
  if (!pipeline_) {
    for (const auto& event : events) ingest_serial(event);
    return;
  }

  // Concurrent path: split the batch so no chunk crosses a drain boundary.
  // The serial-equivalence argument for the per-event path hinges on
  // sync_shards() running at fixed event counts; chunking at exactly those
  // counts keeps the join points — and the seq-ordered trigger merge —
  // identical to per-event ingestion for any batch size.
  std::size_t i = 0;
  while (i < events.size()) {
    const std::size_t room = drain_interval_ - since_drain_;
    const std::size_t take = std::min(room, events.size() - i);
    batch_scratch_.clear();
    for (std::size_t k = 0; k < take; ++k) {
      const auto& source = events[i + k];
      ++stats_.events;
      const auto seq = buffer_.push_stamped(source, loss_count_);
      batch_scratch_.emplace_back(source, seq);
    }
    pipeline_->submit_batch(batch_scratch_);
    fold_overflow_losses();
    since_drain_ += take;
    if (since_drain_ >= drain_interval_) sync_shards(/*force=*/false);
    i += take;
  }
}

void AnomalyDetector::ingest_serial(const wire::Event& source) {
  // Push first, stamping the assigned seq in-ring — the detection scan only
  // reads header fields, so the hot path never copies the full event.
  ++stats_.events;
  const auto seq = buffer_.push_stamped(source, loss_count_);
  const wire::EventHeader event(source, seq);

  if (event.is_error()) {
    if (event.kind == wire::ApiKind::Rest) {
      ++stats_.rest_errors;
      maybe_trigger_operational(seq, event.api, event.ts);
    } else {
      ++stats_.rpc_errors;  // surfaces via the REST relay; no snapshot
    }
  }

  // Performance faults: per-API latency level shifts.
  if (const auto alarm = latency_.observe(event)) {
    PendingSnapshot p;
    p.center = seq;
    p.api = alarm->api;
    p.kind = FaultKind::Performance;
    p.triggered_at = event.ts;
    p.alarm = alarm;
    pending_.push_back(std::move(p));
  }

  run_ready(/*force=*/false);
}

void AnomalyDetector::fold_overflow_losses() {
  if (!pipeline_) return;
  const auto dropped = pipeline_->overflow_dropped();
  if (dropped != overflow_folded_) {
    loss_count_ += dropped - overflow_folded_;
    overflow_folded_ = dropped;
  }
}

void AnomalyDetector::maybe_trigger_operational(std::uint64_t seq,
                                                wire::ApiId api,
                                                util::SimTime ts) {
  if (const auto it = last_trigger_.find(api);
      it != last_trigger_.end() &&
      seq - it->second < config_.suppress_events) {
    ++stats_.suppressed_triggers;
    return;
  }
  last_trigger_[api] = seq;

  PendingSnapshot p;
  p.center = seq;
  p.api = api;
  p.kind = FaultKind::Operational;
  p.triggered_at = ts;
  pending_.push_back(std::move(p));
}

void AnomalyDetector::sync_shards(bool force) {
  since_drain_ = 0;
  std::vector<ShardTrigger> triggers;
  pipeline_->drain(&triggers);
  // Triggers arrive sorted by sequence, reproducing the serial detector's
  // discovery order; suppression therefore resolves identically.
  for (auto& t : triggers) {
    if (t.kind == FaultKind::Operational) {
      ++stats_.rest_errors;
      maybe_trigger_operational(t.seq, t.api, t.ts);
    } else {
      PendingSnapshot p;
      p.center = t.seq;
      p.api = t.api;
      p.kind = FaultKind::Performance;
      p.triggered_at = t.ts;
      p.alarm = std::move(t.alarm);
      pending_.push_back(std::move(p));
    }
  }
  stats_.rpc_errors = pipeline_->rpc_errors();
  // Drain may have shed spill under a tripped watchdog; fold those drops
  // before anything freezes a window over the gap.
  fold_overflow_losses();
  stats_.overflow_drops = pipeline_->overflow_dropped();
  stats_.watchdog_trips = pipeline_->watchdog_trips();
  run_ready(force);
}

void AnomalyDetector::run_ready(bool force) {
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (force || buffer_.future_ready(it->center)) {
      run_snapshot(*it);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void AnomalyDetector::run_snapshot(const PendingSnapshot& pending) {
  FreezeInfo freeze_info;
  const auto window =
      buffer_.freeze(pending.center, &freeze_info, &window_cols_);
  stats_.stale_freezes = buffer_.stale_freezes();
  if (window.empty()) return;
  const auto center_index =
      std::min(freeze_info.center_index, window.size() - 1);

  // Re-anchor operational faults on the true failing API: "all REST and RPC
  // errors present in the snapshot are together analyzed" (§5.3.1).  An RPC
  // failure is relayed to the dashboard by a generic status GET; the error
  // message immediately preceding the trigger is the real fault.  The scan
  // is one find_last_set over the error-flag column, limited to the
  // suppress_events window before the trigger.
  wire::ApiId anchor = pending.api;
  std::size_t anchor_index = center_index;
  if (pending.kind == FaultKind::Operational) {
    const std::size_t scan_lo = center_index > config_.suppress_events
                                    ? center_index - config_.suppress_events
                                    : 0;
    const auto hit = simd::find_last_set_u8(
        window_cols_.err.data() + scan_lo, center_index - scan_lo);
    if (hit != simd::npos) {
      anchor_index = scan_lo + hit;
      anchor = wire::ApiId(window_cols_.api[anchor_index]);
    }
    // The relay and the original error resolve to the same anchor; report
    // each fault once.
    if (const auto it = last_report_.find(anchor);
        it != last_report_.end() &&
        pending.center - it->second < config_.suppress_events) {
      ++stats_.suppressed_triggers;
      return;
    }
    last_report_[anchor] = pending.center;
  }

  const auto detection =
      detector_.detect(window, window_cols_, anchor_index, anchor,
                       pending.kind == FaultKind::Operational, &match_pool_);

  FaultReport report;
  report.kind = pending.kind;
  report.offending_api = anchor;
  report.detected_at = window.back().ts;
  report.matched_fingerprints = detection.matched;
  report.theta = detection.theta;
  report.beta_final = detection.beta_final;
  report.candidates = detection.candidates;
  report.window_start = window.front().ts;
  report.window_end = window.back().ts;
  report.latency = pending.alarm;
  report.window_losses = freeze_info.losses;
  report.degraded_confidence = freeze_info.losses > 0;
  // Error events: skip from set flag to set flag over the dense error
  // column instead of testing every fat event record.
  const std::uint8_t* err_flags = window_cols_.err.data();
  for (std::size_t i = 0; i < window.size(); ++i) {
    const auto hit = simd::find_first_set_u8(err_flags + i, window.size() - i);
    if (hit == simd::npos) break;
    i += hit;
    report.error_events.push_back(window[i]);
  }

  if (pending.kind == FaultKind::Operational) {
    ++stats_.operational_reports;
  } else {
    ++stats_.performance_reports;
  }
  if (report.degraded_confidence) ++stats_.degraded_reports;
  if (callback_) callback_(report);
}

void AnomalyDetector::refresh_guard_stats() {
  // Quiescent point: snapshot the degraded-telemetry accounting.  The
  // latency guard totals are only aggregated here because reading shard
  // trackers requires the workers to be parked.
  stats_.losses_recorded = loss_count_;
  stats_.stale_freezes = buffer_.stale_freezes();
  const auto guards = latency_.guards_total();
  stats_.orphans_reaped = guards.orphans_reaped;
  stats_.latency_clamped = guards.clamped_negative;
  stats_.latency_rejected = guards.rejected_nonfinite;
  stats_.inflight_evicted = guards.inflight_evicted;
  stats_.series_trimmed = guards.series_trimmed;
}

void AnomalyDetector::flush() {
  if (pipeline_) {
    sync_shards(/*force=*/true);
  } else {
    run_ready(/*force=*/true);
  }
  refresh_guard_stats();
}

void AnomalyDetector::tick(util::SimTime now) {
  if (pipeline_) {
    // Steady-state watchdog first: a wedged shard is flagged while it still
    // holds backlog, before the drain below either abandons it (watchdog
    // armed) or blocks on it.
    pipeline_->check_stalls();
    sync_shards(/*force=*/false);
  } else {
    run_ready(/*force=*/false);
  }

  // Deadline forcing: a pending trigger whose future half-window never
  // filled (the stream went quiet) is emitted with the context that did
  // arrive rather than waiting for traffic that may never come.
  if (config_.stream_max_report_delay_s > 0.0) {
    auto it = pending_.begin();
    while (it != pending_.end()) {
      if ((now - it->triggered_at).to_seconds() >
          config_.stream_max_report_delay_s) {
        ++stats_.forced_reports;
        run_snapshot(*it);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Time-based orphan sweep (the observe-cadence sweep only fires while
  // events flow).  Safe here: the drain above parked every shard worker.
  latency_.sweep_now(now);
  refresh_guard_stats();
  if (pipeline_) stats_.watchdog_trips = pipeline_->watchdog_trips();
}

void AnomalyDetector::save_state(std::string& out) const {
  latency_.save_state(out);
  util::put_u64(out, loss_count_);
  util::put_u64(out, stats_.events);
  util::put_u64(out, stats_.rest_errors);
  util::put_u64(out, stats_.rpc_errors);
  util::put_u64(out, stats_.operational_reports);
  util::put_u64(out, stats_.performance_reports);
  util::put_u64(out, stats_.suppressed_triggers);
  util::put_u64(out, stats_.losses_recorded);
  util::put_u64(out, stats_.overflow_drops);
  util::put_u64(out, stats_.watchdog_trips);
  util::put_u64(out, stats_.orphans_reaped);
  util::put_u64(out, stats_.latency_clamped);
  util::put_u64(out, stats_.latency_rejected);
  util::put_u64(out, stats_.stale_freezes);
  util::put_u64(out, stats_.degraded_reports);
  util::put_u64(out, stats_.inflight_evicted);
  util::put_u64(out, stats_.series_trimmed);
  util::put_u64(out, stats_.forced_reports);
}

bool AnomalyDetector::load_state(std::string_view& in) {
  if (!latency_.load_state(in)) return false;
  std::uint64_t loss = 0;
  Stats s;
  if (!util::get_u64(in, loss) || !util::get_u64(in, s.events) ||
      !util::get_u64(in, s.rest_errors) || !util::get_u64(in, s.rpc_errors) ||
      !util::get_u64(in, s.operational_reports) ||
      !util::get_u64(in, s.performance_reports) ||
      !util::get_u64(in, s.suppressed_triggers) ||
      !util::get_u64(in, s.losses_recorded) ||
      !util::get_u64(in, s.overflow_drops) ||
      !util::get_u64(in, s.watchdog_trips) ||
      !util::get_u64(in, s.orphans_reaped) ||
      !util::get_u64(in, s.latency_clamped) ||
      !util::get_u64(in, s.latency_rejected) ||
      !util::get_u64(in, s.stale_freezes) ||
      !util::get_u64(in, s.degraded_reports) ||
      !util::get_u64(in, s.inflight_evicted) ||
      !util::get_u64(in, s.series_trimmed) ||
      !util::get_u64(in, s.forced_reports)) {
    return false;
  }
  loss_count_ = loss;
  stats_ = s;
  // The new pipeline's overflow counter restarts at zero; folding resumes
  // from there, not from the pre-crash total.
  overflow_folded_ = 0;
  return true;
}

}  // namespace gretel::core
