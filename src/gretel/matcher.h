// Fingerprint matching (Algorithm 2 and §5.3.1's relaxation).
//
// Production path: fingerprints are truncated at the last occurrence of the
// offending API, and a truncated fingerprint matches a snapshot when its
// *state-change* literals appear in order inside the snapshot (read-only
// APIs are optional, interleaved foreign symbols are skipped) — a
// subsequence check over symbols.  An equivalent std::regex backend (each
// literal joined by ".*", the paper offloaded this to Perl) is kept behind
// the same interface for the matcher ablation bench.
//
// The symbol loops dispatch to the util/simd.h kernels: truncation is one
// find_last_eq/find_first_eq, and the subsequence scan skips ahead to each
// literal's next occurrence with vector compares instead of striding one
// symbol per iteration.  SIMD and scalar builds produce bit-identical
// results (the kernels are property-tested against their scalar twins).
//
// Thread safety: a constructed Matcher is immutable on the production
// symbol-subsequence path — every query method is const and keeps its
// scratch state on the stack — so one instance may serve concurrent match
// calls from the fan-out matcher pool without locking.  The std::regex
// ablation backend memoizes compiled patterns behind a mutex (compiling
// dominated every call before; see regex_cache_); lookups take the lock
// briefly, the regex search itself runs outside it.
#pragma once

#include <cstdint>
#include <mutex>
#include <regex>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "util/simd.h"
#include "wire/api.h"

namespace gretel::core {

// ApiId is a StrongId wrapping a single uint16_t, so a span of ApiIds can be
// scanned as a dense uint16 column by the SIMD kernels.
static_assert(sizeof(wire::ApiId) == sizeof(std::uint16_t) &&
                  std::is_trivially_copyable_v<wire::ApiId>,
              "SIMD symbol kernels rely on ApiId being a bare uint16");

inline const std::uint16_t* symbol_data(std::span<const wire::ApiId> seq) {
  return reinterpret_cast<const std::uint16_t*>(seq.data());
}

// 64-bit symbol-presence fingerprint of a sequence (see simd.h): lets
// Algorithm 2 reject candidates sharing no symbol with the snapshot — or
// missing a required literal — with one AND before any O(n) scan.
inline std::uint64_t symbol_fingerprint(std::span<const wire::ApiId> seq) {
  return simd::presence_mask_u16(symbol_data(seq), seq.size());
}

enum class MatchBackend {
  SymbolSubsequence,  // production: SIMD skip-ahead subsequence over ApiIds
  StdRegex,           // ablation: textual regex over an encoded alphabet
};

class Matcher {
 public:
  struct Options {
    // When false (the paper's §6 optimization), RPC symbols are pruned from
    // the required literals, leaving REST state changes as anchors.
    bool include_rpc = false;
    MatchBackend backend = MatchBackend::SymbolSubsequence;
  };

  Matcher(const wire::ApiCatalog* catalog, Options options);

  // TRUNCATE_OPERATION_FINGERPRINTS: prefix of `seq` through the last
  // occurrence of `api` (the whole sequence if absent — performance faults
  // use the untruncated form).  Returns a view into `seq`; no allocation.
  static std::span<const wire::ApiId> truncate_at_last(
      std::span<const wire::ApiId> seq, wire::ApiId api);

  // Prefix through the *first* occurrence.  When an API repeats inside a
  // fingerprint, the detector cannot know which occurrence failed; a
  // candidate matches some occurrence's truncated prefix iff it matches the
  // first occurrence's (shorter prefixes demand a subset of the literals),
  // so aborted operations are matched through this form.  Algorithm 2's
  // FIND_LAST_OCCURENCE coincides with it when fingerprints don't repeat
  // the offending API.  Returns a view into `seq`; no allocation.
  static std::span<const wire::ApiId> truncate_at_first(
      std::span<const wire::ApiId> seq, wire::ApiId api);

  // Required literals of a (possibly truncated) fingerprint sequence:
  // state-change APIs, with RPCs pruned unless include_rpc.
  std::vector<wire::ApiId> required_literals(
      std::span<const wire::ApiId> seq) const;

  // True when `literals` appear in order within `snapshot`.
  bool matches(std::span<const wire::ApiId> literals,
               std::span<const wire::ApiId> snapshot) const;

  // The §5.3.1 window-tolerant form used by operation detection.
  //  Strong — the literals appear in order in the snapshot: complete
  //           evidence of the (truncated) operation.
  //  Weak   — scanning backward from the fault position, at least
  //           min(min_suffix, |literals|) trailing literals appear in
  //           reverse order; older literals are excused because the
  //           snapshot's reach is finite (Fig. 4: "even though symbol A is
  //           missing from the context buffer, the truncated regular
  //           expression still matches").
  enum class Tier { None, Weak, Strong };
  Tier match_tier(std::span<const wire::ApiId> literals,
                  std::span<const wire::ApiId> snapshot,
                  std::size_t fault_index, std::size_t min_suffix) const;

  // Convenience: Tier != None.
  bool matches_near_fault(std::span<const wire::ApiId> literals,
                          std::span<const wire::ApiId> snapshot,
                          std::size_t fault_index,
                          std::size_t min_suffix) const {
    return match_tier(literals, snapshot, fault_index, min_suffix) !=
           Tier::None;
  }

  const Options& options() const { return options_; }

  // Compiled-pattern cache hits/misses of the regex backend (ablation
  // telemetry; always 0 on the production backend).
  std::uint64_t regex_cache_hits() const { return regex_cache_hits_; }
  std::uint64_t regex_cache_misses() const { return regex_cache_misses_; }

 private:
  static bool subsequence_match(std::span<const wire::ApiId> literals,
                                std::span<const wire::ApiId> snapshot);
  bool regex_match(std::span<const wire::ApiId> literals,
                   std::span<const wire::ApiId> snapshot) const;
  // Two-character encoding of an ApiId over a regex-safe alphabet.
  static void encode_api(wire::ApiId api, std::string& out);

  const wire::ApiCatalog* catalog_;
  Options options_;
  // Compiled std::regex patterns, keyed by the encoded literal sequence
  // (the pattern string is a bijection of it).  Compilation used to happen
  // on every regex_match call and dominated the backend's cost.  unordered_
  // map references are stable across rehash, so a cached entry can be
  // searched after the lock is released.
  mutable std::mutex regex_mutex_;
  mutable std::unordered_map<std::string, std::regex> regex_cache_;
  mutable std::uint64_t regex_cache_hits_ = 0;
  mutable std::uint64_t regex_cache_misses_ = 0;
};

}  // namespace gretel::core
