// Fingerprint matching (Algorithm 2 and §5.3.1's relaxation).
//
// Production path: fingerprints are truncated at the last occurrence of the
// offending API, and a truncated fingerprint matches a snapshot when its
// *state-change* literals appear in order inside the snapshot (read-only
// APIs are optional, interleaved foreign symbols are skipped) — a
// subsequence check over symbols.  An equivalent std::regex backend (each
// literal joined by ".*", the paper offloaded this to Perl) is kept behind
// the same interface for the matcher ablation bench.
//
// Thread safety: a constructed Matcher is immutable — every query method
// is const and keeps its scratch state on the stack (the regex backend
// compiles its pattern locally per call) — so one instance may serve
// concurrent match calls from the fan-out matcher pool without locking.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "wire/api.h"

namespace gretel::core {

enum class MatchBackend {
  SymbolSubsequence,  // production: two-pointer subsequence over ApiIds
  StdRegex,           // ablation: textual regex over an encoded alphabet
};

class Matcher {
 public:
  struct Options {
    // When false (the paper's §6 optimization), RPC symbols are pruned from
    // the required literals, leaving REST state changes as anchors.
    bool include_rpc = false;
    MatchBackend backend = MatchBackend::SymbolSubsequence;
  };

  Matcher(const wire::ApiCatalog* catalog, Options options);

  // TRUNCATE_OPERATION_FINGERPRINTS: prefix of `seq` through the last
  // occurrence of `api` (the whole sequence if absent — performance faults
  // use the untruncated form).
  static std::vector<wire::ApiId> truncate_at_last(
      std::span<const wire::ApiId> seq, wire::ApiId api);

  // Prefix through the *first* occurrence.  When an API repeats inside a
  // fingerprint, the detector cannot know which occurrence failed; a
  // candidate matches some occurrence's truncated prefix iff it matches the
  // first occurrence's (shorter prefixes demand a subset of the literals),
  // so aborted operations are matched through this form.  Algorithm 2's
  // FIND_LAST_OCCURENCE coincides with it when fingerprints don't repeat
  // the offending API.
  static std::vector<wire::ApiId> truncate_at_first(
      std::span<const wire::ApiId> seq, wire::ApiId api);

  // Required literals of a (possibly truncated) fingerprint sequence:
  // state-change APIs, with RPCs pruned unless include_rpc.
  std::vector<wire::ApiId> required_literals(
      std::span<const wire::ApiId> seq) const;

  // True when `literals` appear in order within `snapshot`.
  bool matches(std::span<const wire::ApiId> literals,
               std::span<const wire::ApiId> snapshot) const;

  // The §5.3.1 window-tolerant form used by operation detection.
  //  Strong — the literals appear in order in the snapshot: complete
  //           evidence of the (truncated) operation.
  //  Weak   — scanning backward from the fault position, at least
  //           min(min_suffix, |literals|) trailing literals appear in
  //           reverse order; older literals are excused because the
  //           snapshot's reach is finite (Fig. 4: "even though symbol A is
  //           missing from the context buffer, the truncated regular
  //           expression still matches").
  enum class Tier { None, Weak, Strong };
  Tier match_tier(std::span<const wire::ApiId> literals,
                  std::span<const wire::ApiId> snapshot,
                  std::size_t fault_index, std::size_t min_suffix) const;

  // Convenience: Tier != None.
  bool matches_near_fault(std::span<const wire::ApiId> literals,
                          std::span<const wire::ApiId> snapshot,
                          std::size_t fault_index,
                          std::size_t min_suffix) const {
    return match_tier(literals, snapshot, fault_index, min_suffix) !=
           Tier::None;
  }

  const Options& options() const { return options_; }

 private:
  static bool subsequence_match(std::span<const wire::ApiId> literals,
                                std::span<const wire::ApiId> snapshot);
  static bool regex_match(std::span<const wire::ApiId> literals,
                          std::span<const wire::ApiId> snapshot);
  // Two-character encoding of an ApiId over a regex-safe alphabet.
  static void encode_api(wire::ApiId api, std::string& out);

  const wire::ApiCatalog* catalog_;
  Options options_;
};

}  // namespace gretel::core
