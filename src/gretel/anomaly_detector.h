// The anomaly detector (§5.3): the online front half of the analyzer.
//
// Consumes decoded events at line rate, maintaining the dual-buffer sliding
// window.  Operational faults: REST error statuses trigger snapshots (RPC
// errors are counted but do not trigger — they surface in REST relays,
// §5.3.1 "Improving precision").  Performance faults: the latency tracker's
// level-shift alarms trigger snapshots without fingerprint truncation.
// After a trigger, the detector waits for the future α/2 messages, freezes
// the window between the dual buffer's two pointers, runs Algorithm 2, and
// emits a FaultReport through the callback.
//
// Threading (config.num_shards / config.num_match_workers):
//  * num_shards == 1 — fully serial, processing each event inline on the
//    calling thread exactly as the original single-threaded detector.
//  * num_shards > 1 — the front half (error scan + latency/level-shift
//    detection) runs on shard worker threads fed through per-shard SPSC
//    rings (ShardPipeline); the calling thread keeps the dual buffer,
//    trigger suppression and snapshotting, draining the shards every
//    config.drain_interval() events.  Trigger candidates are merged back in
//    global sequence order, so the emitted reports are identical for any
//    shard count (see docs/ARCHITECTURE.md, "Determinism").
//  * num_match_workers > 0 — Algorithm 2 scores candidate fingerprints
//    against the window snapshot on a fork-join pool; the reduction stays
//    serial, so results are bit-identical to the inline matcher.
// External API and callback discipline are unchanged: on_event()/flush()
// must be called from one thread, and callbacks fire on that thread.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "detect/shard_set.h"
#include "gretel/config.h"
#include "gretel/op_detector.h"
#include "gretel/report.h"
#include "gretel/shard_pipeline.h"
#include "gretel/window.h"
#include "util/thread_pool.h"

namespace gretel::core {

class AnomalyDetector {
 public:
  using FaultCallback = std::function<void(const FaultReport&)>;

  AnomalyDetector(const FingerprintDb* db, const wire::ApiCatalog* catalog,
                  GretelConfig config, FaultCallback callback);

  // Feeds one decoded event; may synchronously emit fault reports for
  // earlier triggers whose future context just completed.
  void on_event(wire::Event event);

  // Feeds a batch of decoded events.  Produces byte-identical reports to
  // calling on_event() per element: the serial path processes each event
  // inline exactly as before, and the sharded path splits the batch at the
  // same drain boundaries per-event ingestion would hit, so shard joins —
  // and therefore trigger merge order and suppression — land at identical
  // event counts.  What batching buys is amortization: one ring wake-up
  // fence per chunk instead of per event.
  void on_events(std::span<const wire::Event> events);

  // Runs any triggers still waiting for future context (end of stream).
  // With shards, also joins the workers' in-flight work first.
  void flush();

  // Incremental streaming tick (stream_tick_ms cadence): joins the shard
  // workers and emits every report whose future context is ready — without
  // ending the stream — then force-emits pending triggers older than
  // stream_max_report_delay_s (a fault followed by silence still reports
  // within a bounded delay), time-sweeps the orphan reaper (an idle stream
  // never reaches the observe-cadence sweep), runs the steady-state stall
  // watchdog, and refreshes the quiescent guard statistics.  `now` is the
  // stream watermark in sim time.  Batch callers never need this; calling
  // it between batches changes drain cadence but not output (triggers
  // merge in sequence order regardless of join timing).
  void tick(util::SimTime now);

  // Per-shard liveness from the pipeline (empty on the serial path).
  std::vector<ShardHealth> shard_health() {
    return pipeline_ ? pipeline_->shard_health() : std::vector<ShardHealth>{};
  }

  // Telemetry-loss notification from the ingestion layer: `count` frames
  // between the previous event and the next one were lost before decoding
  // (quarantined as malformed, dropped by a lossy tap, ...).  Folded into
  // the running loss count that annotates frozen windows, so reports whose
  // snapshot spans the gap carry degraded_confidence.
  void record_loss(std::uint64_t count) { loss_count_ += count; }

  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t rest_errors = 0;
    std::uint64_t rpc_errors = 0;
    std::uint64_t operational_reports = 0;
    std::uint64_t performance_reports = 0;
    std::uint64_t suppressed_triggers = 0;
    // Degraded-telemetry accounting.  overflow_drops / watchdog_trips come
    // from the sharded pipeline (0 on the serial path); the latency guard
    // totals are snapshotted from the shard trackers at quiescent points.
    std::uint64_t losses_recorded = 0;      // record_loss + overflow drops
    std::uint64_t overflow_drops = 0;
    std::uint64_t watchdog_trips = 0;
    std::uint64_t orphans_reaped = 0;
    std::uint64_t latency_clamped = 0;      // negative gaps clamped to 0
    std::uint64_t latency_rejected = 0;     // non-finite samples rejected
    std::uint64_t stale_freezes = 0;
    std::uint64_t degraded_reports = 0;     // reports with window losses
    // Streaming only.
    std::uint64_t inflight_evicted = 0;     // pending requests evicted by cap
    std::uint64_t series_trimmed = 0;       // retained samples trimmed by cap
    std::uint64_t forced_reports = 0;       // emitted past the delay deadline
  };
  const Stats& stats() const { return stats_; }

  const GretelConfig& config() const { return config_; }

  // Sharded latency state.  The aggregated accessors are only safe when
  // the pipeline is quiescent (between on_event calls / after flush).
  detect::LatencyShardSet& latency_shards() { return latency_; }
  const detect::LatencyShardSet& latency_shards() const { return latency_; }
  const util::TimeSeries* latency_series(wire::ApiId api) const {
    return latency_.series(api);
  }

  // Checkpoint support (src/persist/): serializes the *learned* state — the
  // latency shard set (baselines, sketches, pending pairings, orphan
  // clocks), the cumulative loss count, and the stats counters.  The dual
  // buffer, pending snapshots and per-API suppression maps are window-local
  // transients spanning at most α messages; they are deliberately not
  // checkpointed (the recovery invariant already allows one checkpoint
  // interval of context to regress, and seq numbers restart with the new
  // window).  Quiescent points only (after flush()/tick(), workers parked).
  //
  // load_state expects a freshly constructed detector with the same config
  // (shard count, detector type); on success the pipeline-local counters
  // (overflow_drops, watchdog_trips, stale_freezes) restart at zero while
  // the tracker-backed guard stats resume exactly.  On torn input returns
  // false with the detector left reset to its constructed state.
  void save_state(std::string& out) const;
  bool load_state(std::string_view& in);

 private:
  struct PendingSnapshot {
    std::uint64_t center = 0;   // seq of the triggering message
    wire::ApiId api;
    FaultKind kind = FaultKind::Operational;
    util::SimTime triggered_at;
    std::optional<detect::LatencyAlarm> alarm;
  };

  // Serial (num_shards == 1) ingestion of one event, inline on the calling
  // thread; the single-event and batched entry points both funnel here.
  void ingest_serial(const wire::Event& source);
  void maybe_trigger_operational(std::uint64_t seq, wire::ApiId api,
                                 util::SimTime ts);
  // Joins the shard workers, folds their trigger candidates into pending_
  // in stream order, and runs snapshots that became ready.
  void sync_shards(bool force);
  void run_ready(bool force);
  void run_snapshot(const PendingSnapshot& pending);
  // Folds pipeline overflow drops accrued since the last call into the
  // window loss count (each dropped event is a gap the snapshot can't see).
  void fold_overflow_losses();
  // Quiescent guard-stat snapshot shared by flush() and tick().
  void refresh_guard_stats();

  const wire::ApiCatalog* catalog_;
  GretelConfig config_;
  FaultCallback callback_;
  OperationDetector detector_;
  DualBuffer buffer_;
  // Columnar (SoA) view of the current frozen snapshot — scratch reused
  // across freezes so steady-state snapshotting allocates nothing.  The
  // anchor re-scan, the error-event collection and Alg. 2 all read these
  // columns through the util/simd.h kernels.
  WindowColumns window_cols_;
  detect::LatencyShardSet latency_;
  util::ThreadPool match_pool_;
  std::unique_ptr<ShardPipeline> pipeline_;  // null when num_shards == 1
  std::size_t drain_interval_ = 0;
  std::size_t since_drain_ = 0;
  // Cumulative telemetry losses (record_loss + pipeline overflow drops) and
  // the portion of the pipeline's overflow counter already folded in.
  std::uint64_t loss_count_ = 0;
  std::uint64_t overflow_folded_ = 0;
  // Seq-stamped headers of the current chunk for submit_batch (capacity is
  // retained across batches; bounded by drain_interval_).  Headers, not
  // events: the pipeline hand-off never copies strings across threads.
  std::vector<wire::EventHeader> batch_scratch_;
  std::vector<PendingSnapshot> pending_;
  // Last trigger sequence per API, for duplicate-relay suppression.
  std::unordered_map<wire::ApiId, std::uint64_t> last_trigger_;
  // Last report sequence per *anchor* API: the relay and the original error
  // resolve to the same anchor and must yield one report.
  std::unordered_map<wire::ApiId, std::uint64_t> last_report_;
  Stats stats_;
};

}  // namespace gretel::core
