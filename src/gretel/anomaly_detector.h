// The anomaly detector (§5.3): the online front half of the analyzer.
//
// Consumes decoded events at line rate, maintaining the dual-buffer sliding
// window.  Operational faults: REST error statuses trigger snapshots (RPC
// errors are counted but do not trigger — they surface in REST relays,
// §5.3.1 "Improving precision").  Performance faults: the latency tracker's
// level-shift alarms trigger snapshots without fingerprint truncation.
// After a trigger, the detector waits for the future α/2 messages, freezes
// the window between the dual buffer's two pointers, runs Algorithm 2, and
// emits a FaultReport through the callback.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "detect/latency_tracker.h"
#include "gretel/config.h"
#include "gretel/op_detector.h"
#include "gretel/report.h"
#include "gretel/window.h"

namespace gretel::core {

class AnomalyDetector {
 public:
  using FaultCallback = std::function<void(const FaultReport&)>;

  AnomalyDetector(const FingerprintDb* db, const wire::ApiCatalog* catalog,
                  GretelConfig config, FaultCallback callback);

  // Feeds one decoded event; may synchronously emit fault reports for
  // earlier triggers whose future context just completed.
  void on_event(wire::Event event);

  // Runs any triggers still waiting for future context (end of stream).
  void flush();

  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t rest_errors = 0;
    std::uint64_t rpc_errors = 0;
    std::uint64_t operational_reports = 0;
    std::uint64_t performance_reports = 0;
    std::uint64_t suppressed_triggers = 0;
  };
  const Stats& stats() const { return stats_; }

  const GretelConfig& config() const { return config_; }
  detect::LatencyTracker& latency_tracker() { return latency_; }

 private:
  struct PendingSnapshot {
    std::uint64_t center = 0;   // seq of the triggering message
    wire::ApiId api;
    FaultKind kind = FaultKind::Operational;
    util::SimTime triggered_at;
    std::optional<detect::LatencyAlarm> alarm;
  };

  void maybe_trigger_operational(const wire::Event& event);
  void run_ready(bool force);
  void run_snapshot(const PendingSnapshot& pending);

  const wire::ApiCatalog* catalog_;
  GretelConfig config_;
  FaultCallback callback_;
  OperationDetector detector_;
  DualBuffer buffer_;
  detect::LatencyTracker latency_;
  std::vector<PendingSnapshot> pending_;
  // Last trigger sequence per API, for duplicate-relay suppression.
  std::unordered_map<wire::ApiId, std::uint64_t> last_trigger_;
  // Last report sequence per *anchor* API: the relay and the original error
  // resolve to the same anchor and must yield one report.
  std::unordered_map<wire::ApiId, std::uint64_t> last_report_;
  Stats stats_;
};

}  // namespace gretel::core
