// Root cause analysis (§5.4, Algorithm 3).
//
// Combines (a) the error metadata forwarded by the anomaly detector and
// (b) distributed state collected by the monitoring agents within the
// context-buffer window.  The engine derives the operation's node set from
// the matched fingerprints, inspects the error-endpoint nodes first for
// anomalous resources (Is_Anomalous over the collectd series) and failed
// software dependencies (watchers), and — when those come back clean —
// expands to the remaining nodes of the operation, since the root cause may
// be upstream of where the fault surfaced.
//
// The engine is honest about evidence quality: dependency state arrives
// through the watcher's probe layer (which can time out, trip breakers, or
// flap-suppress) and metric series carry freshness watermarks.  Open
// breakers, exhausted budgets, and stale series are treated as "unknown,
// keep looking" rather than "clean", and every finding carries an
// EvidenceStatus + confidence.
#pragma once

#include <vector>

#include "gretel/config.h"
#include "gretel/fingerprint_db.h"
#include "gretel/report.h"
#include "monitor/metrics.h"
#include "monitor/watcher.h"
#include "stack/deployment.h"

namespace gretel::core {

class RootCauseEngine {
 public:
  struct Options {
    // Metric context added around the fault window on both sides.
    util::SimDuration window_pad = util::SimDuration::seconds(3);
    double k_sigma = 5.0;  // Is_Anomalous threshold
    // Metric freshness horizon; 0 = staleness checking off (legacy).
    double metric_staleness_s = 0.0;
    // Per-analysis probe deadline budget; 0 = unbounded (legacy).
    double probe_budget_ms = 0.0;

    // The same knobs, read from the promoted GretelConfig rows.
    static Options from(const GretelConfig& config) {
      Options o;
      o.window_pad = util::SimDuration(static_cast<std::int64_t>(
          config.rca_window_pad_seconds * 1e9));
      o.k_sigma = config.rca_k_sigma;
      o.metric_staleness_s = config.metric_staleness_s;
      o.probe_budget_ms = config.probe_budget_ms;
      return o;
    }
  };

  RootCauseEngine(const FingerprintDb* db, const wire::ApiCatalog* catalog,
                  const stack::Deployment* deployment,
                  const monitor::MetricsStore* metrics,
                  const monitor::DependencyWatcher* watcher,
                  Options options);
  // Default-options overload (GCC rejects a brace default argument for a
  // nested aggregate inside its own class).
  RootCauseEngine(const FingerprintDb* db, const wire::ApiCatalog* catalog,
                  const stack::Deployment* deployment,
                  const monitor::MetricsStore* metrics,
                  const monitor::DependencyWatcher* watcher);

  RootCauseReport analyze(const FaultReport& fault) const;

  // All nodes participating in the given operations (via their
  // fingerprints' services) — GET_LIST_OF_NODES_FOR_OPERATION.
  std::vector<wire::NodeId> nodes_for_operations(
      const std::vector<FingerprintDb::Index>& fingerprints) const;

 private:
  // FIND_ROOT_CAUSE over one node set, against the window's dependency
  // evidence.  Evidence gaps and stale-series hits for nodes in the set
  // are appended to `report`.
  std::vector<Cause> find_causes(const std::vector<wire::NodeId>& nodes,
                                 util::SimTime from, util::SimTime to,
                                 const monitor::WindowEvidence& evidence,
                                 RootCauseReport& report) const;

  const FingerprintDb* db_;
  const wire::ApiCatalog* catalog_;
  const stack::Deployment* deployment_;
  const monitor::MetricsStore* metrics_;
  const monitor::DependencyWatcher* watcher_;
  Options options_;
};

}  // namespace gretel::core
