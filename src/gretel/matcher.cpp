#include "gretel/matcher.h"

#include <algorithm>
#include <cassert>
#include <regex>

namespace gretel::core {

Matcher::Matcher(const wire::ApiCatalog* catalog, Options options)
    : catalog_(catalog), options_(options) {
  assert(catalog_);
}

std::vector<wire::ApiId> Matcher::truncate_at_last(
    std::span<const wire::ApiId> seq, wire::ApiId api) {
  std::size_t last = seq.size();
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i] == api) last = i + 1;
  }
  return {seq.begin(), seq.begin() + static_cast<std::ptrdiff_t>(last)};
}

std::vector<wire::ApiId> Matcher::truncate_at_first(
    std::span<const wire::ApiId> seq, wire::ApiId api) {
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i] == api) {
      return {seq.begin(), seq.begin() + static_cast<std::ptrdiff_t>(i + 1)};
    }
  }
  return {seq.begin(), seq.end()};
}

std::vector<wire::ApiId> Matcher::required_literals(
    std::span<const wire::ApiId> seq) const {
  std::vector<wire::ApiId> out;
  out.reserve(seq.size());
  for (auto api : seq) {
    const auto& desc = catalog_->get(api);
    if (!desc.state_change()) continue;
    if (!options_.include_rpc && desc.kind == wire::ApiKind::Rpc) continue;
    out.push_back(api);
  }
  return out;
}

bool Matcher::matches(std::span<const wire::ApiId> literals,
                      std::span<const wire::ApiId> snapshot) const {
  if (literals.empty()) return false;  // nothing to anchor on
  switch (options_.backend) {
    case MatchBackend::SymbolSubsequence:
      return subsequence_match(literals, snapshot);
    case MatchBackend::StdRegex:
      return regex_match(literals, snapshot);
  }
  return false;
}

Matcher::Tier Matcher::match_tier(std::span<const wire::ApiId> literals,
                                  std::span<const wire::ApiId> snapshot,
                                  std::size_t fault_index,
                                  std::size_t min_suffix) const {
  if (literals.empty() || snapshot.empty()) return Tier::None;
  if (matches(literals, snapshot)) return Tier::Strong;

  // Greedy backward suffix consumption from the fault position: rightmost
  // alignment maximizes the consumed suffix length.
  std::size_t i = literals.size();
  for (std::size_t pos = std::min(fault_index, snapshot.size() - 1) + 1;
       pos-- > 0 && i > 0;) {
    if (snapshot[pos] == literals[i - 1]) --i;
  }
  const std::size_t consumed = literals.size() - i;
  return consumed >= std::min(min_suffix, literals.size()) ? Tier::Weak
                                                           : Tier::None;
}

bool Matcher::subsequence_match(std::span<const wire::ApiId> literals,
                                std::span<const wire::ApiId> snapshot) {
  std::size_t need = 0;
  for (auto api : snapshot) {
    if (api == literals[need]) {
      if (++need == literals.size()) return true;
    }
  }
  return false;
}

void Matcher::encode_api(wire::ApiId api, std::string& out) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789@#";
  const auto v = api.value();
  out += kAlphabet[(v >> 6) & 63];
  out += kAlphabet[v & 63];
}

bool Matcher::regex_match(std::span<const wire::ApiId> literals,
                          std::span<const wire::ApiId> snapshot) {
  // Snapshot as text, two regex-safe characters per API.
  std::string text;
  text.reserve(snapshot.size() * 2);
  for (auto api : snapshot) encode_api(api, text);

  // Pattern: literals joined by (..)*? so skipped symbols stay pair-aligned;
  // anchoring at the start keeps the alignment absolute (a match beginning
  // at an odd text offset would straddle two encoded symbols).
  std::string pattern;
  pattern.reserve(literals.size() * 8 + 8);
  pattern += "^(..)*?";
  for (std::size_t i = 0; i < literals.size(); ++i) {
    if (i) pattern += "(..)*?";
    encode_api(literals[i], pattern);
  }
  const std::regex re(pattern);
  return std::regex_search(text, re);
}

}  // namespace gretel::core
