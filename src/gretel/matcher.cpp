#include "gretel/matcher.h"

#include <algorithm>
#include <cassert>

namespace gretel::core {

Matcher::Matcher(const wire::ApiCatalog* catalog, Options options)
    : catalog_(catalog), options_(options) {
  assert(catalog_);
}

std::span<const wire::ApiId> Matcher::truncate_at_last(
    std::span<const wire::ApiId> seq, wire::ApiId api) {
  const auto last =
      simd::find_last_eq_u16(symbol_data(seq), seq.size(), api.value());
  return last == simd::npos ? seq : seq.first(last + 1);
}

std::span<const wire::ApiId> Matcher::truncate_at_first(
    std::span<const wire::ApiId> seq, wire::ApiId api) {
  const auto first =
      simd::find_first_eq_u16(symbol_data(seq), seq.size(), api.value());
  return first == simd::npos ? seq : seq.first(first + 1);
}

std::vector<wire::ApiId> Matcher::required_literals(
    std::span<const wire::ApiId> seq) const {
  std::vector<wire::ApiId> out;
  out.reserve(seq.size());
  for (auto api : seq) {
    const auto& desc = catalog_->get(api);
    if (!desc.state_change()) continue;
    if (!options_.include_rpc && desc.kind == wire::ApiKind::Rpc) continue;
    out.push_back(api);
  }
  return out;
}

bool Matcher::matches(std::span<const wire::ApiId> literals,
                      std::span<const wire::ApiId> snapshot) const {
  if (literals.empty()) return false;  // nothing to anchor on
  switch (options_.backend) {
    case MatchBackend::SymbolSubsequence:
      return subsequence_match(literals, snapshot);
    case MatchBackend::StdRegex:
      return regex_match(literals, snapshot);
  }
  return false;
}

Matcher::Tier Matcher::match_tier(std::span<const wire::ApiId> literals,
                                  std::span<const wire::ApiId> snapshot,
                                  std::size_t fault_index,
                                  std::size_t min_suffix) const {
  if (literals.empty() || snapshot.empty()) return Tier::None;
  if (matches(literals, snapshot)) return Tier::Strong;

  // Greedy backward suffix consumption from the fault position: rightmost
  // alignment maximizes the consumed suffix length.  Each step jumps
  // straight to the current literal's last occurrence below the previous
  // match — the same greedy walk as the scalar element-at-a-time loop.
  const auto* symbols = symbol_data(snapshot);
  std::size_t i = literals.size();
  std::size_t end = std::min(fault_index, snapshot.size() - 1) + 1;
  while (i > 0) {
    const auto pos =
        simd::find_last_eq_u16(symbols, end, literals[i - 1].value());
    if (pos == simd::npos) break;
    --i;
    end = pos;
  }
  const std::size_t consumed = literals.size() - i;
  return consumed >= std::min(min_suffix, literals.size()) ? Tier::Weak
                                                           : Tier::None;
}

bool Matcher::subsequence_match(std::span<const wire::ApiId> literals,
                                std::span<const wire::ApiId> snapshot) {
  // Two-pointer subsequence scan, with the inner "advance to the next
  // occurrence of the current literal" done by the SIMD kernel.
  const auto* symbols = symbol_data(snapshot);
  std::size_t pos = 0;
  for (auto literal : literals) {
    const auto hit = simd::find_first_eq_u16(symbols + pos,
                                             snapshot.size() - pos,
                                             literal.value());
    if (hit == simd::npos) return false;
    pos += hit + 1;
  }
  return true;
}

void Matcher::encode_api(wire::ApiId api, std::string& out) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789@#";
  const auto v = api.value();
  out += kAlphabet[(v >> 6) & 63];
  out += kAlphabet[v & 63];
}

bool Matcher::regex_match(std::span<const wire::ApiId> literals,
                          std::span<const wire::ApiId> snapshot) const {
  // Snapshot as text, two regex-safe characters per API.
  std::string text;
  text.reserve(snapshot.size() * 2);
  for (auto api : snapshot) encode_api(api, text);

  // Pattern: literals joined by (..)*? so skipped symbols stay pair-aligned;
  // anchoring at the start keeps the alignment absolute (a match beginning
  // at an odd text offset would straddle two encoded symbols).
  std::string pattern;
  pattern.reserve(literals.size() * 8 + 8);
  pattern += "^(..)*?";
  for (std::size_t i = 0; i < literals.size(); ++i) {
    if (i) pattern += "(..)*?";
    encode_api(literals[i], pattern);
  }

  // The compiled regex depends only on the literal sequence; memoize it.
  // unordered_map element references are stable, so the search can run on
  // the cached entry after the lock is dropped (regex_search on a const
  // std::regex is thread-safe).
  const std::regex* re = nullptr;
  {
    std::lock_guard<std::mutex> lock(regex_mutex_);
    const auto it = regex_cache_.find(pattern);
    if (it != regex_cache_.end()) {
      ++regex_cache_hits_;
      re = &it->second;
    } else {
      ++regex_cache_misses_;
      re = &regex_cache_.emplace(pattern, std::regex(pattern)).first->second;
    }
  }
  return std::regex_search(text, *re);
}

}  // namespace gretel::core
