#include "gretel/noise_filter.h"

#include <algorithm>

namespace gretel::core {

NoiseFilter::NoiseFilter(const wire::ApiCatalog* catalog)
    : catalog_(catalog),
      heartbeat_rpcs_{"report_state", "update_service_capabilities"} {}

void NoiseFilter::add_heartbeat_rpc(std::string method_name) {
  heartbeat_rpcs_.push_back(std::move(method_name));
}

bool NoiseFilter::is_noise_api(wire::ApiId api) const {
  const auto& desc = catalog_->get(api);
  if (desc.service == wire::ServiceKind::Keystone) return true;
  if (desc.kind == wire::ApiKind::Rpc) {
    return std::find(heartbeat_rpcs_.begin(), heartbeat_rpcs_.end(),
                     desc.rpc_method) != heartbeat_rpcs_.end();
  }
  return false;
}

std::vector<wire::ApiId> NoiseFilter::filter(
    const std::vector<wire::ApiId>& trace) const {
  std::vector<wire::ApiId> out;
  out.reserve(trace.size());
  for (auto api : trace) {
    if (is_noise_api(api)) continue;
    // Collapse repeat occurrences of idempotent REST actions on one URI.
    if (!out.empty() && out.back() == api &&
        !catalog_->get(api).state_change()) {
      continue;
    }
    out.push_back(api);
  }
  return out;
}

std::vector<wire::ApiId> NoiseFilter::filter_events(
    const std::vector<wire::Event>& events) const {
  std::vector<wire::ApiId> trace;
  trace.reserve(events.size() / 2);
  for (const auto& ev : events) {
    if (ev.is_request()) trace.push_back(ev.api);
  }
  return filter(trace);
}

}  // namespace gretel::core
