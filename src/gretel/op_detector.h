// Operation detection (Algorithm 2 + the context-buffer iteration of
// §5.3.1).
//
// Given the frozen sliding window and the offending API, the detector:
//  1. pulls the candidate fingerprints containing that API (inverted index),
//  2. truncates each at the API's last occurrence (operational faults only —
//     performance faults match the full fingerprint since the operation
//     runs to completion),
//  3. grows a context buffer β around the fault by δ per iteration, matching
//     candidates' state-change literals against the snapshot, and stops as
//     soon as precision θ = (N−n)/(N−1) would drop (with subsequence
//     matching, n grows monotonically in β, so the first increase after a
//     non-empty match is the stopping point).
//
// Candidate scoring is embarrassingly parallel — each fingerprint is
// matched against the snapshot independently — so detect() optionally
// fans the per-candidate loop out over a util::ThreadPool.  Workers write
// disjoint slots of the evidence arrays and the reduction (deepest
// evidence, cutoff, matched set, θ) stays on the calling thread, making
// the result bit-identical to the serial loop for any pool size.
#pragma once

#include <span>
#include <vector>

#include "gretel/config.h"
#include "gretel/fingerprint_db.h"
#include "gretel/matcher.h"
#include "gretel/report.h"
#include "util/thread_pool.h"
#include "wire/message.h"

namespace gretel::core {

struct DetectionResult {
  std::vector<FingerprintDb::Index> matched;
  double theta = 0.0;
  std::size_t beta_final = 0;
  std::size_t candidates = 0;
};

class OperationDetector {
 public:
  OperationDetector(const FingerprintDb* db, const wire::ApiCatalog* catalog,
                    const GretelConfig& config);

  // `window` is the frozen snapshot; `fault_index` locates the faulty
  // message inside it; `truncate` selects the operational-fault behaviour.
  // `match_pool` (optional) fans candidate scoring out over its workers;
  // a null or empty pool scores inline.
  DetectionResult detect(std::span<const wire::Event> window,
                         std::size_t fault_index, wire::ApiId offending,
                         bool truncate,
                         util::ThreadPool* match_pool = nullptr) const;

  // θ for a given matched-count n against this database's N.
  double theta(std::size_t n) const;

  const Matcher& matcher() const { return matcher_; }
  const VariantCache& variants() const { return variants_; }

 private:
  const FingerprintDb* db_;
  const wire::ApiCatalog* catalog_;
  GretelConfig config_;
  Matcher matcher_;
  // Candidate literal variants precomputed at construction (load time);
  // detect() borrows spans from it and rebuilds nothing per snapshot.
  VariantCache variants_;
};

}  // namespace gretel::core
