// Operation detection (Algorithm 2 + the context-buffer iteration of
// §5.3.1).
//
// Given the frozen sliding window and the offending API, the detector:
//  1. pulls the candidate fingerprints containing that API (inverted index),
//  2. prunes candidates that share no symbol with the window — one AND of
//     64-bit presence fingerprints (FingerprintDb::sequence_mask vs the
//     window's mask) rejects them before any O(n) scan,
//  3. truncates each survivor at the API's last occurrence (operational
//     faults only — performance faults match the full fingerprint since the
//     operation runs to completion),
//  4. grows a context buffer β around the fault by δ per iteration, matching
//     candidates' state-change literals against the snapshot, and stops as
//     soon as precision θ = (N−n)/(N−1) would drop (with subsequence
//     matching, n grows monotonically in β, so the first increase after a
//     non-empty match is the stopping point).
//
// The snapshot arrives with its columnar (SoA) view (core::WindowColumns):
// the request filter and the per-candidate symbol walks read contiguous
// uint16/uint8/double columns through the util/simd.h kernels instead of
// striding through wire::Event records.  SIMD and scalar kernels are
// bit-identical, so detection output is invariant under the kernel family.
//
// Candidate scoring is embarrassingly parallel — each fingerprint is
// matched against the snapshot independently — so detect() optionally
// fans the per-candidate loop out over a util::ThreadPool.  Workers write
// disjoint slots of the evidence arrays and the reduction (deepest
// evidence, cutoff, matched set, θ) stays on the calling thread, making
// the result bit-identical to the serial loop for any pool size.
#pragma once

#include <span>
#include <vector>

#include "gretel/config.h"
#include "gretel/fingerprint_db.h"
#include "gretel/matcher.h"
#include "gretel/report.h"
#include "gretel/window.h"
#include "util/thread_pool.h"
#include "wire/message.h"

namespace gretel::core {

struct DetectionResult {
  std::vector<FingerprintDb::Index> matched;
  double theta = 0.0;
  std::size_t beta_final = 0;
  std::size_t candidates = 0;
};

class OperationDetector {
 public:
  OperationDetector(const FingerprintDb* db, const wire::ApiCatalog* catalog,
                    const GretelConfig& config);

  // `window` is the frozen snapshot and `cols` its columnar view (indices
  // shared); `fault_index` locates the faulty message inside it; `truncate`
  // selects the operational-fault behaviour.  `match_pool` (optional) fans
  // candidate scoring out over its workers; a null or empty pool scores
  // inline.
  DetectionResult detect(std::span<const wire::Event> window,
                         const WindowColumns& cols, std::size_t fault_index,
                         wire::ApiId offending, bool truncate,
                         util::ThreadPool* match_pool = nullptr) const;

  // Convenience overload building the columnar view on the fly (tests and
  // one-shot callers; the analyzer hot path reuses a scratch instance).
  DetectionResult detect(std::span<const wire::Event> window,
                         std::size_t fault_index, wire::ApiId offending,
                         bool truncate,
                         util::ThreadPool* match_pool = nullptr) const {
    WindowColumns cols;
    cols.build(window);
    return detect(window, cols, fault_index, offending, truncate, match_pool);
  }

  // θ for a given matched-count n against this database's N.
  double theta(std::size_t n) const;

  const Matcher& matcher() const { return matcher_; }
  const VariantCache& variants() const { return variants_; }

 private:
  const FingerprintDb* db_;
  const wire::ApiCatalog* catalog_;
  GretelConfig config_;
  Matcher matcher_;
  // Candidate literal variants precomputed at construction (load time);
  // detect() borrows spans from it and rebuilds nothing per snapshot.
  VariantCache variants_;
};

}  // namespace gretel::core
