// Symbol table: the paper's "Unicode encoding" of APIs (§6).
//
// "Since the number of unique OpenStack APIs is 643, we use Unicode encoding
// to assign a symbol to each API."  Every ApiId maps to one char32_t code
// point; fingerprints and snapshots become u32 strings, and matching runs on
// symbols rather than text.
#pragma once

#include <string>
#include <vector>

#include "wire/api.h"

namespace gretel::core {

class SymbolTable {
 public:
  // Symbols are assigned densely from kFirstSymbol in ApiId order.
  explicit SymbolTable(const wire::ApiCatalog& catalog);

  char32_t symbol(wire::ApiId api) const {
    return kFirstSymbol + api.value();
  }
  // Inverse mapping; returns invalid id for out-of-range symbols.
  wire::ApiId api(char32_t symbol) const;

  std::u32string encode(const std::vector<wire::ApiId>& apis) const;

  std::size_t size() const { return size_; }

  // The CJK Unified Ideographs block: printable, contiguous, and large
  // enough for every OpenStack API — mirroring the paper's choice of
  // Unicode symbols.
  static constexpr char32_t kFirstSymbol = 0x4E00;

 private:
  std::size_t size_;
};

}  // namespace gretel::core
