// Analyzer configuration (§5.3.1 and §7 "Empirical determination of
// thresholds").
//
//   α = 2 · max(FPmax, Prate · t)      sliding window size (messages)
//   β = c1 · α                          initial context buffer
//   δ = c2 · α                          context growth per iteration
//
// The paper's deployment: FPmax = 384, Prate ≈ 150 pps at 400 concurrent
// operations, t = 1 s, c1 = 0.1, c2 = 0.04 → α = 768, β₀ = 80 (they round
// c1·α up), δ = 30.
//
// Every knob is documented as: paper symbol (if any) · default · effect.
// The same table, with tuning guidance, lives in docs/ARCHITECTURE.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gretel/matcher.h"

namespace gretel::core {

// Streaming admission policy when the bounded source ring is full and the
// producer keeps pushing (i.e. it ignores the credit scheme).  Either way
// every shed record is accounted exactly and attributed as a window loss at
// the position it would have occupied, so downstream reports carry the
// degraded-confidence annotation.
enum class StreamShedPolicy : std::uint8_t {
  // Refuse the new record (freshest data is lost; queued context survives).
  DropNewest,
  // Evict the oldest queued record to admit the new one (context is lost;
  // the stream stays current — the usual choice for live detection).
  DropOldest,
};

// What the sharded pipeline does when a shard's ring (plus its spill
// queue) is full — i.e. one shard worker has fallen far behind ingestion.
enum class OverflowPolicy : std::uint8_t {
  // Backpressure: block ingestion until the worker catches up (the
  // original behavior; lossless, but a wedged worker wedges ingestion
  // unless the watchdog is armed).
  Block,
  // Keep ingesting: overflow spills into a bounded coordinator-side queue
  // and, beyond that, the oldest waiting event is dropped and accounted
  // (overflow_drops counter + window loss annotation).  Never engages
  // below capacity, so it is a strict no-op on a keeping-up pipeline.
  DropOldestWithAccounting,
};

struct GretelConfig {
  // FPmax · 384 · the longest fingerprint in the database, in messages.
  // One of the two lower bounds on the window: a snapshot must be able to
  // hold a whole operation, or truncated matching loses literals (Fig. 4).
  std::size_t fp_max = 384;

  // Prate · 150.0 · observed capture rate in packets per second.  The other
  // window bound: α must cover at least t seconds of traffic at this rate.
  double p_rate = 150.0;

  // t · 1.0 · window time horizon in seconds; multiplies Prate in α.
  double t_seconds = 1.0;

  // c1 · 0.1 · initial context-buffer fraction: β₀ = c1·α messages around
  // the fault are matched first.  Larger values start Algorithm 2 with more
  // context (fewer growth iterations, more coincidental matches admitted
  // up front).
  double c1 = 0.1;

  // c2 · 0.04 · context growth fraction: the buffer grows by δ = c2·α
  // messages per iteration until the match set stabilizes or the window is
  // covered.  Smaller values converge more precisely but iterate more.
  double c2 = 0.04;

  // (§6 optimization) · false · when false, RPC symbols are pruned from the
  // match literals and REST state changes anchor the match; true keeps RPCs
  // as literals (the Fig. 7c "with RPC" variant — slower, rarely better).
  bool match_rpc = false;

  // (§5.3.1 enhancement) · true · exploit OpenStack correlation ids when
  // the deployment emits them: the snapshot is reduced to the packets
  // sharing the faulty message's correlation id before fingerprints are
  // matched.  No effect on captures without correlation ids.
  bool use_correlation_ids = true;

  // (implementation) · SymbolSubsequence · fingerprint matching backend;
  // StdRegex is the ablation analog of the paper's Perl offload.
  MatchBackend backend = MatchBackend::SymbolSubsequence;

  // (Fig. 4 relaxation) · 4 · minimum trailing literals that must be
  // evidenced before the fault when the snapshot cannot reach back to the
  // operation's start; candidates with fewer literals must show them all.
  std::size_t min_literal_suffix = 4;

  // (implementation) · 2.0 s · the faulty operation is executing *at* the
  // fault, so its most recent state-change literal must have occurred
  // within this many seconds before the fault; coincidental matches
  // scattered across the window fail this anchoring requirement.
  double anchor_proximity_seconds = 2.0;

  // (implementation) · 0.5 · operational matching keeps the candidates
  // whose anchored backward evidence (consumed literals) is within this
  // fraction of the best candidate's: the faulty operation accumulates
  // evidence as the context buffer grows while coincidental matches stay
  // shallow.
  double evidence_ratio = 0.5;

  // (θ stopping rule) · 5 · growth of the context buffer stops early once
  // the matched set and the deepest evidence have been stable for this many
  // consecutive growths (further context could only admit coincidental
  // matches and drop θ).
  int stable_growths_stop = 5;

  // (implementation) · 96 · two operational triggers for the same API
  // closer than this many events are treated as one fault (duplicate REST
  // error relays).
  std::size_t suppress_events = 96;

  // (threading) · 1 · detection shards.  1 = the fully serial pipeline,
  // byte-identical to the original single-threaded analyzer.  N > 1 runs
  // the error scan and latency/level-shift detection on N worker threads,
  // partitioned by API symbol; reports are identical for any value (see
  // docs/ARCHITECTURE.md, "Determinism").  Size to physical cores minus
  // one (the ingestion/snapshot thread).
  std::size_t num_shards = 1;

  // (hot path) · 64 · slab size, in KiB, of the capture-tap decode arena.
  // Every decode batch parses into string_views over arena-backed scratch
  // and the arena resets (retaining its slabs) per batch, so after warmup
  // the decode path performs zero heap allocations.  Raise it if captures
  // carry unusually large header blocks; one slab must fit the parsed
  // header array plus the normalized URI of a single record.
  std::size_t decode_arena_kb = 64;

  // (hot path) · 128 · events per ingestion batch when callers use the
  // batched entry points (Analyzer::on_wire_batch / on_events).  Larger
  // batches amortize the sharded pipeline's wake-up fence over more
  // events; reports are byte-identical for any value (batches are split
  // internally at drain boundaries).  Purely a throughput knob.
  std::size_t ingest_batch = 128;

  // (hot path) · 0 = auto · deferred-wake cadence of the sharded pipeline,
  // in events per shard: the coordinator fences and notifies a parked shard
  // worker only once this many events have accumulated in its ring since
  // the last wake, instead of once per batch.  Auto resolves to ring
  // capacity / 8 (clamped to [1, 64]).  Purely a throughput knob with no
  // liveness cost: drains publish every pending wake (and consume parked
  // backlog inline), and a full ring always wakes its worker.  Reports are
  // byte-identical for any value.
  std::size_t shard_wake_events = 0;

  // (threading) · 0 · worker threads for the fan-out fingerprint matcher
  // in Algorithm 2.  0 scores candidates inline on the snapshotting
  // thread; N > 0 fork-joins the per-candidate scoring loop over N threads
  // (bit-identical results — the reduction stays serial).  Worth enabling
  // when the fingerprint database is large or faults are frequent.
  std::size_t num_match_workers = 0;

  // (resilience) · 0.0 = off · seconds after which a request whose response
  // was never captured is reaped from the latency tracker.  Lossy taps
  // orphan requests; without a reaper the pending-request maps leak and a
  // response arriving after aeons would register a bogus latency sample.
  // Admission is decided at pairing time (response−request gap vs this
  // timeout), so results are independent of shard count; the periodic sweep
  // only reclaims memory.  0 keeps the exact pre-resilience behavior.
  double orphan_timeout_seconds = 0.0;

  // (resilience) · Block · what ingestion does when a detection shard falls
  // behind: Block applies backpressure (lossless), DropOldestWithAccounting
  // keeps ingesting and accounts the loss (see OverflowPolicy).  Only
  // meaningful when num_shards > 1.
  OverflowPolicy overflow_policy = OverflowPolicy::Block;

  // (resilience) · 0 = ring capacity · bounded coordinator-side spill queue
  // per shard, in events, used by DropOldestWithAccounting before anything
  // is dropped.
  std::size_t overflow_spill = 0;

  // (resilience) · 0.0 = off · stall watchdog for the sharded pipeline, in
  // milliseconds of *no shard progress*.  When armed, a blocked submit or
  // drain stops waiting on a shard whose worker has made no progress for
  // this long: the event is dropped with accounting (submit) or the join is
  // abandoned (drain), and watchdog_trips increments — one wedged shard
  // can no longer deadlock ingestion.  A slow-but-alive worker never trips
  // it (progress resets the clock).  0 keeps the unbounded waits.
  double watchdog_ms = 0.0;

  // --- root-cause analysis (Algorithm 3, §5.4) ---

  // (§5.4) · 3.0 · metric context, in seconds, added around the fault
  // window on both sides before Is_Anomalous runs.
  double rca_window_pad_seconds = 3.0;

  // (§5.4) · 5.0 · Is_Anomalous threshold: a window's resource level is
  // anomalous when it deviates from the node's own baseline by more than
  // this many baseline sigmas.
  double rca_k_sigma = 5.0;

  // --- monitoring plane (probed watchers; see docs/ARCHITECTURE.md,
  // "Monitoring plane & evidence model").  The defaults preserve exact
  // legacy behavior: under zero chaos every probe succeeds instantly on
  // its first attempt and flap_hysteresis = 1 reports state changes
  // immediately, so the probed substrate is byte-identical to the
  // oracle. ---

  // (monitoring) · 100.0 · per-attempt probe reply deadline, in simulated
  // milliseconds.  A probe whose reply misses the deadline counts as a
  // timeout and consumes the full deadline from the analysis budget.
  double probe_timeout_ms = 100.0;

  // (monitoring) · 2 · probe retries after the first attempt.  Each retry
  // waits an exponential backoff first.
  int probe_retries = 2;

  // (monitoring) · 10.0 · base of the retry backoff: retry r waits
  // min(backoff_cap_ms, backoff_base_ms · 2^r) scaled by deterministic
  // seeded jitter in [0.5, 1.0).
  double backoff_base_ms = 10.0;

  // (monitoring) · 1000.0 · upper bound on a single retry backoff.
  double backoff_cap_ms = 1000.0;

  // (monitoring) · 3 · consecutive probe failures (timeouts/drops) that
  // open a target's circuit breaker.  While open, the target is reported
  // Unknown at zero probe cost; after a cooldown the breaker half-opens
  // for a single trial probe.
  int breaker_open_after = 3;

  // (monitoring) · 1 · flap-suppression hysteresis: a dependency's
  // reported state only switches after this many consecutive agreeing
  // observations.  1 = switch immediately (the oracle behavior); larger
  // values suppress flapping agents at the cost of slower detection.
  int flap_hysteresis = 1;

  // (monitoring) · 0.0 = off · metric freshness horizon in seconds.  When
  // set, a metric series whose newest sample lags the analysis window end
  // by more than this is treated as Stale evidence — "unknown", not
  // "normal" — and annotated on the report.  0 keeps the legacy reading
  // (a frozen series silently looks clean).
  double metric_staleness_s = 0.0;

  // (monitoring) · 0.0 = off · per-analysis probe deadline budget in
  // simulated milliseconds.  Once a root-cause analysis has spent this
  // much probe time (timeouts included), remaining targets are reported
  // Unknown instead of probed — a wedged monitoring agent can delay an
  // analysis by at most this budget, never stall it.  0 = unbounded.
  double probe_budget_ms = 0.0;

  // --- fault-campaign engine (src/campaign/; see docs/ARCHITECTURE.md,
  // "Campaign engine & failure-mode clustering").  These knobs bound and
  // seed orchestrated multi-fault sweeps; they have no effect on a plain
  // analyzer. ---

  // (campaign) · 0xCA59A16E · root seed of a campaign.  Every scenario's
  // workload/executor/chaos/metric seeds are splitmix64-derived from
  // (this, stream, scenario index) — see util/seed.h — so scenario k and
  // k+1 draw uncorrelated streams and one seed reproduces a whole sweep.
  std::uint64_t campaign_seed = 0xCA59A16Eull;

  // (campaign) · 200000 · per-scenario event budget: the orchestrator
  // truncates a scenario's (post-chaos) wire stream to this many records
  // before analysis, so one pathological scenario cannot run away with the
  // sweep.  Deterministic — truncation happens at a fixed input index.
  // 0 = unbounded.
  std::size_t campaign_budget_events = 200000;

  // (campaign) · 2 · maximum simultaneous injected faults per generated
  // scenario (multi-fault classes: concurrent-independent and cascading
  // draw up to this many workload faults on top of any environmental root
  // cause).
  std::size_t campaign_max_concurrent_faults = 2;

  // --- streaming mode (src/stream/; see docs/ARCHITECTURE.md, "Streaming
  // mode").  These knobs only take effect when an Analyzer is constructed
  // with Options::streaming = true (which StreamAnalyzer does); a batch
  // analyzer ignores them entirely, so batch output is byte-identical to
  // pre-streaming builds. ---

  // (streaming) · 250 · incremental detection cadence in simulated
  // milliseconds: StreamAnalyzer drains its source ring, runs the
  // detector, force-emits overdue snapshots, sweeps orphans and refreshes
  // health once per tick as the watermark crosses each boundary.
  double stream_tick_ms = 250.0;

  // (streaming) · 8192 · capacity of the bounded source ring between the
  // producer and the pipeline, in records.  Credits granted to the
  // producer equal the free capacity (with low-watermark hysteresis: once
  // the ring fills, credits stay at zero until it drains to half), so a
  // cooperating producer never sheds.
  std::size_t stream_source_ring = 8192;

  // (streaming) · DropOldest · what admission does when the ring is full
  // and the producer pushes anyway.  Every shed record is accounted and
  // attributed as a window loss in place.
  StreamShedPolicy stream_shed_policy = StreamShedPolicy::DropOldest;

  // (streaming) · 4096 · cap on the in-flight (request-awaiting-response)
  // table across all latency shards; per shard the cap divides evenly
  // (floor 64).  When a tap loses responses faster than the orphan
  // timeout reclaims them, the oldest pending request is evicted with
  // accounting (guard stat inflight_evicted) instead of growing the map.
  // Under cap pressure eviction order depends on the shard layout, so a
  // saturated streaming run is not byte-identical across shard counts —
  // batch mode (cap unset) keeps the full determinism contract.
  std::size_t stream_inflight_cap = 4096;

  // (streaming) · 2048 · retained recent latency samples per API.  Batch
  // mode keeps every sample for exact CDFs; streaming keeps the newest
  // [cap/2, cap] (amortized compaction) for report context, and the
  // constant-memory P² sketch (util/quantile_sketch.h) carries the
  // full-history baseline quantiles.  Detection is unaffected: the
  // level-shift detector owns its own bounded window.
  std::size_t stream_series_cap = 2048;

  // (streaming) · 0 = unbounded · metric-store retention horizon in
  // seconds.  When set, samples older than (newest − horizon) are trimmed
  // per series; must comfortably exceed rca_window_pad_seconds plus the
  // report-emission delay or RCA loses its baseline context.
  double stream_metrics_retention_s = 0.0;

  // (streaming) · 256 · StreamAnalyzer keeps the most recent reports in a
  // bounded ring for pull-based consumers; older reports are evicted with
  // accounting.  Push consumers (the report sink callback) see every
  // report regardless.
  std::size_t stream_report_cap = 256;

  // (streaming) · 2.0 · deadline, in seconds, after which a pending
  // trigger whose future half-window has not filled (the stream went
  // quiet) is force-emitted with the context that did arrive, so a fault
  // followed by silence still reports within a bounded delay.
  double stream_max_report_delay_s = 2.0;

  // --- durability (src/persist/; see docs/ARCHITECTURE.md, "Durability &
  // recovery").  These knobs only take effect when a StreamAnalyzer is
  // given a persistence directory; without one nothing is ever written and
  // streaming behavior is byte-identical to pre-durability builds. ---

  // (durability) · 5.0 · stream-time seconds between checkpoints.  On the
  // first tick boundary past the cadence the analyzer snapshots its
  // learned state (GRTCKP01, tmp+fsync+rename).  The recovery invariant is
  // phrased in this unit: a crash regresses at most this much learned
  // baseline.  Must be at least one stream tick — a sub-tick cadence can
  // never fire.
  double checkpoint_interval_s = 5.0;

  // (durability) · 2 · newest checkpoint files retained on disk; older
  // ones are pruned after each successful write.  ≥ 2 means a checkpoint
  // torn by a crash mid-write still leaves a previous complete one to fall
  // back to (the loader falls back across corrupt files regardless).
  std::size_t checkpoint_keep = 2;

  // (durability) · 4096 · journal records per WAL segment before rotation.
  // Smaller segments bound the replay-scan cost after a crash; larger ones
  // reduce file churn.  Fully checkpoint-covered segments are purged at
  // each checkpoint.
  std::size_t journal_segment_records = 4096;

  // Sanity-checks the knob surface; returns one itemized, human-readable
  // error per nonsensical value (empty = valid).  Tool CLIs call this
  // after flag parsing and refuse to start on errors — a zero tick or a
  // negative cap otherwise surfaces as a hung stream or a silent div/0
  // far from the flag that caused it.
  std::vector<std::string> validate() const {
    std::vector<std::string> errors;
    const auto bad = [&errors](const std::string& msg) {
      errors.push_back(msg);
    };
    if (fp_max == 0) bad("fp_max must be > 0 (longest fingerprint bound)");
    if (!std::isfinite(p_rate) || p_rate <= 0.0)
      bad("p_rate must be a finite rate > 0 packets/s");
    if (!std::isfinite(t_seconds) || t_seconds <= 0.0)
      bad("t_seconds must be a finite horizon > 0 s");
    if (!std::isfinite(c1) || c1 <= 0.0)
      bad("c1 (initial context fraction) must be > 0");
    if (!std::isfinite(c2) || c2 <= 0.0)
      bad("c2 (context growth fraction) must be > 0");
    if (!std::isfinite(evidence_ratio) || evidence_ratio <= 0.0 ||
        evidence_ratio > 1.0)
      bad("evidence_ratio must be in (0, 1]");
    if (stable_growths_stop < 1) bad("stable_growths_stop must be >= 1");
    if (!std::isfinite(anchor_proximity_seconds) ||
        anchor_proximity_seconds < 0.0)
      bad("anchor_proximity_seconds must be >= 0");
    if (num_shards == 0) bad("num_shards must be >= 1");
    if (decode_arena_kb == 0) bad("decode_arena_kb must be > 0");
    if (ingest_batch == 0) bad("ingest_batch must be > 0");
    if (!std::isfinite(orphan_timeout_seconds) ||
        orphan_timeout_seconds < 0.0)
      bad("orphan_timeout_seconds must be >= 0 (0 = off)");
    if (!std::isfinite(watchdog_ms) || watchdog_ms < 0.0)
      bad("watchdog_ms must be >= 0 (0 = off)");
    if (!std::isfinite(rca_window_pad_seconds) ||
        rca_window_pad_seconds < 0.0)
      bad("rca_window_pad_seconds must be >= 0");
    if (!std::isfinite(rca_k_sigma) || rca_k_sigma <= 0.0)
      bad("rca_k_sigma must be > 0");
    if (!std::isfinite(probe_timeout_ms) || probe_timeout_ms <= 0.0)
      bad("probe_timeout_ms must be > 0");
    if (probe_retries < 0) bad("probe_retries must be >= 0");
    if (!std::isfinite(backoff_base_ms) || backoff_base_ms < 0.0)
      bad("backoff_base_ms must be >= 0");
    if (!std::isfinite(backoff_cap_ms) || backoff_cap_ms < 0.0)
      bad("backoff_cap_ms must be >= 0");
    if (breaker_open_after < 1) bad("breaker_open_after must be >= 1");
    if (flap_hysteresis < 1) bad("flap_hysteresis must be >= 1");
    if (!std::isfinite(metric_staleness_s) || metric_staleness_s < 0.0)
      bad("metric_staleness_s must be >= 0 (0 = off)");
    if (!std::isfinite(probe_budget_ms) || probe_budget_ms < 0.0)
      bad("probe_budget_ms must be >= 0 (0 = unbounded)");
    if (campaign_max_concurrent_faults == 0)
      bad("campaign_max_concurrent_faults must be >= 1");
    if (!std::isfinite(stream_tick_ms) || stream_tick_ms <= 0.0)
      bad("stream_tick_ms must be > 0 (a zero tick never advances)");
    if (stream_source_ring == 0) bad("stream_source_ring must be > 0");
    if (stream_report_cap == 0) bad("stream_report_cap must be > 0");
    if (!std::isfinite(stream_max_report_delay_s) ||
        stream_max_report_delay_s < 0.0)
      bad("stream_max_report_delay_s must be >= 0 (0 = off)");
    if (!std::isfinite(stream_metrics_retention_s) ||
        stream_metrics_retention_s < 0.0)
      bad("stream_metrics_retention_s must be >= 0 (0 = unbounded)");
    if (!std::isfinite(checkpoint_interval_s) || checkpoint_interval_s <= 0.0)
      bad("checkpoint_interval_s must be > 0");
    else if (std::isfinite(stream_tick_ms) && stream_tick_ms > 0.0 &&
             checkpoint_interval_s * 1000.0 < stream_tick_ms)
      bad("checkpoint_interval_s must be at least one stream tick "
          "(a sub-tick cadence can never fire)");
    if (checkpoint_keep == 0) bad("checkpoint_keep must be >= 1");
    if (journal_segment_records == 0)
      bad("journal_segment_records must be > 0");
    return errors;
  }

  std::size_t alpha() const {
    const auto rate_window =
        static_cast<std::size_t>(p_rate * t_seconds);
    return 2 * std::max(fp_max, rate_window);
  }
  std::size_t beta0() const {
    return std::max<std::size_t>(1,
                                 static_cast<std::size_t>(c1 * alpha()));
  }
  std::size_t delta() const {
    return std::max<std::size_t>(1,
                                 static_cast<std::size_t>(c2 * alpha()));
  }

  // How many events the sharded pipeline ingests between drains (the
  // coordinator/worker join points).  Bounded by α/4 so a pending
  // trigger's past half-window can never be evicted from the 2α dual
  // buffer before its snapshot runs, whatever the drain backlog: a trigger
  // centred at C is folded in at most one interval D after its event, the
  // snapshot spans [C−α/2, C+α/2), and ingestion can run at most D events
  // past the fold point before the next join — so D ≤ α keeps every
  // freeze inside the buffer, and α/4 leaves a 4× safety margin.  The
  // absolute cap only bounds the per-drain trigger backlog; it is *not*
  // part of the eviction-safety argument, so high-rate configs (large
  // Prate → large α) may drain as rarely as every 1024 events instead of
  // paying a join every 256.
  std::size_t drain_interval() const {
    return std::clamp<std::size_t>(alpha() / 4, 1, 1024);
  }
};

}  // namespace gretel::core
