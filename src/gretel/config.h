// Analyzer configuration (§5.3.1 and §7 "Empirical determination of
// thresholds").
//
//   α = 2 · max(FPmax, Prate · t)      sliding window size (messages)
//   β = c1 · α                          initial context buffer
//   δ = c2 · α                          context growth per iteration
//
// The paper's deployment: FPmax = 384, Prate ≈ 150 pps at 400 concurrent
// operations, t = 1 s, c1 = 0.1, c2 = 0.04 → α = 768, β₀ = 80 (they round
// c1·α up), δ = 30.
#pragma once

#include <algorithm>
#include <cstddef>

#include "gretel/matcher.h"

namespace gretel::core {

struct GretelConfig {
  std::size_t fp_max = 384;   // largest fingerprint in the database
  double p_rate = 150.0;      // observed message rate (packets per second)
  double t_seconds = 1.0;     // window time horizon
  double c1 = 0.1;            // initial context buffer fraction
  double c2 = 0.04;           // context growth fraction
  bool match_rpc = false;     // §6: prune RPC symbols from match literals
  // Exploit OpenStack correlation ids when the deployment emits them
  // (§5.3.1): the snapshot is reduced to the packets sharing the faulty
  // message's correlation id before fingerprints are matched.
  bool use_correlation_ids = true;
  MatchBackend backend = MatchBackend::SymbolSubsequence;
  // Minimum trailing literals that must be evidenced before the fault when
  // the snapshot cannot reach back to the operation's start (the Fig. 4
  // relaxation); candidates with fewer literals must show them all.
  std::size_t min_literal_suffix = 4;
  // The faulty operation is executing *at* the fault, so its most recent
  // state-change literal must have occurred within this many seconds before
  // the fault; coincidental matches scattered across the window fail this
  // anchoring requirement.
  double anchor_proximity_seconds = 2.0;
  // Operational matching keeps the candidates whose anchored backward
  // evidence (consumed literals) is within this fraction of the best
  // candidate's: the faulty operation accumulates evidence as the context
  // buffer grows while coincidental matches stay shallow.
  double evidence_ratio = 0.5;
  // Growth of the context buffer stops early once the matched set and the
  // deepest evidence have been stable for this many consecutive growths
  // (further context could only admit coincidental matches and drop θ).
  int stable_growths_stop = 5;
  // Two operational triggers for the same API closer than this many events
  // are treated as one fault (duplicate REST error relays).
  std::size_t suppress_events = 96;

  std::size_t alpha() const {
    const auto rate_window =
        static_cast<std::size_t>(p_rate * t_seconds);
    return 2 * std::max(fp_max, rate_window);
  }
  std::size_t beta0() const {
    return std::max<std::size_t>(1,
                                 static_cast<std::size_t>(c1 * alpha()));
  }
  std::size_t delta() const {
    return std::max<std::size_t>(1,
                                 static_cast<std::size_t>(c2 * alpha()));
  }
};

}  // namespace gretel::core
