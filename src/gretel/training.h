// Offline fingerprint learning (§5 "Fingerprinting operations", §7.1).
//
// "GRETEL executes OpenStack in a controlled setting": each catalog
// operation runs several times in isolation against the simulated
// deployment; the captured wire traffic is decoded, split into per-run
// traces by time window (runs are spaced so they never overlap), and folded
// through Algorithm 1 into one fingerprint per operation.  The report also
// aggregates the per-category statistics of Table 1.
#pragma once

#include <array>
#include <cstdint>
#include <set>

#include "gretel/fingerprint_db.h"
#include "stack/deployment.h"
#include "tempest/catalog.h"

namespace gretel::core {

struct CategoryTrainingStats {
  int tests = 0;
  std::set<wire::ApiId> unique_rest;
  std::set<wire::ApiId> unique_rpc;
  // Decoded network events per single execution (averaged over repeats),
  // including the periodic chatter GRETEL later prunes.
  double rest_events = 0;
  double rpc_events = 0;
  double fingerprint_size_sum = 0;          // with RPCs
  double fingerprint_size_norpc_sum = 0;    // without RPCs

  double avg_fingerprint() const {
    return tests ? fingerprint_size_sum / tests : 0.0;
  }
  double avg_fingerprint_norpc() const {
    return tests ? fingerprint_size_norpc_sum / tests : 0.0;
  }
};

struct TrainingReport {
  FingerprintDb db;
  std::array<CategoryTrainingStats, stack::kCategories> per_category;
  std::size_t fp_max = 0;
};

struct TrainingOptions {
  int repeats = 3;  // §5: re-execute each operation several times
  std::uint64_t seed = 0x7EA71E55ull;
  util::SimDuration run_gap = util::SimDuration::seconds(30);
  // Branched-fingerprint extension (the paper's limitation 6): cluster the
  // repeat traces by LCS similarity and keep one fingerprint per cluster
  // instead of intersecting branches away.  0 disables (paper behaviour).
  double branch_similarity = 0.0;
};

TrainingReport learn_fingerprints(const tempest::TempestCatalog& catalog,
                                  stack::Deployment& deployment,
                                  TrainingOptions options = TrainingOptions{});

}  // namespace gretel::core
