// JSON export of GRETEL diagnoses, for dashboards and downstream tooling.
//
// Deliberately dependency-free: GRETEL itself never parses JSON on the hot
// path (§5.3), and emitting it is a cold-path reporting concern.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "gretel/fingerprint_db.h"
#include "gretel/report.h"

namespace gretel::core {

// Escapes a string for inclusion inside a JSON string literal.
std::string json_escape(std::string_view s);

// Appends one cause as a JSON object.  Evidence quality rides along only
// when weaker than the legacy implicit Confirmed, keeping default
// documents byte-identical.  Shared by the diagnosis export below and the
// campaign report fingerprint (src/campaign/fingerprint.cpp), so both
// speak the exact same cause vocabulary.
void append_cause_json(std::string& out, const Cause& cause);

// One diagnosis as a JSON object.
std::string to_json(const Diagnosis& diagnosis,
                    const wire::ApiCatalog& catalog,
                    const FingerprintDb& db);

// A full run's diagnoses as a JSON array.
std::string to_json(std::span<const Diagnosis> diagnoses,
                    const wire::ApiCatalog& catalog,
                    const FingerprintDb& db);

}  // namespace gretel::core
