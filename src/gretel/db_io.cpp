#include "gretel/db_io.h"

#include "util/atomic_file.h"
#include "util/binio.h"
#include "util/crc32.h"

namespace gretel::core {

namespace {

// v2 (current): every section is length-prefixed and CRC-checked, so a
// flipped bit or a torn tail is detected before any record is trusted.
//   magic    "GRTFDB02"
//   meta     u32 len, u32 crc32, bytes { u64 catalog-hash, u32 count }
//   records  u32 len, u32 crc32, bytes { count × record }
//   record:  op u32, name (u16 len + bytes), sequence (u32 len + u16 each)
//
// v1 (legacy, still readable): magic "GRTFDB01", then the same hash /
// count / records laid out flat with no checksums.
constexpr std::string_view kMagicV2 = "GRTFDB02";
constexpr std::string_view kMagicV1 = "GRTFDB01";

void put_section(std::string& out, std::string_view body) {
  util::put_u32(out, static_cast<std::uint32_t>(body.size()));
  util::put_u32(out, util::crc32(body));
  out += body;
}

bool pop_section(std::string_view& in, std::string_view& body) {
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  if (!util::get_u32(in, len) || !util::get_u32(in, crc) || in.size() < len)
    return false;
  body = in.substr(0, len);
  in.remove_prefix(len);
  return util::crc32(body) == crc;
}

void encode_records(std::string& out, const FingerprintDb& db) {
  for (const auto& fp : db.all()) {
    util::put_u32(out, fp.op.value());
    util::put_u16(out, static_cast<std::uint16_t>(fp.name.size()));
    out += fp.name.substr(0, 0xFFFF);
    util::put_u32(out, static_cast<std::uint32_t>(fp.sequence.size()));
    for (auto api : fp.sequence) util::put_u16(out, api.value());
  }
}

// Shared by both format versions: the record stream after hash/count.
std::optional<FingerprintDb> decode_records(std::string_view data,
                                            std::uint32_t count,
                                            const wire::ApiCatalog& catalog) {
  FingerprintDb db;
  for (std::uint32_t i = 0; i < count; ++i) {
    Fingerprint fp;
    std::uint32_t op = 0;
    std::uint16_t name_len = 0;
    std::uint32_t seq_len = 0;
    if (!util::get_u32(data, op) || !util::get_u16(data, name_len) ||
        data.size() < name_len) {
      return std::nullopt;
    }
    fp.op = wire::OpTemplateId(op);
    fp.name = std::string(data.substr(0, name_len));
    data.remove_prefix(name_len);
    if (!util::get_u32(data, seq_len)) return std::nullopt;
    fp.sequence.reserve(seq_len);
    for (std::uint32_t k = 0; k < seq_len; ++k) {
      std::uint16_t api = 0;
      if (!util::get_u16(data, api)) return std::nullopt;
      if (api >= catalog.size()) return std::nullopt;  // foreign catalog
      fp.sequence.emplace_back(api);
    }
    // State sequences are derived data; recompute against the catalog.
    for (auto api : fp.sequence) {
      if (catalog.get(api).state_change()) fp.state_sequence.push_back(api);
    }
    db.add(std::move(fp));
  }
  if (!data.empty()) return std::nullopt;
  return db;
}

std::optional<FingerprintDb> decode_v1(std::string_view data,
                                       const wire::ApiCatalog& catalog) {
  std::uint64_t hash = 0;
  if (!util::get_u64(data, hash) || hash != catalog_hash(catalog))
    return std::nullopt;
  std::uint32_t count = 0;
  if (!util::get_u32(data, count)) return std::nullopt;
  return decode_records(data, count, catalog);
}

std::optional<FingerprintDb> decode_v2(std::string_view data,
                                       const wire::ApiCatalog& catalog) {
  std::string_view meta;
  std::string_view records;
  if (!pop_section(data, meta) || !pop_section(data, records) ||
      !data.empty()) {
    return std::nullopt;
  }
  std::uint64_t hash = 0;
  std::uint32_t count = 0;
  if (!util::get_u64(meta, hash) || hash != catalog_hash(catalog) ||
      !util::get_u32(meta, count) || !meta.empty()) {
    return std::nullopt;
  }
  return decode_records(records, count, catalog);
}

}  // namespace

std::uint64_t catalog_hash(const wire::ApiCatalog& catalog) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (const auto& api : catalog.all()) {
    for (char c : api.display_name()) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= 0x1F;
    h *= 1099511628211ull;
  }
  return h;
}

std::string encode_fingerprint_db(const FingerprintDb& db,
                                  const wire::ApiCatalog& catalog) {
  std::string out;
  out += kMagicV2;
  std::string meta;
  util::put_u64(meta, catalog_hash(catalog));
  util::put_u32(meta, static_cast<std::uint32_t>(db.size()));
  put_section(out, meta);
  std::string records;
  encode_records(records, db);
  put_section(out, records);
  return out;
}

std::optional<FingerprintDb> decode_fingerprint_db(
    std::string_view data, const wire::ApiCatalog& catalog) {
  if (data.starts_with(kMagicV2)) {
    data.remove_prefix(kMagicV2.size());
    return decode_v2(data, catalog);
  }
  if (data.starts_with(kMagicV1)) {
    data.remove_prefix(kMagicV1.size());
    return decode_v1(data, catalog);
  }
  return std::nullopt;
}

bool save_fingerprint_db(const std::string& path, const FingerprintDb& db,
                         const wire::ApiCatalog& catalog) {
  return util::write_file_atomic(path,
                                 encode_fingerprint_db(db, catalog));
}

std::optional<FingerprintDb> load_fingerprint_db(
    const std::string& path, const wire::ApiCatalog& catalog) {
  const auto data = util::read_file(path);
  if (!data) return std::nullopt;
  return decode_fingerprint_db(*data, catalog);
}

}  // namespace gretel::core
