#include "gretel/db_io.h"

#include <cstdio>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gretel::core {

namespace {

constexpr std::string_view kMagic = "GRTFDB01";

void put_u16(std::string& out, std::uint16_t v) {
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>(v & 0xFF);
}
void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xFFFF));
}
void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
}
bool get_u16(std::string_view& in, std::uint16_t& v) {
  if (in.size() < 2) return false;
  v = static_cast<std::uint16_t>(
      (static_cast<std::uint8_t>(in[0]) << 8) |
      static_cast<std::uint8_t>(in[1]));
  in.remove_prefix(2);
  return true;
}
bool get_u32(std::string_view& in, std::uint32_t& v) {
  std::uint16_t hi = 0;
  std::uint16_t lo = 0;
  if (!get_u16(in, hi) || !get_u16(in, lo)) return false;
  v = (static_cast<std::uint32_t>(hi) << 16) | lo;
  return true;
}
bool get_u64(std::string_view& in, std::uint64_t& v) {
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
  if (!get_u32(in, hi) || !get_u32(in, lo)) return false;
  v = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return true;
}

}  // namespace

std::uint64_t catalog_hash(const wire::ApiCatalog& catalog) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (const auto& api : catalog.all()) {
    for (char c : api.display_name()) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= 0x1F;
    h *= 1099511628211ull;
  }
  return h;
}

std::string encode_fingerprint_db(const FingerprintDb& db,
                                  const wire::ApiCatalog& catalog) {
  std::string out;
  out += kMagic;
  put_u64(out, catalog_hash(catalog));
  put_u32(out, static_cast<std::uint32_t>(db.size()));
  for (const auto& fp : db.all()) {
    put_u32(out, fp.op.value());
    put_u16(out, static_cast<std::uint16_t>(fp.name.size()));
    out += fp.name.substr(0, 0xFFFF);
    put_u32(out, static_cast<std::uint32_t>(fp.sequence.size()));
    for (auto api : fp.sequence) put_u16(out, api.value());
  }
  return out;
}

std::optional<FingerprintDb> decode_fingerprint_db(
    std::string_view data, const wire::ApiCatalog& catalog) {
  if (!data.starts_with(kMagic)) return std::nullopt;
  data.remove_prefix(kMagic.size());

  std::uint64_t hash = 0;
  if (!get_u64(data, hash) || hash != catalog_hash(catalog))
    return std::nullopt;

  std::uint32_t count = 0;
  if (!get_u32(data, count)) return std::nullopt;

  FingerprintDb db;
  for (std::uint32_t i = 0; i < count; ++i) {
    Fingerprint fp;
    std::uint32_t op = 0;
    std::uint16_t name_len = 0;
    std::uint32_t seq_len = 0;
    if (!get_u32(data, op) || !get_u16(data, name_len) ||
        data.size() < name_len) {
      return std::nullopt;
    }
    fp.op = wire::OpTemplateId(op);
    fp.name = std::string(data.substr(0, name_len));
    data.remove_prefix(name_len);
    if (!get_u32(data, seq_len)) return std::nullopt;
    fp.sequence.reserve(seq_len);
    for (std::uint32_t k = 0; k < seq_len; ++k) {
      std::uint16_t api = 0;
      if (!get_u16(data, api)) return std::nullopt;
      if (api >= catalog.size()) return std::nullopt;  // foreign catalog
      fp.sequence.emplace_back(api);
    }
    // State sequences are derived data; recompute against the catalog.
    for (auto api : fp.sequence) {
      if (catalog.get(api).state_change()) fp.state_sequence.push_back(api);
    }
    db.add(std::move(fp));
  }
  if (!data.empty()) return std::nullopt;
  return db;
}

bool save_fingerprint_db(const std::string& path, const FingerprintDb& db,
                         const wire::ApiCatalog& catalog) {
  const auto data = encode_fingerprint_db(db, catalog);
  // Crash-safe save: write a sibling temp file (same directory, so the
  // rename below cannot cross filesystems), flush it all the way down,
  // then atomically rename over the destination.  A crash mid-save leaves
  // either the old complete file or the new complete file — never a
  // truncated database.
  const std::string tmp = path + ".tmp";
  {
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
        std::fopen(tmp.c_str(), "wb"), &std::fclose);
    if (!f) return false;
    if (std::fwrite(data.data(), 1, data.size(), f.get()) != data.size() ||
        std::fflush(f.get()) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      return false;
    }
#if defined(__unix__) || defined(__APPLE__)
    if (fsync(fileno(f.get())) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      return false;
    }
#endif
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<FingerprintDb> load_fingerprint_db(
    const std::string& path, const wire::ApiCatalog& catalog) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return std::nullopt;
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) {
    data.append(buf, n);
  }
  return decode_fingerprint_db(data, catalog);
}

}  // namespace gretel::core
