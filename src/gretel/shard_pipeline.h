// The concurrent front half of the anomaly detector (stages 1–2 of the
// sharded analysis pipeline).
//
//                      ┌─ SpscRing<EventHeader> ─▶ shard worker 0 ─┐
//   ingestion thread ──┼─ SpscRing<EventHeader> ─▶ shard worker 1 ─┼─▶ triggers
//   (decode + route)   └─ SpscRing<EventHeader> ─▶ shard worker N ─┘  (merged
//                                                                     by seq)
//
// The ingestion (coordinator) thread assigns each event its global sequence
// number, appends the full event to the shared dual buffer, and routes its
// fixed-size header to the shard owning the event's API.  Each shard worker
// scans its substream for REST error statuses and runs the shard-local
// latency tracker / level-shift detectors; trigger candidates it discovers
// are queued for the coordinator.  drain() is the synchronization point: it
// blocks until every shard has consumed everything submitted so far, then
// hands back the accumulated triggers sorted into global stream order.
// Because APIs are partitioned (detect::LatencyShardSet) and
// request/response pairs share an API, every shard observes exactly the
// per-API substream the serial detector would, so the merged trigger
// sequence — and therefore the detection output — is invariant under the
// shard count.
//
// Hand-off cost model (see docs/PERFORMANCE.md for measurements):
//  * Rings carry wire::EventHeader, a 40-byte trivially copyable POD — the
//    hand-off never copies strings or touches the allocator across threads.
//  * Wake-ups are amortized: pushes accumulate per shard and the seq_cst
//    fence + parked-worker notify only fires once the shard's ring crosses
//    the wake threshold (or a drain / full ring forces it), instead of once
//    per submit_batch call.
//  * Workers pop in bulk (one release store per run) and commit a whole
//    run's triggers under a single mutex acquisition.
//  * The Shard control block is grouped by writer and padded to cache
//    lines, so coordinator-side counters, the worker's consumed cursor and
//    the shared parking lot never false-share.
//  * When a drain finds a worker parked with events still rung (a deferred
//    wake it never received), the coordinator claims the shard and consumes
//    the backlog inline instead of paying a wake/park round trip — on a
//    single-core host this turns the join into a function call.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "detect/shard_set.h"
#include "gretel/config.h"
#include "gretel/report.h"
#include "util/ring_buffer.h"
#include "wire/message.h"

namespace gretel::core {

// Degraded-mode behavior of the pipeline (all defaults preserve the exact
// legacy semantics: lossless backpressure, unbounded waits).
struct ResilienceOptions {
  OverflowPolicy overflow_policy = OverflowPolicy::Block;
  // Coordinator-side spill queue bound per shard, in events, used by
  // DropOldestWithAccounting before anything is dropped.  0 → ring capacity.
  std::size_t spill_capacity = 0;
  // Stall watchdog: milliseconds of *no worker progress* (consumed count
  // unchanged) after which a blocked submit drops the event with accounting
  // and a blocked drain abandons the join.  0 → unbounded waits.
  double watchdog_ms = 0.0;
  // Deferred-wake cadence, in events per shard: a parked worker is only
  // woken once this many events have accumulated in its ring since the
  // last wake.  0 → auto (ring capacity / 8, clamped to [1, 64]).  Purely
  // a throughput knob: drains publish every pending wake and a full ring
  // always wakes its worker, so no event can be stranded.
  std::size_t wake_events = 0;
};

// Per-shard liveness snapshot (coordinator thread only; see
// ShardPipeline::shard_health).  progress_age_ms is wall time since the
// shard last made progress: consumed events, or was observed with an empty
// ring (an idle shard is not a stalled shard).
struct ShardHealth {
  std::uint64_t submitted = 0;
  std::uint64_t consumed = 0;
  std::uint64_t backlog = 0;
  double progress_age_ms = 0.0;
  bool stalled = false;
};

// A trigger candidate discovered by a shard worker.  Suppression and
// snapshotting stay with the coordinator so their outcome is independent of
// worker interleaving.
struct ShardTrigger {
  std::uint64_t seq = 0;  // global sequence of the triggering event
  wire::ApiId api;
  FaultKind kind = FaultKind::Operational;
  util::SimTime ts;
  std::optional<detect::LatencyAlarm> alarm;  // performance triggers only
};

class ShardPipeline {
 public:
  // `latency` must outlive the pipeline and hold one tracker per shard;
  // shard i's worker is the sole writer of latency->shard(i) while it runs
  // (drain() may take the writer role over when the worker is parked).
  ShardPipeline(detect::LatencyShardSet* latency, std::size_t ring_capacity,
                ResilienceOptions resilience = {});
  ~ShardPipeline();

  ShardPipeline(const ShardPipeline&) = delete;
  ShardPipeline& operator=(const ShardPipeline&) = delete;

  // Coordinator thread: routes one event header (seq already assigned) to
  // its shard.  Applies backpressure — blocks while the shard's ring is
  // full — so a trigger's past α/2 window can never be evicted from the
  // dual buffer before its snapshot runs.
  void submit(const wire::EventHeader& event);
  void submit(const wire::Event& event) { submit(wire::EventHeader(event)); }

  // Coordinator thread: routes a batch of headers (seqs already assigned).
  // Semantically identical to calling submit() per element — same routing,
  // same FIFO order per shard, same backpressure — but routing is
  // precomputed (one pass classifies, then each touched ring takes its
  // whole run as one bulk push) and wake-ups follow the amortized cadence.
  void submit_batch(std::span<const wire::EventHeader> events);

  // Coordinator thread: blocks until every shard has consumed everything
  // submitted so far, then appends all triggers discovered since the last
  // drain to `out`, sorted by global sequence (ties keep per-shard
  // discovery order: one event belongs to exactly one shard).  Parked
  // workers with rung backlog are consumed inline instead of woken.
  void drain(std::vector<ShardTrigger>* out);

  // RPC error responses seen by the shard workers (quiescent: call after
  // drain()).  Serial-path parity for AnomalyDetector::Stats.
  std::uint64_t rpc_errors() const;

  std::size_t num_shards() const { return shards_.size(); }

  // Degraded-mode accounting (coordinator thread only, like submit/drain).
  // Events lost to DropOldestWithAccounting or a watchdog-abandoned submit;
  // each is a detection gap the caller should fold into its loss annotation.
  std::uint64_t overflow_dropped() const { return overflow_dropped_; }
  // Times the stall watchdog fired (submit drop, spill abandon, drain
  // abandon, or a steady-state check_stalls episode).
  std::uint64_t watchdog_trips() const { return watchdog_trips_; }

  // Steady-state stall watchdog (coordinator thread).  Historically the
  // watchdog only ran while a submit or drain was *blocked* on a shard; a
  // streaming pipeline between drains never entered those paths, so a
  // wedged worker with a part-full ring went unnoticed until the next
  // join.  check_stalls() is the tick-driven complement: it refreshes each
  // shard's last-progress clock and, with the watchdog armed, flags any
  // shard that holds backlog but has made no progress for watchdog_ms
  // (one watchdog_trips increment per stall episode; progress clears the
  // flag).  Returns the number of currently stalled shards.
  std::size_t check_stalls();

  // Per-shard liveness (coordinator thread): refreshes the progress clocks
  // the same way check_stalls does, then snapshots them.  Surfaced through
  // PipelineHealthCounters::shard_progress_age_ms.
  std::vector<ShardHealth> shard_health();

  // Test hook: wedge / un-wedge shard `idx`'s worker (it stops consuming
  // but keeps servicing shutdown).  Exercises the overflow and watchdog
  // paths without relying on scheduler luck.  A paused shard is never
  // drained inline either — the wedge wedges consumption completely.
  void debug_pause_shard(std::size_t idx, bool paused);

 private:
  // Control block per shard, grouped by writer so the hot counters never
  // share a cache line across threads:
  //  * ring cursors — already line-separated inside SpscRing;
  //  * coordinator-owned line — submitted / pending_wakes / the producer
  //    flag, written on every submit;
  //  * worker-owned line — consumed, bumped once per bulk pop;
  //  * shared parking lot — mutex, cv, flags and the trigger hand-off,
  //    only touched at wake/park/drain frequency.
  struct Shard {
    explicit Shard(std::size_t ring_capacity) : ring(ring_capacity) {}

    util::SpscRing<wire::EventHeader> ring;

    // --- coordinator-owned (submit path) ---
    alignas(64) std::uint64_t submitted = 0;  // push count
    std::uint64_t pending_wakes = 0;   // pushes since the last published wake
    char wake_marked = 0;              // scratch: in wake_list_ this batch
    std::atomic<bool> producer_waiting{false};
    // Steady-state watchdog bookkeeping (coordinator-owned, updated by
    // check_stalls/shard_health): the consumed count last seen, when it
    // last advanced (or the ring was last seen empty), and whether the
    // current stall episode has already tripped the watchdog.
    std::uint64_t seen_consumed = 0;
    std::chrono::steady_clock::time_point progress_at{};
    char stall_flagged = 0;

    // --- worker-owned hot line ---
    alignas(64) std::atomic<std::uint64_t> consumed{0};  // pop count

    // --- shared parking lot (wake/park/drain frequency) ---
    alignas(64) mutable std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;
    // Coordinator help-claim: while set, the parked worker stays parked and
    // the coordinator is the ring's consumer (set/cleared under mutex).
    bool claimed = false;
    std::atomic<bool> worker_idle{false};
    std::atomic<bool> paused{false};          // debug_pause_shard test hook
    std::vector<ShardTrigger> triggers;       // guarded by mutex
    std::uint64_t rpc_errors = 0;             // guarded by mutex

    std::thread worker;
    // Worker-local staging (no locks held while processing).
    std::vector<wire::EventHeader> pop_buf;
    std::vector<ShardTrigger> trig_buf;
  };

  void worker_loop(std::size_t shard_idx);
  // Stage-2 detection for one event: REST error scan + latency pairing, the
  // same per-event order as the serial detector.  Called by the shard
  // worker, or by the coordinator while it holds the shard's help claim.
  static void process_one(const wire::EventHeader& event,
                          detect::LatencyTracker& tracker,
                          std::vector<ShardTrigger>* triggers,
                          std::uint64_t* rpc_errors);
  // Blocks until the shard's ring accepts `event` — or, with the watchdog
  // armed, until the worker makes no progress for watchdog_ms, in which
  // case the event is dropped with accounting.  Returns whether the event
  // entered the ring; the caller still owns the submitted count.
  bool push_blocking(Shard& shard, const wire::EventHeader& event);
  // DropOldestWithAccounting admission: drains waiting spill into freed
  // ring slots (oldest first), then rings or spills `event`; past the spill
  // bound the oldest waiting event is dropped and accounted.  Never blocks.
  // Owns the submitted count for everything it rings.
  void enqueue_drop_oldest(std::size_t shard_idx,
                           const wire::EventHeader& event);
  // Pushes a shard's remaining spill into its ring ahead of a drain join,
  // waiting for worker progress as slots free up (watchdog-bounded).
  void flush_spill(std::size_t shard_idx);
  // Accounts `n` fresh pushes on shard `si`; once the accumulated count
  // crosses the wake threshold the shard is queued for the next
  // publish_wakes() (batch path) or woken immediately (per-event path).
  void note_pushes(std::size_t si, std::uint64_t n, bool defer);
  // Publishes every queued wake: one seq_cst fence covers all preceding
  // pushes, then each marked shard's parked worker is notified.
  void publish_wakes();
  // Immediate wake for a single shard (fence + parked-worker notify);
  // clears its pending-wake debt.
  void wake(Shard& shard);
  // Coordinator-side consumption of a claimed shard's ring backlog; the
  // caller must have set shard.claimed under the mutex.
  void help_consume(std::size_t shard_idx);
  // Shared body of check_stalls()/shard_health(): refreshes every shard's
  // last-progress clock and flags/unflags stall episodes.
  void refresh_progress(std::chrono::steady_clock::time_point now);

  detect::LatencyShardSet* latency_;
  ResilienceOptions resilience_;
  std::size_t spill_capacity_ = 0;  // resolved (0 in options → ring capacity)
  std::size_t wake_threshold_ = 1;  // resolved (0 in options → capacity/8)
  std::vector<std::unique_ptr<Shard>> shards_;
  // Per-shard overflow spill, oldest in front.  Coordinator-owned: the SPSC
  // ring cannot be popped from the producer side, so drop-oldest evicts
  // from here, before events are published to the worker at all.
  std::vector<std::deque<wire::EventHeader>> spill_;
  // submit_batch scratch: the routing pass gathers each shard's run here so
  // every ring is touched once per batch (capacity retained across batches).
  std::vector<std::vector<wire::EventHeader>> runs_;
  // Shards whose accumulated pushes crossed the wake threshold and owe a
  // notification at the next publish_wakes().
  std::vector<std::uint32_t> wake_list_;
  // Coordinator-side staging for help_consume.
  std::vector<wire::EventHeader> help_buf_;
  std::vector<ShardTrigger> help_trig_buf_;
  std::uint64_t overflow_dropped_ = 0;
  std::uint64_t watchdog_trips_ = 0;
};

}  // namespace gretel::core
