// The concurrent front half of the anomaly detector (stages 1–2 of the
// sharded analysis pipeline).
//
//                      ┌─ SpscRing ─▶ shard worker 0 ─┐
//   ingestion thread ──┼─ SpscRing ─▶ shard worker 1 ─┼──▶ triggers
//   (decode + route)   └─ SpscRing ─▶ shard worker N ─┘   (merged by seq)
//
// The ingestion (coordinator) thread assigns each event its global sequence
// number, appends it to the shared dual buffer, and routes a copy to the
// shard owning the event's API.  Each shard worker scans its substream for
// REST error statuses and runs the shard-local latency tracker /
// level-shift detectors; trigger candidates it discovers are queued for the
// coordinator.  drain() is the synchronization point: it blocks until every
// shard has consumed everything submitted so far, then hands back the
// accumulated triggers sorted into global stream order.  Because APIs are
// partitioned (detect::LatencyShardSet) and request/response pairs share an
// API, every shard observes exactly the per-API substream the serial
// detector would, so the merged trigger sequence — and therefore the
// detection output — is invariant under the shard count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "detect/shard_set.h"
#include "gretel/config.h"
#include "gretel/report.h"
#include "util/ring_buffer.h"
#include "wire/message.h"

namespace gretel::core {

// Degraded-mode behavior of the pipeline (all defaults preserve the exact
// legacy semantics: lossless backpressure, unbounded waits).
struct ResilienceOptions {
  OverflowPolicy overflow_policy = OverflowPolicy::Block;
  // Coordinator-side spill queue bound per shard, in events, used by
  // DropOldestWithAccounting before anything is dropped.  0 → ring capacity.
  std::size_t spill_capacity = 0;
  // Stall watchdog: milliseconds of *no worker progress* (consumed count
  // unchanged) after which a blocked submit drops the event with accounting
  // and a blocked drain abandons the join.  0 → unbounded waits.
  double watchdog_ms = 0.0;
};

// A trigger candidate discovered by a shard worker.  Suppression and
// snapshotting stay with the coordinator so their outcome is independent of
// worker interleaving.
struct ShardTrigger {
  std::uint64_t seq = 0;  // global sequence of the triggering event
  wire::ApiId api;
  FaultKind kind = FaultKind::Operational;
  util::SimTime ts;
  std::optional<detect::LatencyAlarm> alarm;  // performance triggers only
};

class ShardPipeline {
 public:
  // `latency` must outlive the pipeline and hold one tracker per shard;
  // shard i's worker is the sole writer of latency->shard(i).
  ShardPipeline(detect::LatencyShardSet* latency, std::size_t ring_capacity,
                ResilienceOptions resilience = {});
  ~ShardPipeline();

  ShardPipeline(const ShardPipeline&) = delete;
  ShardPipeline& operator=(const ShardPipeline&) = delete;

  // Coordinator thread: routes one event (seq already assigned) to its
  // shard.  Applies backpressure — blocks while the shard's ring is full —
  // so a trigger's past α/2 window can never be evicted from the dual
  // buffer before its snapshot runs.
  void submit(const wire::Event& event);

  // Coordinator thread: routes a batch of events (seqs already assigned).
  // Semantically identical to calling submit() per element — same routing,
  // same FIFO order per shard, same backpressure — but the wake-up
  // publication (seq_cst fence + idle-worker notify) is deferred to one
  // pass over the shards the batch touched, amortizing the per-event cost.
  void submit_batch(std::span<const wire::Event> events);

  // Coordinator thread: blocks until every shard has consumed everything
  // submitted so far, then appends all triggers discovered since the last
  // drain to `out`, sorted by global sequence (ties keep per-shard
  // discovery order: one event belongs to exactly one shard).
  void drain(std::vector<ShardTrigger>* out);

  // RPC error responses seen by the shard workers (quiescent: call after
  // drain()).  Serial-path parity for AnomalyDetector::Stats.
  std::uint64_t rpc_errors() const;

  std::size_t num_shards() const { return shards_.size(); }

  // Degraded-mode accounting (coordinator thread only, like submit/drain).
  // Events lost to DropOldestWithAccounting or a watchdog-abandoned submit;
  // each is a detection gap the caller should fold into its loss annotation.
  std::uint64_t overflow_dropped() const { return overflow_dropped_; }
  // Times the stall watchdog fired (submit drop, spill abandon, or drain
  // abandon).
  std::uint64_t watchdog_trips() const { return watchdog_trips_; }

  // Test hook: wedge / un-wedge shard `idx`'s worker (it stops consuming
  // but keeps servicing shutdown).  Exercises the overflow and watchdog
  // paths without relying on scheduler luck.
  void debug_pause_shard(std::size_t idx, bool paused);

 private:
  struct Shard {
    explicit Shard(std::size_t ring_capacity) : ring(ring_capacity) {}

    util::SpscRing<wire::Event> ring;
    std::uint64_t submitted = 0;  // coordinator-side push count

    mutable std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;
    std::vector<ShardTrigger> triggers;       // guarded by mutex
    std::uint64_t rpc_errors = 0;             // guarded by mutex
    std::atomic<std::uint64_t> consumed{0};   // worker-side pop count
    std::atomic<bool> producer_waiting{false};
    std::atomic<bool> worker_idle{false};
    std::atomic<bool> paused{false};          // debug_pause_shard test hook

    std::thread worker;
  };

  void worker_loop(std::size_t shard_idx);
  // Blocks until the shard's ring accepts `event` — or, with the watchdog
  // armed, until the worker makes no progress for watchdog_ms, in which
  // case the event is dropped with accounting.  Returns whether the event
  // entered the ring; the caller still owns the submitted count and the
  // wake-up publication.
  bool push_blocking(Shard& shard, const wire::Event& event);
  // DropOldestWithAccounting admission: drains waiting spill into freed
  // ring slots (oldest first), then rings or spills `event`; past the spill
  // bound the oldest waiting event is dropped and accounted.  Never blocks.
  // Owns the submitted count for everything it rings.
  void enqueue_drop_oldest(std::size_t shard_idx, const wire::Event& event);
  // Pushes a shard's remaining spill into its ring ahead of a drain join,
  // waiting for worker progress as slots free up (watchdog-bounded).
  void flush_spill(std::size_t shard_idx);
  // Publishes all pushes since the last call (one seq_cst fence) and wakes
  // every touched shard whose worker parked.  Clears the touched flags.
  void flush_wakes();
  // Post-push wake for a single shard (fence + parked-worker notify).
  void wake(Shard& shard);

  detect::LatencyShardSet* latency_;
  ResilienceOptions resilience_;
  std::size_t spill_capacity_ = 0;  // resolved (0 in options → ring capacity)
  std::vector<std::unique_ptr<Shard>> shards_;
  // Per-shard overflow spill, oldest in front.  Coordinator-owned: the SPSC
  // ring cannot be popped from the producer side, so drop-oldest evicts
  // from here, before events are published to the worker at all.
  std::vector<std::deque<wire::Event>> spill_;
  std::vector<char> touched_;  // submit_batch scratch: shards pushed to
  std::uint64_t overflow_dropped_ = 0;
  std::uint64_t watchdog_trips_ = 0;
};

}  // namespace gretel::core
