// The concurrent front half of the anomaly detector (stages 1–2 of the
// sharded analysis pipeline).
//
//                      ┌─ SpscRing ─▶ shard worker 0 ─┐
//   ingestion thread ──┼─ SpscRing ─▶ shard worker 1 ─┼──▶ triggers
//   (decode + route)   └─ SpscRing ─▶ shard worker N ─┘   (merged by seq)
//
// The ingestion (coordinator) thread assigns each event its global sequence
// number, appends it to the shared dual buffer, and routes a copy to the
// shard owning the event's API.  Each shard worker scans its substream for
// REST error statuses and runs the shard-local latency tracker /
// level-shift detectors; trigger candidates it discovers are queued for the
// coordinator.  drain() is the synchronization point: it blocks until every
// shard has consumed everything submitted so far, then hands back the
// accumulated triggers sorted into global stream order.  Because APIs are
// partitioned (detect::LatencyShardSet) and request/response pairs share an
// API, every shard observes exactly the per-API substream the serial
// detector would, so the merged trigger sequence — and therefore the
// detection output — is invariant under the shard count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "detect/shard_set.h"
#include "gretel/report.h"
#include "util/ring_buffer.h"
#include "wire/message.h"

namespace gretel::core {

// A trigger candidate discovered by a shard worker.  Suppression and
// snapshotting stay with the coordinator so their outcome is independent of
// worker interleaving.
struct ShardTrigger {
  std::uint64_t seq = 0;  // global sequence of the triggering event
  wire::ApiId api;
  FaultKind kind = FaultKind::Operational;
  util::SimTime ts;
  std::optional<detect::LatencyAlarm> alarm;  // performance triggers only
};

class ShardPipeline {
 public:
  // `latency` must outlive the pipeline and hold one tracker per shard;
  // shard i's worker is the sole writer of latency->shard(i).
  ShardPipeline(detect::LatencyShardSet* latency, std::size_t ring_capacity);
  ~ShardPipeline();

  ShardPipeline(const ShardPipeline&) = delete;
  ShardPipeline& operator=(const ShardPipeline&) = delete;

  // Coordinator thread: routes one event (seq already assigned) to its
  // shard.  Applies backpressure — blocks while the shard's ring is full —
  // so a trigger's past α/2 window can never be evicted from the dual
  // buffer before its snapshot runs.
  void submit(const wire::Event& event);

  // Coordinator thread: routes a batch of events (seqs already assigned).
  // Semantically identical to calling submit() per element — same routing,
  // same FIFO order per shard, same backpressure — but the wake-up
  // publication (seq_cst fence + idle-worker notify) is deferred to one
  // pass over the shards the batch touched, amortizing the per-event cost.
  void submit_batch(std::span<const wire::Event> events);

  // Coordinator thread: blocks until every shard has consumed everything
  // submitted so far, then appends all triggers discovered since the last
  // drain to `out`, sorted by global sequence (ties keep per-shard
  // discovery order: one event belongs to exactly one shard).
  void drain(std::vector<ShardTrigger>* out);

  // RPC error responses seen by the shard workers (quiescent: call after
  // drain()).  Serial-path parity for AnomalyDetector::Stats.
  std::uint64_t rpc_errors() const;

  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    explicit Shard(std::size_t ring_capacity) : ring(ring_capacity) {}

    util::SpscRing<wire::Event> ring;
    std::uint64_t submitted = 0;  // coordinator-side push count

    mutable std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;
    std::vector<ShardTrigger> triggers;       // guarded by mutex
    std::uint64_t rpc_errors = 0;             // guarded by mutex
    std::atomic<std::uint64_t> consumed{0};   // worker-side pop count
    std::atomic<bool> producer_waiting{false};
    std::atomic<bool> worker_idle{false};

    std::thread worker;
  };

  void worker_loop(std::size_t shard_idx);
  // Blocks until the shard's ring accepts `event`; the caller still owns
  // the submitted count and the wake-up publication.
  void push_blocking(Shard& shard, const wire::Event& event);
  // Publishes all pushes since the last call (one seq_cst fence) and wakes
  // every touched shard whose worker parked.  Clears the touched flags.
  void flush_wakes();

  detect::LatencyShardSet* latency_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<char> touched_;  // submit_batch scratch: shards pushed to
};

}  // namespace gretel::core
