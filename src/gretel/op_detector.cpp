#include "gretel/op_detector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "util/simd.h"

namespace gretel::core {

OperationDetector::OperationDetector(const FingerprintDb* db,
                                     const wire::ApiCatalog* catalog,
                                     const GretelConfig& config)
    : db_(db),
      catalog_(catalog),
      config_(config),
      matcher_(catalog, {config.match_rpc, config.backend}),
      variants_(*db, matcher_) {
  assert(db_ && catalog_);
}

double OperationDetector::theta(std::size_t n) const {
  const auto N = db_->size();
  if (N <= 1) return n <= 1 ? 1.0 : 0.0;
  if (n == 0) return 0.0;  // nothing matched: no information
  return static_cast<double>(N - n) / static_cast<double>(N - 1);
}

namespace {

// Backward evidence for operational faults.  The faulty operation aborted
// at the fault, so all its evidence lies before it: consume the literal
// list right-to-left starting at the fault position.  Each literal jumps
// straight to its last occurrence below the previous consumption point
// (simd::find_last_eq_u16) — equivalent to the one-symbol-per-iteration
// backward walk, which greedily consumed each literal at its rightmost
// eligible position.  Returns the number of consumed literals, or 0 when
//  * the literal closest to the fault is farther than `proximity_s` seconds
//    from it (the failed operation was executing right there, coincidental
//    matches are scattered), or
//  * fewer than min(min_suffix, |literals|) literals are evidenced —
//    literals older than the window are excused (Fig. 4), a near-empty
//    match is not.
std::size_t backward_evidence(std::span<const wire::ApiId> literals,
                              const std::uint16_t* symbols, std::size_t n,
                              std::span<const double> snapshot_ts,
                              std::size_t fault_pos, double fault_ts,
                              std::size_t min_suffix, double proximity_s) {
  if (literals.empty() || n == 0) return 0;
  std::size_t i = literals.size();
  std::size_t end = std::min(fault_pos, n - 1) + 1;  // exclusive bound
  while (i > 0 && end > 0) {
    const auto pos =
        simd::find_last_eq_u16(symbols, end, literals[i - 1].value());
    if (pos == simd::npos) break;
    if (i == literals.size() && fault_ts - snapshot_ts[pos] > proximity_s) {
      return 0;  // not anchored at the fault
    }
    --i;
    end = pos;
  }
  const std::size_t consumed = literals.size() - i;
  if (consumed < std::min(min_suffix, literals.size())) return 0;
  return consumed;
}

// Candidates below this count are scored inline: the fork-join handshake
// costs more than the scoring itself.
constexpr std::size_t kMinParallelCandidates = 4;

}  // namespace

DetectionResult OperationDetector::detect(
    std::span<const wire::Event> window, const WindowColumns& cols,
    std::size_t fault_index, wire::ApiId offending, bool truncate,
    util::ThreadPool* match_pool) const {
  assert(cols.size() == window.size());
  DetectionResult result;

  // Candidate fingerprints containing the offending API (inverted index).
  const auto& candidate_idx = db_->containing(offending);
  result.candidates = candidate_idx.size();
  if (candidate_idx.empty()) return result;

  // When the deployment emits correlation ids and the faulty message
  // carries one, the snapshot reduces to the packets of that operation
  // alone — "reducing the number of packets against which a fingerprint is
  // matched" (§5.3.1).
  const std::uint32_t fault_corr =
      config_.use_correlation_ids
          ? cols.corr[std::min(fault_index, cols.size() - 1)]
          : 0;

  // Request-side API sequence of the window with timestamps, plus the
  // original event index so β (measured in messages) maps onto it.  Read
  // from the columnar view: the filter touches only the req/corr columns
  // and the kept rows copy out of dense arrays.
  std::vector<wire::ApiId> apis;
  std::vector<double> api_ts;
  std::vector<std::size_t> event_index;
  apis.reserve(cols.size() / 2);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (!cols.req[i]) continue;
    if (fault_corr != 0 && cols.corr[i] != fault_corr) continue;
    apis.push_back(wire::ApiId(cols.api[i]));
    api_ts.push_back(cols.ts_s[i]);
    event_index.push_back(i);
  }
  if (apis.empty()) return result;
  const std::uint16_t* symbols =
      symbol_data(std::span<const wire::ApiId>(apis));

  // The offending API may occur several times inside a fingerprint and the
  // detector cannot know which occurrence failed, so each occurrence's
  // truncated prefix is a separate literal variant to try (they are
  // prefixes of one another; only distinct lengths are kept).  All variants
  // were precomputed at load time (VariantCache); candidates here are just
  // borrowed spans — operational faults probe the truncated prefixes,
  // performance faults the whole fingerprint, which runs to completion and
  // is matched against the entire context buffer (§5.3.1).
  //
  // Presence-fingerprint prefilter: a candidate whose sequence shares no
  // symbol with the window's request-side symbols can never produce
  // evidence in any β slice — one AND of 64-bit masks discards it before
  // any scan.  The filter is conservative (collisions only admit extras),
  // so the matched set is unchanged.  The regex ablation backend skips the
  // mask gates entirely so its measured cost stays the backend's own.
  struct Candidate {
    FingerprintDb::Index index;
    std::span<const std::vector<wire::ApiId>> variants;
    std::span<const std::uint64_t> masks;  // parallel to variants
    std::uint64_t any_mask = 0;            // OR of masks
  };
  const bool mask_gate = config_.backend != MatchBackend::StdRegex;
  const std::uint64_t window_mask =
      simd::presence_mask_u16(symbols, apis.size());
  std::vector<Candidate> candidates;
  candidates.reserve(candidate_idx.size());
  for (auto idx : candidate_idx) {
    if (mask_gate && (db_->sequence_mask(idx) & window_mask) == 0) continue;
    Candidate c;
    c.index = idx;
    c.variants = truncate ? variants_.truncated(idx, offending)
                          : variants_.full(idx, offending);
    c.masks = truncate ? variants_.truncated_masks(idx, offending)
                       : variants_.full_masks(idx, offending);
    for (auto m : c.masks) c.any_mask |= m;
    candidates.push_back(c);
  }
  // Even with every candidate gated out, the β loop still runs to its
  // usual stopping point so beta_final/theta report exactly as before.

  // The fault's position in request coordinates: the last request at or
  // before the faulty message (typically the offending request itself).
  const auto fault_req_it = std::upper_bound(event_index.begin(),
                                             event_index.end(), fault_index);
  const std::size_t fault_req_pos =
      fault_req_it == event_index.begin()
          ? 0
          : static_cast<std::size_t>(fault_req_it - event_index.begin()) - 1;
  const double fault_ts = cols.ts_s[std::min(fault_index, cols.size() - 1)];

  const std::size_t alpha = config_.alpha();
  std::size_t beta = config_.beta0();
  const std::size_t delta = config_.delta();

  std::vector<FingerprintDb::Index> prev_matched;
  std::size_t prev_best = 0;
  int stable_iterations = 0;

  while (true) {
    // Slice of the window within β messages around the fault.  Operational
    // faults look backward only — the aborted operation produced nothing
    // after the error; performance faults use both sides of the buffer.
    const std::size_t lo_ev = fault_index > beta ? fault_index - beta : 0;
    const std::size_t hi_ev =
        truncate ? std::min(fault_index + 1, window.size())
                 : std::min(fault_index + beta + 1, window.size());
    const auto lo_it = std::lower_bound(event_index.begin(),
                                        event_index.end(), lo_ev);
    const auto hi_it = std::lower_bound(event_index.begin(),
                                        event_index.end(), hi_ev);
    const auto lo = static_cast<std::size_t>(lo_it - event_index.begin());
    const auto hi = static_cast<std::size_t>(hi_it - event_index.begin());
    const std::span<const wire::ApiId> snapshot(apis.data() + lo, hi - lo);
    const std::span<const double> snapshot_ts(api_ts.data() + lo, hi - lo);
    const std::size_t fault_in_slice =
        fault_req_pos > lo ? fault_req_pos - lo : 0;
    // Symbol-presence fingerprint of this slice, for the per-candidate and
    // per-variant mask gates below.
    const std::uint64_t snap_mask =
        mask_gate ? simd::presence_mask_u16(symbols + lo, hi - lo) : ~0ull;

    // Evidence per candidate; the matched set keeps those whose evidence is
    // within evidence_ratio of the deepest candidate's, plus every
    // candidate with a *complete* variant — the entire truncated prefix in
    // the window is conclusive no matter how short it is (an early-step
    // fault has little history by definition).
    std::vector<FingerprintDb::Index> matched;
    std::size_t best = 0;
    const bool fan_out = match_pool && match_pool->size() > 0 &&
                         candidates.size() >= kMinParallelCandidates;
    if (truncate && config_.backend != MatchBackend::StdRegex) {
      // Each worker owns slot ci; the reduction below is serial, so the
      // matched set is identical with or without the pool.
      std::vector<std::size_t> evidence(candidates.size(), 0);
      std::vector<char> complete(candidates.size(), 0);
      const auto score = [&](std::size_t ci) {
        // No symbol shared with the slice ⟹ every variant consumes zero
        // literals; skip the candidate with one AND.
        if ((candidates[ci].any_mask & snap_mask) == 0) return;
        for (std::size_t vi = 0; vi < candidates[ci].variants.size(); ++vi) {
          if ((candidates[ci].masks[vi] & snap_mask) == 0) continue;
          const auto& literals = candidates[ci].variants[vi];
          const auto consumed = backward_evidence(
              literals, symbols + lo, hi - lo, snapshot_ts, fault_in_slice,
              fault_ts, config_.min_literal_suffix,
              config_.anchor_proximity_seconds);
          evidence[ci] = std::max(evidence[ci], consumed);
          // Completeness is only conclusive with enough literals behind it;
          // trivially-short prefixes must clear the depth cutoff instead.
          if (consumed >= config_.min_literal_suffix &&
              consumed == literals.size()) {
            complete[ci] = 1;
          }
        }
      };
      if (fan_out) {
        match_pool->parallel_for(candidates.size(), score);
      } else {
        for (std::size_t ci = 0; ci < candidates.size(); ++ci) score(ci);
      }
      for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
        best = std::max(best, evidence[ci]);
      }
      const auto cutoff = static_cast<std::size_t>(
          std::ceil(config_.evidence_ratio * static_cast<double>(best)));
      for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
        if (complete[ci] || (evidence[ci] > 0 && evidence[ci] >= cutoff))
          matched.push_back(candidates[ci].index);
      }
    } else {
      // Performance faults and the regex ablation backend: forward match
      // over the slice.
      std::vector<char> hit(candidates.size(), 0);
      const auto score = [&](std::size_t ci) {
        for (std::size_t vi = 0; vi < candidates[ci].variants.size(); ++vi) {
          // A forward match needs *every* literal present: a variant with a
          // presence bit outside the slice's mask cannot match.
          if (mask_gate && (candidates[ci].masks[vi] & ~snap_mask) != 0)
            continue;
          if (matcher_.matches(candidates[ci].variants[vi], snapshot)) {
            hit[ci] = 1;
            break;
          }
        }
      };
      if (fan_out) {
        match_pool->parallel_for(candidates.size(), score);
      } else {
        for (std::size_t ci = 0; ci < candidates.size(); ++ci) score(ci);
      }
      for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
        if (hit[ci]) matched.push_back(candidates[ci].index);
      }
      best = matched.size();
    }

    // Stop growing once the context stops adding information: the matched
    // set and the deepest evidence unchanged across two growths.  Growing
    // further can only admit coincidental matches and drop precision —
    // this is where §5.3.1's "stop as soon as θ drops" lands under
    // evidence-ranked matching (θ would only fall from here).
    if (!matched.empty() && matched == prev_matched && best == prev_best) {
      if (++stable_iterations >= config_.stable_growths_stop) {
        result.matched = std::move(matched);
        result.beta_final = beta;
        result.theta = theta(result.matched.size());
        return result;
      }
    } else {
      stable_iterations = 0;
    }

    const bool window_covered =
        (lo_ev == 0 || fault_index - lo_ev >= alpha / 2) &&
        (truncate || hi_ev == window.size() ||
         hi_ev - fault_index > alpha / 2);
    if (window_covered) {
      result.matched = std::move(matched);
      result.beta_final = beta;
      result.theta = theta(result.matched.size());
      return result;
    }

    prev_matched = std::move(matched);
    prev_best = best;
    beta += delta;
  }
}

}  // namespace gretel::core
