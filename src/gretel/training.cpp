#include "gretel/training.h"

#include "gretel/fingerprint.h"
#include "gretel/noise_filter.h"
#include "net/capture.h"
#include "stack/workflow.h"
#include "tempest/workload.h"

namespace gretel::core {

TrainingReport learn_fingerprints(const tempest::TempestCatalog& catalog,
                                  stack::Deployment& deployment,
                                  TrainingOptions options) {
  TrainingReport report;
  const auto& apis = catalog.apis();

  NoiseFilter filter(&apis);
  FingerprintGenerator generator(&apis, &filter);
  net::CaptureTap tap(&apis, deployment.service_by_port());

  for (std::size_t op_idx = 0; op_idx < catalog.operations().size();
       ++op_idx) {
    const auto& op = catalog.operation(op_idx);
    const auto ci = static_cast<std::size_t>(op.category);
    auto& stats = report.per_category[ci];

    // Isolated, non-overlapping executions of this one operation.
    const auto launches =
        tempest::make_isolated_runs(catalog, op_idx, options.repeats,
                                    options.run_gap);
    stack::WorkflowExecutor executor(&deployment, &apis, &catalog.infra(),
                                     options.seed ^ (op_idx * 0x9E37ull));
    const auto records = executor.execute(launches);

    // Split decoded events into one trace per run by time window.
    std::vector<std::vector<wire::Event>> traces(
        static_cast<std::size_t>(options.repeats));
    std::uint64_t rest_events = 0;
    std::uint64_t rpc_events = 0;
    for (const auto& rec : records) {
      const auto event = tap.decode(rec);
      if (!event) continue;
      if (event->kind == wire::ApiKind::Rest) {
        ++rest_events;
        stats.unique_rest.insert(event->api);
      } else {
        ++rpc_events;
        stats.unique_rpc.insert(event->api);
      }
      const auto run = static_cast<std::size_t>(
          (rec.ts - launches.front().start).count() /
          options.run_gap.count());
      if (run < traces.size()) traces[run].push_back(*event);
    }

    if (options.branch_similarity > 0.0) {
      // Branched learning: one fingerprint per trace cluster (all carrying
      // this operation's id); the stats count the first branch so the
      // Table-1 characterization stays comparable.
      std::vector<std::vector<wire::ApiId>> api_traces;
      for (const auto& events : traces) {
        std::vector<wire::ApiId> trace;
        for (const auto& ev : events) {
          if (ev.is_request()) trace.push_back(ev.api);
        }
        api_traces.push_back(std::move(trace));
      }
      auto branches = generator.from_traces_branched(
          op.id, op.name, std::move(api_traces), options.branch_similarity);
      stats.fingerprint_size_sum +=
          static_cast<double>(branches.front().size());
      stats.fingerprint_size_norpc_sum +=
          static_cast<double>(branches.front().size_without_rpc(apis));
      for (auto& fp : branches) report.db.add(std::move(fp));
    } else {
      auto fp = generator.from_event_traces(op.id, op.name, traces);
      stats.fingerprint_size_sum += static_cast<double>(fp.size());
      stats.fingerprint_size_norpc_sum +=
          static_cast<double>(fp.size_without_rpc(apis));
      report.db.add(std::move(fp));
    }
    stats.rest_events +=
        static_cast<double>(rest_events) / options.repeats;
    stats.rpc_events += static_cast<double>(rpc_events) / options.repeats;
    ++stats.tests;
  }

  report.fp_max = report.db.max_fingerprint_size();
  return report;
}

}  // namespace gretel::core
