// Fingerprint database persistence: train once, deploy everywhere.
//
// §7.1: "GRETEL's fingerprint generation is an offline process since these
// fingerprints are independent of the scale of the deployment."  This
// module serializes a trained FingerprintDb so the analyzer can load it in
// production without re-running the characterization.  The file embeds a
// hash of the API catalog it was trained against; loading against a
// different catalog fails instead of mismatching symbols.
//
// Format (integers big-endian):
//   magic   "GRTFDB02"
//   meta    u32 len, u32 crc32, body { hash u64 (FNV-1a over every catalog
//           API's display name), count u32 }
//   records u32 len, u32 crc32, body { count × record }
//   record  op u32, name (u16 len + bytes), sequence (u32 len + u16 each)
//
// Every section carries its own CRC32, so truncation or bit flips anywhere
// in the file are detected before any record is trusted — the loader never
// crashes and never returns a silently-wrong DB.  The legacy flat
// "GRTFDB01" layout (no CRCs) is still read.  Writes are atomic
// (tmp + fsync + rename).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "gretel/fingerprint_db.h"

namespace gretel::core {

// Stable hash of the catalog's API surface.
std::uint64_t catalog_hash(const wire::ApiCatalog& catalog);

std::string encode_fingerprint_db(const FingerprintDb& db,
                                  const wire::ApiCatalog& catalog);

// Strict: nullopt on bad magic, catalog-hash mismatch, truncation, out-of-
// range API ids, or trailing garbage.  State sequences are recomputed from
// the catalog.
std::optional<FingerprintDb> decode_fingerprint_db(
    std::string_view data, const wire::ApiCatalog& catalog);

bool save_fingerprint_db(const std::string& path, const FingerprintDb& db,
                         const wire::ApiCatalog& catalog);
std::optional<FingerprintDb> load_fingerprint_db(
    const std::string& path, const wire::ApiCatalog& catalog);

}  // namespace gretel::core
