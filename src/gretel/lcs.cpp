#include "gretel/lcs.h"

#include <algorithm>

namespace gretel::core {

std::vector<wire::ApiId> longest_common_subsequence(
    std::span<const wire::ApiId> a, std::span<const wire::ApiId> b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return {};

  // dp is (n+1) x (m+1), row-major.
  std::vector<std::uint32_t> dp((n + 1) * (m + 1), 0);
  const auto at = [m](std::size_t i, std::size_t j) {
    return i * (m + 1) + j;
  };

  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) {
        dp[at(i, j)] = dp[at(i - 1, j - 1)] + 1;
      } else {
        dp[at(i, j)] = std::max(dp[at(i - 1, j)], dp[at(i, j - 1)]);
      }
    }
  }

  std::vector<wire::ApiId> out;
  out.reserve(dp[at(n, m)]);
  std::size_t i = n;
  std::size_t j = m;
  while (i > 0 && j > 0) {
    if (a[i - 1] == b[j - 1]) {
      out.push_back(a[i - 1]);
      --i;
      --j;
    } else if (dp[at(i - 1, j)] >= dp[at(i, j - 1)]) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace gretel::core
