#include "gretel/shard_pipeline.h"

#include <algorithm>
#include <chrono>

namespace gretel::core {

ShardPipeline::ShardPipeline(detect::LatencyShardSet* latency,
                             std::size_t ring_capacity)
    : latency_(latency) {
  shards_.reserve(latency_->num_shards());
  for (std::size_t i = 0; i < latency_->num_shards(); ++i) {
    shards_.push_back(std::make_unique<Shard>(ring_capacity));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
}

ShardPipeline::~ShardPipeline() {
  for (auto& sp : shards_) {
    {
      std::lock_guard<std::mutex> lock(sp->mutex);
      sp->stop = true;
    }
    sp->cv.notify_all();
  }
  for (auto& sp : shards_) sp->worker.join();
}

void ShardPipeline::push_blocking(Shard& shard, const wire::Event& event) {
  if (shard.ring.try_push(event)) return;
  // Ring full: the worker is behind.  Park until it makes room; the
  // worker notifies after every pop while producer_waiting is set, and
  // the timeout guards the notify/wait race without spinning.
  shard.producer_waiting.store(true, std::memory_order_relaxed);
  for (;;) {
    if (shard.ring.try_push(event)) break;
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.cv.wait_for(lock, std::chrono::microseconds(100));
  }
  shard.producer_waiting.store(false, std::memory_order_relaxed);
}

void ShardPipeline::submit(const wire::Event& event) {
  auto& shard = *shards_[latency_->shard_of(event.api)];
  push_blocking(shard, event);
  ++shard.submitted;
  // Wake the worker if it parked on an empty ring.  The fence pairs with
  // the one in worker_loop: either this thread observes worker_idle and
  // notifies, or the worker observes the pushed element and never sleeps —
  // the store-buffering outcome where both miss is excluded.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.worker_idle.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cv.notify_all();
  }
}

void ShardPipeline::submit_batch(std::span<const wire::Event> events) {
  if (events.empty()) return;
  if (touched_.size() != shards_.size()) touched_.assign(shards_.size(), 0);
  bool any_touched = false;
  for (const auto& event : events) {
    const auto si = latency_->shard_of(event.api);
    auto& shard = *shards_[si];
    if (!shard.ring.try_push(event)) {
      // This ring is full, so we are about to block on its worker.  First
      // publish and wake everything pushed so far: a worker parked before
      // this batch would otherwise sleep on pending work while we wait
      // here, and the full ring's own worker may have been parked too.
      if (any_touched) {
        flush_wakes();
        any_touched = false;
      }
      push_blocking(shard, event);
    }
    ++shard.submitted;
    if (!touched_[si]) {
      touched_[si] = 1;
      any_touched = true;
    }
  }
  if (any_touched) flush_wakes();
}

void ShardPipeline::flush_wakes() {
  // One trailing fence covers every preceding push: for each touched
  // shard, either this thread observes worker_idle and notifies, or the
  // worker's fenced empty-check observes the pushed elements (the same
  // store-buffering exclusion as submit(), amortized over the batch).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!touched_[i]) continue;
    touched_[i] = 0;
    auto& shard = *shards_[i];
    if (shard.worker_idle.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.cv.notify_all();
    }
  }
}

void ShardPipeline::worker_loop(std::size_t shard_idx) {
  auto& shard = *shards_[shard_idx];
  auto& tracker = latency_->shard(shard_idx);
  wire::Event event;
  for (;;) {
    if (shard.ring.try_pop(event)) {
      if (shard.producer_waiting.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.cv.notify_all();
      }

      // Stage 2: shard-local anomaly detection.  Operational scan first,
      // then the latency pairing — the same per-event order as the serial
      // detector, preserved through the seq-stable trigger merge.
      const bool rest_error =
          event.is_error() && event.kind == wire::ApiKind::Rest;
      const bool rpc_error = event.is_error() && !rest_error;
      const auto alarm = tracker.observe(event);
      if (rest_error || rpc_error || alarm) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (rest_error) {
          shard.triggers.push_back({event.seq, event.api,
                                    FaultKind::Operational, event.ts,
                                    std::nullopt});
        }
        if (rpc_error) ++shard.rpc_errors;
        if (alarm) {
          shard.triggers.push_back({event.seq, alarm->api,
                                    FaultKind::Performance, event.ts, alarm});
        }
      }
      shard.consumed.fetch_add(1, std::memory_order_release);
      continue;
    }

    // Ring empty: we are caught up.  Tell any drain() waiter, then park
    // until more work or shutdown.  Fence as in submit(): the predicate's
    // first evaluation happens after the idle flag is published.
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.worker_idle.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    shard.cv.notify_all();
    shard.cv.wait(lock, [&] { return shard.stop || !shard.ring.empty(); });
    shard.worker_idle.store(false, std::memory_order_relaxed);
    if (shard.stop && shard.ring.empty()) return;
  }
}

void ShardPipeline::drain(std::vector<ShardTrigger>* out) {
  const auto base = static_cast<std::ptrdiff_t>(out->size());
  for (auto& sp : shards_) {
    auto& shard = *sp;
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.cv.wait(lock, [&] {
      return shard.consumed.load(std::memory_order_acquire) ==
             shard.submitted;
    });
    out->insert(out->end(),
                std::make_move_iterator(shard.triggers.begin()),
                std::make_move_iterator(shard.triggers.end()));
    shard.triggers.clear();
  }
  // Global stream order.  One event lives on exactly one shard, so equal
  // seqs only arise within a shard (operational + performance from the same
  // event); stable sort keeps that pair's discovery order.
  std::stable_sort(out->begin() + base, out->end(),
                   [](const ShardTrigger& a, const ShardTrigger& b) {
                     return a.seq < b.seq;
                   });
}

std::uint64_t ShardPipeline::rpc_errors() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total += sp->rpc_errors;
  }
  return total;
}

}  // namespace gretel::core
