#include "gretel/shard_pipeline.h"

#include <algorithm>
#include <chrono>

namespace gretel::core {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration watchdog_duration(double watchdog_ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(watchdog_ms));
}

}  // namespace

ShardPipeline::ShardPipeline(detect::LatencyShardSet* latency,
                             std::size_t ring_capacity,
                             ResilienceOptions resilience)
    : latency_(latency),
      resilience_(resilience),
      spill_capacity_(resilience.spill_capacity == 0 ? ring_capacity
                                                     : resilience.spill_capacity),
      spill_(latency->num_shards()) {
  shards_.reserve(latency_->num_shards());
  for (std::size_t i = 0; i < latency_->num_shards(); ++i) {
    shards_.push_back(std::make_unique<Shard>(ring_capacity));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
}

ShardPipeline::~ShardPipeline() {
  for (auto& sp : shards_) {
    {
      std::lock_guard<std::mutex> lock(sp->mutex);
      sp->stop = true;
    }
    sp->cv.notify_all();
  }
  for (auto& sp : shards_) sp->worker.join();
}

void ShardPipeline::debug_pause_shard(std::size_t idx, bool paused) {
  auto& shard = *shards_[idx];
  shard.paused.store(paused, std::memory_order_release);
  if (!paused) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cv.notify_all();
  }
}

void ShardPipeline::wake(Shard& shard) {
  // Fence pairs with the one in worker_loop: either this thread observes
  // worker_idle and notifies, or the worker observes the pushed element and
  // never sleeps — the store-buffering outcome where both miss is excluded.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.worker_idle.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cv.notify_all();
  }
}

bool ShardPipeline::push_blocking(Shard& shard, const wire::Event& event) {
  if (shard.ring.try_push(event)) return true;
  // Ring full: the worker is behind.  Park until it makes room; the
  // worker notifies after every pop while producer_waiting is set, and
  // the timeout guards the notify/wait race without spinning.
  shard.producer_waiting.store(true, std::memory_order_relaxed);
  const bool watchdog = resilience_.watchdog_ms > 0.0;
  const auto grace = watchdog_duration(resilience_.watchdog_ms);
  auto last_consumed = shard.consumed.load(std::memory_order_acquire);
  auto deadline = Clock::now() + grace;
  bool pushed = false;
  for (;;) {
    if (shard.ring.try_push(event)) {
      pushed = true;
      break;
    }
    if (watchdog) {
      const auto consumed = shard.consumed.load(std::memory_order_acquire);
      if (consumed != last_consumed) {
        // Slow but alive: progress resets the clock, so the watchdog only
        // ever fires on a genuinely wedged worker.
        last_consumed = consumed;
        deadline = Clock::now() + grace;
      } else if (Clock::now() >= deadline) {
        ++watchdog_trips_;
        ++overflow_dropped_;  // the event never enters the ring
        break;
      }
    }
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.cv.wait_for(lock, std::chrono::microseconds(100));
  }
  shard.producer_waiting.store(false, std::memory_order_relaxed);
  return pushed;
}

void ShardPipeline::enqueue_drop_oldest(std::size_t shard_idx,
                                        const wire::Event& event) {
  auto& shard = *shards_[shard_idx];
  auto& spill = spill_[shard_idx];
  // FIFO order per shard is part of the determinism contract, so waiting
  // spill always enters the ring ahead of the new event.
  while (!spill.empty() && shard.ring.try_push(spill.front())) {
    spill.pop_front();
    ++shard.submitted;
  }
  if (spill.empty() && shard.ring.try_push(event)) {
    ++shard.submitted;
    return;
  }
  spill.push_back(event);
  if (spill.size() > spill_capacity_) {
    // Ring and spill both full: shed the *oldest* waiting event — its
    // detection value decays fastest — and account the gap.
    spill.pop_front();
    ++overflow_dropped_;
  }
}

void ShardPipeline::submit(const wire::Event& event) {
  const auto si = latency_->shard_of(event.api);
  auto& shard = *shards_[si];
  if (resilience_.overflow_policy == OverflowPolicy::DropOldestWithAccounting) {
    enqueue_drop_oldest(si, event);
  } else if (push_blocking(shard, event)) {
    ++shard.submitted;
  }
  wake(shard);
}

void ShardPipeline::submit_batch(std::span<const wire::Event> events) {
  if (events.empty()) return;
  if (touched_.size() != shards_.size()) touched_.assign(shards_.size(), 0);
  bool any_touched = false;
  const bool drop_oldest =
      resilience_.overflow_policy == OverflowPolicy::DropOldestWithAccounting;
  for (const auto& event : events) {
    const auto si = latency_->shard_of(event.api);
    auto& shard = *shards_[si];
    if (drop_oldest) {
      enqueue_drop_oldest(si, event);
    } else {
      bool entered = shard.ring.try_push(event);
      if (!entered) {
        // This ring is full, so we are about to block on its worker.  First
        // publish and wake everything pushed so far: a worker parked before
        // this batch would otherwise sleep on pending work while we wait
        // here, and the full ring's own worker may have been parked too.
        if (any_touched) {
          flush_wakes();
          any_touched = false;
        }
        entered = push_blocking(shard, event);
      }
      if (!entered) continue;  // watchdog drop, already accounted
      ++shard.submitted;
    }
    if (!touched_[si]) {
      touched_[si] = 1;
      any_touched = true;
    }
  }
  if (any_touched) flush_wakes();
}

void ShardPipeline::flush_wakes() {
  // One trailing fence covers every preceding push: for each touched
  // shard, either this thread observes worker_idle and notifies, or the
  // worker's fenced empty-check observes the pushed elements (the same
  // store-buffering exclusion as submit(), amortized over the batch).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!touched_[i]) continue;
    touched_[i] = 0;
    auto& shard = *shards_[i];
    if (shard.worker_idle.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.cv.notify_all();
    }
  }
}

void ShardPipeline::worker_loop(std::size_t shard_idx) {
  auto& shard = *shards_[shard_idx];
  auto& tracker = latency_->shard(shard_idx);
  wire::Event event;
  for (;;) {
    if (shard.paused.load(std::memory_order_acquire)) {
      // Test-hook wedge: consume nothing, but keep servicing shutdown so
      // the destructor's join can't hang on a paused shard.
      std::unique_lock<std::mutex> lock(shard.mutex);
      if (shard.stop) return;
      shard.cv.wait_for(lock, std::chrono::microseconds(100));
      continue;
    }
    if (shard.ring.try_pop(event)) {
      if (shard.producer_waiting.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.cv.notify_all();
      }

      // Stage 2: shard-local anomaly detection.  Operational scan first,
      // then the latency pairing — the same per-event order as the serial
      // detector, preserved through the seq-stable trigger merge.
      const bool rest_error =
          event.is_error() && event.kind == wire::ApiKind::Rest;
      const bool rpc_error = event.is_error() && !rest_error;
      const auto alarm = tracker.observe(event);
      if (rest_error || rpc_error || alarm) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (rest_error) {
          shard.triggers.push_back({event.seq, event.api,
                                    FaultKind::Operational, event.ts,
                                    std::nullopt});
        }
        if (rpc_error) ++shard.rpc_errors;
        if (alarm) {
          shard.triggers.push_back({event.seq, alarm->api,
                                    FaultKind::Performance, event.ts, alarm});
        }
      }
      shard.consumed.fetch_add(1, std::memory_order_release);
      continue;
    }

    // Ring empty: we are caught up.  Tell any drain() waiter, then park
    // until more work or shutdown.  Fence as in submit(): the predicate's
    // first evaluation happens after the idle flag is published.
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.worker_idle.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    shard.cv.notify_all();
    shard.cv.wait(lock, [&] {
      return shard.stop || shard.paused.load(std::memory_order_relaxed) ||
             !shard.ring.empty();
    });
    shard.worker_idle.store(false, std::memory_order_relaxed);
    if (shard.stop && shard.ring.empty()) return;
  }
}

void ShardPipeline::flush_spill(std::size_t shard_idx) {
  auto& shard = *shards_[shard_idx];
  auto& spill = spill_[shard_idx];
  if (spill.empty()) return;
  const bool watchdog = resilience_.watchdog_ms > 0.0;
  const auto grace = watchdog_duration(resilience_.watchdog_ms);
  auto last_consumed = shard.consumed.load(std::memory_order_acquire);
  auto deadline = Clock::now() + grace;
  shard.producer_waiting.store(true, std::memory_order_relaxed);
  for (;;) {
    bool pushed_any = false;
    while (!spill.empty() && shard.ring.try_push(spill.front())) {
      spill.pop_front();
      ++shard.submitted;
      pushed_any = true;
    }
    if (pushed_any) wake(shard);
    if (spill.empty()) break;
    if (watchdog) {
      const auto consumed = shard.consumed.load(std::memory_order_acquire);
      if (consumed != last_consumed) {
        last_consumed = consumed;
        deadline = Clock::now() + grace;
      } else if (Clock::now() >= deadline) {
        // Wedged worker mid-drain: shed the rest of the backlog with
        // accounting rather than hold the snapshot thread hostage.
        ++watchdog_trips_;
        overflow_dropped_ += spill.size();
        spill.clear();
        break;
      }
    }
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.cv.wait_for(lock, std::chrono::microseconds(100));
  }
  shard.producer_waiting.store(false, std::memory_order_relaxed);
}

void ShardPipeline::drain(std::vector<ShardTrigger>* out) {
  const auto base = static_cast<std::ptrdiff_t>(out->size());
  const bool watchdog = resilience_.watchdog_ms > 0.0;
  const auto grace = watchdog_duration(resilience_.watchdog_ms);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    flush_spill(i);
    auto& shard = *shards_[i];
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (!watchdog) {
      shard.cv.wait(lock, [&] {
        return shard.consumed.load(std::memory_order_acquire) ==
               shard.submitted;
      });
    } else {
      auto last_consumed = shard.consumed.load(std::memory_order_acquire);
      auto deadline = Clock::now() + grace;
      while (shard.consumed.load(std::memory_order_acquire) !=
             shard.submitted) {
        shard.cv.wait_for(lock, std::chrono::microseconds(100));
        const auto consumed = shard.consumed.load(std::memory_order_acquire);
        if (consumed != last_consumed) {
          last_consumed = consumed;
          deadline = Clock::now() + grace;
        } else if (Clock::now() >= deadline) {
          // Abandon the join: collect what this shard produced so far and
          // let a later drain pick up the stragglers if the worker revives.
          ++watchdog_trips_;
          break;
        }
      }
    }
    out->insert(out->end(),
                std::make_move_iterator(shard.triggers.begin()),
                std::make_move_iterator(shard.triggers.end()));
    shard.triggers.clear();
  }
  // Global stream order.  One event lives on exactly one shard, so equal
  // seqs only arise within a shard (operational + performance from the same
  // event); stable sort keeps that pair's discovery order.
  std::stable_sort(out->begin() + base, out->end(),
                   [](const ShardTrigger& a, const ShardTrigger& b) {
                     return a.seq < b.seq;
                   });
}

std::uint64_t ShardPipeline::rpc_errors() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total += sp->rpc_errors;
  }
  return total;
}

}  // namespace gretel::core
