#include "gretel/shard_pipeline.h"

#include <algorithm>
#include <chrono>

namespace gretel::core {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration watchdog_duration(double watchdog_ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(watchdog_ms));
}

// Worker-side bulk pop size: big enough to amortize the cursor publication
// and trigger commit, small enough that `consumed` (the watchdog's progress
// signal) advances every few microseconds.
constexpr std::size_t kWorkerChunk = 64;

// Coordinator-side bulk pop size for the drain-time inline help path: the
// backlog is bounded by the ring, and nothing else runs on this thread.
constexpr std::size_t kHelpChunk = 256;

}  // namespace

ShardPipeline::ShardPipeline(detect::LatencyShardSet* latency,
                             std::size_t ring_capacity,
                             ResilienceOptions resilience)
    : latency_(latency),
      resilience_(resilience),
      spill_capacity_(resilience.spill_capacity == 0 ? ring_capacity
                                                     : resilience.spill_capacity),
      spill_(latency->num_shards()) {
  // Auto wake cadence: an eighth of the ring, capped so a worker on its own
  // core still wakes a few times per drain interval.  Small rings resolve
  // to 1 — the exact legacy wake-per-push behavior.  On a host with a
  // single hardware thread, waking a worker can only preempt the producer,
  // so auto defers everything to the drain-time inline help (wakes still
  // fire on a full ring, preserving backpressure liveness).
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t auto_threshold =
      hw <= 1 ? ring_capacity
              : std::clamp<std::size_t>(ring_capacity / 8, 1, 64);
  wake_threshold_ =
      resilience.wake_events == 0 ? auto_threshold : resilience.wake_events;
  shards_.reserve(latency_->num_shards());
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < latency_->num_shards(); ++i) {
    shards_.push_back(std::make_unique<Shard>(ring_capacity));
    shards_.back()->progress_at = now;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
}

ShardPipeline::~ShardPipeline() {
  for (auto& sp : shards_) {
    {
      std::lock_guard<std::mutex> lock(sp->mutex);
      sp->stop = true;
    }
    sp->cv.notify_all();
  }
  for (auto& sp : shards_) sp->worker.join();
}

void ShardPipeline::debug_pause_shard(std::size_t idx, bool paused) {
  auto& shard = *shards_[idx];
  shard.paused.store(paused, std::memory_order_release);
  if (!paused) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cv.notify_all();
  }
}

void ShardPipeline::wake(Shard& shard) {
  // Fence pairs with the one in worker_loop: either this thread observes
  // worker_idle and notifies, or the worker observes the pushed elements and
  // never sleeps — the store-buffering outcome where both miss is excluded.
  shard.pending_wakes = 0;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.worker_idle.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cv.notify_all();
  }
}

void ShardPipeline::note_pushes(std::size_t si, std::uint64_t n, bool defer) {
  if (n == 0) return;
  auto& shard = *shards_[si];
  shard.pending_wakes += n;
  if (shard.pending_wakes < wake_threshold_) return;
  if (!defer) {
    wake(shard);
    return;
  }
  if (!shard.wake_marked) {
    shard.wake_marked = 1;
    wake_list_.push_back(static_cast<std::uint32_t>(si));
  }
}

void ShardPipeline::publish_wakes() {
  if (wake_list_.empty()) return;
  // One trailing fence covers every preceding push to every marked shard —
  // the same store-buffering exclusion as wake(), amortized over the batch.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (const auto si : wake_list_) {
    auto& shard = *shards_[si];
    shard.wake_marked = 0;
    shard.pending_wakes = 0;
    if (shard.worker_idle.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.cv.notify_all();
    }
  }
  wake_list_.clear();
}

bool ShardPipeline::push_blocking(Shard& shard,
                                  const wire::EventHeader& event) {
  if (shard.ring.try_push(event)) return true;
  // Ring full: the worker is behind.  Park until it makes room; the
  // worker notifies after every pop while producer_waiting is set, and
  // the timeout guards the notify/wait race without spinning.
  shard.producer_waiting.store(true, std::memory_order_relaxed);
  const bool watchdog = resilience_.watchdog_ms > 0.0;
  const auto grace = watchdog_duration(resilience_.watchdog_ms);
  auto last_consumed = shard.consumed.load(std::memory_order_acquire);
  auto deadline = Clock::now() + grace;
  bool pushed = false;
  for (;;) {
    if (shard.ring.try_push(event)) {
      pushed = true;
      break;
    }
    if (watchdog) {
      const auto consumed = shard.consumed.load(std::memory_order_acquire);
      if (consumed != last_consumed) {
        // Slow but alive: progress resets the clock, so the watchdog only
        // ever fires on a genuinely wedged worker.
        last_consumed = consumed;
        deadline = Clock::now() + grace;
      } else if (Clock::now() >= deadline) {
        ++watchdog_trips_;
        ++overflow_dropped_;  // the event never enters the ring
        break;
      }
    }
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.cv.wait_for(lock, std::chrono::microseconds(100));
  }
  shard.producer_waiting.store(false, std::memory_order_relaxed);
  return pushed;
}

void ShardPipeline::enqueue_drop_oldest(std::size_t shard_idx,
                                        const wire::EventHeader& event) {
  auto& shard = *shards_[shard_idx];
  auto& spill = spill_[shard_idx];
  std::uint64_t rung = 0;
  // FIFO order per shard is part of the determinism contract, so waiting
  // spill always enters the ring ahead of the new event.
  while (!spill.empty() && shard.ring.try_push(spill.front())) {
    spill.pop_front();
    ++shard.submitted;
    ++rung;
  }
  if (spill.empty() && shard.ring.try_push(event)) {
    ++shard.submitted;
    ++rung;
    note_pushes(shard_idx, rung, /*defer=*/false);
    return;
  }
  note_pushes(shard_idx, rung, /*defer=*/false);
  spill.push_back(event);
  if (spill.size() > spill_capacity_) {
    // Ring and spill both full: shed the *oldest* waiting event — its
    // detection value decays fastest — and account the gap.
    spill.pop_front();
    ++overflow_dropped_;
  }
}

void ShardPipeline::submit(const wire::EventHeader& event) {
  const auto si = latency_->shard_of(event.api);
  auto& shard = *shards_[si];
  if (resilience_.overflow_policy == OverflowPolicy::DropOldestWithAccounting) {
    enqueue_drop_oldest(si, event);
    return;
  }
  if (shard.ring.try_push(event)) {
    ++shard.submitted;
    note_pushes(si, 1, /*defer=*/false);
    return;
  }
  // Ring full: we are about to block on this worker, which may be parked on
  // a deferred wake.  Publish its backlog first, then block.
  wake(shard);
  if (push_blocking(shard, event)) {
    ++shard.submitted;
    note_pushes(si, 1, /*defer=*/false);
  }
}

void ShardPipeline::submit_batch(std::span<const wire::EventHeader> events) {
  if (events.empty()) return;
  if (runs_.size() != shards_.size()) runs_.resize(shards_.size());
  // Pass 1 — route: classify every event once, gathering per-shard runs, so
  // pass 2 touches each ring exactly once instead of ping-ponging ring
  // cache lines event by event.
  for (const auto& event : events) {
    runs_[latency_->shard_of(event.api)].push_back(event);
  }
  const bool drop_oldest =
      resilience_.overflow_policy == OverflowPolicy::DropOldestWithAccounting;
  // Pass 2 — hand each run to its ring as one bulk push.  Per-shard FIFO
  // order (the determinism contract) is preserved: the gather is stable and
  // shards are independent streams, so cross-shard ordering is free.
  for (std::size_t si = 0; si < runs_.size(); ++si) {
    auto& run = runs_[si];
    if (run.empty()) continue;
    auto& shard = *shards_[si];
    if (drop_oldest) {
      for (const auto& event : run) enqueue_drop_oldest(si, event);
    } else {
      const std::size_t done = shard.ring.try_push_n(run.data(), run.size());
      shard.submitted += done;
      note_pushes(si, done, /*defer=*/true);
      if (done != run.size()) {
        // Ring full mid-run: this worker may be parked on a deferred wake,
        // and so may workers already pushed to this batch.  Publish
        // everything owed, then block for the tail of the run.
        wake(shard);
        publish_wakes();
        for (std::size_t i = done; i < run.size(); ++i) {
          if (!push_blocking(shard, run[i])) continue;  // watchdog drop
          ++shard.submitted;
          note_pushes(si, 1, /*defer=*/true);
        }
      }
    }
    run.clear();
  }
  publish_wakes();
}

void ShardPipeline::process_one(const wire::EventHeader& event,
                                detect::LatencyTracker& tracker,
                                std::vector<ShardTrigger>* triggers,
                                std::uint64_t* rpc_errors) {
  // Stage 2: shard-local anomaly detection.  Operational scan first, then
  // the latency pairing — the same per-event order as the serial detector,
  // preserved through the seq-stable trigger merge.
  const bool rest_error =
      event.is_error() && event.kind == wire::ApiKind::Rest;
  const bool rpc_error = event.is_error() && !rest_error;
  const auto alarm = tracker.observe(event);
  if (rest_error) {
    triggers->push_back({event.seq, event.api, FaultKind::Operational,
                         event.ts, std::nullopt});
  }
  if (rpc_error) ++*rpc_errors;
  if (alarm) {
    triggers->push_back({event.seq, alarm->api, FaultKind::Performance,
                         event.ts, alarm});
  }
}

void ShardPipeline::worker_loop(std::size_t shard_idx) {
  auto& shard = *shards_[shard_idx];
  auto& tracker = latency_->shard(shard_idx);
  shard.pop_buf.resize(kWorkerChunk);
  for (;;) {
    if (shard.paused.load(std::memory_order_acquire)) {
      // Test-hook wedge: consume nothing, but keep servicing shutdown so
      // the destructor's join can't hang on a paused shard.
      std::unique_lock<std::mutex> lock(shard.mutex);
      if (shard.stop) return;
      shard.cv.wait_for(lock, std::chrono::microseconds(100));
      continue;
    }
    const std::size_t n =
        shard.ring.try_pop_n(shard.pop_buf.data(), kWorkerChunk);
    if (n != 0) {
      if (shard.producer_waiting.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.cv.notify_all();
      }
      shard.trig_buf.clear();
      std::uint64_t rpc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        process_one(shard.pop_buf[i], tracker, &shard.trig_buf, &rpc);
      }
      if (!shard.trig_buf.empty() || rpc != 0) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.triggers.insert(shard.triggers.end(), shard.trig_buf.begin(),
                              shard.trig_buf.end());
        shard.rpc_errors += rpc;
      }
      // Publish consumption strictly after the trigger commit: a drain that
      // acquires consumed == submitted must observe every trigger.
      shard.consumed.fetch_add(n, std::memory_order_release);
      continue;
    }

    // Ring empty: we are caught up.  Tell any drain() waiter, then park
    // until more work or shutdown.  Fence as in wake(): the predicate's
    // first evaluation happens after the idle flag is published.  While the
    // coordinator holds the help claim we stay parked — it owns the ring's
    // consumer role until the claim clears.
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.worker_idle.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    shard.cv.notify_all();
    shard.cv.wait(lock, [&] {
      return shard.stop || shard.paused.load(std::memory_order_relaxed) ||
             (!shard.claimed && !shard.ring.empty());
    });
    shard.worker_idle.store(false, std::memory_order_relaxed);
    if (shard.stop && shard.ring.empty()) return;
  }
}

void ShardPipeline::help_consume(std::size_t shard_idx) {
  auto& shard = *shards_[shard_idx];
  auto& tracker = latency_->shard(shard_idx);
  if (help_buf_.size() < kHelpChunk) help_buf_.resize(kHelpChunk);
  // Consumer-role transfer is ordered by the shard mutex: the worker's last
  // tracker/cursor writes happened before it parked (released the mutex),
  // and the claim was set under the same mutex before this runs.
  for (;;) {
    const std::size_t n = shard.ring.try_pop_n(help_buf_.data(), kHelpChunk);
    if (n == 0) return;
    help_trig_buf_.clear();
    std::uint64_t rpc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      process_one(help_buf_[i], tracker, &help_trig_buf_, &rpc);
    }
    if (!help_trig_buf_.empty() || rpc != 0) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.triggers.insert(shard.triggers.end(), help_trig_buf_.begin(),
                            help_trig_buf_.end());
      shard.rpc_errors += rpc;
    }
    shard.consumed.fetch_add(n, std::memory_order_release);
  }
}

void ShardPipeline::flush_spill(std::size_t shard_idx) {
  auto& shard = *shards_[shard_idx];
  auto& spill = spill_[shard_idx];
  if (spill.empty()) return;
  const bool watchdog = resilience_.watchdog_ms > 0.0;
  const auto grace = watchdog_duration(resilience_.watchdog_ms);
  auto last_consumed = shard.consumed.load(std::memory_order_acquire);
  auto deadline = Clock::now() + grace;
  shard.producer_waiting.store(true, std::memory_order_relaxed);
  for (;;) {
    bool pushed_any = false;
    while (!spill.empty() && shard.ring.try_push(spill.front())) {
      spill.pop_front();
      ++shard.submitted;
      pushed_any = true;
    }
    if (pushed_any) wake(shard);
    if (spill.empty()) break;
    if (watchdog) {
      const auto consumed = shard.consumed.load(std::memory_order_acquire);
      if (consumed != last_consumed) {
        last_consumed = consumed;
        deadline = Clock::now() + grace;
      } else if (Clock::now() >= deadline) {
        // Wedged worker mid-drain: shed the rest of the backlog with
        // accounting rather than hold the snapshot thread hostage.
        ++watchdog_trips_;
        overflow_dropped_ += spill.size();
        spill.clear();
        break;
      }
    }
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.cv.wait_for(lock, std::chrono::microseconds(100));
  }
  shard.producer_waiting.store(false, std::memory_order_relaxed);
}

void ShardPipeline::drain(std::vector<ShardTrigger>* out) {
  const auto base = static_cast<std::ptrdiff_t>(out->size());
  const bool watchdog = resilience_.watchdog_ms > 0.0;
  const auto grace = watchdog_duration(resilience_.watchdog_ms);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    flush_spill(i);
    auto& shard = *shards_[i];
    std::unique_lock<std::mutex> lock(shard.mutex);
    auto last_consumed = shard.consumed.load(std::memory_order_acquire);
    auto deadline = Clock::now() + grace;
    while (shard.consumed.load(std::memory_order_acquire) !=
           shard.submitted) {
      if (shard.worker_idle.load(std::memory_order_relaxed) &&
          !shard.paused.load(std::memory_order_relaxed) && !shard.stop) {
        // The worker is parked with backlog still rung — a deferred wake it
        // never received.  Claim the consumer role and pop the ring inline
        // instead of paying a wake/park round trip; on a single-core host
        // this turns the join into a function call.
        shard.claimed = true;
        lock.unlock();
        help_consume(i);
        lock.lock();
        shard.claimed = false;
        continue;
      }
      if (!watchdog) {
        shard.cv.wait(lock, [&] {
          return shard.consumed.load(std::memory_order_acquire) ==
                     shard.submitted ||
                 (shard.worker_idle.load(std::memory_order_relaxed) &&
                  !shard.paused.load(std::memory_order_relaxed));
        });
      } else {
        shard.cv.wait_for(lock, std::chrono::microseconds(100));
        const auto consumed = shard.consumed.load(std::memory_order_acquire);
        if (consumed != last_consumed) {
          last_consumed = consumed;
          deadline = Clock::now() + grace;
        } else if (Clock::now() >= deadline) {
          // Abandon the join: collect what this shard produced so far and
          // let a later drain pick up the stragglers if the worker revives.
          ++watchdog_trips_;
          break;
        }
      }
    }
    // The join cleared (or abandoned) this shard's backlog; any wake debt
    // with it.
    shard.pending_wakes = 0;
    out->insert(out->end(),
                std::make_move_iterator(shard.triggers.begin()),
                std::make_move_iterator(shard.triggers.end()));
    shard.triggers.clear();
  }
  // Global stream order.  One event lives on exactly one shard, so equal
  // seqs only arise within a shard (operational + performance from the same
  // event); stable sort keeps that pair's discovery order.
  std::stable_sort(out->begin() + base, out->end(),
                   [](const ShardTrigger& a, const ShardTrigger& b) {
                     return a.seq < b.seq;
                   });
}

void ShardPipeline::refresh_progress(
    std::chrono::steady_clock::time_point now) {
  const double grace_ms = resilience_.watchdog_ms;
  for (auto& sp : shards_) {
    auto& shard = *sp;
    const std::uint64_t consumed =
        shard.consumed.load(std::memory_order_acquire);
    if (consumed != shard.seen_consumed) {
      shard.seen_consumed = consumed;
      shard.progress_at = now;
      shard.stall_flagged = 0;
    }
    if (shard.submitted == consumed) {
      // Empty ring: idle, not stalled.
      shard.progress_at = now;
      shard.stall_flagged = 0;
      continue;
    }
    if (grace_ms <= 0.0 || shard.stall_flagged) continue;
    const double age_ms =
        std::chrono::duration<double, std::milli>(now - shard.progress_at)
            .count();
    if (age_ms >= grace_ms) {
      shard.stall_flagged = 1;
      ++watchdog_trips_;
    }
  }
}

std::size_t ShardPipeline::check_stalls() {
  refresh_progress(std::chrono::steady_clock::now());
  std::size_t stalled = 0;
  for (const auto& sp : shards_) stalled += sp->stall_flagged ? 1 : 0;
  return stalled;
}

std::vector<ShardHealth> ShardPipeline::shard_health() {
  const auto now = std::chrono::steady_clock::now();
  refresh_progress(now);
  std::vector<ShardHealth> out;
  out.reserve(shards_.size());
  for (const auto& sp : shards_) {
    ShardHealth h;
    h.submitted = sp->submitted;
    h.consumed = sp->seen_consumed;
    h.backlog = h.submitted - h.consumed;
    h.progress_age_ms =
        std::chrono::duration<double, std::milli>(now - sp->progress_at)
            .count();
    h.stalled = sp->stall_flagged != 0;
    out.push_back(h);
  }
  return out;
}

std::uint64_t ShardPipeline::rpc_errors() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total += sp->rpc_errors;
  }
  return total;
}

}  // namespace gretel::core
