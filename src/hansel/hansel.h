// HANSEL baseline (Sharma et al., CoNEXT '15) — the comparator in §7.4/§9.2.
//
// Faithful to the properties the GRETEL paper contrasts against:
//  * stitches on *every* message by linking payload identifiers (tenant ids,
//    resource UUIDs) into chains — heavy-duty work per message;
//  * buffers messages in 30-second time buckets to tolerate delayed or
//    out-of-order arrivals, so error reporting lags up to the bucket length;
//  * on an operational error it reports the low-level chain of messages that
//    share identifiers with the error — not the administrative operation —
//    and common identifiers link the faulty operation with unrelated
//    successful ones.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/time.h"
#include "wire/message.h"

namespace gretel::hansel {

struct Chain {
  std::vector<wire::Event> events;
  util::SimTime reported_at;  // bucket close time (the ~30 s lag)

  // Distinct ground-truth operation instances linked into this chain —
  // the over-linking measure (1 would be precise).
  std::size_t distinct_instances() const;
};

class Hansel {
 public:
  struct Options {
    util::SimDuration bucket = util::SimDuration::seconds(30);
  };

  Hansel();
  explicit Hansel(Options options);

  // Stitching runs on every message (unlike GRETEL's fault-triggered
  // snapshots).  Chains for buckets that closed are appended to chains().
  void on_event(const wire::Event& event);

  // The production path: HANSEL "analyzes the request and response payloads
  // to extract meaningful identifiers" (§9.2) — scans the raw payload for
  // numeric and UUID-like tokens, merges them with the event's transport
  // identifiers, and stitches.  This per-message payload analysis is a
  // large part of why HANSEL peaks at ~1.6K messages/s.
  void on_message(wire::Event event, std::string_view payload);

  // Numeric tokens (4-10 digits, skipping short protocol numbers like
  // status codes) parsed directly; UUID-ish hex tokens hashed.  Exposed
  // for tests.
  static std::vector<std::uint32_t> extract_identifiers(
      std::string_view payload);

  // Closes the current bucket at end of stream.
  void flush();

  const std::vector<Chain>& chains() const { return chains_; }

  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t unions = 0;
    std::uint64_t error_groups = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Group {
    std::vector<wire::Event> events;
    bool has_error = false;
  };

  std::uint32_t find(std::uint32_t g);
  void unite(std::uint32_t a, std::uint32_t b);
  void close_bucket(util::SimTime now);

  Options options_;
  util::SimTime bucket_end_;
  bool bucket_open_ = false;

  // Union-find over groups within the open bucket.
  std::vector<std::uint32_t> parent_;
  std::vector<Group> groups_;
  std::unordered_map<std::uint32_t, std::uint32_t> ident_group_;

  std::vector<Chain> chains_;
  Stats stats_;
};

}  // namespace gretel::hansel
