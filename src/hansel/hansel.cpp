#include "hansel/hansel.h"

#include <algorithm>

namespace gretel::hansel {

std::size_t Chain::distinct_instances() const {
  std::vector<std::uint32_t> ids;
  for (const auto& ev : events) {
    if (ev.truth_instance.valid() && !ev.truth_noise)
      ids.push_back(ev.truth_instance.value());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

Hansel::Hansel() : Hansel(Options{}) {}

Hansel::Hansel(Options options) : options_(options) {}

std::uint32_t Hansel::find(std::uint32_t g) {
  while (parent_[g] != g) {
    parent_[g] = parent_[parent_[g]];  // path halving
    g = parent_[g];
  }
  return g;
}

void Hansel::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return;
  ++stats_.unions;
  // Merge the smaller group's events into the larger.
  if (groups_[a].events.size() < groups_[b].events.size()) std::swap(a, b);
  auto& ga = groups_[a];
  auto& gb = groups_[b];
  ga.events.insert(ga.events.end(), gb.events.begin(), gb.events.end());
  ga.has_error = ga.has_error || gb.has_error;
  gb.events.clear();
  parent_[b] = a;
}

std::vector<std::uint32_t> Hansel::extract_identifiers(
    std::string_view payload) {
  std::vector<std::uint32_t> out;
  std::size_t i = 0;
  const auto n = payload.size();
  while (i < n) {
    const char c = payload[i];
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                     (c >= 'A' && c <= 'F');
    if (!hex) {
      ++i;
      continue;
    }
    // Token of hex digits and dashes.
    std::size_t j = i;
    bool digits_only = true;
    bool has_dash = false;
    while (j < n) {
      const char t = payload[j];
      const bool th = (t >= '0' && t <= '9') || (t >= 'a' && t <= 'f') ||
                      (t >= 'A' && t <= 'F');
      if (t == '-') {
        has_dash = true;
      } else if (!th) {
        break;
      }
      if (t < '0' || t > '9') digits_only = digits_only && t == '-';
      ++j;
    }
    const auto len = j - i;
    if (digits_only && !has_dash && len >= 4 && len <= 10) {
      std::uint32_t v = 0;
      for (std::size_t k = i; k < j; ++k)
        v = v * 10 + static_cast<std::uint32_t>(payload[k] - '0');
      out.push_back(v);
    } else if (len >= 8 && has_dash) {
      // UUID-ish: FNV-1a hash of the token.
      std::uint32_t h = 2166136261u;
      for (std::size_t k = i; k < j; ++k) {
        h ^= static_cast<std::uint8_t>(payload[k]);
        h *= 16777619u;
      }
      out.push_back(h);
    }
    i = j;
  }
  return out;
}

void Hansel::on_message(wire::Event event, std::string_view payload) {
  auto extracted = extract_identifiers(payload);
  event.identifiers.insert(event.identifiers.end(), extracted.begin(),
                           extracted.end());
  on_event(event);
}

void Hansel::on_event(const wire::Event& event) {
  ++stats_.events;

  if (!bucket_open_) {
    bucket_open_ = true;
    bucket_end_ = event.ts + options_.bucket;
  } else if (event.ts >= bucket_end_) {
    close_bucket(bucket_end_);
    bucket_end_ = event.ts + options_.bucket;
  }

  // New group holding just this message.
  const auto g = static_cast<std::uint32_t>(groups_.size());
  groups_.push_back({{event}, event.is_error()});
  parent_.push_back(g);

  // Link through every payload identifier (the per-message stitching cost).
  for (const auto ident : event.identifiers) {
    const auto [it, inserted] = ident_group_.try_emplace(ident, g);
    if (!inserted) {
      unite(g, it->second);
      it->second = find(g);
    }
  }
}

void Hansel::close_bucket(util::SimTime now) {
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    if (parent_[g] != g || !groups_[g].has_error) continue;
    ++stats_.error_groups;
    Chain chain;
    chain.events = std::move(groups_[g].events);
    std::sort(chain.events.begin(), chain.events.end(),
              [](const wire::Event& a, const wire::Event& b) {
                return a.ts < b.ts;
              });
    chain.reported_at = now;
    chains_.push_back(std::move(chain));
  }
  groups_.clear();
  parent_.clear();
  ident_group_.clear();
}

void Hansel::flush() {
  if (bucket_open_) close_bucket(bucket_end_);
  bucket_open_ = false;
}

}  // namespace gretel::hansel
