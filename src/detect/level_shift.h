// Online level-shift detector — the analog of tsoutliers' LS mode (§6).
//
// Semantics the paper relies on (§7.3 item 4): a *sustained* move of the
// series level away from the adapted baseline raises one alarm, after which
// the detector re-adapts to the new level; fluctuation smaller than the
// confirmed shift does not alarm again.  Implementation: a robust baseline
// (median / MAD over a rolling window) plus an m-consecutive-deviations
// confirmation rule, with re-baselining on confirmation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "detect/outlier.h"

namespace gretel::detect {

struct LevelShiftParams {
  std::size_t baseline_window = 64;  // samples kept for the robust baseline
  std::size_t min_baseline = 12;     // samples before detection arms
  double k_sigma = 5.0;              // deviation threshold in MAD-sigmas
  std::size_t confirm = 3;           // consecutive deviations to confirm
  double sigma_floor = 1e-6;         // lower bound on the scale estimate
  // Re-alarm suppression: after a confirmed shift, no new alarm for this
  // many seconds even if the series keeps moving.
  double cooldown_seconds = 5.0;
};

class LevelShiftDetector final : public OutlierDetector {
 public:
  LevelShiftDetector() = default;
  explicit LevelShiftDetector(LevelShiftParams params) : params_(params) {}

  std::optional<Alarm> observe(double t_seconds, double value) override;
  std::string_view name() const override { return "level-shift"; }
  void reset() override;
  void save_state(std::string& out) const override;
  bool load_state(std::string_view& in) override;

  // Current robust level estimate (for plots / tests).
  double level();
  bool armed() const { return window_.size() >= params_.min_baseline; }

  // NaN / ±inf samples rejected before touching the baseline.  One such
  // value in the window would make every subsequent median/MAD NaN and
  // silently disarm the detector forever.
  std::uint64_t rejected_nonfinite() const { return rejected_nonfinite_; }

 private:
  // Recomputes the cached robust baseline (median / MAD-sigma).  The exact
  // estimates only need to track the window loosely — deviations are judged
  // against a 5σ band — so the cache is refreshed every few in-band
  // absorptions instead of per sample, keeping observe() O(1) amortized at
  // line rate (§7.4.1).
  void refresh_baseline();

  LevelShiftParams params_;
  std::deque<double> window_;
  std::vector<double> pending_;  // consecutive out-of-band samples
  // Preallocated buffer for the in-place median/MAD estimators: refreshes
  // permute this copy instead of allocating a fresh vector per refresh.
  std::vector<double> scratch_;
  int pending_sign_ = 0;
  double last_alarm_t_ = -1e300;
  double cached_median_ = 0.0;
  double cached_sigma_ = 0.0;
  int stale_ = 0;  // absorptions since the last refresh
  std::uint64_t rejected_nonfinite_ = 0;
};

std::unique_ptr<OutlierDetector> make_level_shift();

}  // namespace gretel::detect
