// Offline window analysis used by the root-cause engine (Algorithm 3's
// Is_Anomalous): given a resource time series and the fault window supplied
// by the anomaly detector, decide whether the resource behaved anomalously
// in that window compared to its own history outside it.
#pragma once

#include <optional>

#include "net/node.h"
#include "util/stats.h"

namespace gretel::detect {

struct WindowVerdict {
  bool anomalous = false;
  double window_level = 0.0;    // median inside the window
  double baseline_level = 0.0;  // median outside the window
  double sigma = 0.0;           // robust scale of the baseline
};

// Robust comparison: the window is anomalous when its median deviates from
// the out-of-window median by more than k baseline MAD-sigmas (and by a
// minimal absolute amount to avoid flagging flat series).
WindowVerdict analyze_window(const util::TimeSeries& series,
                             double window_start_s, double window_end_s,
                             double k_sigma = 5.0, double min_abs = 1e-9);

// Absolute resource health rules (the "domain knowledge" checks GRETEL's
// watchers apply regardless of history): e.g. free disk below floor,
// CPU pegged.  Returns a reason when the latest in-window value violates
// the rule for the given resource kind.
std::optional<const char*> absolute_rule_violation(net::ResourceKind kind,
                                                   double value);

}  // namespace gretel::detect
