#include "detect/zscore.h"

#include <cmath>

#include "util/stats.h"

namespace gretel::detect {

std::optional<Alarm> ZScoreDetector::observe(double t_seconds, double value) {
  std::optional<Alarm> alarm;
  if (window_.size() >= params_.min_samples) {
    util::RunningStats stats;
    for (double v : window_) stats.add(v);
    const double sigma = std::max(stats.stddev(), params_.sigma_floor);
    const double dev = value - stats.mean();
    if (std::fabs(dev) > params_.k_sigma * sigma) {
      Alarm a;
      a.t_seconds = t_seconds;
      a.value = value;
      a.baseline = stats.mean();
      a.magnitude = std::fabs(dev);
      a.direction = dev > 0 ? ShiftDirection::Up : ShiftDirection::Down;
      alarm = a;
    }
  }
  window_.push_back(value);
  while (window_.size() > params_.window) window_.pop_front();
  return alarm;
}

void ZScoreDetector::reset() { window_.clear(); }

std::unique_ptr<OutlierDetector> make_zscore() {
  return std::make_unique<ZScoreDetector>();
}

}  // namespace gretel::detect
