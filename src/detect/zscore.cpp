#include "detect/zscore.h"

#include <cmath>

#include "util/binio.h"
#include "util/stats.h"

namespace gretel::detect {

std::optional<Alarm> ZScoreDetector::observe(double t_seconds, double value) {
  std::optional<Alarm> alarm;
  if (window_.size() >= params_.min_samples) {
    util::RunningStats stats;
    for (double v : window_) stats.add(v);
    const double sigma = std::max(stats.stddev(), params_.sigma_floor);
    const double dev = value - stats.mean();
    if (std::fabs(dev) > params_.k_sigma * sigma) {
      Alarm a;
      a.t_seconds = t_seconds;
      a.value = value;
      a.baseline = stats.mean();
      a.magnitude = std::fabs(dev);
      a.direction = dev > 0 ? ShiftDirection::Up : ShiftDirection::Down;
      alarm = a;
    }
  }
  window_.push_back(value);
  while (window_.size() > params_.window) window_.pop_front();
  return alarm;
}

void ZScoreDetector::reset() { window_.clear(); }

void ZScoreDetector::save_state(std::string& out) const {
  util::put_u32(out, static_cast<std::uint32_t>(window_.size()));
  for (double v : window_) util::put_f64(out, v);
}

bool ZScoreDetector::load_state(std::string_view& in) {
  reset();
  constexpr std::uint32_t kMaxElems = 1u << 20;
  std::uint32_t n = 0;
  if (!util::get_u32(in, n) || n > kMaxElems) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    double v = 0.0;
    if (!util::get_f64(in, v)) {
      reset();
      return false;
    }
    window_.push_back(v);
  }
  return true;
}

std::unique_ptr<OutlierDetector> make_zscore() {
  return std::make_unique<ZScoreDetector>();
}

}  // namespace gretel::detect
