// EWMA control-chart detector: a third option behind the pluggable
// OutlierDetector interface (§6).  Tracks exponentially weighted moving
// estimates of mean and variance; alarms when a sample leaves the k·σ
// control band, then folds the sample in (so, like LS and unlike z-score,
// it adapts to sustained shifts — just more gradually).
#pragma once

#include <optional>

#include "detect/outlier.h"

namespace gretel::detect {

struct EwmaParams {
  double alpha = 0.1;        // smoothing factor for mean and variance
  std::size_t warmup = 12;   // samples before detection arms
  double k_sigma = 5.0;
  double sigma_floor = 1e-6;
  // Consecutive out-of-band samples required to alarm (spike rejection).
  std::size_t confirm = 3;
};

class EwmaDetector final : public OutlierDetector {
 public:
  EwmaDetector() = default;
  explicit EwmaDetector(EwmaParams params) : params_(params) {}

  std::optional<Alarm> observe(double t_seconds, double value) override;
  std::string_view name() const override { return "ewma"; }
  void reset() override;
  void save_state(std::string& out) const override;
  bool load_state(std::string_view& in) override;

  double mean() const { return mean_; }

 private:
  EwmaParams params_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::size_t seen_ = 0;
  std::size_t run_ = 0;  // consecutive out-of-band samples
  int run_sign_ = 0;
};

std::unique_ptr<OutlierDetector> make_ewma();

}  // namespace gretel::detect
