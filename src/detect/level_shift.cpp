#include "detect/level_shift.h"

#include <cmath>

#include "util/binio.h"
#include "util/stats.h"

namespace gretel::detect {

void LevelShiftDetector::refresh_baseline() {
  // Refresh runs at line rate (every few absorptions); the preallocated
  // scratch plus the nth_element-based estimators keep it allocation-free
  // after warm-up.  The in-place variants are bit-identical to
  // median()/mad_sigma(), so alarms are unchanged.
  scratch_.assign(window_.begin(), window_.end());
  cached_median_ = util::median_inplace(scratch_);
  scratch_.assign(window_.begin(), window_.end());
  cached_sigma_ =
      std::max(util::mad_sigma_inplace(scratch_), params_.sigma_floor);
  stale_ = 0;
}

double LevelShiftDetector::level() {
  if (window_.empty()) return 0.0;
  refresh_baseline();
  return cached_median_;
}

std::optional<Alarm> LevelShiftDetector::observe(double t_seconds,
                                                 double value) {
  if (!std::isfinite(value)) {
    ++rejected_nonfinite_;
    return std::nullopt;
  }
  if (!armed()) {
    window_.push_back(value);
    if (armed()) refresh_baseline();
    return std::nullopt;
  }

  const double dev = value - cached_median_;
  const int sign = dev > 0 ? 1 : -1;

  if (std::fabs(dev) <= params_.k_sigma * cached_sigma_) {
    // In-band: absorb into the baseline, clear any pending run.  The robust
    // baseline is refreshed periodically, not per sample.
    pending_.clear();
    pending_sign_ = 0;
    window_.push_back(value);
    while (window_.size() > params_.baseline_window) window_.pop_front();
    if (++stale_ >= 8) refresh_baseline();
    return std::nullopt;
  }

  // Out-of-band: extend (or restart) the consecutive run.
  if (sign != pending_sign_) {
    pending_.clear();
    pending_sign_ = sign;
  }
  pending_.push_back(value);
  if (pending_.size() < params_.confirm) return std::nullopt;

  // Confirmed level shift: re-baseline onto the new level.  The pending run
  // seeds the new window below, so the median runs on the scratch copy.
  scratch_.assign(pending_.begin(), pending_.end());
  const double new_level = util::median_inplace(scratch_);
  Alarm alarm;
  alarm.t_seconds = t_seconds;
  alarm.value = value;
  alarm.baseline = cached_median_;
  alarm.magnitude = std::fabs(new_level - cached_median_);
  alarm.direction = sign > 0 ? ShiftDirection::Up : ShiftDirection::Down;

  window_.assign(pending_.begin(), pending_.end());
  pending_.clear();
  pending_sign_ = 0;
  refresh_baseline();

  const bool in_cooldown =
      (t_seconds - last_alarm_t_) < params_.cooldown_seconds;
  last_alarm_t_ = t_seconds;
  if (in_cooldown) return std::nullopt;
  return alarm;
}

void LevelShiftDetector::reset() {
  window_.clear();
  pending_.clear();
  scratch_.clear();
  pending_sign_ = 0;
  last_alarm_t_ = -1e300;
  cached_median_ = 0.0;
  cached_sigma_ = 0.0;
  stale_ = 0;
}

void LevelShiftDetector::save_state(std::string& out) const {
  // Raw fields only: the cached median/sigma are serialized as-is rather
  // than recomputed (level()/refresh_baseline() mutate the cache refresh
  // clock, which would make a checkpointed run diverge from an
  // uncheckpointed one).  scratch_ is a temp buffer, always re-assigned
  // before use, so it carries no state.
  util::put_u32(out, static_cast<std::uint32_t>(window_.size()));
  for (double v : window_) util::put_f64(out, v);
  util::put_u32(out, static_cast<std::uint32_t>(pending_.size()));
  for (double v : pending_) util::put_f64(out, v);
  util::put_i64(out, pending_sign_);
  util::put_f64(out, last_alarm_t_);
  util::put_f64(out, cached_median_);
  util::put_f64(out, cached_sigma_);
  util::put_i64(out, stale_);
  util::put_u64(out, rejected_nonfinite_);
}

bool LevelShiftDetector::load_state(std::string_view& in) {
  reset();
  // Element counts are bounded by baseline_window / confirm in any state
  // save_state can produce; anything larger is corrupt input, rejected
  // before allocating.
  constexpr std::uint32_t kMaxElems = 1u << 20;
  std::uint32_t wn = 0;
  if (!util::get_u32(in, wn) || wn > kMaxElems) return false;
  for (std::uint32_t i = 0; i < wn; ++i) {
    double v = 0.0;
    if (!util::get_f64(in, v)) return false;
    window_.push_back(v);
  }
  std::uint32_t pn = 0;
  if (!util::get_u32(in, pn) || pn > kMaxElems) return false;
  for (std::uint32_t i = 0; i < pn; ++i) {
    double v = 0.0;
    if (!util::get_f64(in, v)) return false;
    pending_.push_back(v);
  }
  std::int64_t sign = 0;
  std::int64_t stale = 0;
  if (!util::get_i64(in, sign) || !util::get_f64(in, last_alarm_t_) ||
      !util::get_f64(in, cached_median_) ||
      !util::get_f64(in, cached_sigma_) || !util::get_i64(in, stale) ||
      !util::get_u64(in, rejected_nonfinite_)) {
    reset();
    return false;
  }
  pending_sign_ = static_cast<int>(sign);
  stale_ = static_cast<int>(stale);
  return true;
}

std::unique_ptr<OutlierDetector> make_level_shift() {
  return std::make_unique<LevelShiftDetector>();
}

}  // namespace gretel::detect
