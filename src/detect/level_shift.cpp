#include "detect/level_shift.h"

#include <cmath>

#include "util/stats.h"

namespace gretel::detect {

void LevelShiftDetector::refresh_baseline() {
  // Refresh runs at line rate (every few absorptions); the preallocated
  // scratch plus the nth_element-based estimators keep it allocation-free
  // after warm-up.  The in-place variants are bit-identical to
  // median()/mad_sigma(), so alarms are unchanged.
  scratch_.assign(window_.begin(), window_.end());
  cached_median_ = util::median_inplace(scratch_);
  scratch_.assign(window_.begin(), window_.end());
  cached_sigma_ =
      std::max(util::mad_sigma_inplace(scratch_), params_.sigma_floor);
  stale_ = 0;
}

double LevelShiftDetector::level() {
  if (window_.empty()) return 0.0;
  refresh_baseline();
  return cached_median_;
}

std::optional<Alarm> LevelShiftDetector::observe(double t_seconds,
                                                 double value) {
  if (!std::isfinite(value)) {
    ++rejected_nonfinite_;
    return std::nullopt;
  }
  if (!armed()) {
    window_.push_back(value);
    if (armed()) refresh_baseline();
    return std::nullopt;
  }

  const double dev = value - cached_median_;
  const int sign = dev > 0 ? 1 : -1;

  if (std::fabs(dev) <= params_.k_sigma * cached_sigma_) {
    // In-band: absorb into the baseline, clear any pending run.  The robust
    // baseline is refreshed periodically, not per sample.
    pending_.clear();
    pending_sign_ = 0;
    window_.push_back(value);
    while (window_.size() > params_.baseline_window) window_.pop_front();
    if (++stale_ >= 8) refresh_baseline();
    return std::nullopt;
  }

  // Out-of-band: extend (or restart) the consecutive run.
  if (sign != pending_sign_) {
    pending_.clear();
    pending_sign_ = sign;
  }
  pending_.push_back(value);
  if (pending_.size() < params_.confirm) return std::nullopt;

  // Confirmed level shift: re-baseline onto the new level.  The pending run
  // seeds the new window below, so the median runs on the scratch copy.
  scratch_.assign(pending_.begin(), pending_.end());
  const double new_level = util::median_inplace(scratch_);
  Alarm alarm;
  alarm.t_seconds = t_seconds;
  alarm.value = value;
  alarm.baseline = cached_median_;
  alarm.magnitude = std::fabs(new_level - cached_median_);
  alarm.direction = sign > 0 ? ShiftDirection::Up : ShiftDirection::Down;

  window_.assign(pending_.begin(), pending_.end());
  pending_.clear();
  pending_sign_ = 0;
  refresh_baseline();

  const bool in_cooldown =
      (t_seconds - last_alarm_t_) < params_.cooldown_seconds;
  last_alarm_t_ = t_seconds;
  if (in_cooldown) return std::nullopt;
  return alarm;
}

void LevelShiftDetector::reset() {
  window_.clear();
  pending_.clear();
  scratch_.clear();
  pending_sign_ = 0;
  last_alarm_t_ = -1e300;
  cached_median_ = 0.0;
  cached_sigma_ = 0.0;
  stale_ = 0;
}

std::unique_ptr<OutlierDetector> make_level_shift() {
  return std::make_unique<LevelShiftDetector>();
}

}  // namespace gretel::detect
