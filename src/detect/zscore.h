// Windowed z-score detector: the simple alternative behind the pluggable
// OutlierDetector interface, used in ablations against the level-shift
// detector.  Alarms on every sample more than k standard deviations from the
// rolling mean — which is precisely why it is noisy under sustained shifts
// (it never adapts) and why the paper prefers LS.
#pragma once

#include <deque>
#include <optional>

#include "detect/outlier.h"

namespace gretel::detect {

struct ZScoreParams {
  std::size_t window = 64;
  std::size_t min_samples = 12;
  double k_sigma = 5.0;
  double sigma_floor = 1e-6;
};

class ZScoreDetector final : public OutlierDetector {
 public:
  ZScoreDetector() = default;
  explicit ZScoreDetector(ZScoreParams params) : params_(params) {}

  std::optional<Alarm> observe(double t_seconds, double value) override;
  std::string_view name() const override { return "z-score"; }
  void reset() override;
  void save_state(std::string& out) const override;
  bool load_state(std::string_view& in) override;

 private:
  ZScoreParams params_;
  std::deque<double> window_;
};

std::unique_ptr<OutlierDetector> make_zscore();

}  // namespace gretel::detect
