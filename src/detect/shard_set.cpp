#include "detect/shard_set.h"

#include "detect/level_shift.h"
#include "util/binio.h"

namespace gretel::detect {

LatencyShardSet::LatencyShardSet(std::size_t num_shards,
                                 LatencyTracker::Factory factory) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.emplace_back(factory);
  }
}

LatencyShardSet::LatencyShardSet(std::size_t num_shards)
    : LatencyShardSet(num_shards, [] { return make_level_shift(); }) {}

std::size_t LatencyShardSet::shard_of(wire::ApiId api,
                                      std::size_t num_shards) {
  if (num_shards <= 1) return 0;
  // Knuth multiplicative hash; stable across platforms and shard counts.
  const std::uint32_t h = api.value() * 2654435761u;
  return static_cast<std::size_t>(h) % num_shards;
}

std::uint64_t LatencyShardSet::samples() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.samples();
  return total;
}

std::size_t LatencyShardSet::pending() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s.pending();
  return total;
}

void LatencyShardSet::save_state(std::string& out) const {
  util::put_u32(out, static_cast<std::uint32_t>(shards_.size()));
  for (const auto& s : shards_) s.save_state(out);
}

bool LatencyShardSet::load_state(std::string_view& in) {
  std::uint32_t n = 0;
  if (!util::get_u32(in, n) || n != shards_.size()) return false;
  for (auto& s : shards_) {
    if (!s.load_state(in)) return false;
  }
  return true;
}

}  // namespace gretel::detect
