// Pluggable online outlier detection (§6: "outlier detection in GRETEL is
// pluggable and administrators can leverage any sophisticated detection
// mechanism").
//
// Detectors consume one (timestamp, value) sample at a time and optionally
// emit an Alarm.  The production configuration is the level-shift detector
// (the R tsoutliers "LS" analog the paper uses); a windowed z-score detector
// is provided as an alternative and for ablations.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

namespace gretel::detect {

enum class ShiftDirection { Up, Down };

struct Alarm {
  double t_seconds = 0.0;   // time of the confirming sample
  double value = 0.0;       // the confirming sample
  double baseline = 0.0;    // level before the shift
  double magnitude = 0.0;   // |new level - old level| estimate
  ShiftDirection direction = ShiftDirection::Up;
};

class OutlierDetector {
 public:
  virtual ~OutlierDetector() = default;

  // Feeds one sample; returns an alarm when an anomaly is confirmed.
  virtual std::optional<Alarm> observe(double t_seconds, double value) = 0;

  virtual std::string_view name() const = 0;

  // Forgets all state (fresh series).
  virtual void reset() = 0;

  // Checkpoint support (src/persist/): appends the detector's *dynamic*
  // state — learned baselines, pending runs, cooldown clocks — to `out` in
  // the util/binio.h big-endian vocabulary.  Parameters are NOT serialized:
  // restore constructs the detector from config the same way the original
  // was, then load_state() rehydrates what it learned.
  //
  // Contract: save_state is strictly non-mutating (a save mid-stream must
  // not perturb subsequent alarms — the crash-free byte-identity guarantee
  // depends on it), and load_state(save_state(d)) reproduces d's observable
  // behavior bit-for-bit.  load_state consumes its bytes from the front of
  // `in` and returns false (leaving the detector reset) on torn or
  // malformed input.
  virtual void save_state(std::string& out) const = 0;
  virtual bool load_state(std::string_view& in) = 0;
};

// Factory signature so per-API / per-resource trackers can mint detectors.
using DetectorFactory = std::unique_ptr<OutlierDetector> (*)();

}  // namespace gretel::detect
