#include "detect/series_analysis.h"

#include <cmath>
#include <vector>

namespace gretel::detect {

WindowVerdict analyze_window(const util::TimeSeries& series,
                             double window_start_s, double window_end_s,
                             double k_sigma, double min_abs) {
  std::vector<double> inside;
  std::vector<double> outside;
  for (const auto& p : series.points()) {
    if (p.t_seconds >= window_start_s && p.t_seconds < window_end_s) {
      inside.push_back(p.value);
    } else {
      outside.push_back(p.value);
    }
  }

  WindowVerdict v;
  if (inside.empty()) return v;
  // The window level is meaningful on its own (absolute health rules read
  // it); the relative anomaly judgment additionally needs enough baseline.
  v.window_level = util::median(inside);
  if (outside.size() < 4) return v;
  v.baseline_level = util::median(outside);
  v.sigma = std::max(util::mad_sigma(outside), 1e-9);
  const double dev = std::fabs(v.window_level - v.baseline_level);
  v.anomalous = dev > k_sigma * v.sigma && dev > min_abs;
  return v;
}

std::optional<const char*> absolute_rule_violation(net::ResourceKind kind,
                                                   double value) {
  switch (kind) {
    case net::ResourceKind::CpuPct:
      if (value > 90.0) return "CPU pegged above 90%";
      break;
    case net::ResourceKind::DiskFreeMb:
      if (value < 1024.0) return "free disk space below 1 GB";
      break;
    case net::ResourceKind::MemUsedMb:
      if (value > 100.0 * 1024.0) return "memory consumption above 100 GB";
      break;
    case net::ResourceKind::NetMbps:
    case net::ResourceKind::DiskIoOps:
      break;
  }
  return std::nullopt;
}

}  // namespace gretel::detect
