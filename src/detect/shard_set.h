// Shard-local latency/level-shift state for the concurrent analyzer.
//
// GRETEL's per-API independence (§5.3: every API's latency series feeds its
// own outlier detector) makes anomaly detection trivially partitionable:
// hash each API onto one of N shards and every request/response pairing,
// latency series and level-shift detector for that API lives wholly inside
// that shard.  Shards share no mutable state, so N shard workers can run
// concurrently without locks, and the alarm stream per API is identical for
// any shard count — the basis of the pipeline's determinism contract.
//
// Thread contract: shard(i) may be driven by at most one thread at a time;
// distinct shards may be driven concurrently.  The aggregated accessors
// (series / samples / pending) require the pipeline to be quiescent (all
// shard workers drained or parked behind a barrier).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "detect/latency_tracker.h"

namespace gretel::detect {

class LatencyShardSet {
 public:
  // N shards, each minting its detectors from `factory` (the default is the
  // level-shift detector, matching LatencyTracker's own default).
  LatencyShardSet(std::size_t num_shards, LatencyTracker::Factory factory);
  explicit LatencyShardSet(std::size_t num_shards = 1);

  // Stable API → shard mapping (multiplicative hash so consecutively
  // numbered APIs of one service spread across shards).
  static std::size_t shard_of(wire::ApiId api, std::size_t num_shards);
  std::size_t shard_of(wire::ApiId api) const {
    return shard_of(api, shards_.size());
  }

  std::size_t num_shards() const { return shards_.size(); }
  LatencyTracker& shard(std::size_t idx) { return shards_[idx]; }
  const LatencyTracker& shard(std::size_t idx) const { return shards_[idx]; }

  // Serial convenience: routes the event to its owning shard.  With one
  // shard this is exactly a plain LatencyTracker.
  std::optional<LatencyAlarm> observe(const wire::Event& event) {
    return shards_[shard_of(event.api)].observe(event);
  }
  std::optional<LatencyAlarm> observe(const wire::EventHeader& event) {
    return shards_[shard_of(event.api)].observe(event);
  }

  // Arms the orphan-request reaper on every shard (0 = off).  Admission is
  // decided at pairing time inside each tracker, so detection output stays
  // shard-count-invariant (see LatencyTracker).
  void set_orphan_timeout_seconds(double seconds) {
    for (auto& s : shards_) s.set_orphan_timeout_seconds(seconds);
  }

  // Streaming bounds, fanned out per shard (quiescent pipeline only; the
  // stream analyzer applies them before any event flows).
  void set_inflight_cap(std::size_t per_shard_cap) {
    for (auto& s : shards_) s.set_inflight_cap(per_shard_cap);
  }
  void set_series_cap(std::size_t cap) {
    for (auto& s : shards_) s.set_series_cap(cap);
  }
  void set_sketch_enabled(bool on) {
    for (auto& s : shards_) s.set_sketch_enabled(on);
  }

  // Time-based orphan sweep across every shard (quiescent pipeline only —
  // the stream tick runs it right after a drain, when workers are parked).
  void sweep_now(util::SimTime now) {
    for (auto& s : shards_) s.sweep_now(now);
  }

  // Aggregated views over all shards (quiescent pipeline only).
  const util::TimeSeries* series(wire::ApiId api) const {
    return shards_[shard_of(api)].series(api);
  }
  const util::QuantileSketch* sketch(wire::ApiId api) const {
    return shards_[shard_of(api)].sketch(api);
  }
  std::uint64_t samples() const;
  std::size_t pending() const;
  std::size_t series_points() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s.series_points();
    return total;
  }
  std::size_t inflight_queue() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s.inflight_queue();
    return total;
  }
  // Checkpoint support: per-shard LatencyTracker blobs, shard count first.
  // load_state refuses a blob written under a different shard count — the
  // API→shard mapping is part of the state's shape, and restore always
  // constructs the set from the same config that wrote the checkpoint
  // (quiescent pipeline only, like the other aggregate accessors).
  void save_state(std::string& out) const;
  bool load_state(std::string_view& in);

  LatencyGuardStats guards_total() const {
    LatencyGuardStats total;
    for (const auto& s : shards_) {
      const auto& g = s.guard_stats();
      total.clamped_negative += g.clamped_negative;
      total.rejected_nonfinite += g.rejected_nonfinite;
      total.orphans_reaped += g.orphans_reaped;
      total.inflight_evicted += g.inflight_evicted;
      total.series_trimmed += g.series_trimmed;
    }
    return total;
  }

 private:
  std::vector<LatencyTracker> shards_;
};

}  // namespace gretel::detect
