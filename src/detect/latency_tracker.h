// Request/response pairing and per-API latency anomaly detection (§5.3).
//
// "REST latencies are computed by pairing request and response messages
// based on TCP connection metadata, like IP and port, while RPC latencies
// are computed using IP and message identifier that is unique to each pair."
// LatencyTracker does exactly that, maintains a latency time series per API,
// and feeds each series to its own pluggable outlier detector.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "detect/outlier.h"
#include "util/stats.h"
#include "util/time.h"
#include "wire/message.h"

namespace gretel::detect {

struct LatencyAlarm {
  wire::ApiId api;
  Alarm alarm;          // alarm.value is the latency in milliseconds
  util::SimTime when;   // response timestamp
};

class LatencyTracker {
 public:
  using Factory = std::function<std::unique_ptr<OutlierDetector>()>;

  explicit LatencyTracker(Factory factory);
  LatencyTracker();  // defaults to the level-shift detector

  // Feeds one captured event.  Responses that close a pending request
  // produce a latency sample; a confirmed anomaly returns a LatencyAlarm.
  std::optional<LatencyAlarm> observe(const wire::Event& event);

  // Latency series recorded so far for an API (milliseconds).
  const util::TimeSeries* series(wire::ApiId api) const;

  // Requests that never saw a response (diagnostic).
  std::size_t pending() const {
    return pending_rest_.size() + pending_rpc_.size();
  }
  std::uint64_t samples() const { return samples_; }

 private:
  struct PerApi {
    util::TimeSeries series;
    std::unique_ptr<OutlierDetector> detector;
  };

  PerApi& per_api(wire::ApiId api);

  Factory factory_;
  std::unordered_map<std::uint32_t, util::SimTime> pending_rest_;  // conn_id
  std::unordered_map<std::uint64_t, util::SimTime> pending_rpc_;   // msg_id
  std::unordered_map<wire::ApiId, PerApi> state_;
  std::uint64_t samples_ = 0;
};

}  // namespace gretel::detect
