// Request/response pairing and per-API latency anomaly detection (§5.3).
//
// "REST latencies are computed by pairing request and response messages
// based on TCP connection metadata, like IP and port, while RPC latencies
// are computed using IP and message identifier that is unique to each pair."
// LatencyTracker does exactly that, maintains a latency time series per API,
// and feeds each series to its own pluggable outlier detector.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "detect/outlier.h"
#include "util/quantile_sketch.h"
#include "util/stats.h"
#include "util/time.h"
#include "wire/message.h"

namespace gretel::detect {

struct LatencyAlarm {
  wire::ApiId api;
  Alarm alarm;          // alarm.value is the latency in milliseconds
  util::SimTime when;   // response timestamp
};

// Degraded-telemetry accounting: what the tracker refused to feed into the
// per-API series because the telemetry substrate lied about time or lost
// the closing half of an exchange.
struct LatencyGuardStats {
  // Negative request→response gaps (capture clock skew between the tapped
  // nodes); the sample is clamped to 0 ms rather than poisoning the
  // baseline with a nonsense level.
  std::uint64_t clamped_negative = 0;
  // NaN / infinite gaps (should be impossible with integer sim time, but
  // the detectors also consume operator-supplied series); rejected.
  std::uint64_t rejected_nonfinite = 0;
  // Requests whose response never arrived within the orphan timeout: swept
  // from the pending maps, or rejected when the response finally limped in
  // past the deadline.  Each lost exchange is counted exactly once.
  std::uint64_t orphans_reaped = 0;
  // Streaming only (in-flight cap armed): oldest pending requests evicted
  // to hold the table under the cap when losses outpace the orphan reaper.
  std::uint64_t inflight_evicted = 0;
  // Streaming only (series cap armed): retained latency samples trimmed
  // from the front of per-API series.  The P² sketch still saw them — only
  // the raw retained window shrinks.
  std::uint64_t series_trimmed = 0;
};

class LatencyTracker {
 public:
  using Factory = std::function<std::unique_ptr<OutlierDetector>()>;

  explicit LatencyTracker(Factory factory);
  LatencyTracker();  // defaults to the level-shift detector

  // Feeds one captured event.  Responses that close a pending request
  // produce a latency sample; a confirmed anomaly returns a LatencyAlarm.
  // The EventHeader overload is the real implementation — pairing and the
  // level-shift feed read only header fields — so the sharded pipeline can
  // hand workers flat 40-byte headers instead of full events.
  std::optional<LatencyAlarm> observe(const wire::EventHeader& event);
  std::optional<LatencyAlarm> observe(const wire::Event& event) {
    return observe(wire::EventHeader(event));
  }

  // Orphan-request reaper (0 = off).  Whether a pairing is admitted depends
  // only on the response−request gap vs the timeout — never on sweep
  // timing — so detection output is identical for any shard layout; the
  // periodic sweep merely reclaims the pending-map memory a lossy tap
  // would otherwise leak.
  void set_orphan_timeout_seconds(double seconds) {
    orphan_timeout_seconds_ = seconds;
  }
  const LatencyGuardStats& guard_stats() const { return guards_; }

  // Time-based sweep for streaming mode.  The observe-cadence sweep above
  // only fires while events flow; an idle stream would never reap its
  // orphans.  The stream tick calls this with the watermark instead.
  // Admission is still decided at pairing time, so output is unaffected.
  void sweep_now(util::SimTime now);

  // --- streaming bounds (all off by default; batch behavior is exactly
  // unchanged while they stay off) ---

  // Caps the pending-request table at `cap` entries; the oldest pending
  // request is evicted with accounting (guards().inflight_evicted) when a
  // new one would exceed it.  0 = unbounded.
  void set_inflight_cap(std::size_t cap) { inflight_cap_ = cap; }

  // Retains only the newest latency samples per API: once a series exceeds
  // `cap` points it is compacted to cap/2 (amortized O(1) per sample).
  // Detection is unaffected — the level-shift detector owns its own
  // bounded window; only the retained raw series shrinks.  0 = unbounded.
  void set_series_cap(std::size_t cap) { series_cap_ = cap; }

  // Feeds every admitted latency sample into a constant-memory P² sketch
  // per API (full-history baseline quantiles that survive series trims).
  void set_sketch_enabled(bool on) { sketch_enabled_ = on; }

  // Latency series recorded so far for an API (milliseconds).
  const util::TimeSeries* series(wire::ApiId api) const;

  // P² baseline sketch for an API; null until a sample was admitted with
  // the sketch enabled.
  const util::QuantileSketch* sketch(wire::ApiId api) const;

  // Requests that never saw a response (diagnostic).
  std::size_t pending() const {
    return pending_rest_.size() + pending_rpc_.size();
  }
  std::uint64_t samples() const { return samples_; }

  // Footprint accounting for the streaming soak assertions.
  std::size_t series_points() const;
  std::size_t inflight_queue() const {
    return inflight_fifo_.size() - inflight_head_;
  }

  // Checkpoint support (src/persist/): serializes the dynamic state —
  // pending request maps, per-API series/detector/sketch, in-flight FIFO,
  // guard counters — in deterministic (sorted-key) order.  The knobs
  // (orphan timeout, caps, sketch enable) are config, not state: restore
  // re-arms them from GretelConfig before calling load_state.  save_state
  // never mutates the tracker; load_state replaces all dynamic state, or
  // resets the tracker and returns false on torn/malformed input or a
  // detector-type mismatch against this tracker's factory.
  void save_state(std::string& out) const;
  bool load_state(std::string_view& in);

 private:
  struct PerApi {
    util::TimeSeries series;
    std::unique_ptr<OutlierDetector> detector;
    util::QuantileSketch sketch;
  };

  // Insertion-order record for the in-flight cap.  Entries are never
  // eagerly removed on pairing (that would need a per-map index); instead
  // an entry is "stale" when its key no longer maps to its timestamp, and
  // stale entries are skipped during eviction and compacted lazily.
  struct InflightEntry {
    std::uint64_t key;
    util::SimTime ts;
    bool rpc;
  };

  PerApi& per_api(wire::ApiId api);
  void sweep_orphans(util::SimTime now);
  bool stale(const InflightEntry& e) const;
  void note_inflight(std::uint64_t key, util::SimTime ts, bool rpc);

  Factory factory_;
  std::unordered_map<std::uint32_t, util::SimTime> pending_rest_;  // conn_id
  std::unordered_map<std::uint64_t, util::SimTime> pending_rpc_;   // msg_id
  std::unordered_map<wire::ApiId, PerApi> state_;
  // FIFO as vector + head index (a deque's move ctor is not noexcept,
  // which would pessimize LatencyShardSet's tracker vector).  Entries
  // before inflight_head_ are consumed; compaction reclaims them together
  // with stale live entries.
  std::vector<InflightEntry> inflight_fifo_;
  std::size_t inflight_head_ = 0;
  std::uint64_t samples_ = 0;
  double orphan_timeout_seconds_ = 0.0;
  std::uint32_t observes_since_sweep_ = 0;
  std::size_t inflight_cap_ = 0;
  std::size_t series_cap_ = 0;
  bool sketch_enabled_ = false;
  LatencyGuardStats guards_;
};

}  // namespace gretel::detect
