// Request/response pairing and per-API latency anomaly detection (§5.3).
//
// "REST latencies are computed by pairing request and response messages
// based on TCP connection metadata, like IP and port, while RPC latencies
// are computed using IP and message identifier that is unique to each pair."
// LatencyTracker does exactly that, maintains a latency time series per API,
// and feeds each series to its own pluggable outlier detector.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "detect/outlier.h"
#include "util/stats.h"
#include "util/time.h"
#include "wire/message.h"

namespace gretel::detect {

struct LatencyAlarm {
  wire::ApiId api;
  Alarm alarm;          // alarm.value is the latency in milliseconds
  util::SimTime when;   // response timestamp
};

// Degraded-telemetry accounting: what the tracker refused to feed into the
// per-API series because the telemetry substrate lied about time or lost
// the closing half of an exchange.
struct LatencyGuardStats {
  // Negative request→response gaps (capture clock skew between the tapped
  // nodes); the sample is clamped to 0 ms rather than poisoning the
  // baseline with a nonsense level.
  std::uint64_t clamped_negative = 0;
  // NaN / infinite gaps (should be impossible with integer sim time, but
  // the detectors also consume operator-supplied series); rejected.
  std::uint64_t rejected_nonfinite = 0;
  // Requests whose response never arrived within the orphan timeout: swept
  // from the pending maps, or rejected when the response finally limped in
  // past the deadline.  Each lost exchange is counted exactly once.
  std::uint64_t orphans_reaped = 0;
};

class LatencyTracker {
 public:
  using Factory = std::function<std::unique_ptr<OutlierDetector>()>;

  explicit LatencyTracker(Factory factory);
  LatencyTracker();  // defaults to the level-shift detector

  // Feeds one captured event.  Responses that close a pending request
  // produce a latency sample; a confirmed anomaly returns a LatencyAlarm.
  // The EventHeader overload is the real implementation — pairing and the
  // level-shift feed read only header fields — so the sharded pipeline can
  // hand workers flat 40-byte headers instead of full events.
  std::optional<LatencyAlarm> observe(const wire::EventHeader& event);
  std::optional<LatencyAlarm> observe(const wire::Event& event) {
    return observe(wire::EventHeader(event));
  }

  // Orphan-request reaper (0 = off).  Whether a pairing is admitted depends
  // only on the response−request gap vs the timeout — never on sweep
  // timing — so detection output is identical for any shard layout; the
  // periodic sweep merely reclaims the pending-map memory a lossy tap
  // would otherwise leak.
  void set_orphan_timeout_seconds(double seconds) {
    orphan_timeout_seconds_ = seconds;
  }
  const LatencyGuardStats& guard_stats() const { return guards_; }

  // Latency series recorded so far for an API (milliseconds).
  const util::TimeSeries* series(wire::ApiId api) const;

  // Requests that never saw a response (diagnostic).
  std::size_t pending() const {
    return pending_rest_.size() + pending_rpc_.size();
  }
  std::uint64_t samples() const { return samples_; }

 private:
  struct PerApi {
    util::TimeSeries series;
    std::unique_ptr<OutlierDetector> detector;
  };

  PerApi& per_api(wire::ApiId api);
  void sweep_orphans(util::SimTime now);

  Factory factory_;
  std::unordered_map<std::uint32_t, util::SimTime> pending_rest_;  // conn_id
  std::unordered_map<std::uint64_t, util::SimTime> pending_rpc_;   // msg_id
  std::unordered_map<wire::ApiId, PerApi> state_;
  std::uint64_t samples_ = 0;
  double orphan_timeout_seconds_ = 0.0;
  std::uint32_t observes_since_sweep_ = 0;
  LatencyGuardStats guards_;
};

}  // namespace gretel::detect
