#include "detect/latency_tracker.h"

#include <cmath>

#include "detect/level_shift.h"

namespace gretel::detect {

namespace {
// Pending-map sweep cadence, in observe() calls.  The sweep only reclaims
// memory (admission is decided at pairing time), so the cadence affects
// footprint, never output.
constexpr std::uint32_t kSweepStride = 64;
}  // namespace

LatencyTracker::LatencyTracker(Factory factory)
    : factory_(std::move(factory)) {}

LatencyTracker::LatencyTracker()
    : LatencyTracker([] { return make_level_shift(); }) {}

LatencyTracker::PerApi& LatencyTracker::per_api(wire::ApiId api) {
  auto it = state_.find(api);
  if (it == state_.end()) {
    it = state_.emplace(api, PerApi{{}, factory_()}).first;
  }
  return it->second;
}

void LatencyTracker::sweep_orphans(util::SimTime now) {
  const auto expired = [&](util::SimTime req_ts) {
    return (now - req_ts).to_seconds() > orphan_timeout_seconds_;
  };
  for (auto it = pending_rest_.begin(); it != pending_rest_.end();) {
    if (expired(it->second)) {
      it = pending_rest_.erase(it);
      ++guards_.orphans_reaped;
    } else {
      ++it;
    }
  }
  for (auto it = pending_rpc_.begin(); it != pending_rpc_.end();) {
    if (expired(it->second)) {
      it = pending_rpc_.erase(it);
      ++guards_.orphans_reaped;
    } else {
      ++it;
    }
  }
}

std::optional<LatencyAlarm> LatencyTracker::observe(
    const wire::EventHeader& event) {
  if (orphan_timeout_seconds_ > 0.0 &&
      ++observes_since_sweep_ >= kSweepStride) {
    observes_since_sweep_ = 0;
    sweep_orphans(event.ts);
  }

  if (event.is_request()) {
    if (event.kind == wire::ApiKind::Rest) {
      pending_rest_[event.conn_id] = event.ts;
    } else {
      pending_rpc_[event.msg_id] = event.ts;
    }
    return std::nullopt;
  }

  // Response: close out the pending request, if any.
  util::SimTime req_ts;
  if (event.kind == wire::ApiKind::Rest) {
    const auto it = pending_rest_.find(event.conn_id);
    if (it == pending_rest_.end()) return std::nullopt;
    req_ts = it->second;
    pending_rest_.erase(it);
  } else {
    const auto it = pending_rpc_.find(event.msg_id);
    if (it == pending_rpc_.end()) return std::nullopt;
    req_ts = it->second;
    pending_rpc_.erase(it);
  }

  // Pairing-time admission: a response past the orphan timeout is the tail
  // of an exchange the tap effectively lost — its latency reflects the
  // degradation, not the service.  Decided here (never in the sweep) so
  // output is independent of sweep cadence and shard layout.
  if (orphan_timeout_seconds_ > 0.0 &&
      (event.ts - req_ts).to_seconds() > orphan_timeout_seconds_) {
    ++guards_.orphans_reaped;
    return std::nullopt;
  }

  double latency_ms = (event.ts - req_ts).to_millis();
  if (!std::isfinite(latency_ms)) {
    ++guards_.rejected_nonfinite;
    return std::nullopt;
  }
  if (latency_ms < 0.0) {
    // Capture clock skew between the tapped nodes.  The exchange is real, so
    // keep the sample, but clamp the impossible gap rather than feeding a
    // negative level into the baseline.
    latency_ms = 0.0;
    ++guards_.clamped_negative;
  }
  const double t_s = event.ts.to_seconds();
  auto& pa = per_api(event.api);
  pa.series.add(t_s, latency_ms);
  ++samples_;

  const auto alarm = pa.detector->observe(t_s, latency_ms);
  if (!alarm) return std::nullopt;
  return LatencyAlarm{event.api, *alarm, event.ts};
}

const util::TimeSeries* LatencyTracker::series(wire::ApiId api) const {
  const auto it = state_.find(api);
  return it == state_.end() ? nullptr : &it->second.series;
}

}  // namespace gretel::detect
