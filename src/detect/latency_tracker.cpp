#include "detect/latency_tracker.h"

#include <algorithm>
#include <cmath>

#include "detect/level_shift.h"

namespace gretel::detect {

namespace {
// Pending-map sweep cadence, in observe() calls.  The sweep only reclaims
// memory (admission is decided at pairing time), so the cadence affects
// footprint, never output.
constexpr std::uint32_t kSweepStride = 64;
}  // namespace

LatencyTracker::LatencyTracker(Factory factory)
    : factory_(std::move(factory)) {}

LatencyTracker::LatencyTracker()
    : LatencyTracker([] { return make_level_shift(); }) {}

LatencyTracker::PerApi& LatencyTracker::per_api(wire::ApiId api) {
  auto it = state_.find(api);
  if (it == state_.end()) {
    it = state_.emplace(api, PerApi{{}, factory_()}).first;
  }
  return it->second;
}

void LatencyTracker::sweep_now(util::SimTime now) {
  if (orphan_timeout_seconds_ <= 0.0) return;
  observes_since_sweep_ = 0;
  sweep_orphans(now);
}

bool LatencyTracker::stale(const InflightEntry& e) const {
  if (e.rpc) {
    const auto it = pending_rpc_.find(e.key);
    return it == pending_rpc_.end() || it->second != e.ts;
  }
  const auto it = pending_rest_.find(static_cast<std::uint32_t>(e.key));
  return it == pending_rest_.end() || it->second != e.ts;
}

void LatencyTracker::note_inflight(std::uint64_t key, util::SimTime ts,
                                   bool rpc) {
  inflight_fifo_.push_back({key, ts, rpc});

  // Pairing and the orphan sweep erase map entries but leave their FIFO
  // records behind (no per-map back-index), and pops only advance the head
  // index.  When dead entries dominate, one pass reclaims them — amortized
  // O(1) per insert, and the queue stays O(pending + cap).
  const std::size_t slack = inflight_cap_ + 64;
  if (inflight_fifo_.size() > 2 * (pending() + slack)) {
    std::size_t w = 0;
    for (std::size_t r = inflight_head_; r < inflight_fifo_.size(); ++r) {
      if (!stale(inflight_fifo_[r])) inflight_fifo_[w++] = inflight_fifo_[r];
    }
    inflight_fifo_.resize(w);
    inflight_head_ = 0;
  }

  // Enforce the cap: evict the oldest still-pending request, exactly
  // accounted.  A request evicted here is one the stream lost the response
  // to (or will look like it did) — the same degradation the orphan reaper
  // accounts, but forced early by memory pressure.
  while (pending() > inflight_cap_ &&
         inflight_head_ < inflight_fifo_.size()) {
    const InflightEntry entry = inflight_fifo_[inflight_head_++];
    if (stale(entry)) continue;
    if (entry.rpc) {
      pending_rpc_.erase(entry.key);
    } else {
      pending_rest_.erase(static_cast<std::uint32_t>(entry.key));
    }
    ++guards_.inflight_evicted;
  }
}

void LatencyTracker::sweep_orphans(util::SimTime now) {
  const auto expired = [&](util::SimTime req_ts) {
    return (now - req_ts).to_seconds() > orphan_timeout_seconds_;
  };
  for (auto it = pending_rest_.begin(); it != pending_rest_.end();) {
    if (expired(it->second)) {
      it = pending_rest_.erase(it);
      ++guards_.orphans_reaped;
    } else {
      ++it;
    }
  }
  for (auto it = pending_rpc_.begin(); it != pending_rpc_.end();) {
    if (expired(it->second)) {
      it = pending_rpc_.erase(it);
      ++guards_.orphans_reaped;
    } else {
      ++it;
    }
  }
}

std::optional<LatencyAlarm> LatencyTracker::observe(
    const wire::EventHeader& event) {
  if (orphan_timeout_seconds_ > 0.0 &&
      ++observes_since_sweep_ >= kSweepStride) {
    observes_since_sweep_ = 0;
    sweep_orphans(event.ts);
  }

  if (event.is_request()) {
    if (event.kind == wire::ApiKind::Rest) {
      pending_rest_[event.conn_id] = event.ts;
      if (inflight_cap_ > 0) note_inflight(event.conn_id, event.ts, false);
    } else {
      pending_rpc_[event.msg_id] = event.ts;
      if (inflight_cap_ > 0) note_inflight(event.msg_id, event.ts, true);
    }
    return std::nullopt;
  }

  // Response: close out the pending request, if any.
  util::SimTime req_ts;
  if (event.kind == wire::ApiKind::Rest) {
    const auto it = pending_rest_.find(event.conn_id);
    if (it == pending_rest_.end()) return std::nullopt;
    req_ts = it->second;
    pending_rest_.erase(it);
  } else {
    const auto it = pending_rpc_.find(event.msg_id);
    if (it == pending_rpc_.end()) return std::nullopt;
    req_ts = it->second;
    pending_rpc_.erase(it);
  }

  // Pairing-time admission: a response past the orphan timeout is the tail
  // of an exchange the tap effectively lost — its latency reflects the
  // degradation, not the service.  Decided here (never in the sweep) so
  // output is independent of sweep cadence and shard layout.
  if (orphan_timeout_seconds_ > 0.0 &&
      (event.ts - req_ts).to_seconds() > orphan_timeout_seconds_) {
    ++guards_.orphans_reaped;
    return std::nullopt;
  }

  double latency_ms = (event.ts - req_ts).to_millis();
  if (!std::isfinite(latency_ms)) {
    ++guards_.rejected_nonfinite;
    return std::nullopt;
  }
  if (latency_ms < 0.0) {
    // Capture clock skew between the tapped nodes.  The exchange is real, so
    // keep the sample, but clamp the impossible gap rather than feeding a
    // negative level into the baseline.
    latency_ms = 0.0;
    ++guards_.clamped_negative;
  }
  const double t_s = event.ts.to_seconds();
  auto& pa = per_api(event.api);
  pa.series.add(t_s, latency_ms);
  ++samples_;
  if (sketch_enabled_) pa.sketch.add(latency_ms);
  if (series_cap_ > 0 && pa.series.size() > series_cap_) {
    // Compact to cap/2 so trims are amortized, not per-sample; the sketch
    // above keeps the full-history quantiles.
    const std::size_t keep = std::max<std::size_t>(1, series_cap_ / 2);
    const std::size_t drop = pa.series.size() - keep;
    pa.series.drop_front(drop);
    guards_.series_trimmed += drop;
  }

  const auto alarm = pa.detector->observe(t_s, latency_ms);
  if (!alarm) return std::nullopt;
  return LatencyAlarm{event.api, *alarm, event.ts};
}

const util::TimeSeries* LatencyTracker::series(wire::ApiId api) const {
  const auto it = state_.find(api);
  return it == state_.end() ? nullptr : &it->second.series;
}

const util::QuantileSketch* LatencyTracker::sketch(wire::ApiId api) const {
  const auto it = state_.find(api);
  if (it == state_.end() || it->second.sketch.count() == 0) return nullptr;
  return &it->second.sketch;
}

std::size_t LatencyTracker::series_points() const {
  std::size_t total = 0;
  for (const auto& [api, pa] : state_) total += pa.series.size();
  return total;
}

}  // namespace gretel::detect
