#include "detect/latency_tracker.h"

#include <algorithm>
#include <cmath>

#include "detect/level_shift.h"
#include "util/binio.h"

namespace gretel::detect {

namespace {
// Pending-map sweep cadence, in observe() calls.  The sweep only reclaims
// memory (admission is decided at pairing time), so the cadence affects
// footprint, never output.
constexpr std::uint32_t kSweepStride = 64;
}  // namespace

LatencyTracker::LatencyTracker(Factory factory)
    : factory_(std::move(factory)) {}

LatencyTracker::LatencyTracker()
    : LatencyTracker([] { return make_level_shift(); }) {}

LatencyTracker::PerApi& LatencyTracker::per_api(wire::ApiId api) {
  auto it = state_.find(api);
  if (it == state_.end()) {
    it = state_.emplace(api, PerApi{{}, factory_()}).first;
  }
  return it->second;
}

void LatencyTracker::sweep_now(util::SimTime now) {
  if (orphan_timeout_seconds_ <= 0.0) return;
  observes_since_sweep_ = 0;
  sweep_orphans(now);
}

bool LatencyTracker::stale(const InflightEntry& e) const {
  if (e.rpc) {
    const auto it = pending_rpc_.find(e.key);
    return it == pending_rpc_.end() || it->second != e.ts;
  }
  const auto it = pending_rest_.find(static_cast<std::uint32_t>(e.key));
  return it == pending_rest_.end() || it->second != e.ts;
}

void LatencyTracker::note_inflight(std::uint64_t key, util::SimTime ts,
                                   bool rpc) {
  inflight_fifo_.push_back({key, ts, rpc});

  // Pairing and the orphan sweep erase map entries but leave their FIFO
  // records behind (no per-map back-index), and pops only advance the head
  // index.  When dead entries dominate, one pass reclaims them — amortized
  // O(1) per insert, and the queue stays O(pending + cap).
  const std::size_t slack = inflight_cap_ + 64;
  if (inflight_fifo_.size() > 2 * (pending() + slack)) {
    std::size_t w = 0;
    for (std::size_t r = inflight_head_; r < inflight_fifo_.size(); ++r) {
      if (!stale(inflight_fifo_[r])) inflight_fifo_[w++] = inflight_fifo_[r];
    }
    inflight_fifo_.resize(w);
    inflight_head_ = 0;
  }

  // Enforce the cap: evict the oldest still-pending request, exactly
  // accounted.  A request evicted here is one the stream lost the response
  // to (or will look like it did) — the same degradation the orphan reaper
  // accounts, but forced early by memory pressure.
  while (pending() > inflight_cap_ &&
         inflight_head_ < inflight_fifo_.size()) {
    const InflightEntry entry = inflight_fifo_[inflight_head_++];
    if (stale(entry)) continue;
    if (entry.rpc) {
      pending_rpc_.erase(entry.key);
    } else {
      pending_rest_.erase(static_cast<std::uint32_t>(entry.key));
    }
    ++guards_.inflight_evicted;
  }
}

void LatencyTracker::sweep_orphans(util::SimTime now) {
  const auto expired = [&](util::SimTime req_ts) {
    return (now - req_ts).to_seconds() > orphan_timeout_seconds_;
  };
  for (auto it = pending_rest_.begin(); it != pending_rest_.end();) {
    if (expired(it->second)) {
      it = pending_rest_.erase(it);
      ++guards_.orphans_reaped;
    } else {
      ++it;
    }
  }
  for (auto it = pending_rpc_.begin(); it != pending_rpc_.end();) {
    if (expired(it->second)) {
      it = pending_rpc_.erase(it);
      ++guards_.orphans_reaped;
    } else {
      ++it;
    }
  }
}

std::optional<LatencyAlarm> LatencyTracker::observe(
    const wire::EventHeader& event) {
  if (orphan_timeout_seconds_ > 0.0 &&
      ++observes_since_sweep_ >= kSweepStride) {
    observes_since_sweep_ = 0;
    sweep_orphans(event.ts);
  }

  if (event.is_request()) {
    if (event.kind == wire::ApiKind::Rest) {
      pending_rest_[event.conn_id] = event.ts;
      if (inflight_cap_ > 0) note_inflight(event.conn_id, event.ts, false);
    } else {
      pending_rpc_[event.msg_id] = event.ts;
      if (inflight_cap_ > 0) note_inflight(event.msg_id, event.ts, true);
    }
    return std::nullopt;
  }

  // Response: close out the pending request, if any.
  util::SimTime req_ts;
  if (event.kind == wire::ApiKind::Rest) {
    const auto it = pending_rest_.find(event.conn_id);
    if (it == pending_rest_.end()) return std::nullopt;
    req_ts = it->second;
    pending_rest_.erase(it);
  } else {
    const auto it = pending_rpc_.find(event.msg_id);
    if (it == pending_rpc_.end()) return std::nullopt;
    req_ts = it->second;
    pending_rpc_.erase(it);
  }

  // Pairing-time admission: a response past the orphan timeout is the tail
  // of an exchange the tap effectively lost — its latency reflects the
  // degradation, not the service.  Decided here (never in the sweep) so
  // output is independent of sweep cadence and shard layout.
  if (orphan_timeout_seconds_ > 0.0 &&
      (event.ts - req_ts).to_seconds() > orphan_timeout_seconds_) {
    ++guards_.orphans_reaped;
    return std::nullopt;
  }

  double latency_ms = (event.ts - req_ts).to_millis();
  if (!std::isfinite(latency_ms)) {
    ++guards_.rejected_nonfinite;
    return std::nullopt;
  }
  if (latency_ms < 0.0) {
    // Capture clock skew between the tapped nodes.  The exchange is real, so
    // keep the sample, but clamp the impossible gap rather than feeding a
    // negative level into the baseline.
    latency_ms = 0.0;
    ++guards_.clamped_negative;
  }
  const double t_s = event.ts.to_seconds();
  auto& pa = per_api(event.api);
  pa.series.add(t_s, latency_ms);
  ++samples_;
  if (sketch_enabled_) pa.sketch.add(latency_ms);
  if (series_cap_ > 0 && pa.series.size() > series_cap_) {
    // Compact to cap/2 so trims are amortized, not per-sample; the sketch
    // above keeps the full-history quantiles.
    const std::size_t keep = std::max<std::size_t>(1, series_cap_ / 2);
    const std::size_t drop = pa.series.size() - keep;
    pa.series.drop_front(drop);
    guards_.series_trimmed += drop;
  }

  const auto alarm = pa.detector->observe(t_s, latency_ms);
  if (!alarm) return std::nullopt;
  return LatencyAlarm{event.api, *alarm, event.ts};
}

const util::TimeSeries* LatencyTracker::series(wire::ApiId api) const {
  const auto it = state_.find(api);
  return it == state_.end() ? nullptr : &it->second.series;
}

const util::QuantileSketch* LatencyTracker::sketch(wire::ApiId api) const {
  const auto it = state_.find(api);
  if (it == state_.end() || it->second.sketch.count() == 0) return nullptr;
  return &it->second.sketch;
}

std::size_t LatencyTracker::series_points() const {
  std::size_t total = 0;
  for (const auto& [api, pa] : state_) total += pa.series.size();
  return total;
}

void LatencyTracker::save_state(std::string& out) const {
  // Unordered maps are walked in sorted-key order so the same tracker state
  // always produces the same bytes (checkpoint files diff cleanly and the
  // recovery tests can compare blobs directly).
  {
    std::vector<std::uint32_t> keys;
    keys.reserve(pending_rest_.size());
    for (const auto& [k, ts] : pending_rest_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    util::put_u32(out, static_cast<std::uint32_t>(keys.size()));
    for (std::uint32_t k : keys) {
      util::put_u32(out, k);
      util::put_i64(out, pending_rest_.at(k).nanos());
    }
  }
  {
    std::vector<std::uint64_t> keys;
    keys.reserve(pending_rpc_.size());
    for (const auto& [k, ts] : pending_rpc_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    util::put_u32(out, static_cast<std::uint32_t>(keys.size()));
    for (std::uint64_t k : keys) {
      util::put_u64(out, k);
      util::put_i64(out, pending_rpc_.at(k).nanos());
    }
  }
  {
    std::vector<wire::ApiId> apis;
    apis.reserve(state_.size());
    for (const auto& [api, pa] : state_) apis.push_back(api);
    std::sort(apis.begin(), apis.end());
    util::put_u32(out, static_cast<std::uint32_t>(apis.size()));
    for (wire::ApiId api : apis) {
      const PerApi& pa = state_.at(api);
      util::put_u16(out, api.value());
      util::put_bytes(out, pa.detector->name());
      std::string det;
      pa.detector->save_state(det);
      util::put_bytes(out, det);
      std::string sk;
      pa.sketch.save_state(sk);
      util::put_bytes(out, sk);
      util::put_u32(out, static_cast<std::uint32_t>(pa.series.size()));
      for (const auto& p : pa.series.points()) {
        util::put_f64(out, p.t_seconds);
        util::put_f64(out, p.value);
      }
    }
  }
  // The live slice of the in-flight FIFO, verbatim: eviction order after a
  // restore is exactly what it would have been without the crash.  Stale
  // (already-paired / already-swept) entries only exist to be skipped, so
  // they are not worth the bytes.
  {
    std::uint32_t live = 0;
    for (std::size_t i = inflight_head_; i < inflight_fifo_.size(); ++i) {
      if (!stale(inflight_fifo_[i])) ++live;
    }
    util::put_u32(out, live);
    for (std::size_t i = inflight_head_; i < inflight_fifo_.size(); ++i) {
      const InflightEntry& e = inflight_fifo_[i];
      if (stale(e)) continue;
      util::put_u64(out, e.key);
      util::put_i64(out, e.ts.nanos());
      util::put_u8(out, e.rpc ? 1 : 0);
    }
  }
  util::put_u64(out, samples_);
  util::put_u32(out, observes_since_sweep_);
  util::put_u64(out, guards_.clamped_negative);
  util::put_u64(out, guards_.rejected_nonfinite);
  util::put_u64(out, guards_.orphans_reaped);
  util::put_u64(out, guards_.inflight_evicted);
  util::put_u64(out, guards_.series_trimmed);
}

bool LatencyTracker::load_state(std::string_view& in) {
  const auto reset_all = [this] {
    pending_rest_.clear();
    pending_rpc_.clear();
    state_.clear();
    inflight_fifo_.clear();
    inflight_head_ = 0;
    samples_ = 0;
    observes_since_sweep_ = 0;
    guards_ = LatencyGuardStats{};
  };
  reset_all();
  constexpr std::uint32_t kMaxElems = 1u << 24;

  std::uint32_t n_rest = 0;
  if (!util::get_u32(in, n_rest) || n_rest > kMaxElems) return false;
  for (std::uint32_t i = 0; i < n_rest; ++i) {
    std::uint32_t k = 0;
    std::int64_t ts = 0;
    if (!util::get_u32(in, k) || !util::get_i64(in, ts)) {
      reset_all();
      return false;
    }
    pending_rest_.emplace(k, util::SimTime(ts));
  }
  std::uint32_t n_rpc = 0;
  if (!util::get_u32(in, n_rpc) || n_rpc > kMaxElems) {
    reset_all();
    return false;
  }
  for (std::uint32_t i = 0; i < n_rpc; ++i) {
    std::uint64_t k = 0;
    std::int64_t ts = 0;
    if (!util::get_u64(in, k) || !util::get_i64(in, ts)) {
      reset_all();
      return false;
    }
    pending_rpc_.emplace(k, util::SimTime(ts));
  }

  std::uint32_t n_apis = 0;
  if (!util::get_u32(in, n_apis) || n_apis > kMaxElems) {
    reset_all();
    return false;
  }
  for (std::uint32_t i = 0; i < n_apis; ++i) {
    std::uint16_t api_raw = 0;
    std::string_view det_name;
    std::string_view det_blob;
    std::string_view sk_blob;
    std::uint32_t n_pts = 0;
    if (!util::get_u16(in, api_raw) || !util::get_bytes(in, det_name) ||
        !util::get_bytes(in, det_blob) || !util::get_bytes(in, sk_blob)) {
      reset_all();
      return false;
    }
    PerApi pa{{}, factory_()};
    // A checkpoint written under a different detector configuration must
    // not be grafted onto this one: the blob layouts differ per type.
    if (pa.detector->name() != det_name ||
        !pa.detector->load_state(det_blob) || !det_blob.empty() ||
        !pa.sketch.load_state(sk_blob) || !sk_blob.empty()) {
      reset_all();
      return false;
    }
    if (!util::get_u32(in, n_pts) || n_pts > kMaxElems) {
      reset_all();
      return false;
    }
    for (std::uint32_t p = 0; p < n_pts; ++p) {
      double t = 0.0;
      double v = 0.0;
      if (!util::get_f64(in, t) || !util::get_f64(in, v)) {
        reset_all();
        return false;
      }
      pa.series.add(t, v);
    }
    state_.emplace(wire::ApiId(api_raw), std::move(pa));
  }

  std::uint32_t n_fifo = 0;
  if (!util::get_u32(in, n_fifo) || n_fifo > kMaxElems) {
    reset_all();
    return false;
  }
  for (std::uint32_t i = 0; i < n_fifo; ++i) {
    std::uint64_t key = 0;
    std::int64_t ts = 0;
    std::uint8_t rpc = 0;
    if (!util::get_u64(in, key) || !util::get_i64(in, ts) ||
        !util::get_u8(in, rpc)) {
      reset_all();
      return false;
    }
    inflight_fifo_.push_back({key, util::SimTime(ts), rpc != 0});
  }

  if (!util::get_u64(in, samples_) ||
      !util::get_u32(in, observes_since_sweep_) ||
      !util::get_u64(in, guards_.clamped_negative) ||
      !util::get_u64(in, guards_.rejected_nonfinite) ||
      !util::get_u64(in, guards_.orphans_reaped) ||
      !util::get_u64(in, guards_.inflight_evicted) ||
      !util::get_u64(in, guards_.series_trimmed)) {
    reset_all();
    return false;
  }
  return true;
}

}  // namespace gretel::detect
