#include "detect/latency_tracker.h"

#include "detect/level_shift.h"

namespace gretel::detect {

LatencyTracker::LatencyTracker(Factory factory)
    : factory_(std::move(factory)) {}

LatencyTracker::LatencyTracker()
    : LatencyTracker([] { return make_level_shift(); }) {}

LatencyTracker::PerApi& LatencyTracker::per_api(wire::ApiId api) {
  auto it = state_.find(api);
  if (it == state_.end()) {
    it = state_.emplace(api, PerApi{{}, factory_()}).first;
  }
  return it->second;
}

std::optional<LatencyAlarm> LatencyTracker::observe(const wire::Event& event) {
  if (event.is_request()) {
    if (event.kind == wire::ApiKind::Rest) {
      pending_rest_[event.conn_id] = event.ts;
    } else {
      pending_rpc_[event.msg_id] = event.ts;
    }
    return std::nullopt;
  }

  // Response: close out the pending request, if any.
  util::SimTime req_ts;
  if (event.kind == wire::ApiKind::Rest) {
    const auto it = pending_rest_.find(event.conn_id);
    if (it == pending_rest_.end()) return std::nullopt;
    req_ts = it->second;
    pending_rest_.erase(it);
  } else {
    const auto it = pending_rpc_.find(event.msg_id);
    if (it == pending_rpc_.end()) return std::nullopt;
    req_ts = it->second;
    pending_rpc_.erase(it);
  }

  const double latency_ms = (event.ts - req_ts).to_millis();
  const double t_s = event.ts.to_seconds();
  auto& pa = per_api(event.api);
  pa.series.add(t_s, latency_ms);
  ++samples_;

  const auto alarm = pa.detector->observe(t_s, latency_ms);
  if (!alarm) return std::nullopt;
  return LatencyAlarm{event.api, *alarm, event.ts};
}

const util::TimeSeries* LatencyTracker::series(wire::ApiId api) const {
  const auto it = state_.find(api);
  return it == state_.end() ? nullptr : &it->second.series;
}

}  // namespace gretel::detect
