#include "detect/ewma.h"

#include <cmath>

#include "util/binio.h"

namespace gretel::detect {

std::optional<Alarm> EwmaDetector::observe(double t_seconds, double value) {
  ++seen_;
  if (seen_ <= params_.warmup) {
    // Flat average during warm-up seeds the estimates.
    const double w = 1.0 / static_cast<double>(seen_);
    const double delta = value - mean_;
    mean_ += w * delta;
    var_ += w * (delta * (value - mean_) - var_);
    return std::nullopt;
  }

  const double sigma = std::max(std::sqrt(var_), params_.sigma_floor);
  const double dev = value - mean_;

  if (std::fabs(dev) > params_.k_sigma * sigma) {
    // Out-of-control samples are excluded from the estimates (folding them
    // in would inflate the variance and mask the very shift being
    // confirmed); a confirmed shift re-centers the chart instead.
    const int sign = dev > 0 ? 1 : -1;
    if (sign != run_sign_) {
      run_ = 0;
      run_sign_ = sign;
    }
    if (++run_ == params_.confirm) {
      Alarm a;
      a.t_seconds = t_seconds;
      a.value = value;
      a.baseline = mean_;
      a.magnitude = std::fabs(dev);
      a.direction = sign > 0 ? ShiftDirection::Up : ShiftDirection::Down;
      run_ = 0;
      run_sign_ = 0;
      mean_ = value;  // adapt to the confirmed new level
      return a;
    }
    return std::nullopt;
  }

  run_ = 0;
  run_sign_ = 0;
  const double delta = value - mean_;
  mean_ += params_.alpha * delta;
  var_ = (1.0 - params_.alpha) * (var_ + params_.alpha * delta * delta);
  return std::nullopt;
}

void EwmaDetector::reset() {
  mean_ = 0.0;
  var_ = 0.0;
  seen_ = 0;
  run_ = 0;
  run_sign_ = 0;
}

void EwmaDetector::save_state(std::string& out) const {
  util::put_f64(out, mean_);
  util::put_f64(out, var_);
  util::put_u64(out, seen_);
  util::put_u64(out, run_);
  util::put_i64(out, run_sign_);
}

bool EwmaDetector::load_state(std::string_view& in) {
  reset();
  std::uint64_t seen = 0;
  std::uint64_t run = 0;
  std::int64_t sign = 0;
  if (!util::get_f64(in, mean_) || !util::get_f64(in, var_) ||
      !util::get_u64(in, seen) || !util::get_u64(in, run) ||
      !util::get_i64(in, sign)) {
    reset();
    return false;
  }
  seen_ = static_cast<std::size_t>(seen);
  run_ = static_cast<std::size_t>(run);
  run_sign_ = static_cast<int>(sign);
  return true;
}

std::unique_ptr<OutlierDetector> make_ewma() {
  return std::make_unique<EwmaDetector>();
}

}  // namespace gretel::detect
