#include "net/capture_file.h"

#include <cstdio>
#include <memory>

namespace gretel::net {

namespace {

constexpr std::string_view kMagic = "GRTCAP01";
constexpr std::uint32_t kNoTruth = 0xFFFFFFFFu;

void put_u16(std::string& out, std::uint16_t v) {
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>(v & 0xFF);
}
void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xFFFF));
}
void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
}

bool get_u8(std::string_view& in, std::uint8_t& v) {
  if (in.empty()) return false;
  v = static_cast<std::uint8_t>(in.front());
  in.remove_prefix(1);
  return true;
}
bool get_u16(std::string_view& in, std::uint16_t& v) {
  if (in.size() < 2) return false;
  v = static_cast<std::uint16_t>(
      (static_cast<std::uint8_t>(in[0]) << 8) |
      static_cast<std::uint8_t>(in[1]));
  in.remove_prefix(2);
  return true;
}
bool get_u32(std::string_view& in, std::uint32_t& v) {
  std::uint16_t hi = 0;
  std::uint16_t lo = 0;
  if (!get_u16(in, hi) || !get_u16(in, lo)) return false;
  v = (static_cast<std::uint32_t>(hi) << 16) | lo;
  return true;
}
bool get_u64(std::string_view& in, std::uint64_t& v) {
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
  if (!get_u32(in, hi) || !get_u32(in, lo)) return false;
  v = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return true;
}

// Decodes one record at the cursor, consuming it on success.  On failure
// the cursor is partially consumed; callers that keep going must account
// from a saved copy.
bool decode_one_record(std::string_view& data, WireRecord& r) {
  std::uint64_t ts = 0;
  std::uint8_t src_node = 0;
  std::uint8_t dst_node = 0;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint8_t flags = 0;
  std::uint32_t truth_instance = 0;
  std::uint32_t truth_template = 0;
  std::uint16_t ident_count = 0;
  std::uint32_t byte_len = 0;

  if (!get_u64(data, ts) || !get_u8(data, src_node) ||
      !get_u8(data, dst_node) || !get_u32(data, src_ip) ||
      !get_u16(data, r.src.port) || !get_u32(data, dst_ip) ||
      !get_u16(data, r.dst.port) || !get_u32(data, r.conn_id) ||
      !get_u8(data, flags) || !get_u32(data, truth_instance) ||
      !get_u32(data, truth_template) || !get_u16(data, ident_count)) {
    return false;
  }
  r.ts = util::SimTime(static_cast<std::int64_t>(ts));
  r.src_node = wire::NodeId(src_node);
  r.dst_node = wire::NodeId(dst_node);
  r.src.ip = wire::Ipv4(src_ip);
  r.dst.ip = wire::Ipv4(dst_ip);
  r.is_amqp = (flags & 1) != 0;
  r.truth_noise = (flags & 2) != 0;
  if (truth_instance != kNoTruth)
    r.truth_instance = wire::OpInstanceId(truth_instance);
  if (truth_template != kNoTruth)
    r.truth_template = wire::OpTemplateId(truth_template);

  r.identifiers.reserve(ident_count);
  for (std::uint16_t k = 0; k < ident_count; ++k) {
    std::uint32_t ident = 0;
    if (!get_u32(data, ident)) return false;
    r.identifiers.push_back(ident);
  }
  if (!get_u32(data, byte_len) || data.size() < byte_len) return false;
  r.bytes = std::string(data.substr(0, byte_len));
  data.remove_prefix(byte_len);
  return true;
}

}  // namespace

std::string encode_capture(std::span<const WireRecord> records) {
  std::string out;
  // Rough size estimate: header + ~48 bytes metadata per record.
  std::size_t payload = 0;
  for (const auto& r : records) payload += r.bytes.size();
  out.reserve(16 + records.size() * 48 + payload);

  out += kMagic;
  put_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const auto& r : records) {
    put_u64(out, static_cast<std::uint64_t>(r.ts.nanos()));
    out += static_cast<char>(r.src_node.value());
    out += static_cast<char>(r.dst_node.value());
    put_u32(out, r.src.ip.value());
    put_u16(out, r.src.port);
    put_u32(out, r.dst.ip.value());
    put_u16(out, r.dst.port);
    put_u32(out, r.conn_id);
    const std::uint8_t flags = (r.is_amqp ? 1 : 0) |
                               (r.truth_noise ? 2 : 0);
    out += static_cast<char>(flags);
    put_u32(out, r.truth_instance.valid() ? r.truth_instance.value()
                                          : kNoTruth);
    put_u32(out, r.truth_template.valid() ? r.truth_template.value()
                                          : kNoTruth);
    put_u16(out, static_cast<std::uint16_t>(r.identifiers.size()));
    for (auto id : r.identifiers) put_u32(out, id);
    put_u32(out, static_cast<std::uint32_t>(r.bytes.size()));
    out += r.bytes;
  }
  return out;
}

std::optional<std::vector<WireRecord>> decode_capture(std::string_view data) {
  if (!data.starts_with(kMagic)) return std::nullopt;
  data.remove_prefix(kMagic.size());

  std::uint32_t count = 0;
  if (!get_u32(data, count)) return std::nullopt;

  std::vector<WireRecord> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WireRecord r;
    if (!decode_one_record(data, r)) return std::nullopt;
    out.push_back(std::move(r));
  }
  if (!data.empty()) return std::nullopt;  // trailing garbage
  return out;
}

LenientCapture decode_capture_lenient(std::string_view data) {
  LenientCapture out;
  if (!data.starts_with(kMagic)) {
    // Wrong format entirely: nothing salvageable.
    out.error_count = 1;
    out.bytes_discarded = data.size();
    out.truncated = true;
    return out;
  }
  data.remove_prefix(kMagic.size());

  std::uint32_t count = 0;
  if (!get_u32(data, count)) {
    out.bytes_discarded = data.size();
    out.truncated = true;
    return out;
  }

  out.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto before = data;
    WireRecord r;
    if (!decode_one_record(data, r)) {
      // Cut mid-record: everything from the last clean boundary is lost,
      // along with every record the header still promised.
      out.error_count = count - i;
      out.bytes_discarded = before.size();
      out.truncated = true;
      return out;
    }
    out.records.push_back(std::move(r));
  }
  // Full count decoded; any tail is garbage appended after the capture.
  out.bytes_discarded = data.size();
  return out;
}

bool write_capture_file(const std::string& path,
                        std::span<const WireRecord> records) {
  const auto data = encode_capture(records);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) return false;
  return std::fwrite(data.data(), 1, data.size(), f.get()) == data.size();
}

namespace {

std::optional<std::string> slurp(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return std::nullopt;
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) {
    data.append(buf, n);
  }
  return data;
}

}  // namespace

std::optional<std::vector<WireRecord>> read_capture_file(
    const std::string& path) {
  const auto data = slurp(path);
  if (!data) return std::nullopt;
  return decode_capture(*data);
}

std::optional<LenientCapture> read_capture_file_lenient(
    const std::string& path) {
  const auto data = slurp(path);
  if (!data) return std::nullopt;
  return decode_capture_lenient(*data);
}

}  // namespace gretel::net
