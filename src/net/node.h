// Physical-node model: resources and software dependencies.
//
// GRETEL's closed-system model (§4) attributes every fault to external
// factors: resource dependencies (CPU, memory, network, storage, disk I/O)
// and software dependencies (daemons such as nova-compute or the
// neutron linuxbridge agent, and reachability of MySQL / RabbitMQ / NTP).
// NodeState is the ground-truth substrate those factors live on; the
// monitoring agents sample it, fault injection perturbs it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/time.h"
#include "wire/api.h"
#include "wire/endpoint.h"

namespace gretel::net {

enum class ResourceKind : std::uint8_t {
  CpuPct,      // utilization 0..100
  MemUsedMb,   // resident memory
  DiskFreeMb,  // free space on the service partition
  NetMbps,     // NIC throughput
  DiskIoOps,   // disk operations per second
};
inline constexpr std::size_t kResourceKinds = 5;

std::string_view to_string(ResourceKind k);

// A time-bounded additive perturbation of one resource, installed by the
// fault-injection framework (e.g. a CPU surge on the Neutron server, §7.2.2,
// or disk exhaustion on Glance, §7.2.1).
struct ResourcePerturbation {
  ResourceKind kind = ResourceKind::CpuPct;
  util::SimTime start;
  util::SimTime end;
  double delta = 0.0;  // added to the baseline while active
};

// A time-bounded outage of one software dependency (daemon crash, stopped
// NTP agent, unreachable MySQL...).
struct SoftwareOutage {
  std::string name;
  util::SimTime start;
  util::SimTime end;
};

class NodeState {
 public:
  NodeState(wire::NodeId id, std::string hostname, wire::Ipv4 ip);

  wire::NodeId id() const { return id_; }
  const std::string& hostname() const { return hostname_; }
  wire::Ipv4 ip() const { return ip_; }

  // --- services hosted on this node ---
  void host_service(wire::ServiceKind s) { services_.push_back(s); }
  const std::vector<wire::ServiceKind>& services() const { return services_; }
  bool hosts(wire::ServiceKind s) const;

  // --- software dependencies (daemons / agents) ---
  void install_software(std::string name);
  const std::vector<std::string>& software() const { return software_; }
  void inject_outage(SoftwareOutage outage);
  bool software_running(std::string_view name, util::SimTime t) const;
  // Names of installed software currently down.
  std::vector<std::string> failed_software(util::SimTime t) const;

  // --- resources ---
  void set_baseline(ResourceKind kind, double value, double jitter_sigma);
  void inject_perturbation(ResourcePerturbation p);
  // Instantaneous value = baseline + jitter + active perturbations, clamped
  // to the physically meaningful range of the resource.
  double sample(ResourceKind kind, util::SimTime t, util::Rng& rng) const;
  // Deterministic value without jitter, for assertions in tests.
  double nominal(ResourceKind kind, util::SimTime t) const;

 private:
  double clamp_resource(ResourceKind kind, double v) const;

  wire::NodeId id_;
  std::string hostname_;
  wire::Ipv4 ip_;
  std::vector<wire::ServiceKind> services_;
  std::vector<std::string> software_;
  std::vector<SoftwareOutage> outages_;
  std::array<double, kResourceKinds> baseline_{};
  std::array<double, kResourceKinds> jitter_{};
  std::vector<ResourcePerturbation> perturbations_;
};

// Default software dependency set for a node hosting the given service,
// mirroring §5/§6: every node runs NTP and needs MySQL + RabbitMQ
// reachability; computes additionally run nova-compute and the neutron
// linuxbridge agent.
std::vector<std::string> default_software_for(wire::ServiceKind s);

}  // namespace gretel::net
