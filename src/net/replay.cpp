#include "net/replay.h"

#include <algorithm>

namespace gretel::net {

namespace {

// Regressions against the running timestamp maximum — the same notion of
// "non-monotonic" CaptureTap counts, so replay- and tap-side accounting for
// one capture agree.
std::uint64_t count_regressions(std::span<const WireRecord> records) {
  std::uint64_t n = 0;
  if (records.empty()) return n;
  auto last = records.front().ts;
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].ts < last) {
      ++n;
    } else {
      last = records[i].ts;
    }
  }
  return n;
}

}  // namespace

ReplayReport ReplayEngine::replay(std::span<const WireRecord> records,
                                  const Sink& sink) {
  return replay_looped(records, 1, ReplayOptions{}, sink);
}

ReplayReport ReplayEngine::replay(std::span<const WireRecord> records,
                                  const ReplayOptions& options,
                                  const Sink& sink) {
  return replay_looped(records, 1, options, sink);
}

ReplayReport ReplayEngine::replay_looped(std::span<const WireRecord> records,
                                         int loops, const Sink& sink) {
  return replay_looped(records, loops, ReplayOptions{}, sink);
}

ReplayReport ReplayEngine::replay_looped(std::span<const WireRecord> records,
                                         int loops,
                                         const ReplayOptions& options,
                                         const Sink& sink) {
  ReplayReport report;
  const auto input_regressions = count_regressions(records);

  std::vector<WireRecord> sorted;
  std::span<const WireRecord> feed = records;
  if (options.timestamp_policy == TimestampPolicy::Resort) {
    sorted.assign(records.begin(), records.end());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const WireRecord& a, const WireRecord& b) {
                       return a.ts < b.ts;
                     });
    feed = sorted;
  }

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < loops; ++i) {
    report.non_monotonic += input_regressions;
    if (options.timestamp_policy == TimestampPolicy::Drop) {
      util::SimTime last;
      bool first = true;
      for (const auto& r : feed) {
        if (!first && r.ts < last) {
          ++report.dropped;
          continue;
        }
        first = false;
        last = r.ts;
        sink(r);
        ++report.records;
        report.wire_bytes += r.bytes.size();
      }
    } else {
      for (const auto& r : feed) {
        sink(r);
        ++report.records;
        report.wire_bytes += r.bytes.size();
      }
    }
  }
  const auto end = std::chrono::steady_clock::now();
  report.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  return report;
}

}  // namespace gretel::net
