#include "net/replay.h"

namespace gretel::net {

ReplayReport ReplayEngine::replay(std::span<const WireRecord> records,
                                  const Sink& sink) {
  return replay_looped(records, 1, sink);
}

ReplayReport ReplayEngine::replay_looped(std::span<const WireRecord> records,
                                         int loops, const Sink& sink) {
  ReplayReport report;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < loops; ++i) {
    for (const auto& r : records) {
      sink(r);
      ++report.records;
      report.wire_bytes += r.bytes.size();
    }
  }
  const auto end = std::chrono::steady_clock::now();
  report.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  return report;
}

}  // namespace gretel::net
