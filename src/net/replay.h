// Replay engine: the tcpreplay analog used by the throughput experiments.
//
// §7.4.1 of the paper drives GRETEL with tcpreplay-generated event streams
// at up to 50K packets per second.  ReplayEngine feeds a recorded stream of
// WireRecords to a sink as fast as the sink can take them, measuring wall
// time, event rate and wire throughput (Mbps) — which is how Fig. 8c's
// y-axis is produced.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/capture.h"

namespace gretel::net {

// What to do with records whose capture timestamp regressed behind an
// earlier record's (skewed tap clocks, merged multi-tap captures).
enum class TimestampPolicy : std::uint8_t {
  Accept,  // feed as-is; regressions are only counted (legacy behavior)
  Drop,    // skip regressing records so the sink sees a monotone stream
  Resort,  // stable-sort by timestamp before feeding (ties keep capture order)
};

struct ReplayOptions {
  TimestampPolicy timestamp_policy = TimestampPolicy::Accept;
};

struct ReplayReport {
  std::uint64_t records = 0;
  std::uint64_t wire_bytes = 0;
  double wall_seconds = 0.0;
  // Input records whose timestamp regressed behind the running maximum
  // (counted under every policy; under Resort the sink still sees none).
  std::uint64_t non_monotonic = 0;
  // Records withheld from the sink by TimestampPolicy::Drop.
  std::uint64_t dropped = 0;

  double events_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(records) / wall_seconds
                            : 0.0;
  }
  double mbps() const {
    return wall_seconds > 0
               ? static_cast<double>(wire_bytes) * 8.0 / 1e6 / wall_seconds
               : 0.0;
  }
};

class ReplayEngine {
 public:
  using Sink = std::function<void(const WireRecord&)>;

  // Feeds every record to `sink` back-to-back and reports achieved rates.
  static ReplayReport replay(std::span<const WireRecord> records,
                             const Sink& sink);
  static ReplayReport replay(std::span<const WireRecord> records,
                             const ReplayOptions& options, const Sink& sink);

  // Feeds the records `loops` times (tcpreplay --loop), for longer
  // steady-state measurements on small captures.
  static ReplayReport replay_looped(std::span<const WireRecord> records,
                                    int loops, const Sink& sink);
  static ReplayReport replay_looped(std::span<const WireRecord> records,
                                    int loops, const ReplayOptions& options,
                                    const Sink& sink);
};

}  // namespace gretel::net
