#include "net/node.h"

#include <algorithm>

namespace gretel::net {

std::string_view to_string(ResourceKind k) {
  switch (k) {
    case ResourceKind::CpuPct:
      return "cpu";
    case ResourceKind::MemUsedMb:
      return "memory";
    case ResourceKind::DiskFreeMb:
      return "disk-free";
    case ResourceKind::NetMbps:
      return "net-throughput";
    case ResourceKind::DiskIoOps:
      return "disk-io";
  }
  return "?";
}

NodeState::NodeState(wire::NodeId id, std::string hostname, wire::Ipv4 ip)
    : id_(id), hostname_(std::move(hostname)), ip_(ip) {
  // Sensible idle baselines; deployments override per node.
  set_baseline(ResourceKind::CpuPct, 8.0, 1.5);
  set_baseline(ResourceKind::MemUsedMb, 4096.0, 64.0);
  set_baseline(ResourceKind::DiskFreeMb, 200000.0, 16.0);
  set_baseline(ResourceKind::NetMbps, 20.0, 4.0);
  set_baseline(ResourceKind::DiskIoOps, 120.0, 20.0);
}

bool NodeState::hosts(wire::ServiceKind s) const {
  return std::find(services_.begin(), services_.end(), s) != services_.end();
}

void NodeState::install_software(std::string name) {
  if (std::find(software_.begin(), software_.end(), name) == software_.end())
    software_.push_back(std::move(name));
}

void NodeState::inject_outage(SoftwareOutage outage) {
  outages_.push_back(std::move(outage));
}

bool NodeState::software_running(std::string_view name,
                                 util::SimTime t) const {
  for (const auto& o : outages_) {
    if (o.name == name && t >= o.start && t < o.end) return false;
  }
  return true;
}

std::vector<std::string> NodeState::failed_software(util::SimTime t) const {
  std::vector<std::string> out;
  for (const auto& s : software_) {
    if (!software_running(s, t)) out.push_back(s);
  }
  return out;
}

void NodeState::set_baseline(ResourceKind kind, double value,
                             double jitter_sigma) {
  baseline_[static_cast<std::size_t>(kind)] = value;
  jitter_[static_cast<std::size_t>(kind)] = jitter_sigma;
}

void NodeState::inject_perturbation(ResourcePerturbation p) {
  perturbations_.push_back(p);
}

double NodeState::nominal(ResourceKind kind, util::SimTime t) const {
  double v = baseline_[static_cast<std::size_t>(kind)];
  for (const auto& p : perturbations_) {
    if (p.kind == kind && t >= p.start && t < p.end) v += p.delta;
  }
  return clamp_resource(kind, v);
}

double NodeState::sample(ResourceKind kind, util::SimTime t,
                         util::Rng& rng) const {
  const double jitter =
      rng.next_gaussian(0.0, jitter_[static_cast<std::size_t>(kind)]);
  return clamp_resource(kind, nominal(kind, t) + jitter);
}

double NodeState::clamp_resource(ResourceKind kind, double v) const {
  if (kind == ResourceKind::CpuPct) return std::clamp(v, 0.0, 100.0);
  return std::max(v, 0.0);
}

std::vector<std::string> default_software_for(wire::ServiceKind s) {
  using wire::ServiceKind;
  std::vector<std::string> deps{"ntpd"};
  switch (s) {
    case ServiceKind::Horizon:
      deps.push_back("apache2");
      break;
    case ServiceKind::Keystone:
      deps.push_back("keystone");
      break;
    case ServiceKind::Nova:
      deps.push_back("nova-api");
      deps.push_back("nova-scheduler");
      deps.push_back("nova-conductor");
      break;
    case ServiceKind::NovaCompute:
      deps.push_back("nova-compute");
      deps.push_back("neutron-plugin-linuxbridge-agent");
      deps.push_back("libvirtd");
      break;
    case ServiceKind::Neutron:
      deps.push_back("neutron-server");
      deps.push_back("neutron-dhcp-agent");
      break;
    case ServiceKind::NeutronAgent:
      deps.push_back("neutron-plugin-linuxbridge-agent");
      break;
    case ServiceKind::Glance:
      deps.push_back("glance-api");
      deps.push_back("glance-registry");
      break;
    case ServiceKind::Cinder:
      deps.push_back("cinder-api");
      deps.push_back("cinder-volume");
      break;
    case ServiceKind::Swift:
      deps.push_back("swift-proxy");
      break;
    case ServiceKind::RabbitMq:
      deps.push_back("rabbitmq-server");
      break;
    case ServiceKind::MySql:
      deps.push_back("mysqld");
      break;
    case ServiceKind::Ntp:
    case ServiceKind::Unknown:
      break;
  }
  return deps;
}

}  // namespace gretel::net
