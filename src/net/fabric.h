// Network fabric: inter-node delivery latency and tc-style injection.
//
// The paper's testbed connects 7 servers through a three-tier switch fabric
// and uses `tc` to inject latency for the performance-fault experiments
// (§7.3 item 4).  Fabric models per-pair base latency plus time-bounded
// injected delay rules — the LatencyInjector is the tc analog.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/time.h"
#include "wire/endpoint.h"

namespace gretel::net {

// One tc rule: add `extra` to every message to or from `node` in [start,end).
struct LatencyRule {
  wire::NodeId node;
  util::SimTime start;
  util::SimTime end;
  util::SimDuration extra;
};

class LatencyInjector {
 public:
  void add_rule(LatencyRule rule) { rules_.push_back(rule); }
  void clear() { rules_.clear(); }

  // Extra one-way latency applying to a message between src and dst at t.
  util::SimDuration extra_delay(wire::NodeId src, wire::NodeId dst,
                                util::SimTime t) const;

 private:
  std::vector<LatencyRule> rules_;
};

class Fabric {
 public:
  // base: one-way propagation + switching delay between two distinct nodes;
  // jitter_sigma adds per-message gaussian noise.
  explicit Fabric(util::SimDuration base = util::SimDuration::micros(200),
                  util::SimDuration jitter_sigma = util::SimDuration::micros(40));

  LatencyInjector& injector() { return injector_; }
  const LatencyInjector& injector() const { return injector_; }

  // One-way delivery delay for a message sent at time t.
  util::SimDuration delivery_delay(wire::NodeId src, wire::NodeId dst,
                                   util::SimTime t, util::Rng& rng) const;

 private:
  util::SimDuration base_;
  util::SimDuration jitter_sigma_;
  LatencyInjector injector_;
};

}  // namespace gretel::net
