// Capture persistence: a pcap-style on-disk format for WireRecords.
//
// Lets deployments record control-plane traffic once and replay it through
// the analyzer later (the tcpreplay workflow of §7.4.1), and lets the CLI
// tools pass captures between the capture, training, and analysis stages.
//
// Format (all integers big-endian):
//   magic    "GRTCAP01"
//   count    u32                       number of records
//   records  count times:
//     ts        i64   nanoseconds since sim epoch
//     src_node  u8     dst_node  u8
//     src_ip    u32    src_port  u16
//     dst_ip    u32    dst_port  u16
//     conn_id   u32
//     flags     u8    bit0 = is_amqp, bit1 = truth_noise
//     truth_instance u32 (0xFFFFFFFF = none)
//     truth_template u32 (0xFFFFFFFF = none)
//     idents    u16 count, then u32 each
//     bytes     u32 length, then raw bytes
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/capture.h"

namespace gretel::net {

// In-memory encode/decode (the file functions wrap these; also used by
// tests and any transport that isn't a file).
std::string encode_capture(std::span<const WireRecord> records);
// Strict: nullopt on bad magic, truncation, or trailing garbage.
std::optional<std::vector<WireRecord>> decode_capture(std::string_view data);

// Result of a lenient decode: every record that parsed cleanly before the
// first defect, plus an accounting of what was lost.  A capture cut short
// by a crashed recorder or a partial copy still yields its salvageable
// prefix instead of nothing.
struct LenientCapture {
  std::vector<WireRecord> records;
  // Declared records that could not be decoded (header truncated mid-record
  // or the declared count exceeded what the stream held).
  std::uint64_t error_count = 0;
  // Bytes abandoned after the last cleanly decoded record (partial record,
  // or trailing garbage past the declared count).
  std::uint64_t bytes_discarded = 0;
  // True when the stream ended before the declared record count.
  bool truncated = false;
};

// Lenient: never fails — decodes the longest clean prefix and accounts the
// rest.  Byte-identical records to decode_capture on well-formed input
// (error_count == 0, truncated == false).
LenientCapture decode_capture_lenient(std::string_view data);

// File convenience wrappers; false / nullopt on I/O failure.
bool write_capture_file(const std::string& path,
                        std::span<const WireRecord> records);
std::optional<std::vector<WireRecord>> read_capture_file(
    const std::string& path);
// Lenient file read: nullopt only when the file cannot be opened.
std::optional<LenientCapture> read_capture_file_lenient(
    const std::string& path);

}  // namespace gretel::net
