// Capture taps: the Bro-agent analog.
//
// The simulated services emit WireRecords — raw bytes plus the transport
// metadata a packet capture sees (timestamps, addresses, TCP stream id).
// CaptureTap decodes those bytes with the wire codecs, normalizes concrete
// URIs back to catalog templates (UUIDs → <ID>), resolves the ApiId, and
// produces the header-level Events the analyzer consumes.  Ground-truth
// labels ride alongside the bytes for the evaluation harness only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/arena.h"
#include "wire/api.h"
#include "wire/message.h"

namespace gretel::net {

// What the wire sees for one message, before decoding.
struct WireRecord {
  util::SimTime ts;
  wire::NodeId src_node;
  wire::NodeId dst_node;
  wire::Endpoint src;
  wire::Endpoint dst;
  std::uint32_t conn_id = 0;  // TCP stream id (REST); 0 for AMQP
  bool is_amqp = false;
  std::string bytes;

  // Ground truth for evaluation (never read by the tap's decode path when
  // resolving APIs — only copied through into the Event).
  wire::OpInstanceId truth_instance;
  wire::OpTemplateId truth_template;
  bool truth_noise = false;
  std::vector<std::uint32_t> identifiers;
};

// Replaces URI segments that look like concrete identifiers (UUIDs, hex
// blobs, plain numbers) with the catalog placeholder "<ID>".  Query strings
// are dropped.  Exposed for tests.
std::string normalize_uri(std::string_view target);

// Hot-path variant: writes the normalized URI into `arena` scratch and
// returns a view that dies at the arena's next reset().  Byte-identical
// output to normalize_uri.
std::string_view normalize_uri(std::string_view target, util::Arena& arena);

// Parses OpenStack's "req-<n>" correlation value; 0 when absent, malformed,
// or too large for 32 bits (a wrapped id would silently alias another
// operation's snapshot reduction).  Exposed for tests.
std::uint32_t parse_correlation_id(std::optional<std::string_view> value);

struct TapStats {
  std::uint64_t decoded = 0;
  // Malformed frames (truncated / corrupted / garbage).  Every one is also
  // quarantined: counted here and sampled into the tap's postmortem ring.
  std::uint64_t decode_failures = 0;
  std::uint64_t unknown_api = 0;
  std::uint64_t bytes_seen = 0;
  // Frames whose capture timestamp regressed behind an earlier frame's
  // (clock skew between tapped nodes, or a reordering tap).
  std::uint64_t non_monotonic = 0;
};

// Postmortem sample of a malformed frame: enough transport metadata and
// leading bytes to identify the emitter and failure shape without retaining
// the whole (possibly large, possibly hostile) payload.
struct QuarantinedFrame {
  util::SimTime ts;
  wire::NodeId src_node;
  wire::NodeId dst_node;
  bool is_amqp = false;
  std::uint32_t wire_bytes = 0;
  std::string prefix;  // first bytes of the frame (kQuarantinePrefixBytes)
};

inline constexpr std::size_t kQuarantinePrefixBytes = 48;
inline constexpr std::size_t kQuarantineRingCapacity = 16;

class CaptureTap {
 public:
  // The tap needs the API catalog to resolve symbols and the node->service
  // map to attribute a REST request to the service exposing the endpoint.
  // `arena_slab_bytes` sizes the decode scratch arena's slabs
  // (GretelConfig::decode_arena_kb upstream).
  CaptureTap(const wire::ApiCatalog* catalog,
             std::unordered_map<std::uint16_t, wire::ServiceKind>
                 service_by_port,
             std::size_t arena_slab_bytes = util::Arena::kDefaultSlabBytes);

  // Decodes one captured message.  Returns nullopt for undecodable bytes or
  // APIs missing from the catalog (counted in stats).
  //
  // Zero-allocation steady state: headers, the normalized URI, and all
  // parse scratch live in the tap's arena (reset per call); the returned
  // Event owns no heap memory unless the record carries ground-truth
  // identifiers or an error payload that must outlive the batch.
  std::optional<wire::Event> decode(const WireRecord& record);

  const TapStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TapStats{}; }

  // Most recent malformed frames (up to kQuarantineRingCapacity), oldest
  // first.  stats().decode_failures counts every quarantined frame; the
  // ring keeps a bounded sample for postmortem.
  std::vector<QuarantinedFrame> quarantine() const;

  // Decode scratch introspection (bench / tests).
  const util::Arena& arena() const { return arena_; }

 private:
  std::optional<wire::Event> decode_rest(const WireRecord& record);
  std::optional<wire::Event> decode_amqp(const WireRecord& record);

  const wire::ApiCatalog* catalog_;
  std::unordered_map<std::uint16_t, wire::ServiceKind> service_by_port_;
  // Per-TCP-stream last request API, so responses resolve to the same API
  // (Bro pairs them the same way).
  std::unordered_map<std::uint32_t, wire::ApiId> conn_last_api_;
  void quarantine_record(const WireRecord& record);

  util::Arena arena_;  // per-record parse scratch, reset every decode()
  TapStats stats_;
  util::SimTime last_ts_;
  // Fixed-capacity quarantine ring: slot i of the latest samples, oldest
  // overwritten first.
  std::vector<QuarantinedFrame> quarantine_ring_;
  std::size_t quarantine_next_ = 0;
};

}  // namespace gretel::net
