// Capture taps: the Bro-agent analog.
//
// The simulated services emit WireRecords — raw bytes plus the transport
// metadata a packet capture sees (timestamps, addresses, TCP stream id).
// CaptureTap decodes those bytes with the wire codecs, normalizes concrete
// URIs back to catalog templates (UUIDs → <ID>), resolves the ApiId, and
// produces the header-level Events the analyzer consumes.  Ground-truth
// labels ride alongside the bytes for the evaluation harness only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "wire/api.h"
#include "wire/message.h"

namespace gretel::net {

// What the wire sees for one message, before decoding.
struct WireRecord {
  util::SimTime ts;
  wire::NodeId src_node;
  wire::NodeId dst_node;
  wire::Endpoint src;
  wire::Endpoint dst;
  std::uint32_t conn_id = 0;  // TCP stream id (REST); 0 for AMQP
  bool is_amqp = false;
  std::string bytes;

  // Ground truth for evaluation (never read by the tap's decode path when
  // resolving APIs — only copied through into the Event).
  wire::OpInstanceId truth_instance;
  wire::OpTemplateId truth_template;
  bool truth_noise = false;
  std::vector<std::uint32_t> identifiers;
};

// Replaces URI segments that look like concrete identifiers (UUIDs, hex
// blobs, plain numbers) with the catalog placeholder "<ID>".  Query strings
// are dropped.  Exposed for tests.
std::string normalize_uri(std::string_view target);

struct TapStats {
  std::uint64_t decoded = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t unknown_api = 0;
  std::uint64_t bytes_seen = 0;
};

class CaptureTap {
 public:
  // The tap needs the API catalog to resolve symbols and the node->service
  // map to attribute a REST request to the service exposing the endpoint.
  CaptureTap(const wire::ApiCatalog* catalog,
             std::unordered_map<std::uint16_t, wire::ServiceKind>
                 service_by_port);

  // Decodes one captured message.  Returns nullopt for undecodable bytes or
  // APIs missing from the catalog (counted in stats).
  std::optional<wire::Event> decode(const WireRecord& record);

  const TapStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TapStats{}; }

 private:
  std::optional<wire::Event> decode_rest(const WireRecord& record);
  std::optional<wire::Event> decode_amqp(const WireRecord& record);

  const wire::ApiCatalog* catalog_;
  std::unordered_map<std::uint16_t, wire::ServiceKind> service_by_port_;
  // Per-TCP-stream last request API, so responses resolve to the same API
  // (Bro pairs them the same way).
  std::unordered_map<std::uint32_t, wire::ApiId> conn_last_api_;
  TapStats stats_;
};

}  // namespace gretel::net
