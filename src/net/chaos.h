// Wire-level chaos injection: a deterministic fault model for the telemetry
// substrate itself.
//
// GRETEL localizes faults from non-intrusive wire observation, which means
// the capture tap is exposed to exactly the infrastructure stress it is
// meant to diagnose: mirror ports drop frames under load, taps stall and
// flush, NICs truncate, clocks skew between nodes.  stack/faults.h injects
// faults into the *workload*; ChaosTap injects them into the *wire* between
// the simulated fabric and the analyzer, so the degraded-telemetry behavior
// of the whole capture→decode→shard→detect path can be tested and measured
// (cf. the fault-injection validation methodology of arXiv:2010.00331).
//
// Determinism contract:
//  * With every rate at 0 (and clock skew off), ChaosTap is a byte-identical
//    pass-through that never touches its RNG.
//  * For a fixed seed, each frame's fate is decided by uniform draws made in
//    a fixed per-frame order, so runs are exactly reproducible — and the set
//    of frames dropped at rate r is a *subset* of the frames dropped at any
//    r' > r.  Loss sweeps are therefore monotone by construction, which is
//    what lets tests assert that detection quality degrades monotonically.
//  * Every injection is appended to an audit log, so tests can assert the
//    pipeline's quarantine/drop counters against exactly what was injected.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/capture.h"
#include "util/capped_log.h"
#include "util/rng.h"

namespace gretel::net {

enum class ChaosAction : std::uint8_t {
  Drop,        // uniform frame loss
  BurstDrop,   // frame lost inside a drop burst
  Truncate,    // frame cut mid-header / mid-body (detail = bytes kept)
  Corrupt,     // one byte flipped (detail = offset)
  Duplicate,   // frame delivered twice
  Reorder,     // frame delayed past later frames (detail = distance)
  ClockSkew,   // per-node capture clock offset (detail = skew in nanos;
               // one entry per node, on first frame from that node)
  Stall,       // tap stall onset (detail = frames stalled)
  StallDrop,   // frame lost to the stalled tap's bounded buffer
};

const char* to_string(ChaosAction action);

// One injected degradation, in arrival order.  `input_index` is the 0-based
// position of the affected frame in the input stream.
struct ChaosInjection {
  std::uint64_t input_index = 0;
  ChaosAction action = ChaosAction::Drop;
  std::int64_t detail = 0;
};

struct ChaosStats {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;  // frames actually delivered to the sink
  std::uint64_t dropped_uniform = 0;
  std::uint64_t dropped_burst = 0;
  std::uint64_t dropped_stall = 0;
  std::uint64_t truncated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t skewed = 0;  // frames whose timestamp was shifted
  std::uint64_t stalls = 0;

  std::uint64_t total_dropped() const {
    return dropped_uniform + dropped_burst + dropped_stall;
  }
};

struct ChaosConfig {
  std::uint64_t seed = 1;

  // Frame loss.  `drop_rate` is i.i.d. per frame; `burst_rate` is the
  // per-frame probability that a burst of `burst_length` consecutive losses
  // begins (mirror-port overflow behaves this way, not i.i.d.).
  double drop_rate = 0.0;
  double burst_rate = 0.0;
  std::size_t burst_length = 8;

  // Frame damage.  Truncation keeps a uniform [1, len-1] prefix, landing
  // mid-header or mid-body; corruption flips one byte at a uniform offset.
  double truncate_rate = 0.0;
  double corrupt_rate = 0.0;

  // Delivery faults.  Duplication re-delivers the frame back-to-back;
  // reordering delays a frame past up to `reorder_max_distance` later
  // frames (bounded, as TCP-based taps bound their resequencing window).
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  std::size_t reorder_max_distance = 4;

  // Per-node capture clock skew: each source node gets a fixed offset drawn
  // uniformly from [-clock_skew_max_ms, +clock_skew_max_ms], applied to
  // every frame it emits.  Produces non-monotonic interleavings and
  // negative request→response gaps downstream.
  double clock_skew_max_ms = 0.0;

  // Tap stall/resume: with probability `stall_rate` the tap stalls for the
  // next `stall_length` frames.  While stalled, frames are held in a buffer
  // of `stall_buffer` frames (oldest spills are lost — StallDrop); on
  // resume the surviving frames flush in order.
  double stall_rate = 0.0;
  std::size_t stall_length = 32;
  std::size_t stall_buffer = 16;

  // Audit-log retention: the newest `audit_limit` injections are kept for
  // reconciliation (0 = unbounded).  Aggregate stats() stay exact past the
  // cap; only the retained entry list is bounded, so thousand-scenario
  // campaigns cannot grow memory without bound.  audit().dropped() counts
  // the shed entries.
  std::size_t audit_limit = 65536;

  bool enabled() const {
    return drop_rate > 0 || burst_rate > 0 || truncate_rate > 0 ||
           corrupt_rate > 0 || duplicate_rate > 0 || reorder_rate > 0 ||
           clock_skew_max_ms > 0 || stall_rate > 0;
  }
};

// Streaming wrapper: feed frames in arrival order, receive the degraded
// stream through the sink.  finish() flushes frames still held by the
// reorder and stall machinery (a real tap flushes on shutdown too).
class ChaosTap {
 public:
  using Sink = std::function<void(const WireRecord&)>;

  ChaosTap(ChaosConfig config, Sink sink);

  void on_record(const WireRecord& record);
  void finish();

  const ChaosStats& stats() const { return stats_; }
  // Newest config.audit_limit injections in arrival order; dropped() on the
  // log counts entries shed past the cap (aggregate stats() stay exact).
  const util::CappedLog<ChaosInjection>& audit() const { return audit_; }

  // One-shot convenience: runs a whole capture through a fresh tap and
  // returns the degraded capture (what a lossy mirror port would have
  // recorded).  `stats` / `audit` receive the injection record if non-null.
  static std::vector<WireRecord> apply(const ChaosConfig& config,
                                       std::span<const WireRecord> records,
                                       ChaosStats* stats = nullptr,
                                       std::vector<ChaosInjection>* audit =
                                           nullptr);

 private:
  struct Held {
    WireRecord record;
    std::size_t remaining;  // deliveries left before release
    std::uint64_t input_index;
  };

  std::int64_t skew_for(wire::NodeId node, std::uint64_t input_index);
  // Final delivery stage: routes through the stall buffer when stalled.
  void deliver(WireRecord record, std::uint64_t input_index);
  void emit(const WireRecord& record);
  void flush_stall();
  void release_held();

  ChaosConfig config_;
  Sink sink_;
  util::Rng rng_;
  ChaosStats stats_;
  util::CappedLog<ChaosInjection> audit_;
  std::unordered_map<std::uint8_t, std::int64_t> node_skew_ns_;
  std::vector<Held> held_;  // reorder holding pen (tiny, bounded)
  std::deque<std::pair<WireRecord, std::uint64_t>> stall_buffer_;
  std::size_t burst_remaining_ = 0;
  std::size_t stall_remaining_ = 0;
  std::uint64_t index_ = 0;
};

}  // namespace gretel::net
