#include "net/chaos.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace gretel::net {

const char* to_string(ChaosAction action) {
  switch (action) {
    case ChaosAction::Drop: return "drop";
    case ChaosAction::BurstDrop: return "burst_drop";
    case ChaosAction::Truncate: return "truncate";
    case ChaosAction::Corrupt: return "corrupt";
    case ChaosAction::Duplicate: return "duplicate";
    case ChaosAction::Reorder: return "reorder";
    case ChaosAction::ClockSkew: return "clock_skew";
    case ChaosAction::Stall: return "stall";
    case ChaosAction::StallDrop: return "stall_drop";
  }
  return "unknown";
}

ChaosTap::ChaosTap(ChaosConfig config, Sink sink)
    : config_(config), sink_(std::move(sink)), rng_(config.seed),
      audit_(config.audit_limit) {}

std::int64_t ChaosTap::skew_for(wire::NodeId node,
                                std::uint64_t input_index) {
  const auto it = node_skew_ns_.find(node.value());
  if (it != node_skew_ns_.end()) return it->second;
  // Derived from (seed, node) alone so the offset does not depend on the
  // order nodes first appear in the stream.
  util::Rng node_rng(config_.seed ^
                     (0x9E3779B97F4A7C15ull * (node.value() + 1ull)));
  const auto max_ns =
      static_cast<std::int64_t>(std::llround(config_.clock_skew_max_ms * 1e6));
  const std::int64_t skew =
      max_ns > 0 ? node_rng.next_in(-max_ns, max_ns) : 0;
  node_skew_ns_.emplace(node.value(), skew);
  audit_.push_back({input_index, ChaosAction::ClockSkew, skew});
  return skew;
}

void ChaosTap::emit(const WireRecord& record) {
  ++stats_.records_out;
  sink_(record);
}

void ChaosTap::flush_stall() {
  while (!stall_buffer_.empty()) {
    emit(stall_buffer_.front().first);
    stall_buffer_.pop_front();
  }
}

void ChaosTap::deliver(WireRecord record, std::uint64_t input_index) {
  if (stall_remaining_ == 0) {
    emit(record);
    return;
  }
  stall_buffer_.emplace_back(std::move(record), input_index);
  if (stall_buffer_.size() > std::max<std::size_t>(1, config_.stall_buffer)) {
    audit_.push_back(
        {stall_buffer_.front().second, ChaosAction::StallDrop, 0});
    ++stats_.dropped_stall;
    stall_buffer_.pop_front();
  }
}

void ChaosTap::release_held() {
  // One delivery elapsed: tick every held frame and release the expired
  // ones in insertion order.  Released frames still route through the
  // stall buffer but do not tick the pen again.
  std::size_t w = 0;
  for (std::size_t i = 0; i < held_.size(); ++i) {
    if (--held_[i].remaining == 0) {
      deliver(std::move(held_[i].record), held_[i].input_index);
    } else {
      if (w != i) held_[w] = std::move(held_[i]);
      ++w;
    }
  }
  held_.resize(w);
}

void ChaosTap::on_record(const WireRecord& record) {
  const std::uint64_t idx = index_++;
  ++stats_.records_in;
  if (!config_.enabled()) {
    // Strict no-op: the RNG is never consulted, the frame never copied
    // through any degradation stage.
    emit(record);
    return;
  }

  // Every frame consumes the same fixed sequence of draws, whatever happens
  // to it.  Each decision is one uniform compared against its rate, so for
  // a fixed seed the affected set at rate r is a subset of the affected set
  // at any higher rate (monotone degradation sweeps), and dropping a frame
  // never perturbs the fate of later frames.
  const double u_burst = rng_.next_double();
  const double u_drop = rng_.next_double();
  const double u_trunc = rng_.next_double();
  const std::uint64_t r_cut = rng_.next_u64();
  const double u_corr = rng_.next_double();
  const std::uint64_t r_pos = rng_.next_u64();
  const std::uint64_t r_mask = rng_.next_u64();
  const double u_dup = rng_.next_double();
  const double u_reorder = rng_.next_double();
  const std::uint64_t r_dist = rng_.next_u64();
  const double u_stall = rng_.next_double();

  WireRecord rec = record;
  if (config_.clock_skew_max_ms > 0) {
    const auto skew = skew_for(rec.src_node, idx);
    if (skew != 0) {
      rec.ts += util::SimDuration(skew);
      ++stats_.skewed;
    }
  }

  // Loss stages first: a dropped frame is gone before damage or delivery
  // faults could apply.
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    audit_.push_back({idx, ChaosAction::BurstDrop, 0});
    ++stats_.dropped_burst;
    return;
  }
  if (config_.burst_rate > 0 && u_burst < config_.burst_rate) {
    burst_remaining_ = std::max<std::size_t>(1, config_.burst_length) - 1;
    audit_.push_back({idx, ChaosAction::BurstDrop,
                      static_cast<std::int64_t>(config_.burst_length)});
    ++stats_.dropped_burst;
    return;
  }
  if (config_.drop_rate > 0 && u_drop < config_.drop_rate) {
    audit_.push_back({idx, ChaosAction::Drop, 0});
    ++stats_.dropped_uniform;
    return;
  }

  // Damage stages.
  if (config_.truncate_rate > 0 && u_trunc < config_.truncate_rate &&
      rec.bytes.size() >= 2) {
    const auto keep = 1 + static_cast<std::size_t>(
                              r_cut % (rec.bytes.size() - 1));
    rec.bytes.resize(keep);
    audit_.push_back({idx, ChaosAction::Truncate,
                      static_cast<std::int64_t>(keep)});
    ++stats_.truncated;
  }
  if (config_.corrupt_rate > 0 && u_corr < config_.corrupt_rate &&
      !rec.bytes.empty()) {
    const auto pos = static_cast<std::size_t>(r_pos % rec.bytes.size());
    rec.bytes[pos] = static_cast<char>(
        static_cast<unsigned char>(rec.bytes[pos]) ^
        static_cast<unsigned char>(1 + r_mask % 255));
    audit_.push_back({idx, ChaosAction::Corrupt,
                      static_cast<std::int64_t>(pos)});
    ++stats_.corrupted;
  }

  // A stall that begins with this frame swallows it into the buffer too.
  if (stall_remaining_ == 0 && config_.stall_rate > 0 &&
      u_stall < config_.stall_rate) {
    stall_remaining_ = std::max<std::size_t>(1, config_.stall_length);
    audit_.push_back({idx, ChaosAction::Stall,
                      static_cast<std::int64_t>(stall_remaining_)});
    ++stats_.stalls;
  }

  // Delivery faults.  A reordered frame enters the holding pen instead of
  // delivering now; duplication applies only to frames delivered in place.
  if (config_.reorder_rate > 0 && config_.reorder_max_distance > 0 &&
      u_reorder < config_.reorder_rate) {
    const auto dist =
        1 + static_cast<std::size_t>(r_dist % config_.reorder_max_distance);
    audit_.push_back({idx, ChaosAction::Reorder,
                      static_cast<std::int64_t>(dist)});
    ++stats_.reordered;
    held_.push_back({std::move(rec), dist, idx});
    if (stall_remaining_ > 0) --stall_remaining_;
    if (stall_remaining_ == 0) flush_stall();
    return;
  }

  const bool dup = config_.duplicate_rate > 0 && u_dup < config_.duplicate_rate;
  if (dup) {
    audit_.push_back({idx, ChaosAction::Duplicate, 0});
    ++stats_.duplicated;
  }
  deliver(rec, idx);
  if (dup) deliver(rec, idx);
  release_held();

  if (stall_remaining_ > 0) {
    --stall_remaining_;
    if (stall_remaining_ == 0) flush_stall();
  }
}

void ChaosTap::finish() {
  stall_remaining_ = 0;
  flush_stall();
  // Remaining held frames flush in the order they would have been released.
  std::stable_sort(held_.begin(), held_.end(),
                   [](const Held& a, const Held& b) {
                     return a.remaining < b.remaining;
                   });
  for (auto& h : held_) emit(h.record);
  held_.clear();
}

std::vector<WireRecord> ChaosTap::apply(const ChaosConfig& config,
                                        std::span<const WireRecord> records,
                                        ChaosStats* stats,
                                        std::vector<ChaosInjection>* audit) {
  std::vector<WireRecord> out;
  out.reserve(records.size());
  ChaosTap tap(config, [&out](const WireRecord& r) { out.push_back(r); });
  for (const auto& r : records) tap.on_record(r);
  tap.finish();
  if (stats) *stats = tap.stats();
  if (audit) *audit = tap.audit().snapshot();
  return out;
}

}  // namespace gretel::net
