#include "net/fabric.h"

#include <algorithm>

namespace gretel::net {

util::SimDuration LatencyInjector::extra_delay(wire::NodeId src,
                                               wire::NodeId dst,
                                               util::SimTime t) const {
  util::SimDuration total;
  for (const auto& r : rules_) {
    if ((r.node == src || r.node == dst) && t >= r.start && t < r.end)
      total += r.extra;
  }
  return total;
}

Fabric::Fabric(util::SimDuration base, util::SimDuration jitter_sigma)
    : base_(base), jitter_sigma_(jitter_sigma) {}

util::SimDuration Fabric::delivery_delay(wire::NodeId src, wire::NodeId dst,
                                         util::SimTime t,
                                         util::Rng& rng) const {
  if (src == dst) return util::SimDuration::micros(5);  // loopback
  const double jitter_ns = rng.next_gaussian(
      0.0, static_cast<double>(jitter_sigma_.count()));
  const auto jitter = util::SimDuration(
      static_cast<std::int64_t>(std::max(jitter_ns, 0.0)));
  return base_ + jitter + injector_.extra_delay(src, dst, t);
}

}  // namespace gretel::net
