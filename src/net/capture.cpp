#include "net/capture.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <limits>

#include "wire/amqp_codec.h"
#include "wire/http_codec.h"

namespace gretel::net {

namespace {

// Heuristic: a path segment is a concrete identifier if it is a UUID-like
// hex/dash token of length >= 8 or a pure number.  URI characters are ASCII,
// so classify with range checks rather than locale-aware ctype calls — this
// runs for every path segment of every captured request.
inline bool ascii_digit(char c) { return c >= '0' && c <= '9'; }
inline bool ascii_hex(char c) {
  return ascii_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

bool looks_like_identifier(std::string_view seg) {
  if (seg.empty()) return false;
  bool all_digits = true;
  std::size_t hexish = 0;
  for (char c : seg) {
    if (!ascii_digit(c)) all_digits = false;
    if (ascii_hex(c) || c == '-') ++hexish;
  }
  if (all_digits) return true;
  return seg.size() >= 8 && hexish == seg.size() &&
         seg.find('-') != std::string_view::npos;
}

// Worst case the output grows by 3 bytes per rewritten segment ("<ID>" for
// a 1-char stem); non-empty segments need at least one input byte plus a
// separator, so this bound is safe for any target.
std::size_t normalized_bound(std::size_t target_size) {
  return target_size + 3 * (target_size / 2 + 2) + 4;
}

// Core of URI normalization, writing into a caller-sized buffer (at least
// normalized_bound(target.size()) bytes).  Returns the output length.
std::size_t normalize_uri_write(std::string_view target, char* out) {
  // Drop the query string.
  if (const auto q = target.find('?'); q != std::string_view::npos)
    target = target.substr(0, q);

  char* w = out;
  const auto append = [&w](std::string_view s) {
    for (char c : s) *w++ = c;
  };

  std::size_t pos = 0;
  while (pos <= target.size()) {
    const auto slash = target.find('/', pos);
    std::string_view seg =
        slash == std::string_view::npos
            ? target.substr(pos)
            : target.substr(pos, slash - pos);

    // Split a trailing ".json" / ".xml" style extension off the segment so
    // "/ports/<uuid>.json" normalizes to "/ports/<ID>.json".
    std::string_view stem = seg;
    std::string_view ext;
    if (const auto dot = seg.rfind('.'); dot != std::string_view::npos &&
                                         dot > 0 && seg.size() - dot <= 5) {
      stem = seg.substr(0, dot);
      ext = seg.substr(dot);
    }
    if (looks_like_identifier(stem)) {
      append("<ID>");
      append(ext);
    } else {
      append(seg);
    }

    if (slash == std::string_view::npos) break;
    *w++ = '/';
    pos = slash + 1;
  }
  return static_cast<std::size_t>(w - out);
}

}  // namespace

std::string normalize_uri(std::string_view target) {
  std::string out;
  out.resize(normalized_bound(target.size()));
  out.resize(normalize_uri_write(target, out.data()));
  return out;
}

std::string_view normalize_uri(std::string_view target, util::Arena& arena) {
  char* buf =
      static_cast<char*>(arena.allocate(normalized_bound(target.size()), 1));
  return {buf, normalize_uri_write(target, buf)};
}

std::uint32_t parse_correlation_id(std::optional<std::string_view> value) {
  if (!value || !value->starts_with("req-")) return 0;
  const std::string_view digits = value->substr(4);
  if (digits.empty()) return 0;
  std::uint32_t id = 0;
  constexpr std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    const auto d = static_cast<std::uint32_t>(c - '0');
    // Reject rather than wrap: an aliased id would merge two unrelated
    // operations during snapshot reduction.
    if (id > (kMax - d) / 10) return 0;
    id = id * 10 + d;
  }
  return id;
}

CaptureTap::CaptureTap(
    const wire::ApiCatalog* catalog,
    std::unordered_map<std::uint16_t, wire::ServiceKind> service_by_port,
    std::size_t arena_slab_bytes)
    : catalog_(catalog),
      service_by_port_(std::move(service_by_port)),
      arena_(arena_slab_bytes) {}

void CaptureTap::quarantine_record(const WireRecord& record) {
  QuarantinedFrame q;
  q.ts = record.ts;
  q.src_node = record.src_node;
  q.dst_node = record.dst_node;
  q.is_amqp = record.is_amqp;
  q.wire_bytes = static_cast<std::uint32_t>(record.bytes.size());
  q.prefix = record.bytes.substr(
      0, std::min(record.bytes.size(), kQuarantinePrefixBytes));
  if (quarantine_ring_.size() < kQuarantineRingCapacity) {
    quarantine_ring_.push_back(std::move(q));
  } else {
    quarantine_ring_[quarantine_next_] = std::move(q);
  }
  quarantine_next_ = (quarantine_next_ + 1) % kQuarantineRingCapacity;
}

std::vector<QuarantinedFrame> CaptureTap::quarantine() const {
  if (quarantine_ring_.size() < kQuarantineRingCapacity) {
    return quarantine_ring_;
  }
  std::vector<QuarantinedFrame> out;
  out.reserve(quarantine_ring_.size());
  for (std::size_t i = 0; i < quarantine_ring_.size(); ++i) {
    out.push_back(
        quarantine_ring_[(quarantine_next_ + i) % kQuarantineRingCapacity]);
  }
  return out;
}

std::optional<wire::Event> CaptureTap::decode(const WireRecord& record) {
  stats_.bytes_seen += record.bytes.size();
  if (record.ts < last_ts_) {
    ++stats_.non_monotonic;
  } else {
    last_ts_ = record.ts;
  }
  arena_.reset();  // previous record's parse scratch dies here
  const auto failures_before = stats_.decode_failures;
  auto event = record.is_amqp ? decode_amqp(record) : decode_rest(record);
  if (stats_.decode_failures != failures_before) quarantine_record(record);
  if (event) {
    // Transport metadata and ground-truth labels common to both paths.
    event->ts = record.ts;
    event->src_node = record.src_node;
    event->dst_node = record.dst_node;
    event->src = record.src;
    event->dst = record.dst;
    event->wire_bytes = static_cast<std::uint32_t>(record.bytes.size());
    event->truth_instance = record.truth_instance;
    event->truth_template = record.truth_template;
    event->truth_noise = record.truth_noise;
    event->identifiers = record.identifiers;
    ++stats_.decoded;
  }
  return event;
}

std::optional<wire::Event> CaptureTap::decode_rest(const WireRecord& record) {
  wire::Event ev;
  ev.kind = wire::ApiKind::Rest;
  ev.conn_id = record.conn_id;

  if (std::string_view(record.bytes).starts_with("HTTP/")) {
    const auto resp = wire::parse_http_response(record.bytes, arena_);
    if (!resp) {
      ++stats_.decode_failures;
      return std::nullopt;
    }
    // Responses carry no URI; attribute to the request seen on this stream.
    const auto it = conn_last_api_.find(record.conn_id);
    if (it == conn_last_api_.end()) {
      ++stats_.unknown_api;
      return std::nullopt;
    }
    ev.dir = wire::Direction::Response;
    ev.api = it->second;
    ev.status = resp->status;
    ev.correlation_id =
        parse_correlation_id(resp->headers.get("X-Openstack-Request-Id"));
    // Error text outlives the batch (it rides in the FaultReport), so this
    // is the one copy the error path pays.
    if (wire::is_error_status(resp->status))
      ev.error_text = std::string(resp->reason);
    return ev;
  }

  const auto req = wire::parse_http_request(record.bytes, arena_);
  if (!req) {
    ++stats_.decode_failures;
    return std::nullopt;
  }
  const auto svc_it = service_by_port_.find(record.dst.port);
  if (svc_it == service_by_port_.end()) {
    ++stats_.unknown_api;
    return std::nullopt;
  }
  const auto api = catalog_->find_rest(svc_it->second, req->method,
                                       normalize_uri(req->target, arena_));
  if (!api) {
    ++stats_.unknown_api;
    return std::nullopt;
  }
  ev.dir = wire::Direction::Request;
  ev.api = *api;
  ev.correlation_id =
      parse_correlation_id(req->headers.get("X-Openstack-Request-Id"));
  conn_last_api_[record.conn_id] = *api;
  return ev;
}

std::optional<wire::Event> CaptureTap::decode_amqp(const WireRecord& record) {
  const auto frame = wire::parse_amqp_frame_view(record.bytes);
  if (!frame) {
    ++stats_.decode_failures;
    return std::nullopt;
  }
  // Routing key format in the simulator: "<service>.<host>"; the service
  // token identifies the catalog namespace for the RPC method.
  std::string_view topic = frame->routing_key;
  if (const auto dot = topic.find('.'); dot != std::string_view::npos)
    topic = topic.substr(0, dot);

  wire::ServiceKind service = wire::ServiceKind::Unknown;
  for (int s = 0; s <= static_cast<int>(wire::ServiceKind::Unknown); ++s) {
    if (wire::to_string(static_cast<wire::ServiceKind>(s)) == topic) {
      service = static_cast<wire::ServiceKind>(s);
      break;
    }
  }
  const auto api = catalog_->find_rpc(service, frame->method_name);
  if (!api) {
    ++stats_.unknown_api;
    return std::nullopt;
  }

  wire::Event ev;
  ev.kind = wire::ApiKind::Rpc;
  ev.api = *api;
  ev.msg_id = frame->msg_id;
  ev.correlation_id = frame->correlation_id;
  if (frame->type == wire::AmqpFrameType::Publish) {
    ev.dir = wire::Direction::Request;
  } else {
    ev.dir = wire::Direction::Response;
    if (wire::rpc_payload_has_error(frame->payload)) {
      ev.status = 500;
      ev.error_text = std::string(frame->payload);
    } else {
      ev.status = wire::kStatusOk;
    }
  }
  return ev;
}

}  // namespace gretel::net
