#include "net/capture.h"

#include <cctype>

#include "wire/amqp_codec.h"
#include "wire/http_codec.h"

namespace gretel::net {

namespace {

// Heuristic: a path segment is a concrete identifier if it is a UUID-like
// hex/dash token of length >= 8 or a pure number.
bool looks_like_identifier(std::string_view seg) {
  if (seg.empty()) return false;
  bool all_digits = true;
  std::size_t hexish = 0;
  for (char c : seg) {
    const auto uc = static_cast<unsigned char>(c);
    if (!std::isdigit(uc)) all_digits = false;
    if (std::isxdigit(uc) || c == '-') ++hexish;
  }
  if (all_digits) return true;
  return seg.size() >= 8 && hexish == seg.size() &&
         seg.find('-') != std::string_view::npos;
}

// Parses OpenStack's "X-Openstack-Request-Id: req-<n>" correlation header;
// 0 when absent or malformed.
std::uint32_t parse_correlation(const wire::HttpHeaders& headers) {
  const auto value = headers.get("X-Openstack-Request-Id");
  if (!value || !value->starts_with("req-")) return 0;
  std::uint32_t id = 0;
  for (char c : value->substr(4)) {
    if (c < '0' || c > '9') return 0;
    id = id * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return id;
}

}  // namespace

std::string normalize_uri(std::string_view target) {
  // Drop the query string.
  if (const auto q = target.find('?'); q != std::string_view::npos)
    target = target.substr(0, q);

  std::string out;
  out.reserve(target.size());
  std::size_t pos = 0;
  while (pos <= target.size()) {
    const auto slash = target.find('/', pos);
    std::string_view seg =
        slash == std::string_view::npos
            ? target.substr(pos)
            : target.substr(pos, slash - pos);

    // Split a trailing ".json" / ".xml" style extension off the segment so
    // "/ports/<uuid>.json" normalizes to "/ports/<ID>.json".
    std::string_view stem = seg;
    std::string_view ext;
    if (const auto dot = seg.rfind('.'); dot != std::string_view::npos &&
                                         dot > 0 && seg.size() - dot <= 5) {
      stem = seg.substr(0, dot);
      ext = seg.substr(dot);
    }
    if (looks_like_identifier(stem)) {
      out += "<ID>";
      out += ext;
    } else {
      out += seg;
    }

    if (slash == std::string_view::npos) break;
    out += '/';
    pos = slash + 1;
  }
  return out;
}

CaptureTap::CaptureTap(
    const wire::ApiCatalog* catalog,
    std::unordered_map<std::uint16_t, wire::ServiceKind> service_by_port)
    : catalog_(catalog), service_by_port_(std::move(service_by_port)) {}

std::optional<wire::Event> CaptureTap::decode(const WireRecord& record) {
  stats_.bytes_seen += record.bytes.size();
  auto event = record.is_amqp ? decode_amqp(record) : decode_rest(record);
  if (event) {
    // Transport metadata and ground-truth labels common to both paths.
    event->ts = record.ts;
    event->src_node = record.src_node;
    event->dst_node = record.dst_node;
    event->src = record.src;
    event->dst = record.dst;
    event->wire_bytes = static_cast<std::uint32_t>(record.bytes.size());
    event->truth_instance = record.truth_instance;
    event->truth_template = record.truth_template;
    event->truth_noise = record.truth_noise;
    event->identifiers = record.identifiers;
    ++stats_.decoded;
  }
  return event;
}

std::optional<wire::Event> CaptureTap::decode_rest(const WireRecord& record) {
  wire::Event ev;
  ev.kind = wire::ApiKind::Rest;
  ev.conn_id = record.conn_id;

  if (record.bytes.starts_with("HTTP/")) {
    auto resp = wire::parse_http_response(record.bytes);
    if (!resp) {
      ++stats_.decode_failures;
      return std::nullopt;
    }
    // Responses carry no URI; attribute to the request seen on this stream.
    const auto it = conn_last_api_.find(record.conn_id);
    if (it == conn_last_api_.end()) {
      ++stats_.unknown_api;
      return std::nullopt;
    }
    ev.dir = wire::Direction::Response;
    ev.api = it->second;
    ev.status = resp->status;
    ev.correlation_id = parse_correlation(resp->headers);
    if (wire::is_error_status(resp->status)) ev.error_text = resp->reason;
    return ev;
  }

  auto req = wire::parse_http_request(record.bytes);
  if (!req) {
    ++stats_.decode_failures;
    return std::nullopt;
  }
  const auto svc_it = service_by_port_.find(record.dst.port);
  if (svc_it == service_by_port_.end()) {
    ++stats_.unknown_api;
    return std::nullopt;
  }
  const auto api = catalog_->find_rest(svc_it->second, req->method,
                                       normalize_uri(req->target));
  if (!api) {
    ++stats_.unknown_api;
    return std::nullopt;
  }
  ev.dir = wire::Direction::Request;
  ev.api = *api;
  ev.correlation_id = parse_correlation(req->headers);
  conn_last_api_[record.conn_id] = *api;
  return ev;
}

std::optional<wire::Event> CaptureTap::decode_amqp(const WireRecord& record) {
  auto frame = wire::parse_amqp_frame(record.bytes);
  if (!frame) {
    ++stats_.decode_failures;
    return std::nullopt;
  }
  // Routing key format in the simulator: "<service>.<host>"; the service
  // token identifies the catalog namespace for the RPC method.
  std::string_view topic = frame->routing_key;
  if (const auto dot = topic.find('.'); dot != std::string_view::npos)
    topic = topic.substr(0, dot);

  wire::ServiceKind service = wire::ServiceKind::Unknown;
  for (int s = 0; s <= static_cast<int>(wire::ServiceKind::Unknown); ++s) {
    if (wire::to_string(static_cast<wire::ServiceKind>(s)) == topic) {
      service = static_cast<wire::ServiceKind>(s);
      break;
    }
  }
  const auto api = catalog_->find_rpc(service, frame->method_name);
  if (!api) {
    ++stats_.unknown_api;
    return std::nullopt;
  }

  wire::Event ev;
  ev.kind = wire::ApiKind::Rpc;
  ev.api = *api;
  ev.msg_id = frame->msg_id;
  ev.correlation_id = frame->correlation_id;
  if (frame->type == wire::AmqpFrameType::Publish) {
    ev.dir = wire::Direction::Request;
  } else {
    ev.dir = wire::Direction::Response;
    if (wire::rpc_payload_has_error(frame->payload)) {
      ev.status = 500;
      ev.error_text = frame->payload;
    } else {
      ev.status = wire::kStatusOk;
    }
  }
  return ev;
}

}  // namespace gretel::net
