#include "tempest/catalog.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace gretel::tempest {

using stack::ApiStep;
using stack::Category;
using stack::OperationTemplate;
using util::Rng;
using util::SimDuration;
using wire::ApiCatalog;
using wire::ApiId;
using wire::ApiKind;
using wire::HttpMethod;
using wire::ServiceKind;

namespace {

// Table 1 of the paper, as generation targets.
struct CategorySpec {
  Category cat;
  ServiceKind primary;      // REST origin service of the category
  ServiceKind rpc_service;  // where the category's RPCs execute
  int tests;
  int uniq_rest;      // unique REST APIs observed across the category
  int uniq_rpc;       // unique RPC APIs
  double mean_steps;  // average fingerprint size w/ RPCs
  double rest_frac;   // fraction of fingerprint steps that are REST
};

constexpr int kSharedRest = 12;
constexpr int kSharedRpc = 4;
constexpr int kTotalPublicApis = 643;  // §6: OpenStack's public API count
constexpr std::size_t kMaxFingerprint = 384;  // §7: FPmax

const std::array<CategorySpec, stack::kCategories> kSpecs{{
    {Category::Compute, ServiceKind::Nova, ServiceKind::NovaCompute, 517, 195,
     61, 100.0, 0.56},
    {Category::Image, ServiceKind::Glance, ServiceKind::Glance, 55, 38, 10,
     18.0, 15.0 / 18.0},
    {Category::Network, ServiceKind::Neutron, ServiceKind::NeutronAgent, 251,
     70, 24, 31.0, 16.0 / 31.0},
    {Category::Storage, ServiceKind::Cinder, ServiceKind::Cinder, 84, 40, 11,
     17.0, 15.0 / 17.0},
    {Category::Misc, ServiceKind::Swift, ServiceKind::Swift, 293, 20, 11,
     16.0, 11.0 / 16.0},
}};

// Generates plausible REST endpoints for one service in its URL dialect.
class RestApiFactory {
 public:
  RestApiFactory(ServiceKind service, std::string prefix, bool json_suffix,
                 std::vector<std::string> resources)
      : service_(service),
        prefix_(std::move(prefix)),
        json_suffix_(json_suffix),
        resources_(std::move(resources)) {}

  ApiId next(ApiCatalog& catalog) {
    const auto& res = resources_[cursor_ % resources_.size()];
    const int phase = static_cast<int>(cursor_ / resources_.size());
    ++cursor_;
    const std::string ext = json_suffix_ ? ".json" : "";
    switch (phase) {
      case 0:
        return catalog.add_rest(service_, HttpMethod::Get,
                                prefix_ + "/" + res + ext);
      case 1:
        return catalog.add_rest(service_, HttpMethod::Post,
                                prefix_ + "/" + res + ext);
      case 2:
        return catalog.add_rest(service_, HttpMethod::Get,
                                prefix_ + "/" + res + "/<ID>" + ext);
      case 3:
        return catalog.add_rest(service_, HttpMethod::Put,
                                prefix_ + "/" + res + "/<ID>" + ext);
      case 4:
        return catalog.add_rest(service_, HttpMethod::Delete,
                                prefix_ + "/" + res + "/<ID>" + ext);
      default: {
        // Deep endpoints: actions and detail views per resource instance.
        const int k = phase - 5;
        if (k % 2 == 0) {
          return catalog.add_rest(
              service_, HttpMethod::Post,
              prefix_ + "/" + res + "/<ID>/action-" + std::to_string(k / 2) +
                  ext);
        }
        return catalog.add_rest(
            service_, HttpMethod::Get,
            prefix_ + "/" + res + "/<ID>/detail-" + std::to_string(k / 2) +
                ext);
      }
    }
  }

 private:
  ServiceKind service_;
  std::string prefix_;
  bool json_suffix_;
  std::vector<std::string> resources_;
  std::size_t cursor_ = 0;
};

RestApiFactory make_rest_factory(ServiceKind s) {
  switch (s) {
    case ServiceKind::Nova:
      return {s, "/v2.1", false,
              {"servers", "flavors", "keypairs", "os-hypervisors",
               "os-aggregates", "os-services", "os-instance-actions",
               "os-migrations", "os-server-groups", "os-keypairs",
               "os-volumes_boot", "limits"}};
    case ServiceKind::Neutron:
      return {s, "/v2.0", true,
              {"networks", "subnets", "routers", "floatingips",
               "security-groups", "security-group-rules", "agents",
               "extensions", "subnetpools", "metering-labels"}};
    case ServiceKind::Glance:
      return {s, "/v2", false,
              {"images", "tasks", "metadefs", "members", "stores",
               "namespaces"}};
    case ServiceKind::Cinder:
      return {s, "/v2/<ID>", false,
              {"volumes", "snapshots", "backups", "types", "qos-specs",
               "attachments", "consistencygroups", "capabilities"}};
    case ServiceKind::Swift:
      return {s, "/v1/<ID>", false,
              {"containers", "objects", "accounts", "endpoints"}};
    case ServiceKind::Keystone:
      return {s, "/v3", false,
              {"users", "projects", "roles", "domains", "groups",
               "credentials", "policies", "regions"}};
    default:
      return {s, "/v1", false, {"resources"}};
  }
}

// RPC method-name generator: verb_noun combinations per service.
class RpcApiFactory {
 public:
  explicit RpcApiFactory(ServiceKind service) : service_(service) {}

  ApiId next(ApiCatalog& catalog) {
    static const std::array<const char*, 14> kVerbs{
        "build", "allocate", "deallocate", "attach", "detach", "refresh",
        "sync", "update", "prepare", "finalize", "reserve", "release",
        "setup", "teardown"};
    static const std::array<const char*, 12> kNouns{
        "instance", "network_info", "device", "volume_connection",
        "image_meta", "port_binding", "security_groups", "flavor_cache",
        "console", "snapshot", "quota_usage", "host_state"};
    const auto verb = kVerbs[cursor_ % kVerbs.size()];
    const auto noun = kNouns[(cursor_ / kVerbs.size()) % kNouns.size()];
    const auto round = cursor_ / (kVerbs.size() * kNouns.size());
    ++cursor_;
    std::string name = std::string(verb) + "_" + noun;
    if (round > 0) name += "_" + std::to_string(round);
    return catalog.add_rpc(service_, std::string(to_string(service_)),
                           std::move(name));
  }

 private:
  ServiceKind service_;
  std::size_t cursor_ = 0;
};

SimDuration step_latency(const wire::ApiDescriptor& d, Rng& rng) {
  if (d.kind == ApiKind::Rpc)
    return SimDuration::millis(rng.next_in(8, 30));
  if (d.state_change()) return SimDuration::millis(rng.next_in(6, 18));
  return SimDuration::millis(rng.next_in(3, 8));
}

ServiceKind rpc_caller_for(ServiceKind callee, ServiceKind primary) {
  switch (callee) {
    case ServiceKind::NovaCompute:
      return ServiceKind::Nova;
    case ServiceKind::NeutronAgent:
      return ServiceKind::Neutron;
    case ServiceKind::Neutron:
      return ServiceKind::NovaCompute;  // agents query during VM boot
    default:
      return primary;
  }
}

}  // namespace

TempestCatalog TempestCatalog::build(std::uint64_t seed, double fraction) {
  TempestCatalog cat;
  Rng rng(seed);

  ApiCatalog& apis = cat.apis_;
  cat.infra_ = stack::register_infra_apis(apis);

  // --- Well-known APIs from the paper's narrative -------------------------
  WellKnownApis& wk = cat.well_known_;
  wk.nova_post_servers =
      apis.add_rest(ServiceKind::Nova, HttpMethod::Post, "/v2.1/servers");
  wk.nova_get_server =
      apis.add_rest(ServiceKind::Nova, HttpMethod::Get, "/v2.1/servers/<ID>");
  wk.nova_post_os_interface = apis.add_rest(
      ServiceKind::Nova, HttpMethod::Post, "/v2.1/servers/<ID>/os-interface");
  wk.neutron_get_ports =
      apis.add_rest(ServiceKind::Neutron, HttpMethod::Get, "/v2.0/ports.json");
  wk.neutron_post_ports = apis.add_rest(ServiceKind::Neutron, HttpMethod::Post,
                                        "/v2.0/ports.json");
  wk.neutron_get_networks = apis.add_rest(ServiceKind::Neutron,
                                          HttpMethod::Get,
                                          "/v2.0/networks.json");
  wk.neutron_get_quotas = apis.add_rest(ServiceKind::Neutron, HttpMethod::Get,
                                        "/v2.0/quotas/<ID>.json");
  wk.neutron_get_secgroups = apis.add_rest(
      ServiceKind::Neutron, HttpMethod::Get, "/v2.0/security-groups.json");
  wk.glance_get_image =
      apis.add_rest(ServiceKind::Glance, HttpMethod::Get, "/v2/images/<ID>");
  wk.glance_post_images =
      apis.add_rest(ServiceKind::Glance, HttpMethod::Post, "/v2/images");
  wk.glance_put_image_file = apis.add_rest(
      ServiceKind::Glance, HttpMethod::Put, "/v2/images/<ID>/file");
  wk.cinder_get_volumes =
      apis.add_rest(ServiceKind::Cinder, HttpMethod::Get, "/v2/<ID>/volumes");
  wk.cinder_post_volumes =
      apis.add_rest(ServiceKind::Cinder, HttpMethod::Post, "/v2/<ID>/volumes");
  wk.rpc_build_instance = apis.add_rpc(ServiceKind::NovaCompute,
                                       "nova-compute",
                                       "build_and_run_instance");
  wk.rpc_allocate_network =
      apis.add_rpc(ServiceKind::NovaCompute, "nova-compute",
                   "allocate_network");
  wk.rpc_plug_vif =
      apis.add_rpc(ServiceKind::NeutronAgent, "neutron-agent",
                   "plug_interface");
  wk.rpc_get_device_details = apis.add_rpc(
      ServiceKind::Neutron, "neutron", "get_devices_details_list");
  wk.rpc_sec_group_info = apis.add_rpc(ServiceKind::Neutron, "neutron",
                                       "security_group_info_for_devices");

  // --- Shared pool: APIs common across categories (keeps Fig. 5's cross-
  // category overlap near but below 15%) --------------------------------
  std::vector<ApiId> shared_rest{
      wk.nova_get_server,      wk.neutron_get_ports, wk.neutron_get_networks,
      wk.neutron_get_quotas,   wk.glance_get_image,  wk.cinder_get_volumes,
      wk.neutron_get_secgroups};
  {
    auto keystone = make_rest_factory(ServiceKind::Keystone);
    while (shared_rest.size() < kSharedRest)
      shared_rest.push_back(keystone.next(apis));
  }
  std::vector<ApiId> shared_rpc{wk.rpc_get_device_details,
                                wk.rpc_sec_group_info};
  {
    RpcApiFactory nova_rpc(ServiceKind::NovaCompute);
    while (shared_rpc.size() < kSharedRpc)
      shared_rpc.push_back(nova_rpc.next(apis));
  }

  // --- Per-category private pools ----------------------------------------
  std::array<std::vector<ApiId>, stack::kCategories> private_rest;
  std::array<std::vector<ApiId>, stack::kCategories> private_rpc;

  for (const auto& spec : kSpecs) {
    const auto ci = static_cast<std::size_t>(spec.cat);
    auto& rest = private_rest[ci];
    auto& rpc = private_rpc[ci];

    // Seed pools with the category's well-known state-change APIs.
    switch (spec.cat) {
      case Category::Compute:
        rest = {wk.nova_post_servers, wk.nova_post_os_interface};
        rpc = {wk.rpc_build_instance, wk.rpc_allocate_network};
        break;
      case Category::Image:
        rest = {wk.glance_post_images, wk.glance_put_image_file};
        break;
      case Category::Network:
        rest = {wk.neutron_post_ports};
        rpc = {wk.rpc_plug_vif};
        break;
      case Category::Storage:
        rest = {wk.cinder_post_volumes};
        break;
      case Category::Misc:
        break;
    }

    // The factories can regenerate endpoints that already exist (e.g. the
    // well-known POST /v2.1/servers); keep pools free of duplicates and of
    // shared-pool members so per-category unique counts stay on target.
    auto contains = [](const std::vector<ApiId>& v, ApiId id) {
      return std::find(v.begin(), v.end(), id) != v.end();
    };

    auto rest_factory = make_rest_factory(spec.primary);
    while (rest.size() < static_cast<std::size_t>(spec.uniq_rest -
                                                  kSharedRest)) {
      const ApiId id = rest_factory.next(apis);
      if (!contains(rest, id) && !contains(shared_rest, id))
        rest.push_back(id);
    }

    RpcApiFactory rpc_factory(spec.rpc_service);
    while (rpc.size() <
           static_cast<std::size_t>(spec.uniq_rpc - kSharedRpc)) {
      const ApiId id = rpc_factory.next(apis);
      if (!contains(rpc, id) && !contains(shared_rpc, id))
        rpc.push_back(id);
    }
  }

  // --- Pad the catalog to OpenStack's 643 public APIs (Tempest exercises
  // only a subset, §7.1 "Limitation") -----------------------------------
  {
    auto keystone = make_rest_factory(ServiceKind::Keystone);
    auto swift = make_rest_factory(ServiceKind::Swift);
    bool flip = false;
    while (apis.size() < kTotalPublicApis) {
      (flip ? keystone : swift).next(apis);
      flip = !flip;
    }
  }

  // --- "Basic operations": shared building blocks within a category (§4's
  // CFG composition; also the source of within-category overlap) ---------
  std::array<std::vector<std::vector<ApiId>>, stack::kCategories> basics;
  for (const auto& spec : kSpecs) {
    const auto ci = static_cast<std::size_t>(spec.cat);
    const int nb = std::max(3, spec.tests / 8);
    Rng brng = rng.fork();
    for (int b = 0; b < nb; ++b) {
      const auto len = static_cast<std::size_t>(brng.next_in(3, 10));
      std::vector<ApiId> seq;
      for (std::size_t i = 0; i < len; ++i) {
        const bool want_rest = brng.next_double() < spec.rest_frac;
        const auto& pool = want_rest ? private_rest[ci] : private_rpc[ci];
        const auto& fallback = want_rest ? shared_rest : shared_rpc;
        const auto& use = pool.empty() ? fallback : pool;
        ApiId pick = use[brng.next_below(use.size())];
        if (!seq.empty() && seq.back() == pick) continue;  // no adjacents
        seq.push_back(pick);
      }
      if (!seq.empty()) basics[ci].push_back(std::move(seq));
    }
  }

  // Poll APIs per category (dashboard status GET used to surface aborts).
  std::array<ApiId, stack::kCategories> poll{};
  poll[static_cast<std::size_t>(Category::Compute)] = wk.nova_get_server;
  poll[static_cast<std::size_t>(Category::Image)] = wk.glance_get_image;
  poll[static_cast<std::size_t>(Category::Network)] = wk.neutron_get_ports;
  poll[static_cast<std::size_t>(Category::Storage)] = wk.cinder_get_volumes;
  poll[static_cast<std::size_t>(Category::Misc)] = shared_rest.back();

  // --- Generate operations -------------------------------------------------
  auto add_operation = [&](OperationTemplate op) -> std::size_t {
    op.id = wire::OpTemplateId(
        static_cast<std::uint32_t>(cat.operations_.size()));
    const auto idx = cat.operations_.size();
    cat.by_category_[static_cast<std::size_t>(op.category)].push_back(idx);
    cat.operations_.push_back(std::move(op));
    return idx;
  };

  auto make_step = [&](ApiId api, const CategorySpec& spec, bool first,
                       ServiceKind prev_callee, Rng& orng) {
    const auto& desc = apis.get(api);
    ApiStep step;
    step.api = api;
    step.callee = desc.service;
    if (desc.kind == ApiKind::Rpc) {
      step.caller = rpc_caller_for(desc.service, spec.primary);
    } else if (first) {
      step.caller = ServiceKind::Horizon;
    } else {
      const double r = orng.next_double();
      if (r < 0.60) {
        step.caller = spec.primary;
      } else if (r < 0.85 && prev_callee != desc.service) {
        step.caller = prev_callee;
      } else {
        step.caller = ServiceKind::Horizon;
      }
    }
    step.base_latency = step_latency(desc, orng);
    return step;
  };

  std::size_t compute_longest_idx = 0;

  for (const auto& spec : kSpecs) {
    const auto ci = static_cast<std::size_t>(spec.cat);
    // Reserve slots for hand-built canonical operations so full-scale totals
    // match Table 1 (Compute 517, Image 55, Storage 84 include them).
    int reserved = 0;
    if (spec.cat == Category::Compute) reserved = 2;   // vm_create, snapshot
    if (spec.cat == Category::Image) reserved = 1;     // image_upload
    if (spec.cat == Category::Storage) reserved = 2;   // volume_create, list
    const int count = std::max(
        2, static_cast<int>(std::lround(spec.tests * fraction)) - reserved);

    Rng crng = rng.fork();
    for (int t = 0; t < count; ++t) {
      Rng orng = crng.fork();
      const double raw = orng.next_gaussian(spec.mean_steps,
                                            0.35 * spec.mean_steps);
      const auto target = static_cast<std::size_t>(std::clamp(
          raw, 5.0, static_cast<double>(kMaxFingerprint)));

      OperationTemplate op;
      op.category = spec.cat;
      op.name = std::string(to_string(spec.cat)) + "-op-" +
                std::to_string(t);
      op.poll_api = poll[ci];

      // Entry: a state-change API of the category (operations originate at
      // the dashboard/CLI with a REST directive, §4).
      const auto& entries = private_rest[ci];
      ApiId entry = entries[orng.next_below(std::min<std::size_t>(
          entries.size(), 6))];
      op.steps.push_back(make_step(entry, spec, true,
                                   ServiceKind::Horizon, orng));

      ServiceKind prev = apis.get(entry).service;
      // Compose from basics until ~70% of the target, then pad singles.
      const auto& cat_basics = basics[ci];
      while (op.steps.size() < target * 7 / 10 && !cat_basics.empty()) {
        const auto& b = cat_basics[orng.next_below(cat_basics.size())];
        for (ApiId api : b) {
          if (op.steps.size() >= target) break;
          if (op.steps.back().api == api) continue;
          op.steps.push_back(make_step(api, spec, false, prev, orng));
          prev = apis.get(api).service;
        }
      }
      while (op.steps.size() < target) {
        const bool want_rest = orng.next_double() < spec.rest_frac;
        const auto& pool = [&]() -> const std::vector<ApiId>& {
          if (want_rest)
            return orng.next_double() < 0.85 ? private_rest[ci] : shared_rest;
          return !private_rpc[ci].empty() && orng.next_double() < 0.80
                     ? private_rpc[ci]
                     : shared_rpc;
        }();
        ApiId api = pool[orng.next_below(pool.size())];
        if (op.steps.back().api == api) continue;
        op.steps.push_back(make_step(api, spec, false, prev, orng));
        prev = apis.get(api).service;
      }

      // Real Tempest tests finish by polling the resource status from the
      // dashboard/CLI; the poll GET is therefore part of every successful
      // trace and of the learned fingerprint.
      if (op.steps.back().api != op.poll_api) {
        ApiStep poll_step;
        poll_step.api = op.poll_api;
        poll_step.caller = ServiceKind::Horizon;
        poll_step.callee = apis.get(op.poll_api).service;
        poll_step.base_latency = SimDuration::millis(4);
        op.steps.push_back(poll_step);
      }

      // Sprinkle transient steps *in addition to* the stable skeleton, so
      // fingerprints (post-LCS) keep roughly the target size.  Transients
      // model client retry/read chatter, so they duplicate read-only steps
      // only — a transient state change would be a different operation.
      const auto n_transient = op.steps.size() / 14;
      for (std::size_t k = 0; k < n_transient; ++k) {
        const auto src = 1 + orng.next_below(op.steps.size() - 1);
        if (apis.get(op.steps[src].api).state_change()) continue;
        ApiStep extra = op.steps[src];
        extra.transient = true;
        extra.transient_prob = 0.45;
        // Insert away from identical neighbours so the noise filter's
        // consecutive-repeat collapse doesn't hide it; LCS must prune it.
        const auto pos = 1 + orng.next_below(op.steps.size() - 1);
        if (op.steps[pos].api == extra.api ||
            (pos > 0 && op.steps[pos - 1].api == extra.api)) {
          continue;
        }
        op.steps.insert(op.steps.begin() + static_cast<std::ptrdiff_t>(pos),
                        extra);
      }

      const auto idx = add_operation(std::move(op));
      if (spec.cat == Category::Compute &&
          cat.operations_[idx].steps.size() >
              cat.operations_[compute_longest_idx].steps.size()) {
        compute_longest_idx = idx;
      }
    }
  }

  // Force FPmax = 384 on the longest Compute operation (Table 1 / §7).
  {
    auto& longest = cat.operations_[compute_longest_idx];
    Rng orng = rng.fork();
    const auto ci = static_cast<std::size_t>(Category::Compute);
    ServiceKind prev = ServiceKind::Nova;
    while (longest.steps.size() < kMaxFingerprint) {
      const auto& pool = orng.next_double() < 0.56 ? private_rest[ci]
                                                   : private_rpc[ci];
      ApiId api = pool[orng.next_below(pool.size())];
      if (longest.steps.back().api == api) continue;
      longest.steps.push_back(make_step(
          api, kSpecs[static_cast<std::size_t>(Category::Compute)], false,
          prev, orng));
      prev = apis.get(api).service;
    }
  }

  // --- Canonical operations from the paper --------------------------------
  Rng canon_rng = rng.fork();
  auto lat = [&](int lo, int hi) {
    return SimDuration::millis(canon_rng.next_in(lo, hi));
  };

  {  // VM create (Fig. 2 / Fig. 4): 7 REST + 3 RPC — all of which survive
    // noise filtering, so the learned fingerprint matches the paper's size.
    OperationTemplate op;
    op.category = Category::Compute;
    op.name = "vm-create";
    op.poll_api = wk.nova_get_server;
    using SK = ServiceKind;
    const ApiId nova_get_flavors =
        apis.add_rest(SK::Nova, HttpMethod::Get, "/v2.1/flavors");
    op.steps = {
        {nova_get_flavors, SK::Horizon, SK::Nova, lat(3, 6), false, 1.0},
        {wk.nova_post_servers, SK::Horizon, SK::Nova, lat(8, 15), false, 1.0},
        {wk.rpc_build_instance, SK::Nova, SK::NovaCompute, lat(15, 30), false,
         1.0},
        {wk.glance_get_image, SK::NovaCompute, SK::Glance, lat(4, 9), false,
         1.0},
        {wk.neutron_get_networks, SK::Nova, SK::Neutron, lat(3, 7), false,
         1.0},
        {wk.neutron_get_quotas, SK::Nova, SK::Neutron, lat(3, 7), false, 1.0},
        {wk.rpc_get_device_details, SK::NovaCompute, SK::Neutron, lat(8, 16),
         false, 1.0},
        {wk.neutron_post_ports, SK::Nova, SK::Neutron, lat(8, 14), false,
         1.0},
        {wk.rpc_plug_vif, SK::Neutron, SK::NeutronAgent, lat(10, 22), false,
         1.0},
        {wk.nova_get_server, SK::Horizon, SK::Nova, lat(3, 6), false, 1.0},
    };
    cat.canonical_.vm_create = add_operation(std::move(op));
  }

  std::vector<ApiStep> volume_create_core;
  {  // Volume create (S2 of §4) — also embedded inside VM snapshot (S1).
    using SK = ServiceKind;
    volume_create_core = {
        {wk.cinder_post_volumes, SK::Horizon, SK::Cinder, lat(8, 14), false,
         1.0},
        {private_rpc[static_cast<std::size_t>(Category::Storage)][0],
         SK::Cinder, SK::Cinder, lat(10, 20), false, 1.0},
        {wk.cinder_get_volumes, SK::Horizon, SK::Cinder, lat(3, 6), false,
         1.0},
    };
    OperationTemplate op;
    op.category = Category::Storage;
    op.name = "volume-create";
    op.poll_api = wk.cinder_get_volumes;
    op.steps = volume_create_core;
    cat.canonical_.volume_create = add_operation(std::move(op));
  }

  {  // VM snapshot (S1 of §4): D S2 E — subsumes volume create.
    using SK = ServiceKind;
    OperationTemplate op;
    op.category = Category::Compute;
    op.name = "vm-snapshot";
    op.poll_api = wk.nova_get_server;
    op.steps = {
        {wk.nova_get_server, SK::Horizon, SK::Nova, lat(3, 6), false, 1.0},
        {private_rest[static_cast<std::size_t>(Category::Compute)][1],
         SK::Horizon, SK::Nova, lat(8, 14), false, 1.0},  // snapshot action
        {wk.glance_post_images, SK::Nova, SK::Glance, lat(8, 14), false, 1.0},
    };
    op.steps.insert(op.steps.end(), volume_create_core.begin(),
                    volume_create_core.end());
    op.steps.push_back({wk.glance_get_image, SK::Nova, SK::Glance, lat(3, 7),
                        false, 1.0});
    cat.canonical_.vm_snapshot = add_operation(std::move(op));
  }

  {  // Image upload (§7.2.1).
    using SK = ServiceKind;
    OperationTemplate op;
    op.category = Category::Image;
    op.name = "image-upload";
    op.poll_api = wk.glance_get_image;
    op.steps = {
        {wk.glance_post_images, SK::Horizon, SK::Glance, lat(8, 14), false,
         1.0},
        {wk.glance_put_image_file, SK::Horizon, SK::Glance, lat(40, 80),
         false, 1.0},
        {wk.glance_get_image, SK::Horizon, SK::Glance, lat(3, 6), false, 1.0},
    };
    cat.canonical_.image_upload = add_operation(std::move(op));
  }

  {  // cinder list (§7.2.4): CLI listing with Keystone auth in front.
    using SK = ServiceKind;
    OperationTemplate op;
    op.category = Category::Storage;
    op.name = "cinder-list";
    op.poll_api = wk.cinder_get_volumes;
    op.steps = {
        {shared_rest[8], SK::Horizon, SK::Keystone, lat(3, 6), false, 1.0},
        {wk.cinder_get_volumes, SK::Horizon, SK::Cinder, lat(3, 7), false,
         1.0},
    };
    cat.canonical_.cinder_list = add_operation(std::move(op));
  }

  return cat;
}

std::size_t TempestCatalog::max_operation_steps() const {
  std::size_t m = 0;
  for (const auto& op : operations_) m = std::max(m, op.steps.size());
  return m;
}

}  // namespace gretel::tempest
