// Tempest-like operation catalog (§7.1 "OpenStack characterization").
//
// The paper fingerprints 1200 Tempest tests across five categories (Table 1)
// over OpenStack's 643 public APIs.  With no OpenStack available, this
// module synthesizes a catalog with the same *structure*: per-category test
// counts, unique REST/RPC API counts, average fingerprint sizes (with and
// without RPCs), a maximum fingerprint of 384, and Fig. 5's overlap profile
// (high within a category through shared "basic operations", low across
// categories through mostly disjoint API pools plus a small shared pool).
// Well-known operations from the paper's examples (VM create with its
// 7 REST + 3 RPC fingerprint, image upload, cinder list) are hand-built so
// the case studies replay faithfully.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stack/operation.h"
#include "stack/workflow.h"
#include "wire/api.h"

namespace gretel::tempest {

// APIs named in the paper's scenarios, exposed for examples and tests.
struct WellKnownApis {
  wire::ApiId nova_post_servers;       // POST /v2.1/servers (step 1, Fig. 2)
  wire::ApiId nova_get_server;         // GET /v2.1/servers/<ID>
  wire::ApiId nova_post_os_interface;  // POST /v2.1/servers/<ID>/os-interface
  wire::ApiId neutron_get_ports;       // GET /v2.0/ports.json (Fig. 6)
  wire::ApiId neutron_post_ports;      // POST /v2.0/ports.json (symbol F, Fig. 4)
  wire::ApiId neutron_get_networks;    // GET /v2.0/networks.json
  wire::ApiId neutron_get_quotas;      // GET /v2.0/quotas/<ID>
  wire::ApiId neutron_get_secgroups;   // GET /v2.0/security-groups.json
  wire::ApiId glance_get_image;        // GET /v2/images/<ID> (Fig. 8b)
  wire::ApiId glance_post_images;      // POST /v2/images
  wire::ApiId glance_put_image_file;   // PUT /v2/images/<ID>/file (§7.2.1)
  wire::ApiId cinder_get_volumes;      // GET /v2/<ID>/volumes (§7.2.4)
  wire::ApiId cinder_post_volumes;     // POST /v2/<ID>/volumes
  wire::ApiId rpc_build_instance;      // nova-compute build_and_run_instance
  wire::ApiId rpc_allocate_network;    // nova-compute allocate_network
  wire::ApiId rpc_plug_vif;            // neutron-agent plug_interface
  wire::ApiId rpc_get_device_details;  // neutron get_devices_details_list (§3.1.2)
  wire::ApiId rpc_sec_group_info;      // neutron security_group_info_for_devices
};

// Ids of the hand-built canonical operations inside the catalog.
struct CanonicalOps {
  std::size_t vm_create = 0;      // Fig. 2 / Fig. 4: 7 REST + 3 RPC
  std::size_t vm_snapshot = 0;    // §4: subsumes volume create
  std::size_t volume_create = 0;  // §4: S2 with S2 -> D S1 E structure
  std::size_t image_upload = 0;   // §7.2.1
  std::size_t cinder_list = 0;    // §7.2.4
};

class TempestCatalog {
 public:
  // `fraction` scales per-category test counts (1.0 = the paper's 1200
  // tests; unit tests use ~0.05 for speed).  All sizes and pools stay
  // deterministic in `seed`.
  static TempestCatalog build(std::uint64_t seed = 0xC0DE2016ull,
                              double fraction = 1.0);

  const wire::ApiCatalog& apis() const { return apis_; }
  const stack::InfraApis& infra() const { return infra_; }
  const WellKnownApis& well_known() const { return well_known_; }
  const CanonicalOps& canonical() const { return canonical_; }

  const std::vector<stack::OperationTemplate>& operations() const {
    return operations_;
  }
  const stack::OperationTemplate& operation(std::size_t i) const {
    return operations_[i];
  }
  // Indices of the operations in one category.
  const std::vector<std::size_t>& category_ops(stack::Category c) const {
    return by_category_[static_cast<std::size_t>(c)];
  }

  // Largest step count across operations (the paper's FPmax input to α).
  std::size_t max_operation_steps() const;

 private:
  wire::ApiCatalog apis_;
  stack::InfraApis infra_;
  WellKnownApis well_known_;
  CanonicalOps canonical_;
  std::vector<stack::OperationTemplate> operations_;
  std::vector<std::vector<std::size_t>> by_category_ =
      std::vector<std::vector<std::size_t>>(stack::kCategories);
};

}  // namespace gretel::tempest
